package quicksand

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"quicksand/internal/bgp"
)

func TestSampleDistinctASNs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := []bgp.ASN{10, 20, 30, 40, 50, 60, 70}
	for trial := 0; trial < 200; trial++ {
		got := sampleDistinctASNs(rng, pool, 5)
		if len(got) != 5 {
			t.Fatalf("got %d ASNs, want 5", len(got))
		}
		seen := make(map[bgp.ASN]bool)
		for _, a := range got {
			if seen[a] {
				t.Fatalf("duplicate ASN %v in sample %v", a, got)
			}
			seen[a] = true
		}
	}
	// n beyond the pool clamps rather than looping or duplicating.
	if got := sampleDistinctASNs(rng, pool, 99); len(got) != len(pool) {
		t.Fatalf("clamped sample has %d ASNs, want %d", len(got), len(pool))
	}
	if got := sampleDistinctASNs(rng, nil, 4); len(got) != 0 {
		t.Fatalf("empty pool yielded %v", got)
	}
}

func TestSampleAttacker(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pool := []bgp.ASN{1, 2}
	// Heavy collision pressure: half the draws hit the victim, yet every
	// call must return the other AS — no trial may be dropped.
	for trial := 0; trial < 500; trial++ {
		a, err := sampleAttacker(rng, pool, 1)
		if err != nil {
			t.Fatal(err)
		}
		if a != 2 {
			t.Fatalf("sampleAttacker returned victim %v", a)
		}
	}
	if _, err := sampleAttacker(rng, []bgp.ASN{7}, 7); err == nil {
		t.Fatal("want error when the pool holds only the victim")
	}
	if _, err := sampleAttacker(rng, nil, 7); err == nil {
		t.Fatal("want error for an empty pool")
	}
}

// TestHijackStudyTrialCount pins the bugfix for the silent undercount:
// attacker==victim collisions used to `continue`, so the study reported
// fewer trials than Attackers x TopPrefixes. Every collision must now be
// resampled.
func TestHijackStudyTrialCount(t *testing.T) {
	w := smallWorld(t)
	cfg := DefaultHijackStudyConfig()
	cfg.Attackers = 12
	cfg.TopPrefixes = 3
	cfg.ClientASes = 30
	res, err := w.RunHijackStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Attackers * cfg.TopPrefixes; res.Trials != want {
		t.Fatalf("Trials = %d, want exactly %d", res.Trials, want)
	}
	if res.CaptureFraction.N != res.Trials {
		t.Fatalf("%d capture samples for %d trials", res.CaptureFraction.N, res.Trials)
	}
}

// workerCounts are the pool sizes every study must agree across.
func workerCounts() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// checkDeterministic runs the study once per worker count and requires
// bit-for-bit identical results.
func checkDeterministic[T any](t *testing.T, name string, run func(workers int) (T, error)) {
	t.Helper()
	var base T
	for i, wk := range workerCounts() {
		res, err := run(wk)
		if err != nil {
			t.Fatalf("%s (workers=%d): %v", name, wk, err)
		}
		if i == 0 {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Errorf("%s: workers=%d result differs from workers=1:\n  %+v\nvs %+v", name, wk, res, base)
		}
	}
}

func TestHijackStudyDeterministicAcrossWorkers(t *testing.T) {
	w := smallWorld(t)
	checkDeterministic(t, "hijack", func(workers int) (*HijackStudyResult, error) {
		cfg := DefaultHijackStudyConfig()
		cfg.Attackers = 6
		cfg.TopPrefixes = 2
		cfg.ClientASes = 40
		cfg.Workers = workers
		return w.RunHijackStudy(cfg)
	})
}

func TestInterceptStudyDeterministicAcrossWorkers(t *testing.T) {
	w := smallWorld(t)
	checkDeterministic(t, "intercept", func(workers int) (*InterceptStudyResult, error) {
		cfg := DefaultInterceptStudyConfig()
		cfg.Trials = 5
		cfg.Decoys = 2
		cfg.FileSize = 1 << 20
		cfg.Workers = workers
		return w.RunInterceptStudy(cfg)
	})
}

func TestDefenseStudyDeterministicAcrossWorkers(t *testing.T) {
	w := smallWorld(t)
	st := smallStream(t)
	checkDeterministic(t, "defend", func(workers int) (*DefenseStudyResult, error) {
		cfg := DefaultDefenseStudyConfig()
		cfg.Circuits = 30
		cfg.Workers = workers
		return w.RunDefenseStudy(st, cfg)
	})
}

func TestRotationStudyDeterministicAcrossWorkers(t *testing.T) {
	w := smallWorld(t)
	checkDeterministic(t, "rotation", func(workers int) (*RotationStudyResult, error) {
		cfg := DefaultRotationStudyConfig()
		cfg.Clients = 40
		cfg.Months = 6
		cfg.Lifetimes = []int{1, 3}
		cfg.EvolveMonthly = true
		cfg.Workers = workers
		return w.RunRotationStudy(cfg)
	})
}

func TestROVStudyDeterministicAcrossWorkers(t *testing.T) {
	w := smallWorld(t)
	checkDeterministic(t, "rov", func(workers int) (*ROVStudyResult, error) {
		cfg := DefaultROVStudyConfig()
		cfg.Attackers = 6
		cfg.Workers = workers
		return w.RunROVStudy(cfg)
	})
}
