package bgpd

import (
	"fmt"
	"net/netip"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpsim"
)

// Replay transmits one simulated collector session's view over a live BGP
// session: first the initial table (as a burst of announcements, exactly
// like a post-establishment routing table transfer), then every update in
// stream order. Withdrawn prefixes become UPDATE withdrawals. It returns
// the number of UPDATE messages sent.
//
// Timing is not reproduced — archives carry timestamps, live sessions
// carry messages — so the receiving side records its own arrival times.
func Replay(s *Session, st *bgpsim.Stream, si int) (int, error) {
	if si < 0 || si >= len(st.Sessions) {
		return 0, fmt.Errorf("bgpd: session index %d out of range", si)
	}
	sent := 0
	send := func(prefix netip.Prefix, path []bgp.ASN) error {
		var u bgp.Update
		if len(path) == 0 {
			u.Withdrawn = []netip.Prefix{prefix}
		} else {
			u.NLRI = []netip.Prefix{prefix}
			u.Attrs = bgp.PathAttributes{
				HasOrigin: true, Origin: bgp.OriginIGP,
				HasASPath: true, ASPath: bgp.Sequence(path...),
				NextHop: s.PeerID(),
			}
		}
		if err := s.SendUpdate(&u); err != nil {
			return err
		}
		sent++
		return nil
	}
	for _, p := range st.Sessions[si].VisiblePrefixes() {
		path, ok := st.Initial[si][p]
		if !ok {
			continue
		}
		if err := send(p, path); err != nil {
			return sent, err
		}
	}
	for i := range st.Updates {
		u := &st.Updates[i]
		if u.Session != si {
			continue
		}
		if err := send(u.Prefix, u.Path); err != nil {
			return sent, err
		}
	}
	// End-of-RIB style empty UPDATE marks completion.
	if err := s.SendUpdate(&bgp.Update{}); err != nil {
		return sent, err
	}
	return sent, nil
}

// CollectedUpdate is one UPDATE received by Collect, stamped with its
// arrival time.
type CollectedUpdate struct {
	Received time.Time
	Update   *bgp.Update
}

// Collect receives UPDATE messages until an End-of-RIB marker (an UPDATE
// with neither NLRI nor withdrawals) or until max messages arrive, and
// returns them in order. This is the collector half of a replayed
// session.
func Collect(s *Session, max int) ([]CollectedUpdate, error) {
	var out []CollectedUpdate
	for max <= 0 || len(out) < max {
		u, err := s.RecvUpdate()
		if err != nil {
			return out, err
		}
		if !u.AnnouncesOrWithdraws() {
			return out, nil // End-of-RIB
		}
		out = append(out, CollectedUpdate{Received: time.Now(), Update: u})
	}
	return out, nil
}
