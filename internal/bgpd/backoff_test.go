package bgpd

import (
	"context"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, time.Second, 1, "peer")
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := b.Current(); got != w*time.Millisecond {
			t.Fatalf("step %d: Current() = %v, want %v", i, got, w*time.Millisecond)
		}
		b.Fail()
	}
	b.Reset()
	if got := b.Current(); got != 10*time.Millisecond {
		t.Errorf("after Reset: Current() = %v, want 10ms", got)
	}
}

func TestBackoffSessionEnded(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, time.Hour, 1, "peer")
	b.Fail()
	b.Fail() // 40ms

	// Young session, no updates: keeps doubling.
	b.SessionEnded(time.Now(), false)
	if got := b.Current(); got != 80*time.Millisecond {
		t.Errorf("unhealthy drop: Current() = %v, want 80ms", got)
	}
	// Young session that carried updates: resets.
	b.SessionEnded(time.Now(), true)
	if got := b.Current(); got != 10*time.Millisecond {
		t.Errorf("sawUpdate drop: Current() = %v, want 10ms", got)
	}
	// Old session: resets even without updates.
	b.Fail()
	b.SessionEnded(time.Now().Add(-2*time.Hour), false)
	if got := b.Current(); got != 10*time.Millisecond {
		t.Errorf("old-session drop: Current() = %v, want 10ms", got)
	}
}

// TestBackoffJitterDeterministic pins that the jitter stream is a pure
// function of (seed, key): redial schedules are reproducible, and
// distinct keys decorrelate.
func TestBackoffJitterDeterministic(t *testing.T) {
	sleepOnce := func(b *Backoff) time.Duration {
		start := time.Now()
		if !b.Sleep(context.Background()) {
			t.Fatal("Sleep returned false without cancellation")
		}
		return time.Since(start)
	}
	a1 := NewBackoff(20*time.Millisecond, time.Second, time.Second, 7, "a")
	a2 := NewBackoff(20*time.Millisecond, time.Second, time.Second, 7, "a")
	d1, d2 := sleepOnce(a1), sleepOnce(a2)
	// Same stream: both sleeps target the same jittered duration; allow
	// generous scheduler slop but require the same order of magnitude.
	if diff := d1 - d2; diff < -15*time.Millisecond || diff > 15*time.Millisecond {
		t.Errorf("same (seed,key) slept %v vs %v", d1, d2)
	}
	// The jitter factor must stay within [0.5, 1.5).
	if d1 < 10*time.Millisecond {
		t.Errorf("jittered sleep %v below 0.5x base", d1)
	}
}

func TestBackoffSleepCancel(t *testing.T) {
	b := NewBackoff(10*time.Second, time.Minute, time.Second, 1, "x")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if b.Sleep(ctx) {
		t.Fatal("Sleep survived cancellation")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancelled Sleep blocked %v", el)
	}
}
