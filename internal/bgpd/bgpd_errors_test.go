package bgpd

import (
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
)

// rawPeer drives one end of a pipe with hand-crafted bytes so the
// negative paths of Establish can be exercised.
func rawPeer(t *testing.T, fn func(c net.Conn)) (net.Conn, chan struct{}) {
	t.Helper()
	a, b := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn(b)
	}()
	return a, done
}

func readOneMessage(t *testing.T, c net.Conn) []byte {
	t.Helper()
	hdr := make([]byte, bgp.HeaderLen)
	if _, err := readFull(c, hdr); err != nil {
		t.Errorf("reading header: %v", err)
		return nil
	}
	_, msgLen, err := bgp.ParseHeader(hdr)
	if err != nil {
		t.Errorf("parsing header: %v", err)
		return nil
	}
	raw := make([]byte, msgLen)
	copy(raw, hdr)
	if _, err := readFull(c, raw[bgp.HeaderLen:]); err != nil {
		t.Errorf("reading body: %v", err)
		return nil
	}
	return raw
}

func readFull(c net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := c.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func TestEstablishRejectsBadVersion(t *testing.T) {
	conn, done := rawPeer(t, func(c net.Conn) {
		defer c.Close()
		// Read the local OPEN, reply with a version-3 OPEN.
		readOneMessage(t, c)
		open := &bgp.Open{Version: 3, ASN: 1, HoldTime: 90,
			BGPID: mustAddr("10.9.9.9")}
		raw, _ := open.Marshal()
		c.Write(raw)
		// Absorb the NOTIFICATION the local side sends back.
		readOneMessage(t, c)
	})
	_, err := Establish(conn, speakerCfg)
	if err == nil {
		t.Fatal("version-3 peer accepted")
	}
	<-done
}

func TestEstablishNotificationInsteadOfOpen(t *testing.T) {
	conn, done := rawPeer(t, func(c net.Conn) {
		defer c.Close()
		readOneMessage(t, c)
		n := &bgp.Notification{Code: bgp.NotifCease}
		raw, _ := n.Marshal()
		c.Write(raw)
	})
	_, err := Establish(conn, speakerCfg)
	if !errors.Is(err, ErrNotification) {
		t.Fatalf("err = %v, want ErrNotification", err)
	}
	<-done
}

func TestEstablishGarbageHeader(t *testing.T) {
	conn, done := rawPeer(t, func(c net.Conn) {
		defer c.Close()
		readOneMessage(t, c)
		c.Write(make([]byte, bgp.HeaderLen)) // zero marker
		// The local side may attempt a NOTIFICATION; drain briefly.
		buf := make([]byte, 64)
		c.SetReadDeadline(time.Now().Add(time.Second))
		c.Read(buf)
	})
	_, err := Establish(conn, speakerCfg)
	if err == nil {
		t.Fatal("garbage header accepted")
	}
	<-done
}

func TestEstablishUnexpectedMessageAfterOpen(t *testing.T) {
	conn, done := rawPeer(t, func(c net.Conn) {
		defer c.Close()
		readOneMessage(t, c)
		open := &bgp.Open{Version: 4, ASN: 7, HoldTime: 90, BGPID: mustAddr("10.9.9.9")}
		raw, _ := open.Marshal()
		c.Write(raw)
		// Instead of the confirming KEEPALIVE, send an UPDATE.
		readOneMessage(t, c) // local keepalive
		u := &bgp.Update{}
		uraw, _ := u.Marshal(false)
		c.Write(uraw)
	})
	_, err := Establish(conn, speakerCfg)
	if err == nil {
		t.Fatal("UPDATE in OpenConfirm accepted")
	}
	<-done
}

func TestRecvUnexpectedOpenMidSession(t *testing.T) {
	sp, col := pair(t, speakerCfg, collectorCfg)
	defer sp.Close()
	defer col.Close()
	open := &bgp.Open{Version: 4, ASN: 1, HoldTime: 90, BGPID: mustAddr("10.1.1.1")}
	raw, _ := open.Marshal()
	go func() {
		sp.writeMu.Lock()
		sp.conn.Write(raw)
		sp.writeMu.Unlock()
	}()
	if _, err := col.RecvUpdate(); err == nil {
		t.Fatal("mid-session OPEN accepted")
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
