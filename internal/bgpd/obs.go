package bgpd

import (
	"quicksand/internal/bgp"
	"quicksand/internal/obs"
)

// msgTypeNames maps BGP message types to metric label values; index 0
// covers anything outside the RFC 4271 range.
var msgTypeNames = [...]string{
	0:                    "other",
	bgp.TypeOpen:         "open",
	bgp.TypeUpdate:       "update",
	bgp.TypeNotification: "notification",
	bgp.TypeKeepalive:    "keepalive",
}

// Metrics instruments a speaker's sessions. One Metrics is typically
// shared by every session of a daemon. A nil *Metrics disables
// instrumentation; the per-message cost is then a single nil check.
type Metrics struct {
	// Established counts successful OPEN/KEEPALIVE handshakes.
	Established *obs.Counter
	// Closed counts completed session teardowns.
	Closed *obs.Counter

	// in/out are pre-resolved per-message-type counters, indexed by the
	// wire message type so the hot path does a slice index instead of a
	// label lookup.
	in, out [len(msgTypeNames)]*obs.Counter
}

// NewMetrics registers the bgpd_* metric families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		Established: reg.Counter("bgpd_sessions_established_total", "BGP sessions successfully established."),
		Closed:      reg.Counter("bgpd_sessions_closed_total", "BGP sessions torn down."),
	}
	in := reg.CounterVec("bgpd_messages_in_total", "BGP messages received by type.", "type")
	out := reg.CounterVec("bgpd_messages_out_total", "BGP messages sent by type.", "type")
	if in != nil { // nil registry: leave all handles nil
		for t, name := range msgTypeNames {
			m.in[t] = in.With(name)
			m.out[t] = out.With(name)
		}
	}
	return m
}

// MsgIn counts one received message of the given wire type.
func (m *Metrics) MsgIn(msgType int) {
	if m == nil {
		return
	}
	if msgType < 0 || msgType >= len(msgTypeNames) {
		msgType = 0
	}
	m.in[msgType].Inc()
}

// MsgOut counts one sent message of the given wire type.
func (m *Metrics) MsgOut(msgType int) {
	if m == nil {
		return
	}
	if msgType < 0 || msgType >= len(msgTypeNames) {
		msgType = 0
	}
	m.out[msgType].Inc()
}

// sessionEstablished and sessionClosed keep the nil checks out of the
// session code.
func (m *Metrics) sessionEstablished() {
	if m != nil {
		m.Established.Inc()
	}
}

func (m *Metrics) sessionClosed() {
	if m != nil {
		m.Closed.Inc()
	}
}
