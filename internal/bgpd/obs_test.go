package bgpd

import (
	"net/netip"
	"testing"

	"quicksand/internal/bgp"
	"quicksand/internal/obs"
)

func TestSessionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	a, b := speakerCfg, collectorCfg
	a.Metrics = met
	b.Metrics = met
	sp, col := pair(t, a, b)

	if got := met.Established.Value(); got != 2 {
		t.Fatalf("established = %d, want 2 (both halves)", got)
	}
	// The handshake sends and receives one OPEN and one KEEPALIVE per
	// side through the shared Metrics.
	if got := met.in[bgp.TypeOpen].Value(); got != 2 {
		t.Errorf("opens in = %d, want 2", got)
	}
	if got := met.out[bgp.TypeOpen].Value(); got != 2 {
		t.Errorf("opens out = %d, want 2", got)
	}

	u := &bgp.Update{
		Attrs: bgp.PathAttributes{
			HasOrigin: true, Origin: bgp.OriginIGP,
			HasASPath: true, ASPath: bgp.Sequence(64500, 3320),
			NextHop: netip.MustParseAddr("10.0.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("78.46.0.0/15")},
	}
	errCh := make(chan error, 1)
	go func() { errCh <- sp.SendUpdate(u) }()
	if _, err := col.RecvUpdate(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if met.in[bgp.TypeUpdate].Value() != 1 || met.out[bgp.TypeUpdate].Value() != 1 {
		t.Errorf("updates in/out = %d/%d, want 1/1",
			met.in[bgp.TypeUpdate].Value(), met.out[bgp.TypeUpdate].Value())
	}

	// Close while the collector is reading, so the Cease NOTIFICATION is
	// actually delivered (net.Pipe writes block without a reader).
	recvDone := make(chan struct{})
	go func() { col.RecvUpdate(); close(recvDone) }()
	sp.Close()
	<-recvDone
	col.Close()
	if got := met.Closed.Value(); got != 2 {
		t.Errorf("closed = %d, want 2", got)
	}
	if met.out[bgp.TypeNotification].Value() == 0 {
		t.Error("no NOTIFICATION counted out")
	}
	if met.in[bgp.TypeNotification].Value() == 0 {
		t.Error("no NOTIFICATION counted in")
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.MsgIn(bgp.TypeUpdate)
	m.MsgOut(99) // out of range must also be safe
	m.sessionEstablished()
	m.sessionClosed()

	m = NewMetrics(obs.NewRegistry())
	m.MsgIn(-1)
	m.MsgOut(200)
	if m.in[0].Value() != 1 || m.out[0].Value() != 1 {
		t.Errorf("out-of-range types not folded to other: in=%d out=%d",
			m.in[0].Value(), m.out[0].Value())
	}
}

func TestMetricsNilRegistry(t *testing.T) {
	m := NewMetrics(nil)
	m.MsgIn(bgp.TypeOpen)
	m.sessionEstablished()
	if m.Established.Value() != 0 {
		t.Fatal("nil-registry metrics recorded values")
	}
	a := speakerCfg
	a.Metrics = m
	sp, col := pair(t, a, collectorCfg)
	sp.Close()
	col.Close()
}
