package bgpd

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quicksand/internal/bgp"
)

// TestCloseMidKeepaliveRace pins the shutdown ordering under -race: Close
// racing a fast keepalive loop must never write a KEEPALIVE after the
// Cease NOTIFICATION, never write to a closed conn, and never leak the
// keepalive goroutine. The session is assembled by hand so the keepalive
// interval can be far below the protocol minimum.
func TestCloseMidKeepaliveRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		ca, cb := net.Pipe()
		s := &Session{
			conn:   ca,
			closed: make(chan struct{}), kaDone: make(chan struct{}),
			kaStarted: true,
		}
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			io.Copy(io.Discard, cb)
		}()
		go s.keepaliveLoop(20 * time.Microsecond)

		// Let a few keepalives fire, then slam Close from several
		// goroutines at once, mid-tick.
		time.Sleep(200 * time.Microsecond)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Close()
			}()
		}
		wg.Wait()

		// Close returning implies the keepalive loop already exited.
		select {
		case <-s.kaDone:
		default:
			t.Fatal("Close returned before keepalive loop exited")
		}
		cb.Close()
		<-drained
	}
}

// TestCloseConcurrentWithSend races SendUpdate against Close over a real
// established session; every send must either succeed or fail cleanly,
// and teardown must complete.
func TestCloseConcurrentWithSend(t *testing.T) {
	sp, col := pair(t, speakerCfg, collectorCfg)
	go func() {
		for {
			if _, err := col.RecvUpdate(); err != nil {
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp.SendUpdate(&bgp.Update{})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sp.Close()
	}()
	wg.Wait()
	col.Close()
	select {
	case <-sp.Done():
	default:
		t.Fatal("Done() not closed after Close")
	}
}

// TestOnCloseHookFiresOnce verifies the lifecycle hook runs exactly once
// regardless of how many goroutines race the teardown, and that Done()
// observes it.
func TestOnCloseHookFiresOnce(t *testing.T) {
	var fired atomic.Int32
	cfg := speakerCfg
	cfg.OnClose = func(s *Session) { fired.Add(1) }
	sp, col := pair(t, cfg, collectorCfg)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp.Close()
		}()
	}
	wg.Wait()
	if got := fired.Load(); got != 1 {
		t.Fatalf("OnClose fired %d times, want 1", got)
	}
	select {
	case <-sp.Done():
	default:
		t.Fatal("Done() not closed")
	}
	col.Close()
}
