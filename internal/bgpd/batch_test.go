package bgpd

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"quicksand/internal/bgp"
)

// chunkConn is a scripted net.Conn: Read hands out a fixed byte stream
// at most chunk bytes at a time, simulating arbitrary TCP segmentation
// (split headers, coalesced messages) deterministically. Writes (the
// NOTIFICATION path) are discarded.
type chunkConn struct {
	mu     sync.Mutex
	data   []byte
	chunk  int
	closed bool
}

func newChunkConn(data []byte, chunk int) *chunkConn {
	if chunk <= 0 {
		chunk = 1
	}
	return &chunkConn{data: data, chunk: chunk}
}

func (c *chunkConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.data) == 0 {
		return 0, io.EOF
	}
	n := len(p)
	if n > c.chunk {
		n = c.chunk
	}
	if n > len(c.data) {
		n = len(c.data)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func (c *chunkConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	return len(p), nil
}

func (c *chunkConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

func (c *chunkConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *chunkConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *chunkConn) SetDeadline(t time.Time) error      { return nil }
func (c *chunkConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *chunkConn) SetWriteDeadline(t time.Time) error { return nil }

// testUpdates builds a deterministic mix of announcements, withdrawals,
// and an empty-AS_PATH update, marshaled back-to-back with keepalives
// interleaved.
func testWire(t testing.TB, as4 bool) ([]byte, []*bgp.Update) {
	t.Helper()
	mk := func(pfx string, path ...bgp.ASN) *bgp.Update {
		return &bgp.Update{
			NLRI: []netip.Prefix{netip.MustParsePrefix(pfx)},
			Attrs: bgp.PathAttributes{
				HasOrigin: true, Origin: bgp.OriginIGP,
				HasASPath: true, ASPath: bgp.Sequence(path...),
				NextHop: netip.MustParseAddr("203.0.113.1"),
			},
		}
	}
	empty := mk("198.51.100.0/24", 64501)
	empty.Attrs.ASPath = bgp.ASPath{} // AS_PATH present, zero segments
	updates := []*bgp.Update{
		mk("10.0.0.0/16", 64501, 64500, 64496),
		{Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")}},
		mk("192.0.2.0/24", 64501, 666),
		empty,
		mk("10.1.0.0/16", 64501, 64510, 64511, 64512),
	}
	ka, err := (&bgp.Keepalive{}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var wire []byte
	wire = append(wire, ka...) // leading keepalive must be swallowed
	for i, u := range updates {
		raw, err := u.Marshal(as4)
		if err != nil {
			t.Fatalf("marshal update %d: %v", i, err)
		}
		wire = append(wire, raw...)
		if i%2 == 1 {
			wire = append(wire, ka...)
		}
	}
	return wire, updates
}

// drainBatch runs RecvUpdateBatch to exhaustion with the given batch
// capacity, returning every decoded update (copied out of the batch
// buffer) and the terminal error.
func drainBatch(s *Session, batchCap int) ([]bgp.Update, error) {
	var got []bgp.Update
	for {
		dst := make([]bgp.Update, batchCap)
		n, err := s.RecvUpdateBatch(dst)
		got = append(got, dst[:n]...)
		if err != nil {
			return got, err
		}
	}
}

// TestRecvUpdateBatchSegmentBoundaries pins batch decode against every
// pathological TCP segmentation: byte-at-a-time delivery, chunks that
// split headers mid-way, and full coalescing, across batch capacities
// from 1 (degenerate single-message path) to larger than the stream.
func TestRecvUpdateBatchSegmentBoundaries(t *testing.T) {
	wire, want := testWire(t, false)
	for _, chunk := range []int{1, 7, bgp.HeaderLen, bgp.HeaderLen + 1, 64, len(wire)} {
		for _, batchCap := range []int{1, 2, 3, 64} {
			s := rawSession(newChunkConn(append([]byte(nil), wire...), chunk))
			got, err := drainBatch(s, batchCap)
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("chunk=%d cap=%d: terminal err = %v, want EOF", chunk, batchCap, err)
			}
			if len(got) != len(want) {
				t.Fatalf("chunk=%d cap=%d: decoded %d updates, want %d", chunk, batchCap, len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(&got[i], want[i]) {
					t.Errorf("chunk=%d cap=%d: update %d = %+v, want %+v", chunk, batchCap, i, &got[i], want[i])
				}
			}
		}
	}
}

// TestRecvUpdateBatchMatchesRecvUpdate is the differential check on a
// clean stream: batch drain and sequential RecvUpdate must decode the
// identical update sequence.
func TestRecvUpdateBatchMatchesRecvUpdate(t *testing.T) {
	wire, _ := testWire(t, false)
	sBatch := rawSession(newChunkConn(append([]byte(nil), wire...), 11))
	batched, _ := drainBatch(sBatch, 4)

	sSeq := rawSession(newChunkConn(append([]byte(nil), wire...), 11))
	var sequential []bgp.Update
	for {
		u, err := sSeq.RecvUpdate()
		if err != nil {
			break
		}
		sequential = append(sequential, *u)
	}
	if !reflect.DeepEqual(batched, sequential) {
		t.Errorf("batch decode diverges from sequential:\n batch: %+v\n  seq:  %+v", batched, sequential)
	}
}

// FuzzRecvUpdateBatch feeds an arbitrary byte stream through both the
// batched and the sequential receive paths under fuzz-chosen TCP
// segmentation and batch capacity, and demands they agree: the same
// decoded update sequence, and an error on the same remaining tail.
// This is the safety net for the buffered fast path — a bug in
// bufferedMessage's header peeking or in buffer reuse shows up as a
// divergence, a crash, or a hang (the harness timeout).
func FuzzRecvUpdateBatch(f *testing.F) {
	wire, _ := testWire(f, false)
	f.Add(wire, uint8(1), uint8(1))
	f.Add(wire, uint8(7), uint8(3))
	f.Add(wire, uint8(255), uint8(64))
	f.Add(wire[:len(wire)-3], uint8(16), uint8(2)) // truncated tail
	corrupt := append([]byte(nil), wire...)
	corrupt[bgp.MarkerLen] = 0xFF // absurd declared length
	f.Add(corrupt, uint8(9), uint8(4))
	f.Add([]byte{}, uint8(1), uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, chunk uint8, batchCap uint8) {
		if batchCap == 0 {
			batchCap = 1
		}
		sBatch := rawSession(newChunkConn(append([]byte(nil), data...), int(chunk)))
		batched, batchErr := drainBatch(sBatch, int(batchCap))

		sSeq := rawSession(newChunkConn(append([]byte(nil), data...), int(chunk)))
		var sequential []bgp.Update
		var seqErr error
		for {
			u, err := sSeq.RecvUpdate()
			if err != nil {
				seqErr = err
				break
			}
			sequential = append(sequential, *u)
		}

		if len(batched) != len(sequential) {
			t.Fatalf("batch decoded %d updates, sequential %d (chunk=%d cap=%d)",
				len(batched), len(sequential), chunk, batchCap)
		}
		for i := range batched {
			if !reflect.DeepEqual(batched[i], sequential[i]) {
				t.Fatalf("update %d diverges:\n batch: %+v\n  seq:  %+v", i, batched[i], sequential[i])
			}
		}
		if (batchErr == nil) != (seqErr == nil) {
			t.Fatalf("terminal errors diverge: batch=%v sequential=%v", batchErr, seqErr)
		}
	})
}
