package bgpd

import (
	"encoding/binary"
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpsim"
)

// rawSession wraps one end of a pipe in a Session without a handshake so
// the low-level read/write paths can be driven directly.
func rawSession(conn net.Conn) *Session {
	return &Session{
		conn: conn, localAS: 64500,
		closed: make(chan struct{}), kaDone: make(chan struct{}),
	}
}

func TestReadMessageTimeoutIsHoldExpired(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	s := rawSession(a)
	if _, _, err := s.readMessage(50 * time.Millisecond); !errors.Is(err, ErrHoldExpired) {
		t.Fatalf("idle read err = %v, want ErrHoldExpired", err)
	}
}

func TestReadMessageTruncatedBody(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	s := rawSession(a)
	go func() {
		// A valid header promising a 10-byte body, then a hangup.
		hdr := make([]byte, bgp.HeaderLen)
		for i := 0; i < bgp.MarkerLen; i++ {
			hdr[i] = 0xFF
		}
		binary.BigEndian.PutUint16(hdr[bgp.MarkerLen:], uint16(bgp.HeaderLen+10))
		hdr[bgp.MarkerLen+2] = bgp.TypeUpdate
		b.Write(hdr)
		b.Close()
	}()
	_, _, err := s.readMessage(0)
	if err == nil || errors.Is(err, ErrHoldExpired) {
		t.Fatalf("truncated body err = %v, want a non-timeout read error", err)
	}
}

func TestRecvUpdateHoldExpiry(t *testing.T) {
	sp, col := pair(t, speakerCfg, collectorCfg)
	defer sp.Close()
	defer col.Close()
	// Shrink the negotiated hold time after the fact so expiry is fast;
	// the speaker's 10s keepalive cadence cannot beat 100ms.
	col.holdTime = 100 * time.Millisecond
	if _, err := col.RecvUpdate(); !errors.Is(err, ErrHoldExpired) {
		t.Fatalf("RecvUpdate err = %v, want ErrHoldExpired", err)
	}
	// Expiry tears the session down: sends now fail fast.
	if err := col.SendUpdate(&bgp.Update{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SendUpdate after expiry err = %v, want ErrClosed", err)
	}
	if _, err := col.RecvUpdate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("RecvUpdate after expiry err = %v, want ErrClosed", err)
	}
}

func TestSendUpdateMarshalError(t *testing.T) {
	sp, col := pair(t, speakerCfg, collectorCfg)
	defer sp.Close()
	defer col.Close()
	u := &bgp.Update{
		Attrs: bgp.PathAttributes{HasOrigin: true, Origin: 9}, // out of range
		NLRI:  []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	}
	if err := sp.SendUpdate(u); err == nil {
		t.Fatal("unmarshalable update accepted")
	}
}

func TestKeepaliveLoopStopsOnWriteError(t *testing.T) {
	a, b := net.Pipe()
	b.Close() // every write on a now fails immediately
	s := rawSession(a)
	go s.keepaliveLoop(10 * time.Millisecond)
	select {
	case <-s.kaDone:
	case <-time.After(5 * time.Second):
		t.Fatal("keepalive loop did not stop on write error")
	}
}

func TestEstablishMalformedOpenBody(t *testing.T) {
	conn, done := rawPeer(t, func(c net.Conn) {
		defer c.Close()
		readOneMessage(t, c)
		// Valid header declaring an OPEN, body too short to parse.
		body := []byte{4, 0} // version, then truncation
		hdr := make([]byte, bgp.HeaderLen)
		for i := 0; i < bgp.MarkerLen; i++ {
			hdr[i] = 0xFF
		}
		binary.BigEndian.PutUint16(hdr[bgp.MarkerLen:], uint16(bgp.HeaderLen+len(body)))
		hdr[bgp.MarkerLen+2] = bgp.TypeOpen
		c.Write(append(hdr, body...))
	})
	if _, err := Establish(conn, speakerCfg); err == nil {
		t.Fatal("malformed OPEN body accepted")
	}
	<-done
}

func TestNoHoldTimerNegotiated(t *testing.T) {
	zeroCfgA := Config{ASN: 64500, BGPID: netip.MustParseAddr("10.0.0.1"), AS4: true}
	zeroCfgB := Config{ASN: 12654, BGPID: netip.MustParseAddr("10.0.0.2"), AS4: true}
	sp, col := pair(t, zeroCfgA, zeroCfgB)
	defer sp.Close()
	defer col.Close()
	if sp.HoldTime() != 0 || col.HoldTime() != 0 {
		t.Fatalf("hold times = %v, %v, want 0, 0", sp.HoldTime(), col.HoldTime())
	}
	// No keepalive loop runs, but updates still flow.
	u := &bgp.Update{
		Attrs: bgp.PathAttributes{
			HasOrigin: true, Origin: bgp.OriginIGP,
			HasASPath: true, ASPath: bgp.Sequence(64500),
			NextHop: netip.MustParseAddr("10.0.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
	}
	errCh := make(chan error, 1)
	go func() { errCh <- sp.SendUpdate(u) }()
	got, err := col.RecvUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if len(got.NLRI) != 1 || got.NLRI[0] != u.NLRI[0] {
		t.Fatalf("received NLRI %v, want %v", got.NLRI, u.NLRI)
	}
}

func TestReplayRejectsBadSessionIndex(t *testing.T) {
	st := &bgpsim.Stream{}
	for _, si := range []int{-1, 0, 5} {
		if _, err := Replay(nil, st, si); err == nil {
			t.Errorf("session index %d accepted on empty stream", si)
		}
	}
}

func TestCollectStopsAtMax(t *testing.T) {
	sp, col := pair(t, speakerCfg, collectorCfg)
	defer sp.Close()
	defer col.Close()
	u := &bgp.Update{
		Attrs: bgp.PathAttributes{
			HasOrigin: true, Origin: bgp.OriginIGP,
			HasASPath: true, ASPath: bgp.Sequence(64500),
			NextHop: netip.MustParseAddr("10.0.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
	}
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < 3; i++ {
			if err := sp.SendUpdate(u); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	got, err := Collect(col, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("collected %d updates, want 2 (max)", len(got))
	}
	// Drain the third send so the speaker goroutine can finish.
	if _, err := col.RecvUpdate(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestCollectPropagatesReceiveError(t *testing.T) {
	sp, col := pair(t, speakerCfg, collectorCfg)
	defer col.Close()
	sp.closeConn() // hard hangup, no NOTIFICATION
	if _, err := Collect(col, 0); err == nil {
		t.Fatal("collect on a dead session returned nil error")
	}
}
