package bgpd

import (
	"context"
	"hash/fnv"
	"math/rand"
	"time"

	"quicksand/internal/par"
)

// Backoff is the redial schedule shared by every component that
// maintains an outbound BGP session (the monitord collector dialer, the
// fleet router's remote-shard forwarders): jittered exponential backoff
// with a "proved healthy" reset rule. It is not safe for concurrent use;
// each dial loop owns its own instance.
//
// The jitter stream is derived deterministically from (seed, key) so two
// dialers never synchronize their retry storms, yet a test re-running
// the same configuration observes the same schedule.
type Backoff struct {
	base, max    time.Duration
	healthyAfter time.Duration
	cur          time.Duration
	rng          *rand.Rand
}

// NewBackoff returns a schedule starting at base and doubling up to max
// on each Fail. healthyAfter is the session age past which SessionEnded
// resets the schedule (see SessionEnded). key is typically the remote
// address; it decorrelates the jitter of multiple dialers sharing a
// seed.
func NewBackoff(base, max, healthyAfter time.Duration, seed int64, key string) *Backoff {
	h := fnv.New64a()
	h.Write([]byte(key))
	return &Backoff{
		base:         base,
		max:          max,
		healthyAfter: healthyAfter,
		cur:          base,
		rng:          rand.New(rand.NewSource(par.TrialSeed(seed, int(h.Sum64()%(1<<31))))),
	}
}

// Current reports the nominal (unjittered) delay the next Sleep will
// scale — what a log line should print.
func (b *Backoff) Current() time.Duration { return b.cur }

// Fail doubles the delay, saturating at the configured maximum.
func (b *Backoff) Fail() {
	b.cur = minDur(b.cur*2, b.max)
}

// Reset returns the schedule to its base delay.
func (b *Backoff) Reset() { b.cur = b.base }

// SessionEnded adjusts the schedule after an established session drops.
// Only a session that proved healthy — survived healthyAfter or carried
// at least one update (sawUpdate) — resets the backoff; a peer that
// establishes and immediately hangs up keeps the exponential schedule,
// so a flapping remote cannot force a tight redial loop.
func (b *Backoff) SessionEnded(established time.Time, sawUpdate bool) {
	if time.Since(established) >= b.healthyAfter || sawUpdate {
		b.Reset()
	} else {
		b.Fail()
	}
}

// Sleep blocks for the current delay scaled by a uniform [0.5, 1.5)
// jitter factor, returning false when ctx is cancelled first.
func (b *Backoff) Sleep(ctx context.Context) bool {
	jittered := time.Duration((0.5 + b.rng.Float64()) * float64(b.cur))
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
