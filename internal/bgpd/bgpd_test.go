package bgpd

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpsim"
	"quicksand/internal/topology"
)

var (
	speakerCfg = Config{
		ASN: 64500, BGPID: netip.MustParseAddr("10.0.0.1"),
		HoldTime: 30 * time.Second, AS4: true,
	}
	collectorCfg = Config{
		ASN: 12654, BGPID: netip.MustParseAddr("10.255.255.254"),
		HoldTime: 30 * time.Second, AS4: true,
	}
)

// pair establishes two session halves over an in-memory pipe.
func pair(t *testing.T, a, b Config) (*Session, *Session) {
	t.Helper()
	ca, cb := net.Pipe()
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 2)
	go func() {
		s, err := Establish(ca, a)
		ch <- res{s, err}
	}()
	go func() {
		s, err := Establish(cb, b)
		ch <- res{s, err}
	}()
	r1, r2 := <-ch, <-ch
	if r1.err != nil {
		t.Fatalf("establish: %v", r1.err)
	}
	if r2.err != nil {
		t.Fatalf("establish: %v", r2.err)
	}
	// Order by local AS for deterministic returns.
	if r1.s.localAS == a.ASN {
		return r1.s, r2.s
	}
	return r2.s, r1.s
}

func TestConfigValidation(t *testing.T) {
	bad := speakerCfg
	bad.ASN = 0
	if _, err := Establish(nil, bad); err == nil {
		t.Fatal("zero ASN accepted")
	}
	bad = speakerCfg
	bad.BGPID = netip.Addr{}
	if _, err := Establish(nil, bad); err == nil {
		t.Fatal("no BGPID accepted")
	}
	bad = speakerCfg
	bad.HoldTime = time.Second
	if _, err := Establish(nil, bad); err == nil {
		t.Fatal("sub-minimum hold time accepted")
	}
}

func TestEstablishNegotiation(t *testing.T) {
	sp, col := pair(t, speakerCfg, collectorCfg)
	defer sp.Close()
	defer col.Close()
	if sp.PeerAS() != 12654 || col.PeerAS() != 64500 {
		t.Fatalf("peer ASes: %v / %v", sp.PeerAS(), col.PeerAS())
	}
	if !sp.AS4() || !col.AS4() {
		t.Fatal("AS4 not negotiated")
	}
	if sp.HoldTime() != 30*time.Second {
		t.Fatalf("hold time = %v", sp.HoldTime())
	}
	if col.PeerID() != speakerCfg.BGPID {
		t.Fatalf("peer ID = %v", col.PeerID())
	}
}

func TestEstablishWideASN(t *testing.T) {
	wide := speakerCfg
	wide.ASN = 400000
	wide.AS4 = false // must be forced on automatically
	sp, col := pair(t, wide, collectorCfg)
	defer sp.Close()
	defer col.Close()
	if col.PeerAS() != 400000 {
		t.Fatalf("collector saw AS %v, want 400000", col.PeerAS())
	}
	if !sp.AS4() {
		t.Fatal("AS4 should be auto-negotiated for wide ASNs")
	}
}

func TestAS4FallsBackWhenPeerLacksIt(t *testing.T) {
	no4 := collectorCfg
	no4.AS4 = false
	sp, col := pair(t, speakerCfg, no4)
	defer sp.Close()
	defer col.Close()
	if sp.AS4() || col.AS4() {
		t.Fatal("AS4 negotiated although one side lacks the capability")
	}
}

func TestUpdateExchange(t *testing.T) {
	sp, col := pair(t, speakerCfg, collectorCfg)
	defer sp.Close()
	defer col.Close()
	u := &bgp.Update{
		Attrs: bgp.PathAttributes{
			HasOrigin: true, Origin: bgp.OriginIGP,
			HasASPath: true, ASPath: bgp.Sequence(64500, 3320, 24940),
			NextHop: netip.MustParseAddr("10.0.0.1"),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("78.46.0.0/15")},
	}
	errCh := make(chan error, 1)
	go func() { errCh <- sp.SendUpdate(u) }()
	got, err := col.RecvUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if len(got.NLRI) != 1 || got.NLRI[0] != u.NLRI[0] {
		t.Fatalf("NLRI = %v", got.NLRI)
	}
	if !got.Attrs.ASPath.Equal(u.Attrs.ASPath) {
		t.Fatalf("path = %v", got.Attrs.ASPath)
	}
}

func TestRecvSkipsKeepalives(t *testing.T) {
	sp, col := pair(t, speakerCfg, collectorCfg)
	defer sp.Close()
	defer col.Close()
	// Manually inject a keepalive before an update.
	ka, _ := (&bgp.Keepalive{}).Marshal()
	go func() {
		sp.writeMu.Lock()
		sp.conn.Write(ka)
		sp.writeMu.Unlock()
		sp.SendUpdate(&bgp.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}})
	}()
	got, err := col.RecvUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Withdrawn) != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestCloseSendsCease(t *testing.T) {
	sp, col := pair(t, speakerCfg, collectorCfg)
	go sp.Close()
	_, err := col.RecvUpdate()
	if !errors.Is(err, ErrNotification) {
		t.Fatalf("err = %v, want ErrNotification (Cease)", err)
	}
	// Sending after close fails (ErrClosed once teardown completes, or a
	// closed-pipe write error during the race with Close).
	if err := sp.SendUpdate(&bgp.Update{}); err == nil {
		t.Fatal("send after close succeeded")
	}
	col.Close()
}

func TestHoldTimerExpires(t *testing.T) {
	ca, cb := net.Pipe()
	cfgA := speakerCfg
	cfgA.HoldTime = 3 * time.Second
	cfgB := collectorCfg
	cfgB.HoldTime = 3 * time.Second
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 2)
	go func() { s, err := Establish(ca, cfgA); ch <- res{s, err} }()
	go func() { s, err := Establish(cb, cfgB); ch <- res{s, err} }()
	r1, r2 := <-ch, <-ch
	if r1.err != nil || r2.err != nil {
		t.Fatalf("establish: %v %v", r1.err, r2.err)
	}
	// Kill both keepalive loops by stopping the peers' writers: close
	// one side's underlying conn write path by closing the session's
	// ticker source — simplest reliable approach: stop r2's keepalives
	// by closing its closed channel via Close, but that sends Cease.
	// Instead, starve r1: wrap by closing r2's conn abruptly.
	r2.s.conn.Close()
	_, err := r1.s.RecvUpdate()
	if err == nil {
		t.Fatal("expected error after peer vanished")
	}
	r1.s.Close()
}

func TestReplayCollectOverTCP(t *testing.T) {
	// Build a small simulated stream.
	g, err := topology.Generate(topology.GenConfig{
		Tier1: 3, Tier2: 10, Tier3: 40,
		Tier2PeerProb: 0.1, MaxT2Providers: 2, MaxT3Providers: 2, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	origins := map[netip.Prefix]bgp.ASN{}
	t3 := g.TierASNs(3)
	for i := 0; i < 12; i++ {
		origins[netip.MustParsePrefix(fmt.Sprintf("60.%d.0.0/16", i))] = t3[i]
	}
	sim, err := bgpsim.New(g, origins)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bgpsim.DefaultConfig()
	cfg.Collectors = []bgpsim.CollectorSpec{{Name: "rrc00", Sessions: 2}}
	cfg.Duration = 12 * time.Hour
	cfg.LinkFailures = 10
	cfg.OriginChurnEvents = 30
	cfg.FlapEpisodes = 2
	cfg.MaxFlapCycles = 10
	cfg.PolicyEvents = 0
	cfg.ResetsPerSessionMean = 0
	st, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Real TCP on loopback.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		got []CollectedUpdate
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			resCh <- result{nil, err}
			return
		}
		sess, err := Establish(conn, collectorCfg)
		if err != nil {
			resCh <- result{nil, err}
			return
		}
		defer sess.Close()
		got, err := Collect(sess, 0)
		resCh <- result{got, err}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	spCfg := speakerCfg
	spCfg.ASN = st.Sessions[0].PeerAS
	sess, err := Establish(conn, spCfg)
	if err != nil {
		t.Fatal(err)
	}
	sent, err := Replay(sess, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	sess.Close()
	// Replay's count excludes the End-of-RIB marker, so the collector
	// sees exactly `sent` routing updates.
	if len(res.got) != sent {
		t.Fatalf("collected %d, sent %d", len(res.got), sent)
	}
	// The replayed view must contain every visible initial prefix as an
	// announcement with the simulated AS path.
	seen := make(map[netip.Prefix]bgp.ASPath)
	for _, cu := range res.got {
		for _, p := range cu.Update.NLRI {
			seen[p] = cu.Update.Attrs.ASPath
		}
	}
	for p, path := range st.Initial[0] {
		got, ok := seen[p]
		if !ok {
			t.Fatalf("prefix %v never announced", p)
		}
		_ = got
		_ = path
	}
	// Out-of-range session index is rejected.
	if _, err := Replay(sess, st, 99); err == nil {
		t.Fatal("out-of-range session accepted")
	}
}
