package bgpd

import (
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"quicksand/internal/bgp"
)

// TestRecvUpdateBatchStamped checks the batch-start stamp: non-zero and
// monotonically bracketed for every non-empty batch, zero when nothing
// was decoded, and the decoded updates identical to RecvUpdateBatch's.
func TestRecvUpdateBatchStamped(t *testing.T) {
	wire, want := testWire(t, false)
	s := rawSession(newChunkConn(append([]byte(nil), wire...), 64))
	var got []bgp.Update
	before := time.Now()
	var last time.Time
	for {
		dst := make([]bgp.Update, 3)
		n, start, err := s.RecvUpdateBatchStamped(dst)
		if n > 0 {
			if start.IsZero() {
				t.Fatal("non-empty batch with zero stamp")
			}
			if start.Before(before) {
				t.Fatalf("stamp %v before the read began %v", start, before)
			}
			if time.Since(start) < 0 {
				t.Fatalf("stamp %v in the future", start)
			}
			if start.Before(last) {
				t.Fatalf("stamps went backwards: %v after %v", start, last)
			}
			last = start
		}
		got = append(got, dst[:n]...)
		if err != nil {
			if n == 0 && !start.IsZero() {
				t.Fatal("empty terminal batch with non-zero stamp")
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("terminal err = %v", err)
			}
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d updates, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(&got[i], want[i]) {
			t.Errorf("update %d = %+v, want %+v", i, &got[i], want[i])
		}
	}
}

// TestSendRaw pre-encodes a burst with AppendMessage and replays it via
// SendRaw; the receiver must decode the identical update sequence, and
// the per-message accounting must match SendUpdates'.
func TestSendRaw(t *testing.T) {
	a, b := pair(t, speakerCfg, collectorCfg)
	defer a.Close()
	defer b.Close()

	_, want := testWire(t, a.AS4())
	var raw []byte
	var err error
	for _, u := range want {
		if raw, err = u.AppendMessage(raw, a.AS4()); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() { done <- a.SendRaw(raw, len(want)) }()

	var got []bgp.Update
	for len(got) < len(want) {
		dst := make([]bgp.Update, len(want))
		n, err := b.RecvUpdateBatch(dst)
		got = append(got, dst[:n]...)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("SendRaw: %v", err)
	}
	for i := range got {
		if !reflect.DeepEqual(&got[i], want[i]) {
			t.Errorf("update %d = %+v, want %+v", i, &got[i], want[i])
		}
	}

	// Empty burst is a no-op.
	if err := a.SendRaw(nil, 0); err != nil {
		t.Fatalf("empty SendRaw: %v", err)
	}

	a.Close()
	if err := a.SendRaw(raw, len(want)); !errors.Is(err, ErrClosed) {
		t.Fatalf("SendRaw on closed session = %v, want ErrClosed", err)
	}
}
