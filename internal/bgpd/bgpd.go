// Package bgpd implements a minimal live BGP-4 speaker: session
// establishment (OPEN exchange with 4-octet-AS capability negotiation),
// keepalives, hold-timer enforcement, UPDATE exchange and NOTIFICATION
// handling over any net.Conn.
//
// This is the transport the route collectors of the paper's methodology
// actually speak: internal/bgpsim streams can be replayed over real TCP
// to a Collector, which reconstructs the same (time, prefix, AS-PATH)
// tuples the offline analyses consume. It is deliberately small — no RIB,
// no policy — because its role here is wire-protocol fidelity, not
// routing.
package bgpd

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"quicksand/internal/bgp"
)

// readerBufSize sizes each session's buffered reader: large enough that
// a burst of collector updates is absorbed in one read syscall, small
// enough that thousands of sessions stay cheap.
const readerBufSize = 64 << 10

// Config describes the local end of a session.
type Config struct {
	ASN   bgp.ASN
	BGPID netip.Addr
	// HoldTime is the proposed hold time (default 90s; the RFC minimum
	// of 3s is enforced unless zero, which disables the hold timer).
	HoldTime time.Duration
	// AS4 advertises the 4-octet-AS capability (default on when the
	// ASN needs it; set explicitly to negotiate on small ASNs too).
	AS4 bool
	// OnClose, when set, is invoked exactly once as the session finishes
	// tearing down — keepalives stopped, any final NOTIFICATION sent, and
	// the connection closed. It runs on whichever goroutine triggered the
	// teardown and must not call back into Close (the teardown is still
	// holding its once-guard).
	OnClose func(*Session)
	// Metrics, when set, counts session lifecycle events and messages
	// in/out. Typically one Metrics shared by all sessions of a daemon.
	Metrics *Metrics
}

func (c *Config) validate() error {
	if c.ASN == 0 {
		return errors.New("bgpd: ASN must be set")
	}
	if !c.BGPID.Is4() {
		return errors.New("bgpd: BGPID must be an IPv4 address")
	}
	if c.HoldTime != 0 && c.HoldTime < 3*time.Second {
		return fmt.Errorf("bgpd: hold time %v below the 3s minimum", c.HoldTime)
	}
	return nil
}

// Errors surfaced by session operations.
var (
	ErrClosed       = errors.New("bgpd: session closed")
	ErrHoldExpired  = errors.New("bgpd: hold timer expired")
	ErrNotification = errors.New("bgpd: received NOTIFICATION")
)

// Session is an established BGP session.
type Session struct {
	conn net.Conn

	localAS  bgp.ASN
	peerAS   bgp.ASN
	peerID   netip.Addr
	as4      bool // negotiated: both ends advertised the capability
	holdTime time.Duration

	writeMu sync.Mutex
	// br buffers conn on the read side so a burst of small messages
	// costs one syscall; readBuf is the reusable per-session message
	// buffer (both lazily initialised — only the single reader
	// goroutine touches them).
	br      *bufio.Reader
	readBuf []byte

	onClose func(*Session)
	met     *Metrics

	closeOnce sync.Once
	closed    chan struct{}
	// kaStarted records whether keepaliveLoop was ever launched; teardown
	// must not wait for a loop that never ran (Establish error paths send
	// NOTIFICATIONs before keepalives exist).
	kaStarted bool
	kaDone    chan struct{}
}

// Done returns a channel closed when the session has torn down (peer
// NOTIFICATION, hold-timer expiry, or local Close). It is the session
// lifecycle hook long-running daemons select on.
func (s *Session) Done() <-chan struct{} { return s.closed }

// PeerAS returns the peer's (capability-corrected) AS number.
func (s *Session) PeerAS() bgp.ASN { return s.peerAS }

// PeerID returns the peer's BGP identifier.
func (s *Session) PeerID() netip.Addr { return s.peerID }

// AS4 reports whether 4-octet AS_PATH encoding was negotiated.
func (s *Session) AS4() bool { return s.as4 }

// HoldTime returns the negotiated hold time (the minimum of both
// proposals; zero disables the hold timer).
func (s *Session) HoldTime() time.Duration { return s.holdTime }

// Establish performs the OPEN/KEEPALIVE handshake on conn and returns the
// session. Both ends call Establish concurrently, as in the BGP FSM's
// OpenSent/OpenConfirm states.
func Establish(conn net.Conn, cfg Config) (*Session, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.HoldTime == 0 {
		// Zero means "no hold timer" on the wire too.
	}
	holdSecs := uint16(cfg.HoldTime / time.Second)
	open := &bgp.Open{
		Version: 4, ASN: cfg.ASN, HoldTime: holdSecs, BGPID: cfg.BGPID,
		AS4: cfg.AS4 || cfg.ASN > 0xFFFF,
	}
	raw, err := open.Marshal()
	if err != nil {
		return nil, err
	}

	s := &Session{
		conn: conn, localAS: cfg.ASN, onClose: cfg.OnClose, met: cfg.Metrics,
		closed: make(chan struct{}), kaDone: make(chan struct{}),
	}

	// Send our OPEN and read the peer's concurrently: with synchronous
	// transports (net.Pipe) a sequential write would deadlock against
	// the peer doing the same.
	writeErr := make(chan error, 1)
	go func() {
		_, err := conn.Write(raw)
		if err == nil {
			s.met.MsgOut(bgp.TypeOpen)
		}
		writeErr <- err
	}()
	peerRaw, msgType, err := s.readMessage(0)
	if err != nil {
		return nil, fmt.Errorf("bgpd: reading peer OPEN: %w", err)
	}
	if err := <-writeErr; err != nil {
		return nil, fmt.Errorf("bgpd: sending OPEN: %w", err)
	}
	if msgType == bgp.TypeNotification {
		n, _ := bgp.ParseNotification(peerRaw)
		return nil, fmt.Errorf("%w: code %d subcode %d", ErrNotification, n.Code, n.Subcode)
	}
	if msgType != bgp.TypeOpen {
		return nil, fmt.Errorf("bgpd: expected OPEN, got type %d", msgType)
	}
	peerOpen, err := bgp.ParseOpen(peerRaw)
	if err != nil {
		return nil, err
	}
	if peerOpen.Version != 4 {
		s.notifyAndClose(bgp.NotifOpenMessageError, 1, nil)
		return nil, fmt.Errorf("bgpd: unsupported peer version %d", peerOpen.Version)
	}
	s.peerAS = peerOpen.ASN
	s.peerID = peerOpen.BGPID
	s.as4 = open.AS4 && peerOpen.AS4

	// Negotiated hold time: the smaller of the two proposals; zero on
	// either side disables it.
	s.holdTime = cfg.HoldTime
	peerHold := time.Duration(peerOpen.HoldTime) * time.Second
	if peerHold == 0 || (s.holdTime != 0 && peerHold < s.holdTime) {
		s.holdTime = peerHold
	}

	// Exchange the confirming KEEPALIVEs (again concurrently).
	ka, _ := (&bgp.Keepalive{}).Marshal()
	go func() {
		writeErr <- s.write(ka, 10*time.Second)
	}()
	if _, msgType, err = s.readMessage(s.holdTime); err != nil {
		return nil, fmt.Errorf("bgpd: awaiting KEEPALIVE: %w", err)
	}
	if err := <-writeErr; err != nil {
		return nil, err
	}
	if msgType != bgp.TypeKeepalive {
		return nil, fmt.Errorf("bgpd: expected KEEPALIVE, got type %d", msgType)
	}

	s.met.sessionEstablished()

	// Background keepalives at a third of the hold time.
	if s.holdTime > 0 {
		s.kaStarted = true
		go s.keepaliveLoop(s.holdTime / 3)
	} else {
		close(s.kaDone)
	}
	return s, nil
}

// write transmits raw under the write lock with a bounded deadline, so a
// peer that has stopped reading can never wedge the session's writers (a
// real risk with synchronous transports such as net.Pipe, and with dead
// TCP peers before keepalive timeouts fire).
func (s *Session) write(raw []byte, timeout time.Duration) error {
	err := s.writeRaw(raw, timeout)
	if err == nil && len(raw) > bgp.HeaderLen-1 {
		s.met.MsgOut(int(raw[bgp.HeaderLen-1]))
	}
	return err
}

// writeRaw transmits raw without message accounting (SendUpdates counts
// its own batch).
func (s *Session) writeRaw(raw []byte, timeout time.Duration) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if timeout > 0 {
		if err := s.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		defer s.conn.SetWriteDeadline(time.Time{})
	}
	_, err := s.conn.Write(raw)
	return err
}

func (s *Session) keepaliveLoop(interval time.Duration) {
	defer close(s.kaDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	ka, _ := (&bgp.Keepalive{}).Marshal()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			if err := s.write(ka, interval); err != nil {
				return
			}
		}
	}
}

// reader returns the session's buffered reader, creating it on first
// use (sessions built directly in tests never touch Establish).
func (s *Session) reader() *bufio.Reader {
	if s.br == nil {
		s.br = bufio.NewReaderSize(s.conn, readerBufSize)
	}
	return s.br
}

// readMessage reads one full BGP message, applying timeout as a read
// deadline when positive. The returned slice aliases the session's
// reusable message buffer and is only valid until the next read.
func (s *Session) readMessage(timeout time.Duration) ([]byte, int, error) {
	if timeout > 0 {
		if err := s.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, 0, err
		}
		defer s.conn.SetReadDeadline(time.Time{})
	}
	br := s.reader()
	if s.readBuf == nil {
		s.readBuf = make([]byte, bgp.MaxMessageLen)
	}
	hdr := s.readBuf[:bgp.HeaderLen]
	if _, err := io.ReadFull(br, hdr); err != nil {
		if isTimeout(err) {
			return nil, 0, ErrHoldExpired
		}
		return nil, 0, err
	}
	msgType, msgLen, err := bgp.ParseHeader(hdr)
	if err != nil {
		s.notifyAndClose(bgp.NotifMessageHeaderError, 0, nil)
		return nil, 0, err
	}
	raw := s.readBuf[:msgLen]
	if _, err := io.ReadFull(br, raw[bgp.HeaderLen:]); err != nil {
		if isTimeout(err) {
			return nil, 0, ErrHoldExpired
		}
		return nil, 0, err
	}
	s.met.MsgIn(msgType)
	return raw, msgType, nil
}

// bufferedMessage reports whether a complete BGP message is already
// sitting in the session's read buffer, i.e. whether another readMessage
// is guaranteed not to block. A buffered-but-malformed header counts as
// available so the read path surfaces its error.
func (s *Session) bufferedMessage() bool {
	br := s.reader()
	if br.Buffered() < bgp.HeaderLen {
		return false
	}
	hdr, err := br.Peek(bgp.HeaderLen)
	if err != nil {
		return false
	}
	_, msgLen, err := bgp.ParseHeader(hdr)
	if err != nil {
		return true
	}
	return br.Buffered() >= msgLen
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// SendUpdate transmits one UPDATE with the session's negotiated AS_PATH
// encoding.
func (s *Session) SendUpdate(u *bgp.Update) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	raw, err := u.Marshal(s.as4)
	if err != nil {
		return err
	}
	return s.write(raw, 0)
}

// RecvUpdate blocks until the next UPDATE arrives, transparently
// swallowing keepalives and enforcing the hold timer. A peer NOTIFICATION
// surfaces as ErrNotification; hold-timer expiry as ErrHoldExpired (after
// sending the corresponding NOTIFICATION).
func (s *Session) RecvUpdate() (*bgp.Update, error) {
	for {
		select {
		case <-s.closed:
			return nil, ErrClosed
		default:
		}
		raw, msgType, err := s.readMessage(s.holdTime)
		if err != nil {
			if errors.Is(err, ErrHoldExpired) {
				s.notifyAndClose(bgp.NotifHoldTimerExpired, 0, nil)
			}
			return nil, err
		}
		switch msgType {
		case bgp.TypeKeepalive:
			continue
		case bgp.TypeUpdate:
			return bgp.ParseUpdate(raw, s.as4)
		case bgp.TypeNotification:
			n, perr := bgp.ParseNotification(raw)
			if perr != nil {
				return nil, perr
			}
			s.closeConn()
			return nil, fmt.Errorf("%w: code %d subcode %d", ErrNotification, n.Code, n.Subcode)
		default:
			return nil, fmt.Errorf("bgpd: unexpected message type %d", msgType)
		}
	}
}

// RecvUpdateBatch decodes UPDATE messages into dst, blocking only for
// the first: once one UPDATE has arrived, every further message already
// sitting in the session's read buffer is decoded too, until the buffer
// runs dry or dst is full. Decoding reuses dst's retained slice capacity
// (bgp.ParseUpdateInto), so a long-lived dst amortises to zero
// allocations per message.
//
// It returns the number of updates decoded into dst[:n]; n may be
// positive even when err is non-nil (the error applies to the message
// after the n good ones). Keepalives are swallowed, the hold timer is
// enforced on the blocking read, and NOTIFICATION/close semantics match
// RecvUpdate.
func (s *Session) RecvUpdateBatch(dst []bgp.Update) (int, error) {
	n, _, err := s.recvUpdateBatch(dst)
	return n, err
}

// RecvUpdateBatchStamped is RecvUpdateBatch plus a batch-start
// timestamp: time.Now() taken the moment the first UPDATE of the batch
// came off the socket, before any of the batch was decoded. Latency
// measured from this stamp (it carries a monotonic reading) never
// under-reports: every update in the batch arrived at or after it, so
// per-update skew is bounded by the batch decode time rather than by
// the whole batch's socket dwell. The stamp is zero when n == 0.
func (s *Session) RecvUpdateBatchStamped(dst []bgp.Update) (int, time.Time, error) {
	return s.recvUpdateBatch(dst)
}

func (s *Session) recvUpdateBatch(dst []bgp.Update) (int, time.Time, error) {
	var start time.Time
	if len(dst) == 0 {
		return 0, start, nil
	}
	n := 0
	for {
		select {
		case <-s.closed:
			return n, start, ErrClosed
		default:
		}
		if n > 0 && !s.bufferedMessage() {
			return n, start, nil
		}
		timeout := s.holdTime
		if n > 0 {
			timeout = 0 // reading buffered bytes; never blocks
		}
		raw, msgType, err := s.readMessage(timeout)
		if err != nil {
			if errors.Is(err, ErrHoldExpired) {
				s.notifyAndClose(bgp.NotifHoldTimerExpired, 0, nil)
			}
			return n, start, err
		}
		switch msgType {
		case bgp.TypeKeepalive:
			continue
		case bgp.TypeUpdate:
			if n == 0 {
				start = time.Now()
			}
			if err := bgp.ParseUpdateInto(raw, s.as4, &dst[n]); err != nil {
				return n, start, err
			}
			n++
			if n == len(dst) {
				return n, start, nil
			}
		case bgp.TypeNotification:
			nf, perr := bgp.ParseNotification(raw)
			if perr != nil {
				return n, start, perr
			}
			s.closeConn()
			return n, start, fmt.Errorf("%w: code %d subcode %d", ErrNotification, nf.Code, nf.Subcode)
		default:
			return n, start, fmt.Errorf("bgpd: unexpected message type %d", msgType)
		}
	}
}

// SendUpdates marshals a batch of UPDATEs into one buffer and transmits
// them in a single write — the sender-side twin of RecvUpdateBatch
// (collectors emit updates in bursts; one syscall per burst instead of
// one per message).
func (s *Session) SendUpdates(us []*bgp.Update) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	// One appender buffer for the whole burst: AppendMessage encodes
	// straight into it, so the burst costs a handful of buffer growths
	// rather than several allocations per message.
	raw := make([]byte, 0, 64*len(us))
	var err error
	for _, u := range us {
		if raw, err = u.AppendMessage(raw, s.as4); err != nil {
			return err
		}
	}
	if len(raw) == 0 {
		return nil
	}
	if err := s.writeRaw(raw, 0); err != nil {
		return err
	}
	for range us {
		s.met.MsgOut(bgp.TypeUpdate)
	}
	return nil
}

// SendRaw transmits a pre-encoded burst of n UPDATE messages in one
// write. raw must hold complete BGP messages produced with the
// session's negotiated AS_PATH encoding (bgp.Update.AppendMessage with
// AS4()); n is the message count, for accounting. Load generators
// encode each burst once and replay it across iterations, keeping the
// sender cheap enough to saturate the receiver from the same machine.
func (s *Session) SendRaw(raw []byte, n int) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	if len(raw) == 0 {
		return nil
	}
	if err := s.writeRaw(raw, 0); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		s.met.MsgOut(bgp.TypeUpdate)
	}
	return nil
}

func (s *Session) notifyAndClose(code, subcode uint8, data []byte) {
	s.teardown(&bgp.Notification{Code: code, Subcode: subcode, Data: data})
}

func (s *Session) closeConn() {
	s.teardown(nil)
}

// teardown brings the session down exactly once, in an order that makes
// concurrent Close/keepaliveLoop/reader interleavings race-free:
//
//  1. close(closed) — new SendUpdate/RecvUpdate calls stop, and the
//     keepalive loop exits at its next wakeup;
//  2. wait for the keepalive loop, so no KEEPALIVE can ever be written
//     after the NOTIFICATION (or onto an already-closed conn);
//  3. best-effort send of the final NOTIFICATION (when one is due) under
//     a short deadline — if the peer is also tearing down (nobody
//     reading), the session must still come down;
//  4. close the conn and fire the OnClose lifecycle hook.
//
// Losers of the once-race block until the winner finishes, so Close
// returning means the teardown is complete on every path.
func (s *Session) teardown(n *bgp.Notification) {
	s.closeOnce.Do(func() {
		close(s.closed)
		if s.kaStarted {
			<-s.kaDone
		}
		if n != nil {
			if raw, err := n.Marshal(); err == nil {
				s.write(raw, time.Second)
			}
		}
		s.conn.Close()
		s.met.sessionClosed()
		if s.onClose != nil {
			s.onClose(s)
		}
	})
}

// Close sends a Cease NOTIFICATION and tears the session down. Safe to
// call multiple times and concurrently with any other session method;
// when it returns, the keepalive goroutine has exited.
func (s *Session) Close() error {
	s.notifyAndClose(bgp.NotifCease, 0, nil)
	return nil
}
