package torconsensus

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzParse(f *testing.F) {
	var buf bytes.Buffer
	if _, err := sampleConsensus().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("r n aWQ ZGc 2014-07-01 00:00:00 1.2.3.4 9001 0\ns Guard\nw Bandwidth=1\n")
	f.Fuzz(func(t *testing.T, doc string) {
		c, err := Parse(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Accepted consensuses must serialise and re-parse to the same
		// relay count.
		var out bytes.Buffer
		if _, err := c.WriteTo(&out); err != nil {
			t.Fatalf("accepted consensus failed to serialise: %v", err)
		}
		c2, err := Parse(&out)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(c2.Relays) != len(c.Relays) {
			t.Fatalf("relay count changed: %d -> %d", len(c.Relays), len(c2.Relays))
		}
	})
}
