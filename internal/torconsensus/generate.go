package torconsensus

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"quicksand/internal/bgp"
)

// Hosting records where generated relays live in address space: which
// prefixes exist, which AS originates each, and which prefix contains each
// relay. These prefixes feed the BGP simulator's origination table, and
// the analysis layer re-derives the relay→prefix mapping independently by
// longest-prefix match (the two must agree; a test checks that).
type Hosting struct {
	// Prefixes maps every relay-hosting prefix to its origin AS.
	Prefixes map[netip.Prefix]bgp.ASN
	// RelayPrefix maps each relay address to its hosting prefix.
	RelayPrefix map[netip.Addr]netip.Prefix
}

// OriginASes returns the distinct origin ASes of the hosting prefixes,
// ascending.
func (h *Hosting) OriginASes() []bgp.ASN {
	seen := make(map[bgp.ASN]bool)
	for _, a := range h.Prefixes {
		seen[a] = true
	}
	out := make([]bgp.ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GenConfig parameterises consensus generation. The defaults reproduce
// the population of the paper's §4 methodology.
type GenConfig struct {
	// Relay population. Guards and Exits count relays carrying those
	// flags; Both of them carry both (so guard-only = Guards-Both).
	Total  int
	Guards int
	Exits  int
	Both   int

	// GuardExitPrefixes is the number of distinct prefixes hosting
	// guard/exit relays (the paper's "Tor prefixes").
	GuardExitPrefixes int
	// MaxRelaysPerPrefix caps guard/exit relays in one prefix; the
	// fullest prefix is forced to exactly this count (Hetzner's /15
	// held 33).
	MaxRelaysPerPrefix int
	// MiddleOnlyPrefixes is the number of additional prefixes hosting
	// only middle relays.
	MiddleOnlyPrefixes int

	// HostASes is the candidate pool of hosting ASes (from the
	// topology); NumHostASes of them are used, weighted by a Zipf law so
	// a handful of hosters dominate.
	HostASes    []bgp.ASN
	NumHostASes int

	Seed       int64
	ValidAfter time.Time
}

// DefaultGenConfig returns the July-2014 population: 4586 relays, 1918
// guards, 891 exits, 442 flagged both, 1251 guard/exit prefixes announced
// by 650 ASes.
func DefaultGenConfig(hostASes []bgp.ASN) GenConfig {
	return GenConfig{
		Total: 4586, Guards: 1918, Exits: 891, Both: 442,
		GuardExitPrefixes:  1251,
		MaxRelaysPerPrefix: 33,
		MiddleOnlyPrefixes: 300,
		HostASes:           hostASes,
		NumHostASes:        650,
		Seed:               1,
		ValidAfter:         time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC),
	}
}

func (c *GenConfig) validate() error {
	if c.Both > c.Guards || c.Both > c.Exits {
		return fmt.Errorf("torconsensus: Both (%d) exceeds Guards (%d) or Exits (%d)", c.Both, c.Guards, c.Exits)
	}
	guardExit := c.Guards + c.Exits - c.Both
	if guardExit > c.Total {
		return fmt.Errorf("torconsensus: guard/exit population %d exceeds total %d", guardExit, c.Total)
	}
	if c.GuardExitPrefixes < 1 || guardExit < c.GuardExitPrefixes {
		return fmt.Errorf("torconsensus: need 1 <= prefixes (%d) <= guard/exit relays (%d)",
			c.GuardExitPrefixes, guardExit)
	}
	if c.MaxRelaysPerPrefix < 2 {
		return fmt.Errorf("torconsensus: MaxRelaysPerPrefix must be >= 2")
	}
	if guardExit > c.GuardExitPrefixes*c.MaxRelaysPerPrefix {
		return fmt.Errorf("torconsensus: %d guard/exit relays cannot fit %d prefixes capped at %d",
			guardExit, c.GuardExitPrefixes, c.MaxRelaysPerPrefix)
	}
	if c.NumHostASes < 1 || len(c.HostASes) < c.NumHostASes {
		return fmt.Errorf("torconsensus: need NumHostASes (%d) <= len(HostASes) (%d) and >= 1",
			c.NumHostASes, len(c.HostASes))
	}
	return nil
}

// addrAllocator hands out non-overlapping IPv4 blocks from 32.0.0.0
// upward, aligned to their size.
type addrAllocator struct{ cursor uint32 }

func (a *addrAllocator) alloc(bits int) netip.Prefix {
	size := uint32(1) << (32 - bits)
	if a.cursor%size != 0 {
		a.cursor += size - a.cursor%size
	}
	base := a.cursor
	a.cursor += size
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{
		byte(base >> 24), byte(base >> 16), byte(base >> 8), byte(base),
	}), bits)
}

// GenerateConsensus synthesizes a consensus document plus the address-
// space hosting plan. Output is deterministic for a given config.
func GenerateConsensus(cfg GenConfig) (*Consensus, *Hosting, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	guardExit := cfg.Guards + cfg.Exits - cfg.Both
	middles := cfg.Total - guardExit

	// --- Per-prefix guard/exit relay counts: start every prefix at one
	// relay, then distribute the surplus by preferential attachment so a
	// few prefixes grow heavy. The first prefix is forced to the cap.
	counts := make([]int, cfg.GuardExitPrefixes)
	for i := range counts {
		counts[i] = 1
	}
	surplus := guardExit - cfg.GuardExitPrefixes
	forced := cfg.MaxRelaysPerPrefix - 1
	if forced > surplus {
		forced = surplus
	}
	counts[0] += forced
	surplus -= forced
	// Preferential attachment over a sparse "growable" subset keeps the
	// median at 1: only 30% of prefixes are eligible to grow.
	growable := make([]int, 0, cfg.GuardExitPrefixes/3)
	for i := 1; i < cfg.GuardExitPrefixes; i++ {
		if rng.Float64() < 0.30 {
			growable = append(growable, i)
		}
	}
	if len(growable) == 0 {
		growable = append(growable, cfg.GuardExitPrefixes-1)
	}
	weights := make([]int, len(growable))
	totalW := 0
	for i := range weights {
		weights[i] = 1
		totalW++
	}
	for surplus > 0 {
		r := rng.Intn(totalW)
		idx := 0
		for i, w := range weights {
			if r < w {
				idx = i
				break
			}
			r -= w
		}
		pi := growable[idx]
		if counts[pi] >= cfg.MaxRelaysPerPrefix {
			// Saturated: retire from the growable set.
			totalW -= weights[idx]
			weights[idx] = 0
			if totalW == 0 {
				// Growable subset saturated: spill the rest uniformly
				// across the prefixes still below the cap (validate
				// guarantees enough global capacity).
				open := make([]int, 0, cfg.GuardExitPrefixes)
				for i := 0; i < cfg.GuardExitPrefixes; i++ {
					if counts[i] < cfg.MaxRelaysPerPrefix {
						open = append(open, i)
					}
				}
				for surplus > 0 && len(open) > 0 {
					j := rng.Intn(len(open))
					counts[open[j]]++
					surplus--
					if counts[open[j]] >= cfg.MaxRelaysPerPrefix {
						open[j] = open[len(open)-1]
						open = open[:len(open)-1]
					}
				}
				break
			}
			continue
		}
		counts[pi]++
		weights[idx]++
		totalW++
		surplus--
	}

	// --- Hosting ASes with Zipf weights (s ≈ 0.9), with the top five
	// hosters boosted: the paper's population has 5 ASes (Hetzner, OVH,
	// Abovenet, Fiberring, Online.net) carrying ~20% of all guard/exit
	// relays, far above a plain Zipf head.
	pool := append([]bgp.ASN(nil), cfg.HostASes...)
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	hostASes := pool[:cfg.NumHostASes]
	asWeights := make([]float64, len(hostASes))
	sumW := 0.0
	for i := range asWeights {
		asWeights[i] = 1 / math.Pow(float64(i+1), 0.9)
		if i < 5 {
			asWeights[i] *= 3
		}
		sumW += asWeights[i]
	}
	drawAS := func() int {
		r := rng.Float64() * sumW
		for i, w := range asWeights {
			if r < w {
				return i
			}
			r -= w
		}
		return len(asWeights) - 1
	}

	// --- Allocate prefixes: biggest relay counts get the widest blocks
	// and gravitate to the heaviest ASes. Every AS hosts at least one
	// prefix so the origin-AS count matches NumHostASes exactly.
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })

	alloc := &addrAllocator{cursor: 32 << 24} // start at 32.0.0.0
	host := &Hosting{
		Prefixes:    make(map[netip.Prefix]bgp.ASN),
		RelayPrefix: make(map[netip.Addr]netip.Prefix),
	}
	prefixOf := make([]netip.Prefix, len(counts))
	asOf := make([]int, len(counts))
	for rank, pi := range order {
		var bits int
		switch c := counts[pi]; {
		case c >= 20:
			bits = 15
		case c >= 8:
			bits = 17 + rng.Intn(2)
		case c >= 3:
			bits = 19 + rng.Intn(3)
		default:
			bits = 20 + rng.Intn(5)
		}
		p := alloc.alloc(bits)
		prefixOf[pi] = p
		// The twenty heaviest prefixes rotate among the top five hosting
		// ASes (big hosters announce many blocks); the next band spreads
		// one prefix to every remaining AS so the origin-AS count is
		// exact; the rest follow the Zipf draw.
		var ai int
		boosted := cfg.NumHostASes >= 5 && cfg.GuardExitPrefixes >= cfg.NumHostASes+15
		switch {
		case boosted && rank < 20:
			ai = rank % 5
		case boosted && rank < cfg.NumHostASes+15:
			ai = 5 + (rank - 20)
		case !boosted && rank < cfg.NumHostASes:
			ai = rank
		default:
			ai = drawAS()
		}
		asOf[pi] = ai
		host.Prefixes[p] = hostASes[ai]
	}

	// Middle-only prefixes, by AS weight.
	middlePrefixes := make([]netip.Prefix, 0, cfg.MiddleOnlyPrefixes)
	for i := 0; i < cfg.MiddleOnlyPrefixes; i++ {
		p := alloc.alloc(21 + rng.Intn(4))
		middlePrefixes = append(middlePrefixes, p)
		host.Prefixes[p] = hostASes[drawAS()]
	}

	// --- Build relays. Roles are interleaved round-robin over prefixes
	// so big prefixes host a mix of guards and exits.
	type role int
	const (
		roleGuard role = iota
		roleExit
		roleBoth
		roleMiddle
	)
	roles := make([]role, 0, cfg.Total)
	for i := 0; i < cfg.Guards-cfg.Both; i++ {
		roles = append(roles, roleGuard)
	}
	for i := 0; i < cfg.Exits-cfg.Both; i++ {
		roles = append(roles, roleExit)
	}
	for i := 0; i < cfg.Both; i++ {
		roles = append(roles, roleBoth)
	}
	rng.Shuffle(len(roles), func(i, j int) { roles[i], roles[j] = roles[j], roles[i] })

	c := &Consensus{
		ValidAfter: cfg.ValidAfter,
		FreshUntil: cfg.ValidAfter.Add(time.Hour),
		ValidUntil: cfg.ValidAfter.Add(3 * time.Hour),
	}
	hostCursor := make(map[netip.Prefix]uint32) // next host offset per prefix

	nextAddr := func(p netip.Prefix) netip.Addr {
		hostCursor[p]++
		off := hostCursor[p]
		base := p.Addr().As4()
		v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
		v += off
		return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	}

	mkRelay := func(idx int, p netip.Prefix, rl role) Relay {
		addr := nextAddr(p)
		host.RelayPrefix[addr] = p
		idBytes := make([]byte, 20)
		rng.Read(idBytes)
		dgBytes := make([]byte, 20)
		rng.Read(dgBytes)
		r := Relay{
			Nickname:  fmt.Sprintf("relay%04d", idx),
			Identity:  Fingerprint(idBytes),
			Digest:    Fingerprint(dgBytes),
			Published: cfg.ValidAfter.Add(-time.Duration(1+rng.Intn(18)) * time.Hour),
			Addr:      addr,
			ORPort:    9001,
			Flags:     FlagRunning | FlagValid | FlagFast,
		}
		// Log-normal consensus weights; entry/exit positions skew high.
		mu, sigma := 5.5, 1.1
		if rl != roleMiddle {
			mu = 7.0
		}
		bw := math.Exp(mu + sigma*rng.NormFloat64())
		if bw < 20 {
			bw = 20
		}
		if bw > 200000 {
			bw = 200000
		}
		r.Bandwidth = uint64(bw)
		if rng.Float64() < 0.65 {
			r.Flags |= FlagStable
		}
		switch rl {
		case roleGuard:
			r.Flags |= FlagGuard | FlagStable
			r.ExitPolicy = "reject 1-65535"
		case roleExit:
			r.Flags |= FlagExit
			r.ExitPolicy = exitPolicy(rng)
		case roleBoth:
			r.Flags |= FlagGuard | FlagExit | FlagStable
			r.ExitPolicy = exitPolicy(rng)
		default:
			r.ExitPolicy = "reject 1-65535"
		}
		return r
	}

	idx := 0
	ri := 0
	for pi, n := range counts {
		for k := 0; k < n; k++ {
			c.Relays = append(c.Relays, mkRelay(idx, prefixOf[pi], roles[ri]))
			idx++
			ri++
		}
	}

	// Middles: 70% into guard/exit prefixes (count-weighted), 30% into
	// middle-only prefixes.
	for m := 0; m < middles; m++ {
		var p netip.Prefix
		if len(middlePrefixes) == 0 || rng.Float64() < 0.7 {
			p = prefixOf[order[rng.Intn(1+rng.Intn(len(order)))]] // skewed to big prefixes
		} else {
			p = middlePrefixes[rng.Intn(len(middlePrefixes))]
		}
		c.Relays = append(c.Relays, mkRelay(idx, p, roleMiddle))
		idx++
	}
	return c, host, nil
}

func exitPolicy(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return "accept 80,443"
	case 1:
		return "accept 20-23,43,53,80,110,143,443,993,995"
	default:
		return "accept 1-65535"
	}
}
