package torconsensus

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"
)

// EvolveConfig parameterises one epoch of relay churn: the Tor network's
// population is not static over the paper's measurement month — relays
// leave, join, flap their Running flag, and drift in measured bandwidth.
type EvolveConfig struct {
	Seed int64
	// LeaveProb is the per-relay probability of leaving permanently.
	LeaveProb float64
	// JoinCount is the number of new relays joining, placed in existing
	// relay-hosting prefixes.
	JoinCount int
	// DownProb is the per-relay probability of losing the Running flag
	// for this epoch (it returns next epoch unless it leaves).
	DownProb float64
	// BWSigma is the standard deviation of the per-epoch log-normal
	// bandwidth drift (0 disables drift).
	BWSigma float64
}

// DefaultEvolveConfig models a month of churn: ~3% departures, ~2% down,
// mild bandwidth drift, and enough joiners to hold the population steady.
func DefaultEvolveConfig(seed int64, population int) EvolveConfig {
	return EvolveConfig{
		Seed:      seed,
		LeaveProb: 0.03,
		JoinCount: population * 3 / 100,
		DownProb:  0.02,
		BWSigma:   0.15,
	}
}

func (c *EvolveConfig) validate() error {
	if c.LeaveProb < 0 || c.LeaveProb >= 1 {
		return fmt.Errorf("torconsensus: LeaveProb %v out of [0,1)", c.LeaveProb)
	}
	if c.DownProb < 0 || c.DownProb >= 1 {
		return fmt.Errorf("torconsensus: DownProb %v out of [0,1)", c.DownProb)
	}
	if c.JoinCount < 0 {
		return fmt.Errorf("torconsensus: negative JoinCount")
	}
	if c.BWSigma < 0 {
		return fmt.Errorf("torconsensus: negative BWSigma")
	}
	return nil
}

// Evolve produces the next epoch's consensus from cur: departures,
// Running-flag flaps, bandwidth drift, and new relays placed into the
// hosting plan (which is extended in place with their addresses). The
// returned consensus is valid from validAfter.
func Evolve(cur *Consensus, host *Hosting, cfg EvolveConfig, validAfter time.Time) (*Consensus, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cur == nil || host == nil {
		return nil, fmt.Errorf("torconsensus: nil consensus or hosting")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	next := &Consensus{
		ValidAfter: validAfter,
		FreshUntil: validAfter.Add(time.Hour),
		ValidUntil: validAfter.Add(3 * time.Hour),
	}

	// Surviving relays, with flap and drift.
	for i := range cur.Relays {
		r := cur.Relays[i] // copy
		if rng.Float64() < cfg.LeaveProb {
			continue
		}
		if rng.Float64() < cfg.DownProb {
			r.Flags &^= FlagRunning
		} else {
			r.Flags |= FlagRunning
		}
		if cfg.BWSigma > 0 {
			r.Bandwidth = uint64(math.Max(20, float64(r.Bandwidth)*math.Exp(cfg.BWSigma*rng.NormFloat64())))
		}
		next.Relays = append(next.Relays, r)
	}

	// Joiners: placed into existing guard/exit prefixes at the next free
	// host address.
	prefixes := make([]netip.Prefix, 0, len(host.Prefixes))
	for p := range host.Prefixes {
		prefixes = append(prefixes, p)
	}
	sortPrefixesInPlace(prefixes)
	used := make(map[netip.Addr]bool, len(host.RelayPrefix))
	for a := range host.RelayPrefix {
		used[a] = true
	}
	for j := 0; j < cfg.JoinCount && len(prefixes) > 0; j++ {
		p := prefixes[rng.Intn(len(prefixes))]
		addr, ok := nextFreeAddr(p, used)
		if !ok {
			continue // prefix full; try another joiner slot next epoch
		}
		used[addr] = true
		host.RelayPrefix[addr] = p

		idBytes := make([]byte, 20)
		rng.Read(idBytes)
		dgBytes := make([]byte, 20)
		rng.Read(dgBytes)
		r := Relay{
			Nickname:   fmt.Sprintf("joiner%06d", rng.Intn(1000000)),
			Identity:   Fingerprint(idBytes),
			Digest:     Fingerprint(dgBytes),
			Published:  validAfter.Add(-time.Duration(1+rng.Intn(12)) * time.Hour),
			Addr:       addr,
			ORPort:     9001,
			Flags:      FlagRunning | FlagValid | FlagFast,
			Bandwidth:  uint64(math.Exp(5.5 + 1.1*rng.NormFloat64())),
			ExitPolicy: "reject 1-65535",
		}
		switch rng.Intn(10) {
		case 0, 1, 2: // ~30% guards
			r.Flags |= FlagGuard | FlagStable
		case 3: // ~10% exits
			r.Flags |= FlagExit
			r.ExitPolicy = exitPolicy(rng)
		}
		if r.Bandwidth < 20 {
			r.Bandwidth = 20
		}
		next.Relays = append(next.Relays, r)
	}
	return next, nil
}

// nextFreeAddr scans the prefix for the lowest unused host address,
// skipping the network address.
func nextFreeAddr(p netip.Prefix, used map[netip.Addr]bool) (netip.Addr, bool) {
	base := p.Addr().As4()
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	size := uint32(1) << (32 - p.Bits())
	for off := uint32(1); off < size-1; off++ {
		c := v + off
		addr := netip.AddrFrom4([4]byte{byte(c >> 24), byte(c >> 16), byte(c >> 8), byte(c)})
		if !used[addr] {
			return addr, true
		}
	}
	return netip.Addr{}, false
}

func sortPrefixesInPlace(ps []netip.Prefix) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0; j-- {
			a, b := ps[j-1], ps[j]
			if a.Addr().Less(b.Addr()) || (a.Addr() == b.Addr() && a.Bits() <= b.Bits()) {
				break
			}
			ps[j-1], ps[j] = ps[j], ps[j-1]
		}
	}
}
