// Package torconsensus models Tor network-status consensus documents: the
// relay list Tor clients download from directory servers and use for path
// selection.
//
// The document format is a faithful subset of the dir-spec v3 consensus
// ("r", "s", "w", "p" lines with the standard header and footer), enough
// that real tooling conventions apply: flags decide guard/exit roles and
// the "w Bandwidth=" weight drives bandwidth-proportional relay selection.
// A deterministic generator (see generate.go) synthesizes a consensus
// matching the population the paper measured in July 2014.
package torconsensus

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Flag is a relay status flag bitmask.
type Flag uint16

// Relay flags from dir-spec §3.4.1 (the subset the analyses use).
const (
	FlagAuthority Flag = 1 << iota
	FlagBadExit
	FlagExit
	FlagFast
	FlagGuard
	FlagHSDir
	FlagRunning
	FlagStable
	FlagV2Dir
	FlagValid
)

var flagNames = []struct {
	f    Flag
	name string
}{
	{FlagAuthority, "Authority"},
	{FlagBadExit, "BadExit"},
	{FlagExit, "Exit"},
	{FlagFast, "Fast"},
	{FlagGuard, "Guard"},
	{FlagHSDir, "HSDir"},
	{FlagRunning, "Running"},
	{FlagStable, "Stable"},
	{FlagV2Dir, "V2Dir"},
	{FlagValid, "Valid"},
}

// ParseFlag returns the Flag for a dir-spec flag name.
func ParseFlag(name string) (Flag, bool) {
	for _, fn := range flagNames {
		if fn.name == name {
			return fn.f, true
		}
	}
	return 0, false
}

// String renders the flag set in dir-spec order.
func (f Flag) String() string {
	var parts []string
	for _, fn := range flagNames {
		if f&fn.f != 0 {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, " ")
}

// Relay is one router entry of a consensus.
type Relay struct {
	Nickname  string
	Identity  string // base64 fingerprint, no padding
	Digest    string // base64 descriptor digest, no padding
	Published time.Time
	Addr      netip.Addr
	ORPort    uint16
	DirPort   uint16
	Flags     Flag
	Bandwidth uint64 // consensus weight from "w Bandwidth=", in kilobytes/s
	// ExitPolicy is the port summary from the "p" line, e.g.
	// "accept 80,443" or "reject 1-65535".
	ExitPolicy string
}

// HasFlag reports whether the relay carries flag f.
func (r *Relay) HasFlag(f Flag) bool { return r.Flags&f != 0 }

// IsGuard reports whether the relay is usable as an entry guard (Guard +
// Running + Valid).
func (r *Relay) IsGuard() bool {
	return r.HasFlag(FlagGuard) && r.HasFlag(FlagRunning) && r.HasFlag(FlagValid)
}

// IsExit reports whether the relay is usable as an exit (Exit + Running +
// Valid and not BadExit).
func (r *Relay) IsExit() bool {
	return r.HasFlag(FlagExit) && r.HasFlag(FlagRunning) && r.HasFlag(FlagValid) && !r.HasFlag(FlagBadExit)
}

// AllowsPort reports whether the relay's exit-policy summary admits
// exiting to the given port. An empty policy rejects everything.
func (r *Relay) AllowsPort(port uint16) bool {
	fields := strings.Fields(r.ExitPolicy)
	if len(fields) != 2 {
		return false
	}
	verdict := fields[0] == "accept"
	for _, span := range strings.Split(fields[1], ",") {
		lo, hi, ok := parsePortSpan(span)
		if !ok {
			return false
		}
		if port >= lo && port <= hi {
			return verdict
		}
	}
	return !verdict
}

func parsePortSpan(s string) (lo, hi uint16, ok bool) {
	if i := strings.IndexByte(s, '-'); i >= 0 {
		l, err1 := strconv.ParseUint(s[:i], 10, 16)
		h, err2 := strconv.ParseUint(s[i+1:], 10, 16)
		if err1 != nil || err2 != nil || l > h {
			return 0, 0, false
		}
		return uint16(l), uint16(h), true
	}
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, 0, false
	}
	return uint16(v), uint16(v), true
}

// Consensus is a network-status consensus document.
type Consensus struct {
	ValidAfter time.Time
	FreshUntil time.Time
	ValidUntil time.Time
	Relays     []Relay
}

// Guards returns pointers to every relay usable as a guard.
func (c *Consensus) Guards() []*Relay { return c.filter((*Relay).IsGuard) }

// Exits returns pointers to every relay usable as an exit.
func (c *Consensus) Exits() []*Relay { return c.filter((*Relay).IsExit) }

// Running returns pointers to every Running+Valid relay.
func (c *Consensus) Running() []*Relay {
	return c.filter(func(r *Relay) bool { return r.HasFlag(FlagRunning) && r.HasFlag(FlagValid) })
}

func (c *Consensus) filter(pred func(*Relay) bool) []*Relay {
	var out []*Relay
	for i := range c.Relays {
		if pred(&c.Relays[i]) {
			out = append(out, &c.Relays[i])
		}
	}
	return out
}

// ByAddr returns the relay with the given address, or nil. Addresses are
// unique in generated consensuses.
func (c *Consensus) ByAddr(a netip.Addr) *Relay {
	for i := range c.Relays {
		if c.Relays[i].Addr == a {
			return &c.Relays[i]
		}
	}
	return nil
}

const timeLayout = "2006-01-02 15:04:05"

// WriteTo serialises the consensus in dir-spec text form.
func (c *Consensus) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "network-status-version 3\n")
	fmt.Fprintf(&b, "vote-status consensus\n")
	fmt.Fprintf(&b, "valid-after %s\n", c.ValidAfter.UTC().Format(timeLayout))
	fmt.Fprintf(&b, "fresh-until %s\n", c.FreshUntil.UTC().Format(timeLayout))
	fmt.Fprintf(&b, "valid-until %s\n", c.ValidUntil.UTC().Format(timeLayout))
	for i := range c.Relays {
		r := &c.Relays[i]
		fmt.Fprintf(&b, "r %s %s %s %s %s %d %d\n",
			r.Nickname, r.Identity, r.Digest,
			r.Published.UTC().Format(timeLayout), r.Addr, r.ORPort, r.DirPort)
		fmt.Fprintf(&b, "s %s\n", r.Flags)
		fmt.Fprintf(&b, "w Bandwidth=%d\n", r.Bandwidth)
		if r.ExitPolicy != "" {
			fmt.Fprintf(&b, "p %s\n", r.ExitPolicy)
		}
	}
	fmt.Fprintf(&b, "directory-footer\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Parse reads a consensus in the format produced by WriteTo. Unknown
// keyword lines are skipped, matching how Tor tolerates consensus
// extensions; malformed known lines are errors.
func Parse(rd io.Reader) (*Consensus, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	c := &Consensus{}
	var cur *Relay
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(msg string) error {
			return fmt.Errorf("torconsensus: line %d: %s: %q", lineNo, msg, line)
		}
		switch fields[0] {
		case "network-status-version":
			if len(fields) < 2 || fields[1] != "3" {
				return nil, fail("unsupported version")
			}
		case "valid-after", "fresh-until", "valid-until":
			if len(fields) != 3 {
				return nil, fail("bad time line")
			}
			ts, err := time.Parse(timeLayout, fields[1]+" "+fields[2])
			if err != nil {
				return nil, fail(err.Error())
			}
			switch fields[0] {
			case "valid-after":
				c.ValidAfter = ts
			case "fresh-until":
				c.FreshUntil = ts
			default:
				c.ValidUntil = ts
			}
		case "r":
			if len(fields) != 9 {
				return nil, fail("r line needs 9 fields")
			}
			pub, err := time.Parse(timeLayout, fields[4]+" "+fields[5])
			if err != nil {
				return nil, fail("bad published time")
			}
			addr, err := netip.ParseAddr(fields[6])
			if err != nil {
				return nil, fail("bad address")
			}
			orPort, err1 := strconv.ParseUint(fields[7], 10, 16)
			dirPort, err2 := strconv.ParseUint(fields[8], 10, 16)
			if err1 != nil || err2 != nil {
				return nil, fail("bad port")
			}
			c.Relays = append(c.Relays, Relay{
				Nickname: fields[1], Identity: fields[2], Digest: fields[3],
				Published: pub, Addr: addr,
				ORPort: uint16(orPort), DirPort: uint16(dirPort),
			})
			cur = &c.Relays[len(c.Relays)-1]
		case "s":
			if cur == nil {
				return nil, fail("s line before any r line")
			}
			for _, name := range fields[1:] {
				f, ok := ParseFlag(name)
				if !ok {
					return nil, fail("unknown flag " + name)
				}
				cur.Flags |= f
			}
		case "w":
			if cur == nil {
				return nil, fail("w line before any r line")
			}
			for _, kv := range fields[1:] {
				if !strings.HasPrefix(kv, "Bandwidth=") {
					continue
				}
				bw, err := strconv.ParseUint(strings.TrimPrefix(kv, "Bandwidth="), 10, 64)
				if err != nil {
					return nil, fail("bad bandwidth")
				}
				cur.Bandwidth = bw
			}
		case "p":
			if cur == nil {
				return nil, fail("p line before any r line")
			}
			cur.ExitPolicy = strings.Join(fields[1:], " ")
		case "vote-status", "directory-footer":
			// recognised, nothing to record
		default:
			// Unknown keyword: tolerated.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(c.Relays) == 0 {
		return nil, fmt.Errorf("torconsensus: no relays in document")
	}
	return c, nil
}

// Fingerprint renders a synthetic base64 identity for seeded generation.
func Fingerprint(b []byte) string {
	return base64.RawStdEncoding.EncodeToString(b)
}

// SortByBandwidth sorts relays descending by consensus weight (stable,
// with identity as the tiebreak), which analysis and selection code rely
// on for determinism.
func SortByBandwidth(rs []*Relay) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Bandwidth != rs[j].Bandwidth {
			return rs[i].Bandwidth > rs[j].Bandwidth
		}
		return rs[i].Identity < rs[j].Identity
	})
}
