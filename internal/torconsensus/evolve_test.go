package torconsensus

import (
	"testing"
	"time"
)

func TestEvolveBasics(t *testing.T) {
	cfg := smallGenConfig()
	cur, host, err := GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := len(cur.Relays)
	hostBefore := len(host.RelayPrefix)
	ecfg := DefaultEvolveConfig(7, before)
	va2 := cfg.ValidAfter.Add(30 * 24 * time.Hour)
	next, err := Evolve(cur, host, ecfg, va2)
	if err != nil {
		t.Fatal(err)
	}
	if !next.ValidAfter.Equal(va2) {
		t.Fatalf("ValidAfter = %v", next.ValidAfter)
	}
	// Departures and joins roughly balance; population stays within 10%.
	if got := len(next.Relays); got < before*90/100 || got > before*110/100 {
		t.Fatalf("population %d -> %d", before, got)
	}
	// The original consensus is untouched.
	if len(cur.Relays) != before {
		t.Fatal("Evolve mutated the input consensus")
	}
	// Hosting gained exactly the joiners' addresses.
	joiners := 0
	curAddrs := make(map[string]bool, before)
	for i := range cur.Relays {
		curAddrs[cur.Relays[i].Addr.String()] = true
	}
	for i := range next.Relays {
		if !curAddrs[next.Relays[i].Addr.String()] {
			joiners++
		}
	}
	if len(host.RelayPrefix) != hostBefore+joiners {
		t.Fatalf("hosting grew by %d, joiners = %d", len(host.RelayPrefix)-hostBefore, joiners)
	}
	// Every joiner lives inside its recorded prefix.
	for i := range next.Relays {
		r := &next.Relays[i]
		p, ok := host.RelayPrefix[r.Addr]
		if !ok {
			t.Fatalf("relay %v missing from hosting", r.Addr)
		}
		if !p.Contains(r.Addr) {
			t.Fatalf("relay %v outside prefix %v", r.Addr, p)
		}
	}
	// Some relays flapped down.
	down := 0
	for i := range next.Relays {
		if !next.Relays[i].HasFlag(FlagRunning) {
			down++
		}
	}
	if down == 0 {
		t.Fatal("no relay lost Running despite DownProb > 0")
	}
}

func TestEvolveDeterministic(t *testing.T) {
	cfg := smallGenConfig()
	cur, host1, err := GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, host2, err := GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := DefaultEvolveConfig(9, len(cur.Relays))
	va := cfg.ValidAfter.Add(30 * 24 * time.Hour)
	a, err := Evolve(cur, host1, ecfg, va)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evolve(cur, host2, ecfg, va)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Relays) != len(b.Relays) {
		t.Fatal("nondeterministic evolution")
	}
	for i := range a.Relays {
		if a.Relays[i].Identity != b.Relays[i].Identity || a.Relays[i].Bandwidth != b.Relays[i].Bandwidth {
			t.Fatalf("relay %d differs", i)
		}
	}
}

func TestEvolveValidation(t *testing.T) {
	cfg := smallGenConfig()
	cur, host, err := GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	va := cfg.ValidAfter
	for i, bad := range []EvolveConfig{
		{LeaveProb: 1},
		{DownProb: -0.1},
		{JoinCount: -1},
		{BWSigma: -1},
	} {
		if _, err := Evolve(cur, host, bad, va); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Evolve(nil, host, EvolveConfig{}, va); err == nil {
		t.Fatal("nil consensus accepted")
	}
}

func TestEvolveChainedEpochs(t *testing.T) {
	cfg := smallGenConfig()
	cons, host, err := GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	va := cfg.ValidAfter
	for epoch := 1; epoch <= 6; epoch++ {
		va = va.Add(30 * 24 * time.Hour)
		cons, err = Evolve(cons, host, DefaultEvolveConfig(int64(epoch), len(cons.Relays)), va)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if len(cons.Guards()) == 0 || len(cons.Exits()) == 0 {
			t.Fatalf("epoch %d: guard/exit population collapsed", epoch)
		}
	}
	// Addresses stay unique across the whole chain.
	seen := make(map[string]bool)
	for i := range cons.Relays {
		k := cons.Relays[i].Addr.String()
		if seen[k] {
			t.Fatalf("duplicate address %s after evolution", k)
		}
		seen[k] = true
	}
}
