package torconsensus

import (
	"strings"
	"testing"
	"time"

	"quicksand/internal/bgp"
)

func hostASPool(n int) []bgp.ASN {
	out := make([]bgp.ASN, n)
	for i := range out {
		out[i] = bgp.ASN(10001 + i)
	}
	return out
}

// Regression: when the preferential-attachment "growable" prefix subset
// saturated, the surplus guard/exit relays were dumped uniformly over
// all prefixes with no cap check, silently violating the documented
// MaxRelaysPerPrefix invariant (and panicking for GuardExitPrefixes=1).
func TestGenerateRespectsRelayCapUnderSaturation(t *testing.T) {
	// 60 guard/exit relays into 15 prefixes capped at 4: exactly
	// feasible, so the spill path must fill every prefix to the brim
	// without ever exceeding the cap.
	cfg := GenConfig{
		Total: 80, Guards: 40, Exits: 25, Both: 5,
		GuardExitPrefixes:  15,
		MaxRelaysPerPrefix: 4,
		MiddleOnlyPrefixes: 2,
		HostASes:           hostASPool(8),
		NumHostASes:        4,
		Seed:               7,
		ValidAfter:         time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC),
	}
	cons, host, err := GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perPrefix := make(map[string]int)
	for i := range cons.Relays {
		r := &cons.Relays[i]
		if !r.IsGuard() && !r.IsExit() {
			continue
		}
		perPrefix[host.RelayPrefix[r.Addr].String()]++
	}
	total := 0
	for p, n := range perPrefix {
		total += n
		if n > cfg.MaxRelaysPerPrefix {
			t.Errorf("prefix %s hosts %d guard/exit relays, cap %d", p, n, cfg.MaxRelaysPerPrefix)
		}
	}
	if want := cfg.Guards + cfg.Exits - cfg.Both; total != want {
		t.Errorf("placed %d guard/exit relays, want %d", total, want)
	}
}

func TestGenerateRejectsInfeasibleCap(t *testing.T) {
	// 61 relays cannot fit 15 prefixes capped at 4 (capacity 60); the
	// old code would either violate the cap or loop. Must error.
	cfg := GenConfig{
		Total: 80, Guards: 41, Exits: 25, Both: 5,
		GuardExitPrefixes:  15,
		MaxRelaysPerPrefix: 4,
		HostASes:           hostASPool(8),
		NumHostASes:        4,
		Seed:               7,
		ValidAfter:         time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC),
	}
	_, _, err := GenerateConsensus(cfg)
	if err == nil || !strings.Contains(err.Error(), "cannot fit") {
		t.Fatalf("infeasible config: got err %v, want capacity error", err)
	}
}
