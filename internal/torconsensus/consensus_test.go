package torconsensus

import (
	"bytes"
	"net/netip"
	"sort"
	"strings"
	"testing"
	"time"

	"quicksand/internal/bgp"
)

func sampleConsensus() *Consensus {
	va := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
	return &Consensus{
		ValidAfter: va, FreshUntil: va.Add(time.Hour), ValidUntil: va.Add(3 * time.Hour),
		Relays: []Relay{
			{
				Nickname: "alpha", Identity: "aWRlbnRpdHkx", Digest: "ZGlnZXN0MQ",
				Published: va.Add(-2 * time.Hour),
				Addr:      netip.MustParseAddr("78.46.1.10"), ORPort: 9001,
				Flags:     FlagGuard | FlagFast | FlagRunning | FlagStable | FlagValid,
				Bandwidth: 5120, ExitPolicy: "reject 1-65535",
			},
			{
				Nickname: "beta", Identity: "aWRlbnRpdHky", Digest: "ZGlnZXN0Mg",
				Published: va.Add(-3 * time.Hour),
				Addr:      netip.MustParseAddr("93.115.2.3"), ORPort: 443, DirPort: 80,
				Flags:     FlagExit | FlagFast | FlagRunning | FlagValid,
				Bandwidth: 900, ExitPolicy: "accept 80,443",
			},
			{
				Nickname: "gamma", Identity: "aWRlbnRpdHkz", Digest: "ZGlnZXN0Mw",
				Published: va.Add(-time.Hour),
				Addr:      netip.MustParseAddr("10.9.8.7"), ORPort: 9001,
				Flags:     FlagFast | FlagRunning | FlagValid,
				Bandwidth: 300, ExitPolicy: "reject 1-65535",
			},
		},
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	c := sampleConsensus()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ValidAfter.Equal(c.ValidAfter) || !got.ValidUntil.Equal(c.ValidUntil) {
		t.Fatalf("times: %+v", got)
	}
	if len(got.Relays) != 3 {
		t.Fatalf("relays = %d", len(got.Relays))
	}
	for i := range c.Relays {
		a, b := c.Relays[i], got.Relays[i]
		if a.Nickname != b.Nickname || a.Identity != b.Identity || a.Digest != b.Digest ||
			a.Addr != b.Addr || a.ORPort != b.ORPort || a.DirPort != b.DirPort ||
			a.Flags != b.Flags || a.Bandwidth != b.Bandwidth || a.ExitPolicy != b.ExitPolicy ||
			!a.Published.Equal(b.Published) {
			t.Fatalf("relay %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"network-status-version 2\n",
		"valid-after nonsense\n",
		"r too few fields\n",
		"s Guard\n", // s before r
		"w Bandwidth=1\n",
		"p accept 80\n",
		"r n id dg 2014-07-01 00:00:00 notanip 9001 0\n",
		"r n id dg 2014-07-01 00:00:00 1.2.3.4 notaport 0\n",
		"r n id dg 2014-07-01 00:00:00 1.2.3.4 9001 0\ns NotAFlag\n",
		"r n id dg 2014-07-01 00:00:00 1.2.3.4 9001 0\nw Bandwidth=abc\n",
		"", // no relays
	}
	for i, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Fatalf("case %d: malformed document accepted: %q", i, doc)
		}
	}
}

func TestParseToleratesUnknownKeywords(t *testing.T) {
	doc := "network-status-version 3\n" +
		"shiny-new-keyword whatever\n" +
		"r n aWQ ZGc 2014-07-01 00:00:00 1.2.3.4 9001 0\n" +
		"s Guard Running Valid\n" +
		"w Bandwidth=100\n"
	c, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Relays) != 1 || !c.Relays[0].IsGuard() {
		t.Fatalf("got %+v", c.Relays)
	}
}

func TestFlagStringRoundTrip(t *testing.T) {
	f := FlagGuard | FlagExit | FlagRunning
	s := f.String()
	var back Flag
	for _, name := range strings.Fields(s) {
		fl, ok := ParseFlag(name)
		if !ok {
			t.Fatalf("unknown flag name %q", name)
		}
		back |= fl
	}
	if back != f {
		t.Fatalf("round trip %v != %v", back, f)
	}
	if _, ok := ParseFlag("Bogus"); ok {
		t.Fatal("ParseFlag accepted bogus name")
	}
}

func TestGuardExitPredicates(t *testing.T) {
	c := sampleConsensus()
	if g := c.Guards(); len(g) != 1 || g[0].Nickname != "alpha" {
		t.Fatalf("Guards = %v", g)
	}
	if e := c.Exits(); len(e) != 1 || e[0].Nickname != "beta" {
		t.Fatalf("Exits = %v", e)
	}
	if r := c.Running(); len(r) != 3 {
		t.Fatalf("Running = %d", len(r))
	}
	bad := Relay{Flags: FlagExit | FlagRunning | FlagValid | FlagBadExit}
	if bad.IsExit() {
		t.Fatal("BadExit relay counted as exit")
	}
}

func TestAllowsPort(t *testing.T) {
	r := Relay{ExitPolicy: "accept 80,443"}
	if !r.AllowsPort(443) || r.AllowsPort(22) {
		t.Fatal("accept list wrong")
	}
	r = Relay{ExitPolicy: "reject 25,119"}
	if !r.AllowsPort(80) || r.AllowsPort(25) {
		t.Fatal("reject list wrong")
	}
	r = Relay{ExitPolicy: "accept 20-23,80"}
	if !r.AllowsPort(21) || r.AllowsPort(24) {
		t.Fatal("range handling wrong")
	}
	r = Relay{}
	if r.AllowsPort(80) {
		t.Fatal("empty policy should reject")
	}
	r = Relay{ExitPolicy: "accept 99999"}
	if r.AllowsPort(80) {
		t.Fatal("invalid span should reject")
	}
}

func TestByAddr(t *testing.T) {
	c := sampleConsensus()
	if r := c.ByAddr(netip.MustParseAddr("93.115.2.3")); r == nil || r.Nickname != "beta" {
		t.Fatalf("ByAddr = %v", r)
	}
	if r := c.ByAddr(netip.MustParseAddr("1.1.1.1")); r != nil {
		t.Fatal("ByAddr found nonexistent relay")
	}
}

func TestSortByBandwidth(t *testing.T) {
	c := sampleConsensus()
	rs := c.Running()
	SortByBandwidth(rs)
	if rs[0].Nickname != "alpha" || rs[2].Nickname != "gamma" {
		t.Fatalf("order: %v %v %v", rs[0].Nickname, rs[1].Nickname, rs[2].Nickname)
	}
}

// --- generator tests ---

func hostPool(n int) []bgp.ASN {
	out := make([]bgp.ASN, n)
	for i := range out {
		out[i] = bgp.ASN(10001 + i)
	}
	return out
}

func smallGenConfig() GenConfig {
	return GenConfig{
		Total: 500, Guards: 200, Exits: 100, Both: 40,
		GuardExitPrefixes:  140,
		MaxRelaysPerPrefix: 20,
		MiddleOnlyPrefixes: 30,
		HostASes:           hostPool(120),
		NumHostASes:        80,
		Seed:               3,
		ValidAfter:         time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC),
	}
}

func TestGenerateCounts(t *testing.T) {
	cfg := smallGenConfig()
	c, host, err := GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Relays) != cfg.Total {
		t.Fatalf("relays = %d, want %d", len(c.Relays), cfg.Total)
	}
	var guards, exits, both int
	for i := range c.Relays {
		r := &c.Relays[i]
		g := r.HasFlag(FlagGuard)
		e := r.HasFlag(FlagExit)
		if g {
			guards++
		}
		if e {
			exits++
		}
		if g && e {
			both++
		}
	}
	if guards != cfg.Guards || exits != cfg.Exits || both != cfg.Both {
		t.Fatalf("guards=%d exits=%d both=%d, want %d/%d/%d",
			guards, exits, both, cfg.Guards, cfg.Exits, cfg.Both)
	}
	if len(host.RelayPrefix) != cfg.Total {
		t.Fatalf("RelayPrefix entries = %d", len(host.RelayPrefix))
	}
}

func TestGenerateHostingShape(t *testing.T) {
	cfg := smallGenConfig()
	c, host, err := GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count guard/exit relays per prefix.
	perPrefix := make(map[netip.Prefix]int)
	for i := range c.Relays {
		r := &c.Relays[i]
		if !r.HasFlag(FlagGuard) && !r.HasFlag(FlagExit) {
			continue
		}
		perPrefix[host.RelayPrefix[r.Addr]]++
	}
	if len(perPrefix) != cfg.GuardExitPrefixes {
		t.Fatalf("guard/exit prefixes = %d, want %d", len(perPrefix), cfg.GuardExitPrefixes)
	}
	counts := make([]int, 0, len(perPrefix))
	maxCount := 0
	for _, n := range perPrefix {
		counts = append(counts, n)
		if n > maxCount {
			maxCount = n
		}
	}
	sort.Ints(counts)
	if med := counts[len(counts)/2]; med > 2 {
		t.Fatalf("median relays/prefix = %d, want <= 2", med)
	}
	if maxCount != cfg.MaxRelaysPerPrefix {
		t.Fatalf("max relays/prefix = %d, want %d", maxCount, cfg.MaxRelaysPerPrefix)
	}
	// Origin AS count matches.
	origins := host.OriginASes()
	if len(origins) > cfg.NumHostASes {
		t.Fatalf("origin ASes = %d, want <= %d", len(origins), cfg.NumHostASes)
	}
	// Every relay address is inside its hosting prefix.
	for addr, p := range host.RelayPrefix {
		if !p.Contains(addr) {
			t.Fatalf("relay %v outside its prefix %v", addr, p)
		}
	}
}

func TestGeneratePrefixesDisjoint(t *testing.T) {
	_, host, err := GenerateConsensus(smallGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	prefixes := make([]netip.Prefix, 0, len(host.Prefixes))
	for p := range host.Prefixes {
		prefixes = append(prefixes, p)
	}
	for i := 0; i < len(prefixes); i++ {
		for j := i + 1; j < len(prefixes); j++ {
			if prefixes[i].Overlaps(prefixes[j]) {
				t.Fatalf("prefixes overlap: %v and %v", prefixes[i], prefixes[j])
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallGenConfig()
	c1, _, err := GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Relays) != len(c2.Relays) {
		t.Fatal("nondeterministic relay count")
	}
	for i := range c1.Relays {
		if c1.Relays[i].Identity != c2.Relays[i].Identity || c1.Relays[i].Addr != c2.Relays[i].Addr {
			t.Fatalf("relay %d differs between runs", i)
		}
	}
}

func TestGenerateUniqueAddresses(t *testing.T) {
	c, _, err := GenerateConsensus(smallGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[netip.Addr]bool)
	for i := range c.Relays {
		if seen[c.Relays[i].Addr] {
			t.Fatalf("duplicate address %v", c.Relays[i].Addr)
		}
		seen[c.Relays[i].Addr] = true
	}
}

func TestGenerateRoundTripsThroughFormat(t *testing.T) {
	c, _, err := GenerateConsensus(smallGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Relays) != len(c.Relays) {
		t.Fatalf("relays = %d, want %d", len(got.Relays), len(c.Relays))
	}
	if len(got.Guards()) != len(c.Guards()) || len(got.Exits()) != len(c.Exits()) {
		t.Fatal("guard/exit counts changed through serialization")
	}
}

func TestGenerateValidation(t *testing.T) {
	for i, mutate := range []func(*GenConfig){
		func(c *GenConfig) { c.Both = c.Guards + 1 },
		func(c *GenConfig) { c.Total = 10 },
		func(c *GenConfig) { c.GuardExitPrefixes = 0 },
		func(c *GenConfig) { c.GuardExitPrefixes = 100000 },
		func(c *GenConfig) { c.MaxRelaysPerPrefix = 1 },
		func(c *GenConfig) { c.NumHostASes = 0 },
		func(c *GenConfig) { c.NumHostASes = len(c.HostASes) + 1 },
	} {
		cfg := smallGenConfig()
		mutate(&cfg)
		if _, _, err := GenerateConsensus(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestGeneratePaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation in -short mode")
	}
	cfg := DefaultGenConfig(hostPool(800))
	c, host, err := GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Relays) != 4586 {
		t.Fatalf("relays = %d", len(c.Relays))
	}
	guards := 0
	exits := 0
	for i := range c.Relays {
		if c.Relays[i].HasFlag(FlagGuard) {
			guards++
		}
		if c.Relays[i].HasFlag(FlagExit) {
			exits++
		}
	}
	if guards != 1918 || exits != 891 {
		t.Fatalf("guards=%d exits=%d", guards, exits)
	}
	if got := len(host.OriginASes()); got < 500 || got > 650 {
		t.Fatalf("origin ASes = %d, want ~650", got)
	}
}
