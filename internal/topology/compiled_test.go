package topology

import (
	"fmt"
	"math/rand"
	"testing"

	"quicksand/internal/bgp"
)

// diffTables compares a compiled result against a legacy map table and
// returns a description of the first few mismatches.
func diffTables(t *testing.T, cr *CompiledRoutes, rt RouteTable) {
	t.Helper()
	for i := 0; i < cr.Len(); i++ {
		asn := cr.ASN(i)
		got := cr.At(i)
		want, ok := rt[asn]
		if !ok {
			want = Route{}
		}
		if got != want {
			t.Fatalf("AS %v: compiled %+v, legacy %+v", asn, got, want)
		}
	}
	for asn := range rt {
		if _, ok := cr.Route(asn); !ok {
			t.Fatalf("AS %v: routed in legacy table, unrouted in compiled", asn)
		}
	}
}

// TestCompiledMatchesLegacy pins the compiled engine bit-for-bit against
// ComputeRoutesFiltered across generated topologies, multi-origin hijack
// configs, announcement scoping, and import filters.
func TestCompiledMatchesLegacy(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g, err := Generate(GenConfig{
			Tier1: 3, Tier2: 25, Tier3: 150,
			Tier2PeerProb: 0.1, MaxT2Providers: 3, MaxT3Providers: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		all := g.ASNs()
		pick := func() bgp.ASN { return all[rng.Intn(len(all))] }

		cases := make([][]Origin, 0, 8)
		v, a := pick(), pick()
		for a == v {
			a = pick()
		}
		cases = append(cases,
			[]Origin{{ASN: v}},
			[]Origin{{ASN: v}, {ASN: a}}, // hijack: two origins compete
			[]Origin{{ASN: v}, {ASN: a, WithholdFrom: map[bgp.ASN]bool{g.Neighbors(a)[0]: true}}},
		)
		if nbs := g.Neighbors(a); len(nbs) > 0 {
			only := map[bgp.ASN]bool{nbs[rng.Intn(len(nbs))]: true}
			cases = append(cases, []Origin{{ASN: v}, {ASN: a, AnnounceOnly: only}})
		}
		validators := make(map[bgp.ASN]bool)
		for _, asn := range all {
			if rng.Float64() < 0.3 {
				validators[asn] = true
			}
		}
		rov := func(at, origin bgp.ASN) bool {
			return !validators[at] || origin == v
		}
		for ci, origins := range cases {
			for _, filter := range []ImportFilter{nil, rov} {
				rt, err := g.ComputeRoutesFiltered(filter, origins...)
				if err != nil {
					t.Fatal(err)
				}
				cr, err := g.Compiled().Routes(nil, filter, origins...)
				if err != nil {
					t.Fatal(err)
				}
				t.Run(fmt.Sprintf("seed%d/case%d/filtered=%v", seed, ci, filter != nil), func(t *testing.T) {
					diffTables(t, cr, rt)
				})
			}
		}
	}
}

// TestCompiledDeltaRecompile mutates the graph the way the churn
// simulator does and checks that delta-recompiled snapshots route
// identically to both a full compile and the legacy engine.
func TestCompiledDeltaRecompile(t *testing.T) {
	g, err := Generate(GenConfig{
		Tier1: 3, Tier2: 20, Tier3: 100,
		Tier2PeerProb: 0.1, MaxT2Providers: 2, MaxT3Providers: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	all := g.ASNs()
	dst := all[rng.Intn(len(all))]
	check := func(step string) {
		t.Helper()
		cr, err := g.Routes(nil, Origin{ASN: dst})
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		rt, err := g.ComputeRoutes(Origin{ASN: dst})
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		diffTables(t, cr, rt)
		// The delta-recompiled snapshot must equal a from-scratch one.
		full := compileFull(g)
		cur := g.Compiled()
		if len(full.cust) != len(cur.cust) || len(full.peer) != len(cur.peer) || len(full.prov) != len(cur.prov) {
			t.Fatalf("%s: delta recompile CSR sizes diverge from full compile", step)
		}
		for i := range full.cust {
			if full.cust[i] != cur.cust[i] {
				t.Fatalf("%s: customer row mismatch at %d", step, i)
			}
		}
	}

	check("initial")
	v0 := g.Version()
	// Remove and restore a provider link of a stub (origin-churn shape).
	stub := g.TierASNs(3)[0]
	prov := g.AS(stub).Providers()[0]
	if !g.RemoveLink(prov, stub) {
		t.Fatal("RemoveLink failed")
	}
	if g.Version() == v0 {
		t.Fatal("RemoveLink did not bump the graph version")
	}
	check("after RemoveLink")
	if err := g.AddLink(prov, stub); err != nil {
		t.Fatal(err)
	}
	check("after AddLink")
	// Policy shift: a fresh tier-2 peering.
	t2 := g.TierASNs(2)
	if err := g.AddPeering(t2[0], t2[len(t2)-1]); err == nil {
		check("after AddPeering")
	}
	// Growing the AS set forces (and survives) a full recompile.
	if err := g.AddLink(t2[0], bgp.ASN(999999)); err != nil {
		t.Fatal(err)
	}
	check("after AddAS via AddLink")
	// No mutation: the snapshot is cached.
	if g.Compiled() != g.Compiled() {
		t.Fatal("Compiled() rebuilt the snapshot without a mutation")
	}
}

// TestCompiledScratchReuse verifies a shared Scratch and result array
// across many computations of different shapes (the churn-loop pattern)
// never leak state between runs.
func TestCompiledScratchReuse(t *testing.T) {
	g, err := Generate(GenConfig{
		Tier1: 3, Tier2: 15, Tier3: 80,
		Tier2PeerProb: 0.08, MaxT2Providers: 2, MaxT3Providers: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	all := g.ASNs()
	var s Scratch
	var cr *CompiledRoutes
	for i := 0; i < 50; i++ {
		origins := []Origin{{ASN: all[rng.Intn(len(all))]}}
		if i%3 == 1 {
			o2 := all[rng.Intn(len(all))]
			if o2 != origins[0].ASN {
				origins = append(origins, Origin{ASN: o2})
			}
		}
		cr, err = g.RoutesInto(cr, &s, nil, origins...)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := g.ComputeRoutes(origins...)
		if err != nil {
			t.Fatal(err)
		}
		diffTables(t, cr, rt)
	}
}

// TestCompiledRoutesAccessors covers the table-view methods against the
// legacy representations.
func TestCompiledRoutesAccessors(t *testing.T) {
	g, err := Generate(GenConfig{
		Tier1: 2, Tier2: 10, Tier3: 40,
		Tier2PeerProb: 0.1, MaxT2Providers: 2, MaxT3Providers: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	dst := g.TierASNs(3)[3]
	cr, err := g.Routes(nil, Origin{ASN: dst})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := g.ComputeRoutes(Origin{ASN: dst})
	if err != nil {
		t.Fatal(err)
	}
	if got := cr.Table(); len(got) != len(rt) {
		t.Fatalf("Table() has %d entries, legacy %d", len(got), len(rt))
	} else {
		for asn, r := range rt {
			if got[asn] != r {
				t.Fatalf("Table()[%v] = %+v, want %+v", asn, got[asn], r)
			}
		}
	}
	for _, src := range g.ASNs() {
		wantP, wantOK := rt.PathFrom(src)
		gotP, gotOK := cr.PathFrom(src)
		if wantOK != gotOK || len(wantP) != len(gotP) {
			t.Fatalf("PathFrom(%v) = %v,%v, want %v,%v", src, gotP, gotOK, wantP, wantOK)
		}
		for i := range wantP {
			if wantP[i] != gotP[i] {
				t.Fatalf("PathFrom(%v) = %v, want %v", src, gotP, wantP)
			}
		}
		wantAP, _ := rt.ASPathFrom(src)
		gotAP, _ := cr.ASPathFrom(src)
		if wantAP.String() != gotAP.String() {
			t.Fatalf("ASPathFrom(%v) = %v, want %v", src, gotAP, wantAP)
		}
	}
	if _, ok := cr.Route(bgp.ASN(424242)); ok {
		t.Fatal("Route() of an unknown ASN reported ok")
	}
	if id, ok := cr.c.ID(dst); !ok || cr.ASN(int(id)) != dst {
		t.Fatal("ID/ASN interning round trip failed")
	}
}

// TestCompiledErrors pins the error cases to the legacy messages.
func TestCompiledErrors(t *testing.T) {
	g := NewGraph()
	if err := g.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Routes(nil); err == nil {
		t.Fatal("no origins: want error")
	}
	if _, err := g.Routes(nil, Origin{ASN: 9}); err == nil {
		t.Fatal("unknown origin: want error")
	}
	if _, err := g.Routes(nil, Origin{ASN: 1}, Origin{ASN: 1}); err == nil {
		t.Fatal("duplicate origin: want error")
	}
}

// TestEngineToggle checks the legacy dispatch path fills the identical
// array shape, so goldens are engine-invariant by construction.
func TestEngineToggle(t *testing.T) {
	g, err := Generate(GenConfig{
		Tier1: 2, Tier2: 12, Tier3: 60,
		Tier2PeerProb: 0.1, MaxT2Providers: 2, MaxT3Providers: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	dst := g.TierASNs(3)[0]
	compiled, err := g.Routes(nil, Origin{ASN: dst})
	if err != nil {
		t.Fatal(err)
	}
	SetEngine(EngineLegacy)
	defer SetEngine(EngineCompiled)
	if CurrentEngine() != EngineLegacy {
		t.Fatal("SetEngine(EngineLegacy) not observed")
	}
	legacy, err := g.Routes(nil, Origin{ASN: dst})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Len() != compiled.Len() {
		t.Fatalf("engine lengths differ: %d vs %d", legacy.Len(), compiled.Len())
	}
	for i := 0; i < legacy.Len(); i++ {
		if legacy.At(i) != compiled.At(i) {
			t.Fatalf("AS %v differs across engines: %+v vs %+v",
				legacy.ASN(i), legacy.At(i), compiled.At(i))
		}
	}
	// Reuse under the legacy engine, including the error path.
	if _, err := g.RoutesInto(legacy, nil, nil, Origin{ASN: dst}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RoutesInto(legacy, nil, nil); err == nil {
		t.Fatal("legacy RoutesInto with no origins: want error")
	}
}

// TestRouteCache covers sharing, invalidation on mutation, and the
// PathFrom convenience.
func TestRouteCache(t *testing.T) {
	g, err := Generate(GenConfig{
		Tier1: 2, Tier2: 10, Tier3: 50,
		Tier2PeerProb: 0.1, MaxT2Providers: 2, MaxT3Providers: 2, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	rc := NewRouteCache(g)
	if rc.Graph() != g {
		t.Fatal("Graph() accessor broken")
	}
	dst := g.TierASNs(3)[1]
	cr1, err := rc.Routes(dst)
	if err != nil {
		t.Fatal(err)
	}
	cr2, err := rc.Routes(dst)
	if err != nil {
		t.Fatal(err)
	}
	if cr1 != cr2 {
		t.Fatal("cache recomputed an unchanged destination")
	}
	src := g.TierASNs(3)[2]
	path, ok, err := rc.PathFrom(src, dst)
	if err != nil || !ok {
		t.Fatalf("PathFrom(%v,%v) = %v,%v,%v", src, dst, path, ok, err)
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatalf("PathFrom endpoints wrong: %v", path)
	}
	// Mutating the graph flushes the cache on next lookup.
	prov := g.AS(dst).Providers()[0]
	g.RemoveLink(prov, dst)
	cr3, err := rc.Routes(dst)
	if err != nil {
		t.Fatal(err)
	}
	if cr3 == cr1 {
		t.Fatal("cache served a stale table across a graph mutation")
	}
	rt, err := g.ComputeRoutes(Origin{ASN: dst})
	if err != nil {
		t.Fatal(err)
	}
	diffTables(t, cr3, rt)
	if _, err := rc.Routes(bgp.ASN(5555555)); err == nil {
		t.Fatal("unknown destination: want error")
	}
	if _, _, err := rc.PathFrom(src, bgp.ASN(5555555)); err == nil {
		t.Fatal("PathFrom to unknown destination: want error")
	}
}

func benchGraph(b *testing.B) (*Graph, bgp.ASN) {
	b.Helper()
	g, err := Generate(DefaultGenConfig()) // paper-scale: ~1028 ASes
	if err != nil {
		b.Fatal(err)
	}
	return g, g.TierASNs(3)[17]
}

// BenchmarkComputeRoutesLegacy measures the map-based reference engine
// at paper scale; results/bench.sh compares it against the compiled
// engine into results/BENCH_routes.json.
func BenchmarkComputeRoutesLegacy(b *testing.B) {
	g, dst := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ComputeRoutes(Origin{ASN: dst}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeRoutesCompiled measures the compiled engine in the
// hot-caller configuration: snapshot, scratch, and result array reused.
func BenchmarkComputeRoutesCompiled(b *testing.B) {
	g, dst := benchGraph(b)
	var s Scratch
	var cr *CompiledRoutes
	var err error
	if cr, err = g.RoutesInto(cr, &s, nil, Origin{ASN: dst}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cr, err = g.RoutesInto(cr, &s, nil, Origin{ASN: dst}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeRoutesCompiledFresh measures the compiled engine with
// per-call allocation (the one-shot caller pattern).
func BenchmarkComputeRoutesCompiledFresh(b *testing.B) {
	g, dst := benchGraph(b)
	g.Compiled() // exclude the one-time compile
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Routes(nil, Origin{ASN: dst}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileDelta measures the per-event snapshot recompile cost
// after a single link flap (the churn simulator's mutation pattern).
func BenchmarkCompileDelta(b *testing.B) {
	g, dst := benchGraph(b)
	prov := g.AS(dst).Providers()[0]
	g.Compiled()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RemoveLink(prov, dst)
		g.Compiled()
		if err := g.AddLink(prov, dst); err != nil {
			b.Fatal(err)
		}
		g.Compiled()
	}
}
