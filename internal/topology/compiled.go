package topology

import (
	"fmt"
	"math"
	"slices"

	"quicksand/internal/bgp"
)

// Compiled is an immutable snapshot of a Graph specialised for route
// computation: ASNs are interned to dense int32 ids (assigned in
// ascending ASN order, so comparing ids is comparing ASNs) and the three
// adjacency classes are stored in CSR form — one flat neighbor slice plus
// an offset slice per class. A snapshot is safe for concurrent use; the
// Graph invalidates it on mutation and recompiles cheaply (see
// Graph.Compiled).
type Compiled struct {
	version uint64
	asns    []bgp.ASN // id -> ASN, ascending
	idOf    map[bgp.ASN]int32

	custOff, peerOff, provOff []int32 // len(asns)+1 offsets into the rows
	cust, peer, prov          []int32 // neighbor ids, ascending per row
}

// Len returns the number of ASes in the snapshot.
func (c *Compiled) Len() int { return len(c.asns) }

// ASN returns the ASN interned at id i.
func (c *Compiled) ASN(i int) bgp.ASN { return c.asns[i] }

// ASNs returns the interned ASNs in id (= ascending ASN) order. The
// slice is the snapshot's own storage: callers must treat it as
// read-only. Bulk consumers (the resilience matrix, differential
// harnesses) iterate it instead of re-sorting Graph.ASNs per call.
func (c *Compiled) ASNs() []bgp.ASN { return c.asns }

// ID returns the dense id of asn, with ok=false when absent.
func (c *Compiled) ID(asn bgp.ASN) (int32, bool) {
	id, ok := c.idOf[asn]
	return id, ok
}

func (c *Compiled) customers(id int32) []int32 {
	return c.cust[c.custOff[id]:c.custOff[id+1]]
}
func (c *Compiled) peers(id int32) []int32 {
	return c.peer[c.peerOff[id]:c.peerOff[id+1]]
}
func (c *Compiled) providers(id int32) []int32 {
	return c.prov[c.provOff[id]:c.provOff[id+1]]
}

// rowsOf projects one adjacency class out of an AS node.
type rowsOf func(a *AS) []bgp.ASN

func buildCSR(g *Graph, asns []bgp.ASN, idOf map[bgp.ASN]int32, pick rowsOf) (off, adj []int32) {
	off = make([]int32, len(asns)+1)
	total := 0
	for i, asn := range asns {
		total += len(pick(g.ases[asn]))
		off[i+1] = int32(total)
	}
	adj = make([]int32, 0, total)
	for _, asn := range asns {
		// Per-AS adjacency is kept ASN-sorted and ids follow ASN order,
		// so the converted row is id-sorted too.
		for _, nb := range pick(g.ases[asn]) {
			adj = append(adj, idOf[nb])
		}
	}
	return off, adj
}

// compileFull builds a snapshot from scratch.
func compileFull(g *Graph) *Compiled {
	asns := g.ASNs()
	c := &Compiled{version: g.version, asns: asns, idOf: make(map[bgp.ASN]int32, len(asns))}
	for i, a := range asns {
		c.idOf[a] = int32(i)
	}
	c.custOff, c.cust = buildCSR(g, asns, c.idOf, func(a *AS) []bgp.ASN { return a.customers })
	c.peerOff, c.peer = buildCSR(g, asns, c.idOf, func(a *AS) []bgp.ASN { return a.peers })
	c.provOff, c.prov = buildCSR(g, asns, c.idOf, func(a *AS) []bgp.ASN { return a.providers })
	return c
}

// recompileDelta rebuilds only the rows of ASes marked dirty since old
// was compiled, reusing the interning and every clean row. Valid only
// while the AS set is unchanged (link mutations never add or remove
// ASes).
func recompileDelta(g *Graph, old *Compiled) *Compiled {
	c := &Compiled{version: g.version, asns: old.asns, idOf: old.idOf}
	rebuild := func(oldOff, oldAdj []int32, pick rowsOf) (off, adj []int32) {
		off = make([]int32, len(c.asns)+1)
		adj = make([]int32, 0, len(oldAdj)+2*len(g.dirty))
		for i, asn := range c.asns {
			if g.dirty[asn] {
				for _, nb := range pick(g.ases[asn]) {
					adj = append(adj, c.idOf[nb])
				}
			} else {
				adj = append(adj, oldAdj[oldOff[i]:oldOff[i+1]]...)
			}
			off[i+1] = int32(len(adj))
		}
		return off, adj
	}
	c.custOff, c.cust = rebuild(old.custOff, old.cust, func(a *AS) []bgp.ASN { return a.customers })
	c.peerOff, c.peer = rebuild(old.peerOff, old.peer, func(a *AS) []bgp.ASN { return a.peers })
	c.provOff, c.prov = rebuild(old.provOff, old.prov, func(a *AS) []bgp.ASN { return a.providers })
	return c
}

// Compiled returns a route-engine snapshot of the current graph,
// recompiling lazily when mutations occurred since the last call. Link
// mutations (AddLink/AddPeering/RemoveLink on existing ASes) recompile
// only the touched rows; growing the AS set forces a full compile. The
// returned snapshot is shared — callers must not retain it across graph
// mutations if they need fresh adjacency, but an old snapshot stays
// internally consistent.
func (g *Graph) Compiled() *Compiled {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c := g.compiled; c != nil && c.version == g.version {
		return c
	}
	if g.compiled != nil && !g.asAdded {
		g.compiled = recompileDelta(g, g.compiled)
	} else {
		g.compiled = compileFull(g)
	}
	g.dirty = nil
	g.asAdded = false
	return g.compiled
}

// Version returns the graph's mutation counter. Snapshots and caches tag
// themselves with it to detect staleness.
func (g *Graph) Version() uint64 { return g.version }

// Scratch holds the reusable working memory of ComputeRoutesInto so a
// caller computing many tables (one per churn event, one per trial)
// allocates essentially nothing after the first call. The zero value is
// ready to use. A Scratch must not be used concurrently.
type Scratch struct {
	frontier, next []int32

	// Per-id phase-1 candidate state, epoch-stamped so rounds reset in
	// O(1) instead of clearing arrays.
	candSeen []uint32
	candNext []int32
	candOrig []bgp.ASN
	epoch    uint32

	// Phase-2 buffered peer adoptions.
	peerIDs    []int32
	peerRoutes []Route

	// Phase-3 shortest-first queue: one bucket of ids per path length,
	// replacing container/heap. Buckets keep their capacity across runs.
	buckets [][]int32
	used    int // buckets touched by the previous run
}

func (s *Scratch) reset(n int) {
	if cap(s.frontier) < n {
		s.frontier = make([]int32, 0, n)
		s.next = make([]int32, 0, n)
	}
	s.frontier, s.next = s.frontier[:0], s.next[:0]
	if len(s.candSeen) < n {
		s.candSeen = make([]uint32, n)
		s.candNext = make([]int32, n)
		s.candOrig = make([]bgp.ASN, n)
		s.epoch = 0
	}
	if s.epoch >= math.MaxUint32-1 {
		clear(s.candSeen)
		s.epoch = 0
	}
	s.peerIDs, s.peerRoutes = s.peerIDs[:0], s.peerRoutes[:0]
	for i := 0; i < s.used && i < len(s.buckets); i++ {
		s.buckets[i] = s.buckets[i][:0]
	}
	s.used = 0
}

// bucket returns the queue bucket for path length l, growing the bucket
// list as needed.
func (s *Scratch) bucket(l int) *[]int32 {
	for len(s.buckets) <= l {
		s.buckets = append(s.buckets, nil)
	}
	if l+1 > s.used {
		s.used = l + 1
	}
	return &s.buckets[l]
}

// CompiledRoutes is an array-backed route table over a Compiled
// snapshot: routes[id] is the best route of the AS interned at id, with
// Type RouteNone for unrouted ASes. It is the allocation-lean
// counterpart of RouteTable and converts back via Table.
type CompiledRoutes struct {
	c      *Compiled
	routes []Route
}

// Len returns the number of ASes covered (routed or not).
func (r *CompiledRoutes) Len() int { return len(r.routes) }

// ASN returns the ASN interned at id i.
func (r *CompiledRoutes) ASN(i int) bgp.ASN { return r.c.asns[i] }

// At returns the route of the AS interned at id i; Type is RouteNone
// when it has no route.
func (r *CompiledRoutes) At(i int) Route { return r.routes[i] }

// Route returns asn's best route, with ok=false when asn is unknown or
// unrouted — exactly the two-value map access on the legacy RouteTable.
func (r *CompiledRoutes) Route(asn bgp.ASN) (Route, bool) {
	id, ok := r.c.idOf[asn]
	if !ok || r.routes[id].Type == RouteNone {
		return Route{}, false
	}
	return r.routes[id], true
}

// PathFrom reconstructs the AS path from src to its origin, inclusive on
// both ends, mirroring RouteTable.PathFrom.
func (r *CompiledRoutes) PathFrom(src bgp.ASN) (path []bgp.ASN, ok bool) {
	id, ok := r.c.idOf[src]
	if !ok || r.routes[id].Type == RouteNone {
		return nil, false
	}
	path = append(path, src)
	cur := id
	for r.routes[cur].Type != RouteOrigin {
		nh := r.routes[cur].NextHop
		path = append(path, nh)
		nid, ok := r.c.idOf[nh]
		if !ok || r.routes[nid].Type == RouteNone {
			return nil, false // inconsistent table; should not happen
		}
		cur = nid
		if len(path) > len(r.routes)+1 {
			return nil, false // cycle guard
		}
	}
	return path, true
}

// ASPathFrom is PathFrom rendered as a bgp.ASPath.
func (r *CompiledRoutes) ASPathFrom(src bgp.ASN) (bgp.ASPath, bool) {
	p, ok := r.PathFrom(src)
	if !ok {
		return bgp.ASPath{}, false
	}
	return bgp.Sequence(p...), true
}

// Table converts to the legacy map representation (unrouted ASes
// absent).
func (r *CompiledRoutes) Table() RouteTable {
	rt := make(RouteTable, len(r.routes))
	for i := range r.routes {
		if r.routes[i].Type != RouteNone {
			rt[r.c.asns[i]] = r.routes[i]
		}
	}
	return rt
}

// Routes computes a fresh table on the snapshot; a convenience wrapper
// over ComputeRoutesInto for callers without buffers to reuse.
func (c *Compiled) Routes(s *Scratch, filter ImportFilter, origins ...Origin) (*CompiledRoutes, error) {
	if s == nil {
		s = &Scratch{}
	}
	routes, err := c.ComputeRoutesInto(nil, s, filter, origins...)
	if err != nil {
		return nil, err
	}
	return &CompiledRoutes{c: c, routes: routes}, nil
}

// ComputeRoutesInto is the compiled counterpart of
// Graph.ComputeRoutesFiltered: it fills dst (grown as needed) with every
// AS's best policy-compliant route toward the given origins and returns
// it. The decision process, export rules, and every deterministic
// tiebreak match the legacy implementation bit for bit — ids are
// ASN-ordered, so id comparisons reproduce the lowest-next-hop-ASN rule,
// and the bucketed phase-3 queue pops in the same (pathLen, ASN) order
// as the heap it replaces.
func (c *Compiled) ComputeRoutesInto(dst []Route, s *Scratch, filter ImportFilter, origins ...Origin) ([]Route, error) {
	if len(origins) == 0 {
		return dst, fmt.Errorf("topology: no origins")
	}
	n := len(c.asns)
	origIDs := make([]int32, len(origins))
	scoped := false
	for i, o := range origins {
		id, ok := c.idOf[o.ASN]
		if !ok {
			return dst, fmt.Errorf("topology: origin %v not in graph", o.ASN)
		}
		for j := 0; j < i; j++ {
			if origIDs[j] == id {
				return dst, fmt.Errorf("topology: duplicate origin %v", o.ASN)
			}
		}
		origIDs[i] = id
		if len(o.WithholdFrom) > 0 || len(o.AnnounceOnly) > 0 {
			scoped = true
		}
	}

	if cap(dst) < n {
		dst = make([]Route, n)
	} else {
		dst = dst[:n]
		clear(dst)
	}
	s.reset(n)

	// exports reports whether the AS at id u announces its route to
	// neighbor "to"; only origins ever scope their announcements.
	exports := func(u int32, to bgp.ASN) bool {
		for i, oid := range origIDs {
			if oid == u {
				return origins[i].announces(to)
			}
		}
		return true
	}

	// Phase 1 — customer routes, propagated upward in rounds of
	// increasing path length. The per-round candidate map becomes three
	// epoch-stamped arrays; the minimum by (next-hop, origin) is taken
	// in id space, which equals ASN space by construction.
	for _, id := range origIDs {
		dst[id] = Route{Type: RouteOrigin, Origin: c.asns[id]}
	}
	s.frontier = append(s.frontier, origIDs...)
	sortInt32(s.frontier)
	for length := 1; len(s.frontier) > 0; length++ {
		s.epoch++
		s.next = s.next[:0]
		for _, u := range s.frontier {
			ru := &dst[u]
			if ru.Type != RouteOrigin && ru.Type != RouteCustomer {
				continue
			}
			for _, p := range c.providers(u) {
				if dst[p].Type != RouteNone {
					continue // settled in an earlier round
				}
				if scoped && !exports(u, c.asns[p]) {
					continue
				}
				if filter != nil && !filter(c.asns[p], ru.Origin) {
					continue
				}
				if s.candSeen[p] != s.epoch {
					s.candSeen[p] = s.epoch
					s.candNext[p], s.candOrig[p] = u, ru.Origin
					s.next = append(s.next, p)
				} else if u < s.candNext[p] || (u == s.candNext[p] && ru.Origin < s.candOrig[p]) {
					s.candNext[p], s.candOrig[p] = u, ru.Origin
				}
			}
		}
		sortInt32(s.next)
		for _, p := range s.next {
			dst[p] = Route{Type: RouteCustomer, NextHop: c.asns[s.candNext[p]], PathLen: length, Origin: s.candOrig[p]}
		}
		s.frontier, s.next = s.next, s.frontier
	}

	// Phase 2 — single-hop peer routes for unsettled ASes, buffered so
	// peer routes never chain off each other.
	s.peerIDs, s.peerRoutes = s.peerIDs[:0], s.peerRoutes[:0]
	for id := int32(0); id < int32(n); id++ {
		if dst[id].Type != RouteNone {
			continue
		}
		best := Route{Type: RouteNone}
		for _, p := range c.peers(id) {
			rp := &dst[p]
			if rp.Type != RouteCustomer && rp.Type != RouteOrigin {
				continue
			}
			if scoped && !exports(p, c.asns[id]) {
				continue
			}
			if filter != nil && !filter(c.asns[id], rp.Origin) {
				continue
			}
			r := Route{Type: RoutePeer, NextHop: c.asns[p], PathLen: rp.PathLen + 1, Origin: rp.Origin}
			if best.Type == RouteNone || r.PathLen < best.PathLen ||
				(r.PathLen == best.PathLen && r.NextHop < best.NextHop) {
				best = r
			}
		}
		if best.Type != RouteNone {
			s.peerIDs = append(s.peerIDs, id)
			s.peerRoutes = append(s.peerRoutes, best)
		}
	}
	for i, id := range s.peerIDs {
		dst[id] = s.peerRoutes[i]
	}

	// Phase 3 — provider routes, shortest-first. Every routed AS enters
	// the bucket of its path length; buckets are processed in length
	// order and id-ascending within a bucket, which is exactly the pop
	// order of the legacy (pathLen, asn) heap.
	for id := int32(0); id < int32(n); id++ {
		if dst[id].Type != RouteNone {
			b := s.bucket(dst[id].PathLen)
			*b = append(*b, id)
		}
	}
	for l := 0; l < s.used; l++ {
		q := s.buckets[l]
		sortInt32(q)
		for _, u := range q {
			ru := dst[u]
			if ru.PathLen != l {
				continue // stale entry (defensive; cannot occur)
			}
			nl := l + 1
			for _, ch := range c.customers(u) {
				if scoped && !exports(u, c.asns[ch]) {
					continue
				}
				if filter != nil && !filter(c.asns[ch], ru.Origin) {
					continue
				}
				rc := &dst[ch]
				if rc.Type != RouteNone && (rc.Type != RouteProvider || rc.PathLen < nl ||
					(rc.PathLen == nl && rc.NextHop <= c.asns[u])) {
					continue
				}
				wasNone := rc.Type == RouteNone
				*rc = Route{Type: RouteProvider, NextHop: c.asns[u], PathLen: nl, Origin: ru.Origin}
				if wasNone {
					b := s.bucket(nl)
					*b = append(*b, ch)
				}
			}
		}
	}
	return dst, nil
}

func sortInt32(s []int32) { slices.Sort(s) }
