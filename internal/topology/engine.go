package topology

import (
	"os"
	"sync"
	"sync/atomic"
)

// Engine selects the route-computation implementation behind
// Graph.Routes. The compiled engine is the default; the legacy map-based
// ComputeRoutes stays available as the reference implementation (and the
// two are pinned equal by the differential tests in internal/testkit).
type Engine int32

const (
	// EngineCompiled runs Compiled.ComputeRoutesInto over the interned
	// CSR snapshot.
	EngineCompiled Engine = iota
	// EngineLegacy runs the map-based ComputeRoutesFiltered and converts
	// the result into the array shape, so callers are single-pathed.
	EngineLegacy
)

var engine atomic.Int32

func init() {
	if os.Getenv("QUICKSAND_ROUTE_ENGINE") == "legacy" {
		engine.Store(int32(EngineLegacy))
	}
}

// SetEngine switches the process-wide route engine (also settable via
// QUICKSAND_ROUTE_ENGINE=legacy). Both engines produce bit-identical
// tables; the switch exists for differential testing and benchmarking.
func SetEngine(e Engine) { engine.Store(int32(e)) }

// CurrentEngine returns the active route engine.
func CurrentEngine() Engine { return Engine(engine.Load()) }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Routes computes a route table with the active engine, allocating a
// fresh result. Callers computing many tables should hold a Scratch and
// a previous result and use RoutesInto instead.
func (g *Graph) Routes(filter ImportFilter, origins ...Origin) (*CompiledRoutes, error) {
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	return g.RoutesInto(nil, s, filter, origins...)
}

// RoutesInto recomputes a route table in place: prev's route array is
// reused when large enough (prev may be nil for a fresh table), and
// scratch holds the engine's working memory (nil draws from a pool).
// The result always reflects the graph's current state — the snapshot is
// recompiled first if the graph mutated.
func (g *Graph) RoutesInto(prev *CompiledRoutes, s *Scratch, filter ImportFilter, origins ...Origin) (*CompiledRoutes, error) {
	c := g.Compiled()
	if prev == nil {
		prev = &CompiledRoutes{}
	}
	if CurrentEngine() == EngineLegacy {
		rt, err := g.ComputeRoutesFiltered(filter, origins...)
		if err != nil {
			return nil, err
		}
		n := len(c.asns)
		if cap(prev.routes) < n {
			prev.routes = make([]Route, n)
		} else {
			prev.routes = prev.routes[:n]
			clear(prev.routes)
		}
		for asn, r := range rt {
			prev.routes[c.idOf[asn]] = r
		}
		prev.c = c
		return prev, nil
	}
	if s == nil {
		s = scratchPool.Get().(*Scratch)
		defer scratchPool.Put(s)
	}
	routes, err := c.ComputeRoutesInto(prev.routes, s, filter, origins...)
	if err != nil {
		return nil, err
	}
	prev.c, prev.routes = c, routes
	return prev, nil
}
