package topology

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"quicksand/internal/bgp"
)

// assertTablesMatchFresh pins the delta-recompilation contract: every
// table a RouteSet maintains must equal a full from-scratch computation
// on the current graph.
func assertTablesMatchFresh(t testing.TB, rs *RouteSet, tag string) {
	t.Helper()
	for i, d := range rs.Dests() {
		want, err := rs.Graph().Routes(nil, Origin{ASN: d})
		if err != nil {
			t.Fatalf("%s: fresh compute for dest %v: %v", tag, d, err)
		}
		got := rs.TableAt(i)
		if got.Len() != want.Len() {
			t.Fatalf("%s: dest %v: table size %d, fresh %d", tag, d, got.Len(), want.Len())
		}
		for id := 0; id < got.Len(); id++ {
			if got.At(id) != want.At(id) {
				t.Fatalf("%s: dest %v: AS %v: delta table %+v, fresh %+v",
					tag, d, got.ASN(id), got.At(id), want.At(id))
			}
		}
	}
}

func TestNewRouteSetErrors(t *testing.T) {
	g := mustPowerLaw(t, DefaultPowerLawConfig(60))
	if _, err := NewRouteSet(g, nil, 1); err == nil {
		t.Error("empty destination list accepted")
	}
	if _, err := NewRouteSet(g, []bgp.ASN{9999}, 1); err == nil {
		t.Error("unknown destination accepted")
	}
	if _, err := NewRouteSet(g, []bgp.ASN{1, 2, 1}, 1); err == nil {
		t.Error("duplicate destination accepted")
	}
}

func TestRouteSetAccessors(t *testing.T) {
	g := mustPowerLaw(t, DefaultPowerLawConfig(60))
	dests := []bgp.ASN{1, 30, 60}
	rs, err := NewRouteSet(g, dests, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Graph() != g {
		t.Error("Graph() is not the constructor graph")
	}
	if got := rs.Dests(); len(got) != 3 || got[0] != 1 || got[2] != 60 {
		t.Errorf("Dests() = %v, want %v", got, dests)
	}
	tbl, ok := rs.Table(30)
	if !ok || tbl != rs.TableAt(1) {
		t.Error("Table(30) did not return the tracked table")
	}
	if _, ok := rs.Table(31); ok {
		t.Error("Table(31) returned a table for an untracked destination")
	}
	if r, ok := tbl.Route(30); !ok || r.Type != RouteOrigin {
		t.Errorf("destination's own route = %+v, want origin", r)
	}
	if rs.MemoryBytes() < 3*60*routeBytes {
		t.Errorf("MemoryBytes() = %d, below the bare table footprint", rs.MemoryBytes())
	}
	assertTablesMatchFresh(t, rs, "fresh route set")
}

func TestApplyErrors(t *testing.T) {
	g := mustPowerLaw(t, DefaultPowerLawConfig(60))
	rs, err := NewRouteSet(g, []bgp.ASN{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		m    Mutation
	}{
		{"unknown AS", Mutation{Op: MutRemoveLink, A: 9999, B: 1}},
		{"no link to remove", Mutation{Op: MutRemoveLink, A: 1, B: 60}},
		{"duplicate link", Mutation{Op: MutAddLink, A: 1, B: 2}}, // core clique peering exists
		{"duplicate peering", Mutation{Op: MutAddPeering, A: 1, B: 2}},
		{"unknown op", Mutation{Op: MutationOp(9), A: 1, B: 2}},
	}
	for _, tc := range cases {
		if _, err := rs.Apply(tc.m); err == nil {
			t.Errorf("%s: Apply(%v %v-%v) succeeded, want error", tc.name, tc.m.Op, tc.m.A, tc.m.B)
		}
	}
	// Failed mutations must leave the tables untouched and consistent.
	assertTablesMatchFresh(t, rs, "after rejected mutations")
}

func TestMutationOpString(t *testing.T) {
	for op, want := range map[MutationOp]string{
		MutRemoveLink:  "remove-link",
		MutAddLink:     "add-link",
		MutAddPeering:  "add-peering",
		MutationOp(42): "MutationOp(42)",
	} {
		if got := op.String(); got != want {
			t.Errorf("MutationOp(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestScratchPool(t *testing.T) {
	p := NewScratchPool(0)
	if p.Cap() != 1 {
		t.Fatalf("Cap() = %d, want clamp to 1", p.Cap())
	}
	p = NewScratchPool(2)
	if p.MemoryBytes() != 0 {
		t.Errorf("unused pool MemoryBytes = %d, want 0 (lazy allocation)", p.MemoryBytes())
	}
	s := p.Get()
	s.reset(100)
	p.Put(s)
	if p.MemoryBytes() == 0 {
		t.Error("pool MemoryBytes = 0 after a scratch grew buffers")
	}
}

func TestScratchPoolMemoryBytesPanicsWhileInUse(t *testing.T) {
	p := NewScratchPool(2)
	s := p.Get()
	defer p.Put(s)
	defer func() {
		if recover() == nil {
			t.Error("MemoryBytes did not panic with a scratch checked out")
		}
	}()
	p.MemoryBytes()
}

// TestDeltaRecompileRandomChurn drives a paper-scale power-law graph
// through random link churn and pins, after every single mutation, that
// the incrementally-maintained tables are bit-identical to a full
// recomputation. It also checks that the churn exercised all three
// delta paths: skipped destinations, O(degree) local repairs, and full
// refixpoints.
func TestDeltaRecompileRandomChurn(t *testing.T) {
	cfg := DefaultPowerLawConfig(400)
	cfg.Seed = 7
	g := mustPowerLaw(t, cfg)
	dests := []bgp.ASN{1, 5, 9, 25, 60, 200, 399, 400}
	rs, err := NewRouteSet(g, dests, 2)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	asns := g.ASNs()
	var total ApplyStats
	applied := 0
	for applied < 120 {
		a := asns[rng.Intn(len(asns))]
		b := asns[rng.Intn(len(asns))]
		if a == b {
			continue
		}
		var m Mutation
		if _, linked := g.RelBetween(a, b); linked {
			m = Mutation{Op: MutRemoveLink, A: a, B: b}
		} else if rng.Intn(2) == 0 {
			// Lower ASN provides: generator ASNs ascend core -> transit ->
			// stub, so this orientation keeps the customer DAG acyclic.
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			m = Mutation{Op: MutAddLink, A: lo, B: hi}
		} else {
			m = Mutation{Op: MutAddPeering, A: a, B: b}
		}
		st, err := rs.Apply(m)
		if err != nil {
			t.Fatalf("Apply(%v %v-%v): %v", m.Op, m.A, m.B, err)
		}
		if st.Repaired+st.Refixpointed != st.Affected {
			t.Fatalf("Apply(%v %v-%v): stats %+v do not add up", m.Op, m.A, m.B, st)
		}
		total.Affected += st.Affected
		total.Repaired += st.Repaired
		total.Refixpointed += st.Refixpointed
		applied++
		assertTablesMatchFresh(t, rs, fmt.Sprintf("after mutation %d (%v %v-%v)", applied, m.Op, m.A, m.B))
	}

	if total.Affected >= applied*len(dests) {
		t.Errorf("no destination was ever skipped: affected %d of %d", total.Affected, applied*len(dests))
	}
	if total.Repaired == 0 {
		t.Error("churn exercised no local repairs")
	}

	// Random churn lands mostly on stubs, whose changes are all locally
	// repairable; force the refixpoint path by cutting a link that an AS
	// with customers routes across (its route is visible downstream, so
	// a local repair would be unsound and Apply must refixpoint).
	tbl := rs.TableAt(0)
	forced := false
	for id := 0; id < tbl.Len() && !forced; id++ {
		x := tbl.ASN(id)
		r := tbl.At(id)
		if r.Type == RouteNone || r.Type == RouteOrigin || len(g.AS(x).Customers()) == 0 {
			continue
		}
		st, err := rs.Apply(Mutation{Op: MutRemoveLink, A: x, B: r.NextHop})
		if err != nil {
			t.Fatalf("forced remove %v-%v: %v", x, r.NextHop, err)
		}
		if st.Refixpointed == 0 {
			t.Errorf("cutting %v-%v under AS %v with customers refixpointed nothing (stats %+v)", x, r.NextHop, x, st)
		}
		total.Refixpointed += st.Refixpointed
		assertTablesMatchFresh(t, rs, fmt.Sprintf("after forced cut %v-%v", x, r.NextHop))
		forced = true
	}
	if !forced {
		t.Error("found no customer-bearing AS to force a refixpoint through")
	}
	t.Logf("churn: %d mutations, %d affected tables (%d repaired, %d refixpointed) of %d computed naively",
		applied, total.Affected, total.Repaired, total.Refixpointed, applied*len(dests))
}

// TestApplyFlapRestoresTables pins that a remove/re-add flap of the same
// link returns every table to its pre-flap state.
func TestApplyFlapRestoresTables(t *testing.T) {
	g := mustPowerLaw(t, DefaultPowerLawConfig(200))
	dests := []bgp.ASN{1, 50, 200}
	rs, err := NewRouteSet(g, dests, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := make([][]Route, len(dests))
	for i := range dests {
		before[i] = append([]Route(nil), rs.TableAt(i).routes...)
	}

	// Flap the last stub's first provider link.
	stub := bgp.ASN(200)
	prov := g.AS(stub).Providers()[0]
	if _, err := rs.Apply(Mutation{Op: MutRemoveLink, A: stub, B: prov}); err != nil {
		t.Fatal(err)
	}
	assertTablesMatchFresh(t, rs, "after remove")
	if _, err := rs.Apply(Mutation{Op: MutAddLink, A: prov, B: stub}); err != nil {
		t.Fatal(err)
	}
	assertTablesMatchFresh(t, rs, "after re-add")
	for i := range dests {
		for id, r := range rs.TableAt(i).routes {
			if r != before[i][id] {
				t.Fatalf("dest %v: AS %v: route %+v != pre-flap %+v",
					dests[i], rs.TableAt(i).ASN(id), r, before[i][id])
			}
		}
	}
}

func TestApplyStatsString(t *testing.T) {
	// ApplyStats is a plain struct; make sure %+v stays readable in logs.
	s := fmt.Sprintf("%+v", ApplyStats{Affected: 3, Repaired: 2, Refixpointed: 1})
	for _, want := range []string{"Affected:3", "Repaired:2", "Refixpointed:1"} {
		if !strings.Contains(s, want) {
			t.Errorf("ApplyStats rendering %q missing %q", s, want)
		}
	}
}
