package topology

import (
	"math/rand"
	"testing"

	"quicksand/internal/bgp"
)

// diamond builds the classic four-AS diamond:
//
//	  1 (tier-1)
//	 / \
//	2   3     (2, 3 customers of 1)
//	 \ /
//	  4       (4 customer of both 2 and 3)
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for _, link := range [][2]bgp.ASN{{1, 2}, {1, 3}, {2, 4}, {3, 4}} {
		if err := g.AddLink(link[0], link[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddLinkAndRelBetween(t *testing.T) {
	g := diamond(t)
	if r, ok := g.RelBetween(1, 2); !ok || r != RelCustomer {
		t.Fatalf("RelBetween(1,2) = %v %v", r, ok)
	}
	if r, ok := g.RelBetween(2, 1); !ok || r != RelProvider {
		t.Fatalf("RelBetween(2,1) = %v %v", r, ok)
	}
	if _, ok := g.RelBetween(2, 3); ok {
		t.Fatal("2 and 3 should not be adjacent")
	}
}

func TestAddLinkRejectsDuplicates(t *testing.T) {
	g := diamond(t)
	if err := g.AddLink(1, 2); err == nil {
		t.Fatal("duplicate link accepted")
	}
	if err := g.AddPeering(1, 2); err == nil {
		t.Fatal("peering over existing link accepted")
	}
	if err := g.AddLink(5, 5); err == nil {
		t.Fatal("self link accepted")
	}
}

func TestAddPeering(t *testing.T) {
	g := NewGraph()
	if err := g.AddPeering(10, 20); err != nil {
		t.Fatal(err)
	}
	if r, ok := g.RelBetween(10, 20); !ok || r != RelPeer {
		t.Fatalf("RelBetween = %v %v", r, ok)
	}
	if r, ok := g.RelBetween(20, 10); !ok || r != RelPeer {
		t.Fatalf("reverse RelBetween = %v %v", r, ok)
	}
}

func TestRemoveLink(t *testing.T) {
	g := diamond(t)
	if !g.RemoveLink(2, 4) {
		t.Fatal("RemoveLink returned false")
	}
	if _, ok := g.RelBetween(2, 4); ok {
		t.Fatal("link still present")
	}
	if g.RemoveLink(2, 4) {
		t.Fatal("double remove returned true")
	}
	// 4 must now route via 3 only.
	rt, err := g.ComputeRoutes(Origin{ASN: 4})
	if err != nil {
		t.Fatal(err)
	}
	path, ok := rt.PathFrom(2)
	if !ok {
		t.Fatal("no path from 2")
	}
	want := []bgp.ASN{2, 1, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := diamond(t)
	n := g.Neighbors(1)
	if len(n) != 2 || n[0] != 2 || n[1] != 3 {
		t.Fatalf("Neighbors(1) = %v", n)
	}
	if g.Neighbors(99) != nil {
		t.Fatal("missing AS should have nil neighbors")
	}
}

func TestComputeRoutesDiamond(t *testing.T) {
	g := diamond(t)
	rt, err := g.ComputeRoutes(Origin{ASN: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rt[4].Type != RouteOrigin {
		t.Fatalf("origin route = %+v", rt[4])
	}
	// 2 and 3 learn customer routes directly from 4.
	for _, asn := range []bgp.ASN{2, 3} {
		if rt[asn].Type != RouteCustomer || rt[asn].NextHop != 4 || rt[asn].PathLen != 1 {
			t.Fatalf("rt[%d] = %+v", asn, rt[asn])
		}
	}
	// 1 learns a customer route via the lowest-numbered child (2).
	if rt[1].Type != RouteCustomer || rt[1].NextHop != 2 || rt[1].PathLen != 2 {
		t.Fatalf("rt[1] = %+v", rt[1])
	}
}

func TestCustomerPreferredOverPeerAndProvider(t *testing.T) {
	// 10 has: customer 20 (3 hops to dest), peer 30 (1 hop), provider 40
	// (1 hop). Customer route must win despite being longer.
	g := NewGraph()
	// Destination is 99.
	// Customer chain: 10 -> 20 -> 21 -> 99 (20, 21 are a customer chain).
	if err := g.AddLink(10, 20); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(20, 21); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(21, 99); err != nil {
		t.Fatal(err)
	}
	// Peer 30 with a direct customer route to 99.
	if err := g.AddPeering(10, 30); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(30, 99); err != nil {
		t.Fatal(err)
	}
	// Provider 40 with a direct customer route to 99.
	if err := g.AddLink(40, 10); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(40, 99); err != nil {
		t.Fatal(err)
	}
	rt, err := g.ComputeRoutes(Origin{ASN: 99})
	if err != nil {
		t.Fatal(err)
	}
	if rt[10].Type != RouteCustomer || rt[10].NextHop != 20 || rt[10].PathLen != 3 {
		t.Fatalf("rt[10] = %+v, want customer route via 20", rt[10])
	}
}

func TestPeerPreferredOverProvider(t *testing.T) {
	g := NewGraph()
	// 10's peer 30 reaches dest 99 (customer); 10's provider 40 reaches
	// 99 directly too. Peer must win.
	if err := g.AddPeering(10, 30); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(30, 99); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(40, 10); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(40, 99); err != nil {
		t.Fatal(err)
	}
	rt, err := g.ComputeRoutes(Origin{ASN: 99})
	if err != nil {
		t.Fatal(err)
	}
	if rt[10].Type != RoutePeer || rt[10].NextHop != 30 {
		t.Fatalf("rt[10] = %+v, want peer route via 30", rt[10])
	}
}

func TestNoValleyTransit(t *testing.T) {
	// Two stubs sharing no provider chain must be unreachable through a
	// common peer-less valley: 20 and 30 are both customers of nothing
	// shared; 20-10, 30-11, and 10, 11 are NOT connected.
	g := NewGraph()
	if err := g.AddLink(10, 20); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(11, 30); err != nil {
		t.Fatal(err)
	}
	rt, err := g.ComputeRoutes(Origin{ASN: 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt[20]; ok {
		t.Fatalf("20 should have no route to 30, got %+v", rt[20])
	}
	if _, ok := rt[10]; ok {
		t.Fatalf("10 should have no route to 30, got %+v", rt[10])
	}
}

func TestPeerRoutesNotTransitive(t *testing.T) {
	// a - b - c all peers in a line; dest is customer of c. a must NOT
	// reach dest through two peering hops.
	g := NewGraph()
	if err := g.AddPeering(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPeering(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(3, 99); err != nil {
		t.Fatal(err)
	}
	rt, err := g.ComputeRoutes(Origin{ASN: 99})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt[1]; ok {
		t.Fatalf("1 should have no route (valley), got %+v", rt[1])
	}
	if rt[2].Type != RoutePeer {
		t.Fatalf("rt[2] = %+v", rt[2])
	}
}

func TestComputeRoutesErrors(t *testing.T) {
	g := diamond(t)
	if _, err := g.ComputeRoutes(); err == nil {
		t.Fatal("no origins accepted")
	}
	if _, err := g.ComputeRoutes(Origin{ASN: 1234}); err == nil {
		t.Fatal("unknown origin accepted")
	}
	if _, err := g.ComputeRoutes(Origin{ASN: 4}, Origin{ASN: 4}); err == nil {
		t.Fatal("duplicate origin accepted")
	}
}

func TestMultiOriginHijackSplitsInternet(t *testing.T) {
	// Diamond with origin 4; attacker at 3's side announces too.
	g := diamond(t)
	// Give 3 a second customer 5 (the attacker).
	if err := g.AddLink(3, 5); err != nil {
		t.Fatal(err)
	}
	rt, err := g.ComputeRoutes(Origin{ASN: 4}, Origin{ASN: 5})
	if err != nil {
		t.Fatal(err)
	}
	// 3 hears 4 and 5 both as customers at length 1; tiebreak lowest
	// next hop -> 4.
	if rt[3].Origin != 4 {
		t.Fatalf("rt[3] = %+v, want origin 4", rt[3])
	}
	// 2 hears customer 4 directly.
	if rt[2].Origin != 4 {
		t.Fatalf("rt[2] = %+v", rt[2])
	}
	// Both origins keep themselves.
	if rt[4].Type != RouteOrigin || rt[5].Type != RouteOrigin {
		t.Fatal("origins lost their own routes")
	}
}

func TestWithholdFrom(t *testing.T) {
	g := diamond(t)
	// Origin 4 withholds from 2: 2 must route via 1 -> 3 -> 4.
	rt, err := g.ComputeRoutes(Origin{ASN: 4, WithholdFrom: map[bgp.ASN]bool{2: true}})
	if err != nil {
		t.Fatal(err)
	}
	path, ok := rt.PathFrom(2)
	if !ok {
		t.Fatal("2 unreachable")
	}
	want := []bgp.ASN{2, 1, 3, 4}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestAnnounceOnly(t *testing.T) {
	g := diamond(t)
	// Origin 4 announces only to 3.
	rt, err := g.ComputeRoutes(Origin{ASN: 4, AnnounceOnly: map[bgp.ASN]bool{3: true}})
	if err != nil {
		t.Fatal(err)
	}
	if rt[3].NextHop != 4 {
		t.Fatalf("rt[3] = %+v", rt[3])
	}
	// 2 must reach 4 the long way around.
	path, ok := rt.PathFrom(2)
	if !ok {
		t.Fatal("2 unreachable")
	}
	if len(path) != 4 {
		t.Fatalf("path = %v", path)
	}
}

func TestPathFromNoRoute(t *testing.T) {
	g := diamond(t)
	g.AddAS(77) // isolated
	rt, err := g.ComputeRoutes(Origin{ASN: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.PathFrom(77); ok {
		t.Fatal("isolated AS has a path")
	}
}

func TestASPathFrom(t *testing.T) {
	g := diamond(t)
	rt, err := g.ComputeRoutes(Origin{ASN: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := rt.ASPathFrom(1)
	if !ok {
		t.Fatal("no path")
	}
	if p.String() != "1 2 4" {
		t.Fatalf("ASPath = %q", p.String())
	}
	if o, _ := p.Origin(); o != 4 {
		t.Fatalf("origin = %v", o)
	}
}

func TestValleyFreeChecker(t *testing.T) {
	g := diamond(t)
	if !g.ValleyFree([]bgp.ASN{2, 1, 3, 4}) {
		t.Fatal("up-down path rejected")
	}
	// 2 -> 4 -> 3 is customer then provider: a valley.
	if g.ValleyFree([]bgp.ASN{2, 4, 3}) {
		t.Fatal("valley accepted")
	}
	// Non-adjacent hop.
	if g.ValleyFree([]bgp.ASN{2, 3}) {
		t.Fatal("non-adjacent hop accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.RemoveLink(2, 4)
	if _, ok := g.RelBetween(2, 4); !ok {
		t.Fatal("clone mutation leaked into original")
	}
	if c.Len() != g.Len() {
		t.Fatalf("clone Len = %d, want %d", c.Len(), g.Len())
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := GenConfig{Tier1: 4, Tier2: 20, Tier3: 100, Tier2PeerProb: 0.1,
		MaxT2Providers: 2, MaxT3Providers: 2, Seed: 7}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 124 {
		t.Fatalf("Len = %d, want 124", g.Len())
	}
	if n := len(g.TierASNs(1)); n != 4 {
		t.Fatalf("tier1 count = %d", n)
	}
	if n := len(g.TierASNs(3)); n != 100 {
		t.Fatalf("tier3 count = %d", n)
	}
	// Tier-1 clique: every pair peers.
	t1 := g.TierASNs(1)
	for i := range t1 {
		for j := i + 1; j < len(t1); j++ {
			if r, ok := g.RelBetween(t1[i], t1[j]); !ok || r != RelPeer {
				t.Fatalf("tier1 %v-%v not peering", t1[i], t1[j])
			}
		}
	}
	// Every non-tier-1 AS has at least one provider.
	for _, asn := range g.ASNs() {
		a := g.AS(asn)
		if a.Tier != 1 && len(a.Providers()) == 0 {
			t.Fatalf("%v has no provider", asn)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Tier2, cfg.Tier3 = 30, 100
	g1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range g1.ASNs() {
		a, b := g1.AS(asn), g2.AS(asn)
		if b == nil || len(a.Providers()) != len(b.Providers()) ||
			len(a.Peers()) != len(b.Peers()) || len(a.Customers()) != len(b.Customers()) {
			t.Fatalf("graphs differ at %v", asn)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultGenConfig()
	bad.Tier1 = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("Tier1=0 accepted")
	}
	bad = DefaultGenConfig()
	bad.Tier2PeerProb = 2
	if _, err := Generate(bad); err == nil {
		t.Fatal("bad peer prob accepted")
	}
	bad = DefaultGenConfig()
	bad.MaxT3Providers = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("MaxT3Providers=0 accepted")
	}
}

// Property: on generated graphs, every AS reaches a random destination,
// every computed path is valley-free, and path lengths are consistent.
func TestRoutesValleyFreeProperty(t *testing.T) {
	cfg := GenConfig{Tier1: 5, Tier2: 40, Tier3: 200, Tier2PeerProb: 0.08,
		MaxT2Providers: 3, MaxT3Providers: 3, Seed: 11}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	asns := g.ASNs()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		dest := asns[rng.Intn(len(asns))]
		rt, err := g.ComputeRoutes(Origin{ASN: dest})
		if err != nil {
			t.Fatal(err)
		}
		if len(rt) != g.Len() {
			t.Fatalf("dest %v: only %d/%d ASes routed", dest, len(rt), g.Len())
		}
		for _, src := range asns {
			path, ok := rt.PathFrom(src)
			if !ok {
				t.Fatalf("no path %v -> %v", src, dest)
			}
			if len(path)-1 != rt[src].PathLen {
				t.Fatalf("path length mismatch at %v: %v vs %d", src, path, rt[src].PathLen)
			}
			if !g.ValleyFree(path) {
				t.Fatalf("path %v not valley-free", path)
			}
			if path[len(path)-1] != dest {
				t.Fatalf("path %v does not end at %v", path, dest)
			}
		}
	}
}

// Property: route preference is respected — no AS with a customer route
// to the destination has a better (shorter customer) option through a
// neighbor it ignored of the same class.
func TestRouteShortestWithinClass(t *testing.T) {
	cfg := GenConfig{Tier1: 4, Tier2: 30, Tier3: 120, Tier2PeerProb: 0.1,
		MaxT2Providers: 2, MaxT3Providers: 2, Seed: 3}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dest := g.TierASNs(3)[0]
	rt, err := g.ComputeRoutes(Origin{ASN: dest})
	if err != nil {
		t.Fatal(err)
	}
	for asn, r := range rt {
		if r.Type != RouteCustomer {
			continue
		}
		for _, c := range g.AS(asn).Customers() {
			rc, ok := rt[c]
			if !ok || (rc.Type != RouteCustomer && rc.Type != RouteOrigin) {
				continue
			}
			if rc.PathLen+1 < r.PathLen {
				t.Fatalf("%v chose customer route len %d but customer %v offers len %d",
					asn, r.PathLen, c, rc.PathLen+1)
			}
		}
	}
}

// Property: under a two-origin announcement (the hijack configuration),
// every routed AS commits to exactly one origin, its path is valley-free,
// and the path actually ends at the chosen origin.
func TestMultiOriginValleyFreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		cfg := GenConfig{
			Tier1: 3 + rng.Intn(3), Tier2: 15 + rng.Intn(20), Tier3: 60 + rng.Intn(80),
			Tier2PeerProb:  0.05 + rng.Float64()*0.1,
			MaxT2Providers: 2, MaxT3Providers: 3,
			Seed: rng.Int63(),
		}
		g, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		asns := g.ASNs()
		v := asns[rng.Intn(len(asns))]
		a := asns[rng.Intn(len(asns))]
		if v == a {
			continue
		}
		rt, err := g.ComputeRoutes(Origin{ASN: v}, Origin{ASN: a})
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range asns {
			r, ok := rt[src]
			if !ok {
				t.Fatalf("trial %d: %v has no route in a connected topology", trial, src)
			}
			if r.Origin != v && r.Origin != a {
				t.Fatalf("trial %d: %v routes to unknown origin %v", trial, src, r.Origin)
			}
			path, ok := rt.PathFrom(src)
			if !ok {
				t.Fatalf("trial %d: no path from %v", trial, src)
			}
			if path[len(path)-1] != r.Origin {
				t.Fatalf("trial %d: path %v does not end at chosen origin %v", trial, path, r.Origin)
			}
			if !g.ValleyFree(path) {
				t.Fatalf("trial %d: path %v not valley-free", trial, path)
			}
		}
		// Origins always keep themselves.
		if rt[v].Origin != v || rt[a].Origin != a {
			t.Fatalf("trial %d: an origin lost its own prefix", trial)
		}
	}
}

func BenchmarkComputeRoutes1kASes(b *testing.B) {
	g, err := Generate(DefaultGenConfig())
	if err != nil {
		b.Fatal(err)
	}
	dest := g.TierASNs(3)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ComputeRoutes(Origin{ASN: dest}); err != nil {
			b.Fatal(err)
		}
	}
}
