package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"quicksand/internal/bgp"
)

// GenConfig parameterises the synthetic Internet generator. The defaults
// produce a three-tier hierarchy in the style of measured AS topologies:
// a clique of transit-free tier-1 networks, a layer of regional tier-2
// providers with partial peering, and a large fringe of stub ASes.
type GenConfig struct {
	Tier1 int // number of tier-1 ASes (full peering clique)
	Tier2 int // number of tier-2 ASes
	Tier3 int // number of stub ASes

	// Tier2PeerProb is the probability that any given pair of tier-2
	// ASes peers.
	Tier2PeerProb float64
	// MaxT2Providers bounds how many tier-1/tier-2 providers a tier-2 AS
	// buys transit from (at least 1).
	MaxT2Providers int
	// MaxT3Providers bounds how many tier-2 providers a stub AS buys
	// transit from (at least 1).
	MaxT3Providers int

	Seed int64
}

// DefaultGenConfig returns the configuration used by the experiments: a
// roughly 1000-AS Internet with realistic hierarchy.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Tier1:          8,
		Tier2:          120,
		Tier3:          900,
		Tier2PeerProb:  0.06,
		MaxT2Providers: 3,
		MaxT3Providers: 3,
		Seed:           1,
	}
}

func (c GenConfig) validate() error {
	if c.Tier1 < 1 {
		return fmt.Errorf("topology: Tier1 must be >= 1, got %d", c.Tier1)
	}
	if c.Tier2 < 0 || c.Tier3 < 0 {
		return fmt.Errorf("topology: negative tier size")
	}
	if c.Tier2PeerProb < 0 || c.Tier2PeerProb > 1 {
		return fmt.Errorf("topology: Tier2PeerProb %v out of [0,1]", c.Tier2PeerProb)
	}
	if c.MaxT2Providers < 1 || c.MaxT3Providers < 1 {
		return fmt.Errorf("topology: provider bounds must be >= 1")
	}
	return nil
}

// Generate builds a synthetic Internet per cfg. The result is
// deterministic for a given seed and connected: every AS has a transit
// path to the tier-1 clique.
//
// ASNs are assigned sequentially: tier-1 from 1, tier-2 from 101, tier-3
// from 10001 (capacities permitting), so tiers are recognisable in
// experiment output.
func Generate(cfg GenConfig) (*Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := NewGraph()

	tier1 := make([]bgp.ASN, cfg.Tier1)
	for i := range tier1 {
		tier1[i] = bgp.ASN(1 + i)
		g.AddAS(tier1[i]).Tier = 1
	}
	// Tier-1 full peering clique.
	for i := 0; i < len(tier1); i++ {
		for j := i + 1; j < len(tier1); j++ {
			if err := g.AddPeering(tier1[i], tier1[j]); err != nil {
				return nil, err
			}
		}
	}

	tier2 := make([]bgp.ASN, cfg.Tier2)
	for i := range tier2 {
		tier2[i] = bgp.ASN(101 + i)
		g.AddAS(tier2[i]).Tier = 2
	}
	// Each tier-2 AS buys transit from 1..MaxT2Providers providers drawn
	// mostly from tier-1, sometimes from earlier tier-2 ASes (regional
	// transit), producing multi-level customer cones.
	for i, asn := range tier2 {
		n := 1 + rng.Intn(cfg.MaxT2Providers)
		for k := 0; k < n; k++ {
			var prov bgp.ASN
			if i > 0 && rng.Float64() < 0.3 {
				prov = tier2[rng.Intn(i)]
			} else {
				prov = tier1[rng.Intn(len(tier1))]
			}
			if _, linked := g.RelBetween(prov, asn); linked {
				continue
			}
			if err := g.AddLink(prov, asn); err != nil {
				return nil, err
			}
		}
		// Guarantee at least one provider (the loop above can skip all
		// picks on relationship collisions).
		if len(g.AS(asn).Providers()) == 0 {
			if err := g.AddLink(tier1[rng.Intn(len(tier1))], asn); err != nil {
				return nil, err
			}
		}
	}
	// Tier-2 partial peering mesh.
	for i := 0; i < len(tier2); i++ {
		for j := i + 1; j < len(tier2); j++ {
			if rng.Float64() >= cfg.Tier2PeerProb {
				continue
			}
			if _, linked := g.RelBetween(tier2[i], tier2[j]); linked {
				continue
			}
			if err := g.AddPeering(tier2[i], tier2[j]); err != nil {
				return nil, err
			}
		}
	}

	// Stubs buy transit from tier-2 (weighted toward a few big hosters,
	// mirroring the relay concentration the paper measures).
	for i := 0; i < cfg.Tier3; i++ {
		asn := bgp.ASN(10001 + i)
		g.AddAS(asn).Tier = 3
		n := 1 + rng.Intn(cfg.MaxT3Providers)
		for k := 0; k < n; k++ {
			var prov bgp.ASN
			if len(tier2) == 0 {
				prov = tier1[rng.Intn(len(tier1))]
			} else {
				// Zipf-ish skew: square the uniform draw so low-index
				// tier-2 ASes attract more customers.
				f := rng.Float64()
				prov = tier2[int(f*f*float64(len(tier2)))]
			}
			if _, linked := g.RelBetween(prov, asn); linked {
				continue
			}
			if err := g.AddLink(prov, asn); err != nil {
				return nil, err
			}
		}
		if len(g.AS(asn).Providers()) == 0 {
			var prov bgp.ASN
			if len(tier2) > 0 {
				prov = tier2[rng.Intn(len(tier2))]
			} else {
				prov = tier1[rng.Intn(len(tier1))]
			}
			if err := g.AddLink(prov, asn); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// TierASNs returns the ASNs whose generator tier equals tier, ascending.
func (g *Graph) TierASNs(tier int) []bgp.ASN {
	var out []bgp.ASN
	for asn, a := range g.ases {
		if a.Tier == tier {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
