package topology

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"quicksand/internal/bgp"
	"quicksand/internal/par"
)

// PowerLawConfig parameterises the Internet-scale generator: a
// CAIDA-shaped topology with a transit-free core clique, a power-law
// transit layer, and a large stub fringe, sized by a single node count
// that scales to the full measured Internet (~73,000 ASes).
//
// Where GenConfig enumerates tier sizes by hand, this generator is
// driven by the degree distribution: every transit AS draws a
// customer-attraction weight from a Pareto law with the configured
// Exponent, and customers attach preferentially, so the realised
// customer-degree distribution follows a power law with the same
// exponent — the defining property of the measured AS graph.
type PowerLawConfig struct {
	// N is the total number of ASes.
	N int
	// Tier1 is the size of the transit-free core; its members peer in a
	// full clique and never buy transit.
	Tier1 int
	// TransitFrac is the fraction of non-core ASes that sell transit
	// (the tier-2 layer). CAIDA snapshots put roughly 4-6% of ASes in
	// the customer-serving role.
	TransitFrac float64
	// Exponent is the power-law exponent α of the transit
	// customer-degree tail, P(k) ∝ k^-α. Measured AS topologies sit
	// near 2.1.
	Exponent float64
	// MaxWeight caps the drawn customer-attraction weight, bounding the
	// largest hub relative to the smallest transit AS (0 means N/8).
	MaxWeight float64
	// MaxProviders bounds the multihoming of every non-core AS: each
	// buys transit from 1..MaxProviders providers.
	MaxProviders int
	// PeerMean is the mean number of peerings each transit AS
	// originates with other transit ASes (preferentially attached, so
	// hubs also peer more).
	PeerMean float64
	// Seed makes the output deterministic; Workers only parallelises
	// stub attachment and never changes the result (every stub derives
	// its own RNG from the seed, exactly like experiment trials).
	Seed    int64
	Workers int
}

// DefaultPowerLawConfig returns the CAIDA-shaped defaults for n ASes;
// Config73K() is the full-Internet instance.
func DefaultPowerLawConfig(n int) PowerLawConfig {
	t1 := 16
	switch {
	case n < 100:
		t1 = 4
	case n < 2000:
		t1 = 8
	}
	return PowerLawConfig{
		N:            n,
		Tier1:        t1,
		TransitFrac:  0.05,
		Exponent:     2.1,
		MaxProviders: 3,
		PeerMean:     1.5,
		Seed:         1,
	}
}

// Config73K returns the full-Internet-scale configuration: 73,000 ASes,
// the scale at which single-box Gao-Rexford studies over the real CAIDA
// topology operate.
func Config73K() PowerLawConfig { return DefaultPowerLawConfig(73000) }

func (c PowerLawConfig) validate() error {
	if c.Tier1 < 1 {
		return fmt.Errorf("topology: Tier1 must be >= 1, got %d", c.Tier1)
	}
	if c.N < c.Tier1+2 {
		return fmt.Errorf("topology: N=%d too small for Tier1=%d (need >= Tier1+2)", c.N, c.Tier1)
	}
	if c.TransitFrac <= 0 || c.TransitFrac > 1 {
		return fmt.Errorf("topology: TransitFrac %v out of (0,1]", c.TransitFrac)
	}
	if c.Exponent <= 1 {
		return fmt.Errorf("topology: Exponent must be > 1, got %v", c.Exponent)
	}
	if c.MaxWeight < 0 {
		return fmt.Errorf("topology: negative MaxWeight")
	}
	if c.MaxProviders < 1 {
		return fmt.Errorf("topology: MaxProviders must be >= 1, got %d", c.MaxProviders)
	}
	if c.PeerMean < 0 {
		return fmt.Errorf("topology: negative PeerMean")
	}
	return nil
}

// pareto draws from a Pareto(α) law on [1, max]: the inverse CDF of
// p(w) ∝ w^-α, which is what gives transit degrees their power-law
// tail.
func pareto(rng *rand.Rand, alpha, max float64) float64 {
	w := math.Pow(1-rng.Float64(), -1/(alpha-1))
	if w > max {
		return max
	}
	return w
}

// weightedPick returns the index drawn with probability proportional to
// the weights whose prefix sums are cum (cum[0]=0, cum[i] = w_0+...+w_{i-1}).
func weightedPick(rng *rand.Rand, cum []float64) int {
	t := rng.Float64() * cum[len(cum)-1]
	// First index whose cumulative sum exceeds t.
	i := sort.SearchFloat64s(cum[1:], t)
	if i < len(cum)-1 && cum[1+i] == t {
		i++ // SearchFloat64s finds >=; an exact hit belongs to the next bucket
	}
	if i >= len(cum)-1 {
		i = len(cum) - 2
	}
	return i
}

// GeneratePowerLaw builds a CAIDA-shaped topology per cfg: ASNs are
// assigned contiguously from 1 (core first, then transit, then stubs),
// the core is a full peering clique, transit ASes multihome into the
// core and earlier transit, stubs attach to transit ASes
// preferentially by Pareto-drawn weight, and transit ASes peer
// preferentially among themselves. The result is connected, its
// customer-provider digraph is acyclic, and the output is byte-for-byte
// identical for a fixed seed at any Workers value.
func GeneratePowerLaw(cfg PowerLawConfig) (*Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	maxW := cfg.MaxWeight
	if maxW == 0 {
		maxW = float64(cfg.N) / 8
	}
	if maxW < 1 {
		maxW = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := NewGraph()

	// Core clique.
	tier1 := make([]bgp.ASN, cfg.Tier1)
	for i := range tier1 {
		tier1[i] = bgp.ASN(1 + i)
		g.AddAS(tier1[i]).Tier = 1
	}
	for i := 0; i < len(tier1); i++ {
		for j := i + 1; j < len(tier1); j++ {
			if err := g.AddPeering(tier1[i], tier1[j]); err != nil {
				return nil, err
			}
		}
	}

	// Transit layer: Pareto customer-attraction weights and their
	// prefix sums (cum[i] sums the first i weights, so cum[:i+1]
	// restricts preferential draws to earlier transit ASes).
	m := int(cfg.TransitFrac*float64(cfg.N-cfg.Tier1) + 0.5)
	if m < 1 {
		m = 1
	}
	if m > cfg.N-cfg.Tier1 {
		m = cfg.N - cfg.Tier1
	}
	transit := make([]bgp.ASN, m)
	weight := make([]float64, m)
	cum := make([]float64, m+1)
	for i := range transit {
		transit[i] = bgp.ASN(cfg.Tier1 + 1 + i)
		g.AddAS(transit[i]).Tier = 2
		weight[i] = pareto(rng, cfg.Exponent, maxW)
		cum[i+1] = cum[i] + weight[i]
	}

	// Transit multihoming: mostly into the core, sometimes into an
	// earlier (preferentially heavier) transit AS, building multi-level
	// customer cones. Providers always precede customers in creation
	// order, so customer-provider edges can never form a cycle.
	for i, asn := range transit {
		n := 1 + rng.Intn(cfg.MaxProviders)
		for k := 0; k < n; k++ {
			var prov bgp.ASN
			if i > 0 && rng.Float64() < 0.3 {
				prov = transit[weightedPick(rng, cum[:i+1])]
			} else {
				prov = tier1[rng.Intn(len(tier1))]
			}
			if _, linked := g.RelBetween(prov, asn); linked {
				continue
			}
			if err := g.AddLink(prov, asn); err != nil {
				return nil, err
			}
		}
		if len(g.AS(asn).Providers()) == 0 {
			// All picks collided; scan the core from a random offset
			// for a free slot (one always exists — a core AS linked to
			// asn would have been linked as a provider above).
			start := rng.Intn(len(tier1))
			for j := range tier1 {
				prov := tier1[(start+j)%len(tier1)]
				if _, linked := g.RelBetween(prov, asn); !linked {
					if err := g.AddLink(prov, asn); err != nil {
						return nil, err
					}
					break
				}
			}
		}
	}

	// Transit peering mesh, preferentially attached: heavier transit
	// ASes accumulate more peerings, mirroring measured IXP behaviour.
	whole, frac := math.Modf(cfg.PeerMean)
	for i, asn := range transit {
		n := int(whole)
		if rng.Float64() < frac {
			n++
		}
		for k := 0; k < n; k++ {
			for attempt := 0; attempt < 4; attempt++ {
				j := weightedPick(rng, cum)
				if j == i {
					continue
				}
				if _, linked := g.RelBetween(asn, transit[j]); linked {
					continue
				}
				if err := g.AddPeering(asn, transit[j]); err != nil {
					return nil, err
				}
				break
			}
		}
	}

	// Stub fringe: every remaining AS multihomes into the transit layer
	// preferentially by weight. The draws fan out over the worker pool —
	// each stub derives its own RNG from (Seed, index), so the picks
	// (and therefore the graph) are identical for any worker count —
	// and are applied sequentially in index order.
	stubs := cfg.N - cfg.Tier1 - m
	picks, err := par.Map(cfg.Workers, stubs, func(i int) ([]int32, error) {
		trng := rand.New(rand.NewSource(par.TrialSeed(cfg.Seed, i)))
		n := 1 + trng.Intn(cfg.MaxProviders)
		out := make([]int32, 0, n)
		for k := 0; k < n; k++ {
			for attempt := 0; ; attempt++ {
				j := int32(weightedPick(trng, cum))
				dup := false
				for _, prev := range out {
					if prev == j {
						dup = true
						break
					}
				}
				if !dup {
					out = append(out, j)
					break
				}
				if attempt >= 4 {
					break // tolerate fewer providers on repeated collisions
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for i, ps := range picks {
		asn := bgp.ASN(cfg.Tier1 + m + 1 + i)
		g.AddAS(asn).Tier = 3
		for _, j := range ps {
			if err := g.AddLink(transit[j], asn); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Links returns the number of adjacencies (each link counted once).
func (g *Graph) Links() int {
	d := 0
	for _, a := range g.ases {
		d += a.Degree()
	}
	return d / 2
}

// AppendCanonical appends a canonical binary encoding of the graph to b
// and returns the result: AS count, then per AS in ascending ASN order
// its ASN, tier, and the three sorted adjacency lists. Two graphs are
// structurally identical iff their canonical encodings are equal — the
// determinism property tests compare generator output across worker
// counts with it.
func (g *Graph) AppendCanonical(b []byte) []byte {
	asns := g.ASNs()
	b = binary.AppendUvarint(b, uint64(len(asns)))
	appendRow := func(b []byte, row []bgp.ASN) []byte {
		b = binary.AppendUvarint(b, uint64(len(row)))
		for _, n := range row {
			b = binary.AppendUvarint(b, uint64(n))
		}
		return b
	}
	for _, asn := range asns {
		a := g.ases[asn]
		b = binary.AppendUvarint(b, uint64(asn))
		b = binary.AppendUvarint(b, uint64(uint(a.Tier)))
		b = appendRow(b, a.customers)
		b = appendRow(b, a.peers)
		b = appendRow(b, a.providers)
	}
	return b
}
