package topology

import (
	"sync"

	"quicksand/internal/bgp"
)

// RouteCache is a concurrency-safe per-destination route-table cache
// over one graph, versioned against it: any graph mutation invalidates
// every entry on the next lookup. Route computation is deterministic, so
// it does not matter which worker populates an entry first;
// same-destination callers share one compute via a per-entry Once. It
// unifies the memos previously private to defense.StaticOracle and the
// rotation study.
type RouteCache struct {
	g *Graph

	mu      sync.Mutex
	version uint64
	entries map[bgp.ASN]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	cr   *CompiledRoutes
	err  error
}

// NewRouteCache returns an empty cache over g.
func NewRouteCache(g *Graph) *RouteCache {
	return &RouteCache{g: g, entries: make(map[bgp.ASN]*cacheEntry), version: g.Version()}
}

// Graph returns the graph the cache serves.
func (rc *RouteCache) Graph() *Graph { return rc.g }

// Routes returns the cached (or freshly computed) unfiltered
// single-origin table toward dst.
func (rc *RouteCache) Routes(dst bgp.ASN) (*CompiledRoutes, error) {
	rc.mu.Lock()
	if v := rc.g.Version(); v != rc.version {
		rc.entries = make(map[bgp.ASN]*cacheEntry, len(rc.entries))
		rc.version = v
	}
	e, ok := rc.entries[dst]
	if !ok {
		e = &cacheEntry{}
		rc.entries[dst] = e
	}
	rc.mu.Unlock()
	// Compute outside the map lock — concurrent lookups of other
	// destinations proceed; same-destination callers share one compute.
	e.once.Do(func() {
		e.cr, e.err = rc.g.Routes(nil, Origin{ASN: dst})
	})
	return e.cr, e.err
}

// PathFrom returns the best path from src toward dst per the cached
// table; ok=false means src has no route to dst.
func (rc *RouteCache) PathFrom(src, dst bgp.ASN) (path []bgp.ASN, ok bool, err error) {
	cr, err := rc.Routes(dst)
	if err != nil {
		return nil, false, err
	}
	path, ok = cr.PathFrom(src)
	return path, ok, nil
}
