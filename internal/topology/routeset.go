package topology

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"quicksand/internal/bgp"
	"quicksand/internal/par"
)

const routeBytes = int(unsafe.Sizeof(Route{}))

// SizeBytes returns the heap footprint of the scratch's retained
// buffers. Together with a bounded ScratchPool this makes the working
// memory of a sharded computation an explicit, measurable budget.
func (s *Scratch) SizeBytes() int {
	b := (cap(s.frontier) + cap(s.next) + cap(s.candNext) + cap(s.peerIDs)) * 4
	b += len(s.candSeen) * 4
	b += len(s.candOrig) * 4 // bgp.ASN is uint32
	b += cap(s.peerRoutes) * routeBytes
	for i := range s.buckets {
		b += cap(s.buckets[i]) * 4
	}
	return b
}

// MemoryBytes estimates the snapshot's heap footprint: the interning
// table, the id map (conservatively costed at 32 bytes/entry for
// bucket overhead), and the three CSR adjacency structures.
func (c *Compiled) MemoryBytes() int {
	b := len(c.asns) * 4
	b += len(c.idOf) * 32
	b += (len(c.custOff) + len(c.peerOff) + len(c.provOff)) * 4
	b += (len(c.cust) + len(c.peer) + len(c.prov)) * 4
	return b
}

// MemoryBytes returns the heap footprint of the route array.
func (r *CompiledRoutes) MemoryBytes() int { return cap(r.routes) * routeBytes }

// ScratchPool is a bounded pool of route-computation scratch buffers:
// at most Cap scratches ever exist, so the pool's memory ceiling is
// Cap × the per-scratch footprint (which SizeBytes measures) no matter
// how many computations run through it. Get blocks while all scratches
// are in use — that bound, not allocation, is the backpressure.
type ScratchPool struct {
	ch    chan *Scratch
	inUse atomic.Int32
}

// NewScratchPool returns a pool holding capacity scratches (minimum 1).
// Scratches are allocated lazily on first use.
func NewScratchPool(capacity int) *ScratchPool {
	if capacity < 1 {
		capacity = 1
	}
	p := &ScratchPool{ch: make(chan *Scratch, capacity)}
	for i := 0; i < capacity; i++ {
		p.ch <- nil // placeholder: allocated on first Get
	}
	return p
}

// Cap returns the pool's scratch bound.
func (p *ScratchPool) Cap() int { return cap(p.ch) }

// Get takes a scratch, blocking while the pool is exhausted.
func (p *ScratchPool) Get() *Scratch {
	s := <-p.ch
	if s == nil {
		s = new(Scratch)
	}
	p.inUse.Add(1)
	return s
}

// Put returns a scratch taken with Get.
func (p *ScratchPool) Put(s *Scratch) {
	p.inUse.Add(-1)
	p.ch <- s
}

// MemoryBytes sums the footprint of every pooled scratch. It must not
// run concurrently with Get/Put (it drains and refills the pool).
func (p *ScratchPool) MemoryBytes() int {
	if n := p.inUse.Load(); n != 0 {
		panic(fmt.Sprintf("topology: ScratchPool.MemoryBytes with %d scratches in use", n))
	}
	b := 0
	held := make([]*Scratch, 0, cap(p.ch))
	for len(held) < cap(p.ch) {
		s := <-p.ch
		held = append(held, s)
		if s != nil {
			b += s.SizeBytes()
		}
	}
	for _, s := range held {
		p.ch <- s
	}
	return b
}

// MutationOp is the kind of a single-link churn event.
type MutationOp uint8

const (
	// MutRemoveLink deletes whatever relationship exists between A and B.
	MutRemoveLink MutationOp = iota
	// MutAddLink makes B a customer of provider A.
	MutAddLink
	// MutAddPeering makes A and B settlement-free peers.
	MutAddPeering
)

// String returns the op name.
func (op MutationOp) String() string {
	switch op {
	case MutRemoveLink:
		return "remove-link"
	case MutAddLink:
		return "add-link"
	case MutAddPeering:
		return "add-peering"
	}
	return fmt.Sprintf("MutationOp(%d)", int(op))
}

// Mutation is one churn event on the AS graph. For MutAddLink, A is the
// provider and B the customer. Mutations never add or remove ASes —
// that is what keeps delta recompilation valid.
type Mutation struct {
	Op   MutationOp
	A, B bgp.ASN
}

// RouteSet maintains the route tables of a fixed destination set over
// one graph, computed destination-sharded on the worker pool with a
// bounded scratch pool. Apply drives churn through incremental delta
// recompilation: a mutation recomputes only the destinations whose
// stable routing it can affect — decided by an O(1)-per-destination
// check against the current tables — instead of refixpointing every
// table. At Internet scale (73K ASes) single-link churn typically
// touches a handful of the tracked destinations, so delta recompilation
// is an order of magnitude cheaper than RecomputeAll.
//
// Tables are plain single-origin unfiltered computations (the
// RouteCache semantics). A RouteSet is not safe for concurrent use; the
// graph must not be mutated behind its back between Apply calls.
type RouteSet struct {
	g       *Graph
	workers int
	pool    *ScratchPool
	dests   []bgp.ASN
	tables  []*CompiledRoutes
}

// routeSetShard bounds how many destinations one worker computes
// between scratch-pool round trips.
const routeSetShard = 8

// NewRouteSet computes the tables for every destination (distinct,
// present in g) and returns the set. workers <1 means one per CPU; the
// scratch pool is bounded at the worker count.
func NewRouteSet(g *Graph, dests []bgp.ASN, workers int) (*RouteSet, error) {
	if len(dests) == 0 {
		return nil, fmt.Errorf("topology: route set needs at least one destination")
	}
	seen := make(map[bgp.ASN]bool, len(dests))
	for _, d := range dests {
		if g.AS(d) == nil {
			return nil, fmt.Errorf("topology: destination %v not in graph", d)
		}
		if seen[d] {
			return nil, fmt.Errorf("topology: duplicate destination %v", d)
		}
		seen[d] = true
	}
	rs := &RouteSet{
		g:       g,
		workers: par.Workers(workers),
		dests:   append([]bgp.ASN(nil), dests...),
		tables:  make([]*CompiledRoutes, len(dests)),
	}
	rs.pool = NewScratchPool(rs.workers)
	if err := rs.recomputeAll(); err != nil {
		return nil, err
	}
	return rs, nil
}

// Dests returns the tracked destinations in construction order.
func (rs *RouteSet) Dests() []bgp.ASN { return rs.dests }

// Graph returns the underlying graph.
func (rs *RouteSet) Graph() *Graph { return rs.g }

// Table returns the current route table toward dst, with ok=false for
// an untracked destination.
func (rs *RouteSet) Table(dst bgp.ASN) (*CompiledRoutes, bool) {
	for i, d := range rs.dests {
		if d == dst {
			return rs.tables[i], true
		}
	}
	return nil, false
}

// TableAt returns the i'th destination's table.
func (rs *RouteSet) TableAt(i int) *CompiledRoutes { return rs.tables[i] }

// recompute refreshes the tables at the given indices, sharded over the
// worker pool. Each worker holds one pooled scratch per shard and each
// table's previous array is reused in place.
func (rs *RouteSet) recompute(idx []int) error {
	if len(idx) == 0 {
		return nil
	}
	return par.ForEachChunk(rs.workers, len(idx), routeSetShard, func(lo, hi int) error {
		s := rs.pool.Get()
		defer rs.pool.Put(s)
		for _, i := range idx[lo:hi] {
			cr, err := rs.g.RoutesInto(rs.tables[i], s, nil, Origin{ASN: rs.dests[i]})
			if err != nil {
				return err
			}
			rs.tables[i] = cr
		}
		return nil
	})
}

// recomputeAll refreshes every table.
func (rs *RouteSet) recomputeAll() error {
	idx := make([]int, len(rs.dests))
	for i := range idx {
		idx[i] = i
	}
	return rs.recompute(idx)
}

// RecomputeAll refixpoints every destination from scratch — the full
// recomputation that Apply's delta path avoids; benchmarks compare the
// two.
func (rs *RouteSet) RecomputeAll() error { return rs.recomputeAll() }

// MemoryBytes reports the set's retained footprint: every table, the
// scratch pool, and the compiled snapshot. It must not run concurrently
// with Apply or RecomputeAll.
func (rs *RouteSet) MemoryBytes() int {
	b := rs.pool.MemoryBytes() + rs.g.Compiled().MemoryBytes()
	for _, t := range rs.tables {
		if t != nil {
			b += t.MemoryBytes()
		}
	}
	return b
}

// rankOf orders route types by preference (origin best). RouteType's
// declaration order matches the decision process, so the enum value is
// the rank.
func better(cand Route, cur Route) bool {
	if cur.Type == RouteNone {
		return true
	}
	if cand.Type != cur.Type {
		return cand.Type < cur.Type
	}
	if cand.PathLen != cur.PathLen {
		return cand.PathLen < cur.PathLen
	}
	return cand.NextHop < cur.NextHop
}

// adopts reports whether x would take the route y offers across a new
// x-y adjacency, given the current stable table: y must have a route
// and export it to x (customer/origin routes go to everyone,
// peer/provider routes only to customers), and the offered route —
// classified by relOfY, x's relationship to y — must beat x's current
// best under the decision process. If neither endpoint of a new link
// adopts, the old tables remain the (unique) stable outcome, so the
// destination is provably unaffected.
func adopts(tbl *CompiledRoutes, x, y bgp.ASN, relOfY Rel, xIsCustomerOfY bool) bool {
	ry, ok := tbl.Route(y)
	if !ok {
		return false
	}
	if ry.Type != RouteOrigin && ry.Type != RouteCustomer && !xIsCustomerOfY {
		return false
	}
	var candType RouteType
	switch relOfY {
	case RelCustomer:
		candType = RouteCustomer
	case RelPeer:
		candType = RoutePeer
	default:
		candType = RouteProvider
	}
	cand := Route{Type: candType, NextHop: y, PathLen: ry.PathLen + 1}
	rx, ok := tbl.Route(x)
	if !ok {
		return true
	}
	if rx.Type == RouteOrigin {
		return false
	}
	return better(cand, rx)
}

// touch records that a mutation can change one destination's table.
// When exactly one endpoint's route can change, x names it and single
// is true — the candidate for an O(degree) local repair. repairable is
// false when x's pre-mutation route was customer-type: customer routes
// are exported to every neighbor, so other ASes may route via x and a
// local repair of x alone would miss them.
type touch struct {
	i          int // destination index
	x          bgp.ASN
	single     bool
	repairable bool
}

// affected reports whether m can change tbl's stable routing, and which
// endpoint's route changes when only one can.
//
//   - Removing a link only matters when the link carries traffic in the
//     current routing tree, i.e. one endpoint's next hop is the other:
//     removing an unchosen offer changes no AS's best route. At most
//     one endpoint routes across the link (two would be a cycle).
//   - Adding a link only matters when one endpoint would adopt the
//     route the other newly offers: if neither does, every AS's best is
//     unchanged and the old tables stay the unique stable outcome.
//
// The check is exact for removals and sound (never a false negative,
// occasionally conservative) for additions, which is all delta
// recompilation needs.
func affected(tbl *CompiledRoutes, i int, m Mutation) (touch, bool) {
	switch m.Op {
	case MutRemoveLink:
		if ra, ok := tbl.Route(m.A); ok && ra.Type != RouteOrigin && ra.NextHop == m.B {
			return touch{i: i, x: m.A, single: true, repairable: ra.Type != RouteCustomer}, true
		}
		if rb, ok := tbl.Route(m.B); ok && rb.Type != RouteOrigin && rb.NextHop == m.A {
			return touch{i: i, x: m.B, single: true, repairable: rb.Type != RouteCustomer}, true
		}
		return touch{}, false
	case MutAddLink:
		// A gains customer B; B gains provider A.
		aAd := adopts(tbl, m.A, m.B, RelCustomer, false)
		bAd := adopts(tbl, m.B, m.A, RelProvider, true)
		return classifyAdopts(i, m, aAd, bAd)
	default: // MutAddPeering
		aAd := adopts(tbl, m.A, m.B, RelPeer, false)
		bAd := adopts(tbl, m.B, m.A, RelPeer, false)
		return classifyAdopts(i, m, aAd, bAd)
	}
}

func classifyAdopts(i int, m Mutation, aAd, bAd bool) (touch, bool) {
	switch {
	case !aAd && !bAd:
		return touch{}, false
	case aAd && bAd:
		return touch{i: i}, true // both endpoints move; refixpoint
	case aAd:
		return touch{i: i, x: m.A, single: true, repairable: true}, true
	default:
		return touch{i: i, x: m.B, single: true, repairable: true}, true
	}
}

// localRepair recomputes x's best route toward tbl's destination from
// its neighbors' (unchanged) routes, in place. It is exact precisely
// when x's own route is invisible to the rest of the graph — x has no
// customers, so its peer/provider route is exported to nobody — which
// Apply checks before taking this path. Cost is O(degree(x)) against a
// full O(V+E) refixpoint.
func (rs *RouteSet) localRepair(tbl *CompiledRoutes, x bgp.ASN) {
	ax := rs.g.AS(x)
	best := Route{Type: RouteNone}
	consider := func(y bgp.ASN, rel Rel) {
		ry, ok := tbl.Route(y)
		if !ok {
			return
		}
		// Export rule at y: customer/origin routes go to everyone,
		// peer/provider routes only to y's customers (x is y's customer
		// exactly when y is x's provider).
		if ry.Type != RouteOrigin && ry.Type != RouteCustomer && rel != RelProvider {
			return
		}
		var ct RouteType
		switch rel {
		case RelCustomer:
			ct = RouteCustomer
		case RelPeer:
			ct = RoutePeer
		default:
			ct = RouteProvider
		}
		cand := Route{Type: ct, NextHop: y, PathLen: ry.PathLen + 1, Origin: ry.Origin}
		if better(cand, best) {
			best = cand
		}
	}
	for _, y := range ax.customers {
		consider(y, RelCustomer)
	}
	for _, y := range ax.peers {
		consider(y, RelPeer)
	}
	for _, y := range ax.providers {
		consider(y, RelProvider)
	}
	id, _ := tbl.c.ID(x)
	tbl.routes[id] = best
}

// ApplyStats reports what one Apply recomputed.
type ApplyStats struct {
	// Affected counts destinations whose table the mutation could
	// change (the rest were proven untouched and skipped).
	Affected int
	// Repaired counts affected destinations fixed by an O(degree)
	// in-place local repair.
	Repaired int
	// Refixpointed counts affected destinations recomputed by a full
	// fixpoint.
	Refixpointed int
}

// Apply mutates the graph and delta-recompiles: destinations the
// mutation provably cannot affect are skipped, affected destinations
// whose change is confined to one customer-less AS are repaired in
// place, and only the remainder is refixpointed. The tables afterwards
// are identical to a full RecomputeAll — the fuzz and differential
// suites pin that equivalence.
func (rs *RouteSet) Apply(m Mutation) (ApplyStats, error) {
	var st ApplyStats
	if rs.g.AS(m.A) == nil || rs.g.AS(m.B) == nil {
		return st, fmt.Errorf("topology: mutation %v %v-%v references an unknown AS", m.Op, m.A, m.B)
	}
	// Decide affected destinations against the pre-mutation tables.
	var touched []touch
	for i, tbl := range rs.tables {
		if tc, hit := affected(tbl, i, m); hit {
			touched = append(touched, tc)
		}
	}
	switch m.Op {
	case MutRemoveLink:
		if !rs.g.RemoveLink(m.A, m.B) {
			return st, fmt.Errorf("topology: no link %v-%v to remove", m.A, m.B)
		}
	case MutAddLink:
		if err := rs.g.AddLink(m.A, m.B); err != nil {
			return st, err
		}
	case MutAddPeering:
		if err := rs.g.AddPeering(m.A, m.B); err != nil {
			return st, err
		}
	default:
		return st, fmt.Errorf("topology: unknown mutation op %v", m.Op)
	}
	st.Affected = len(touched)
	var full []int
	for _, tc := range touched {
		// The local repair is exact only when both the old and the new
		// route of tc.x are exported to nobody: the old route was not
		// customer-type (tc.repairable) and the AS has no customers on
		// the post-mutation graph (so a just-gained customer
		// disqualifies, and the new route cannot be customer-type).
		if tc.single && tc.repairable && len(rs.g.AS(tc.x).customers) == 0 {
			rs.localRepair(rs.tables[tc.i], tc.x)
			st.Repaired++
		} else {
			full = append(full, tc.i)
		}
	}
	st.Refixpointed = len(full)
	if err := rs.recompute(full); err != nil {
		return st, err
	}
	return st, nil
}
