package topology

import (
	"fmt"
	"testing"

	"quicksand/internal/bgp"
)

// FuzzDeltaRecompile feeds random link add/remove/flap sequences through
// RouteSet.Apply and asserts, after every mutation, that delta
// recompilation produced tables bit-identical to a full recomputation
// from scratch. Each 3-byte chunk of input encodes one mutation
// (op, endpoint, endpoint).
func FuzzDeltaRecompile(f *testing.F) {
	const n = 120
	// Seeds: a removal, an add/remove flap of the same pair, a peering,
	// and a longer mixed sequence.
	f.Add([]byte{0, 10, 40})
	f.Add([]byte{0, 5, 90, 1, 5, 90, 0, 5, 90})
	f.Add([]byte{2, 20, 21, 0, 20, 21})
	f.Add([]byte{1, 3, 70, 2, 70, 80, 0, 3, 70, 1, 9, 100, 0, 9, 100})

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := DefaultPowerLawConfig(n)
		cfg.Seed = 3
		g, err := GeneratePowerLaw(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dests := []bgp.ASN{1, 9, 60, n} // core, transit, stub, last stub
		rs, err := NewRouteSet(g, dests, 1)
		if err != nil {
			t.Fatal(err)
		}
		step := 0
		for ; len(data) >= 3; data = data[3:] {
			a := bgp.ASN(1 + int(data[1])%n)
			b := bgp.ASN(1 + int(data[2])%n)
			if a == b {
				continue
			}
			var m Mutation
			switch data[0] % 3 {
			case 0:
				m = Mutation{Op: MutRemoveLink, A: a, B: b}
			case 1:
				// Lower ASN provides, keeping the customer DAG acyclic
				// (generator ASNs ascend core -> transit -> stub).
				lo, hi := a, b
				if lo > hi {
					lo, hi = hi, lo
				}
				m = Mutation{Op: MutAddLink, A: lo, B: hi}
			case 2:
				m = Mutation{Op: MutAddPeering, A: a, B: b}
			}
			if _, err := rs.Apply(m); err != nil {
				// Invalid mutation (nothing to remove, already linked):
				// Apply must reject it without touching graph or tables.
				continue
			}
			step++
			assertTablesMatchFresh(t, rs, fmt.Sprintf("step %d (%v %v-%v)", step, m.Op, m.A, m.B))
		}
	})
}
