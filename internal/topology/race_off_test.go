//go:build !race

package topology

// raceEnabled reports whether the race detector is compiled in; the
// 73K-scale tests skip under -race, where instrumentation would slow
// them ~20x and skew the memory-budget measurement.
const raceEnabled = false
