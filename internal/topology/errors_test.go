package topology

import (
	"strings"
	"testing"

	"quicksand/internal/bgp"
)

func TestRelAndRouteTypeStrings(t *testing.T) {
	relCases := map[Rel]string{
		RelCustomer: "customer", RelPeer: "peer", RelProvider: "provider",
		Rel(42): "Rel(42)",
	}
	for r, want := range relCases {
		if got := r.String(); got != want {
			t.Errorf("Rel(%d).String() = %q, want %q", int(r), got, want)
		}
	}
	typeCases := map[RouteType]string{
		RouteNone: "none", RouteOrigin: "origin", RouteCustomer: "customer",
		RoutePeer: "peer", RouteProvider: "provider",
		RouteType(42): "RouteType(42)",
	}
	for rt, want := range typeCases {
		if got := rt.String(); got != want {
			t.Errorf("RouteType(%d).String() = %q, want %q", int(rt), got, want)
		}
	}
}

func TestInsertSortedIgnoresDuplicates(t *testing.T) {
	s := []bgp.ASN{1, 3, 5}
	if got := insertSorted(s, 3); len(got) != 3 {
		t.Fatalf("inserting duplicate grew slice to %v", got)
	}
	got := insertSorted(s, 4)
	want := []bgp.ASN{1, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("insertSorted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("insertSorted = %v, want %v", got, want)
		}
	}
}

func TestAddLinkAndPeeringErrors(t *testing.T) {
	g := NewGraph()
	if err := g.AddLink(7, 7); err == nil {
		t.Error("self link accepted")
	}
	if err := g.AddPeering(7, 7); err == nil {
		t.Error("self peering accepted")
	}
	if err := g.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 2); err == nil {
		t.Error("duplicate link accepted")
	}
	if err := g.AddLink(2, 1); err == nil {
		t.Error("reversed duplicate link accepted")
	}
	if err := g.AddPeering(1, 2); err == nil {
		t.Error("peering over existing transit link accepted")
	}
	if err := g.AddPeering(3, 4); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPeering(4, 3); err == nil {
		t.Error("duplicate peering accepted")
	}
	if err := g.AddLink(3, 4); err == nil {
		t.Error("transit link over existing peering accepted")
	}
}

func TestRemoveLinkAllRelationships(t *testing.T) {
	g := NewGraph()
	if err := g.AddLink(1, 2); err != nil { // 2 is 1's customer
		t.Fatal(err)
	}
	if err := g.AddPeering(1, 3); err != nil {
		t.Fatal(err)
	}

	if g.RemoveLink(9, 1) || g.RemoveLink(1, 9) {
		t.Error("removal with an unknown endpoint reported success")
	}
	if g.RemoveLink(2, 3) {
		t.Error("removal of a non-adjacent pair reported success")
	}
	// Transit link named from the customer side: the providers branch.
	if !g.RemoveLink(2, 1) {
		t.Error("customer-side removal failed")
	}
	if _, ok := g.RelBetween(1, 2); ok {
		t.Error("transit link survived removal")
	}
	if !g.RemoveLink(1, 3) {
		t.Error("peering removal failed")
	}
	if _, ok := g.RelBetween(1, 3); ok {
		t.Error("peering survived removal")
	}
	// Provider-side naming: the customers branch.
	if err := g.AddLink(4, 5); err != nil {
		t.Fatal(err)
	}
	if !g.RemoveLink(4, 5) {
		t.Error("provider-side removal failed")
	}
	if g.RemoveLink(4, 5) {
		t.Error("second removal of the same link reported success")
	}
}

func TestPathFromDefendsAgainstBadTables(t *testing.T) {
	if _, ok := (RouteTable{}).PathFrom(1); ok {
		t.Error("path from an AS with no route")
	}
	// NextHop pointing at an AS missing from the table.
	dangling := RouteTable{1: {Type: RouteProvider, NextHop: 2, Origin: 9}}
	if _, ok := dangling.PathFrom(1); ok {
		t.Error("path through a dangling next hop")
	}
	// Two non-origin routes pointing at each other: the cycle guard.
	cyclic := RouteTable{
		1: {Type: RouteProvider, NextHop: 2, Origin: 9},
		2: {Type: RouteProvider, NextHop: 1, Origin: 9},
	}
	if _, ok := cyclic.PathFrom(1); ok {
		t.Error("path through a routing cycle")
	}
	if _, ok := cyclic.ASPathFrom(1); ok {
		t.Error("AS path through a routing cycle")
	}
}

func TestValleyFreeRejections(t *testing.T) {
	g := NewGraph()
	// 1 buys from 2 and 3; 3 buys from 5; 4 buys from 3; 2–3 peer; 1–6 peer.
	for _, link := range [][2]bgp.ASN{{2, 1}, {3, 1}, {3, 4}, {5, 3}} {
		if err := g.AddLink(link[0], link[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddPeering(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPeering(1, 6); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		path []bgp.ASN
		want bool
	}{
		{"empty", nil, true},
		{"single", []bgp.ASN{1}, true},
		{"up-across-down", []bgp.ASN{1, 2, 3, 4}, true},
		{"up-down", []bgp.ASN{1, 2}, true},
		{"non-adjacent hop", []bgp.ASN{1, 4}, false},
		{"down-up valley", []bgp.ASN{2, 1, 3}, false},
		{"across-up", []bgp.ASN{2, 3, 1}, true}, // 3→1 is down, legal
		{"up-after-across", []bgp.ASN{2, 3, 5}, false},
		{"across-after-down", []bgp.ASN{2, 1, 6}, false},
	}
	for _, tc := range cases {
		if got := g.ValleyFree(tc.path); got != tc.want {
			t.Errorf("%s: ValleyFree(%v) = %v, want %v", tc.name, tc.path, got, tc.want)
		}
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	base := DefaultGenConfig()
	cases := []struct {
		name   string
		mutate func(*GenConfig)
		errSub string
	}{
		{"no tier1", func(c *GenConfig) { c.Tier1 = 0 }, "Tier1"},
		{"negative tier2", func(c *GenConfig) { c.Tier2 = -1 }, "negative"},
		{"negative tier3", func(c *GenConfig) { c.Tier3 = -1 }, "negative"},
		{"peer prob too high", func(c *GenConfig) { c.Tier2PeerProb = 1.5 }, "out of"},
		{"peer prob negative", func(c *GenConfig) { c.Tier2PeerProb = -0.1 }, "out of"},
		{"zero t2 providers", func(c *GenConfig) { c.MaxT2Providers = 0 }, "provider bounds"},
		{"zero t3 providers", func(c *GenConfig) { c.MaxT3Providers = 0 }, "provider bounds"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		_, err := Generate(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.errSub) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.errSub)
		}
	}
}

func TestGenerateWithoutTier2(t *testing.T) {
	// No regional tier: stubs must attach directly to the tier-1 clique.
	g, err := Generate(GenConfig{
		Tier1: 2, Tier3: 6,
		MaxT2Providers: 1, MaxT3Providers: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		asn := bgp.ASN(10001 + i)
		for _, prov := range g.AS(asn).Providers() {
			if g.AS(prov).Tier != 1 {
				t.Errorf("AS%d has non-tier-1 provider AS%d", asn, prov)
			}
		}
	}
}

func TestGenerateSingleTier1(t *testing.T) {
	// A degenerate single-AS core exercises the no-clique and
	// single-provider-choice paths.
	g, err := Generate(GenConfig{
		Tier1: 1, Tier2: 3, Tier3: 10,
		Tier2PeerProb: 1.0, MaxT2Providers: 2, MaxT3Providers: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 14 {
		t.Fatalf("generated %d ASes, want 14", g.Len())
	}
	rt, err := g.ComputeRoutes(Origin{ASN: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range g.ASNs() {
		if _, ok := rt[asn]; !ok {
			t.Errorf("AS%d unreachable from the tier-1 core", asn)
		}
	}
}
