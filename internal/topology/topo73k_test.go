package topology

import (
	"runtime"
	"sync"
	"testing"

	"quicksand/internal/bgp"
)

// budgetBytesPerASTable is the pinned memory ceiling for route storage
// at Internet scale: heap growth per (AS, destination) pair when
// building a RouteSet over the 73K-AS topology. A Route is 32 bytes
// (int32/CSR layout); the ceiling leaves headroom for the scratch pool
// and allocator slack but fails loudly if the layout regresses (e.g. a
// field grows Route past 32 bytes or tables fall back to maps).
const budgetBytesPerASTable = 64

var topo73k struct {
	once sync.Once
	g    *Graph
	err  error
}

// graph73K returns the shared full-Internet-scale topology, generating
// it once per test binary (~1s). The graph is shared across tests:
// tests may churn links but must never add or remove ASes.
func graph73K(t *testing.T) *Graph {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping 73K-scale test in -short mode")
	}
	if raceEnabled {
		t.Skip("skipping 73K-scale test under -race")
	}
	topo73k.once.Do(func() {
		topo73k.g, topo73k.err = GeneratePowerLaw(Config73K())
	})
	if topo73k.err != nil {
		t.Fatalf("generating 73K topology: %v", topo73k.err)
	}
	return topo73k.g
}

// TestTopo73KSmoke is the scaled-down version of the bench gate: the
// full-Internet topology generates, a destination shard computes with
// every AS routed (the graph is connected), and a single-link flap
// delta-recompiles to tables identical to a full recomputation.
func TestTopo73KSmoke(t *testing.T) {
	g := graph73K(t)
	if g.Len() != 73000 {
		t.Fatalf("Len = %d, want 73000", g.Len())
	}

	// Destinations span core, transit, and stub; none is the stub whose
	// link the delta step below flaps (its provider routes toward it via
	// a customer route, which is correctly not locally repairable).
	dests := []bgp.ASN{1, 5000, 36500}
	rs, err := NewRouteSet(g, dests, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dests {
		routed := 0
		tbl := rs.TableAt(i)
		for id := 0; id < tbl.Len(); id++ {
			if tbl.At(id).Type != RouteNone {
				routed++
			}
		}
		if routed != g.Len() {
			t.Errorf("dest %v: %d of %d ASes routed — graph not connected", d, routed, g.Len())
		}
	}

	// Flap a stub's provider link; delta must equal full recompute both
	// ways, and the removal should resolve as a cheap local repair on at
	// least the unaffected-or-repaired fast path.
	stub := bgp.ASN(73000)
	prov := g.AS(stub).Providers()[0]
	st, err := rs.Apply(Mutation{Op: MutRemoveLink, A: stub, B: prov})
	if err != nil {
		t.Fatal(err)
	}
	if st.Refixpointed != 0 {
		t.Errorf("stub link removal refixpointed %d tables, want all repairs/skips (stats %+v)", st.Refixpointed, st)
	}
	assertTablesMatchFresh(t, rs, "after stub link removal")
	if _, err := rs.Apply(Mutation{Op: MutAddLink, A: prov, B: stub}); err != nil {
		t.Fatal(err)
	}
	assertTablesMatchFresh(t, rs, "after stub link restore")
}

// TestTopo73KMemoryBudget pins the route-storage budget at Internet
// scale: building an 8-destination RouteSet over 73K ASes must grow the
// heap by less than budgetBytesPerASTable per (AS, destination) pair.
// This is the regression tripwire for the int32/CSR layout — a Route
// growing past 32 bytes, or tables regressing to maps, blows the
// ceiling immediately.
func TestTopo73KMemoryBudget(t *testing.T) {
	g := graph73K(t)
	g.Compiled() // pre-build the shared snapshot so it is not billed below

	dests := []bgp.ASN{1, 2, 9000, 9001, 40000, 40001, 72999, 73000}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	rs, err := NewRouteSet(g, dests, 2)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)

	grown := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	pairs := int64(g.Len()) * int64(len(dests))
	perPair := float64(grown) / float64(pairs)
	t.Logf("heap growth %d bytes for %d AS-destination pairs: %.1f bytes each (accounted: %d)",
		grown, pairs, perPair, rs.MemoryBytes())
	if perPair > budgetBytesPerASTable {
		t.Errorf("route storage %.1f bytes per AS-table exceeds the %d-byte budget",
			perPair, budgetBytesPerASTable)
	}

	// The explicit accounting must agree with reality: at least the raw
	// table footprint, and no more than the measured heap growth plus
	// allocator slack.
	minAccounted := int(pairs) * routeBytes
	if rs.MemoryBytes() < minAccounted {
		t.Errorf("MemoryBytes() = %d, below the bare table footprint %d", rs.MemoryBytes(), minAccounted)
	}
	runtime.KeepAlive(rs)
}
