// Package topology models the AS-level Internet: a graph of autonomous
// systems annotated with Gao-Rexford business relationships
// (customer-provider and peer-peer), plus policy-compliant interdomain
// route computation.
//
// Route computation follows the standard model used by the AS-path
// simulators the paper builds on (Gao 2001): routes must be valley-free,
// ASes prefer customer routes over peer routes over provider routes, then
// shorter AS paths, then the lowest next-hop ASN as a deterministic
// tiebreak. Multiple simultaneous origins for the same prefix are
// supported, which is exactly the configuration of a prefix hijack: the
// legitimate origin and the attacker both claim the prefix and every other
// AS picks a side according to policy.
package topology

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"quicksand/internal/bgp"
)

// Rel is the business relationship of a neighbor, from the point of view
// of the AS holding the adjacency.
type Rel int

const (
	// RelCustomer marks a neighbor that pays us for transit.
	RelCustomer Rel = iota
	// RelPeer marks a settlement-free peer.
	RelPeer
	// RelProvider marks a neighbor we pay for transit.
	RelProvider
)

// String returns the lower-case relationship name.
func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// AS is one autonomous system in the graph.
type AS struct {
	ASN bgp.ASN
	// Tier records the generator's placement (1 = clique core,
	// 2 = regional, 3 = stub); it is advisory and not used by routing.
	Tier int

	customers []bgp.ASN
	peers     []bgp.ASN
	providers []bgp.ASN
}

// Customers returns the ASNs of the customers of a (sorted).
func (a *AS) Customers() []bgp.ASN { return a.customers }

// Peers returns the ASNs of the peers of a (sorted).
func (a *AS) Peers() []bgp.ASN { return a.peers }

// Providers returns the ASNs of the providers of a (sorted).
func (a *AS) Providers() []bgp.ASN { return a.providers }

// Degree returns the total number of adjacencies.
func (a *AS) Degree() int { return len(a.customers) + len(a.peers) + len(a.providers) }

// Graph is an AS-level topology. The zero value is empty; use AddAS and
// AddLink to build it, or Generate for a synthetic Internet.
//
// A Graph is safe for concurrent reads (including Compiled, Routes, and
// RouteCache lookups); mutations must not race with reads or each other.
type Graph struct {
	ases map[bgp.ASN]*AS

	// version counts structural mutations; compiled snapshots and route
	// caches tag themselves with it to detect staleness.
	version uint64
	// dirty collects ASes whose adjacency changed since the last
	// compile, bounding the delta recompile; asAdded flags growth of the
	// AS set itself, which forces a full compile.
	dirty   map[bgp.ASN]bool
	asAdded bool

	mu       sync.Mutex // serialises lazy compilation across readers
	compiled *Compiled
}

// noteMutation records a structural change touching the given ASes.
func (g *Graph) noteMutation(asns ...bgp.ASN) {
	g.version++
	if g.dirty == nil {
		g.dirty = make(map[bgp.ASN]bool)
	}
	for _, a := range asns {
		g.dirty[a] = true
	}
}

// NewGraph returns an empty topology.
func NewGraph() *Graph { return &Graph{ases: make(map[bgp.ASN]*AS)} }

// AddAS inserts an AS with the given number, returning it. Adding an
// existing ASN returns the existing node.
func (g *Graph) AddAS(asn bgp.ASN) *AS {
	if a, ok := g.ases[asn]; ok {
		return a
	}
	a := &AS{ASN: asn}
	g.ases[asn] = a
	g.version++
	g.asAdded = true
	return a
}

// AS returns the node for asn, or nil.
func (g *Graph) AS(asn bgp.ASN) *AS { return g.ases[asn] }

// Len returns the number of ASes.
func (g *Graph) Len() int { return len(g.ases) }

// ASNs returns every ASN in ascending order.
func (g *Graph) ASNs() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(g.ases))
	for a := range g.ases {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func insertSorted(s []bgp.ASN, v bgp.ASN) []bgp.ASN {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []bgp.ASN, v bgp.ASN) ([]bgp.ASN, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i == len(s) || s[i] != v {
		return s, false
	}
	return append(s[:i], s[i+1:]...), true
}

func containsSorted(s []bgp.ASN, v bgp.ASN) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// AddLink records that customer buys transit from provider (a
// customer-provider edge), creating the ASes if needed. It is an error if
// the pair already has any relationship.
func (g *Graph) AddLink(provider, customer bgp.ASN) error {
	if provider == customer {
		return fmt.Errorf("topology: self link at %v", provider)
	}
	if _, ok := g.RelBetween(provider, customer); ok {
		return fmt.Errorf("topology: %v and %v already linked", provider, customer)
	}
	p := g.AddAS(provider)
	c := g.AddAS(customer)
	p.customers = insertSorted(p.customers, customer)
	c.providers = insertSorted(c.providers, provider)
	g.noteMutation(provider, customer)
	return nil
}

// AddPeering records a settlement-free peering between a and b, creating
// the ASes if needed. It is an error if the pair already has any
// relationship.
func (g *Graph) AddPeering(a, b bgp.ASN) error {
	if a == b {
		return fmt.Errorf("topology: self peering at %v", a)
	}
	if _, ok := g.RelBetween(a, b); ok {
		return fmt.Errorf("topology: %v and %v already linked", a, b)
	}
	na := g.AddAS(a)
	nb := g.AddAS(b)
	na.peers = insertSorted(na.peers, b)
	nb.peers = insertSorted(nb.peers, a)
	g.noteMutation(a, b)
	return nil
}

// RemoveLink deletes whatever relationship exists between a and b,
// reporting whether one was removed. Simulated link failures use this.
func (g *Graph) RemoveLink(a, b bgp.ASN) bool {
	na, nb := g.ases[a], g.ases[b]
	if na == nil || nb == nil {
		return false
	}
	removed := false
	if s, ok := removeSorted(na.customers, b); ok {
		na.customers = s
		nb.providers, _ = removeSorted(nb.providers, a)
		removed = true
	}
	if s, ok := removeSorted(na.providers, b); ok {
		na.providers = s
		nb.customers, _ = removeSorted(nb.customers, a)
		removed = true
	}
	if s, ok := removeSorted(na.peers, b); ok {
		na.peers = s
		nb.peers, _ = removeSorted(nb.peers, a)
		removed = true
	}
	if removed {
		g.noteMutation(a, b)
	}
	return removed
}

// RelBetween returns the relationship of b as seen from a (RelCustomer
// means b is a's customer), with ok=false when the ASes are not adjacent.
func (g *Graph) RelBetween(a, b bgp.ASN) (Rel, bool) {
	na := g.ases[a]
	if na == nil {
		return 0, false
	}
	switch {
	case containsSorted(na.customers, b):
		return RelCustomer, true
	case containsSorted(na.peers, b):
		return RelPeer, true
	case containsSorted(na.providers, b):
		return RelProvider, true
	}
	return 0, false
}

// Neighbors returns every AS adjacent to asn, in ascending order.
func (g *Graph) Neighbors(asn bgp.ASN) []bgp.ASN {
	a := g.ases[asn]
	if a == nil {
		return nil
	}
	out := make([]bgp.ASN, 0, a.Degree())
	out = append(out, a.customers...)
	out = append(out, a.peers...)
	out = append(out, a.providers...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the graph. The simulator clones before
// applying failures so the pristine topology survives.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	for asn, a := range g.ases {
		n := out.AddAS(asn)
		n.Tier = a.Tier
		n.customers = append([]bgp.ASN(nil), a.customers...)
		n.peers = append([]bgp.ASN(nil), a.peers...)
		n.providers = append([]bgp.ASN(nil), a.providers...)
	}
	return out
}

// RouteType classifies how an AS learned its best route, in decreasing
// order of preference.
type RouteType int

const (
	// RouteNone means the AS has no policy-compliant route.
	RouteNone RouteType = iota
	// RouteOrigin means the AS originates the prefix itself.
	RouteOrigin
	// RouteCustomer means the best route was learned from a customer.
	RouteCustomer
	// RoutePeer means the best route was learned from a peer.
	RoutePeer
	// RouteProvider means the best route was learned from a provider.
	RouteProvider
)

// String returns the route-type name.
func (t RouteType) String() string {
	switch t {
	case RouteNone:
		return "none"
	case RouteOrigin:
		return "origin"
	case RouteCustomer:
		return "customer"
	case RoutePeer:
		return "peer"
	case RouteProvider:
		return "provider"
	}
	return fmt.Sprintf("RouteType(%d)", int(t))
}

// Route is one AS's best route toward the computed destination.
type Route struct {
	Type    RouteType
	NextHop bgp.ASN // meaningless for RouteOrigin
	PathLen int     // number of AS hops to the origin (0 at the origin)
	Origin  bgp.ASN // which origin this AS ends up routing to
}

// RouteTable maps each AS to its best route for one destination prefix.
// ASes with no route are absent.
type RouteTable map[bgp.ASN]Route

// Origin describes one AS originating the destination prefix. WithholdFrom
// suppresses the origin's announcement to specific direct neighbors (used
// by interception attacks to keep a clean path back to the victim);
// AnnounceOnly, when non-empty, restricts the announcement to exactly
// those neighbors (used by community-scoped stealth hijacks).
type Origin struct {
	ASN          bgp.ASN
	WithholdFrom map[bgp.ASN]bool
	AnnounceOnly map[bgp.ASN]bool
}

// announces reports whether the origin exports the prefix to neighbor n.
func (o Origin) announces(n bgp.ASN) bool {
	if o.WithholdFrom[n] {
		return false
	}
	if len(o.AnnounceOnly) > 0 {
		return o.AnnounceOnly[n]
	}
	return true
}

// ImportFilter lets an AS reject routes by origin before the decision
// process — the hook through which route-origin validation (RPKI/ROV) is
// modelled: a validating AS refuses announcements whose origin does not
// match the prefix's ROA. Returning false means "at" drops routes toward
// "origin" (and therefore never propagates them either).
type ImportFilter func(at, origin bgp.ASN) bool

// ComputeRoutes computes every AS's best policy-compliant route to a
// prefix originated by the given origins, applying the Gao-Rexford export
// rules and the BGP decision process (customer > peer > provider, then
// shortest AS path, then lowest next-hop ASN). The result is a stable
// routing outcome — the unique one under these preferences.
func (g *Graph) ComputeRoutes(origins ...Origin) (RouteTable, error) {
	return g.ComputeRoutesFiltered(nil, origins...)
}

// ComputeRoutesFiltered is ComputeRoutes with a per-AS import filter
// (nil means accept everything).
func (g *Graph) ComputeRoutesFiltered(filter ImportFilter, origins ...Origin) (RouteTable, error) {
	if len(origins) == 0 {
		return nil, fmt.Errorf("topology: no origins")
	}
	originSpec := make(map[bgp.ASN]Origin, len(origins))
	for _, o := range origins {
		if g.ases[o.ASN] == nil {
			return nil, fmt.Errorf("topology: origin %v not in graph", o.ASN)
		}
		if _, dup := originSpec[o.ASN]; dup {
			return nil, fmt.Errorf("topology: duplicate origin %v", o.ASN)
		}
		originSpec[o.ASN] = o
	}

	rt := make(RouteTable, len(g.ases))
	for asn := range originSpec {
		rt[asn] = Route{Type: RouteOrigin, Origin: asn}
	}

	// exports reports whether 'from' announces its current route to
	// neighbor 'to'; origins apply their announcement scoping.
	exports := func(from, to bgp.ASN) bool {
		if o, isOrigin := originSpec[from]; isOrigin {
			return o.announces(to)
		}
		return true
	}
	// accepts reports whether 'at' imports routes toward 'origin'.
	accepts := func(at, origin bgp.ASN) bool {
		return filter == nil || filter(at, origin)
	}

	// Phase 1 — customer routes. Propagate upward from the origins along
	// customer→provider edges in rounds of increasing path length. An AS
	// reached here gets a customer route (or keeps its origin route).
	type cand struct {
		nextHop bgp.ASN
		origin  bgp.ASN
	}
	better := func(a, b cand) bool {
		if a.nextHop != b.nextHop {
			return a.nextHop < b.nextHop
		}
		return a.origin < b.origin
	}

	frontier := make([]bgp.ASN, 0, len(originSpec))
	for asn := range originSpec {
		frontier = append(frontier, asn)
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	for length := 1; len(frontier) > 0; length++ {
		cands := make(map[bgp.ASN]cand)
		for _, u := range frontier {
			ru := rt[u]
			// Customer (and origin) routes are exported to providers.
			if ru.Type != RouteOrigin && ru.Type != RouteCustomer {
				continue
			}
			for _, p := range g.ases[u].providers {
				if !exports(u, p) {
					continue
				}
				if !accepts(p, ru.Origin) {
					continue
				}
				if _, settled := rt[p]; settled {
					continue
				}
				c := cand{nextHop: u, origin: ru.Origin}
				if prev, ok := cands[p]; !ok || better(c, prev) {
					cands[p] = c
				}
			}
		}
		next := make([]bgp.ASN, 0, len(cands))
		for p, c := range cands {
			rt[p] = Route{Type: RouteCustomer, NextHop: c.nextHop, PathLen: length, Origin: c.origin}
			next = append(next, p)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}

	// Phase 2 — peer routes. An AS without a customer/origin route takes
	// the best single-peer-hop route to a neighbor holding a
	// customer/origin route. Peer routes are not re-exported to peers.
	type peerRoute struct {
		r  Route
		to bgp.ASN
	}
	peerAdds := make([]peerRoute, 0)
	for asn, a := range g.ases {
		if _, settled := rt[asn]; settled {
			continue
		}
		best := Route{Type: RouteNone}
		for _, p := range a.peers {
			rp, ok := rt[p]
			if !ok || (rp.Type != RouteCustomer && rp.Type != RouteOrigin) {
				continue
			}
			if !exports(p, asn) {
				continue
			}
			if !accepts(asn, rp.Origin) {
				continue
			}
			r := Route{Type: RoutePeer, NextHop: p, PathLen: rp.PathLen + 1, Origin: rp.Origin}
			if best.Type == RouteNone || r.PathLen < best.PathLen ||
				(r.PathLen == best.PathLen && r.NextHop < best.NextHop) {
				best = r
			}
		}
		if best.Type != RouteNone {
			peerAdds = append(peerAdds, peerRoute{best, asn})
		}
	}
	for _, pa := range peerAdds {
		rt[pa.to] = pa.r
	}

	// Phase 3 — provider routes. Any routed AS exports to its customers;
	// unrouted customers adopt, preferring shorter paths. Sources enter a
	// priority queue at their current path length so mixed-length
	// frontiers settle shortest-first.
	pq := &routeHeap{}
	heap.Init(pq)
	for asn, r := range rt {
		heap.Push(pq, heapItem{pathLen: r.PathLen, asn: asn})
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		u := it.asn
		ru := rt[u]
		if ru.PathLen != it.pathLen {
			continue // stale entry
		}
		for _, c := range g.ases[u].customers {
			if !exports(u, c) {
				continue
			}
			if !accepts(c, ru.Origin) {
				continue
			}
			rc, settled := rt[c]
			nl := ru.PathLen + 1
			if settled && (rc.Type != RouteProvider || rc.PathLen < nl ||
				(rc.PathLen == nl && rc.NextHop <= u)) {
				continue
			}
			rt[c] = Route{Type: RouteProvider, NextHop: u, PathLen: nl, Origin: ru.Origin}
			heap.Push(pq, heapItem{pathLen: nl, asn: c})
		}
	}
	return rt, nil
}

type heapItem struct {
	pathLen int
	asn     bgp.ASN
}

type routeHeap []heapItem

func (h routeHeap) Len() int { return len(h) }
func (h routeHeap) Less(i, j int) bool {
	if h[i].pathLen != h[j].pathLen {
		return h[i].pathLen < h[j].pathLen
	}
	return h[i].asn < h[j].asn
}
func (h routeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *routeHeap) Push(x any)   { *h = append(*h, x.(heapItem)) }
func (h *routeHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// PathFrom reconstructs the AS path from src to its origin according to
// rt, inclusive on both ends. ok is false when src has no route. The
// returned path always starts with src and ends with the origin AS.
func (rt RouteTable) PathFrom(src bgp.ASN) (path []bgp.ASN, ok bool) {
	r, ok := rt[src]
	if !ok {
		return nil, false
	}
	path = append(path, src)
	cur := src
	for r.Type != RouteOrigin {
		cur = r.NextHop
		path = append(path, cur)
		r, ok = rt[cur]
		if !ok {
			return nil, false // inconsistent table; should not happen
		}
		if len(path) > len(rt)+1 {
			return nil, false // cycle guard
		}
	}
	return path, true
}

// ASPathFrom is PathFrom rendered as a bgp.ASPath (src first, origin
// last), matching what src's BGP neighbors upstream would see minus their
// own prepending.
func (rt RouteTable) ASPathFrom(src bgp.ASN) (bgp.ASPath, bool) {
	p, ok := rt.PathFrom(src)
	if !ok {
		return bgp.ASPath{}, false
	}
	return bgp.Sequence(p...), true
}

// ValleyFree reports whether the hop sequence path (src..origin) is
// valley-free in g: once the path goes down (provider→customer) or
// across a peering link, it can never go up or across again. The paper's
// routing model guarantees this for every computed path; the checker
// backs the property tests.
//
// The path is read destination-last, i.e. traffic flows src → origin.
func (g *Graph) ValleyFree(path []bgp.ASN) bool {
	// Walking from src toward the origin, classify each hop from the
	// perspective of the sender: up (to provider), across (to peer),
	// down (to customer). Valley-free: ups, then at most one across,
	// then downs.
	const (
		stageUp = iota
		stageAcross
		stageDown
	)
	stage := stageUp
	for i := 0; i+1 < len(path); i++ {
		rel, ok := g.RelBetween(path[i], path[i+1])
		if !ok {
			return false
		}
		switch rel {
		case RelProvider: // hop goes up
			if stage != stageUp {
				return false
			}
		case RelPeer: // hop goes across
			if stage != stageUp {
				return false
			}
			stage = stageAcross
		case RelCustomer: // hop goes down
			stage = stageDown
		}
	}
	return true
}
