package topology

import (
	"bytes"
	"math/rand"
	"testing"
)

func mustPowerLaw(t testing.TB, cfg PowerLawConfig) *Graph {
	t.Helper()
	g, err := GeneratePowerLaw(cfg)
	if err != nil {
		t.Fatalf("GeneratePowerLaw(%+v): %v", cfg, err)
	}
	return g
}

func TestPowerLawValidate(t *testing.T) {
	base := DefaultPowerLawConfig(500)
	cases := []struct {
		name string
		mod  func(*PowerLawConfig)
	}{
		{"tier1 zero", func(c *PowerLawConfig) { c.Tier1 = 0 }},
		{"n too small", func(c *PowerLawConfig) { c.N = c.Tier1 + 1 }},
		{"transit frac zero", func(c *PowerLawConfig) { c.TransitFrac = 0 }},
		{"transit frac over one", func(c *PowerLawConfig) { c.TransitFrac = 1.5 }},
		{"exponent at one", func(c *PowerLawConfig) { c.Exponent = 1 }},
		{"negative max weight", func(c *PowerLawConfig) { c.MaxWeight = -1 }},
		{"max providers zero", func(c *PowerLawConfig) { c.MaxProviders = 0 }},
		{"negative peer mean", func(c *PowerLawConfig) { c.PeerMean = -0.1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mod(&cfg)
			if _, err := GeneratePowerLaw(cfg); err == nil {
				t.Fatalf("expected error for %s", tc.name)
			}
		})
	}
}

func TestDefaultPowerLawConfigScalesTier1(t *testing.T) {
	if got := DefaultPowerLawConfig(50).Tier1; got != 4 {
		t.Errorf("n=50: Tier1 = %d, want 4", got)
	}
	if got := DefaultPowerLawConfig(500).Tier1; got != 8 {
		t.Errorf("n=500: Tier1 = %d, want 8", got)
	}
	if got := DefaultPowerLawConfig(5000).Tier1; got != 16 {
		t.Errorf("n=5000: Tier1 = %d, want 16", got)
	}
	if got := Config73K().N; got != 73000 {
		t.Errorf("Config73K().N = %d, want 73000", got)
	}
}

func TestPowerLawDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultPowerLawConfig(3000)
	cfg.Seed = 99
	var want []byte
	for _, workers := range []int{1, 3, 8} {
		cfg.Workers = workers
		g := mustPowerLaw(t, cfg)
		if g.Len() != cfg.N {
			t.Fatalf("workers=%d: Len = %d, want %d", workers, g.Len(), cfg.N)
		}
		enc := g.AppendCanonical(nil)
		if want == nil {
			want = enc
			continue
		}
		if !bytes.Equal(enc, want) {
			t.Fatalf("workers=%d: canonical encoding differs from workers=1", workers)
		}
	}

	// A different seed must give a different graph.
	cfg.Seed = 100
	if bytes.Equal(mustPowerLaw(t, cfg).AppendCanonical(nil), want) {
		t.Fatal("seed change did not change the graph")
	}
}

func TestPowerLawStructure(t *testing.T) {
	cfg := DefaultPowerLawConfig(800)
	g := mustPowerLaw(t, cfg)

	wantCorePeerings := cfg.Tier1 * (cfg.Tier1 - 1) / 2
	corePeerings := 0
	for _, asn := range g.ASNs() {
		a := g.AS(asn)
		switch a.Tier {
		case 1:
			if len(a.Providers()) != 0 {
				t.Errorf("core AS %v has providers %v", asn, a.Providers())
			}
			for _, p := range a.Peers() {
				if int(p) <= cfg.Tier1 {
					corePeerings++
				}
			}
		case 2, 3:
			if len(a.Providers()) == 0 {
				t.Errorf("tier-%d AS %v has no provider", a.Tier, asn)
			}
			if a.Tier == 3 && len(a.Customers()) != 0 {
				t.Errorf("stub %v has customers %v", asn, a.Customers())
			}
		default:
			t.Errorf("AS %v has unexpected tier %d", asn, a.Tier)
		}
	}
	if corePeerings/2 != wantCorePeerings {
		t.Errorf("core peerings = %d, want full clique %d", corePeerings/2, wantCorePeerings)
	}
	if l := g.Links(); l < cfg.N {
		t.Errorf("Links() = %d, suspiciously sparse for %d ASes", l, cfg.N)
	}
}

func TestParetoBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		w := pareto(rng, 2.1, 50)
		if w < 1 || w > 50 {
			t.Fatalf("pareto draw %v outside [1, 50]", w)
		}
	}
}

func TestWeightedPickProportional(t *testing.T) {
	// cum encodes weights {1, 10}: index 1 should win ~10x more often.
	cum := []float64{0, 1, 11}
	rng := rand.New(rand.NewSource(2))
	counts := [2]int{}
	for i := 0; i < 20000; i++ {
		j := weightedPick(rng, cum)
		if j < 0 || j > 1 {
			t.Fatalf("weightedPick out of range: %d", j)
		}
		counts[j]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 8 || ratio > 12.5 {
		t.Errorf("weight-10 picked %.1fx weight-1, want ~10x", ratio)
	}
}
