package monitord

import (
	"net/netip"
	"sync"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/iptrie"
)

// Route is one session's live path for a prefix.
type Route struct {
	Session int
	Path    []bgp.ASN
	Updated time.Time
}

// RIBEntry is the live state of one prefix: every session's current path.
// Snapshots returned by lookups are copies and safe to retain.
type RIBEntry struct {
	Prefix netip.Prefix
	Routes []Route // ascending session id
}

// Best returns the entry's best path under the collector's simple rule:
// shortest AS path, ties broken by lowest session id. ok is false when
// every session has withdrawn the prefix.
func (e *RIBEntry) Best() (Route, bool) {
	best := -1
	for i, r := range e.Routes {
		if len(r.Path) == 0 {
			continue
		}
		if best < 0 || len(r.Path) < len(e.Routes[best].Path) {
			best = i
		}
	}
	if best < 0 {
		return Route{}, false
	}
	return e.Routes[best], true
}

// liveRIB is the daemon's sharded routing table: prefix -> per-session
// path state over internal/iptrie. Each shard is guarded by its own
// RWMutex; the dispatcher routes every update for a prefix to the same
// shard, so writes per shard come from a single worker while HTTP
// lookups take read locks.
type liveRIB struct {
	shards []ribShard
}

type ribShard struct {
	mu   sync.RWMutex
	trie iptrie.Trie[map[int]Route]
	size int
}

func newLiveRIB(shards int) *liveRIB {
	return &liveRIB{shards: make([]ribShard, shards)}
}

// shardOf maps a prefix to its shard by FNV-1a over the masked address
// bytes and the prefix length.
func (r *liveRIB) shardOf(p netip.Prefix) int {
	a := p.Masked().Addr().As4()
	h := uint32(2166136261)
	for _, b := range a {
		h = (h ^ uint32(b)) * 16777619
	}
	h = (h ^ uint32(p.Bits())) * 16777619
	return int(h % uint32(len(r.shards)))
}

// apply folds one update into the RIB: an announcement replaces the
// session's path, a withdrawal (nil path) removes it, and a prefix whose
// last session withdraws leaves the table entirely. A non-nil empty path
// is a legal announcement (AS_PATH present with zero segments) and is
// stored, not treated as a withdrawal.
func (r *liveRIB) apply(t time.Time, session int, prefix netip.Prefix, path []bgp.ASN) {
	sh := &r.shards[r.shardOf(prefix)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	routes, ok := sh.trie.Get(prefix)
	if path == nil {
		if !ok {
			return
		}
		delete(routes, session)
		if len(routes) == 0 {
			if removed, _ := sh.trie.Delete(prefix); removed {
				sh.size--
			}
		}
		return
	}
	if !ok {
		routes = make(map[int]Route, 1)
		if added, err := sh.trie.Insert(prefix, routes); err != nil {
			return // non-IPv4 prefix; the decode layer never produces one
		} else if added {
			sh.size++
		}
	}
	routes[session] = Route{Session: session, Path: path, Updated: t}
}

func snapshotEntry(p netip.Prefix, routes map[int]Route) *RIBEntry {
	e := &RIBEntry{Prefix: p, Routes: make([]Route, 0, len(routes))}
	for _, rt := range routes {
		cp := rt
		// append onto a non-nil base so an empty-AS_PATH announcement
		// stays distinguishable from a withdrawal in the snapshot.
		cp.Path = append([]bgp.ASN{}, rt.Path...)
		e.Routes = append(e.Routes, cp)
	}
	for i := 1; i < len(e.Routes); i++ {
		for j := i; j > 0 && e.Routes[j].Session < e.Routes[j-1].Session; j-- {
			e.Routes[j], e.Routes[j-1] = e.Routes[j-1], e.Routes[j]
		}
	}
	return e
}

// Lookup returns the live entry stored at exactly prefix p.
func (r *liveRIB) Lookup(p netip.Prefix) (*RIBEntry, bool) {
	sh := &r.shards[r.shardOf(p)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	routes, ok := sh.trie.Get(p)
	if !ok {
		return nil, false
	}
	return snapshotEntry(p.Masked(), routes), true
}

// LookupAddr returns the most specific live entry covering addr. Shards
// partition by prefix, so the longest match is taken across all of them.
func (r *liveRIB) LookupAddr(addr netip.Addr) (*RIBEntry, bool) {
	var best *RIBEntry
	bestBits := -1
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		if p, routes, ok := sh.trie.LongestMatch(addr); ok && p.Bits() > bestBits {
			best = snapshotEntry(p, routes)
			bestBits = p.Bits()
		}
		sh.mu.RUnlock()
	}
	return best, best != nil
}

// Size returns the number of prefixes with at least one live route.
func (r *liveRIB) Size() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		n += sh.size
		sh.mu.RUnlock()
	}
	return n
}

// Walk visits a snapshot of every live entry, shard by shard.
func (r *liveRIB) Walk(fn func(*RIBEntry) bool) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		var entries []*RIBEntry
		sh.trie.Walk(func(p netip.Prefix, routes map[int]Route) bool {
			entries = append(entries, snapshotEntry(p, routes))
			return true
		})
		sh.mu.RUnlock()
		for _, e := range entries {
			if !fn(e) {
				return
			}
		}
	}
}
