package monitord

import (
	"context"
	"encoding/binary"
	"math/rand"
	"net"
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpd"
)

// benchUpdates pre-generates a realistic ingest mix: mostly background
// churn over a few thousand prefixes, a sliver of watched-prefix
// announcements, and occasional hijacks that exercise the alert path.
func benchUpdates(n int) []item {
	rng := rand.New(rand.NewSource(1))
	prefixes := make([]netip.Prefix, 4096)
	for i := range prefixes {
		var a [4]byte
		binary.BigEndian.PutUint32(a[:], 0x0B000000|uint32(i)<<8) // 11.x.y.0/24
		prefixes[i] = netip.PrefixFrom(netip.AddrFrom4(a), 24)
	}
	paths := make([][]bgp.ASN, 64)
	for i := range paths {
		paths[i] = asns(64501, uint32(65000+rng.Intn(500)), uint32(64900+rng.Intn(50)))
	}
	items := make([]item, n)
	for i := range items {
		switch {
		case i%97 == 0: // watched prefix, benign
			items[i] = item{prefix: watchedPrefix, path: asns(64501, 64500, 64496)}
		case i%997 == 0: // watched prefix, hijacked
			items[i] = item{prefix: watchedPrefix, path: asns(64501, 666)}
		case i%13 == 0: // withdrawal
			items[i] = item{prefix: prefixes[rng.Intn(len(prefixes))]}
		default:
			items[i] = item{prefix: prefixes[rng.Intn(len(prefixes))], path: paths[rng.Intn(len(paths))]}
		}
	}
	return items
}

// BenchmarkMonitordIngest measures pipeline throughput (dispatch → live
// RIB → streaming monitor → alert ring) via the in-process Ingest path,
// reporting updates/sec. This is the ceiling a BGP session can drive.
func BenchmarkMonitordIngest(b *testing.B) {
	d, err := New(Config{
		Watched: map[netip.Prefix]bgp.ASN{watchedPrefix: watchedOrigin},
		Shards:  8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	si := d.RegisterSource("bench", 64501)
	items := benchUpdates(1 << 16)
	t0 := time.Unix(0, 0)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i&(len(items)-1)]
		d.Ingest(si, t0, it.prefix, it.path)
	}
	if !d.WaitQuiesce(time.Minute) {
		b.Fatal("pipeline did not quiesce")
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/sec")
}

// BenchmarkMonitordIngestTCP measures the same pipeline fed through a
// real loopback BGP session — wire encode, TCP, decode, dispatch, RIB,
// monitor — i.e. the full session path of the serve subcommand.
func BenchmarkMonitordIngestTCP(b *testing.B) {
	d, err := New(Config{
		Watched: map[netip.Prefix]bgp.ASN{watchedPrefix: watchedOrigin},
		Speaker: bgpd.Config{
			ASN: 64500, BGPID: netip.MustParseAddr("198.51.100.1"),
		},
		ListenBGP: "127.0.0.1:0",
		Shards:    8,
		ReadBatch: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Shutdown(context.Background())

	conn, err := net.Dial("tcp", d.BGPAddr())
	if err != nil {
		b.Fatal(err)
	}
	sess, err := bgpd.Establish(conn, bgpd.Config{
		ASN: 64501, BGPID: netip.MustParseAddr("203.0.113.1"),
	})
	if err != nil {
		conn.Close()
		b.Fatal(err)
	}
	defer sess.Close()

	items := benchUpdates(1 << 14)
	updates := make([]*bgp.Update, len(items))
	for i, it := range items {
		u := &bgp.Update{}
		if len(it.path) == 0 {
			u.Withdrawn = []netip.Prefix{it.prefix}
		} else {
			u.NLRI = []netip.Prefix{it.prefix}
			u.Attrs = bgp.PathAttributes{
				HasOrigin: true, Origin: bgp.OriginIGP,
				HasASPath: true, ASPath: bgp.Sequence(it.path...),
				NextHop: netip.MustParseAddr("203.0.113.1"),
			}
		}
		updates[i] = u
	}

	// Send in bursts through SendUpdates, as a replaying collector
	// would: the receive side drains each burst through the batched
	// session reader (RecvUpdateBatch) into batched dispatcher sends.
	const sendBatch = 256
	b.ResetTimer()
	for sent := 0; sent < b.N; {
		off := sent & (len(updates) - 1)
		n := sendBatch
		if b.N-sent < n {
			n = b.N - sent
		}
		if off+n > len(updates) {
			n = len(updates) - off
		}
		if err := sess.SendUpdates(updates[off : off+n]); err != nil {
			b.Fatalf("send at %d: %v", sent, err)
		}
		sent += n
	}
	// Wait for the daemon to absorb everything sent.
	deadline := time.Now().Add(time.Minute)
	for d.met.updates.Value() < uint64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("daemon ingested %d/%d", d.met.updates.Value(), b.N)
		}
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/sec")
}
