// Package monitord is the paper's §5 monitoring framework grown into a
// long-running service: a daemon that speaks real BGP to any number of
// concurrent peers (inbound sessions and outbound collector sessions),
// replays MRT archives, funnels every update through a bounded,
// backpressure-aware sharded pipeline into a live RIB, runs the
// defense.Monitor origin/upstream checks in streaming mode, and exposes
// the results over an HTTP API (/alerts, /rib, /healthz, /metrics).
//
// Counter-RAPTOR (Sun et al., 2017) deployed exactly this shape of
// system against live update feeds; monitord is the serving layer that
// turns the repository's batch monitor (defense.RunMonitor) into a
// continuously tracking one, per Juen et al.'s observation that
// detection value depends on continuously tracked path state rather
// than snapshots.
//
// Concurrency model:
//
//   - one reader goroutine per BGP session decodes updates and enqueues
//     one item per prefix onto a dispatcher shard chosen by hashing the
//     prefix, so each prefix's updates are processed in arrival order;
//   - shard channels are bounded: a flooding peer backpressures its own
//     TCP session instead of growing memory;
//   - each shard worker folds items into its slice of the live RIB and
//     runs the (concurrency-safe) monitor, appending alerts to a ring
//     buffer with monotonically increasing sequence numbers;
//   - shutdown cancels the dialers, closes the listener and every
//     session, waits for the readers, then closes the shard channels and
//     drains them — no goroutine outlives Shutdown.
package monitord

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpd"
	"quicksand/internal/bgpsim"
	"quicksand/internal/defense"
	"quicksand/internal/obs"
)

// Config parameterises the daemon.
type Config struct {
	// Watched maps each monitored prefix to its legitimate origin AS
	// (required, non-empty).
	Watched map[netip.Prefix]bgp.ASN

	// Speaker is the daemon's BGP identity for inbound and outbound
	// sessions. Its OnClose hook is reserved for the daemon.
	Speaker bgpd.Config

	// ListenBGP is the TCP address accepting inbound BGP sessions
	// ("" disables inbound BGP).
	ListenBGP string
	// ListenHTTP is the TCP address serving the HTTP API
	// ("" disables HTTP).
	ListenHTTP string

	// Collectors lists remote BGP speakers to dial and keep sessions
	// with, reconnecting with jittered exponential backoff.
	Collectors []string

	// Shards is the dispatcher width (default 8).
	Shards int
	// QueueDepth bounds each shard's ingest queue (default 1024).
	QueueDepth int
	// AlertBuffer is the alert ring capacity (default 4096).
	AlertBuffer int
	// ReadBatch bounds how many UPDATEs a session reader decodes per
	// RecvUpdateBatch call before handing them to the dispatcher
	// (default 64). 1 degenerates to the old per-message path.
	ReadBatch int

	// DisableLatencyMetrics turns off the pipeline's latency
	// instrumentation (monitord_stage_seconds, monitord_detection_seconds,
	// monitord_read_batch_size observations): the families still appear in
	// /metrics at zero, but the hot path takes no extra monotonic clock
	// readings — the knob that keeps the disabled-observability overhead
	// bound where PR 4 pinned it.
	DisableLatencyMetrics bool

	// LearnUpdates treats (approximately) the first N ingested updates
	// as a clean learning window for new-upstream alarms: they train the
	// monitor without raising alerts, after which upstream alarms switch
	// on. Zero disables the learning window.
	LearnUpdates int
	// UpstreamAlarms enables new-upstream alarms immediately, with
	// whatever has been learned so far (mostly useful with
	// LearnUpdates=0 for differential tests against the batch monitor).
	UpstreamAlarms bool

	// EstablishTimeout bounds the OPEN/KEEPALIVE handshake of every
	// session (default 10s).
	EstablishTimeout time.Duration

	// DialBackoffBase and DialBackoffMax bound the reconnect backoff for
	// outbound collector sessions (defaults 500ms and 30s).
	DialBackoffBase time.Duration
	DialBackoffMax  time.Duration
	// DialHealthyAfter is how long an established collector session must
	// survive — or it must deliver at least one update — before the
	// reconnect backoff resets to base (default 30s). A peer that
	// accepts, handshakes, and immediately hangs up keeps backing off
	// instead of being redialed in a tight loop.
	DialHealthyAfter time.Duration
	// Seed derives the backoff jitter (default 1); fixed so tests are
	// reproducible.
	Seed int64

	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)

	// Registry, when set, receives the daemon's monitord_* metric
	// families so /metrics can be aggregated with other subsystems (or
	// served by an external obs endpoint). Nil gives the daemon a
	// private registry. One daemon per registry.
	Registry *obs.Registry
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Shards <= 0 {
		out.Shards = 8
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 1024
	}
	if out.AlertBuffer <= 0 {
		out.AlertBuffer = 4096
	}
	if out.ReadBatch <= 0 {
		out.ReadBatch = 64
	}
	if out.EstablishTimeout <= 0 {
		out.EstablishTimeout = 10 * time.Second
	}
	if out.DialBackoffBase <= 0 {
		out.DialBackoffBase = 500 * time.Millisecond
	}
	if out.DialBackoffMax <= 0 {
		out.DialBackoffMax = 30 * time.Second
	}
	if out.DialHealthyAfter <= 0 {
		out.DialHealthyAfter = 30 * time.Second
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// item is one prefix-level update flowing through the dispatcher — or,
// when batch is non-nil, a whole run of items bound for the same shard
// (one channel send amortised across a session reader's decode batch;
// the single-item form keeps the in-process Ingest path allocation-free).
type item struct {
	si *sessionInfo
	t  time.Time
	// rt is the internal receive stamp — time.Now() taken when the item's
	// batch came off the socket (or when Ingest enqueued it), so it
	// carries a monotonic clock reading. Stage and detection latencies are
	// measured with time.Since against rt; the semantic timestamp t is
	// caller-supplied on the Ingest/MRT paths and has no monotonic
	// reading, so it must never feed a latency histogram. Zero when
	// latency metrics are disabled.
	rt     time.Time
	prefix netip.Prefix
	// path distinguishes nil from empty: nil is a withdrawal, a non-nil
	// empty slice is an announcement whose AS_PATH attribute was present
	// but had zero segments (legal; it must not flatten into a phantom
	// withdrawal).
	path  []bgp.ASN
	batch []item
}

// emptyPath marks an announcement with a present-but-empty AS_PATH; it
// keeps the nil-vs-empty distinction stable through flattening.
var emptyPath = []bgp.ASN{}

// sessionInfo is the registry row for one update source.
type sessionInfo struct {
	id      int
	peerAS  bgp.ASN
	remote  string
	source  string // "bgp", "collector", "mrt", "local"
	sess    *bgpd.Session
	started time.Time
	updates atomic.Uint64
	closed  atomic.Bool
}

// Daemon is a running monitord instance. Create with New, stop with
// Shutdown.
type Daemon struct {
	cfg Config
	mon *defense.Monitor
	rib *liveRIB
	rng *ring
	met *metrics
	// stageOn gates every latency observation (and the clock reads that
	// feed them) so the disabled path costs nothing.
	stageOn bool

	shards  []chan item
	shardWG sync.WaitGroup

	bgpLn   net.Listener
	httpLn  net.Listener
	httpSrv *http.Server
	httpErr chan error

	dialCtx    context.Context
	dialCancel context.CancelFunc
	sessWG     sync.WaitGroup // acceptor + per-session handlers + dialers

	mu       sync.Mutex
	rawConns map[net.Conn]struct{}
	sessions map[int]*sessionInfo
	nextSess int

	enqueued  atomic.Uint64
	processed atomic.Uint64
	learnSeen atomic.Uint64

	shutOnce sync.Once
	shutErr  error
}

// New validates cfg, binds the configured listeners, and starts the
// pipeline, the acceptor, the collector dialers, and the HTTP server.
// The daemon runs until Shutdown.
func New(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Watched) == 0 {
		return nil, errors.New("monitord: Watched must name at least one prefix")
	}
	mon, err := defense.NewMonitor(cfg.Watched)
	if err != nil {
		return nil, err
	}
	if cfg.UpstreamAlarms {
		mon.EnableUpstream()
	}
	// Metrics before the ring: eviction accounting needs the real
	// monitord_alerts_dropped_total counter at ring construction.
	met := newMetrics(cfg.Registry)
	d := &Daemon{
		cfg: cfg, mon: mon,
		rib:      newLiveRIB(cfg.Shards),
		rng:      newRing(cfg.AlertBuffer, met.alertsDropped),
		met:      met,
		stageOn:  !cfg.DisableLatencyMetrics,
		shards:   make([]chan item, cfg.Shards),
		rawConns: make(map[net.Conn]struct{}),
		sessions: make(map[int]*sessionInfo),
	}
	d.dialCtx, d.dialCancel = context.WithCancel(context.Background())

	if cfg.ListenBGP != "" {
		if d.bgpLn, err = net.Listen("tcp", cfg.ListenBGP); err != nil {
			return nil, fmt.Errorf("monitord: BGP listener: %w", err)
		}
	}
	if cfg.ListenHTTP != "" {
		if d.httpLn, err = net.Listen("tcp", cfg.ListenHTTP); err != nil {
			if d.bgpLn != nil {
				d.bgpLn.Close()
			}
			return nil, fmt.Errorf("monitord: HTTP listener: %w", err)
		}
	}

	for i := range d.shards {
		d.shards[i] = make(chan item, cfg.QueueDepth)
		d.shardWG.Add(1)
		go d.worker(d.shards[i])
	}
	d.met.registerCollectors(d)
	if d.bgpLn != nil {
		d.sessWG.Add(1)
		go d.acceptLoop()
		cfg.Logf("monitord: BGP listening on %s", d.bgpLn.Addr())
	}
	for _, addr := range cfg.Collectors {
		d.sessWG.Add(1)
		go d.dialLoop(addr)
	}
	if d.httpLn != nil {
		d.httpSrv = &http.Server{Handler: d.handler()}
		d.httpErr = make(chan error, 1)
		go func() { d.httpErr <- d.httpSrv.Serve(d.httpLn) }()
		cfg.Logf("monitord: HTTP listening on %s", d.httpLn.Addr())
	}
	return d, nil
}

// BGPAddr returns the bound BGP listener address ("" when disabled).
func (d *Daemon) BGPAddr() string {
	if d.bgpLn == nil {
		return ""
	}
	return d.bgpLn.Addr().String()
}

// HTTPAddr returns the bound HTTP listener address ("" when disabled).
func (d *Daemon) HTTPAddr() string {
	if d.httpLn == nil {
		return ""
	}
	return d.httpLn.Addr().String()
}

// RIB exposes the live routing table for in-process consumers.
func (d *Daemon) RIB() interface {
	Lookup(netip.Prefix) (*RIBEntry, bool)
	LookupAddr(netip.Addr) (*RIBEntry, bool)
	Size() int
	Walk(func(*RIBEntry) bool)
} {
	return d.rib
}

// Alerts returns up to max alerts with sequence >= cursor, the cursor
// to pass on the next call, and how many alerts in the requested range
// were evicted unseen; max <= 0 means no limit. A cursor ahead of the
// live sequence (stale client after a daemon restart) is clamped to the
// current head: empty result, next == head, dropped == 0 — callers
// resynchronize by adopting the returned cursor. See ring.since.
func (d *Daemon) Alerts(cursor uint64, max int) (alerts []SeqAlert, next uint64, dropped uint64) {
	return d.rng.since(cursor, max)
}

// acceptLoop accepts inbound BGP connections until the listener closes.
func (d *Daemon) acceptLoop() {
	defer d.sessWG.Done()
	for {
		conn, err := d.bgpLn.Accept()
		if err != nil {
			return
		}
		if !d.trackConn(conn) {
			conn.Close()
			return
		}
		d.sessWG.Add(1)
		go d.handleConn(conn, "bgp")
	}
}

// trackConn registers a not-yet-established conn so Shutdown can
// unblock its handshake. It reports false when the daemon is already
// shutting down.
func (d *Daemon) trackConn(conn net.Conn) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.rawConns == nil {
		return false
	}
	d.rawConns[conn] = struct{}{}
	return true
}

func (d *Daemon) untrackConn(conn net.Conn) {
	d.mu.Lock()
	if d.rawConns != nil {
		delete(d.rawConns, conn)
	}
	d.mu.Unlock()
}

// handleConn runs the OPEN handshake and then the session's read loop.
func (d *Daemon) handleConn(conn net.Conn, source string) {
	defer d.sessWG.Done()
	conn.SetDeadline(time.Now().Add(d.cfg.EstablishTimeout))
	spk := d.cfg.Speaker
	sess, err := bgpd.Establish(conn, spk)
	d.untrackConn(conn)
	if err != nil {
		conn.Close()
		d.cfg.Logf("monitord: %s handshake from %v failed: %v", source, conn.RemoteAddr(), err)
		return
	}
	conn.SetDeadline(time.Time{})
	si := d.registerSession(sess, conn.RemoteAddr().String(), source)
	d.cfg.Logf("monitord: session %d established with AS%d (%s)", si.id, uint32(si.peerAS), si.remote)
	d.readLoop(sess, si)
}

// registerSession adds an established session to the registry.
func (d *Daemon) registerSession(sess *bgpd.Session, remote, source string) *sessionInfo {
	d.mu.Lock()
	si := &sessionInfo{
		id: d.nextSess, sess: sess, remote: remote, source: source,
		started: time.Now(),
	}
	if sess != nil {
		si.peerAS = sess.PeerAS()
	}
	d.nextSess++
	d.sessions[si.id] = si
	d.mu.Unlock()
	d.met.sessionsAccepted.Add(1)
	d.met.sessionsActive.Add(1)
	return si
}

func (d *Daemon) closeSession(si *sessionInfo) {
	if si.closed.CompareAndSwap(false, true) {
		d.met.sessionsActive.Add(-1)
	}
	if si.sess != nil {
		si.sess.Close()
	}
}

// readLoop decodes update batches from an established session until it
// fails (peer NOTIFICATION, hold-timer expiry, or Shutdown closing it)
// and hands them to the dispatcher in per-shard runs: one channel send
// per (shard, batch) instead of per prefix. Every item carries the
// batch-start stamp (taken as the first UPDATE came off the socket), so
// per-update latency skew is bounded by the batch decode time — never
// under-reported — and the read-stage histogram measures batch-start to
// dispatcher handoff, including any backpressure stall.
func (d *Daemon) readLoop(sess *bgpd.Session, si *sessionInfo) {
	defer d.closeSession(si)
	batch := make([]bgp.Update, d.cfg.ReadBatch)
	shardBufs := make([][]item, len(d.shards))
	for {
		n, start, err := sess.RecvUpdateBatchStamped(batch)
		if n > 0 {
			var rt time.Time
			if d.stageOn {
				rt = start
			}
			for i := range batch[:n] {
				u := &batch[i]
				for _, p := range u.Withdrawn {
					d.stageItem(shardBufs, item{si: si, t: start, rt: rt, prefix: p})
				}
				if len(u.NLRI) == 0 {
					continue
				}
				if !u.Attrs.HasASPath {
					// NLRI with no AS_PATH carries no usable route; count
					// the drop instead of discarding silently.
					d.met.droppedNoASPath.Add(uint64(len(u.NLRI)))
					continue
				}
				path := flattenPath(u.Attrs.ASPath)
				for _, p := range u.NLRI {
					d.stageItem(shardBufs, item{si: si, t: start, rt: rt, prefix: p, path: path})
				}
			}
			d.flushShardBufs(shardBufs)
			if d.stageOn {
				d.met.readBatchSize.Observe(float64(n))
				d.met.stageRead.Observe(time.Since(start).Seconds())
			}
		}
		if err != nil {
			if !errors.Is(err, bgpd.ErrClosed) {
				d.cfg.Logf("monitord: session %d down: %v", si.id, err)
			}
			return
		}
	}
}

// flattenPath flattens an AS_PATH into the dispatcher's path form. A
// present-but-empty path (zero segments, or only empty segments)
// flattens to a non-nil empty slice so it stays an announcement; only a
// genuinely absent path is nil.
func flattenPath(p bgp.ASPath) []bgp.ASN {
	out := emptyPath
	for _, s := range p.Segments {
		out = append(out, s.ASes...)
	}
	return out
}

// stageItem validates one item and appends it to its shard's pending
// run (dropping non-IPv4 prefixes, counted).
func (d *Daemon) stageItem(shardBufs [][]item, it item) {
	if !it.prefix.IsValid() || !it.prefix.Addr().Is4() {
		d.met.droppedNonIPv4.Add(1)
		return
	}
	shard := d.rib.shardOf(it.prefix)
	shardBufs[shard] = append(shardBufs[shard], it)
}

// flushShardBufs sends every staged run to its shard worker as a single
// batch item and resets the buffers (ownership of each slice passes to
// the worker).
func (d *Daemon) flushShardBufs(shardBufs [][]item) {
	for shard, items := range shardBufs {
		if len(items) == 0 {
			continue
		}
		shardBufs[shard] = nil
		d.enqueued.Add(uint64(len(items)))
		d.shards[shard] <- item{batch: items}
	}
}

// enqueue dispatches one item to its prefix's shard, blocking when the
// shard queue is full (backpressure).
func (d *Daemon) enqueue(it item) {
	if !it.prefix.IsValid() || !it.prefix.Addr().Is4() {
		d.met.droppedNonIPv4.Add(1)
		return
	}
	if d.stageOn {
		it.rt = time.Now()
	}
	d.enqueued.Add(1)
	d.shards[d.rib.shardOf(it.prefix)] <- it
}

// worker is one dispatcher shard: RIB fold, monitor check, alert fanout.
// A channel element is either one item or a whole same-shard batch.
//
// Latency accounting is amortised per channel element: the dispatch
// stage (receive stamp to dequeue) is observed once per element, and the
// apply/monitor stages are timed on the element's last item only — every
// item of a batch shares the same batch-start stamp, so the last item is
// the conservative upper bound, and a large ReadBatch costs a handful of
// clock reads instead of two per update. Singleton items (the Ingest
// path) observe every stage.
func (d *Daemon) worker(ch chan item) {
	defer d.shardWG.Done()
	for it := range ch {
		if it.batch != nil {
			if d.stageOn && len(it.batch) > 0 && !it.batch[0].rt.IsZero() {
				d.met.stageDispatch.Observe(time.Since(it.batch[0].rt).Seconds())
			}
			last := len(it.batch) - 1
			for i := range it.batch {
				d.process(&it.batch[i], i == last)
			}
			continue
		}
		if d.stageOn && !it.rt.IsZero() {
			d.met.stageDispatch.Observe(time.Since(it.rt).Seconds())
		}
		d.process(&it, true)
	}
}

// process folds one item into the shard's RIB slice and runs the
// streaming monitor. A nil path is a withdrawal; a non-nil empty path is
// an announcement with an empty AS_PATH (stored, not withdrawn, and not
// counted as a withdrawal). observe enables the apply/monitor stage
// timing for this item; detection latency is observed for every alert
// regardless, measured monotonically from the receive stamp.
func (d *Daemon) process(it *item, observe bool) {
	observe = observe && d.stageOn && !it.rt.IsZero()
	var t0 time.Time
	if observe {
		t0 = time.Now()
	}
	d.rib.apply(it.t, it.si.id, it.prefix, it.path)
	if observe {
		d.met.stageApply.Observe(time.Since(t0).Seconds())
	}
	it.si.updates.Add(1)
	d.met.updates.Add(1)
	if it.path == nil {
		d.met.withdrawals.Add(1)
	}
	ev := bgpsim.UpdateEvent{Time: it.t, Session: it.si.id, Prefix: it.prefix, Path: it.path}
	n := d.learnSeen.Add(1)
	if learn := uint64(d.cfg.LearnUpdates); n <= learn {
		d.mon.Learn(&ev)
		if n == learn {
			d.mon.EnableUpstream()
			d.cfg.Logf("monitord: learning window done (%d updates), upstream alarms on", learn)
		}
	} else {
		if observe {
			t0 = time.Now()
		}
		alerts := d.mon.Observe(&ev)
		if observe {
			d.met.stageMonitor.Observe(time.Since(t0).Seconds())
		}
		for _, a := range alerts {
			d.rng.append(a)
			if d.stageOn && !it.rt.IsZero() {
				d.met.detection.Observe(time.Since(it.rt).Seconds())
			}
			if int(a.Kind) >= 0 && int(a.Kind) < len(d.met.alerts) {
				d.met.alerts[a.Kind].Add(1)
			}
		}
	}
	d.processed.Add(1)
}

// RegisterSource allocates a session id for an in-process update source
// (MRT replay, simulation streams, tests) so its updates are tracked
// like any BGP peer's.
func (d *Daemon) RegisterSource(name string, peer bgp.ASN) int {
	return d.registerSourceAs(name, peer, "local")
}

// registerSourceAs is RegisterSource with an explicit source tag, used
// by snapshot restore to label replayed sessions "snapshot".
func (d *Daemon) registerSourceAs(name string, peer bgp.ASN, source string) int {
	si := d.registerSession(nil, name, source)
	si.peerAS = peer
	return si.id
}

// Ingest feeds one update into the pipeline as if received on the given
// source session, preserving the caller's timestamp. It must not be
// called after Shutdown. A nil path is a withdrawal.
func (d *Daemon) Ingest(session int, t time.Time, prefix netip.Prefix, path []bgp.ASN) error {
	d.mu.Lock()
	si, ok := d.sessions[session]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("monitord: unknown session %d", session)
	}
	d.enqueue(item{si: si, t: t, prefix: prefix, path: path})
	return nil
}

// WaitQuiesce blocks until every enqueued item has been processed, or
// the timeout elapses; it reports whether the pipeline went idle. Tests
// and MRT batch loads use it to read consistent state.
func (d *Daemon) WaitQuiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if d.processed.Load() == d.enqueued.Load() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// sessionMetrics snapshots the registry for /metrics.
func (d *Daemon) sessionMetrics() []sessionMetric {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]sessionMetric, 0, len(d.sessions))
	for _, si := range d.sessions {
		state := "established"
		if si.closed.Load() {
			state = "closed"
		}
		out = append(out, sessionMetric{
			ID: si.id, PeerAS: uint32(si.peerAS), Source: si.source,
			State: state, Updates: si.updates.Load(),
		})
	}
	return out
}

// Shutdown gracefully stops the daemon: no new sessions, every live
// session closed, the pipeline drained, and the HTTP server stopped.
// It is idempotent; ctx bounds only the HTTP drain.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.shutOnce.Do(func() {
		d.dialCancel()
		if d.bgpLn != nil {
			d.bgpLn.Close()
		}
		// Unblock pending handshakes and close established sessions.
		d.mu.Lock()
		raw := make([]net.Conn, 0, len(d.rawConns))
		for c := range d.rawConns {
			raw = append(raw, c)
		}
		d.rawConns = nil // refuse late acceptors
		sess := make([]*sessionInfo, 0, len(d.sessions))
		for _, si := range d.sessions {
			sess = append(sess, si)
		}
		d.mu.Unlock()
		for _, c := range raw {
			c.Close()
		}
		for _, si := range sess {
			d.closeSession(si)
		}
		d.sessWG.Wait()
		// All producers are gone: close the shards and drain them.
		for _, ch := range d.shards {
			close(ch)
		}
		d.shardWG.Wait()
		if d.httpSrv != nil {
			if err := d.httpSrv.Shutdown(ctx); err != nil {
				d.shutErr = err
			}
			if err := <-d.httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) && d.shutErr == nil {
				d.shutErr = err
			}
		}
		d.cfg.Logf("monitord: shutdown complete (%d updates ingested, %d alerts)",
			d.met.updates.Value(), d.rng.total())
	})
	return d.shutErr
}
