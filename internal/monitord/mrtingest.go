package monitord

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"

	"quicksand/internal/mrt"
)

// MRTStats reports what one archive ingest fed into the pipeline.
type MRTStats struct {
	Records  int // MRT records decoded (messages + state changes)
	Updates  int // prefix-level updates enqueued
	Sessions int // distinct peers seen (new source sessions registered)
	Skipped  int // unsupported or undecodable records skipped
}

// IngestMRT replays a BGP4MP update archive through the live pipeline,
// as if each peer in the archive were a connected session: one source
// session is registered per distinct peer address, and every update is
// enqueued with its record timestamp. Unsupported records are skipped.
// The label names the archive in the session registry.
//
// The call returns once everything is enqueued; use WaitQuiesce to wait
// for the pipeline to absorb it.
func (d *Daemon) IngestMRT(r io.Reader, label string) (*MRTStats, error) {
	stats := &MRTStats{}
	rd := mrt.NewReader(r)
	peerSessions := make(map[netip.Addr]int)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return stats, nil
		}
		if errors.Is(err, mrt.ErrUnsupported) {
			stats.Skipped++
			continue
		}
		if err != nil {
			return stats, fmt.Errorf("monitord: reading %s: %w", label, err)
		}
		d.met.mrtRecords.Add(1)
		stats.Records++
		switch {
		case rec.Message != nil:
			si, ok := peerSessions[rec.Message.PeerIP]
			if !ok {
				si = d.RegisterSource(fmt.Sprintf("%s peer %v", label, rec.Message.PeerIP), rec.Message.PeerAS)
				peerSessions[rec.Message.PeerIP] = si
				stats.Sessions++
			}
			u, err := rec.Message.Update()
			if err != nil {
				stats.Skipped++
				continue
			}
			for _, p := range u.Withdrawn {
				if err := d.Ingest(si, rec.Header.Timestamp, p, nil); err == nil {
					stats.Updates++
				}
			}
			if len(u.NLRI) > 0 && u.Attrs.HasASPath {
				path := flattenPath(u.Attrs.ASPath)
				for _, p := range u.NLRI {
					if err := d.Ingest(si, rec.Header.Timestamp, p, path); err == nil {
						stats.Updates++
					}
				}
			}
		case rec.StateChange != nil:
			// Session resets carry no routes; they are visible in the
			// archive for completeness but the live RIB only tracks
			// announced state.
		}
	}
}

// IngestMRTFile opens and replays one archive file.
func (d *Daemon) IngestMRTFile(path string) (*MRTStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return d.IngestMRT(f, path)
}

// IngestRIBSnapshot seeds the live RIB from a TABLE_DUMP_V2 snapshot:
// every RIB entry becomes an announcement on the corresponding peer's
// source session at the record timestamp. The monitor observes these
// like any update (a poisoned snapshot should alarm too).
func (d *Daemon) IngestRIBSnapshot(r io.Reader, label string) (*MRTStats, error) {
	stats := &MRTStats{}
	rd := mrt.NewReader(r)
	var peers []mrt.Peer
	peerSessions := make(map[int]int) // peer index -> session id
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return stats, nil
		}
		if errors.Is(err, mrt.ErrUnsupported) {
			stats.Skipped++
			continue
		}
		if err != nil {
			return stats, fmt.Errorf("monitord: reading %s: %w", label, err)
		}
		d.met.mrtRecords.Add(1)
		stats.Records++
		switch {
		case rec.PeerIndex != nil:
			peers = rec.PeerIndex.Peers
		case rec.RIB != nil:
			for _, e := range rec.RIB.Entries {
				if e.PeerIndex < 0 || e.PeerIndex >= len(peers) {
					stats.Skipped++
					continue
				}
				if !e.Attrs.HasASPath {
					continue
				}
				si, ok := peerSessions[e.PeerIndex]
				if !ok {
					p := peers[e.PeerIndex]
					si = d.RegisterSource(fmt.Sprintf("%s peer %v", label, p.IP), p.AS)
					peerSessions[e.PeerIndex] = si
					stats.Sessions++
				}
				path := flattenPath(e.Attrs.ASPath)
				if err := d.Ingest(si, rec.Header.Timestamp, rec.RIB.Prefix, path); err == nil {
					stats.Updates++
				}
			}
		}
	}
}
