package monitord

import (
	"net"
	"net/netip"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpd"
	"quicksand/internal/bgpsim"
)

// TestFlappingCollectorBoundedDials pins the dialLoop backoff fix: a
// collector that establishes and immediately hangs up (no updates) must
// not reset the exponential backoff, so the redial rate stays bounded
// instead of hot-looping at DialBackoffBase.
func TestFlappingCollectorBoundedDials(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	collectorCfg := bgpd.Config{
		ASN: 64501, BGPID: netip.MustParseAddr("203.0.113.1"),
		HoldTime: 3 * time.Second,
	}
	var established atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// Flap: complete the handshake, then drop with no updates.
			if s, err := bgpd.Establish(c, collectorCfg); err == nil {
				established.Add(1)
				s.Close()
			} else {
				c.Close()
			}
		}
	}()

	d := newTestDaemon(t, Config{
		Speaker: bgpd.Config{
			ASN: 64500, BGPID: netip.MustParseAddr("198.51.100.1"),
			HoldTime: 3 * time.Second,
		},
		Collectors:      []string{ln.Addr().String()},
		Shards:          2,
		DialBackoffBase: 20 * time.Millisecond,
		// DialHealthyAfter default (30s) is far beyond the window, so no
		// flapping session ever counts as healthy.
	})
	_ = d

	// Exponential backoff from 20ms (jitter in [0.5, 1.5)) admits at most
	// ~7 establishes in 700ms even at minimum jitter; the broken reset
	// admitted dozens. Leave headroom for scheduler noise.
	time.Sleep(700 * time.Millisecond)
	if got := established.Load(); got < 2 || got > 12 {
		t.Errorf("flapping collector saw %d establishes in 700ms, want 2..12 (bounded backoff)", got)
	}
}

// TestEmptyASPathAnnounce pins the nil-vs-empty path distinction: an
// announcement whose AS_PATH attribute is present but has zero segments
// must be stored as a route, not misclassified as a withdrawal.
func TestEmptyASPathAnnounce(t *testing.T) {
	d := newTestDaemon(t, Config{Shards: 2})
	si := d.RegisterSource("test", 64501)
	t0 := time.Unix(1000, 0)

	if err := d.Ingest(si, t0, watchedPrefix, []bgp.ASN{}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
	e, ok := d.rib.Lookup(watchedPrefix)
	if !ok || len(e.Routes) != 1 {
		t.Fatalf("RIB[%v] = %+v, %v; want one route from the empty-path announce", watchedPrefix, e, ok)
	}
	if e.Routes[0].Path == nil || len(e.Routes[0].Path) != 0 {
		t.Errorf("stored path = %#v, want non-nil empty", e.Routes[0].Path)
	}
	if got := d.met.withdrawals.Value(); got != 0 {
		t.Errorf("withdrawals counter = %d, want 0 (announce, not withdrawal)", got)
	}

	// A real withdrawal (nil path) still removes the route and counts.
	if err := d.Ingest(si, t0.Add(time.Minute), watchedPrefix, nil); err != nil {
		t.Fatalf("Ingest withdraw: %v", err)
	}
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
	if _, ok := d.rib.Lookup(watchedPrefix); ok {
		t.Error("withdrawal left the route live")
	}
	if got := d.met.withdrawals.Value(); got != 1 {
		t.Errorf("withdrawals counter = %d, want 1", got)
	}
}

// TestEmptyASPathAnnounceWire drives the same distinction through the
// wire decode: an UPDATE with a present-but-empty AS_PATH attribute
// arriving over a real session must land in the RIB as an announcement.
func TestEmptyASPathAnnounceWire(t *testing.T) {
	d := newTestDaemon(t, Config{
		Speaker: bgpd.Config{
			ASN: 64500, BGPID: netip.MustParseAddr("198.51.100.1"),
			HoldTime: 3 * time.Second,
		},
		ListenBGP: "127.0.0.1:0",
		Shards:    2,
	})
	sess := dialDaemon(t, d)
	defer sess.Close()

	if err := sess.SendUpdate(&bgp.Update{
		NLRI: []netip.Prefix{watchedPrefix},
		Attrs: bgp.PathAttributes{
			HasOrigin: true, Origin: bgp.OriginIGP,
			HasASPath: true, ASPath: bgp.ASPath{}, // present, zero segments
			NextHop: netip.MustParseAddr("203.0.113.1"),
		},
	}); err != nil {
		t.Fatalf("SendUpdate: %v", err)
	}
	waitCounter(t, &counterWait{get: d.met.updates.Value, want: 1, what: "updates"})
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
	e, ok := d.rib.Lookup(watchedPrefix)
	if !ok || len(e.Routes) != 1 || e.Routes[0].Path == nil || len(e.Routes[0].Path) != 0 {
		t.Fatalf("RIB[%v] = %+v, %v; want one empty-path route", watchedPrefix, e, ok)
	}
	if got := d.met.withdrawals.Value(); got != 0 {
		t.Errorf("withdrawals counter = %d, want 0", got)
	}
}

// TestDroppedNoASPathCounted pins the silent-discard fix: NLRI arriving
// without any AS_PATH attribute is still dropped (there is no path to
// monitor), but now increments monitord_updates_dropped_total.
func TestDroppedNoASPathCounted(t *testing.T) {
	d := newTestDaemon(t, Config{
		Speaker: bgpd.Config{
			ASN: 64500, BGPID: netip.MustParseAddr("198.51.100.1"),
			HoldTime: 3 * time.Second,
		},
		ListenBGP: "127.0.0.1:0",
		Shards:    2,
	})
	sess := dialDaemon(t, d)
	defer sess.Close()

	// No AS_PATH attribute at all — two prefixes, so the counter
	// reflects dropped NLRI, not dropped messages.
	if err := sess.SendUpdate(&bgp.Update{
		NLRI: []netip.Prefix{watchedPrefix, netip.MustParsePrefix("192.0.2.0/24")},
		Attrs: bgp.PathAttributes{
			HasOrigin: true, Origin: bgp.OriginIGP,
			NextHop: netip.MustParseAddr("203.0.113.1"),
		},
	}); err != nil {
		t.Fatalf("SendUpdate: %v", err)
	}
	waitCounter(t, &counterWait{get: d.met.droppedNoASPath.Value, want: 2, what: "dropped no-as-path"})
	if _, ok := d.rib.Lookup(watchedPrefix); ok {
		t.Error("pathless NLRI entered the RIB")
	}
	if got := d.met.updates.Value(); got != 0 {
		t.Errorf("updates counter = %d, want 0 (nothing ingested)", got)
	}
}

// TestBatchSizeEquivalence replays the same interception scenario over
// TCP against a ReadBatch=1 daemon and a ReadBatch=256 daemon and
// demands identical alert streams: batching is a transport optimization
// and must not change what the monitor sees.
func TestBatchSizeEquivalence(t *testing.T) {
	other := netip.MustParsePrefix("192.0.2.0/24")
	moreSpec := netip.MustParsePrefix("10.0.2.0/24")
	t0 := time.Unix(3000, 0)
	st := &bgpsim.Stream{
		Sessions: []bgpsim.Session{
			bgpsim.NewSession("rrc00", 64501, []netip.Prefix{watchedPrefix, other}),
		},
		Initial: map[int]map[netip.Prefix][]bgp.ASN{0: {
			watchedPrefix: asns(64501, 64500, 64496),
			other:         asns(64501, 64510),
		}},
		Updates: []bgpsim.UpdateEvent{
			{Time: t0, Session: 0, Prefix: watchedPrefix, Path: asns(64501, 666)},
			{Time: t0.Add(time.Minute), Session: 0, Prefix: other, Path: asns(64501, 64511, 64510)},
			{Time: t0.Add(2 * time.Minute), Session: 0, Prefix: moreSpec, Path: asns(64501, 666, 64496)},
			{Time: t0.Add(3 * time.Minute), Session: 0, Prefix: other}, // withdrawal
			{Time: t0.Add(4 * time.Minute), Session: 0, Prefix: watchedPrefix, Path: asns(64501, 667)},
		},
	}
	const wantUpdates = 7 // 2 initial + 5 stream

	run := func(readBatch int) []string {
		d := newTestDaemon(t, Config{
			Speaker: bgpd.Config{
				ASN: 64500, BGPID: netip.MustParseAddr("198.51.100.1"),
				HoldTime: 3 * time.Second,
			},
			ListenBGP: "127.0.0.1:0",
			Shards:    4,
			ReadBatch: readBatch,
		})
		sess := dialDaemon(t, d)
		defer sess.Close()
		if _, err := bgpd.Replay(sess, st, 0); err != nil {
			t.Fatalf("replay: %v", err)
		}
		waitCounter(t, &counterWait{get: d.met.updates.Value, want: wantUpdates, what: "updates"})
		if !d.WaitQuiesce(5 * time.Second) {
			t.Fatal("pipeline did not quiesce")
		}
		alerts, _, _ := d.Alerts(0, 0)
		// Arrival wall-clock differs between runs; compare the semantic
		// alert content as a sorted multiset.
		keys := make([]string, 0, len(alerts))
		for _, a := range alerts {
			keys = append(keys, a.Prefix.String()+"|"+a.Kind.String()+"|"+a.Observed.String())
		}
		sort.Strings(keys)
		return keys
	}

	one, many := run(1), run(256)
	if len(one) == 0 {
		t.Fatal("scenario raised no alerts at ReadBatch=1")
	}
	if !equalStrings(one, many) {
		t.Errorf("alert streams diverge:\n ReadBatch=1:   %v\n ReadBatch=256: %v", one, many)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dialDaemon establishes a loopback BGP session with the daemon's
// listener as a second in-process speaker.
func dialDaemon(t *testing.T, d *Daemon) *bgpd.Session {
	t.Helper()
	conn, err := net.Dial("tcp", d.BGPAddr())
	if err != nil {
		t.Fatalf("dial daemon: %v", err)
	}
	sess, err := bgpd.Establish(conn, bgpd.Config{
		ASN: 64501, BGPID: netip.MustParseAddr("203.0.113.1"),
		HoldTime: 3 * time.Second,
	})
	if err != nil {
		conn.Close()
		t.Fatalf("establish: %v", err)
	}
	return sess
}

type counterWait struct {
	get  func() uint64
	want uint64
	what string
}

func waitCounter(t *testing.T, w *counterWait) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for w.get() < w.want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", w.what, w.get(), w.want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
