package monitord

import (
	"net"
	"time"

	"quicksand/internal/bgpd"
)

// dialLoop maintains one outbound collector session: dial, establish,
// read until the session drops, then reconnect with jittered exponential
// backoff — the daemon's "peer with a route collector" mode. It exits
// when the daemon shuts down, leaking nothing: the dialer honors the
// daemon context, the handshake is unblocked by the raw-conn registry,
// and an established session is closed like any inbound one. The
// schedule itself (doubling, healthy-reset, deterministic per-target
// jitter) lives in bgpd.Backoff, shared with the fleet router's
// remote-shard forwarders.
func (d *Daemon) dialLoop(addr string) {
	defer d.sessWG.Done()
	bo := bgpd.NewBackoff(d.cfg.DialBackoffBase, d.cfg.DialBackoffMax,
		d.cfg.DialHealthyAfter, d.cfg.Seed, addr)
	dialer := &net.Dialer{Timeout: d.cfg.EstablishTimeout}
	for {
		if d.dialCtx.Err() != nil {
			return
		}
		conn, err := dialer.DialContext(d.dialCtx, "tcp", addr)
		if err != nil {
			d.met.dialRetries.Add(1)
			d.cfg.Logf("monitord: dial %s: %v (retry in ~%v)", addr, err, bo.Current())
			if !bo.Sleep(d.dialCtx) {
				return
			}
			bo.Fail()
			continue
		}
		if !d.trackConn(conn) {
			conn.Close()
			return
		}
		conn.SetDeadline(time.Now().Add(d.cfg.EstablishTimeout))
		sess, err := bgpd.Establish(conn, d.cfg.Speaker)
		d.untrackConn(conn)
		if err != nil {
			conn.Close()
			d.met.dialRetries.Add(1)
			d.cfg.Logf("monitord: establish with %s: %v (retry in ~%v)", addr, err, bo.Current())
			if !bo.Sleep(d.dialCtx) {
				return
			}
			bo.Fail()
			continue
		}
		conn.SetDeadline(time.Time{})
		si := d.registerSession(sess, addr, "collector")
		d.cfg.Logf("monitord: collector session %d up with AS%d (%s)", si.id, uint32(si.peerAS), addr)
		established := time.Now()
		d.readLoop(sess, si)
		// Session dropped: reset or double per the healthy-session rule
		// (see bgpd.Backoff.SessionEnded), then sleep before the redial.
		bo.SessionEnded(established, si.updates.Load() > 0)
		d.cfg.Logf("monitord: collector session %d with %s down (redial in ~%v)", si.id, addr, bo.Current())
		if !bo.Sleep(d.dialCtx) {
			return
		}
	}
}
