package monitord

import (
	"hash/fnv"
	"math/rand"
	"net"
	"time"

	"quicksand/internal/bgpd"
	"quicksand/internal/par"
)

// dialLoop maintains one outbound collector session: dial, establish,
// read until the session drops, then reconnect with jittered exponential
// backoff — the daemon's "peer with a route collector" mode. It exits
// when the daemon shuts down, leaking nothing: the dialer honors the
// daemon context, the handshake is unblocked by the raw-conn registry,
// and an established session is closed like any inbound one.
func (d *Daemon) dialLoop(addr string) {
	defer d.sessWG.Done()
	// Per-target deterministic jitter: derived from the config seed and
	// the address so two dialers never sync their retry storms.
	h := fnv.New64a()
	h.Write([]byte(addr))
	rng := rand.New(rand.NewSource(par.TrialSeed(d.cfg.Seed, int(h.Sum64()%(1<<31)))))

	backoff := d.cfg.DialBackoffBase
	dialer := &net.Dialer{Timeout: d.cfg.EstablishTimeout}
	for {
		if d.dialCtx.Err() != nil {
			return
		}
		conn, err := dialer.DialContext(d.dialCtx, "tcp", addr)
		if err != nil {
			d.met.dialRetries.Add(1)
			d.cfg.Logf("monitord: dial %s: %v (retry in ~%v)", addr, err, backoff)
			if !d.sleepJittered(rng, backoff) {
				return
			}
			backoff = minDuration(backoff*2, d.cfg.DialBackoffMax)
			continue
		}
		if !d.trackConn(conn) {
			conn.Close()
			return
		}
		conn.SetDeadline(time.Now().Add(d.cfg.EstablishTimeout))
		sess, err := bgpd.Establish(conn, d.cfg.Speaker)
		d.untrackConn(conn)
		if err != nil {
			conn.Close()
			d.met.dialRetries.Add(1)
			d.cfg.Logf("monitord: establish with %s: %v (retry in ~%v)", addr, err, backoff)
			if !d.sleepJittered(rng, backoff) {
				return
			}
			backoff = minDuration(backoff*2, d.cfg.DialBackoffMax)
			continue
		}
		conn.SetDeadline(time.Time{})
		si := d.registerSession(sess, addr, "collector")
		d.cfg.Logf("monitord: collector session %d up with AS%d (%s)", si.id, uint32(si.peerAS), addr)
		established := time.Now()
		d.readLoop(sess, si)
		// Session dropped. Only a session that proved healthy — survived
		// DialHealthyAfter or delivered at least one update — resets the
		// backoff; a peer that establishes and immediately hangs up keeps
		// the exponential schedule, so a flapping collector cannot force
		// a tight redial loop. Either way the jittered backoff is slept
		// before the redial.
		if time.Since(established) >= d.cfg.DialHealthyAfter || si.updates.Load() > 0 {
			backoff = d.cfg.DialBackoffBase
		} else {
			backoff = minDuration(backoff*2, d.cfg.DialBackoffMax)
		}
		d.cfg.Logf("monitord: collector session %d with %s down (redial in ~%v)", si.id, addr, backoff)
		if !d.sleepJittered(rng, backoff) {
			return
		}
	}
}

// sleepJittered sleeps for backoff scaled by a uniform [0.5, 1.5) jitter
// factor, returning false when the daemon shut down first.
func (d *Daemon) sleepJittered(rng *rand.Rand, backoff time.Duration) bool {
	jittered := time.Duration((0.5 + rng.Float64()) * float64(backoff))
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-d.dialCtx.Done():
		return false
	case <-t.C:
		return true
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
