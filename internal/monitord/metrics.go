package monitord

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quicksand/internal/defense"
)

// metrics aggregates the daemon's counters. Everything is atomic so the
// shard workers and session readers never contend; gauges that need
// structure traversal (RIB size, queue depths) are sampled at exposition
// time by the HTTP layer.
type metrics struct {
	start time.Time

	updates     atomic.Uint64 // announcements + withdrawals ingested
	withdrawals atomic.Uint64
	mrtRecords  atomic.Uint64

	alerts [3]atomic.Uint64 // by defense.AlertKind

	sessionsAccepted atomic.Uint64
	sessionsActive   atomic.Int64
	dialRetries      atomic.Uint64

	// rate is a lazily updated updates/sec gauge: each exposition
	// computes the rate over the window since the previous exposition
	// (or since start, on the first one).
	rateMu       sync.Mutex
	rateLastAt   time.Time
	rateLastSeen uint64
	rateValue    float64
}

func newMetrics() *metrics {
	now := time.Now()
	return &metrics{start: now, rateLastAt: now}
}

func (m *metrics) alertCount(k defense.AlertKind) uint64 {
	if int(k) < 0 || int(k) >= len(m.alerts) {
		return 0
	}
	return m.alerts[k].Load()
}

// updatesPerSec returns the ingest rate over the window since the last
// call, falling back to the lifetime mean for sub-10ms windows (repeated
// scrapes would otherwise divide by ~zero).
func (m *metrics) updatesPerSec() float64 {
	m.rateMu.Lock()
	defer m.rateMu.Unlock()
	now := time.Now()
	cur := m.updates.Load()
	window := now.Sub(m.rateLastAt)
	if window >= 10*time.Millisecond {
		m.rateValue = float64(cur-m.rateLastSeen) / window.Seconds()
		m.rateLastAt = now
		m.rateLastSeen = cur
	}
	return m.rateValue
}

// sessionMetric is one session's row in the exposition, snapshotted by
// the daemon under its registry lock.
type sessionMetric struct {
	ID      int
	PeerAS  uint32
	Source  string // "bgp", "collector", "mrt", "local"
	State   string // "established", "closed"
	Updates uint64
}

// writePrometheus renders the Prometheus text exposition format
// (version 0.0.4), stdlib only.
func (m *metrics) writePrometheus(w io.Writer, ribSize int, queueDepths []int, alertsDropped uint64, sessions []sessionMetric) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("monitord_updates_ingested_total", "BGP updates ingested through the pipeline.", m.updates.Load())
	counter("monitord_withdrawals_total", "Withdrawals among the ingested updates.", m.withdrawals.Load())
	gauge("monitord_updates_per_second", "Ingest rate over the last exposition window.", m.updatesPerSec())
	counter("monitord_mrt_records_total", "MRT archive records ingested.", m.mrtRecords.Load())
	gauge("monitord_rib_prefixes", "Prefixes with at least one live route.", float64(ribSize))

	fmt.Fprintf(w, "# HELP monitord_alerts_total Monitor alerts raised, by kind.\n# TYPE monitord_alerts_total counter\n")
	for k := defense.AlertOriginChange; k <= defense.AlertNewUpstream; k++ {
		fmt.Fprintf(w, "monitord_alerts_total{kind=%q} %d\n", k.String(), m.alertCount(k))
	}
	counter("monitord_alerts_dropped_total", "Alerts evicted from the ring before any client read them.", alertsDropped)

	fmt.Fprintf(w, "# HELP monitord_ingest_queue_depth Items waiting per dispatcher shard.\n# TYPE monitord_ingest_queue_depth gauge\n")
	for i, d := range queueDepths {
		fmt.Fprintf(w, "monitord_ingest_queue_depth{shard=\"%d\"} %d\n", i, d)
	}

	counter("monitord_sessions_accepted_total", "BGP sessions ever established (inbound + outbound).", m.sessionsAccepted.Load())
	gauge("monitord_sessions_active", "BGP sessions currently established.", float64(m.sessionsActive.Load()))
	counter("monitord_dial_retries_total", "Outbound collector dial attempts that failed and backed off.", m.dialRetries.Load())
	gauge("monitord_uptime_seconds", "Seconds since the daemon started.", time.Since(m.start).Seconds())

	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID < sessions[j].ID })
	fmt.Fprintf(w, "# HELP monitord_session_updates_total Updates ingested per session.\n# TYPE monitord_session_updates_total counter\n")
	for _, s := range sessions {
		fmt.Fprintf(w, "monitord_session_updates_total{session=\"%d\",peer_as=\"%d\",source=%q,state=%q} %d\n",
			s.ID, s.PeerAS, s.Source, s.State, s.Updates)
	}
}
