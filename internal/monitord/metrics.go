package monitord

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"quicksand/internal/defense"
	"quicksand/internal/obs"
)

// metrics holds the daemon's instrumentation handles on an obs.Registry.
// Hot-path counters are inline atomic handles so the shard workers and
// session readers never contend; values that need structure traversal
// (RIB size, queue depths, session rows) are sampled at exposition time
// by collectors registered in registerCollectors. The metric names and
// label sets are the daemon's stable external interface — dashboards
// scrape them — and must not change when the backing store does.
type metrics struct {
	reg   *obs.Registry
	start time.Time

	updates     *obs.Counter // announcements + withdrawals ingested
	withdrawals *obs.Counter
	mrtRecords  *obs.Counter

	// droppedNoASPath / droppedNonIPv4 count updates discarded before
	// ingest, pre-resolved per reason so the families appear (at 0) in
	// every exposition — silent drops were invisible before.
	droppedNoASPath *obs.Counter
	droppedNonIPv4  *obs.Counter

	alerts [3]*obs.Counter // pre-resolved by defense.AlertKind
	// alertsDropped counts real ring evictions, bumped by the ring itself
	// at the moment an unread alert is overwritten.
	alertsDropped *obs.Counter

	sessionsAccepted *obs.Counter
	sessionsActive   *obs.Gauge
	dialRetries      *obs.Counter

	// Pipeline latency instrumentation (observations gated by
	// Daemon.stageOn): per-stage histograms pre-resolved by stage label,
	// the end-to-end detection histogram, and the read batch-size
	// histogram that bounds per-update stamp skew.
	stageRead     *obs.Histogram
	stageDispatch *obs.Histogram
	stageApply    *obs.Histogram
	stageMonitor  *obs.Histogram
	detection     *obs.Histogram
	readBatchSize *obs.Histogram

	// rate is a lazily updated updates/sec gauge: each exposition
	// computes the rate over the window since the previous exposition
	// (or since start, on the first one).
	rateMu       sync.Mutex
	rateLastAt   time.Time
	rateLastSeen uint64
	rateValue    float64
}

// latencyBuckets cover the µs-to-seconds range log-spaced: fine enough
// for sub-ms pipeline stages, wide enough that a backpressure stall or a
// multi-second detection outlier still lands in a finite bucket.
var latencyBuckets = obs.ExpBucketsRange(1e-6, 10, 22)

// newMetrics registers the daemon's metric families on reg; a nil reg
// gets a private registry so a standalone daemon still serves /metrics.
// One daemon per registry: the families are registered once.
func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	now := time.Now()
	m := &metrics{reg: reg, start: now, rateLastAt: now}
	m.updates = reg.Counter("monitord_updates_ingested_total", "BGP updates ingested through the pipeline.")
	m.withdrawals = reg.Counter("monitord_withdrawals_total", "Withdrawals among the ingested updates.")
	m.mrtRecords = reg.Counter("monitord_mrt_records_total", "MRT archive records ingested.")
	dropped := reg.CounterVec("monitord_updates_dropped_total", "Updates discarded before ingest, by reason.", "reason")
	m.droppedNoASPath = dropped.With("no-as-path")
	m.droppedNonIPv4 = dropped.With("non-ipv4")
	alerts := reg.CounterVec("monitord_alerts_total", "Monitor alerts raised, by kind.", "kind")
	for k := defense.AlertOriginChange; k <= defense.AlertNewUpstream; k++ {
		m.alerts[k] = alerts.With(k.String())
	}
	m.alertsDropped = reg.Counter("monitord_alerts_dropped_total", "Alerts evicted from the ring before any client read them.")
	stages := reg.HistogramVec("monitord_stage_seconds",
		"Pipeline stage latency: read (socket to dispatcher handoff), dispatch (shard queue wait), apply (RIB fold), monitor (§5 checks).",
		latencyBuckets, "stage")
	m.stageRead = stages.With("read")
	m.stageDispatch = stages.With("dispatch")
	m.stageApply = stages.With("apply")
	m.stageMonitor = stages.With("monitor")
	m.detection = reg.Histogram("monitord_detection_seconds",
		"End-to-end hijack detection latency: socket read to alert ring append.", latencyBuckets)
	m.readBatchSize = reg.Histogram("monitord_read_batch_size",
		"UPDATEs decoded per session read batch; batch size bounds the per-update stamp skew in the stage histograms.",
		obs.ExpBuckets(1, 2, 10))
	m.sessionsAccepted = reg.Counter("monitord_sessions_accepted_total", "BGP sessions ever established (inbound + outbound).")
	m.sessionsActive = reg.Gauge("monitord_sessions_active", "BGP sessions currently established.")
	m.dialRetries = reg.Counter("monitord_dial_retries_total", "Outbound collector dial attempts that failed and backed off.")
	reg.GaugeFunc("monitord_updates_per_second", "Ingest rate over the last exposition window.", m.updatesPerSec)
	reg.GaugeFunc("monitord_uptime_seconds", "Seconds since the daemon started.", func() float64 {
		return time.Since(m.start).Seconds()
	})
	return m
}

// registerCollectors wires the exposition-time sampled families that
// read daemon state. Called once from New after the pipeline exists.
func (m *metrics) registerCollectors(d *Daemon) {
	m.reg.GaugeFunc("monitord_rib_prefixes", "Prefixes with at least one live route.", func() float64 {
		return float64(d.rib.Size())
	})
	m.reg.Collect("monitord_ingest_queue_depth", "Items waiting per dispatcher shard.",
		obs.KindGauge, []string{"shard"}, func(emit obs.Emit) {
			for i, ch := range d.shards {
				emit([]string{strconv.Itoa(i)}, float64(len(ch)))
			}
		})
	m.reg.Collect("monitord_session_updates_total", "Updates ingested per session.",
		obs.KindCounter, []string{"session", "peer_as", "source", "state"}, func(emit obs.Emit) {
			sessions := d.sessionMetrics()
			sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID < sessions[j].ID })
			for _, s := range sessions {
				emit([]string{strconv.Itoa(s.ID), strconv.FormatUint(uint64(s.PeerAS), 10), s.Source, s.State},
					float64(s.Updates))
			}
		})
}

func (m *metrics) alertCount(k defense.AlertKind) uint64 {
	if int(k) < 0 || int(k) >= len(m.alerts) {
		return 0
	}
	return m.alerts[k].Value()
}

// updatesPerSec returns the ingest rate over the window since the last
// call, falling back to the lifetime mean for sub-10ms windows (repeated
// scrapes would otherwise divide by ~zero).
func (m *metrics) updatesPerSec() float64 {
	m.rateMu.Lock()
	defer m.rateMu.Unlock()
	now := time.Now()
	cur := m.updates.Value()
	window := now.Sub(m.rateLastAt)
	if window >= 10*time.Millisecond {
		m.rateValue = float64(cur-m.rateLastSeen) / window.Seconds()
		m.rateLastAt = now
		m.rateLastSeen = cur
	}
	return m.rateValue
}

// sessionMetric is one session's row in the exposition, snapshotted by
// the daemon under its registry lock.
type sessionMetric struct {
	ID      int
	PeerAS  uint32
	Source  string // "bgp", "collector", "mrt", "local"
	State   string // "established", "closed"
	Updates uint64
}

// writePrometheus renders the Prometheus text exposition format
// (version 0.0.4) from the backing registry.
func (m *metrics) writePrometheus(w io.Writer) error {
	return m.reg.WritePrometheus(w)
}
