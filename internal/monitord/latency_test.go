package monitord_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpd"
	"quicksand/internal/monitord"
	"quicksand/internal/testkit"
)

// latencyDaemon starts a daemon with BGP+HTTP listeners and the given
// latency/batch knobs, plus an established client session dialed into
// it.
func latencyDaemon(t *testing.T, readBatch, alertBuffer int, disable bool) (*monitord.Daemon, *bgpd.Session) {
	t.Helper()
	d, err := monitord.New(monitord.Config{
		Watched: map[netip.Prefix]bgp.ASN{
			netip.MustParsePrefix("10.0.0.0/16"): 64496,
		},
		Speaker: bgpd.Config{
			ASN: 64500, BGPID: netip.MustParseAddr("198.51.100.1"),
		},
		ListenBGP:             "127.0.0.1:0",
		ListenHTTP:            "127.0.0.1:0",
		Shards:                4,
		ReadBatch:             readBatch,
		AlertBuffer:           alertBuffer,
		DisableLatencyMetrics: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	conn, err := net.Dial("tcp", d.BGPAddr())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bgpd.Establish(conn, bgpd.Config{
		ASN: 64501, BGPID: netip.MustParseAddr("203.0.113.1"),
	})
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return d, sess
}

// announce builds one announcement update for prefix via the given path.
func announce(pfx string, path ...bgp.ASN) *bgp.Update {
	return &bgp.Update{
		NLRI: []netip.Prefix{netip.MustParsePrefix(pfx)},
		Attrs: bgp.PathAttributes{
			HasOrigin: true, Origin: bgp.OriginIGP,
			HasASPath: true, ASPath: bgp.Sequence(path...),
			NextHop: netip.MustParseAddr("203.0.113.1"),
		},
	}
}

// scrapeFams fetches, lints, and parses the daemon's /metrics.
func scrapeFams(t *testing.T, d *monitord.Daemon) []testkit.PromFamily {
	t.Helper()
	resp, err := http.Get("http://" + d.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if errs := testkit.LintProm(string(body)); errs != nil {
		t.Fatalf("/metrics fails lint: %v", errs)
	}
	fams, err := testkit.ParseProm(string(body))
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

// sampleValue returns the value of the named sample whose labels include
// match, or -1 when absent.
func sampleValue(fams []testkit.PromFamily, sample string, match map[string]string) float64 {
	for _, f := range fams {
		for _, s := range f.Samples {
			if s.Name != sample {
				continue
			}
			ok := true
			for k, v := range match {
				found := false
				for _, l := range s.Labels {
					if l.Name == k && l.Value == v {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if ok {
				return s.Value
			}
		}
	}
	return -1
}

// waitAlerts polls until the daemon has raised at least n alerts
// (counting evicted ones).
func waitAlerts(t *testing.T, d *monitord.Daemon, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		alerts, _, dropped := d.Alerts(0, 0)
		if len(alerts)+int(dropped) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d alerts (+%d dropped) after 5s, want %d", len(alerts), dropped, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitProcessed polls /metrics until the daemon has ingested n updates,
// then waits for the pipeline to quiesce.
func waitProcessed(t *testing.T, d *monitord.Daemon, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		fams := scrapeFams(t, d)
		if sampleValue(fams, "monitord_updates_ingested_total", nil) >= float64(n) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fewer than %d updates ingested after 5s", n)
		}
		time.Sleep(time.Millisecond)
	}
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
}

// TestStageLatencyMetricsOverTCP drives a hijack through a real TCP
// session and asserts every pipeline stage histogram populates, the
// end-to-end detection histogram records the alert, and the whole
// exposition stays lint-clean.
func TestStageLatencyMetricsOverTCP(t *testing.T) {
	d, sess := latencyDaemon(t, 64, 0, false)
	updates := []*bgp.Update{
		announce("10.0.0.0/16", 64501, 64500, 64496), // benign watched route
		announce("192.0.2.0/24", 64501, 64510),       // background
		announce("10.0.0.0/16", 64501, 666),          // origin hijack -> alert
	}
	if err := sess.SendUpdates(updates); err != nil {
		t.Fatal(err)
	}
	waitAlerts(t, d, 1)
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
	fams := scrapeFams(t, d)
	for _, stage := range []string{"read", "dispatch", "apply", "monitor"} {
		if got := sampleValue(fams, "monitord_stage_seconds_count", map[string]string{"stage": stage}); got < 1 {
			t.Errorf("stage %q count = %v, want >= 1", stage, got)
		}
	}
	if got := sampleValue(fams, "monitord_detection_seconds_count", nil); got < 1 {
		t.Errorf("detection count = %v, want >= 1", got)
	}
	if got := sampleValue(fams, "monitord_detection_seconds_sum", nil); got <= 0 {
		t.Errorf("detection sum = %v, want > 0 (monotonic time.Since)", got)
	}
	if got := sampleValue(fams, "monitord_read_batch_size_count", nil); got < 1 {
		t.Errorf("read batch size count = %v, want >= 1", got)
	}
}

// TestLatencyMetricsDisabled pins the opt-out: the same flow with
// DisableLatencyMetrics leaves every latency family rendered but empty —
// the disabled hot path takes no clock readings at all.
func TestLatencyMetricsDisabled(t *testing.T) {
	d, sess := latencyDaemon(t, 64, 0, true)
	if err := sess.SendUpdates([]*bgp.Update{
		announce("10.0.0.0/16", 64501, 64500, 64496),
		announce("10.0.0.0/16", 64501, 666),
	}); err != nil {
		t.Fatal(err)
	}
	waitAlerts(t, d, 1)
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
	fams := scrapeFams(t, d)
	for _, sample := range []string{
		"monitord_detection_seconds_count", "monitord_read_batch_size_count",
	} {
		if got := sampleValue(fams, sample, nil); got != 0 {
			t.Errorf("%s = %v with latency metrics disabled, want 0", sample, got)
		}
	}
	for _, stage := range []string{"read", "dispatch", "apply", "monitor"} {
		if got := sampleValue(fams, "monitord_stage_seconds_count", map[string]string{"stage": stage}); got != 0 {
			t.Errorf("stage %q count = %v with latency metrics disabled, want 0", stage, got)
		}
	}
}

// TestReadBatchSizeSkewBound is the ReadBatch 1 vs 256 regression: with
// ReadBatch 1 every batch must be exactly one update (the batch-size
// histogram's le="1" bucket equals its count, so stage stamps are exact
// per update), while with ReadBatch 256 the same burst coalesces into
// multi-update batches (batch count strictly below total updates), which
// is precisely the skew the histogram exists to bound.
func TestReadBatchSizeSkewBound(t *testing.T) {
	const burst = 256
	updates := make([]*bgp.Update, burst)
	for i := range updates {
		updates[i] = announce(fmt.Sprintf("192.0.%d.0/24", i%250), 64501, 64510)
	}

	t.Run("batch1", func(t *testing.T) {
		d, sess := latencyDaemon(t, 1, 0, false)
		if err := sess.SendUpdates(updates); err != nil {
			t.Fatal(err)
		}
		waitProcessed(t, d, burst)
		fams := scrapeFams(t, d)
		count := sampleValue(fams, "monitord_read_batch_size_count", nil)
		le1 := sampleValue(fams, "monitord_read_batch_size_bucket", map[string]string{"le": "1"})
		if count != burst {
			t.Fatalf("batch count = %v, want %d (one batch per update)", count, burst)
		}
		if le1 != count {
			t.Errorf("le=1 bucket %v != count %v: ReadBatch=1 produced a multi-update batch", le1, count)
		}
		if sum := sampleValue(fams, "monitord_read_batch_size_sum", nil); sum != count {
			t.Errorf("sum %v != count %v at ReadBatch=1", sum, count)
		}
	})

	t.Run("batch256", func(t *testing.T) {
		d, sess := latencyDaemon(t, 256, 0, false)
		// One burst per iteration until the receiver demonstrably
		// coalesced: a single 256-update burst lands in the socket buffer
		// faster than 256 wakeups can drain it, so this converges on the
		// first send in practice; the loop only absorbs scheduler noise.
		total := 0
		for i := 0; i < 50; i++ {
			if err := sess.SendUpdates(updates); err != nil {
				t.Fatal(err)
			}
			total += burst
			waitProcessed(t, d, total)
			fams := scrapeFams(t, d)
			count := sampleValue(fams, "monitord_read_batch_size_count", nil)
			sum := sampleValue(fams, "monitord_read_batch_size_sum", nil)
			if sum != float64(total) {
				t.Fatalf("batch size sum = %v, want %d (every update in exactly one batch)", sum, total)
			}
			if count < sum {
				return // some batch held >1 update: coalescing observed
			}
		}
		t.Fatal("no multi-update batch observed in 50 bursts at ReadBatch=256")
	})
}

// TestAlertRingOverflowCounter overflows a tiny alert ring and checks
// the real eviction counter: the exposition must report exactly
// total-capacity drops, matching what ring.since reports to a client
// reading from the beginning.
func TestAlertRingOverflowCounter(t *testing.T) {
	const capacity, hijacks = 8, 20
	d, sess := latencyDaemon(t, 64, capacity, false)
	us := make([]*bgp.Update, hijacks)
	for i := range us {
		// Alternate bogus origins; every wrong-origin announcement of the
		// watched prefix raises its own origin-change alert.
		us[i] = announce("10.0.0.0/16", 64501, bgp.ASN(666+i%2))
	}
	if err := sess.SendUpdates(us); err != nil {
		t.Fatal(err)
	}
	waitAlerts(t, d, hijacks)
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}

	const wantDropped = hijacks - capacity
	alerts, _, dropped := d.Alerts(0, 0)
	if dropped != wantDropped {
		t.Errorf("since(0) dropped = %d, want %d", dropped, wantDropped)
	}
	if len(alerts) != capacity {
		t.Errorf("live alerts = %d, want %d", len(alerts), capacity)
	}
	fams := scrapeFams(t, d)
	if got := sampleValue(fams, "monitord_alerts_dropped_total", nil); got != wantDropped {
		t.Errorf("exposition monitord_alerts_dropped_total = %v, want %d", got, wantDropped)
	}
}
