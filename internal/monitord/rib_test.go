package monitord

import (
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
)

func asns(vs ...uint32) []bgp.ASN {
	out := make([]bgp.ASN, len(vs))
	for i, v := range vs {
		out[i] = bgp.ASN(v)
	}
	return out
}

func TestLiveRIBApplyLookupWithdraw(t *testing.T) {
	rib := newLiveRIB(4)
	p := netip.MustParsePrefix("10.0.0.0/16")
	t0 := time.Unix(1000, 0)

	rib.apply(t0, 1, p, asns(100, 200, 300))
	rib.apply(t0, 0, p, asns(100, 300))
	if rib.Size() != 1 {
		t.Fatalf("Size = %d, want 1", rib.Size())
	}

	e, ok := rib.Lookup(p)
	if !ok || len(e.Routes) != 2 {
		t.Fatalf("Lookup = %+v, %v; want 2 routes", e, ok)
	}
	if e.Routes[0].Session != 0 || e.Routes[1].Session != 1 {
		t.Errorf("routes not sorted by session: %+v", e.Routes)
	}
	best, ok := e.Best()
	if !ok || best.Session != 0 {
		t.Errorf("Best = %+v, %v; want session 0 (shorter path)", best, ok)
	}

	// Re-announcement replaces the session's path.
	rib.apply(t0.Add(time.Second), 0, p, asns(100, 200, 250, 300))
	e, _ = rib.Lookup(p)
	best, _ = e.Best()
	if best.Session != 1 {
		t.Errorf("after longer re-announce, Best.Session = %d, want 1", best.Session)
	}

	// Snapshots are copies: mutating one must not touch the RIB.
	e.Routes[0].Path[0] = 9999
	e2, _ := rib.Lookup(p)
	if e2.Routes[0].Path[0] == 9999 {
		t.Error("Lookup snapshot aliases live RIB storage")
	}

	// Withdrawals remove per-session; the last one drops the prefix.
	rib.apply(t0, 0, p, nil)
	if e, _ := rib.Lookup(p); len(e.Routes) != 1 {
		t.Fatalf("after withdraw session 0: %d routes, want 1", len(e.Routes))
	}
	rib.apply(t0, 1, p, nil)
	if _, ok := rib.Lookup(p); ok || rib.Size() != 0 {
		t.Errorf("after last withdraw, prefix still present (size %d)", rib.Size())
	}
	// Withdrawing an absent prefix is a no-op.
	rib.apply(t0, 0, netip.MustParsePrefix("172.16.0.0/12"), nil)
	if rib.Size() != 0 {
		t.Errorf("withdraw of absent prefix changed size to %d", rib.Size())
	}
}

func TestLiveRIBLongestMatchAcrossShards(t *testing.T) {
	// One shard per entry would hide cross-shard LPM bugs; use enough
	// shards that /8 and /16 land apart for most hash functions.
	rib := newLiveRIB(8)
	t0 := time.Unix(0, 0)
	rib.apply(t0, 0, netip.MustParsePrefix("10.0.0.0/8"), asns(1, 2))
	rib.apply(t0, 0, netip.MustParsePrefix("10.1.0.0/16"), asns(1, 3))

	e, ok := rib.LookupAddr(netip.MustParseAddr("10.1.2.3"))
	if !ok || e.Prefix != netip.MustParsePrefix("10.1.0.0/16") {
		t.Errorf("LookupAddr(10.1.2.3) = %+v, %v; want the /16", e, ok)
	}
	e, ok = rib.LookupAddr(netip.MustParseAddr("10.2.0.1"))
	if !ok || e.Prefix != netip.MustParsePrefix("10.0.0.0/8") {
		t.Errorf("LookupAddr(10.2.0.1) = %+v, %v; want the /8", e, ok)
	}
	if _, ok := rib.LookupAddr(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("LookupAddr outside every prefix reported a match")
	}

	n := 0
	rib.Walk(func(e *RIBEntry) bool { n++; return true })
	if n != 2 {
		t.Errorf("Walk visited %d entries, want 2", n)
	}
}

func TestShardOfStableAndInRange(t *testing.T) {
	rib := newLiveRIB(8)
	ps := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("10.0.0.0/16"),
		netip.MustParsePrefix("203.0.113.0/24"),
	}
	for _, p := range ps {
		s := rib.shardOf(p)
		if s < 0 || s >= 8 {
			t.Fatalf("shardOf(%v) = %d out of range", p, s)
		}
		if s2 := rib.shardOf(p); s2 != s {
			t.Errorf("shardOf(%v) not stable: %d vs %d", p, s, s2)
		}
	}
	// Same address, different lengths must be allowed to differ (they are
	// distinct prefixes), but must at least be deterministic — and the
	// /8 vs /16 pair above exercises the Bits() mixing.
}

// TestRIBConcurrentLookupApply pins that Lookup/LookupAddr hand back
// snapshots, not views into live RIB state: readers mutate the returned
// entries as hard as they can while writers churn the same prefixes, and
// the race detector plus a final content check must both stay clean.
// This is the aliasing audit for handleRIB serving entry.Routes — if
// snapshotEntry ever stops deep-copying paths, -race fails here.
func TestRIBConcurrentLookupApply(t *testing.T) {
	rib := newLiveRIB(4)
	p := netip.MustParsePrefix("10.0.0.0/16")
	t0 := time.Unix(1000, 0)
	rib.apply(t0, 0, p, asns(100, 200, 300))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			// Fresh path slice per apply, like flattenPath in the daemon.
			rib.apply(t0.Add(time.Duration(i)), 0, p, asns(100, 200, uint32(300+i%7)))
			if i%3 == 0 {
				rib.apply(t0, 1, p, nil) // withdraw a route that may not exist
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		if e, ok := rib.Lookup(p); ok {
			for j := range e.Routes {
				// Scribble over the snapshot: must never reach the RIB.
				for k := range e.Routes[j].Path {
					e.Routes[j].Path[k] = 666
				}
				e.Routes[j].Session = -1
			}
			e.Routes = nil
		}
		if e, ok := rib.LookupAddr(p.Addr()); ok && len(e.Routes) > 0 {
			e.Routes[0].Path = append(e.Routes[0].Path, 666)
		}
	}
	<-done

	e, ok := rib.Lookup(p)
	if !ok || len(e.Routes) == 0 {
		t.Fatalf("prefix lost after churn: %+v, %v", e, ok)
	}
	for _, rt := range e.Routes {
		if len(rt.Path) != 3 || rt.Path[0] != 100 || rt.Path[1] != 200 {
			t.Fatalf("reader scribbles reached the RIB: %+v", rt)
		}
		if rt.Session < 0 {
			t.Fatalf("session mutated through snapshot: %+v", rt)
		}
	}
}
