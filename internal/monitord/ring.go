package monitord

import (
	"sync"

	"quicksand/internal/defense"
	"quicksand/internal/obs"
)

// SeqAlert is a monitor alert stamped with its position in the daemon's
// alert sequence. Sequence numbers start at 0 and never repeat, so a
// client that remembers the cursor returned by /alerts can poll without
// ever seeing an alert twice — and can detect (via Dropped) when it fell
// so far behind that the ring evicted alerts it never saw.
type SeqAlert struct {
	Seq uint64
	defense.Alert
}

// ring is a fixed-capacity circular buffer of alerts. Appends never
// block and never fail: when full, the oldest alert is evicted and
// accounted as dropped.
type ring struct {
	mu      sync.Mutex
	buf     []SeqAlert
	next    uint64       // sequence number of the next append
	n       int          // live entries: sequences [next-n, next)
	evicted *obs.Counter // bumped when a full ring overwrites its oldest alert
}

func newRing(capacity int, evicted *obs.Counter) *ring {
	return &ring{buf: make([]SeqAlert, capacity), evicted: evicted}
}

// append stores a and returns its sequence number, counting the
// eviction when a full ring overwrites its oldest entry.
func (r *ring) append(a defense.Alert) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	seq := r.next
	r.buf[seq%uint64(len(r.buf))] = SeqAlert{Seq: seq, Alert: a}
	r.next++
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.evicted.Inc()
	}
	return seq
}

// since returns up to max alerts with sequence >= cursor, the cursor to
// pass next time, and how many alerts in the requested range were
// evicted before they could be read. max <= 0 means no limit.
//
// A cursor *ahead* of the ring's next sequence — a stale client polling
// a daemon that restarted (sequences restart at 0), or a fleet router
// polling a shard that came back empty — is clamped to next: the call
// returns no alerts, next as the new cursor, and dropped == 0. The
// client silently resynchronizes at the live head instead of erroring
// or, worse, waiting forever for sequences that will only be reached
// again after ~cursor more alerts. This is a contract (the fleet
// router's merged vector cursor depends on it), pinned by
// TestRingCursorAheadResync.
func (r *ring) since(cursor uint64, max int) (alerts []SeqAlert, next uint64, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := r.next - uint64(r.n)
	if cursor > r.next {
		cursor = r.next
	}
	start := cursor
	if start < oldest {
		dropped = oldest - start
		start = oldest
	}
	for seq := start; seq < r.next; seq++ {
		if max > 0 && len(alerts) >= max {
			break
		}
		alerts = append(alerts, r.buf[seq%uint64(len(r.buf))])
	}
	return alerts, start + uint64(len(alerts)), dropped
}

// total returns how many alerts have ever been appended.
func (r *ring) total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}
