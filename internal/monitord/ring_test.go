package monitord

import (
	"net/netip"
	"testing"

	"quicksand/internal/bgp"
	"quicksand/internal/defense"
	"quicksand/internal/obs"
)

func mkAlert(i int) defense.Alert {
	return defense.Alert{
		Session:  i,
		Prefix:   netip.MustParsePrefix("10.0.0.0/16"),
		Kind:     defense.AlertOriginChange,
		Observed: bgp.ASN(666),
	}
}

func TestRingSequencesAndEviction(t *testing.T) {
	evicted := obs.NewRegistry().Counter("monitord_test_evicted_total", "evictions")
	r := newRing(4, evicted)
	for i := 0; i < 6; i++ {
		if seq := r.append(mkAlert(i)); seq != uint64(i) {
			t.Fatalf("append %d: seq = %d", i, seq)
		}
	}
	if got := r.total(); got != 6 {
		t.Fatalf("total = %d, want 6", got)
	}
	if got := evicted.Value(); got != 2 {
		t.Fatalf("eviction counter = %d, want 2 (capacity 4, 6 appended)", got)
	}

	alerts, next, dropped := r.since(0, 0)
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2 (capacity 4, 6 appended)", dropped)
	}
	if len(alerts) != 4 {
		t.Fatalf("got %d alerts, want 4", len(alerts))
	}
	for i, a := range alerts {
		if a.Seq != uint64(2+i) {
			t.Errorf("alerts[%d].Seq = %d, want %d", i, a.Seq, 2+i)
		}
		if a.Session != 2+i {
			t.Errorf("alerts[%d].Session = %d, want %d (evicted entry leaked)", i, a.Session, 2+i)
		}
	}
	if next != 6 {
		t.Errorf("next = %d, want 6", next)
	}
}

func TestRingSinceCursorSemantics(t *testing.T) {
	r := newRing(8, nil) // nil eviction counter: accounting is optional
	for i := 0; i < 5; i++ {
		r.append(mkAlert(i))
	}

	// Resuming from a cursor returns only newer alerts.
	alerts, next, dropped := r.since(3, 0)
	if dropped != 0 || len(alerts) != 2 || alerts[0].Seq != 3 || next != 5 {
		t.Errorf("since(3) = %d alerts (first seq %v), next %d, dropped %d; want 2, 3, 5, 0",
			len(alerts), alerts, next, dropped)
	}

	// max caps the page; next points at the first unreturned alert.
	alerts, next, _ = r.since(0, 2)
	if len(alerts) != 2 || next != 2 {
		t.Errorf("since(0, max=2) = %d alerts, next %d; want 2, 2", len(alerts), next)
	}

	// A cursor from the future clamps to the present.
	alerts, next, dropped = r.since(100, 0)
	if len(alerts) != 0 || next != 5 || dropped != 0 {
		t.Errorf("since(100) = %d alerts, next %d, dropped %d; want 0, 5, 0", len(alerts), next, dropped)
	}

	// Polling with the returned cursor never re-reads.
	r.append(mkAlert(5))
	alerts, _, _ = r.since(next, 0)
	if len(alerts) != 1 || alerts[0].Seq != 5 {
		t.Errorf("poll after append = %v, want exactly seq 5", alerts)
	}
}

// TestRingCursorAheadResync pins the ahead-of-head cursor contract that
// Daemon.Alerts documents: a stale client holding a cursor from before a
// daemon restart (sequences restart at 0) clamps to the live head with
// no alerts and no drops, then resumes normally from the returned
// cursor. The fleet router's merged vector cursor relies on exactly this
// to survive a shard restart without wedging or double-reading.
func TestRingCursorAheadResync(t *testing.T) {
	// A client reads up to seq 42 on the old incarnation...
	old := newRing(8, nil)
	for i := 0; i < 42; i++ {
		old.append(mkAlert(i))
	}
	_, cursor, _ := old.since(0, 0)
	if cursor != 42 {
		t.Fatalf("old-incarnation cursor = %d, want 42", cursor)
	}

	// ...then the daemon restarts: a fresh, empty ring.
	fresh := newRing(8, nil)
	alerts, next, dropped := fresh.since(cursor, 0)
	if len(alerts) != 0 || next != 0 || dropped != 0 {
		t.Fatalf("ahead cursor on empty ring: %d alerts, next %d, dropped %d; want 0, 0, 0",
			len(alerts), next, dropped)
	}

	// The new incarnation has produced a few alerts of its own: an ahead
	// cursor must clamp to the head, not replay them.
	for i := 0; i < 3; i++ {
		fresh.append(mkAlert(i))
	}
	alerts, next, dropped = fresh.since(cursor, 0)
	if len(alerts) != 0 || next != 3 || dropped != 0 {
		t.Fatalf("ahead cursor on live ring: %d alerts, next %d, dropped %d; want 0, 3, 0",
			len(alerts), next, dropped)
	}

	// Adopting the returned cursor resynchronizes the stream.
	fresh.append(mkAlert(3))
	alerts, next, dropped = fresh.since(next, 0)
	if len(alerts) != 1 || alerts[0].Seq != 3 || next != 4 || dropped != 0 {
		t.Fatalf("resumed poll = %v (next %d, dropped %d), want exactly seq 3", alerts, next, dropped)
	}
}
