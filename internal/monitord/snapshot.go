package monitord

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"time"

	"quicksand/internal/bgp"
)

// RIB snapshots let a restarted daemon resume from its previous routing
// state instead of re-ingesting MRT archives — the persistence half of
// running monitord at fleet scale. The format is a versioned binary
// dump of the live RIB plus the session registry rows its routes
// reference:
//
//	magic "QSRIB", version u8 (currently 1)
//	u32 session count, then per session (ascending id):
//	    u32 id, u32 peerAS, u16+bytes remote, u16+bytes source
//	u32 prefix count, then per prefix:
//	    4-byte IPv4 address, u8 prefix bits, u16 route count,
//	    then per route: u32 session id, i64 updated (UnixNano),
//	    u16 path length, u32 ASN per hop
//
// A zero-length path round-trips as an announcement with an empty
// AS_PATH, never as a withdrawal (withdrawn routes are simply absent).
// Restoring replays every route through the normal ingest pipeline, so
// the streaming monitor observes the restored table: a snapshot taken
// during an active hijack re-raises its alerts on restart instead of
// silently trusting the poisoned state.

const (
	snapshotMagic   = "QSRIB"
	snapshotVersion = 1
)

// ErrSnapshotFormat reports a snapshot that is not a QSRIB dump or has
// an unsupported version.
var ErrSnapshotFormat = errors.New("monitord: bad snapshot format")

// SnapshotStats reports what a snapshot save or restore moved.
type SnapshotStats struct {
	Sessions int // session registry rows written / restored
	Prefixes int // prefixes with at least one live route
	Routes   int // (session, prefix) routes written / replayed
}

// sessionRow is one registry row as persisted in a snapshot.
type sessionRow struct {
	id     int
	peerAS bgp.ASN
	remote string
	source string
}

// sessionRows snapshots the registry sorted by id, so the dump (and the
// restored id mapping) is deterministic.
func (d *Daemon) sessionRows() []sessionRow {
	d.mu.Lock()
	rows := make([]sessionRow, 0, len(d.sessions))
	for _, si := range d.sessions {
		rows = append(rows, sessionRow{id: si.id, peerAS: si.peerAS, remote: si.remote, source: si.source})
	}
	d.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	return rows
}

// SaveSnapshot writes the live RIB and the session registry to w in the
// versioned binary snapshot format. It is safe to call on a running
// daemon (it reads shard-consistent copies) and after Shutdown (the
// drained RIB stays readable), which is when serve persists it.
func (d *Daemon) SaveSnapshot(w io.Writer) (*SnapshotStats, error) {
	stats := &SnapshotStats{}
	bw := bufio.NewWriter(w)
	bw.WriteString(snapshotMagic)
	bw.WriteByte(snapshotVersion)

	rows := d.sessionRows()
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		bw.Write(b[:])
	}
	writeU16 := func(v uint16) {
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], v)
		bw.Write(b[:])
	}
	writeStr := func(s string) error {
		if len(s) > 0xFFFF {
			return fmt.Errorf("monitord: snapshot string %q too long", s[:32])
		}
		writeU16(uint16(len(s)))
		bw.WriteString(s)
		return nil
	}
	writeU32(uint32(len(rows)))
	for _, r := range rows {
		writeU32(uint32(r.id))
		writeU32(uint32(r.peerAS))
		if err := writeStr(r.remote); err != nil {
			return stats, err
		}
		if err := writeStr(r.source); err != nil {
			return stats, err
		}
	}
	stats.Sessions = len(rows)

	// Collect entries first: the count prefixes the records.
	var entries []*RIBEntry
	d.rib.Walk(func(e *RIBEntry) bool {
		entries = append(entries, e)
		return true
	})
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].Prefix, entries[j].Prefix
		if a.Addr() != b.Addr() {
			return a.Addr().Less(b.Addr())
		}
		return a.Bits() < b.Bits()
	})
	writeU32(uint32(len(entries)))
	for _, e := range entries {
		addr := e.Prefix.Masked().Addr().As4()
		bw.Write(addr[:])
		bw.WriteByte(byte(e.Prefix.Bits()))
		if len(e.Routes) > 0xFFFF {
			return stats, fmt.Errorf("monitord: %v has %d routes, snapshot limit 65535", e.Prefix, len(e.Routes))
		}
		writeU16(uint16(len(e.Routes)))
		for _, rt := range e.Routes {
			if len(rt.Path) > 0xFFFF {
				return stats, fmt.Errorf("monitord: %v path length %d exceeds snapshot limit", e.Prefix, len(rt.Path))
			}
			writeU32(uint32(rt.Session))
			var ts [8]byte
			binary.BigEndian.PutUint64(ts[:], uint64(rt.Updated.UnixNano()))
			bw.Write(ts[:])
			writeU16(uint16(len(rt.Path)))
			for _, asn := range rt.Path {
				writeU32(uint32(asn))
			}
			stats.Routes++
		}
		stats.Prefixes++
	}
	return stats, bw.Flush()
}

// SaveSnapshotFile atomically writes a snapshot to path (temp file in
// the same directory, then rename).
func (d *Daemon) SaveSnapshotFile(path string) (*SnapshotStats, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".qsrib-*")
	if err != nil {
		return nil, err
	}
	stats, err := d.SaveSnapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return stats, err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return stats, err
	}
	return stats, nil
}

// LoadSnapshot restores a snapshot through the ingest pipeline: each
// persisted session registers as a "snapshot" source (ids are remapped
// in ascending saved order, so a fresh daemon reproduces the saved ids)
// and every route replays as an announcement at its saved timestamp.
// The call returns once everything is enqueued; use WaitQuiesce before
// reading the RIB.
func (d *Daemon) LoadSnapshot(r io.Reader) (*SnapshotStats, error) {
	stats := &SnapshotStats{}
	br := bufio.NewReader(r)

	head := make([]byte, len(snapshotMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return stats, fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	if string(head[:len(snapshotMagic)]) != snapshotMagic {
		return stats, fmt.Errorf("%w: bad magic", ErrSnapshotFormat)
	}
	if head[len(snapshotMagic)] != snapshotVersion {
		return stats, fmt.Errorf("%w: unsupported version %d", ErrSnapshotFormat, head[len(snapshotMagic)])
	}

	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint32(b[:]), nil
	}
	readU16 := func() (uint16, error) {
		var b [2]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint16(b[:]), nil
	}
	readStr := func() (string, error) {
		n, err := readU16()
		if err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	nSessions, err := readU32()
	if err != nil {
		return stats, fmt.Errorf("%w: session count: %v", ErrSnapshotFormat, err)
	}
	idMap := make(map[int]int, nSessions)
	for i := uint32(0); i < nSessions; i++ {
		savedID, err := readU32()
		if err != nil {
			return stats, fmt.Errorf("%w: session %d: %v", ErrSnapshotFormat, i, err)
		}
		peerAS, err := readU32()
		if err != nil {
			return stats, fmt.Errorf("%w: session %d: %v", ErrSnapshotFormat, i, err)
		}
		remote, err := readStr()
		if err != nil {
			return stats, fmt.Errorf("%w: session %d remote: %v", ErrSnapshotFormat, i, err)
		}
		if _, err := readStr(); err != nil { // original source, informational
			return stats, fmt.Errorf("%w: session %d source: %v", ErrSnapshotFormat, i, err)
		}
		idMap[int(savedID)] = d.registerSourceAs(remote, bgp.ASN(peerAS), "snapshot")
		stats.Sessions++
	}

	nPrefixes, err := readU32()
	if err != nil {
		return stats, fmt.Errorf("%w: prefix count: %v", ErrSnapshotFormat, err)
	}
	for i := uint32(0); i < nPrefixes; i++ {
		var addr [4]byte
		if _, err := io.ReadFull(br, addr[:]); err != nil {
			return stats, fmt.Errorf("%w: prefix %d: %v", ErrSnapshotFormat, i, err)
		}
		bits, err := br.ReadByte()
		if err != nil {
			return stats, fmt.Errorf("%w: prefix %d bits: %v", ErrSnapshotFormat, i, err)
		}
		if bits > 32 {
			return stats, fmt.Errorf("%w: prefix %d: %d bits", ErrSnapshotFormat, i, bits)
		}
		prefix := netip.PrefixFrom(netip.AddrFrom4(addr), int(bits))
		nRoutes, err := readU16()
		if err != nil {
			return stats, fmt.Errorf("%w: prefix %d routes: %v", ErrSnapshotFormat, i, err)
		}
		for j := uint16(0); j < nRoutes; j++ {
			savedID, err := readU32()
			if err != nil {
				return stats, fmt.Errorf("%w: %v route %d: %v", ErrSnapshotFormat, prefix, j, err)
			}
			var ts [8]byte
			if _, err := io.ReadFull(br, ts[:]); err != nil {
				return stats, fmt.Errorf("%w: %v route %d: %v", ErrSnapshotFormat, prefix, j, err)
			}
			pathLen, err := readU16()
			if err != nil {
				return stats, fmt.Errorf("%w: %v route %d: %v", ErrSnapshotFormat, prefix, j, err)
			}
			path := make([]bgp.ASN, 0, pathLen)
			for k := uint16(0); k < pathLen; k++ {
				asn, err := readU32()
				if err != nil {
					return stats, fmt.Errorf("%w: %v route %d hop %d: %v", ErrSnapshotFormat, prefix, j, k, err)
				}
				path = append(path, bgp.ASN(asn))
			}
			sid, ok := idMap[int(savedID)]
			if !ok {
				return stats, fmt.Errorf("%w: %v references unknown session %d", ErrSnapshotFormat, prefix, savedID)
			}
			t := time.Unix(0, int64(binary.BigEndian.Uint64(ts[:])))
			if err := d.Ingest(sid, t, prefix, path); err != nil {
				return stats, err
			}
			stats.Routes++
		}
		stats.Prefixes++
	}
	return stats, nil
}

// LoadSnapshotFile restores a snapshot from path.
func (d *Daemon) LoadSnapshotFile(path string) (*SnapshotStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return d.LoadSnapshot(f)
}
