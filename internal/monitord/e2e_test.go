package monitord

import (
	"context"
	"net"
	"net/http"
	"net/netip"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpd"
	"quicksand/internal/bgpsim"
	"quicksand/internal/defense"
)

// TestServeEndToEnd is the acceptance test for the daemon: a second
// process-local BGP speaker dials the daemon's loopback listener and
// replays an interception scenario (benign table, then a same-prefix
// origin hijack and a more-specific hijack embedded in background
// churn); the daemon must surface the alerts over GET /alerts and the
// matching counters over GET /metrics, and a graceful shutdown must
// leak zero goroutines.
func TestServeEndToEnd(t *testing.T) {
	baseline := runtime.NumGoroutine()

	d, err := New(Config{
		Watched: map[netip.Prefix]bgp.ASN{watchedPrefix: watchedOrigin},
		Speaker: bgpd.Config{
			ASN: 64500, BGPID: netip.MustParseAddr("198.51.100.1"),
			HoldTime: 3 * time.Second,
		},
		ListenBGP:  "127.0.0.1:0",
		ListenHTTP: "127.0.0.1:0",
		Shards:     4,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// The interception scenario, as a simulated collector-session view:
	// the benign initial table carries the victim's real path, then the
	// update stream announces the attacker as origin (interception) and a
	// more-specific of the watched prefix, with an unrelated background
	// update mixed in.
	other := netip.MustParsePrefix("192.0.2.0/24")
	moreSpec := netip.MustParsePrefix("10.0.2.0/24")
	t0 := time.Unix(3000, 0)
	st := &bgpsim.Stream{
		Sessions: []bgpsim.Session{
			bgpsim.NewSession("rrc00", 64501, []netip.Prefix{watchedPrefix, other}),
		},
		Initial: map[int]map[netip.Prefix][]bgp.ASN{0: {
			watchedPrefix: asns(64501, 64500, 64496),
			other:         asns(64501, 64510),
		}},
		Updates: []bgpsim.UpdateEvent{
			{Time: t0, Session: 0, Prefix: watchedPrefix, Path: asns(64501, 666)},
			{Time: t0.Add(time.Minute), Session: 0, Prefix: other, Path: asns(64501, 64511, 64510)},
			{Time: t0.Add(2 * time.Minute), Session: 0, Prefix: moreSpec, Path: asns(64501, 666, 64496)},
		},
	}
	const wantUpdates = 5 // 2 initial + 3 stream

	// Second speaker: dial the daemon and replay the scenario.
	conn, err := net.Dial("tcp", d.BGPAddr())
	if err != nil {
		t.Fatalf("dial daemon: %v", err)
	}
	sess, err := bgpd.Establish(conn, bgpd.Config{
		ASN: 64501, BGPID: netip.MustParseAddr("203.0.113.1"),
		HoldTime: 3 * time.Second,
	})
	if err != nil {
		conn.Close()
		t.Fatalf("establish: %v", err)
	}
	if _, err := bgpd.Replay(sess, st, 0); err != nil {
		t.Fatalf("replay: %v", err)
	}

	// Wait until every replayed update made it through the pipeline.
	deadline := time.Now().Add(10 * time.Second)
	for d.met.updates.Value() < wantUpdates {
		if time.Now().After(deadline) {
			t.Fatalf("daemon ingested %d/%d updates", d.met.updates.Value(), wantUpdates)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}

	base := "http://" + d.HTTPAddr()

	// The interception surfaces on /alerts. The two hijacked prefixes
	// hash to different shards, so only the set of alerts is defined,
	// not their sequence order.
	var alerts alertsResponse
	getJSON(t, base+"/alerts", &alerts)
	if len(alerts.Alerts) != 2 {
		t.Fatalf("/alerts = %+v, want origin-change + more-specific", alerts)
	}
	byKind := make(map[string]alertJSON)
	for _, a := range alerts.Alerts {
		byKind[a.Kind] = a
	}
	if a, ok := byKind[defense.AlertOriginChange.String()]; !ok ||
		a.Prefix != watchedPrefix.String() || a.ObservedAS != 666 {
		t.Errorf("origin-change alert = %+v, want on %v by AS666", a, watchedPrefix)
	}
	if a, ok := byKind[defense.AlertMoreSpecific.String()]; !ok || a.Prefix != moreSpec.String() {
		t.Errorf("more-specific alert = %+v, want %v", a, moreSpec)
	}

	// The hijacked path is live in the RIB.
	var rib ribResponse
	getJSON(t, base+"/rib?prefix="+watchedPrefix.String(), &rib)
	if len(rib.Routes) != 1 || rib.Routes[0].Path[len(rib.Routes[0].Path)-1] != 666 {
		t.Errorf("/rib = %+v, want the interception path ending in 666", rib)
	}

	// And /metrics reflects the session and the counts.
	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"monitord_updates_ingested_total 5",
		`monitord_alerts_total{kind="origin-change"} 1`,
		`monitord_alerts_total{kind="more-specific"} 1`,
		"monitord_sessions_accepted_total 1",
		"monitord_sessions_active 1",
		`monitord_session_updates_total{session="0",peer_as="64501",source="bgp",state="established"} 5`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	// Graceful shutdown: the client closes, the daemon drains, and no
	// goroutine survives.
	sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()

	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(leakDeadline) {
			var buf strings.Builder
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCollectorReconnect exercises the outbound dial loop: the daemon
// dials a loopback "collector" that replays a hijack, drops the session,
// and accepts a reconnect — the backoff path — before shutdown.
func TestCollectorReconnect(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// The fake collector accepts two sessions; the first replays one
	// hijacked announcement and closes, the second stays up.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	collectorCfg := bgpd.Config{
		ASN: 64501, BGPID: netip.MustParseAddr("203.0.113.1"),
		HoldTime: 3 * time.Second,
	}
	accepted := make(chan *bgpd.Session, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s, err := bgpd.Establish(c, collectorCfg)
			if err != nil {
				c.Close()
				continue
			}
			if i == 0 {
				s.SendUpdate(&bgp.Update{
					NLRI: []netip.Prefix{watchedPrefix},
					Attrs: bgp.PathAttributes{
						HasOrigin: true, Origin: bgp.OriginIGP,
						HasASPath: true, ASPath: bgp.Sequence(64501, 666),
						NextHop: netip.MustParseAddr("203.0.113.1"),
					},
				})
				s.Close()
				continue
			}
			accepted <- s
		}
	}()

	d, err := New(Config{
		Watched: map[netip.Prefix]bgp.ASN{watchedPrefix: watchedOrigin},
		Speaker: bgpd.Config{
			ASN: 64500, BGPID: netip.MustParseAddr("198.51.100.1"),
			HoldTime: 3 * time.Second,
		},
		Collectors:      []string{ln.Addr().String()},
		Shards:          2,
		DialBackoffBase: 10 * time.Millisecond,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// The hijack from the first (short-lived) session must be detected,
	// and the dialer must have reconnected.
	deadline := time.Now().Add(10 * time.Second)
	var second *bgpd.Session
	for second == nil {
		select {
		case second = <-accepted:
		default:
			if time.Now().After(deadline) {
				t.Fatal("daemon never reconnected to the collector")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for d.rng.total() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("hijack from first collector session never alerted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	alerts, _, _ := d.Alerts(0, 0)
	if alerts[0].Kind != defense.AlertOriginChange || alerts[0].Observed != 666 {
		t.Errorf("alert = %+v, want origin-change by AS666", alerts[0].Alert)
	}
	if got := d.met.sessionsAccepted.Value(); got != 2 {
		t.Errorf("sessions accepted = %d, want 2 (initial + reconnect)", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	ln.Close()
	second.Close()

	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(leakDeadline) {
			var buf strings.Builder
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
