package monitord

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"
)

// newHTTPDaemon starts a daemon serving HTTP on loopback with two
// ingested routes and one alert, and returns it with its base URL.
func newHTTPDaemon(t *testing.T) (*Daemon, string) {
	t.Helper()
	d := newTestDaemon(t, Config{Shards: 4, ListenHTTP: "127.0.0.1:0"})
	si := d.RegisterSource("test", 64501)
	t0 := time.Unix(1000, 0)
	d.Ingest(si, t0, watchedPrefix, asns(64501, 64500, 64496))
	d.Ingest(si, t0.Add(time.Minute), netip.MustParsePrefix("10.0.1.0/24"), asns(64501, 666))
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
	return d, "http://" + d.HTTPAddr()
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, body
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	code, body := httpGet(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, code, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: decoding %q: %v", url, body, err)
	}
}

func TestHTTPAlerts(t *testing.T) {
	_, base := newHTTPDaemon(t)

	var resp alertsResponse
	getJSON(t, base+"/alerts", &resp)
	if len(resp.Alerts) != 1 || resp.Next != 1 || resp.Dropped != 0 {
		t.Fatalf("/alerts = %+v, want exactly the more-specific alert", resp)
	}
	a := resp.Alerts[0]
	if a.Kind != "more-specific" || a.Prefix != "10.0.1.0/24" || a.ObservedAS != 666 {
		t.Errorf("alert = %+v", a)
	}

	// Cursor resume: nothing new.
	getJSON(t, base+fmt.Sprintf("/alerts?since=%d", resp.Next), &resp)
	if len(resp.Alerts) != 0 {
		t.Errorf("resumed poll returned %+v, want none", resp.Alerts)
	}

	for _, bad := range []string{"/alerts?since=x", "/alerts?max=0", "/alerts?max=x"} {
		if code, _ := httpGet(t, base+bad); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", bad, code)
		}
	}

	// An ahead-of-head cursor (stale client after a restart) resyncs:
	// empty page, next == live head, no drops — the Daemon.Alerts
	// contract over HTTP.
	getJSON(t, base+"/alerts?since=999999", &resp)
	if len(resp.Alerts) != 0 || resp.Next != 1 || resp.Dropped != 0 {
		t.Errorf("/alerts?since=999999 = %+v, want empty resync page at head 1", resp)
	}
}

// TestHTTPAlertsMaxClamp pins that a hostile ?max= cannot force an
// O(max) allocation: the server clamps to MaxAlertsPerRequest and still
// answers 200 with whatever alerts exist.
func TestHTTPAlertsMaxClamp(t *testing.T) {
	_, base := newHTTPDaemon(t)
	var resp alertsResponse
	getJSON(t, base+fmt.Sprintf("/alerts?max=%d", 1<<40), &resp)
	if len(resp.Alerts) != 1 || resp.Next != 1 {
		t.Errorf("/alerts with huge max = %+v, want the one real alert", resp)
	}
}

// TestHTTPMethodNotAllowed pins that every handler rejects non-GET: the
// API is read-only and must say so rather than treating a POST like a
// GET.
func TestHTTPMethodNotAllowed(t *testing.T) {
	_, base := newHTTPDaemon(t)
	for _, path := range []string{"/alerts", "/rib?prefix=10.0.0.0/16", "/healthz", "/metrics"} {
		resp, err := http.Post(base+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "GET" {
			t.Errorf("POST %s: Allow = %q, want GET", path, allow)
		}
	}
}

// TestWriteJSONEncodeFailure pins that an unencodable value yields a
// 500, not a silent empty 200 (the old streaming encoder had already
// written the status line before discovering the error).
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, math.NaN()) // NaN is not representable in JSON
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("writeJSON(NaN) status = %d, want 500", rec.Code)
	}
	rec = httptest.NewRecorder()
	writeJSON(rec, map[string]int{"ok": 1})
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok": 1`) {
		t.Errorf("writeJSON(valid) = %d %q", rec.Code, rec.Body.String())
	}
}

func TestHTTPRIB(t *testing.T) {
	_, base := newHTTPDaemon(t)

	var resp ribResponse
	getJSON(t, base+"/rib?prefix=10.0.0.0/16", &resp)
	if resp.Prefix != "10.0.0.0/16" || len(resp.Routes) != 1 {
		t.Fatalf("/rib?prefix = %+v", resp)
	}
	want := []uint32{64501, 64500, 64496}
	if len(resp.Routes[0].Path) != 3 || resp.Routes[0].Path[2] != want[2] {
		t.Errorf("path = %v, want %v", resp.Routes[0].Path, want)
	}
	if resp.Best == nil || resp.Best.Session != resp.Routes[0].Session {
		t.Errorf("best = %+v", resp.Best)
	}

	// Address lookup takes the most specific covering prefix.
	getJSON(t, base+"/rib?addr=10.0.1.7", &resp)
	if resp.Prefix != "10.0.1.0/24" {
		t.Errorf("/rib?addr LPM = %q, want the /24", resp.Prefix)
	}

	if code, _ := httpGet(t, base+"/rib?prefix=172.16.0.0/12"); code != http.StatusNotFound {
		t.Errorf("missing prefix: status %d, want 404", code)
	}
	for _, bad := range []string{"/rib", "/rib?prefix=nope", "/rib?addr=nope"} {
		if code, _ := httpGet(t, base+bad); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", bad, code)
		}
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, base := newHTTPDaemon(t)
	var h healthResponse
	getJSON(t, base+"/healthz", &h)
	if h.Status != "ok" || h.Updates != 2 || h.RIBPrefixes != 2 || h.Alerts != 1 {
		t.Errorf("/healthz = %+v", h)
	}
	if h.WatchedPrefix != 1 || h.SessionsActive != 1 {
		t.Errorf("/healthz watched/sessions = %+v", h)
	}
}

func TestHTTPMetrics(t *testing.T) {
	_, base := newHTTPDaemon(t)
	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"monitord_updates_ingested_total 2",
		"monitord_withdrawals_total 0",
		"monitord_rib_prefixes 2",
		`monitord_alerts_total{kind="origin-change"} 0`,
		`monitord_alerts_total{kind="more-specific"} 1`,
		`monitord_alerts_total{kind="new-upstream"} 0`,
		"monitord_alerts_dropped_total 0",
		`monitord_ingest_queue_depth{shard="0"} 0`,
		"monitord_sessions_accepted_total 1",
		"monitord_sessions_active 1",
		`monitord_session_updates_total{session="0",peer_as="64501",source="local",state="established"} 2`,
		"# TYPE monitord_updates_per_second gauge",
		"# TYPE monitord_uptime_seconds gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
}
