package monitord

import (
	"bytes"
	"net/netip"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/defense"
)

// ribDump flattens a daemon's RIB into a deterministic map for equality
// checks across save/restore.
func ribDump(d *Daemon) map[string][]Route {
	out := make(map[string][]Route)
	d.rib.Walk(func(e *RIBEntry) bool {
		out[e.Prefix.String()] = e.Routes
		return true
	})
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := newTestDaemon(t, Config{Shards: 4})
	s0 := src.RegisterSource("rrc00", 64501)
	s1 := src.RegisterSource("rrc01", 64502)
	t0 := time.Unix(5000, 0)

	other := netip.MustParsePrefix("192.0.2.0/24")
	gone := netip.MustParsePrefix("198.51.100.0/24")
	src.Ingest(s0, t0, watchedPrefix, asns(64501, 64500, 64496))
	src.Ingest(s1, t0.Add(time.Second), watchedPrefix, asns(64502, 64500, 64496))
	src.Ingest(s0, t0.Add(2*time.Second), other, asns(64501, 64510))
	// Empty-AS_PATH announcement: must survive the round trip as an
	// announcement, not become a withdrawal.
	src.Ingest(s1, t0.Add(3*time.Second), other, []bgp.ASN{})
	// Withdrawn before the snapshot: must not reappear after restore.
	src.Ingest(s0, t0.Add(4*time.Second), gone, asns(64501, 64511))
	src.Ingest(s0, t0.Add(5*time.Second), gone, nil)
	if !src.WaitQuiesce(5 * time.Second) {
		t.Fatal("source pipeline did not quiesce")
	}

	var buf bytes.Buffer
	stats, err := src.SaveSnapshot(&buf)
	if err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if stats.Sessions != 2 || stats.Prefixes != 2 || stats.Routes != 4 {
		t.Errorf("save stats = %+v, want 2 sessions / 2 prefixes / 4 routes", stats)
	}

	dst := newTestDaemon(t, Config{Shards: 2}) // different shard count on purpose
	rstats, err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if !dst.WaitQuiesce(5 * time.Second) {
		t.Fatal("restore pipeline did not quiesce")
	}
	if rstats.Sessions != 2 || rstats.Routes != 4 {
		t.Errorf("restore stats = %+v, want 2 sessions / 4 routes", rstats)
	}

	// Both daemons were fresh, so saved ids map onto identical new ids
	// and the RIBs must match exactly — paths, timestamps, sessions.
	want, got := ribDump(src), ribDump(dst)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("restored RIB differs:\n want %+v\n  got %+v", want, got)
	}
	if _, ok := dst.rib.Lookup(gone); ok {
		t.Errorf("withdrawn prefix %v reappeared after restore", gone)
	}
	// Restored routes replayed through the monitor: the benign table
	// raises no alarms here, but the pipeline observed every route.
	if n := dst.met.updates.Value(); n != 4 {
		t.Errorf("restore ingested %d updates, want 4", n)
	}
}

// TestSnapshotReplaysThroughMonitor pins the restore path going through
// the full pipeline: a snapshot taken during an active hijack re-raises
// the alert on the restored daemon instead of silently trusting it.
func TestSnapshotReplaysThroughMonitor(t *testing.T) {
	src := newTestDaemon(t, Config{Shards: 2})
	si := src.RegisterSource("rrc00", 64501)
	src.Ingest(si, time.Unix(5000, 0), watchedPrefix, asns(64501, 666))
	if !src.WaitQuiesce(5 * time.Second) {
		t.Fatal("source pipeline did not quiesce")
	}

	var buf bytes.Buffer
	if _, err := src.SaveSnapshot(&buf); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	dst := newTestDaemon(t, Config{Shards: 2})
	if _, err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if !dst.WaitQuiesce(5 * time.Second) {
		t.Fatal("restore pipeline did not quiesce")
	}
	alerts, _, _ := dst.Alerts(0, 0)
	if len(alerts) != 1 || alerts[0].Kind != defense.AlertOriginChange || alerts[0].Observed != 666 {
		t.Fatalf("restored alerts = %+v, want one origin-change by AS666", alerts)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	src := newTestDaemon(t, Config{Shards: 2})
	si := src.RegisterSource("rrc00", 64501)
	src.Ingest(si, time.Unix(5000, 0), watchedPrefix, asns(64501, 64500, 64496))
	if !src.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
	path := filepath.Join(t.TempDir(), "rib.qsrib")
	if _, err := src.SaveSnapshotFile(path); err != nil {
		t.Fatalf("SaveSnapshotFile: %v", err)
	}
	dst := newTestDaemon(t, Config{Shards: 2})
	if _, err := dst.LoadSnapshotFile(path); err != nil {
		t.Fatalf("LoadSnapshotFile: %v", err)
	}
	if !dst.WaitQuiesce(5 * time.Second) {
		t.Fatal("restore pipeline did not quiesce")
	}
	if !reflect.DeepEqual(ribDump(src), ribDump(dst)) {
		t.Error("file round trip changed the RIB")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	d := newTestDaemon(t, Config{Shards: 2})
	for name, data := range map[string][]byte{
		"empty":       {},
		"bad-magic":   []byte("NOTRIB\x01rest"),
		"bad-version": append([]byte(snapshotMagic), 99),
		"truncated":   append([]byte(snapshotMagic), 1, 0, 0),
	} {
		if _, err := d.LoadSnapshot(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: LoadSnapshot succeeded", name)
		} else if !strings.Contains(err.Error(), "snapshot") {
			t.Errorf("%s: error %v does not wrap ErrSnapshotFormat", name, err)
		}
	}
}
