package monitord

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/defense"
	"quicksand/internal/mrt"
)

func TestIngestMRTFile(t *testing.T) {
	d := newTestDaemon(t, Config{UpstreamAlarms: true})
	path := filepath.Join(t.TempDir(), "updates.mrt")
	if err := os.WriteFile(path, mrtArchive(t), 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := d.IngestMRTFile(path)
	if err != nil {
		t.Fatalf("IngestMRTFile: %v", err)
	}
	if stats.Records != 3 || stats.Updates != 2 || stats.Sessions != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
	if got, ok := d.RIB().Lookup(watchedPrefix); !ok || len(got.Routes) != 2 {
		t.Errorf("RIB after file ingest = %+v, ok=%v", got, ok)
	}

	if _, err := d.IngestMRTFile(filepath.Join(t.TempDir(), "missing.mrt")); err == nil {
		t.Error("IngestMRTFile on a missing file succeeded")
	}
}

// snapshotArchive builds a TABLE_DUMP_V2 snapshot holding the watched
// prefix as seen by two peers — one benign, one with a hijacked origin —
// plus one entry pointing at a peer index outside the table.
func snapshotArchive(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	ts := time.Unix(3000, 0)
	if err := w.WritePeerIndexTable(ts, &mrt.PeerIndexTable{
		CollectorBGPID: netip.MustParseAddr("203.0.113.9"),
		ViewName:       "snap",
		Peers: []mrt.Peer{
			{BGPID: netip.MustParseAddr("192.0.2.1"), IP: netip.MustParseAddr("192.0.2.1"), AS: 64501},
			{BGPID: netip.MustParseAddr("192.0.2.2"), IP: netip.MustParseAddr("192.0.2.2"), AS: 64502},
		},
	}); err != nil {
		t.Fatal(err)
	}
	attrs := func(path ...bgp.ASN) bgp.PathAttributes {
		return bgp.PathAttributes{
			HasOrigin: true, Origin: bgp.OriginIGP,
			HasASPath: true, ASPath: bgp.Sequence(path...),
			NextHop: netip.MustParseAddr("192.0.2.1"),
		}
	}
	if err := w.WriteRIB(ts, &mrt.RIBIPv4Unicast{
		Sequence: 0,
		Prefix:   watchedPrefix,
		Entries: []mrt.RIBEntry{
			{PeerIndex: 0, OriginatedTime: ts, Attrs: attrs(64501, 64500, 64496)},
			{PeerIndex: 1, OriginatedTime: ts, Attrs: attrs(64502, 666)},
			{PeerIndex: 7, OriginatedTime: ts, Attrs: attrs(64503, 64496)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIngestRIBSnapshot(t *testing.T) {
	d := newTestDaemon(t, Config{UpstreamAlarms: true})
	stats, err := d.IngestRIBSnapshot(bytes.NewReader(snapshotArchive(t)), "snap.mrt")
	if err != nil {
		t.Fatalf("IngestRIBSnapshot: %v", err)
	}
	if stats.Records != 2 || stats.Updates != 2 || stats.Sessions != 2 || stats.Skipped != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}

	entry, ok := d.RIB().Lookup(watchedPrefix)
	if !ok || len(entry.Routes) != 2 {
		t.Fatalf("RIB after snapshot = %+v, ok=%v", entry, ok)
	}
	for _, r := range entry.Routes {
		if !r.Updated.Equal(time.Unix(3000, 0)) {
			t.Errorf("route timestamp %v, want snapshot time", r.Updated)
		}
	}

	// A poisoned snapshot must alarm like live updates would: the
	// hijacked origin, plus a new-upstream alarm for the benign path
	// because alarms are armed with nothing learned yet.
	alerts, _, dropped := d.Alerts(0, 100)
	byKind := make(map[defense.AlertKind]defense.Alert)
	for _, a := range alerts {
		byKind[a.Kind] = a.Alert
	}
	if dropped != 0 || len(alerts) != 2 {
		t.Fatalf("alerts = %+v (dropped %d)", alerts, dropped)
	}
	if a, ok := byKind[defense.AlertOriginChange]; !ok || a.Observed != bgp.ASN(666) {
		t.Errorf("origin-change alert = %+v, ok=%v", a, ok)
	}
	if a, ok := byKind[defense.AlertNewUpstream]; !ok || a.Observed != bgp.ASN(64500) {
		t.Errorf("new-upstream alert = %+v, ok=%v", a, ok)
	}
}
