package monitord

import (
	"encoding/json"
	"net/http"
	"net/netip"
	"strconv"
	"time"
)

// alertJSON is the wire shape of one alert on /alerts.
type alertJSON struct {
	Seq        uint64    `json:"seq"`
	Time       time.Time `json:"time"`
	Session    int       `json:"session"`
	Prefix     string    `json:"prefix"`
	Kind       string    `json:"kind"`
	ObservedAS uint32    `json:"observed_as"`
}

// alertsResponse is the /alerts payload: alerts since the cursor, the
// cursor to pass on the next poll, and how many alerts were evicted
// unseen (a too-slow client's signal to resync).
type alertsResponse struct {
	Alerts  []alertJSON `json:"alerts"`
	Next    uint64      `json:"next"`
	Dropped uint64      `json:"dropped"`
}

// routeJSON is one session's path on /rib.
type routeJSON struct {
	Session int       `json:"session"`
	Path    []uint32  `json:"path"`
	Updated time.Time `json:"updated"`
}

// ribResponse is the /rib payload for one prefix.
type ribResponse struct {
	Prefix string      `json:"prefix"`
	Routes []routeJSON `json:"routes"`
	Best   *routeJSON  `json:"best,omitempty"`
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status         string  `json:"status"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	SessionsActive int64   `json:"sessions_active"`
	Updates        uint64  `json:"updates"`
	RIBPrefixes    int     `json:"rib_prefixes"`
	Alerts         uint64  `json:"alerts"`
	QueueDepth     int     `json:"queue_depth"`
	WatchedPrefix  int     `json:"watched_prefixes"`
}

// MaxAlertsPerRequest is the server-side ceiling on the /alerts ?max=
// parameter: larger requests are clamped, not refused, so a greedy (or
// hostile) client cannot force an O(max) allocation per request. Slow
// consumers page with the returned cursor instead.
const MaxAlertsPerRequest = 10000

func (d *Daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/alerts", getOnly(d.handleAlerts))
	mux.HandleFunc("/rib", getOnly(d.handleRIB))
	mux.HandleFunc("/healthz", getOnly(d.handleHealthz))
	mux.HandleFunc("/metrics", getOnly(d.handleMetrics))
	return mux
}

// getOnly rejects every method except GET (and HEAD, which net/http
// serves from the GET handler) with 405 — the API is read-only.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// writeJSON marshals v before touching the ResponseWriter so an encode
// failure can still turn into a 500 instead of a silently truncated 200
// (streaming json.Encoder writes the status line on its first byte).
func writeJSON(w http.ResponseWriter, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}

// handleAlerts serves GET /alerts?since=N&max=M.
func (d *Daemon) handleAlerts(w http.ResponseWriter, r *http.Request) {
	var cursor uint64
	if s := r.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad since cursor: "+err.Error(), http.StatusBadRequest)
			return
		}
		cursor = v
	}
	max := 1000
	if s := r.URL.Query().Get("max"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "bad max", http.StatusBadRequest)
			return
		}
		max = min(v, MaxAlertsPerRequest)
	}
	alerts, next, dropped := d.rng.since(cursor, max)
	resp := alertsResponse{Alerts: make([]alertJSON, 0, len(alerts)), Next: next, Dropped: dropped}
	for _, a := range alerts {
		resp.Alerts = append(resp.Alerts, alertJSON{
			Seq: a.Seq, Time: a.Time, Session: a.Session,
			Prefix: a.Prefix.String(), Kind: a.Kind.String(),
			ObservedAS: uint32(a.Observed),
		})
	}
	writeJSON(w, resp)
}

func routeToJSON(rt Route) routeJSON {
	path := make([]uint32, len(rt.Path))
	for i, a := range rt.Path {
		path[i] = uint32(a)
	}
	return routeJSON{Session: rt.Session, Path: path, Updated: rt.Updated}
}

// handleRIB serves GET /rib?prefix=10.0.0.0/16 (exact lookup) and
// GET /rib?addr=10.0.1.2 (longest-prefix match).
func (d *Daemon) handleRIB(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var entry *RIBEntry
	var ok bool
	switch {
	case q.Get("prefix") != "":
		p, err := netip.ParsePrefix(q.Get("prefix"))
		if err != nil {
			http.Error(w, "bad prefix: "+err.Error(), http.StatusBadRequest)
			return
		}
		entry, ok = d.rib.Lookup(p)
	case q.Get("addr") != "":
		a, err := netip.ParseAddr(q.Get("addr"))
		if err != nil {
			http.Error(w, "bad addr: "+err.Error(), http.StatusBadRequest)
			return
		}
		entry, ok = d.rib.LookupAddr(a)
	default:
		http.Error(w, "need ?prefix= or ?addr=", http.StatusBadRequest)
		return
	}
	if !ok {
		http.Error(w, "no route", http.StatusNotFound)
		return
	}
	resp := ribResponse{Prefix: entry.Prefix.String()}
	for _, rt := range entry.Routes {
		resp.Routes = append(resp.Routes, routeToJSON(rt))
	}
	if best, ok := entry.Best(); ok {
		bj := routeToJSON(best)
		resp.Best = &bj
	}
	writeJSON(w, resp)
}

// handleHealthz serves GET /healthz.
func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	depth := 0
	for _, ch := range d.shards {
		depth += len(ch)
	}
	writeJSON(w, healthResponse{
		Status:         "ok",
		UptimeSeconds:  time.Since(d.met.start).Seconds(),
		SessionsActive: int64(d.met.sessionsActive.Value()),
		Updates:        d.met.updates.Value(),
		RIBPrefixes:    d.rib.Size(),
		Alerts:         d.rng.total(),
		QueueDepth:     depth,
		WatchedPrefix:  len(d.cfg.Watched),
	})
}

// handleMetrics serves GET /metrics in Prometheus text exposition. The
// daemon-state families (RIB size, queue depths, session rows) are
// sampled by the collectors registered in registerCollectors.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	d.met.writePrometheus(w)
}
