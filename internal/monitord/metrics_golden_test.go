package monitord_test

import (
	"context"
	"io"
	"net/http"
	"net/netip"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/monitord"
	"quicksand/internal/testkit"
)

// scrapeMetrics starts a daemon through the exported API only (this is
// an external test package), ingests a deterministic workload, and
// returns the /metrics exposition.
func scrapeMetrics(t *testing.T) string {
	t.Helper()
	d, err := monitord.New(monitord.Config{
		Watched: map[netip.Prefix]bgp.ASN{
			netip.MustParsePrefix("10.0.0.0/16"): 64496,
		},
		Shards:     4,
		ListenHTTP: "127.0.0.1:0",
		// Latency observations off: bucket placement depends on real
		// elapsed time, which a golden can't pin. The families still
		// render (at zero), so the exposition shape stays covered;
		// latency_test.go asserts the populated behaviour.
		DisableLatencyMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	si := d.RegisterSource("test", 64501)
	t0 := time.Unix(1000, 0)
	d.Ingest(si, t0, netip.MustParsePrefix("10.0.0.0/16"), []bgp.ASN{64501, 64500, 64496})
	d.Ingest(si, t0.Add(time.Minute), netip.MustParsePrefix("10.0.1.0/24"), []bgp.ASN{64501, 666})
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
	resp, err := http.Get("http://" + d.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsLint runs the shared exposition linter against a live
// daemon's /metrics output.
func TestMetricsLint(t *testing.T) {
	text := scrapeMetrics(t)
	if errs := testkit.LintProm(text); len(errs) != 0 {
		t.Fatalf("monitord /metrics fails lint:\n%v\n\n%s", errs, text)
	}
}

// TestMetricsGolden pins the full exposition — family set, metric and
// label names, label order, sample formatting — against a golden file.
// Time-dependent sample values are normalised to X; everything else is
// exact. The metric names and label sets are monitord's stable external
// interface: a diff here means dashboards break.
func TestMetricsGolden(t *testing.T) {
	text := scrapeMetrics(t)
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		for _, dyn := range []string{"monitord_uptime_seconds ", "monitord_updates_per_second "} {
			if strings.HasPrefix(line, dyn) {
				line = dyn + "X"
			}
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	got := strings.TrimSuffix(b.String(), "\n")
	testkit.Golden(t, filepath.Join("..", "..", "results", "golden", "monitord_metrics.txt"), []byte(got))
}
