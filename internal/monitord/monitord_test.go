package monitord

import (
	"bytes"
	"context"
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/defense"
	"quicksand/internal/mrt"
)

var (
	watchedPrefix = netip.MustParsePrefix("10.0.0.0/16")
	watchedOrigin = bgp.ASN(64496)
)

// newTestDaemon starts a daemon with no listeners: updates enter through
// RegisterSource/Ingest only.
func newTestDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	if cfg.Watched == nil {
		cfg.Watched = map[netip.Prefix]bgp.ASN{watchedPrefix: watchedOrigin}
	}
	cfg.Logf = t.Logf
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return d
}

func TestDaemonRejectsEmptyWatchlist(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no watched prefixes succeeded")
	}
}

func TestDaemonIngestDetectsHijacks(t *testing.T) {
	d := newTestDaemon(t, Config{Shards: 4})
	si := d.RegisterSource("test", 64501)
	t0 := time.Unix(1000, 0)

	// Benign announcement: expected origin, no alert.
	if err := d.Ingest(si, t0, watchedPrefix, asns(64501, 64500, 64496)); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	// Same-prefix hijack: origin change.
	d.Ingest(si, t0.Add(time.Minute), watchedPrefix, asns(64501, 666))
	// More-specific hijack of the watched prefix.
	moreSpec := netip.MustParsePrefix("10.0.1.0/24")
	d.Ingest(si, t0.Add(2*time.Minute), moreSpec, asns(64501, 666))
	// Unrelated prefix: no alert.
	d.Ingest(si, t0.Add(3*time.Minute), netip.MustParsePrefix("192.0.2.0/24"), asns(64501, 64510))

	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}

	alerts, next, dropped := d.Alerts(0, 0)
	if dropped != 0 {
		t.Errorf("dropped = %d, want 0", dropped)
	}
	if len(alerts) != 2 || next != 2 {
		t.Fatalf("got %d alerts (next %d), want 2: %+v", len(alerts), next, alerts)
	}
	// The two hijacked prefixes hash to different shards, so sequence
	// order between them is not defined; match by kind.
	byKind := make(map[defense.AlertKind]defense.Alert)
	for _, a := range alerts {
		byKind[a.Kind] = a.Alert
	}
	if a, ok := byKind[defense.AlertOriginChange]; !ok || a.Observed != 666 {
		t.Errorf("origin-change alert = %+v, want by AS666", a)
	}
	if a, ok := byKind[defense.AlertMoreSpecific]; !ok || a.Prefix != moreSpec {
		t.Errorf("more-specific alert = %+v, want for %v", a, moreSpec)
	}

	// The live RIB reflects the last state of every prefix.
	if e, ok := d.rib.Lookup(watchedPrefix); !ok || len(e.Routes) != 1 || e.Routes[0].Path[1] != 666 {
		t.Errorf("RIB[%v] = %+v, %v; want the hijacked path", watchedPrefix, e, ok)
	}
	if d.rib.Size() != 3 {
		t.Errorf("RIB size = %d, want 3", d.rib.Size())
	}
	if got := d.met.updates.Value(); got != 4 {
		t.Errorf("updates counter = %d, want 4", got)
	}
	if got := d.met.alertCount(defense.AlertOriginChange); got != 1 {
		t.Errorf("origin-change counter = %d, want 1", got)
	}
}

func TestDaemonLearningWindow(t *testing.T) {
	// LearnUpdates=2: the first two updates train upstream sets silently,
	// then upstream alarms arm. All updates hit one prefix, hence one
	// shard, so ordering through the window is deterministic.
	d := newTestDaemon(t, Config{Shards: 4, LearnUpdates: 2})
	si := d.RegisterSource("test", 64501)
	t0 := time.Unix(1000, 0)

	d.Ingest(si, t0, watchedPrefix, asns(64501, 64500, 64496))
	d.Ingest(si, t0, watchedPrefix, asns(64501, 64505, 64496))
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
	if n := d.rng.total(); n != 0 {
		t.Fatalf("learning window raised %d alerts", n)
	}

	// Known upstream (64500): quiet. Unknown upstream (64777): alarm.
	d.Ingest(si, t0.Add(time.Minute), watchedPrefix, asns(64501, 64500, 64496))
	d.Ingest(si, t0.Add(2*time.Minute), watchedPrefix, asns(64501, 64777, 64496))
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}
	alerts, _, _ := d.Alerts(0, 0)
	if len(alerts) != 1 || alerts[0].Kind != defense.AlertNewUpstream || alerts[0].Observed != 64777 {
		t.Fatalf("after window: alerts = %+v, want one new-upstream by AS64777", alerts)
	}
}

func TestDaemonIngestUnknownSession(t *testing.T) {
	d := newTestDaemon(t, Config{Shards: 2})
	if err := d.Ingest(42, time.Now(), watchedPrefix, asns(1, 2)); err == nil {
		t.Fatal("Ingest on unregistered session succeeded")
	}
}

func TestDaemonShutdownIdempotent(t *testing.T) {
	d := newTestDaemon(t, Config{Shards: 2})
	ctx := context.Background()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// mrtArchive builds a BGP4MP archive with one benign announcement from
// peer A, one hijacked announcement from peer B, and a state change.
func mrtArchive(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	ts := time.Unix(2000, 0)
	msg := func(peerIP string, peerAS bgp.ASN, path []bgp.ASN) *mrt.BGP4MPMessage {
		u := bgp.Update{
			NLRI: []netip.Prefix{watchedPrefix},
			Attrs: bgp.PathAttributes{
				HasOrigin: true, Origin: bgp.OriginIGP,
				HasASPath: true, ASPath: bgp.Sequence(path...),
				NextHop: netip.MustParseAddr(peerIP),
			},
		}
		raw, err := u.Marshal(true)
		if err != nil {
			t.Fatalf("marshal update: %v", err)
		}
		return &mrt.BGP4MPMessage{
			PeerAS: peerAS, LocalAS: 12654, AS4: true,
			PeerIP:  netip.MustParseAddr(peerIP),
			LocalIP: netip.MustParseAddr("198.51.100.1"),
			Data:    raw,
		}
	}
	if err := w.WriteMessage(ts, msg("192.0.2.1", 64501, asns(64501, 64500, 64496))); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteMessage(ts.Add(time.Minute), msg("192.0.2.2", 64502, asns(64502, 666))); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteStateChange(ts.Add(2*time.Minute), &mrt.BGP4MPStateChange{
		PeerAS: 64501, LocalAS: 12654, AS4: true,
		PeerIP:   netip.MustParseAddr("192.0.2.1"),
		LocalIP:  netip.MustParseAddr("198.51.100.1"),
		OldState: mrt.StateEstablished, NewState: mrt.StateIdle,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIngestMRT(t *testing.T) {
	d := newTestDaemon(t, Config{Shards: 4})
	stats, err := d.IngestMRT(bytes.NewReader(mrtArchive(t)), "test.mrt")
	if err != nil {
		t.Fatalf("IngestMRT: %v", err)
	}
	if stats.Records != 3 || stats.Updates != 2 || stats.Sessions != 2 {
		t.Errorf("stats = %+v, want 3 records / 2 updates / 2 sessions", stats)
	}
	if !d.WaitQuiesce(5 * time.Second) {
		t.Fatal("pipeline did not quiesce")
	}

	// Two peers, two live routes for the watched prefix; the archive's
	// record timestamps are preserved on the routes.
	e, ok := d.rib.Lookup(watchedPrefix)
	if !ok || len(e.Routes) != 2 {
		t.Fatalf("RIB[%v] = %+v, %v; want 2 routes", watchedPrefix, e, ok)
	}
	for _, rt := range e.Routes {
		if rt.Updated.Unix() != 2000 && rt.Updated.Unix() != 2060 {
			t.Errorf("route %+v lost its archive timestamp", rt)
		}
	}
	alerts, _, _ := d.Alerts(0, 0)
	if len(alerts) != 1 || alerts[0].Kind != defense.AlertOriginChange {
		t.Fatalf("alerts = %+v, want one origin-change from the poisoned peer", alerts)
	}
	if got := d.met.mrtRecords.Value(); got != 3 {
		t.Errorf("mrt records counter = %d, want 3", got)
	}
}
