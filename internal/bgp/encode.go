package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Wire-format constants (RFC 4271 §4.1).
const (
	HeaderLen     = 19
	MarkerLen     = 16
	MaxMessageLen = 4096
	// ASTrans is the 2-octet placeholder AS used on the wire when a
	// 4-octet ASN must be squeezed into a 2-octet field (RFC 6793).
	ASTrans ASN = 23456
)

// Attribute flag bits (RFC 4271 §4.3).
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagPartial    = 0x20
	flagExtLen     = 0x10
)

// Capability codes (RFC 5492, RFC 6793).
const (
	capFourOctetAS     = 65
	optParamCapability = 2
)

func appendHeader(dst []byte, msgType int, bodyLen int) []byte {
	for i := 0; i < MarkerLen; i++ {
		dst = append(dst, 0xFF)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(HeaderLen+bodyLen))
	return append(dst, byte(msgType))
}

// appendPrefix appends the RFC 4271 NLRI encoding of p: one length byte
// followed by the minimum number of address bytes.
func appendPrefix(dst []byte, p netip.Prefix) ([]byte, error) {
	if !p.IsValid() || !p.Addr().Is4() {
		return nil, fmt.Errorf("bgp: cannot encode non-IPv4 prefix %v", p)
	}
	p = p.Masked()
	dst = append(dst, byte(p.Bits()))
	b := p.Addr().As4()
	return append(dst, b[:(p.Bits()+7)/8]...), nil
}

func appendASPath(dst []byte, p ASPath, as4 bool) ([]byte, error) {
	for _, s := range p.Segments {
		if s.Type != SegmentSet && s.Type != SegmentSequence {
			return nil, fmt.Errorf("bgp: invalid AS_PATH segment type %d", s.Type)
		}
		if len(s.ASes) == 0 || len(s.ASes) > 255 {
			return nil, fmt.Errorf("bgp: AS_PATH segment with %d ASes", len(s.ASes))
		}
		dst = append(dst, byte(s.Type), byte(len(s.ASes)))
		for _, a := range s.ASes {
			if as4 {
				dst = binary.BigEndian.AppendUint32(dst, uint32(a))
				continue
			}
			if a > 0xFFFF {
				a = ASTrans
			}
			dst = binary.BigEndian.AppendUint16(dst, uint16(a))
		}
	}
	return dst, nil
}

// appendAttr appends one path attribute with the extended-length flag set
// automatically when the value exceeds 255 bytes.
func appendAttr(dst []byte, flags, typ byte, val []byte) []byte {
	if len(val) > 255 {
		flags |= flagExtLen
	}
	dst = append(dst, flags, typ)
	if flags&flagExtLen != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(val)))
	} else {
		dst = append(dst, byte(len(val)))
	}
	return append(dst, val...)
}

// Marshal encodes the UPDATE into a full BGP message (header included).
// as4 selects 4-octet AS_PATH encoding, matching a session on which the
// 4-octet-AS capability was negotiated.
func (u *Update) Marshal(as4 bool) ([]byte, error) {
	var withdrawn []byte
	var err error
	for _, p := range u.Withdrawn {
		withdrawn, err = appendPrefix(withdrawn, p)
		if err != nil {
			return nil, err
		}
	}

	var attrs []byte
	a := &u.Attrs
	if a.HasOrigin {
		if a.Origin < OriginIGP || a.Origin > OriginIncomplete {
			return nil, fmt.Errorf("bgp: invalid ORIGIN %d", a.Origin)
		}
		attrs = appendAttr(attrs, flagTransitive, AttrOrigin, []byte{byte(a.Origin)})
	}
	if a.HasASPath {
		v, err := appendASPath(nil, a.ASPath, as4)
		if err != nil {
			return nil, err
		}
		attrs = appendAttr(attrs, flagTransitive, AttrASPath, v)
	}
	if a.NextHop.IsValid() {
		if !a.NextHop.Is4() {
			return nil, fmt.Errorf("bgp: NEXT_HOP %v is not IPv4", a.NextHop)
		}
		nh := a.NextHop.As4()
		attrs = appendAttr(attrs, flagTransitive, AttrNextHop, nh[:])
	}
	if a.HasMED {
		attrs = appendAttr(attrs, flagOptional, AttrMED, binary.BigEndian.AppendUint32(nil, a.MED))
	}
	if a.HasLocalPref {
		attrs = appendAttr(attrs, flagTransitive, AttrLocalPref, binary.BigEndian.AppendUint32(nil, a.LocalPref))
	}
	if a.AtomicAggregate {
		attrs = appendAttr(attrs, flagTransitive, AttrAtomicAggregate, nil)
	}
	if a.Aggregator != nil {
		if !a.Aggregator.Addr.Is4() {
			return nil, fmt.Errorf("bgp: AGGREGATOR address %v is not IPv4", a.Aggregator.Addr)
		}
		var v []byte
		if as4 {
			v = binary.BigEndian.AppendUint32(v, uint32(a.Aggregator.ASN))
		} else {
			asn := a.Aggregator.ASN
			if asn > 0xFFFF {
				asn = ASTrans
			}
			v = binary.BigEndian.AppendUint16(v, uint16(asn))
		}
		ip := a.Aggregator.Addr.As4()
		v = append(v, ip[:]...)
		attrs = appendAttr(attrs, flagOptional|flagTransitive, AttrAggregator, v)
	}
	if len(a.Communities) > 0 {
		var v []byte
		for _, c := range a.Communities {
			v = binary.BigEndian.AppendUint32(v, uint32(c))
		}
		attrs = appendAttr(attrs, flagOptional|flagTransitive, AttrCommunities, v)
	}

	var nlri []byte
	for _, p := range u.NLRI {
		nlri, err = appendPrefix(nlri, p)
		if err != nil {
			return nil, err
		}
	}

	bodyLen := 2 + len(withdrawn) + 2 + len(attrs) + len(nlri)
	if HeaderLen+bodyLen > MaxMessageLen {
		return nil, fmt.Errorf("bgp: UPDATE length %d exceeds maximum %d", HeaderLen+bodyLen, MaxMessageLen)
	}
	out := make([]byte, 0, HeaderLen+bodyLen)
	out = appendHeader(out, TypeUpdate, bodyLen)
	out = binary.BigEndian.AppendUint16(out, uint16(len(withdrawn)))
	out = append(out, withdrawn...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(attrs)))
	out = append(out, attrs...)
	out = append(out, nlri...)
	return out, nil
}

// Marshal encodes the OPEN into a full BGP message. When o.AS4 is set, the
// 4-octet-AS capability is included as an optional parameter and ASTrans
// substitutes for ASNs wider than 16 bits in the fixed field.
func (o *Open) Marshal() ([]byte, error) {
	if !o.BGPID.Is4() {
		return nil, fmt.Errorf("bgp: BGP identifier %v is not IPv4", o.BGPID)
	}
	var opt []byte
	if o.AS4 {
		cap := binary.BigEndian.AppendUint32([]byte{capFourOctetAS, 4}, uint32(o.ASN))
		opt = append(opt, optParamCapability, byte(len(cap)))
		opt = append(opt, cap...)
	}
	wireAS := o.ASN
	if wireAS > 0xFFFF {
		wireAS = ASTrans
	}
	bodyLen := 10 + len(opt)
	out := make([]byte, 0, HeaderLen+bodyLen)
	out = appendHeader(out, TypeOpen, bodyLen)
	out = append(out, o.Version)
	out = binary.BigEndian.AppendUint16(out, uint16(wireAS))
	out = binary.BigEndian.AppendUint16(out, o.HoldTime)
	id := o.BGPID.As4()
	out = append(out, id[:]...)
	out = append(out, byte(len(opt)))
	out = append(out, opt...)
	return out, nil
}

// Marshal encodes the NOTIFICATION into a full BGP message.
func (n *Notification) Marshal() ([]byte, error) {
	bodyLen := 2 + len(n.Data)
	if HeaderLen+bodyLen > MaxMessageLen {
		return nil, fmt.Errorf("bgp: NOTIFICATION too long (%d data bytes)", len(n.Data))
	}
	out := make([]byte, 0, HeaderLen+bodyLen)
	out = appendHeader(out, TypeNotification, bodyLen)
	out = append(out, n.Code, n.Subcode)
	return append(out, n.Data...), nil
}

// Marshal encodes the KEEPALIVE (a bare header).
func (k *Keepalive) Marshal() ([]byte, error) {
	return appendHeader(make([]byte, 0, HeaderLen), TypeKeepalive, 0), nil
}
