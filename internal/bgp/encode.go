package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Wire-format constants (RFC 4271 §4.1).
const (
	HeaderLen     = 19
	MarkerLen     = 16
	MaxMessageLen = 4096
	// ASTrans is the 2-octet placeholder AS used on the wire when a
	// 4-octet ASN must be squeezed into a 2-octet field (RFC 6793).
	ASTrans ASN = 23456
)

// Attribute flag bits (RFC 4271 §4.3).
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagPartial    = 0x20
	flagExtLen     = 0x10
)

// Capability codes (RFC 5492, RFC 6793).
const (
	capFourOctetAS     = 65
	optParamCapability = 2
)

func appendHeader(dst []byte, msgType int, bodyLen int) []byte {
	for i := 0; i < MarkerLen; i++ {
		dst = append(dst, 0xFF)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(HeaderLen+bodyLen))
	return append(dst, byte(msgType))
}

// appendPrefix appends the RFC 4271 NLRI encoding of p: one length byte
// followed by the minimum number of address bytes.
func appendPrefix(dst []byte, p netip.Prefix) ([]byte, error) {
	if !p.IsValid() || !p.Addr().Is4() {
		return dst, fmt.Errorf("bgp: cannot encode non-IPv4 prefix %v", p)
	}
	p = p.Masked()
	dst = append(dst, byte(p.Bits()))
	b := p.Addr().As4()
	return append(dst, b[:(p.Bits()+7)/8]...), nil
}

func appendASPath(dst []byte, p ASPath, as4 bool) ([]byte, error) {
	for _, s := range p.Segments {
		if s.Type != SegmentSet && s.Type != SegmentSequence {
			return dst, fmt.Errorf("bgp: invalid AS_PATH segment type %d", s.Type)
		}
		if len(s.ASes) == 0 || len(s.ASes) > 255 {
			return dst, fmt.Errorf("bgp: AS_PATH segment with %d ASes", len(s.ASes))
		}
		dst = append(dst, byte(s.Type), byte(len(s.ASes)))
		for _, a := range s.ASes {
			if as4 {
				dst = binary.BigEndian.AppendUint32(dst, uint32(a))
				continue
			}
			if a > 0xFFFF {
				a = ASTrans
			}
			dst = binary.BigEndian.AppendUint16(dst, uint16(a))
		}
	}
	return dst, nil
}

// Marshal encodes the UPDATE into a full BGP message (header included).
// as4 selects 4-octet AS_PATH encoding, matching a session on which the
// 4-octet-AS capability was negotiated.
func (u *Update) Marshal(as4 bool) ([]byte, error) {
	return u.AppendMessage(nil, as4)
}

// appendAttrHeader writes one attribute's flags/type/length prefix, with
// the extended-length flag set automatically when vlen exceeds 255. The
// caller appends exactly vlen value bytes next.
func appendAttrHeader(dst []byte, flags, typ byte, vlen int) []byte {
	if vlen > 255 {
		flags |= flagExtLen
	}
	dst = append(dst, flags, typ)
	if flags&flagExtLen != 0 {
		return binary.BigEndian.AppendUint16(dst, uint16(vlen))
	}
	return append(dst, byte(vlen))
}

// asPathWireLen is the encoded size of p: every attribute length here is
// computable up front, which is what lets AppendMessage encode straight
// into dst with no intermediate value buffers.
func asPathWireLen(p ASPath, as4 bool) int {
	w := 2
	if as4 {
		w = 4
	}
	n := 0
	for _, s := range p.Segments {
		n += 2 + len(s.ASes)*w
	}
	return n
}

// appendAttributes appends the path-attribute block (without its 2-byte
// total length, which the caller backpatches).
func appendAttributes(dst []byte, a *PathAttributes, as4 bool) ([]byte, error) {
	if a.HasOrigin {
		if a.Origin < OriginIGP || a.Origin > OriginIncomplete {
			return dst, fmt.Errorf("bgp: invalid ORIGIN %d", a.Origin)
		}
		dst = appendAttrHeader(dst, flagTransitive, AttrOrigin, 1)
		dst = append(dst, byte(a.Origin))
	}
	if a.HasASPath {
		dst = appendAttrHeader(dst, flagTransitive, AttrASPath, asPathWireLen(a.ASPath, as4))
		var err error
		if dst, err = appendASPath(dst, a.ASPath, as4); err != nil {
			return dst, err
		}
	}
	if a.NextHop.IsValid() {
		if !a.NextHop.Is4() {
			return dst, fmt.Errorf("bgp: NEXT_HOP %v is not IPv4", a.NextHop)
		}
		nh := a.NextHop.As4()
		dst = appendAttrHeader(dst, flagTransitive, AttrNextHop, 4)
		dst = append(dst, nh[:]...)
	}
	if a.HasMED {
		dst = appendAttrHeader(dst, flagOptional, AttrMED, 4)
		dst = binary.BigEndian.AppendUint32(dst, a.MED)
	}
	if a.HasLocalPref {
		dst = appendAttrHeader(dst, flagTransitive, AttrLocalPref, 4)
		dst = binary.BigEndian.AppendUint32(dst, a.LocalPref)
	}
	if a.AtomicAggregate {
		dst = appendAttrHeader(dst, flagTransitive, AttrAtomicAggregate, 0)
	}
	if a.Aggregator != nil {
		if !a.Aggregator.Addr.Is4() {
			return dst, fmt.Errorf("bgp: AGGREGATOR address %v is not IPv4", a.Aggregator.Addr)
		}
		vlen := 6
		if as4 {
			vlen = 8
		}
		dst = appendAttrHeader(dst, flagOptional|flagTransitive, AttrAggregator, vlen)
		if as4 {
			dst = binary.BigEndian.AppendUint32(dst, uint32(a.Aggregator.ASN))
		} else {
			asn := a.Aggregator.ASN
			if asn > 0xFFFF {
				asn = ASTrans
			}
			dst = binary.BigEndian.AppendUint16(dst, uint16(asn))
		}
		ip := a.Aggregator.Addr.As4()
		dst = append(dst, ip[:]...)
	}
	if len(a.Communities) > 0 {
		dst = appendAttrHeader(dst, flagOptional|flagTransitive, AttrCommunities, 4*len(a.Communities))
		for _, c := range a.Communities {
			dst = binary.BigEndian.AppendUint32(dst, uint32(c))
		}
	}
	return dst, nil
}

// AppendMessage appends the UPDATE's full wire encoding (header
// included) to dst and returns the extended slice — the encode twin of
// ParseUpdateInto. It writes every section straight into dst,
// backpatching the three length fields, so a caller reusing dst's
// capacity (e.g. a session marshaling a burst) allocates nothing. On
// error dst is returned truncated to its original length.
func (u *Update) AppendMessage(dst []byte, as4 bool) ([]byte, error) {
	start := len(dst)
	dst = appendHeader(dst, TypeUpdate, 0) // total length backpatched below

	var err error
	wdStart := len(dst)
	dst = append(dst, 0, 0)
	for _, p := range u.Withdrawn {
		if dst, err = appendPrefix(dst, p); err != nil {
			return dst[:start], err
		}
	}
	binary.BigEndian.PutUint16(dst[wdStart:], uint16(len(dst)-wdStart-2))

	atStart := len(dst)
	dst = append(dst, 0, 0)
	if dst, err = appendAttributes(dst, &u.Attrs, as4); err != nil {
		return dst[:start], err
	}
	binary.BigEndian.PutUint16(dst[atStart:], uint16(len(dst)-atStart-2))

	for _, p := range u.NLRI {
		if dst, err = appendPrefix(dst, p); err != nil {
			return dst[:start], err
		}
	}
	msgLen := len(dst) - start
	if msgLen > MaxMessageLen {
		return dst[:start], fmt.Errorf("bgp: UPDATE length %d exceeds maximum %d", msgLen, MaxMessageLen)
	}
	binary.BigEndian.PutUint16(dst[start+MarkerLen:], uint16(msgLen))
	return dst, nil
}

// Marshal encodes the OPEN into a full BGP message. When o.AS4 is set, the
// 4-octet-AS capability is included as an optional parameter and ASTrans
// substitutes for ASNs wider than 16 bits in the fixed field.
func (o *Open) Marshal() ([]byte, error) {
	if !o.BGPID.Is4() {
		return nil, fmt.Errorf("bgp: BGP identifier %v is not IPv4", o.BGPID)
	}
	var opt []byte
	if o.AS4 {
		cap := binary.BigEndian.AppendUint32([]byte{capFourOctetAS, 4}, uint32(o.ASN))
		opt = append(opt, optParamCapability, byte(len(cap)))
		opt = append(opt, cap...)
	}
	wireAS := o.ASN
	if wireAS > 0xFFFF {
		wireAS = ASTrans
	}
	bodyLen := 10 + len(opt)
	out := make([]byte, 0, HeaderLen+bodyLen)
	out = appendHeader(out, TypeOpen, bodyLen)
	out = append(out, o.Version)
	out = binary.BigEndian.AppendUint16(out, uint16(wireAS))
	out = binary.BigEndian.AppendUint16(out, o.HoldTime)
	id := o.BGPID.As4()
	out = append(out, id[:]...)
	out = append(out, byte(len(opt)))
	out = append(out, opt...)
	return out, nil
}

// Marshal encodes the NOTIFICATION into a full BGP message.
func (n *Notification) Marshal() ([]byte, error) {
	bodyLen := 2 + len(n.Data)
	if HeaderLen+bodyLen > MaxMessageLen {
		return nil, fmt.Errorf("bgp: NOTIFICATION too long (%d data bytes)", len(n.Data))
	}
	out := make([]byte, 0, HeaderLen+bodyLen)
	out = appendHeader(out, TypeNotification, bodyLen)
	out = append(out, n.Code, n.Subcode)
	return append(out, n.Data...), nil
}

// Marshal encodes the KEEPALIVE (a bare header).
func (k *Keepalive) Marshal() ([]byte, error) {
	return appendHeader(make([]byte, 0, HeaderLen), TypeKeepalive, 0), nil
}
