package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Decoding errors. Callers match with errors.Is; detail is carried in the
// wrapping message.
var (
	ErrShortMessage = errors.New("bgp: message truncated")
	ErrBadMarker    = errors.New("bgp: bad marker")
	ErrBadLength    = errors.New("bgp: bad message length")
	ErrBadAttribute = errors.New("bgp: malformed path attribute")
	ErrBadPrefix    = errors.New("bgp: malformed prefix")
)

// ParseHeader validates the 19-byte BGP message header and returns the
// message type and the total message length (header included).
func ParseHeader(data []byte) (msgType int, msgLen int, err error) {
	if len(data) < HeaderLen {
		return 0, 0, fmt.Errorf("%w: %d bytes, need %d", ErrShortMessage, len(data), HeaderLen)
	}
	for i := 0; i < MarkerLen; i++ {
		if data[i] != 0xFF {
			return 0, 0, fmt.Errorf("%w: byte %d is %#x", ErrBadMarker, i, data[i])
		}
	}
	msgLen = int(binary.BigEndian.Uint16(data[16:18]))
	msgType = int(data[18])
	if msgLen < HeaderLen || msgLen > MaxMessageLen {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadLength, msgLen)
	}
	if msgType < TypeOpen || msgType > TypeKeepalive {
		return 0, 0, fmt.Errorf("bgp: unknown message type %d", msgType)
	}
	return msgType, msgLen, nil
}

// parsePrefixes decodes a run of RFC 4271 NLRI-encoded prefixes filling
// exactly data.
func parsePrefixes(data []byte) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for len(data) > 0 {
		bits := int(data[0])
		if bits > 32 {
			return nil, fmt.Errorf("%w: length %d bits", ErrBadPrefix, bits)
		}
		nbytes := (bits + 7) / 8
		if len(data) < 1+nbytes {
			return nil, fmt.Errorf("%w: need %d bytes, have %d", ErrBadPrefix, 1+nbytes, len(data))
		}
		var b [4]byte
		copy(b[:], data[1:1+nbytes])
		p, err := netip.AddrFrom4(b).Prefix(bits)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPrefix, err)
		}
		out = append(out, p)
		data = data[1+nbytes:]
	}
	return out, nil
}

func parseASPath(data []byte, as4 bool) (ASPath, error) {
	asLen := 2
	if as4 {
		asLen = 4
	}
	var p ASPath
	for len(data) > 0 {
		if len(data) < 2 {
			return ASPath{}, fmt.Errorf("%w: truncated AS_PATH segment header", ErrBadAttribute)
		}
		segType := int(data[0])
		count := int(data[1])
		if segType != SegmentSet && segType != SegmentSequence {
			return ASPath{}, fmt.Errorf("%w: AS_PATH segment type %d", ErrBadAttribute, segType)
		}
		need := 2 + count*asLen
		if len(data) < need {
			return ASPath{}, fmt.Errorf("%w: AS_PATH segment needs %d bytes, have %d", ErrBadAttribute, need, len(data))
		}
		seg := Segment{Type: segType, ASes: make([]ASN, count)}
		for i := 0; i < count; i++ {
			off := 2 + i*asLen
			if as4 {
				seg.ASes[i] = ASN(binary.BigEndian.Uint32(data[off:]))
			} else {
				seg.ASes[i] = ASN(binary.BigEndian.Uint16(data[off:]))
			}
		}
		p.Segments = append(p.Segments, seg)
		data = data[need:]
	}
	return p, nil
}

// parseAttributes decodes the path-attributes block of an UPDATE.
func parseAttributes(data []byte, as4 bool) (PathAttributes, error) {
	var a PathAttributes
	for len(data) > 0 {
		if len(data) < 3 {
			return a, fmt.Errorf("%w: truncated attribute header", ErrBadAttribute)
		}
		flags := data[0]
		typ := data[1]
		var alen, hdr int
		if flags&flagExtLen != 0 {
			if len(data) < 4 {
				return a, fmt.Errorf("%w: truncated extended length", ErrBadAttribute)
			}
			alen = int(binary.BigEndian.Uint16(data[2:4]))
			hdr = 4
		} else {
			alen = int(data[2])
			hdr = 3
		}
		if len(data) < hdr+alen {
			return a, fmt.Errorf("%w: attribute %d needs %d bytes, have %d", ErrBadAttribute, typ, hdr+alen, len(data))
		}
		val := data[hdr : hdr+alen]
		switch typ {
		case AttrOrigin:
			if alen != 1 || val[0] > OriginIncomplete {
				return a, fmt.Errorf("%w: ORIGIN", ErrBadAttribute)
			}
			a.Origin = int(val[0])
			a.HasOrigin = true
		case AttrASPath:
			p, err := parseASPath(val, as4)
			if err != nil {
				return a, err
			}
			a.ASPath = p
			a.HasASPath = true
		case AttrNextHop:
			if alen != 4 {
				return a, fmt.Errorf("%w: NEXT_HOP length %d", ErrBadAttribute, alen)
			}
			a.NextHop = netip.AddrFrom4([4]byte(val))
		case AttrMED:
			if alen != 4 {
				return a, fmt.Errorf("%w: MED length %d", ErrBadAttribute, alen)
			}
			a.MED = binary.BigEndian.Uint32(val)
			a.HasMED = true
		case AttrLocalPref:
			if alen != 4 {
				return a, fmt.Errorf("%w: LOCAL_PREF length %d", ErrBadAttribute, alen)
			}
			a.LocalPref = binary.BigEndian.Uint32(val)
			a.HasLocalPref = true
		case AttrAtomicAggregate:
			if alen != 0 {
				return a, fmt.Errorf("%w: ATOMIC_AGGREGATE length %d", ErrBadAttribute, alen)
			}
			a.AtomicAggregate = true
		case AttrAggregator:
			want := 6
			if as4 {
				want = 8
			}
			if alen != want {
				return a, fmt.Errorf("%w: AGGREGATOR length %d, want %d", ErrBadAttribute, alen, want)
			}
			var agg Aggregator
			if as4 {
				agg.ASN = ASN(binary.BigEndian.Uint32(val))
				agg.Addr = netip.AddrFrom4([4]byte(val[4:8]))
			} else {
				agg.ASN = ASN(binary.BigEndian.Uint16(val))
				agg.Addr = netip.AddrFrom4([4]byte(val[2:6]))
			}
			a.Aggregator = &agg
		case AttrCommunities:
			if alen%4 != 0 {
				return a, fmt.Errorf("%w: COMMUNITIES length %d", ErrBadAttribute, alen)
			}
			for i := 0; i < alen; i += 4 {
				a.Communities = append(a.Communities, Community(binary.BigEndian.Uint32(val[i:])))
			}
		default:
			// Unknown optional attributes are tolerated (and dropped);
			// unknown well-known attributes are an error per RFC 4271.
			if flags&flagOptional == 0 {
				return a, fmt.Errorf("%w: unrecognised well-known attribute %d", ErrBadAttribute, typ)
			}
		}
		data = data[hdr+alen:]
	}
	return a, nil
}

// ParseUpdate decodes a full UPDATE message (header included). as4 must
// match the encoding negotiated on the session.
func ParseUpdate(data []byte, as4 bool) (*Update, error) {
	msgType, msgLen, err := ParseHeader(data)
	if err != nil {
		return nil, err
	}
	if msgType != TypeUpdate {
		return nil, fmt.Errorf("bgp: message type %d is not UPDATE", msgType)
	}
	if len(data) < msgLen {
		return nil, fmt.Errorf("%w: have %d of %d bytes", ErrShortMessage, len(data), msgLen)
	}
	body := data[HeaderLen:msgLen]
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: no withdrawn-routes length", ErrShortMessage)
	}
	wlen := int(binary.BigEndian.Uint16(body[:2]))
	if len(body) < 2+wlen+2 {
		return nil, fmt.Errorf("%w: withdrawn routes overflow body", ErrShortMessage)
	}
	u := &Update{}
	u.Withdrawn, err = parsePrefixes(body[2 : 2+wlen])
	if err != nil {
		return nil, err
	}
	alen := int(binary.BigEndian.Uint16(body[2+wlen : 4+wlen]))
	if len(body) < 4+wlen+alen {
		return nil, fmt.Errorf("%w: attributes overflow body", ErrShortMessage)
	}
	u.Attrs, err = parseAttributes(body[4+wlen:4+wlen+alen], as4)
	if err != nil {
		return nil, err
	}
	u.NLRI, err = parsePrefixes(body[4+wlen+alen:])
	if err != nil {
		return nil, err
	}
	return u, nil
}

// ParseOpen decodes a full OPEN message (header included).
func ParseOpen(data []byte) (*Open, error) {
	msgType, msgLen, err := ParseHeader(data)
	if err != nil {
		return nil, err
	}
	if msgType != TypeOpen {
		return nil, fmt.Errorf("bgp: message type %d is not OPEN", msgType)
	}
	if len(data) < msgLen || msgLen < HeaderLen+10 {
		return nil, fmt.Errorf("%w: OPEN body", ErrShortMessage)
	}
	body := data[HeaderLen:msgLen]
	o := &Open{
		Version:  body[0],
		ASN:      ASN(binary.BigEndian.Uint16(body[1:3])),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		BGPID:    netip.AddrFrom4([4]byte(body[5:9])),
	}
	optLen := int(body[9])
	if len(body) < 10+optLen {
		return nil, fmt.Errorf("%w: optional parameters", ErrShortMessage)
	}
	opt := body[10 : 10+optLen]
	for len(opt) > 0 {
		if len(opt) < 2 {
			return nil, fmt.Errorf("%w: truncated optional parameter", ErrShortMessage)
		}
		ptype, plen := opt[0], int(opt[1])
		if len(opt) < 2+plen {
			return nil, fmt.Errorf("%w: optional parameter overflows", ErrShortMessage)
		}
		if ptype == optParamCapability {
			caps := opt[2 : 2+plen]
			for len(caps) >= 2 {
				code, clen := caps[0], int(caps[1])
				if len(caps) < 2+clen {
					break
				}
				if code == capFourOctetAS && clen == 4 {
					o.AS4 = true
					o.ASN = ASN(binary.BigEndian.Uint32(caps[2:6]))
				}
				caps = caps[2+clen:]
			}
		}
		opt = opt[2+plen:]
	}
	return o, nil
}

// ParseNotification decodes a full NOTIFICATION message (header included).
func ParseNotification(data []byte) (*Notification, error) {
	msgType, msgLen, err := ParseHeader(data)
	if err != nil {
		return nil, err
	}
	if msgType != TypeNotification {
		return nil, fmt.Errorf("bgp: message type %d is not NOTIFICATION", msgType)
	}
	if len(data) < msgLen || msgLen < HeaderLen+2 {
		return nil, fmt.Errorf("%w: NOTIFICATION body", ErrShortMessage)
	}
	body := data[HeaderLen:msgLen]
	n := &Notification{Code: body[0], Subcode: body[1]}
	if len(body) > 2 {
		n.Data = append([]byte(nil), body[2:]...)
	}
	return n, nil
}
