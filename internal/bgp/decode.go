package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Decoding errors. Callers match with errors.Is; detail is carried in the
// wrapping message.
var (
	ErrShortMessage = errors.New("bgp: message truncated")
	ErrBadMarker    = errors.New("bgp: bad marker")
	ErrBadLength    = errors.New("bgp: bad message length")
	ErrBadAttribute = errors.New("bgp: malformed path attribute")
	ErrBadPrefix    = errors.New("bgp: malformed prefix")
)

// ParseHeader validates the 19-byte BGP message header and returns the
// message type and the total message length (header included).
func ParseHeader(data []byte) (msgType int, msgLen int, err error) {
	if len(data) < HeaderLen {
		return 0, 0, fmt.Errorf("%w: %d bytes, need %d", ErrShortMessage, len(data), HeaderLen)
	}
	for i := 0; i < MarkerLen; i++ {
		if data[i] != 0xFF {
			return 0, 0, fmt.Errorf("%w: byte %d is %#x", ErrBadMarker, i, data[i])
		}
	}
	msgLen = int(binary.BigEndian.Uint16(data[16:18]))
	msgType = int(data[18])
	if msgLen < HeaderLen || msgLen > MaxMessageLen {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadLength, msgLen)
	}
	if msgType < TypeOpen || msgType > TypeKeepalive {
		return 0, 0, fmt.Errorf("bgp: unknown message type %d", msgType)
	}
	return msgType, msgLen, nil
}

// parsePrefixes decodes a run of RFC 4271 NLRI-encoded prefixes filling
// exactly data.
func parsePrefixes(data []byte) ([]netip.Prefix, error) {
	return appendPrefixes(nil, data)
}

// appendPrefixes decodes prefixes from data onto dst, reusing dst's
// capacity — the allocation-lean entry point batched readers decode
// through.
func appendPrefixes(dst []netip.Prefix, data []byte) ([]netip.Prefix, error) {
	for len(data) > 0 {
		bits := int(data[0])
		if bits > 32 {
			return dst, fmt.Errorf("%w: length %d bits", ErrBadPrefix, bits)
		}
		nbytes := (bits + 7) / 8
		if len(data) < 1+nbytes {
			return dst, fmt.Errorf("%w: need %d bytes, have %d", ErrBadPrefix, 1+nbytes, len(data))
		}
		var b [4]byte
		copy(b[:], data[1:1+nbytes])
		p, err := netip.AddrFrom4(b).Prefix(bits)
		if err != nil {
			return dst, fmt.Errorf("%w: %v", ErrBadPrefix, err)
		}
		dst = append(dst, p)
		data = data[1+nbytes:]
	}
	return dst, nil
}

func parseASPath(data []byte, as4 bool) (ASPath, error) {
	var p ASPath
	if err := decodeASPathInto(&p, data, as4); err != nil {
		return ASPath{}, err
	}
	return p, nil
}

// decodeASPathInto decodes AS_PATH segments from data into p, reusing the
// capacity of p.Segments and of each retained segment's ASes slice.
// p must arrive with len(p.Segments) == 0 (capacity is preserved).
func decodeASPathInto(p *ASPath, data []byte, as4 bool) error {
	asLen := 2
	if as4 {
		asLen = 4
	}
	for len(data) > 0 {
		if len(data) < 2 {
			return fmt.Errorf("%w: truncated AS_PATH segment header", ErrBadAttribute)
		}
		segType := int(data[0])
		count := int(data[1])
		if segType != SegmentSet && segType != SegmentSequence {
			return fmt.Errorf("%w: AS_PATH segment type %d", ErrBadAttribute, segType)
		}
		need := 2 + count*asLen
		if len(data) < need {
			return fmt.Errorf("%w: AS_PATH segment needs %d bytes, have %d", ErrBadAttribute, need, len(data))
		}
		// Re-extend into retained capacity so a reused segment keeps its
		// ASes allocation.
		n := len(p.Segments)
		if cap(p.Segments) > n {
			p.Segments = p.Segments[:n+1]
		} else {
			p.Segments = append(p.Segments, Segment{})
		}
		seg := &p.Segments[n]
		seg.Type = segType
		seg.ASes = seg.ASes[:0]
		for i := 0; i < count; i++ {
			off := 2 + i*asLen
			if as4 {
				seg.ASes = append(seg.ASes, ASN(binary.BigEndian.Uint32(data[off:])))
			} else {
				seg.ASes = append(seg.ASes, ASN(binary.BigEndian.Uint16(data[off:])))
			}
		}
		data = data[need:]
	}
	return nil
}

// parseAttributes decodes the path-attributes block of an UPDATE.
func parseAttributes(data []byte, as4 bool) (PathAttributes, error) {
	var a PathAttributes
	if err := parseAttributesInto(data, as4, &a); err != nil {
		return a, err
	}
	return a, nil
}

// parseAttributesInto decodes the path-attributes block of an UPDATE into
// a, which must arrive reset (see resetForParse) so retained slice
// capacity is reused instead of reallocated.
func parseAttributesInto(data []byte, as4 bool, a *PathAttributes) error {
	for len(data) > 0 {
		if len(data) < 3 {
			return fmt.Errorf("%w: truncated attribute header", ErrBadAttribute)
		}
		flags := data[0]
		typ := data[1]
		var alen, hdr int
		if flags&flagExtLen != 0 {
			if len(data) < 4 {
				return fmt.Errorf("%w: truncated extended length", ErrBadAttribute)
			}
			alen = int(binary.BigEndian.Uint16(data[2:4]))
			hdr = 4
		} else {
			alen = int(data[2])
			hdr = 3
		}
		if len(data) < hdr+alen {
			return fmt.Errorf("%w: attribute %d needs %d bytes, have %d", ErrBadAttribute, typ, hdr+alen, len(data))
		}
		val := data[hdr : hdr+alen]
		switch typ {
		case AttrOrigin:
			if alen != 1 || val[0] > OriginIncomplete {
				return fmt.Errorf("%w: ORIGIN", ErrBadAttribute)
			}
			a.Origin = int(val[0])
			a.HasOrigin = true
		case AttrASPath:
			if err := decodeASPathInto(&a.ASPath, val, as4); err != nil {
				return err
			}
			a.HasASPath = true
		case AttrNextHop:
			if alen != 4 {
				return fmt.Errorf("%w: NEXT_HOP length %d", ErrBadAttribute, alen)
			}
			a.NextHop = netip.AddrFrom4([4]byte(val))
		case AttrMED:
			if alen != 4 {
				return fmt.Errorf("%w: MED length %d", ErrBadAttribute, alen)
			}
			a.MED = binary.BigEndian.Uint32(val)
			a.HasMED = true
		case AttrLocalPref:
			if alen != 4 {
				return fmt.Errorf("%w: LOCAL_PREF length %d", ErrBadAttribute, alen)
			}
			a.LocalPref = binary.BigEndian.Uint32(val)
			a.HasLocalPref = true
		case AttrAtomicAggregate:
			if alen != 0 {
				return fmt.Errorf("%w: ATOMIC_AGGREGATE length %d", ErrBadAttribute, alen)
			}
			a.AtomicAggregate = true
		case AttrAggregator:
			want := 6
			if as4 {
				want = 8
			}
			if alen != want {
				return fmt.Errorf("%w: AGGREGATOR length %d, want %d", ErrBadAttribute, alen, want)
			}
			var agg Aggregator
			if as4 {
				agg.ASN = ASN(binary.BigEndian.Uint32(val))
				agg.Addr = netip.AddrFrom4([4]byte(val[4:8]))
			} else {
				agg.ASN = ASN(binary.BigEndian.Uint16(val))
				agg.Addr = netip.AddrFrom4([4]byte(val[2:6]))
			}
			a.Aggregator = &agg
		case AttrCommunities:
			if alen%4 != 0 {
				return fmt.Errorf("%w: COMMUNITIES length %d", ErrBadAttribute, alen)
			}
			for i := 0; i < alen; i += 4 {
				a.Communities = append(a.Communities, Community(binary.BigEndian.Uint32(val[i:])))
			}
		default:
			// Unknown optional attributes are tolerated (and dropped);
			// unknown well-known attributes are an error per RFC 4271.
			if flags&flagOptional == 0 {
				return fmt.Errorf("%w: unrecognised well-known attribute %d", ErrBadAttribute, typ)
			}
		}
		data = data[hdr+alen:]
	}
	return nil
}

// ParseUpdate decodes a full UPDATE message (header included). as4 must
// match the encoding negotiated on the session.
func ParseUpdate(data []byte, as4 bool) (*Update, error) {
	u := &Update{}
	if err := ParseUpdateInto(data, as4, u); err != nil {
		return nil, err
	}
	return u, nil
}

// resetForParse clears u for redecoding while retaining the capacity of
// its slices (withdrawn routes, NLRI, AS_PATH segments and their ASes,
// communities).
func (u *Update) resetForParse() {
	u.Withdrawn = u.Withdrawn[:0]
	u.NLRI = u.NLRI[:0]
	segs := u.Attrs.ASPath.Segments[:0]
	comms := u.Attrs.Communities[:0]
	u.Attrs = PathAttributes{}
	u.Attrs.ASPath.Segments = segs
	u.Attrs.Communities = comms
}

// ParseUpdateInto decodes a full UPDATE message (header included) into u,
// reusing u's retained slice capacity instead of allocating — the
// zero-copy entry point for batched session readers. The previous
// contents of u are invalidated; callers that keep path data across
// calls must copy it out first. Nothing in u aliases data after return,
// so data may be a reusable read buffer.
func ParseUpdateInto(data []byte, as4 bool, u *Update) error {
	msgType, msgLen, err := ParseHeader(data)
	if err != nil {
		return err
	}
	if msgType != TypeUpdate {
		return fmt.Errorf("bgp: message type %d is not UPDATE", msgType)
	}
	if len(data) < msgLen {
		return fmt.Errorf("%w: have %d of %d bytes", ErrShortMessage, len(data), msgLen)
	}
	body := data[HeaderLen:msgLen]
	if len(body) < 2 {
		return fmt.Errorf("%w: no withdrawn-routes length", ErrShortMessage)
	}
	wlen := int(binary.BigEndian.Uint16(body[:2]))
	if len(body) < 2+wlen+2 {
		return fmt.Errorf("%w: withdrawn routes overflow body", ErrShortMessage)
	}
	u.resetForParse()
	u.Withdrawn, err = appendPrefixes(u.Withdrawn, body[2:2+wlen])
	if err != nil {
		return err
	}
	alen := int(binary.BigEndian.Uint16(body[2+wlen : 4+wlen]))
	if len(body) < 4+wlen+alen {
		return fmt.Errorf("%w: attributes overflow body", ErrShortMessage)
	}
	if err := parseAttributesInto(body[4+wlen:4+wlen+alen], as4, &u.Attrs); err != nil {
		return err
	}
	u.NLRI, err = appendPrefixes(u.NLRI, body[4+wlen+alen:])
	return err
}

// ParseOpen decodes a full OPEN message (header included).
func ParseOpen(data []byte) (*Open, error) {
	msgType, msgLen, err := ParseHeader(data)
	if err != nil {
		return nil, err
	}
	if msgType != TypeOpen {
		return nil, fmt.Errorf("bgp: message type %d is not OPEN", msgType)
	}
	if len(data) < msgLen || msgLen < HeaderLen+10 {
		return nil, fmt.Errorf("%w: OPEN body", ErrShortMessage)
	}
	body := data[HeaderLen:msgLen]
	o := &Open{
		Version:  body[0],
		ASN:      ASN(binary.BigEndian.Uint16(body[1:3])),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		BGPID:    netip.AddrFrom4([4]byte(body[5:9])),
	}
	optLen := int(body[9])
	if len(body) < 10+optLen {
		return nil, fmt.Errorf("%w: optional parameters", ErrShortMessage)
	}
	opt := body[10 : 10+optLen]
	for len(opt) > 0 {
		if len(opt) < 2 {
			return nil, fmt.Errorf("%w: truncated optional parameter", ErrShortMessage)
		}
		ptype, plen := opt[0], int(opt[1])
		if len(opt) < 2+plen {
			return nil, fmt.Errorf("%w: optional parameter overflows", ErrShortMessage)
		}
		if ptype == optParamCapability {
			caps := opt[2 : 2+plen]
			for len(caps) >= 2 {
				code, clen := caps[0], int(caps[1])
				if len(caps) < 2+clen {
					break
				}
				if code == capFourOctetAS && clen == 4 {
					o.AS4 = true
					o.ASN = ASN(binary.BigEndian.Uint32(caps[2:6]))
				}
				caps = caps[2+clen:]
			}
		}
		opt = opt[2+plen:]
	}
	return o, nil
}

// ParseNotification decodes a full NOTIFICATION message (header included).
func ParseNotification(data []byte) (*Notification, error) {
	msgType, msgLen, err := ParseHeader(data)
	if err != nil {
		return nil, err
	}
	if msgType != TypeNotification {
		return nil, fmt.Errorf("bgp: message type %d is not NOTIFICATION", msgType)
	}
	if len(data) < msgLen || msgLen < HeaderLen+2 {
		return nil, fmt.Errorf("%w: NOTIFICATION body", ErrShortMessage)
	}
	body := data[HeaderLen:msgLen]
	n := &Notification{Code: body[0], Subcode: body[1]}
	if len(body) > 2 {
		n.Data = append([]byte(nil), body[2:]...)
	}
	return n, nil
}
