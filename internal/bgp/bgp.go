// Package bgp implements the BGP-4 message model and wire format
// (RFC 4271), including 4-octet AS numbers (RFC 6793) and the COMMUNITIES
// attribute (RFC 1997).
//
// The package provides value types for the four BGP message kinds plus
// binary marshalling that round-trips bit-for-bit, which is what the MRT
// archive layer (internal/mrt) and the update-stream generator
// (internal/bgpsim) build on. Only the features the paper's analyses need
// are implemented, but those are implemented fully: UPDATE messages with
// withdrawn routes, the mandatory path attributes, AS_PATH with both
// AS_SEQUENCE and AS_SET segments, and communities (used by the
// community-scoped stealth hijack of §3.2).
package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// ASN is a 4-octet autonomous system number (RFC 6793).
type ASN uint32

// String renders the ASN in the canonical "ASxxx" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Message type codes (RFC 4271 §4.1).
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Origin attribute values (RFC 4271 §5.1.1).
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// Path attribute type codes (RFC 4271 §5, RFC 1997).
const (
	AttrOrigin          = 1
	AttrASPath          = 2
	AttrNextHop         = 3
	AttrMED             = 4
	AttrLocalPref       = 5
	AttrAtomicAggregate = 6
	AttrAggregator      = 7
	AttrCommunities     = 8
)

// AS_PATH segment types (RFC 4271 §4.3).
const (
	SegmentSet      = 1
	SegmentSequence = 2
)

// Well-known communities (RFC 1997).
const (
	CommunityNoExport          Community = 0xFFFFFF01
	CommunityNoAdvertise       Community = 0xFFFFFF02
	CommunityNoExportSubconfed Community = 0xFFFFFF03
)

// Community is a 32-bit BGP community value. The conventional rendering is
// "high:low" with the attacker-relevant scoping semantics of §3.2.
type Community uint32

// String renders the community as "high:low", or the well-known name.
func (c Community) String() string {
	switch c {
	case CommunityNoExport:
		return "no-export"
	case CommunityNoAdvertise:
		return "no-advertise"
	case CommunityNoExportSubconfed:
		return "no-export-subconfed"
	}
	return fmt.Sprintf("%d:%d", uint32(c)>>16, uint32(c)&0xFFFF)
}

// MakeCommunity builds a community from its conventional high:low halves.
func MakeCommunity(high, low uint16) Community {
	return Community(uint32(high)<<16 | uint32(low))
}

// Segment is one AS_PATH segment.
type Segment struct {
	Type int // SegmentSet or SegmentSequence
	ASes []ASN
}

// ASPath is an ordered list of AS_PATH segments.
type ASPath struct {
	Segments []Segment
}

// Sequence builds an ASPath holding a single AS_SEQUENCE segment, the
// overwhelmingly common case.
func Sequence(ases ...ASN) ASPath {
	return ASPath{Segments: []Segment{{Type: SegmentSequence, ASes: append([]ASN(nil), ases...)}}}
}

// Length returns the AS_PATH length as used by the BGP decision process:
// each AS in an AS_SEQUENCE counts 1, each AS_SET counts 1 in total
// (RFC 4271 §9.1.2.2).
func (p ASPath) Length() int {
	n := 0
	for _, s := range p.Segments {
		switch s.Type {
		case SegmentSequence:
			n += len(s.ASes)
		case SegmentSet:
			if len(s.ASes) > 0 {
				n++
			}
		}
	}
	return n
}

// ASes returns the set of distinct ASNs appearing anywhere in the path, in
// ascending order. This is the "set of ASes crossed" the paper uses to
// define a path change.
func (p ASPath) ASes() []ASN {
	seen := make(map[ASN]bool)
	for _, s := range p.Segments {
		for _, a := range s.ASes {
			seen[a] = true
		}
	}
	out := make([]ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Origin returns the origin AS (the last AS of the last segment) and true,
// or 0 and false for an empty path.
func (p ASPath) Origin() (ASN, bool) {
	for i := len(p.Segments) - 1; i >= 0; i-- {
		if n := len(p.Segments[i].ASes); n > 0 {
			return p.Segments[i].ASes[n-1], true
		}
	}
	return 0, false
}

// First returns the neighbor AS (the first AS of the first segment) and
// true, or 0 and false for an empty path.
func (p ASPath) First() (ASN, bool) {
	for _, s := range p.Segments {
		if len(s.ASes) > 0 {
			return s.ASes[0], true
		}
	}
	return 0, false
}

// Contains reports whether asn appears anywhere in the path.
func (p ASPath) Contains(asn ASN) bool {
	for _, s := range p.Segments {
		for _, a := range s.ASes {
			if a == asn {
				return true
			}
		}
	}
	return false
}

// HasLoop reports whether any ASN appears more than once across the whole
// path — the loop-prevention check every BGP speaker applies on import.
func (p ASPath) HasLoop() bool {
	seen := make(map[ASN]bool)
	for _, s := range p.Segments {
		for _, a := range s.ASes {
			if seen[a] {
				return true
			}
			seen[a] = true
		}
	}
	return false
}

// Prepend returns a new path with asn prepended as an AS_SEQUENCE element,
// as a speaker does when propagating a route to an eBGP neighbor. The
// receiver is not modified.
func (p ASPath) Prepend(asn ASN) ASPath {
	out := ASPath{Segments: make([]Segment, 0, len(p.Segments)+1)}
	if len(p.Segments) > 0 && p.Segments[0].Type == SegmentSequence {
		first := Segment{Type: SegmentSequence, ASes: make([]ASN, 0, len(p.Segments[0].ASes)+1)}
		first.ASes = append(first.ASes, asn)
		first.ASes = append(first.ASes, p.Segments[0].ASes...)
		out.Segments = append(out.Segments, first)
		for _, s := range p.Segments[1:] {
			out.Segments = append(out.Segments, cloneSegment(s))
		}
		return out
	}
	out.Segments = append(out.Segments, Segment{Type: SegmentSequence, ASes: []ASN{asn}})
	for _, s := range p.Segments {
		out.Segments = append(out.Segments, cloneSegment(s))
	}
	return out
}

func cloneSegment(s Segment) Segment {
	return Segment{Type: s.Type, ASes: append([]ASN(nil), s.ASes...)}
}

// Equal reports whether two paths are identical segment by segment.
func (p ASPath) Equal(q ASPath) bool {
	if len(p.Segments) != len(q.Segments) {
		return false
	}
	for i := range p.Segments {
		a, b := p.Segments[i], q.Segments[i]
		if a.Type != b.Type || len(a.ASes) != len(b.ASes) {
			return false
		}
		for j := range a.ASes {
			if a.ASes[j] != b.ASes[j] {
				return false
			}
		}
	}
	return true
}

// SameASSet reports whether two paths cross the same set of ASes. The
// paper defines a path change as a change in this set between two
// subsequent updates for the same prefix.
func (p ASPath) SameASSet(q ASPath) bool {
	a, b := p.ASes(), q.ASes()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the path in the usual "1 2 {3,4}" notation.
func (p ASPath) String() string {
	var b strings.Builder
	for i, s := range p.Segments {
		if i > 0 {
			b.WriteByte(' ')
		}
		if s.Type == SegmentSet {
			b.WriteByte('{')
			for j, a := range s.ASes {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%d", uint32(a))
			}
			b.WriteByte('}')
			continue
		}
		for j, a := range s.ASes {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", uint32(a))
		}
	}
	return b.String()
}

// Aggregator is the AGGREGATOR path attribute payload.
type Aggregator struct {
	ASN  ASN
	Addr netip.Addr
}

// PathAttributes carries the recognised path attributes of an UPDATE.
// Optional attributes use presence flags rather than pointers so the zero
// value is useful.
type PathAttributes struct {
	Origin          int // OriginIGP/EGP/Incomplete; valid when HasOrigin
	HasOrigin       bool
	ASPath          ASPath
	HasASPath       bool
	NextHop         netip.Addr // valid when NextHop.IsValid()
	MED             uint32
	HasMED          bool
	LocalPref       uint32
	HasLocalPref    bool
	AtomicAggregate bool
	Aggregator      *Aggregator
	Communities     []Community
}

// Open is a BGP OPEN message (RFC 4271 §4.2). The AS field carries
// AS_TRANS (23456) on the wire when the real ASN does not fit 16 bits; the
// full 4-octet ASN is negotiated via capability 65, which this package
// models with the AS4 field.
type Open struct {
	Version  uint8
	ASN      ASN
	HoldTime uint16
	BGPID    netip.Addr
	AS4      bool // advertise 4-octet-AS capability
}

// Update is a BGP UPDATE message (RFC 4271 §4.3).
type Update struct {
	Withdrawn []netip.Prefix
	Attrs     PathAttributes
	NLRI      []netip.Prefix
}

// Notification is a BGP NOTIFICATION message (RFC 4271 §4.5).
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Notification error codes (RFC 4271 §4.5) used by the session machinery.
const (
	NotifMessageHeaderError = 1
	NotifOpenMessageError   = 2
	NotifUpdateMessageError = 3
	NotifHoldTimerExpired   = 4
	NotifFSMError           = 5
	NotifCease              = 6
)

// Keepalive is a BGP KEEPALIVE message: a bare header.
type Keepalive struct{}

// AnnouncesOrWithdraws reports whether the update carries any routing
// information at all (an UPDATE with neither NLRI nor withdrawals is an
// End-of-RIB marker in practice).
func (u *Update) AnnouncesOrWithdraws() bool {
	return len(u.NLRI) > 0 || len(u.Withdrawn) > 0
}
