package bgp

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func pfx(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func addr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestASNString(t *testing.T) {
	if got := ASN(65000).String(); got != "AS65000" {
		t.Fatalf("got %q", got)
	}
}

func TestCommunityString(t *testing.T) {
	if got := MakeCommunity(64500, 120).String(); got != "64500:120" {
		t.Fatalf("got %q", got)
	}
	if got := CommunityNoExport.String(); got != "no-export" {
		t.Fatalf("got %q", got)
	}
}

func TestASPathLength(t *testing.T) {
	p := ASPath{Segments: []Segment{
		{Type: SegmentSequence, ASes: []ASN{1, 2, 3}},
		{Type: SegmentSet, ASes: []ASN{4, 5}},
	}}
	if p.Length() != 4 {
		t.Fatalf("Length = %d, want 4 (AS_SET counts 1)", p.Length())
	}
	if Sequence(7, 8).Length() != 2 {
		t.Fatal("Sequence length wrong")
	}
}

func TestASPathASesSortedDistinct(t *testing.T) {
	p := ASPath{Segments: []Segment{
		{Type: SegmentSequence, ASes: []ASN{30, 10, 30}},
		{Type: SegmentSet, ASes: []ASN{20}},
	}}
	got := p.ASes()
	want := []ASN{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestASPathOriginFirst(t *testing.T) {
	p := Sequence(100, 200, 300)
	if o, ok := p.Origin(); !ok || o != 300 {
		t.Fatalf("Origin = %v %v", o, ok)
	}
	if f, ok := p.First(); !ok || f != 100 {
		t.Fatalf("First = %v %v", f, ok)
	}
	var empty ASPath
	if _, ok := empty.Origin(); ok {
		t.Fatal("empty path has origin")
	}
	if _, ok := empty.First(); ok {
		t.Fatal("empty path has first")
	}
}

func TestASPathPrepend(t *testing.T) {
	p := Sequence(2, 3)
	q := p.Prepend(1)
	if q.String() != "1 2 3" {
		t.Fatalf("q = %q", q.String())
	}
	if p.String() != "2 3" {
		t.Fatalf("original mutated: %q", p.String())
	}
	// Prepend to a path starting with an AS_SET creates a new segment.
	setFirst := ASPath{Segments: []Segment{{Type: SegmentSet, ASes: []ASN{9}}}}
	r := setFirst.Prepend(1)
	if len(r.Segments) != 2 || r.Segments[0].Type != SegmentSequence {
		t.Fatalf("prepend to set-first: %v", r)
	}
}

func TestASPathHasLoop(t *testing.T) {
	if Sequence(1, 2, 3).HasLoop() {
		t.Fatal("false positive")
	}
	if !Sequence(1, 2, 1).HasLoop() {
		t.Fatal("false negative")
	}
}

func TestASPathContains(t *testing.T) {
	p := Sequence(10, 20)
	if !p.Contains(20) || p.Contains(30) {
		t.Fatal("Contains wrong")
	}
}

func TestASPathEqualAndSameASSet(t *testing.T) {
	a := Sequence(1, 2, 3)
	b := Sequence(3, 2, 1)
	if a.Equal(b) {
		t.Fatal("Equal should be order-sensitive")
	}
	if !a.SameASSet(b) {
		t.Fatal("SameASSet should be order-insensitive")
	}
	c := Sequence(1, 2)
	if a.SameASSet(c) {
		t.Fatal("different sets reported same")
	}
}

func TestASPathString(t *testing.T) {
	p := ASPath{Segments: []Segment{
		{Type: SegmentSequence, ASes: []ASN{1, 2}},
		{Type: SegmentSet, ASes: []ASN{3, 4}},
	}}
	if got := p.String(); got != "1 2 {3,4}" {
		t.Fatalf("String = %q", got)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := &Update{
		Withdrawn: []netip.Prefix{pfx(t, "198.51.100.0/24")},
		Attrs: PathAttributes{
			Origin:    OriginIGP,
			HasOrigin: true,
			ASPath:    Sequence(64500, 64501, 3320),
			HasASPath: true,
			NextHop:   addr(t, "192.0.2.1"),
			MED:       50,
			HasMED:    true,
			LocalPref: 120, HasLocalPref: true,
			AtomicAggregate: true,
			Aggregator:      &Aggregator{ASN: 64500, Addr: addr(t, "192.0.2.9")},
			Communities:     []Community{MakeCommunity(64500, 1), CommunityNoExport},
		},
		NLRI: []netip.Prefix{pfx(t, "203.0.113.0/24"), pfx(t, "10.0.0.0/8")},
	}
	for _, as4 := range []bool{true, false} {
		raw, err := u.Marshal(as4)
		if err != nil {
			t.Fatalf("as4=%v: %v", as4, err)
		}
		got, err := ParseUpdate(raw, as4)
		if err != nil {
			t.Fatalf("as4=%v: %v", as4, err)
		}
		if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
			t.Fatalf("withdrawn = %v", got.Withdrawn)
		}
		if !got.Attrs.ASPath.Equal(u.Attrs.ASPath) {
			t.Fatalf("aspath = %v, want %v", got.Attrs.ASPath, u.Attrs.ASPath)
		}
		if got.Attrs.NextHop != u.Attrs.NextHop || !got.Attrs.HasMED || got.Attrs.MED != 50 ||
			!got.Attrs.HasLocalPref || got.Attrs.LocalPref != 120 || !got.Attrs.AtomicAggregate {
			t.Fatalf("attrs = %+v", got.Attrs)
		}
		if got.Attrs.Aggregator == nil || got.Attrs.Aggregator.ASN != 64500 {
			t.Fatalf("aggregator = %+v", got.Attrs.Aggregator)
		}
		if len(got.Attrs.Communities) != 2 || got.Attrs.Communities[1] != CommunityNoExport {
			t.Fatalf("communities = %v", got.Attrs.Communities)
		}
		if len(got.NLRI) != 2 || got.NLRI[0] != u.NLRI[0] || got.NLRI[1] != u.NLRI[1] {
			t.Fatalf("nlri = %v", got.NLRI)
		}
	}
}

func TestUpdateWideASNNeedsAS4(t *testing.T) {
	u := &Update{
		Attrs: PathAttributes{
			HasOrigin: true, Origin: OriginIGP,
			ASPath: Sequence(400000), HasASPath: true,
			NextHop: netip.AddrFrom4([4]byte{192, 0, 2, 1}),
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")},
	}
	raw, err := u.Marshal(false) // 2-byte encoding
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseUpdate(raw, false)
	if err != nil {
		t.Fatal(err)
	}
	if o, _ := got.Attrs.ASPath.Origin(); o != ASTrans {
		t.Fatalf("2-byte encoding of AS400000 = %v, want AS_TRANS", o)
	}
	raw4, err := u.Marshal(true)
	if err != nil {
		t.Fatal(err)
	}
	got4, err := ParseUpdate(raw4, true)
	if err != nil {
		t.Fatal(err)
	}
	if o, _ := got4.Attrs.ASPath.Origin(); o != 400000 {
		t.Fatalf("4-byte encoding = %v, want AS400000", o)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{Version: 4, ASN: 3320, HoldTime: 90, BGPID: addr(t, "10.0.0.1")}
	raw, err := o.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseOpen(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 4 || got.ASN != 3320 || got.HoldTime != 90 || got.BGPID != o.BGPID || got.AS4 {
		t.Fatalf("got %+v", got)
	}
}

func TestOpenAS4Capability(t *testing.T) {
	o := &Open{Version: 4, ASN: 400000, HoldTime: 180, BGPID: addr(t, "10.0.0.2"), AS4: true}
	raw, err := o.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseOpen(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AS4 || got.ASN != 400000 {
		t.Fatalf("got %+v, want AS4 with ASN 400000", got)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: NotifCease, Subcode: 2, Data: []byte{1, 2, 3}}
	raw, err := n.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseNotification(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != NotifCease || got.Subcode != 2 || len(got.Data) != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestKeepaliveMarshalAndHeader(t *testing.T) {
	k := &Keepalive{}
	raw, err := k.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	typ, n, err := ParseHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeKeepalive || n != HeaderLen {
		t.Fatalf("typ=%d n=%d", typ, n)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, _, err := ParseHeader(make([]byte, 5)); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("short: %v", err)
	}
	bad := make([]byte, HeaderLen)
	if _, _, err := ParseHeader(bad); !errors.Is(err, ErrBadMarker) {
		t.Fatalf("marker: %v", err)
	}
	k, _ := (&Keepalive{}).Marshal()
	k[16], k[17] = 0, 1 // length 1 < 19
	if _, _, err := ParseHeader(k); !errors.Is(err, ErrBadLength) {
		t.Fatalf("length: %v", err)
	}
}

func TestParseUpdateWrongType(t *testing.T) {
	k, _ := (&Keepalive{}).Marshal()
	if _, err := ParseUpdate(k, true); err == nil {
		t.Fatal("expected type error")
	}
}

func TestParseUpdateTruncatedAttrs(t *testing.T) {
	u := &Update{
		Attrs: PathAttributes{HasOrigin: true, Origin: OriginIGP, HasASPath: true,
			ASPath: Sequence(1, 2), NextHop: netip.AddrFrom4([4]byte{1, 2, 3, 4})},
		NLRI: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	}
	raw, err := u.Marshal(true)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes from the middle: truncate the message and fix length.
	cut := raw[:len(raw)-3]
	cut[16] = byte(len(cut) >> 8)
	cut[17] = byte(len(cut))
	if _, err := ParseUpdate(cut, true); err == nil {
		t.Fatal("expected error for truncated UPDATE")
	}
}

func TestParseUpdateBadPrefixLen(t *testing.T) {
	u := &Update{NLRI: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}}
	raw, _ := u.Marshal(true)
	// NLRI starts after header + 2 (wlen=0) + 2 (alen=0): set bits=33.
	raw[HeaderLen+4] = 33
	if _, err := ParseUpdate(raw, true); !errors.Is(err, ErrBadPrefix) {
		t.Fatalf("err = %v, want ErrBadPrefix", err)
	}
}

func TestUnknownWellKnownAttributeRejected(t *testing.T) {
	u := &Update{NLRI: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}}
	raw, _ := u.Marshal(true)
	// Splice in a bogus well-known attribute (flags 0x40, type 200, len 0)
	// by rebuilding the message body.
	body := []byte{0, 0, 0, 3, 0x40, 200, 0, 8, 10}
	msg := appendHeader(nil, TypeUpdate, len(body))
	msg = append(msg, body...)
	_ = raw
	if _, err := ParseUpdate(msg, true); !errors.Is(err, ErrBadAttribute) {
		t.Fatalf("err = %v, want ErrBadAttribute", err)
	}
}

func TestUnknownOptionalAttributeTolerated(t *testing.T) {
	body := []byte{0, 0, 0, 3, 0x80, 200, 0, 8, 10}
	msg := appendHeader(nil, TypeUpdate, len(body))
	msg = append(msg, body...)
	got, err := ParseUpdate(msg, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NLRI) != 1 {
		t.Fatalf("NLRI = %v", got.NLRI)
	}
}

func TestAnnouncesOrWithdraws(t *testing.T) {
	if (&Update{}).AnnouncesOrWithdraws() {
		t.Fatal("empty update should be End-of-RIB")
	}
	if !(&Update{NLRI: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}}).AnnouncesOrWithdraws() {
		t.Fatal("announce not detected")
	}
}

// randomUpdate builds a structurally valid random UPDATE for round-trip
// property testing.
func randomUpdate(rng *rand.Rand, as4 bool) *Update {
	randPrefix := func() netip.Prefix {
		a := netip.AddrFrom4([4]byte{byte(1 + rng.Intn(223)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
		p, _ := a.Prefix(8 + rng.Intn(25))
		return p
	}
	randASN := func() ASN {
		if as4 && rng.Intn(4) == 0 {
			return ASN(65536 + rng.Intn(1000000))
		}
		return ASN(1 + rng.Intn(65000))
	}
	u := &Update{}
	for i := rng.Intn(4); i > 0; i-- {
		u.Withdrawn = append(u.Withdrawn, randPrefix())
	}
	nNLRI := rng.Intn(5)
	for i := 0; i < nNLRI; i++ {
		u.NLRI = append(u.NLRI, randPrefix())
	}
	if nNLRI > 0 {
		u.Attrs.HasOrigin = true
		u.Attrs.Origin = rng.Intn(3)
		var path ASPath
		nseg := 1 + rng.Intn(2)
		for s := 0; s < nseg; s++ {
			seg := Segment{Type: SegmentSequence}
			if rng.Intn(4) == 0 {
				seg.Type = SegmentSet
			}
			for i := 1 + rng.Intn(4); i > 0; i-- {
				seg.ASes = append(seg.ASes, randASN())
			}
			path.Segments = append(path.Segments, seg)
		}
		u.Attrs.ASPath = path
		u.Attrs.HasASPath = true
		u.Attrs.NextHop = netip.AddrFrom4([4]byte{byte(1 + rng.Intn(223)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))})
		if rng.Intn(2) == 0 {
			u.Attrs.HasMED = true
			u.Attrs.MED = rng.Uint32()
		}
		if rng.Intn(2) == 0 {
			u.Attrs.HasLocalPref = true
			u.Attrs.LocalPref = rng.Uint32()
		}
		for i := rng.Intn(4); i > 0; i-- {
			u.Attrs.Communities = append(u.Attrs.Communities, Community(rng.Uint32()))
		}
	}
	return u
}

// Property: Marshal → ParseUpdate is the identity on valid updates.
func TestUpdateRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		as4 := trial%2 == 0
		u := randomUpdate(rng, as4)
		raw, err := u.Marshal(as4)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := ParseUpdate(raw, as4)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got.Withdrawn) != len(u.Withdrawn) || len(got.NLRI) != len(u.NLRI) {
			t.Fatalf("trial %d: prefix counts differ", trial)
		}
		for i := range u.Withdrawn {
			if got.Withdrawn[i] != u.Withdrawn[i] {
				t.Fatalf("trial %d: withdrawn[%d] %v != %v", trial, i, got.Withdrawn[i], u.Withdrawn[i])
			}
		}
		for i := range u.NLRI {
			if got.NLRI[i] != u.NLRI[i] {
				t.Fatalf("trial %d: nlri[%d] %v != %v", trial, i, got.NLRI[i], u.NLRI[i])
			}
		}
		if len(u.NLRI) > 0 && !got.Attrs.ASPath.Equal(u.Attrs.ASPath) {
			t.Fatalf("trial %d: aspath %v != %v", trial, got.Attrs.ASPath, u.Attrs.ASPath)
		}
		if len(got.Attrs.Communities) != len(u.Attrs.Communities) {
			t.Fatalf("trial %d: communities differ", trial)
		}
	}
}

// Property (testing/quick): community high:low split round-trips.
func TestCommunityRoundTripQuick(t *testing.T) {
	f := func(high, low uint16) bool {
		c := MakeCommunity(high, low)
		return uint32(c)>>16 == uint32(high) && uint32(c)&0xFFFF == uint32(low)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Prepend increases Length by exactly one and keeps the suffix.
func TestPrependProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(6)
		ases := make([]ASN, n)
		for i := range ases {
			ases[i] = ASN(rng.Intn(1000) + 1)
		}
		p := Sequence(ases...)
		q := p.Prepend(ASN(rng.Intn(1000) + 70000))
		if q.Length() != p.Length()+1 {
			t.Fatalf("length %d -> %d", p.Length(), q.Length())
		}
		if o1, ok1 := p.Origin(); ok1 {
			o2, ok2 := q.Origin()
			if !ok2 || o1 != o2 {
				t.Fatalf("origin changed: %v -> %v", o1, o2)
			}
		}
	}
}
