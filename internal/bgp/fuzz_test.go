package bgp

import (
	"net/netip"
	"testing"
)

// Fuzz targets: the parsers must never panic on arbitrary input, and
// anything they accept must re-encode without error.

func FuzzParseUpdate(f *testing.F) {
	u := &Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("198.51.100.0/24")},
		Attrs: PathAttributes{
			HasOrigin: true, Origin: OriginIGP,
			HasASPath: true, ASPath: Sequence(64500, 3320),
			NextHop:     netip.MustParseAddr("192.0.2.1"),
			Communities: []Community{MakeCommunity(64500, 1)},
		},
		NLRI: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")},
	}
	for _, as4 := range []bool{true, false} {
		raw, err := u.Marshal(as4)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw, as4)
	}
	f.Add([]byte{}, true)
	f.Fuzz(func(t *testing.T, data []byte, as4 bool) {
		u, err := ParseUpdate(data, as4)
		if err != nil {
			return
		}
		// Accepted updates must re-marshal cleanly.
		if _, err := u.Marshal(as4); err != nil {
			t.Fatalf("accepted update failed to re-marshal: %v", err)
		}
	})
}

func FuzzParseOpen(f *testing.F) {
	o := &Open{Version: 4, ASN: 400000, HoldTime: 90,
		BGPID: netip.MustParseAddr("10.0.0.1"), AS4: true}
	raw, err := o.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := ParseOpen(data)
		if err != nil {
			return
		}
		if _, err := o.Marshal(); err != nil {
			t.Fatalf("accepted OPEN failed to re-marshal: %v", err)
		}
	})
}

func FuzzParseNotification(f *testing.F) {
	n := &Notification{Code: NotifCease, Subcode: 1, Data: []byte{1, 2}}
	raw, err := n.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := ParseNotification(data)
		if err != nil {
			return
		}
		if _, err := n.Marshal(); err != nil {
			t.Fatalf("accepted NOTIFICATION failed to re-marshal: %v", err)
		}
	})
}
