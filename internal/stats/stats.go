// Package stats provides the statistical primitives shared by every
// experiment in the quicksand reproduction: percentiles, medians, empirical
// CCDFs, Pearson correlation, and small summary helpers.
//
// All functions are deterministic and operate on plain float64 slices so
// that analysis packages stay decoupled from each other. Inputs are never
// mutated unless the function name says so (e.g. SortInPlace).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a value from an
// empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Median returns the median of xs. For even-length samples it returns the
// mean of the two middle order statistics. It returns ErrEmpty when xs is
// empty.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks (the same convention as numpy's
// default). It returns ErrEmpty when xs is empty.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Mean returns the arithmetic mean of xs, or ErrEmpty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the minimum of xs, or ErrEmpty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs, or ErrEmpty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Variance returns the population variance of xs, or ErrEmpty.
func Variance(xs []float64) (float64, error) {
	mean, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs, or ErrEmpty.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples xs and ys. It returns an error when the slices differ in
// length, are empty, or when either sample has zero variance (the
// coefficient is undefined in that case).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance, correlation undefined")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// CCDFPoint is one point of an empirical complementary cumulative
// distribution function: Fraction is the fraction of samples with a value
// strictly greater than or equal to Value, expressed in percent to match
// the paper's figures.
type CCDFPoint struct {
	Value   float64
	Percent float64 // 100 * P[X >= Value]
}

// CCDF computes the empirical complementary cumulative distribution
// function of xs, evaluated at each distinct sample value in ascending
// order. The returned Percent values are 100*P[X >= Value], so the first
// point is always 100 and the sequence is non-increasing. It returns
// ErrEmpty when xs is empty.
func CCDF(xs []float64) ([]CCDFPoint, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	var pts []CCDFPoint
	for i := 0; i < len(s); {
		v := s[i]
		// All samples from index i upward are >= v.
		pts = append(pts, CCDFPoint{Value: v, Percent: 100 * float64(len(s)-i) / n})
		j := i
		for j < len(s) && s[j] == v {
			j++
		}
		i = j
	}
	return pts, nil
}

// CCDFAt evaluates an empirical CCDF (as returned by CCDF) at value v,
// returning 100*P[X >= v]. Points must be sorted by Value ascending, as
// CCDF guarantees.
func CCDFAt(pts []CCDFPoint, v float64) float64 {
	// Find the first point with Value >= v; its Percent is P[X >= Value]
	// which equals P[X >= v] because no sample lies in (prev, Value).
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Value >= v })
	if i == len(pts) {
		return 0
	}
	return pts[i].Percent
}

// Histogram counts how many samples fall into each of nbins equal-width
// bins spanning [lo, hi). Samples outside the range are clamped into the
// first or last bin. It returns an error when nbins <= 0 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, nbins int) ([]int, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("stats: nbins must be positive, got %d", nbins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: invalid range [%v, %v)", lo, hi)
	}
	counts := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts, nil
}

// ChiSquare computes Pearson's chi-square goodness-of-fit statistic for
// observed counts against expected counts, returning the statistic, the
// degrees of freedom (len-1), and the p-value P[X >= stat] under the
// chi-square distribution. The testkit uses it to verify that empirical
// bandwidth-weighted relay selection matches the analytic weights.
//
// Expected counts must be strictly positive; the classical validity rule
// of thumb (every expected count >= 5) is the caller's responsibility —
// see MergeSmallBins.
func ChiSquare(observed, expected []float64) (stat float64, df int, p float64, err error) {
	if len(observed) != len(expected) {
		return 0, 0, 0, fmt.Errorf("stats: length mismatch %d != %d", len(observed), len(expected))
	}
	if len(observed) < 2 {
		return 0, 0, 0, fmt.Errorf("stats: chi-square needs at least 2 bins, got %d", len(observed))
	}
	for i, e := range expected {
		if e <= 0 {
			return 0, 0, 0, fmt.Errorf("stats: non-positive expected count %v in bin %d", e, i)
		}
	}
	for i := range observed {
		d := observed[i] - expected[i]
		stat += d * d / expected[i]
	}
	df = len(observed) - 1
	p = chiSquareSF(stat, float64(df))
	return stat, df, p, nil
}

// MergeSmallBins coalesces adjacent bins until every expected count is at
// least minExpected, returning the merged (observed, expected) pair. It
// preserves totals exactly. The input slices are not modified. This is the
// standard preprocessing step that keeps the chi-square approximation
// valid on long-tailed weight distributions.
func MergeSmallBins(observed, expected []float64, minExpected float64) ([]float64, []float64, error) {
	if len(observed) != len(expected) {
		return nil, nil, fmt.Errorf("stats: length mismatch %d != %d", len(observed), len(expected))
	}
	var obs, exp []float64
	var accO, accE float64
	for i := range expected {
		accO += observed[i]
		accE += expected[i]
		if accE >= minExpected {
			obs = append(obs, accO)
			exp = append(exp, accE)
			accO, accE = 0, 0
		}
	}
	// Fold any under-filled remainder into the last emitted bin.
	if accE > 0 {
		if len(exp) == 0 {
			return nil, nil, fmt.Errorf("stats: total expected mass %v below minimum %v", accE, minExpected)
		}
		obs[len(obs)-1] += accO
		exp[len(exp)-1] += accE
	}
	return obs, exp, nil
}

// chiSquareSF is the chi-square survival function P[X >= x] with df
// degrees of freedom: the upper regularized incomplete gamma function
// Q(df/2, x/2).
func chiSquareSF(x, df float64) float64 {
	if x <= 0 {
		return 1
	}
	return gammaQ(df/2, x/2)
}

// gammaQ computes the upper regularized incomplete gamma function Q(a, x)
// = Γ(a, x)/Γ(a) using the series expansion for x < a+1 and the continued
// fraction otherwise (Numerical Recipes §6.2).
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a, x) by its power series.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a, x) by its continued fraction
// (modified Lentz's method).
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Summary holds the five-number-style summary used across EXPERIMENTS.md.
type Summary struct {
	N      int
	Min    float64
	Median float64
	Mean   float64
	P75    float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary of xs, or returns ErrEmpty.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	min, _ := Min(xs)
	max, _ := Max(xs)
	med, _ := Median(xs)
	mean, _ := Mean(xs)
	p75, _ := Percentile(xs, 75)
	p90, _ := Percentile(xs, 90)
	return Summary{N: len(xs), Min: min, Median: med, Mean: mean, P75: p75, P90: p90, Max: max}, nil
}

// String renders the summary on one line for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g median=%.3g mean=%.3g p75=%.3g p90=%.3g max=%.3g",
		s.N, s.Min, s.Median, s.Mean, s.P75, s.P90, s.Max)
}
