package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMedianOdd(t *testing.T) {
	got, err := Median([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("Median = %v, want 2", got)
	}
}

func TestMedianEven(t *testing.T) {
	got, err := Median([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Fatalf("Median = %v, want 2.5", got)
	}
}

func TestMedianEmpty(t *testing.T) {
	if _, err := Median(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileBounds(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	p0, err := Percentile(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	p100, err := Percentile(xs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p0 != 10 || p100 != 40 {
		t.Fatalf("p0=%v p100=%v, want 10 and 40", p0, p100)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	got, err := Percentile(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
}

func TestPercentileOutOfRange(t *testing.T) {
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("expected error for p=101")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("expected error for p=-1")
	}
}

func TestPercentileSingle(t *testing.T) {
	got, err := Percentile([]float64{7}, 83)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("got %v, want 7", got)
	}
}

func TestMeanSumMinMax(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m, _ := Mean(xs); m != 2.5 {
		t.Fatalf("Mean = %v", m)
	}
	if s := Sum(xs); s != 10 {
		t.Fatalf("Sum = %v", s)
	}
	if m, _ := Min(xs); m != 1 {
		t.Fatalf("Min = %v", m)
	}
	if m, _ := Max(xs); m != 4 {
		t.Fatalf("Max = %v", m)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", v)
	}
	sd, _ := StdDev(xs)
	if !almostEqual(sd, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", sd)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Fatalf("r = %v, want 1", r)
	}
}

func TestPearsonAnticorrelated(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{3, 2, 1}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("expected zero-variance error")
	}
}

func TestPearsonLengthMismatch(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestCCDFBasic(t *testing.T) {
	pts, err := CCDF([]float64{1, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []CCDFPoint{{1, 100}, {2, 50}, {3, 25}}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d: %v", len(pts), len(want), pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("pts[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestCCDFAt(t *testing.T) {
	pts, _ := CCDF([]float64{1, 2, 3, 4})
	if got := CCDFAt(pts, 2); got != 75 {
		t.Fatalf("CCDFAt(2) = %v, want 75", got)
	}
	if got := CCDFAt(pts, 2.5); got != 50 {
		t.Fatalf("CCDFAt(2.5) = %v, want 50", got)
	}
	if got := CCDFAt(pts, 100); got != 0 {
		t.Fatalf("CCDFAt(100) = %v, want 0", got)
	}
	if got := CCDFAt(pts, -5); got != 100 {
		t.Fatalf("CCDFAt(-5) = %v, want 100", got)
	}
}

func TestCCDFEmpty(t *testing.T) {
	if _, err := CCDF(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

// Property: CCDF Percent values are non-increasing, start at 100, and
// Values are strictly increasing.
func TestCCDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r % 16)
		}
		pts, err := CCDF(xs)
		if err != nil {
			return false
		}
		if pts[0].Percent != 100 {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Value <= pts[i-1].Value {
				return false
			}
			if pts[i].Percent > pts[i-1].Percent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		min, _ := Min(xs)
		max, _ := Max(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v, err := Percentile(xs, p)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev {
				t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
			}
			if v < min-1e-9 || v > max+1e-9 {
				t.Fatalf("percentile %v out of [min,max]=[%v,%v]", v, min, max)
			}
			prev = v
		}
	}
}

// Property: Pearson is symmetric and within [-1, 1].
func TestPearsonBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			continue // zero variance sample; skip
		}
		if r < -1-1e-9 || r > 1+1e-9 {
			t.Fatalf("r = %v out of [-1,1]", r)
		}
		r2, err := Pearson(ys, xs)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(r, r2, 1e-12) {
			t.Fatalf("Pearson not symmetric: %v vs %v", r, r2)
		}
	}
}

func TestHistogram(t *testing.T) {
	counts, err := Histogram([]float64{0, 0.5, 1.5, 2.5, 9.9, 42, -3}, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 { // 0, 0.5 and clamped -3
		t.Fatalf("bin0 = %d, want 3", counts[0])
	}
	if counts[9] != 2 { // 9.9 and clamped 42
		t.Fatalf("bin9 = %d, want 2", counts[9])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 7 {
		t.Fatalf("total = %d, want 7", total)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := Histogram(nil, 0, 1, 0); err == nil {
		t.Fatal("expected error for nbins=0")
	}
	if _, err := Histogram(nil, 1, 1, 4); err == nil {
		t.Fatal("expected error for empty range")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

// Property: Median equals Percentile(50).
func TestMedianIsP50(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(25)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(100))
		}
		med, _ := Median(xs)
		p50, _ := Percentile(xs, 50)
		if !almostEqual(med, p50, 1e-9) {
			sort.Float64s(xs)
			t.Fatalf("median=%v p50=%v xs=%v", med, p50, xs)
		}
	}
}

func TestChiSquareExactFit(t *testing.T) {
	obs := []float64{10, 20, 30, 40}
	stat, df, p, err := ChiSquare(obs, obs)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || df != 3 || p != 1 {
		t.Fatalf("stat=%v df=%d p=%v, want 0/3/1", stat, df, p)
	}
}

// TestChiSquareCriticalValues pins the survival function against the
// classical 5% critical-value table.
func TestChiSquareCriticalValues(t *testing.T) {
	cases := []struct {
		df   int
		crit float64
	}{
		{1, 3.841},
		{2, 5.991},
		{5, 11.070},
		{10, 18.307},
		{30, 43.773},
	}
	for _, c := range cases {
		// Build a 2-bin ... easier: call chiSquareSF directly.
		if p := chiSquareSF(c.crit, float64(c.df)); !almostEqual(p, 0.05, 5e-4) {
			t.Errorf("SF(%v, df=%d) = %v, want ~0.05", c.crit, c.df, p)
		}
	}
	if p := chiSquareSF(0, 4); p != 1 {
		t.Errorf("SF(0) = %v, want 1", p)
	}
	if p := chiSquareSF(1e6, 4); p > 1e-12 {
		t.Errorf("SF(1e6) = %v, want ~0", p)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, _, err := ChiSquare([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, _, err := ChiSquare([]float64{1}, []float64{1}); err == nil {
		t.Error("single bin accepted")
	}
	if _, _, _, err := ChiSquare([]float64{1, 2}, []float64{1, 0}); err == nil {
		t.Error("zero expected count accepted")
	}
}

// Property: the chi-square statistic of multinomial samples drawn from the
// expected distribution itself should only rarely exceed the 0.1% critical
// region. With fixed seeds this is deterministic.
func TestChiSquareOnTrueDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	weights := []float64{0.4, 0.3, 0.2, 0.1}
	const draws = 5000
	low := 0
	for trial := 0; trial < 40; trial++ {
		obs := make([]float64, len(weights))
		for i := 0; i < draws; i++ {
			r := rng.Float64()
			for j, w := range weights {
				if r < w || j == len(weights)-1 {
					obs[j]++
					break
				}
				r -= w
			}
		}
		exp := make([]float64, len(weights))
		for j, w := range weights {
			exp[j] = w * draws
		}
		_, _, p, err := ChiSquare(obs, exp)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.001 {
			low++
		}
	}
	if low > 1 {
		t.Fatalf("%d/40 trials below the 0.1%% p-value on the true distribution", low)
	}
}

func TestMergeSmallBins(t *testing.T) {
	obs := []float64{1, 2, 3, 4, 0.5}
	exp := []float64{0.5, 6, 2, 4, 0.5}
	mo, me, err := MergeSmallBins(obs, exp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if Sum(mo) != Sum(obs) || Sum(me) != Sum(exp) {
		t.Fatalf("totals changed: %v/%v vs %v/%v", Sum(mo), Sum(me), Sum(obs), Sum(exp))
	}
	for i, e := range me {
		if e < 5 {
			t.Fatalf("bin %d expected %v below the floor", i, e)
		}
	}
	if _, _, err := MergeSmallBins([]float64{1}, []float64{1}, 5); err == nil {
		t.Error("under-mass input accepted")
	}
	if _, _, err := MergeSmallBins([]float64{1}, []float64{1, 2}, 5); err == nil {
		t.Error("length mismatch accepted")
	}
}
