package fleet

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpd"
	"quicksand/internal/defense"
	"quicksand/internal/monitord"
)

// startShardDaemon boots one remote-mode shard daemon watching its
// partition, on the given (possibly ":0") addresses.
func startShardDaemon(t *testing.T, idx int, watched map[netip.Prefix]bgp.ASN, bgpAddr, httpAddr string) *monitord.Daemon {
	t.Helper()
	d, err := monitord.New(monitord.Config{
		Watched: watched,
		Speaker: bgpd.Config{
			ASN: bgp.ASN(64510 + idx), BGPID: netip.AddrFrom4([4]byte{198, 51, 100, byte(10 + idx)}),
		},
		ListenBGP:  bgpAddr,
		ListenHTTP: httpAddr,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("shard daemon %d: %v", idx, err)
	}
	return d
}

// TestFleetShardDeathFailover kills one remote shard mid-stream and
// checks the three failover guarantees: the surviving shard's watched
// prefixes lose no alerts, the dead shard's forwarder redials a bounded
// number of times on the backoff schedule (extending the PR 6
// flapping-collector bound to the router), and updates buffered during
// the outage replay after the shard returns on the same address.
func TestFleetShardDeathFailover(t *testing.T) {
	// Build a watchlist that provably populates both shards: walk
	// 10.N.0.0/16 candidates until the hash partition has given each
	// shard one prefix, so the test exercises both a victim and a
	// survivor regardless of FNV luck.
	watched := map[netip.Prefix]bgp.ASN{}
	var p0, p1 netip.Prefix
	for i := 0; i < 256 && (!p0.IsValid() || !p1.IsValid()); i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16)
		switch OwnerOf(p, 2) {
		case 0:
			if !p0.IsValid() {
				p0 = p
				watched[p] = 65010
			}
		case 1:
			if !p1.IsValid() {
				p1 = p
				watched[p] = 65020
			}
		}
	}
	parts := Partition(watched, 2)
	d0 := startShardDaemon(t, 0, parts[0], "127.0.0.1:0", "127.0.0.1:0")
	bgp0, http0 := d0.BGPAddr(), d0.HTTPAddr()
	d1 := startShardDaemon(t, 1, parts[1], "127.0.0.1:0", "127.0.0.1:0")
	defer d1.Shutdown(context.Background())

	r, err := New(Config{
		Watched: watched,
		Remotes: []RemoteShard{
			{Name: "victim", BGPAddr: bgp0, HTTPAddr: http0},
			{Name: "survivor", BGPAddr: d1.BGPAddr(), HTTPAddr: d1.HTTPAddr()},
		},
		Speaker: bgpd.Config{
			ASN: 64400, BGPID: netip.MustParseAddr("198.51.100.1"),
		},
		MergeInterval:   5 * time.Millisecond,
		DialBackoffBase: 20 * time.Millisecond,
		DialBackoffMax:  160 * time.Millisecond,
		Seed:            7,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown(context.Background())

	waitFor(t, 5*time.Second, "both forwarders up", func() bool {
		return r.met.shardUp[0].Value() > 0 && r.met.shardUp[1].Value() > 0
	})

	src := r.RegisterSource("sim", 64601)
	now := time.Now()
	countAlerts := func(prefix netip.Prefix, origin bgp.ASN) int {
		alerts, _, _ := r.Alerts(0, 0)
		n := 0
		for _, a := range alerts {
			if a.Prefix == prefix && a.Observed == origin && a.Kind == defense.AlertOriginChange {
				n++
			}
		}
		return n
	}

	// Round 1: both shards up, one hijack each; both alerts must merge.
	if err := r.Ingest(src, now, p0, []bgp.ASN{64601, 991}); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest(src, now, p1, []bgp.ASN{64601, 992}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "round-1 alerts from both shards", func() bool {
		return countAlerts(p0, 991) == 1 && countAlerts(p1, 992) == 1
	})

	// Kill shard 0 and wait for the forwarder to notice.
	if err := d0.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "victim forwarder down", func() bool {
		return r.met.shardUp[0].Value() == 0
	})

	// Round 2 during the outage: the victim's hijack buffers, the
	// survivor's flows through undisturbed.
	if err := r.Ingest(src, now, p0, []bgp.ASN{64601, 993}); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest(src, now, p1, []bgp.ASN{64601, 994}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "survivor alert during outage", func() bool {
		return countAlerts(p1, 994) == 1
	})
	if n := countAlerts(p0, 993); n != 0 {
		t.Fatalf("victim alert appeared while its shard is down (%d)", n)
	}
	if got := r.remotes[0].queued.Load(); got < 1 {
		t.Fatalf("victim queue depth %d, want >= 1 buffered update", got)
	}

	// Let the dead window span several backoff periods, then bound the
	// redial count: with base 20ms doubling to 160ms, ~240ms of death
	// allows at most a handful of attempts — not a tight retry spin, not
	// zero. (Same bound shape as the flapping-collector test.)
	time.Sleep(240 * time.Millisecond)
	if dials := r.met.redials[0].Value(); dials < 1 || dials > 15 {
		t.Fatalf("victim redials = %v, want within [1,15]", dials)
	}
	if surv := r.met.redials[1].Value(); surv != 0 {
		t.Fatalf("survivor redialed %v times during victim outage", surv)
	}
	if n := countAlerts(p1, 994); n != 1 {
		t.Fatalf("survivor alert count changed to %d during outage", n)
	}

	// Resurrect shard 0 on the same addresses: the forwarder's next
	// redial replays the buffered update, and the merger resyncs its
	// cursor against the fresh alert ring (ahead-cursor clamp).
	d0b := startShardDaemon(t, 0, parts[0], bgp0, http0)
	defer d0b.Shutdown(context.Background())
	waitFor(t, 10*time.Second, "victim forwarder re-established", func() bool {
		return r.met.shardUp[0].Value() > 0
	})
	waitFor(t, 10*time.Second, "buffered hijack replayed after restart", func() bool {
		return countAlerts(p0, 993) == 1
	})
	if got := r.met.forwardDropped[0].Value(); got != 0 {
		t.Fatalf("forwarder dropped %v updates; buffer should have absorbed the outage", got)
	}
}
