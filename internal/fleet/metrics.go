package fleet

import (
	"strconv"
	"time"

	"quicksand/internal/defense"
	"quicksand/internal/obs"
)

// metrics holds the router's own fleet_* instrumentation. Shard-level
// monitord_* families are not mirrored here: the router's /metrics
// endpoint aggregates them live from every shard registry (in-process)
// or scrape target (remote) via the obs merger, so the fleet exposition
// is the union of fleet_* and the summed monitord_* families.
type metrics struct {
	reg   *obs.Registry
	start time.Time

	forwarded      []*obs.Counter // per shard
	forwardDropped []*obs.Counter // per shard: remote buffer overflow
	redials        []*obs.Counter // per shard: forwarder dial attempts that failed
	shardUp        []*obs.Gauge   // per shard: forwarding path up
	unwatched      *obs.Counter
	droppedNonIPv4 *obs.Counter
	droppedNoPath  *obs.Counter

	alertsMerged       *obs.Counter
	shardAlertsDropped *obs.Counter // shard-ring evictions seen by the merger
	alertsDropped      *obs.Counter // merged-ring evictions
	anomalies          []*obs.Counter

	sessionsAccepted *obs.Counter
	sessionsActive   *obs.Gauge
}

func newFleetMetrics(reg *obs.Registry, shards int) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &metrics{reg: reg, start: time.Now()}
	fwd := reg.CounterVec("fleet_updates_forwarded_total", "Updates forwarded to each shard by the watchlist router.", "shard")
	fdrop := reg.CounterVec("fleet_forward_dropped_total", "Updates dropped because a remote shard's replay buffer was full.", "shard")
	redial := reg.CounterVec("fleet_redials_total", "Failed forwarder dial attempts per remote shard (each backs off).", "shard")
	up := reg.GaugeVec("fleet_shard_up", "Whether the forwarding path to each shard is up (in-process shards are always 1).", "shard")
	for i := 0; i < shards; i++ {
		s := strconv.Itoa(i)
		m.forwarded = append(m.forwarded, fwd.With(s))
		m.forwardDropped = append(m.forwardDropped, fdrop.With(s))
		m.redials = append(m.redials, redial.With(s))
		m.shardUp = append(m.shardUp, up.With(s))
	}
	m.unwatched = reg.Counter("fleet_updates_unwatched_total",
		"Updates dropped at the router because no watched prefix matches or covers them — the fleet's fast-reject path.")
	dropped := reg.CounterVec("fleet_updates_dropped_total", "Updates discarded before routing, by reason.", "reason")
	m.droppedNonIPv4 = dropped.With("non-ipv4")
	m.droppedNoPath = dropped.With("no-as-path")
	m.alertsMerged = reg.Counter("fleet_alerts_merged_total", "Alerts pulled off shard rings into the merged stream.")
	m.shardAlertsDropped = reg.Counter("fleet_shard_alerts_dropped_total",
		"Alerts a shard ring evicted before the merger could read them (lost to every fleet client).")
	m.alertsDropped = reg.Counter("fleet_alerts_dropped_total",
		"Alerts evicted from the merged ring before any client read them.")
	anoms := reg.CounterVec("fleet_anomalies_total", "Counter-RAPTOR anomalies escalated from the merged alert stream, by kind.", "kind")
	m.anomalies = []*obs.Counter{
		defense.AnomalyFrequency:  anoms.With(defense.AnomalyFrequency.String()),
		defense.AnomalyOriginFlap: anoms.With(defense.AnomalyOriginFlap.String()),
	}
	m.sessionsAccepted = reg.Counter("fleet_sessions_accepted_total", "BGP sessions ever established with the router.")
	m.sessionsActive = reg.Gauge("fleet_sessions_active", "BGP sessions currently established with the router.")
	reg.GaugeFunc("fleet_uptime_seconds", "Seconds since the router started.", func() float64 {
		return time.Since(m.start).Seconds()
	})
	return m
}

// registerCollectors wires exposition-time families reading router
// state; called once from New after the sinks exist.
func (m *metrics) registerCollectors(r *Router) {
	m.reg.GaugeFunc("fleet_shards", "Number of shards behind the router.", func() float64 {
		return float64(len(r.sinks))
	})
	m.reg.GaugeFunc("fleet_watched_prefixes", "Prefixes on the router's watchlist.", func() float64 {
		return float64(r.table.trie.Len())
	})
	m.reg.Collect("fleet_forward_queue_depth", "Updates buffered for each remote shard awaiting (re)delivery.",
		obs.KindGauge, []string{"shard"}, func(emit obs.Emit) {
			for i, rs := range r.remotes {
				if rs != nil {
					emit([]string{strconv.Itoa(i)}, float64(rs.queued.Load()))
				}
			}
		})
}
