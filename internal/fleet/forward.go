package fleet

import (
	"net"
	"net/netip"
	"strconv"
	"sync/atomic"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpd"
	"quicksand/internal/monitord"
)

// forwardBatch bounds how many queued updates a remote forwarder encodes
// into one SendRaw write.
const forwardBatch = 128

// inprocSink forwards straight into a shard daemon's ingest path —
// no sockets, no encoding, backpressure handled by the daemon's own
// bounded shard queues.
type inprocSink struct {
	idx int
	d   *monitord.Daemon
}

func (s *inprocSink) register(rs *routerSession, name string, peer bgp.ASN) {
	rs.shardIDs[s.idx] = s.d.RegisterSource(name, peer)
}

func (s *inprocSink) forward(rs *routerSession, t time.Time, prefix netip.Prefix, path []bgp.ASN) {
	s.d.Ingest(rs.shardIDs[s.idx], t, prefix, path)
}

func (s *inprocSink) quiesce(deadline time.Time) bool {
	return s.d.WaitQuiesce(time.Until(deadline))
}

// fwdItem is one buffered update awaiting delivery to a remote shard.
// A nil path is a withdrawal; the semantic timestamp is intentionally
// absent — BGP carries none, so remote shards re-stamp on receipt.
type fwdItem struct {
	prefix netip.Prefix
	path   []bgp.ASN
}

// append encodes the item as one UPDATE message onto raw.
func (it fwdItem) append(raw []byte, as4 bool) ([]byte, error) {
	var u bgp.Update
	if it.path == nil {
		u.Withdrawn = []netip.Prefix{it.prefix}
	} else {
		u.NLRI = []netip.Prefix{it.prefix}
		u.Attrs = bgp.PathAttributes{
			HasOrigin: true, Origin: bgp.OriginIGP,
			HasASPath: true,
			NextHop:   netip.AddrFrom4([4]byte{203, 0, 113, 1}),
		}
		if len(it.path) > 0 {
			u.Attrs.ASPath = bgp.Sequence(it.path...)
		}
	}
	return u.AppendMessage(raw, as4)
}

// remoteSink forwards updates to a remote monitord over a real BGP
// session. Updates queue in a bounded channel; a dead shard triggers
// redial on the collector backoff schedule while the queue absorbs the
// outage, and undelivered items carry over to the next session — replay
// after redial. Queue overflow while the shard is down is dropped and
// counted rather than blocking the router's read loops.
type remoteSink struct {
	r      *Router
	idx    int
	shard  RemoteShard
	ch     chan fwdItem
	queued atomic.Int64
}

func newRemoteSink(r *Router, idx int, shard RemoteShard) *remoteSink {
	if shard.Name == "" {
		shard.Name = "shard" + strconv.Itoa(idx)
	}
	return &remoteSink{
		r:     r,
		idx:   idx,
		shard: shard,
		ch:    make(chan fwdItem, r.cfg.ForwardBuffer),
	}
}

// register is a no-op: the remote daemon registers its own session when
// the forwarder's handshake completes, so remote-mode alerts carry the
// remote daemon's session ids (a documented fidelity trade).
func (rs *remoteSink) register(*routerSession, string, bgp.ASN) {}

func (rs *remoteSink) forward(_ *routerSession, _ time.Time, prefix netip.Prefix, path []bgp.ASN) {
	rs.queued.Add(1)
	select {
	case rs.ch <- fwdItem{prefix: prefix, path: path}:
	default:
		rs.queued.Add(-1)
		rs.r.met.forwardDropped[rs.idx].Inc()
	}
}

// quiesce waits for the replay queue to drain — everything handed to the
// forwarder has been written to the remote. The remote daemon's own
// pipeline latency is invisible from here; callers polling its alerts
// endpoint absorb that the usual way.
func (rs *remoteSink) quiesce(deadline time.Time) bool {
	for rs.queued.Load() > 0 {
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// run is the forwarder goroutine: dial, establish, pump until the
// session drops, back off, repeat. Exits when the router shuts down.
func (rs *remoteSink) run() {
	defer rs.r.fwdWG.Done()
	bo := bgpd.NewBackoff(rs.r.cfg.DialBackoffBase, rs.r.cfg.DialBackoffMax,
		rs.r.cfg.DialHealthyAfter, rs.r.cfg.Seed, "fleet-fwd-"+rs.shard.Name)
	var pending []fwdItem
	var dialer net.Dialer
	for {
		if rs.r.dialCtx.Err() != nil {
			return
		}
		conn, err := dialer.DialContext(rs.r.dialCtx, "tcp", rs.shard.BGPAddr)
		if err != nil {
			rs.r.met.redials[rs.idx].Inc()
			rs.r.cfg.Logf("fleet: forwarder %s: dial %s failed: %v (retry in %v)",
				rs.shard.Name, rs.shard.BGPAddr, err, bo.Current())
			if !bo.Sleep(rs.r.dialCtx) {
				return
			}
			bo.Fail()
			continue
		}
		conn.SetDeadline(time.Now().Add(rs.r.cfg.EstablishTimeout))
		sess, err := bgpd.Establish(conn, rs.r.cfg.Speaker)
		if err != nil {
			conn.Close()
			rs.r.met.redials[rs.idx].Inc()
			rs.r.cfg.Logf("fleet: forwarder %s: handshake failed: %v (retry in %v)",
				rs.shard.Name, err, bo.Current())
			if !bo.Sleep(rs.r.dialCtx) {
				return
			}
			bo.Fail()
			continue
		}
		conn.SetDeadline(time.Time{})
		// The forwarder only writes, so a dead shard would otherwise go
		// unnoticed until a send fails. A dedicated reader turns the
		// shard's NOTIFICATION (or a torn connection) into a prompt
		// session close, which unblocks the pump for redial.
		go func() {
			for {
				if _, err := sess.RecvUpdate(); err != nil {
					sess.Close()
					return
				}
			}
		}()
		established := time.Now()
		rs.r.met.shardUp[rs.idx].Set(1)
		rs.r.cfg.Logf("fleet: forwarder %s up (AS%d, %d pending for replay)",
			rs.shard.Name, uint32(sess.PeerAS()), len(pending))
		sent := rs.pump(sess, &pending)
		sess.Close()
		rs.r.met.shardUp[rs.idx].Set(0)
		if rs.r.dialCtx.Err() != nil {
			return
		}
		bo.SessionEnded(established, sent)
		rs.r.cfg.Logf("fleet: forwarder %s down, %d pending (retry in %v)",
			rs.shard.Name, len(pending), bo.Current())
		if !bo.Sleep(rs.r.dialCtx) {
			return
		}
	}
}

// gather collects the next batch: carried-over pending items first, then
// whatever is queued, up to forwardBatch. Returns alive=false when the
// session died underneath us.
func (rs *remoteSink) gather(sess *bgpd.Session, pending []fwdItem) (batch []fwdItem, alive bool) {
	batch = pending
	if len(batch) == 0 {
		select {
		case it := <-rs.ch:
			batch = append(batch, it)
		case <-rs.r.dialCtx.Done():
			// Shutdown: fall through and drain whatever is immediately
			// available for a final flush.
		case <-sess.Done():
			return batch, false
		}
	}
	for len(batch) < forwardBatch {
		select {
		case it := <-rs.ch:
			batch = append(batch, it)
		default:
			return batch, true
		}
	}
	return batch, true
}

// pump encodes queued updates into raw message batches and writes them
// until the session fails; undelivered items stay in *pending for the
// next session. Reports whether anything was delivered (feeds the
// backoff healthy-session heuristic).
func (rs *remoteSink) pump(sess *bgpd.Session, pending *[]fwdItem) bool {
	sent := false
	var raw []byte
	for {
		batch, alive := rs.gather(sess, *pending)
		*pending = nil
		if !alive {
			*pending = batch
			return sent
		}
		if len(batch) == 0 {
			if rs.r.dialCtx.Err() != nil {
				return sent
			}
			continue
		}
		raw = raw[:0]
		kept := batch[:0]
		for i := range batch {
			mark := len(raw)
			var err error
			if raw, err = batch[i].append(raw, sess.AS4()); err != nil {
				raw = raw[:mark]
				rs.queued.Add(-1)
				rs.r.met.forwardDropped[rs.idx].Inc()
				continue
			}
			kept = append(kept, batch[i])
		}
		if len(kept) == 0 {
			continue
		}
		if err := sess.SendRaw(raw, len(kept)); err != nil {
			*pending = append([]fwdItem(nil), kept...)
			return sent
		}
		rs.queued.Add(-int64(len(kept)))
		sent = true
		if rs.r.dialCtx.Err() != nil && len(rs.ch) == 0 && rs.queued.Load() <= 0 {
			return sent
		}
	}
}
