package fleet

import (
	"fmt"
	"hash/fnv"
	"net/netip"

	"quicksand/internal/bgp"
	"quicksand/internal/iptrie"
)

// OwnerOf returns the shard index owning watched prefix p under the
// fleet's hash partition: FNV-1a over the masked address bytes and the
// prefix length, mod n. The partition is a pure function of (prefix, n)
// so every component — router, tests, an operator reasoning about a
// shard's load — computes the same owner.
func OwnerOf(p netip.Prefix, n int) int {
	p = p.Masked()
	a := p.Addr().As4()
	h := fnv.New32a()
	h.Write(a[:])
	h.Write([]byte{byte(p.Bits())})
	return int(h.Sum32() % uint32(n))
}

// Partition splits a watchlist into n per-shard watchlists by OwnerOf.
// Empty shards get an empty (non-nil) map.
func Partition(watched map[netip.Prefix]bgp.ASN, n int) []map[netip.Prefix]bgp.ASN {
	out := make([]map[netip.Prefix]bgp.ASN, n)
	for i := range out {
		out[i] = make(map[netip.Prefix]bgp.ASN)
	}
	for p, origin := range watched {
		out[OwnerOf(p, n)][p] = origin
	}
	return out
}

// watchTable answers the router's per-update question: which shard, if
// any, must see an announcement of prefix p? The routing rule mirrors
// defense.Monitor.Observe exactly, because a shard only ever alerts on
// updates the single-daemon monitor would have alerted on:
//
//   - p is itself watched → the shard owning p (origin-change and
//     new-upstream checks live there);
//   - otherwise, if the longest watched prefix covering p's address is
//     strictly less specific than p → the shard owning that cover (the
//     more-specific hijack check lives there). This is the correctness
//     trap naive hashing gets wrong: hashing the announced prefix sends
//     a /24 hijack of a watched /16 to an arbitrary shard that has never
//     heard of the /16.
//   - otherwise no shard needs it (covering/less-specific announcements
//     and unrelated prefixes alert nowhere in the single daemon either).
//
// A [256]bool first-octet bitmap rejects the overwhelmingly common case
// — background traffic nowhere near the watchlist — without touching
// the trie: if any watched prefix covers an address, it also covers (or
// is covered by the first 8 bits of) that address's first octet, so an
// unmarked octet proves no match. The full trie runs only for updates
// that share a first octet with the watchlist.
type watchTable struct {
	trie   iptrie.Trie[int] // watched prefix -> owning shard
	coarse [256]bool
	n      int
}

func newWatchTable(watched map[netip.Prefix]bgp.ASN, n int) (*watchTable, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: shard count %d, need >= 1", n)
	}
	t := &watchTable{n: n}
	for p := range watched {
		if !p.IsValid() || !p.Addr().Is4() {
			return nil, fmt.Errorf("fleet: watched prefix %v is not IPv4", p)
		}
		p = p.Masked()
		if _, err := t.trie.Insert(p, OwnerOf(p, n)); err != nil {
			return nil, fmt.Errorf("fleet: watched prefix %v: %w", p, err)
		}
		first := p.Addr().As4()[0]
		if p.Bits() >= 8 {
			t.coarse[first] = true
		} else {
			// A short prefix covers a run of first octets.
			span := 1 << (8 - p.Bits())
			for i := 0; i < span; i++ {
				t.coarse[int(first)+i] = true
			}
		}
	}
	return t, nil
}

// route returns the shard that must see an update for p, or ok=false
// when no shard needs it. p must be a valid IPv4 prefix.
func (t *watchTable) route(p netip.Prefix) (shard int, ok bool) {
	if !t.coarse[p.Addr().As4()[0]] {
		return 0, false
	}
	if shard, ok := t.trie.Get(p); ok {
		return shard, true
	}
	if cover, shard, ok := t.trie.LongestMatch(p.Addr()); ok && cover.Bits() < p.Bits() {
		return shard, true
	}
	return 0, false
}

// routeAddr returns the shard owning the longest watched prefix covering
// addr — the shard whose RIB answers /rib?addr= queries. a must be IPv4.
func (t *watchTable) routeAddr(a netip.Addr) (shard int, ok bool) {
	if !t.coarse[a.As4()[0]] {
		return 0, false
	}
	_, shard, ok = t.trie.LongestMatch(a)
	return shard, ok
}
