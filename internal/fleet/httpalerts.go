package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/netip"
	"sync/atomic"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/defense"
	"quicksand/internal/monitord"
)

// HTTPAlerts adapts an /alerts endpoint (a monitord shard's or a fleet
// router's — the wire shape is identical) to the AlertSource interface.
// The router uses it to poll remote shards; the loadgen harness uses it
// to measure the same path a real fleet client takes. Poll failures
// return no alerts with the cursor unchanged — the poller simply
// retries — and are tallied in Errs for post-run inspection: a target
// whose alerts API is down shows up as lost tracers plus a non-zero
// error count, not a crashed run.
type HTTPAlerts struct {
	// Base is the instance's HTTP root, e.g. "http://127.0.0.1:8179".
	Base string
	// Client defaults to a 10s-timeout client.
	Client *http.Client
	// Errs counts failed polls.
	Errs atomic.Uint64
}

// Alerts implements AlertSource over GET /alerts?since=N&max=M.
func (h *HTTPAlerts) Alerts(cursor uint64, max int) ([]monitord.SeqAlert, uint64, uint64) {
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	url := fmt.Sprintf("%s/alerts?since=%d", h.Base, cursor)
	if max > 0 {
		url += fmt.Sprintf("&max=%d", max)
	}
	resp, err := client.Get(url)
	if err != nil {
		h.Errs.Add(1)
		return nil, cursor, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.Errs.Add(1)
		return nil, cursor, 0
	}
	var body struct {
		Alerts []struct {
			Seq        uint64    `json:"seq"`
			Time       time.Time `json:"time"`
			Session    int       `json:"session"`
			Prefix     string    `json:"prefix"`
			Kind       string    `json:"kind"`
			ObservedAS uint32    `json:"observed_as"`
		} `json:"alerts"`
		Next    uint64 `json:"next"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		h.Errs.Add(1)
		return nil, cursor, 0
	}
	alerts := make([]monitord.SeqAlert, 0, len(body.Alerts))
	for _, a := range body.Alerts {
		pfx, err := netip.ParsePrefix(a.Prefix)
		if err != nil {
			h.Errs.Add(1)
			continue
		}
		alerts = append(alerts, monitord.SeqAlert{
			Seq: a.Seq,
			Alert: defense.Alert{
				Time:     a.Time,
				Session:  a.Session,
				Prefix:   pfx,
				Kind:     ParseAlertKind(a.Kind),
				Observed: bgp.ASN(a.ObservedAS),
			},
		})
	}
	return alerts, body.Next, body.Dropped
}

// ParseAlertKind inverts defense.AlertKind.String; unknown strings map
// to origin-change, the kind every tracer hijack raises.
func ParseAlertKind(s string) defense.AlertKind {
	switch s {
	case "more-specific":
		return defense.AlertMoreSpecific
	case "new-upstream":
		return defense.AlertNewUpstream
	}
	return defense.AlertOriginChange
}
