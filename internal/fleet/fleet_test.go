package fleet

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpd"
	"quicksand/internal/defense"
	"quicksand/internal/monitord"
)

var fleetWatched = map[netip.Prefix]bgp.ASN{
	netip.MustParsePrefix("10.10.0.0/16"): 65010,
	netip.MustParsePrefix("10.20.0.0/16"): 65020,
	netip.MustParsePrefix("10.30.0.0/16"): 65030,
	netip.MustParsePrefix("10.40.0.0/16"): 65040,
}

type httpResult struct {
	status int
	body   string
}

func httpGet(url string) (httpResult, error) {
	resp, err := http.Get(url)
	if err != nil {
		return httpResult{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return httpResult{}, err
	}
	return httpResult{status: resp.StatusCode, body: string(body)}, nil
}

func httpPost(url string) (httpResult, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader("{}"))
	if err != nil {
		return httpResult{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return httpResult{}, err
	}
	return httpResult{status: resp.StatusCode, body: string(body)}, nil
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestOwnerOfPartition(t *testing.T) {
	p := netip.MustParsePrefix("10.10.0.0/16")
	if OwnerOf(p, 4) != OwnerOf(p, 4) {
		t.Fatal("OwnerOf is not deterministic")
	}
	if OwnerOf(netip.MustParsePrefix("10.10.1.0/16"), 4) != OwnerOf(p, 4) {
		t.Fatal("OwnerOf must mask the prefix before hashing")
	}
	parts := Partition(fleetWatched, 3)
	if len(parts) != 3 {
		t.Fatalf("got %d partitions, want 3", len(parts))
	}
	total := 0
	for i, part := range parts {
		for q, origin := range part {
			if OwnerOf(q, 3) != i {
				t.Fatalf("prefix %v landed on shard %d, owner is %d", q, i, OwnerOf(q, 3))
			}
			if fleetWatched[q] != origin {
				t.Fatalf("prefix %v origin %d, want %d", q, origin, fleetWatched[q])
			}
			total++
		}
	}
	if total != len(fleetWatched) {
		t.Fatalf("partitions carry %d prefixes, want %d", total, len(fleetWatched))
	}
}

func TestWatchTableRoute(t *testing.T) {
	tab, err := newWatchTable(fleetWatched, 4)
	if err != nil {
		t.Fatal(err)
	}
	watched := netip.MustParsePrefix("10.20.0.0/16")
	owner := OwnerOf(watched, 4)

	if shard, ok := tab.route(watched); !ok || shard != owner {
		t.Fatalf("exact watched prefix: got (%d,%v), want (%d,true)", shard, ok, owner)
	}
	// The correctness trap: a more-specific hijack must land on the shard
	// owning the *covering* watched prefix, not hash(announced prefix).
	moreSpec := netip.MustParsePrefix("10.20.99.0/24")
	if shard, ok := tab.route(moreSpec); !ok || shard != owner {
		t.Fatalf("more-specific hijack: got (%d,%v), want (%d,true)", shard, ok, owner)
	}
	if naive := OwnerOf(moreSpec, 4); naive == owner {
		t.Logf("note: naive hash coincides with owner for this prefix; trap untested by accident")
	}
	// A covering (less-specific) announcement alerts nowhere — not routed.
	if _, ok := tab.route(netip.MustParsePrefix("10.0.0.0/8")); ok {
		t.Fatal("covering announcement must not be routed")
	}
	if _, ok := tab.route(netip.MustParsePrefix("192.168.0.0/16")); ok {
		t.Fatal("unrelated prefix must not be routed")
	}
	// Coarse bitmap: different first octet rejected without trie work.
	if _, ok := tab.route(netip.MustParsePrefix("11.10.0.0/16")); ok {
		t.Fatal("unwatched first octet must be rejected")
	}
	if shard, ok := tab.routeAddr(netip.MustParseAddr("10.20.3.4")); !ok || shard != owner {
		t.Fatalf("routeAddr: got (%d,%v), want (%d,true)", shard, ok, owner)
	}
	if _, ok := tab.routeAddr(netip.MustParseAddr("172.16.0.1")); ok {
		t.Fatal("routeAddr must reject unwatched addresses")
	}

	// Sub-/8 watched prefix spans first octets 8..11 in the coarse map.
	short, err := newWatchTable(map[netip.Prefix]bgp.ASN{
		netip.MustParsePrefix("8.0.0.0/6"): 65001,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantShard := OwnerOf(netip.MustParsePrefix("8.0.0.0/6"), 2)
	if shard, ok := short.route(netip.MustParsePrefix("11.5.0.0/16")); !ok || shard != wantShard {
		t.Fatalf("more-specific under /6: got (%d,%v), want (%d,true)", shard, ok, wantShard)
	}
	if _, ok := short.route(netip.MustParsePrefix("12.0.0.0/16")); ok {
		t.Fatal("octet 12 is outside 8.0.0.0/6")
	}

	if _, err := newWatchTable(map[netip.Prefix]bgp.ASN{
		netip.MustParsePrefix("2001:db8::/32"): 65001,
	}, 2); err == nil {
		t.Fatal("IPv6 watched prefix must be rejected")
	}
	if _, err := newWatchTable(fleetWatched, 0); err == nil {
		t.Fatal("zero shards must be rejected")
	}
}

// alertKey builds the multiset key used to compare alert streams.
func alertKey(a defense.Alert) string {
	return fmt.Sprintf("%d|%v|%v|%v", a.Session, a.Prefix, a.Kind, a.Observed)
}

func TestRouterInprocAlerts(t *testing.T) {
	r, err := New(Config{
		Watched: fleetWatched,
		Shards:  4,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown(context.Background())

	if r.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", r.Shards())
	}
	src0 := r.RegisterSource("feed0", 64601)
	src1 := r.RegisterSource("feed1", 64602)
	if src0 == src1 {
		t.Fatalf("sources share id %d", src0)
	}

	now := time.Now()
	// Legitimate announcements: expected origins, no alerts.
	for p, origin := range fleetWatched {
		if err := r.Ingest(src0, now, p, []bgp.ASN{64601, origin}); err != nil {
			t.Fatal(err)
		}
	}
	// Same-prefix hijack via src1, more-specific hijack via src0.
	hijacked := netip.MustParsePrefix("10.10.0.0/16")
	if err := r.Ingest(src1, now, hijacked, []bgp.ASN{64602, 666}); err != nil {
		t.Fatal(err)
	}
	moreSpec := netip.MustParsePrefix("10.20.99.0/24")
	if err := r.Ingest(src0, now, moreSpec, []bgp.ASN{64601, 667}); err != nil {
		t.Fatal(err)
	}
	// Background churn: rejected at the router, never reaches a shard.
	if err := r.Ingest(src0, now, netip.MustParsePrefix("198.18.0.0/15"), []bgp.ASN{64601, 1}); err != nil {
		t.Fatal(err)
	}
	if !r.WaitQuiesce(5 * time.Second) {
		t.Fatal("quiesce timed out")
	}

	alerts, next, dropped := r.Alerts(0, 0)
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	if len(alerts) != 2 {
		t.Fatalf("got %d merged alerts, want 2: %+v", len(alerts), alerts)
	}
	got := map[string]bool{}
	for i, a := range alerts {
		if a.Seq != uint64(i) {
			t.Fatalf("alert %d has seq %d: merged stream must re-sequence", i, a.Seq)
		}
		got[alertKey(a.Alert)] = true
	}
	// Session ids in fleet alerts match the router's source ids — the
	// shard-registration critical section at work.
	wantHijack := fmt.Sprintf("%d|%v|%v|%v", src1, hijacked, defense.AlertOriginChange, bgp.ASN(666))
	wantMoreSpec := fmt.Sprintf("%d|%v|%v|%v", src0, moreSpec, defense.AlertMoreSpecific, bgp.ASN(667))
	if !got[wantHijack] || !got[wantMoreSpec] {
		t.Fatalf("merged alerts %v missing %q or %q", got, wantHijack, wantMoreSpec)
	}
	if next != 2 {
		t.Fatalf("next = %d, want 2", next)
	}
	if v := r.met.unwatched.Value(); v != 1 {
		t.Fatalf("unwatched counter = %v, want 1", v)
	}

	// Cursor paging and ahead-cursor clamp on the merged stream.
	page, next2, _ := r.Alerts(next, 10)
	if len(page) != 0 || next2 != next {
		t.Fatalf("caught-up poll returned %d alerts, next %d", len(page), next2)
	}
	if _, aheadNext, aheadDropped := r.Alerts(9999, 0); aheadNext != next || aheadDropped != 0 {
		t.Fatalf("ahead cursor: next %d dropped %d, want %d and 0", aheadNext, aheadDropped, next)
	}

	if err := r.Ingest(99, now, hijacked, []bgp.ASN{64601, 666}); err == nil {
		t.Fatal("unknown session must be rejected")
	}
}

func TestMergedRingEviction(t *testing.T) {
	ring := newMergedRing(4, nil)
	for i := 0; i < 6; i++ {
		ring.append(defense.Alert{Session: i})
	}
	alerts, next, dropped := ring.since(0, 0)
	if dropped != 2 || len(alerts) != 4 || next != 6 {
		t.Fatalf("since(0) = %d alerts, next %d, dropped %d; want 4, 6, 2", len(alerts), next, dropped)
	}
	if alerts[0].Seq != 2 || alerts[0].Session != 2 {
		t.Fatalf("oldest surviving alert is seq %d session %d, want 2/2", alerts[0].Seq, alerts[0].Session)
	}
	if got, _, _ := ring.since(0, 2); len(got) != 2 {
		t.Fatalf("max=2 returned %d alerts", len(got))
	}
}

func TestRouterBGPAndHTTP(t *testing.T) {
	r, err := New(Config{
		Watched: fleetWatched,
		Shards:  2,
		Speaker: bgpd.Config{
			ASN: 64500, BGPID: netip.MustParseAddr("198.51.100.1"),
		},
		ListenBGP:  "127.0.0.1:0",
		ListenHTTP: "127.0.0.1:0",
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Shutdown(context.Background())

	conn, err := net.Dial("tcp", r.BGPAddr())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bgpd.Establish(conn, bgpd.Config{
		ASN: 64601, BGPID: netip.MustParseAddr("203.0.113.9"),
	})
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	defer sess.Close()

	watched := netip.MustParsePrefix("10.10.0.0/16")
	send := func(p netip.Prefix, path ...bgp.ASN) {
		t.Helper()
		u := &bgp.Update{
			NLRI: []netip.Prefix{p},
			Attrs: bgp.PathAttributes{
				HasOrigin: true, Origin: bgp.OriginIGP,
				HasASPath: true, ASPath: bgp.Sequence(path...),
				NextHop: netip.AddrFrom4([4]byte{203, 0, 113, 1}),
			},
		}
		if err := sess.SendUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	send(watched, 64601, 65010)                                // legit
	send(watched, 64601, 666)                                  // same-prefix hijack
	send(netip.MustParsePrefix("10.40.7.0/24"), 64601, 667)    // more-specific hijack
	send(netip.MustParsePrefix("198.18.0.0/15"), 64601, 64700) // background, router-rejected
	if err := sess.SendUpdate(&bgp.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("198.19.0.0/16")}}); err != nil {
		t.Fatal(err)
	}

	base := "http://" + r.HTTPAddr()
	poller := &HTTPAlerts{Base: base}
	var alerts []monitord.SeqAlert
	waitFor(t, 5*time.Second, "2 alerts over HTTP", func() bool {
		alerts, _, _ = poller.Alerts(0, 0)
		return len(alerts) >= 2
	})
	kinds := map[defense.AlertKind]int{}
	for _, a := range alerts {
		kinds[a.Kind]++
	}
	if kinds[defense.AlertOriginChange] != 1 || kinds[defense.AlertMoreSpecific] != 1 {
		t.Fatalf("alert kinds = %v", kinds)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := httpGet(base + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp.status, resp.body
	}
	if code, body := get("/healthz"); code != 200 ||
		!strings.Contains(body, `"shards": 2`) || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "fleet_updates_forwarded_total") ||
		!strings.Contains(body, "fleet_shards 2") ||
		!strings.Contains(body, "monitord_updates_ingested_total") {
		t.Fatalf("/metrics = %d, missing fleet or merged shard families:\n%s", code, body)
	}
	if code, body := get("/rib?prefix=10.10.0.0/16"); code != 200 || !strings.Contains(body, `"routes"`) {
		t.Fatalf("/rib = %d %q", code, body)
	}
	if code, _ := get("/rib?prefix=192.168.0.0/16"); code != 404 {
		t.Fatalf("/rib unwatched = %d, want 404", code)
	}
	if code, _ := get("/rib?addr=10.10.1.1"); code != 200 {
		t.Fatalf("/rib?addr = %d, want 200", code)
	}
	if code, _ := get("/alerts?since=bogus"); code != 400 {
		t.Fatalf("/alerts bad cursor = %d, want 400", code)
	}
	if code, _ := get("/alerts?max=1099511627776"); code != 200 {
		t.Fatalf("/alerts huge max = %d, want 200 (clamped)", code)
	}
	if code, body := get("/anomalies"); code != 200 || !strings.Contains(body, `"escalated"`) {
		t.Fatalf("/anomalies = %d %q", code, body)
	}
	// Read-only API: mutating methods are 405 on every endpoint.
	for _, path := range []string{"/alerts", "/anomalies", "/healthz", "/metrics", "/rib?prefix=10.10.0.0/16"} {
		resp, err := httpPost(base + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.status != 405 {
			t.Fatalf("POST %s = %d, want 405", path, resp.status)
		}
	}
}
