package fleet

import (
	"sync"
	"time"

	"quicksand/internal/defense"
	"quicksand/internal/monitord"
	"quicksand/internal/obs"
)

// AlertSource is anything that serves the monitord alert-cursor
// contract: a shard daemon in process, or its /alerts endpoint over
// HTTP. See monitord.Daemon.Alerts for the cursor semantics the merger
// depends on (notably the ahead-cursor clamp after a shard restart).
type AlertSource interface {
	Alerts(cursor uint64, max int) (alerts []monitord.SeqAlert, next uint64, dropped uint64)
}

// mergedRing is the router-level alert ring: the merger appends alerts
// pulled off the shard rings, re-sequencing them into a single
// monotonic stream so fleet clients poll exactly like single-daemon
// clients. Same semantics as the monitord ring, including the
// ahead-cursor resync clamp.
type mergedRing struct {
	mu      sync.Mutex
	buf     []monitord.SeqAlert
	next    uint64
	n       int
	evicted *obs.Counter
}

func newMergedRing(capacity int, evicted *obs.Counter) *mergedRing {
	return &mergedRing{buf: make([]monitord.SeqAlert, capacity), evicted: evicted}
}

func (r *mergedRing) append(a defense.Alert) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	seq := r.next
	r.buf[seq%uint64(len(r.buf))] = monitord.SeqAlert{Seq: seq, Alert: a}
	r.next++
	if r.n < len(r.buf) {
		r.n++
	} else if r.evicted != nil {
		r.evicted.Inc()
	}
	return seq
}

func (r *mergedRing) since(cursor uint64, max int) (alerts []monitord.SeqAlert, next uint64, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := r.next - uint64(r.n)
	if cursor > r.next {
		cursor = r.next
	}
	start := cursor
	if start < oldest {
		dropped = oldest - start
		start = oldest
	}
	for seq := start; seq < r.next; seq++ {
		if max > 0 && len(alerts) >= max {
			break
		}
		alerts = append(alerts, r.buf[seq%uint64(len(r.buf))])
	}
	return alerts, start + uint64(len(alerts)), dropped
}

func (r *mergedRing) total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// merger drains every shard's alert ring into the merged ring, holding
// one cursor per shard — the fleet's vector cursor. Alerts from one
// shard stay in shard order (which is per-prefix order, since a prefix
// is owned by exactly one shard); interleaving across shards follows
// poll order. Each merged alert also feeds the Counter-RAPTOR anomaly
// detectors, whose per-prefix analytics are deterministic for exactly
// the same reason.
//
// A shard that restarts comes back with sequence numbers starting at 0
// while the merger still holds a high cursor; the ahead-cursor clamp in
// the shard's Alerts contract resynchronizes the vector cursor in one
// poll instead of wedging the merge forever.
type merger struct {
	r       *Router
	mu      sync.Mutex
	srcs    []AlertSource
	cursors []uint64
	ring    *mergedRing
	stop    chan struct{}
	done    chan struct{}
}

func newMerger(r *Router, srcs []AlertSource, capacity int) *merger {
	return &merger{
		r:       r,
		srcs:    srcs,
		cursors: make([]uint64, len(srcs)),
		ring:    newMergedRing(capacity, r.met.alertsDropped),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

func (m *merger) loop(interval time.Duration) {
	defer close(m.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.mu.Lock()
			m.pollLocked()
			m.mu.Unlock()
		}
	}
}

// pollLocked advances every shard cursor, appending new alerts to the
// merged ring and running the anomaly analytics. Callers hold m.mu.
func (m *merger) pollLocked() {
	for i, src := range m.srcs {
		alerts, next, dropped := src.Alerts(m.cursors[i], 0)
		m.cursors[i] = next
		if dropped > 0 {
			m.r.met.shardAlertsDropped.Add(dropped)
		}
		for _, a := range alerts {
			m.ring.append(a.Alert)
			m.r.met.alertsMerged.Inc()
			for _, an := range m.r.det.Observe(a.Alert) {
				m.r.recordAnomaly(an)
			}
		}
	}
}

// since polls every shard once, then reads the merged ring — so a
// client that arrives after the shards quiesced sees everything without
// waiting out a merge tick.
func (m *merger) since(cursor uint64, max int) (alerts []monitord.SeqAlert, next uint64, dropped uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pollLocked()
	return m.ring.since(cursor, max)
}

// shardCursors snapshots the vector cursor (for /healthz and tests).
func (m *merger) shardCursors() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, len(m.cursors))
	copy(out, m.cursors)
	return out
}

func (m *merger) shutdown() {
	close(m.stop)
	<-m.done
	// One final sweep so nothing a shard produced before its own
	// shutdown is stranded on a shard ring.
	m.mu.Lock()
	m.pollLocked()
	m.mu.Unlock()
}
