package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/netip"
	"strconv"
	"time"

	"quicksand/internal/monitord"
	"quicksand/internal/obs"
)

// The fleet router serves the same read-only HTTP API as a single
// monitord — identical wire shapes on /alerts and /rib, so single-daemon
// clients (pollers, the loadgen harness, curl muscle memory) work
// against a fleet unchanged — plus the fleet-only /anomalies endpoint
// and a /healthz that aggregates per-shard rows.

// alertJSON / alertsResponse mirror monitord's /alerts wire shape.
type alertJSON struct {
	Seq        uint64    `json:"seq"`
	Time       time.Time `json:"time"`
	Session    int       `json:"session"`
	Prefix     string    `json:"prefix"`
	Kind       string    `json:"kind"`
	ObservedAS uint32    `json:"observed_as"`
}

type alertsResponse struct {
	Alerts  []alertJSON `json:"alerts"`
	Next    uint64      `json:"next"`
	Dropped uint64      `json:"dropped"`
}

// anomalyJSON is the wire shape of one escalated anomaly.
type anomalyJSON struct {
	Time    time.Time `json:"time"`
	Prefix  string    `json:"prefix"`
	Kind    string    `json:"kind"`
	Score   float64   `json:"score"`
	Alerts  int       `json:"alerts"`
	Origins []uint32  `json:"origins,omitempty"`
}

type anomaliesResponse struct {
	Anomalies []anomalyJSON     `json:"anomalies"`
	Observed  uint64            `json:"alerts_observed"`
	Escalated map[string]uint64 `json:"escalated"`
}

// shardHealth is one shard's row in the fleet /healthz payload.
type shardHealth struct {
	Shard      int    `json:"shard"`
	Name       string `json:"name"`
	Up         bool   `json:"up"`
	Watched    int    `json:"watched_prefixes"`
	Forwarded  uint64 `json:"forwarded"`
	Dropped    uint64 `json:"forward_dropped"`
	QueueDepth int64  `json:"queue_depth"`
	Cursor     uint64 `json:"alert_cursor"`
}

type fleetHealthResponse struct {
	Status         string        `json:"status"`
	UptimeSeconds  float64       `json:"uptime_seconds"`
	Shards         int           `json:"shards"`
	SessionsActive int64         `json:"sessions_active"`
	AlertsMerged   uint64        `json:"alerts_merged"`
	Watched        int           `json:"watched_prefixes"`
	ShardRows      []shardHealth `json:"shard_health"`
}

func (r *Router) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/alerts", getOnly(r.handleAlerts))
	mux.HandleFunc("/anomalies", getOnly(r.handleAnomalies))
	mux.HandleFunc("/rib", getOnly(r.handleRIB))
	mux.HandleFunc("/healthz", getOnly(r.handleHealthz))
	mux.HandleFunc("/metrics", getOnly(r.handleMetrics))
	return mux
}

// getOnly and writeJSON mirror monitord's: read-only API, and encode
// failures become 500s instead of truncated 200s.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}

// handleAlerts serves GET /alerts?since=N&max=M over the merged stream,
// with the same parameter validation and server-side max ceiling as a
// single daemon.
func (r *Router) handleAlerts(w http.ResponseWriter, req *http.Request) {
	var cursor uint64
	if s := req.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad since cursor: "+err.Error(), http.StatusBadRequest)
			return
		}
		cursor = v
	}
	max := 1000
	if s := req.URL.Query().Get("max"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "bad max", http.StatusBadRequest)
			return
		}
		max = min(v, monitord.MaxAlertsPerRequest)
	}
	alerts, next, dropped := r.Alerts(cursor, max)
	resp := alertsResponse{Alerts: make([]alertJSON, 0, len(alerts)), Next: next, Dropped: dropped}
	for _, a := range alerts {
		resp.Alerts = append(resp.Alerts, alertJSON{
			Seq: a.Seq, Time: a.Time, Session: a.Session,
			Prefix: a.Prefix.String(), Kind: a.Kind.String(),
			ObservedAS: uint32(a.Observed),
		})
	}
	writeJSON(w, resp)
}

// handleAnomalies serves GET /anomalies: the recent escalations plus
// detector lifetime totals.
func (r *Router) handleAnomalies(w http.ResponseWriter, req *http.Request) {
	recent, observed, escalated := r.Anomalies()
	resp := anomaliesResponse{
		Anomalies: make([]anomalyJSON, 0, len(recent)),
		Observed:  observed,
		Escalated: make(map[string]uint64, len(escalated)),
	}
	for _, an := range recent {
		aj := anomalyJSON{
			Time: an.Time, Prefix: an.Prefix.String(), Kind: an.Kind.String(),
			Score: an.Score, Alerts: an.Alerts,
		}
		for _, o := range an.Origins {
			aj.Origins = append(aj.Origins, uint32(o))
		}
		resp.Anomalies = append(resp.Anomalies, aj)
	}
	for k, v := range escalated {
		resp.Escalated[k.String()] = v
	}
	writeJSON(w, resp)
}

// handleRIB serves GET /rib?prefix=… or ?addr=… by routing the query to
// the shard owning the covering watched prefix — the shard whose RIB
// holds every route for it. Queries outside the watchlist are 404: no
// shard ever saw those updates, by design.
func (r *Router) handleRIB(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	var shard int
	var ok bool
	switch {
	case q.Get("prefix") != "":
		p, err := netip.ParsePrefix(q.Get("prefix"))
		if err != nil {
			http.Error(w, "bad prefix: "+err.Error(), http.StatusBadRequest)
			return
		}
		shard, ok = r.table.route(p)
	case q.Get("addr") != "":
		a, err := netip.ParseAddr(q.Get("addr"))
		if err != nil {
			http.Error(w, "bad addr: "+err.Error(), http.StatusBadRequest)
			return
		}
		if a.Is4() {
			shard, ok = r.table.routeAddr(a)
		}
	default:
		http.Error(w, "need ?prefix= or ?addr=", http.StatusBadRequest)
		return
	}
	if !ok {
		http.Error(w, "not watched", http.StatusNotFound)
		return
	}
	if r.remotes[shard] != nil {
		r.proxyRIB(w, r.remotes[shard].shard.HTTPAddr, req.URL.RawQuery)
		return
	}
	r.localRIB(w, shard, q.Get("prefix"), q.Get("addr"))
}

// localRIB answers a routed /rib query from an in-process shard's live
// table, in monitord's wire shape.
func (r *Router) localRIB(w http.ResponseWriter, shard int, prefixQ, addrQ string) {
	rib := r.shards[shard].RIB()
	var entry *monitord.RIBEntry
	var ok bool
	if prefixQ != "" {
		p, _ := netip.ParsePrefix(prefixQ) // validated by caller
		entry, ok = rib.Lookup(p)
	} else {
		a, _ := netip.ParseAddr(addrQ)
		entry, ok = rib.LookupAddr(a)
	}
	if !ok {
		http.Error(w, "no route", http.StatusNotFound)
		return
	}
	type routeJSON struct {
		Session int       `json:"session"`
		Path    []uint32  `json:"path"`
		Updated time.Time `json:"updated"`
	}
	toJSON := func(rt monitord.Route) routeJSON {
		path := make([]uint32, len(rt.Path))
		for i, asn := range rt.Path {
			path[i] = uint32(asn)
		}
		return routeJSON{Session: rt.Session, Path: path, Updated: rt.Updated}
	}
	resp := struct {
		Prefix string      `json:"prefix"`
		Routes []routeJSON `json:"routes"`
		Best   *routeJSON  `json:"best,omitempty"`
	}{Prefix: entry.Prefix.String()}
	for _, rt := range entry.Routes {
		resp.Routes = append(resp.Routes, toJSON(rt))
	}
	if best, ok := entry.Best(); ok {
		bj := toJSON(best)
		resp.Best = &bj
	}
	writeJSON(w, resp)
}

// proxyRIB forwards a routed /rib query to a remote shard's own API and
// relays the response verbatim (status, content type and body).
func (r *Router) proxyRIB(w http.ResponseWriter, httpAddr, rawQuery string) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + httpAddr + "/rib?" + rawQuery)
	if err != nil {
		http.Error(w, "shard unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleHealthz serves GET /healthz with fleet-level status plus one
// row per shard.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	cursors := r.mrg.shardCursors()
	resp := fleetHealthResponse{
		Status:         "ok",
		UptimeSeconds:  time.Since(r.met.start).Seconds(),
		Shards:         len(r.sinks),
		SessionsActive: int64(r.met.sessionsActive.Value()),
		AlertsMerged:   r.met.alertsMerged.Value(),
		Watched:        len(r.cfg.Watched),
	}
	parts := Partition(r.cfg.Watched, len(r.sinks))
	for i := range r.sinks {
		row := shardHealth{
			Shard:     i,
			Name:      "shard" + strconv.Itoa(i),
			Up:        r.met.shardUp[i].Value() > 0,
			Watched:   len(parts[i]),
			Forwarded: r.met.forwarded[i].Value(),
			Dropped:   r.met.forwardDropped[i].Value(),
			Cursor:    cursors[i],
		}
		if rs := r.remotes[i]; rs != nil {
			row.Name = rs.shard.Name
			row.QueueDepth = rs.queued.Load()
		}
		if !row.Up {
			resp.Status = "degraded"
		}
		resp.ShardRows = append(resp.ShardRows, row)
	}
	writeJSON(w, resp)
}

// handleMetrics serves GET /metrics: the router's fleet_* families
// merged with every shard's monitord_* families — in-process registries
// snapshotted directly, remote daemons scraped live — through the obs
// scrape/merge layer, so one exposition describes the whole fleet.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	snaps := make([]*obs.Snapshot, 0, len(r.sinks)+1)
	own, err := obs.SnapshotRegistry(r.met.reg)
	if err != nil {
		http.Error(w, "snapshot: "+err.Error(), http.StatusInternalServerError)
		return
	}
	snaps = append(snaps, own)
	for _, reg := range r.regs {
		s, err := obs.SnapshotRegistry(reg)
		if err != nil {
			http.Error(w, "shard snapshot: "+err.Error(), http.StatusInternalServerError)
			return
		}
		snaps = append(snaps, s)
	}
	for _, rs := range r.remotes {
		if rs == nil {
			continue
		}
		s, err := obs.ScrapeTarget("http://" + rs.shard.HTTPAddr + "/metrics")
		if err != nil {
			continue // dead shard: serve what the fleet can see
		}
		snaps = append(snaps, s)
	}
	merged, err := obs.MergeSnapshots(snaps...)
	if err != nil {
		http.Error(w, "merge: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	merged.WritePrometheus(w)
}
