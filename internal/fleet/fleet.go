// Package fleet shards the monitord watchlist horizontally: a router
// hash-partitions the Tor-prefix watchlist across N monitord instances
// (in-process shards or remote daemons) and forwards each UPDATE only to
// the shard owning a matching watched prefix. Routing is
// longest-prefix-aware — a *more-specific* hijack of a watched prefix
// reaches the shard owning the covering prefix, the case naive
// prefix-hashing misroutes — and everything else is rejected at the
// router without ever touching a shard pipeline, which is where the
// fleet's throughput win comes from: under real load almost all traffic
// is unwatched background churn, and the PR 9 stage histograms show the
// single daemon spending its saturation budget dispatching exactly that
// traffic.
//
// The router exposes the same HTTP surface as a single daemon: /alerts
// serves a merged stream with one monotonic cursor backed by a vector of
// per-shard cursors, /healthz aggregates shard health, /metrics merges
// the fleet_* families with every shard's monitord_* families via the
// obs scraper/merger, and /rib proxies to the owning shard. On the
// merged stream, Counter-RAPTOR-style detectors (defense.AnomalyDetector)
// escalate raw alerts to scored anomalies served on /anomalies.
//
// Remote shards are forwarded over real BGP sessions with buffered
// redial + replay on the collector backoff schedule (bgpd.Backoff): a
// dead shard's updates queue in a bounded buffer and replay when the
// forwarder re-establishes, so a shard restart loses nothing that fits
// the buffer. Remote mode trades two fidelities for isolation: alert
// Session ids are the remote daemon's, and semantic timestamps are
// re-stamped at the remote's socket (BGP carries no timestamps).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpd"
	"quicksand/internal/defense"
	"quicksand/internal/monitord"
	"quicksand/internal/obs"
)

// RemoteShard names one remote monitord instance behind the router.
type RemoteShard struct {
	// Name labels the shard in health output (default "shard<i>").
	Name string
	// BGPAddr is the daemon's BGP listener, the forwarding target.
	BGPAddr string
	// HTTPAddr is the daemon's HTTP root ("host:port"), polled for
	// alerts and scraped for metrics.
	HTTPAddr string
}

// Config parameterises the router.
type Config struct {
	// Watched maps each monitored prefix to its legitimate origin AS
	// (required, non-empty, IPv4 only). The router partitions it across
	// the shards with Partition.
	Watched map[netip.Prefix]bgp.ASN

	// Shards is the number of in-process monitord shards to run
	// (default 2). Ignored when Remotes is non-empty.
	Shards int
	// Remotes switches the router to remote mode: one forwarder per
	// listed daemon, no in-process shards.
	Remotes []RemoteShard

	// ShardConfig is the template for in-process shard daemons. The
	// router overrides Watched (the shard's partition), the listeners
	// (in-process shards serve no BGP or HTTP), Collectors (none) and
	// Registry (one private registry per shard, aggregated by the
	// router's /metrics); every other knob — pipeline widths, alert
	// buffer, learning window, latency instrumentation, seed — passes
	// through to each shard.
	ShardConfig monitord.Config

	// Speaker is the router's BGP identity for inbound sessions and
	// outbound forwarding sessions.
	Speaker bgpd.Config
	// ListenBGP accepts inbound BGP sessions ("" disables).
	ListenBGP string
	// ListenHTTP serves the fleet HTTP API ("" disables).
	ListenHTTP string

	// ReadBatch bounds UPDATEs decoded per session read (default 64).
	ReadBatch int
	// AlertBuffer is the merged alert ring capacity (default 8192).
	AlertBuffer int
	// MergeInterval is the shard-ring poll period (default 2ms).
	MergeInterval time.Duration
	// ForwardBuffer bounds the per-remote replay queue (default 8192
	// updates); overflow while a shard is down is dropped and counted.
	ForwardBuffer int

	// Anomaly parameterises the Counter-RAPTOR detectors on the merged
	// stream (zero value: defense.AnomalyConfig defaults).
	Anomaly defense.AnomalyConfig
	// AnomalyBuffer bounds the recent anomalies kept for /anomalies
	// (default 256).
	AnomalyBuffer int

	// EstablishTimeout bounds every session handshake (default 10s).
	EstablishTimeout time.Duration
	// DialBackoffBase/Max/HealthyAfter parameterise the forwarder
	// redial schedule exactly like monitord's collector dialers
	// (defaults 500ms / 30s / 30s).
	DialBackoffBase  time.Duration
	DialBackoffMax   time.Duration
	DialHealthyAfter time.Duration
	// Seed derives forwarder backoff jitter (default 1).
	Seed int64

	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
	// Registry receives the router's fleet_* families (nil: private).
	Registry *obs.Registry
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Shards <= 0 {
		out.Shards = 2
	}
	if out.ReadBatch <= 0 {
		out.ReadBatch = 64
	}
	if out.AlertBuffer <= 0 {
		out.AlertBuffer = 8192
	}
	if out.MergeInterval <= 0 {
		out.MergeInterval = 2 * time.Millisecond
	}
	if out.ForwardBuffer <= 0 {
		out.ForwardBuffer = 8192
	}
	if out.AnomalyBuffer <= 0 {
		out.AnomalyBuffer = 256
	}
	if out.EstablishTimeout <= 0 {
		out.EstablishTimeout = 10 * time.Second
	}
	if out.DialBackoffBase <= 0 {
		out.DialBackoffBase = 500 * time.Millisecond
	}
	if out.DialBackoffMax <= 0 {
		out.DialBackoffMax = 30 * time.Second
	}
	if out.DialHealthyAfter <= 0 {
		out.DialHealthyAfter = 30 * time.Second
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// routerSession is the registry row for one update source feeding the
// router (an inbound BGP peer or an in-process Ingest source).
type routerSession struct {
	id      int
	peerAS  bgp.ASN
	remote  string
	source  string // "bgp", "local"
	sess    *bgpd.Session
	started time.Time
	updates atomic.Uint64
	closed  atomic.Bool
	// shardIDs maps shard index -> that shard daemon's session id for
	// this source (in-process mode). The router registers sources in
	// every shard in one critical section, so shardIDs[i] == id on all
	// shards — which is what makes fleet alerts carry the same Session
	// as a single daemon's would.
	shardIDs []int
}

// sink is one shard's forwarding endpoint.
type sink interface {
	// register mirrors a router session into the shard (in-process).
	register(rs *routerSession, name string, peer bgp.ASN)
	// forward delivers one prefix-level update.
	forward(rs *routerSession, t time.Time, prefix netip.Prefix, path []bgp.ASN)
	// quiesce waits (until deadline) for delivered work to be visible.
	quiesce(deadline time.Time) bool
}

// Router is a running fleet front-end. Create with New, stop with
// Shutdown.
type Router struct {
	cfg   Config
	table *watchTable
	met   *metrics

	sinks   []sink
	shards  []*monitord.Daemon // in-process mode; nil entries otherwise
	regs    []*obs.Registry    // in-process shard registries
	remotes []*remoteSink      // remote mode; nil entries otherwise

	det    *defense.AnomalyDetector
	anomMu sync.Mutex
	anoms  []defense.Anomaly // bounded recent window

	mrg *merger

	bgpLn   net.Listener
	httpLn  net.Listener
	httpSrv *http.Server
	httpErr chan error

	dialCtx    context.Context
	dialCancel context.CancelFunc
	sessWG     sync.WaitGroup
	fwdWG      sync.WaitGroup

	mu       sync.Mutex
	rawConns map[net.Conn]struct{}
	sessions map[int]*routerSession
	nextSess int

	shutOnce sync.Once
	shutErr  error
}

// New validates cfg, builds the shard fleet (boots in-process shard
// daemons or starts remote forwarders), binds the listeners, and starts
// the merger. The router runs until Shutdown.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Watched) == 0 {
		return nil, errors.New("fleet: Watched must name at least one prefix")
	}
	n := cfg.Shards
	if len(cfg.Remotes) > 0 {
		n = len(cfg.Remotes)
	}
	table, err := newWatchTable(cfg.Watched, n)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:      cfg,
		table:    table,
		met:      newFleetMetrics(cfg.Registry, n),
		det:      defense.NewAnomalyDetector(cfg.Anomaly),
		rawConns: make(map[net.Conn]struct{}),
		sessions: make(map[int]*routerSession),
	}
	r.dialCtx, r.dialCancel = context.WithCancel(context.Background())

	parts := Partition(cfg.Watched, n)
	srcs := make([]AlertSource, n)
	if len(cfg.Remotes) > 0 {
		r.remotes = make([]*remoteSink, n)
		for i, rem := range cfg.Remotes {
			if rem.BGPAddr == "" || rem.HTTPAddr == "" {
				r.shutdownPartial()
				return nil, fmt.Errorf("fleet: remote shard %d needs BGPAddr and HTTPAddr", i)
			}
			rs := newRemoteSink(r, i, rem)
			r.remotes[i] = rs
			r.sinks = append(r.sinks, rs)
			srcs[i] = &HTTPAlerts{Base: "http://" + rem.HTTPAddr}
			r.fwdWG.Add(1)
			go rs.run()
		}
	} else {
		r.shards = make([]*monitord.Daemon, n)
		r.regs = make([]*obs.Registry, n)
		r.remotes = make([]*remoteSink, n) // all nil; len used by collectors
		for i := 0; i < n; i++ {
			sc := cfg.ShardConfig
			sc.Watched = parts[i]
			sc.ListenBGP, sc.ListenHTTP = "", ""
			sc.Collectors = nil
			sc.Registry = obs.NewRegistry()
			sc.Logf = cfg.Logf
			if len(sc.Watched) == 0 {
				// monitord refuses an empty watchlist; an empty partition
				// (more shards than prefixes) still needs a live daemon so
				// shard indexes stay aligned. Watch an unroutable sentinel
				// the router will never forward to.
				sc.Watched = map[netip.Prefix]bgp.ASN{
					netip.MustParsePrefix("192.0.2.0/24"): 64496, // TEST-NET-1
				}
			}
			d, err := monitord.New(sc)
			if err != nil {
				r.shutdownPartial()
				return nil, fmt.Errorf("fleet: shard %d: %w", i, err)
			}
			r.shards[i] = d
			r.regs[i] = sc.Registry
			r.sinks = append(r.sinks, &inprocSink{idx: i, d: d})
			srcs[i] = d
			r.met.shardUp[i].Set(1)
		}
	}
	r.met.registerCollectors(r)
	r.mrg = newMerger(r, srcs, cfg.AlertBuffer)
	go r.mrg.loop(cfg.MergeInterval)

	if cfg.ListenBGP != "" {
		if r.bgpLn, err = net.Listen("tcp", cfg.ListenBGP); err != nil {
			r.shutdownPartial()
			return nil, fmt.Errorf("fleet: BGP listener: %w", err)
		}
		r.sessWG.Add(1)
		go r.acceptLoop()
		cfg.Logf("fleet: BGP listening on %s (%d shards)", r.bgpLn.Addr(), n)
	}
	if cfg.ListenHTTP != "" {
		if r.httpLn, err = net.Listen("tcp", cfg.ListenHTTP); err != nil {
			r.shutdownPartial()
			return nil, fmt.Errorf("fleet: HTTP listener: %w", err)
		}
		r.httpSrv = &http.Server{Handler: r.handler()}
		r.httpErr = make(chan error, 1)
		go func() { r.httpErr <- r.httpSrv.Serve(r.httpLn) }()
		cfg.Logf("fleet: HTTP listening on %s", r.httpLn.Addr())
	}
	return r, nil
}

// shutdownPartial tears down whatever New built before failing.
func (r *Router) shutdownPartial() {
	r.dialCancel()
	if r.mrg != nil {
		r.mrg.shutdown()
	}
	r.fwdWG.Wait()
	for _, d := range r.shards {
		if d != nil {
			d.Shutdown(context.Background())
		}
	}
	if r.bgpLn != nil {
		r.bgpLn.Close()
	}
}

// BGPAddr returns the bound BGP listener address ("" when disabled).
func (r *Router) BGPAddr() string {
	if r.bgpLn == nil {
		return ""
	}
	return r.bgpLn.Addr().String()
}

// HTTPAddr returns the bound HTTP listener address ("" when disabled).
func (r *Router) HTTPAddr() string {
	if r.httpLn == nil {
		return ""
	}
	return r.httpLn.Addr().String()
}

// Shards returns how many shards sit behind the router.
func (r *Router) Shards() int { return len(r.sinks) }

// Alerts serves the merged stream under the single-daemon cursor
// contract (see monitord.Daemon.Alerts), including the ahead-cursor
// resync clamp. Every call first drains the shard rings, so alerts
// visible on a quiesced shard are visible here.
func (r *Router) Alerts(cursor uint64, max int) (alerts []monitord.SeqAlert, next uint64, dropped uint64) {
	return r.mrg.since(cursor, max)
}

// Anomalies returns the recent escalated anomalies (newest last) plus
// lifetime totals from the detectors.
func (r *Router) Anomalies() (recent []defense.Anomaly, observed uint64, escalated map[defense.AnomalyKind]uint64) {
	r.anomMu.Lock()
	recent = append([]defense.Anomaly(nil), r.anoms...)
	r.anomMu.Unlock()
	observed, escalated = r.det.Totals()
	return recent, observed, escalated
}

func (r *Router) recordAnomaly(an defense.Anomaly) {
	if int(an.Kind) >= 0 && int(an.Kind) < len(r.met.anomalies) {
		r.met.anomalies[an.Kind].Inc()
	}
	r.cfg.Logf("fleet: anomaly %s on %v score=%.2f (%d alerts in window)",
		an.Kind, an.Prefix, an.Score, an.Alerts)
	r.anomMu.Lock()
	r.anoms = append(r.anoms, an)
	if over := len(r.anoms) - r.cfg.AnomalyBuffer; over > 0 {
		r.anoms = append(r.anoms[:0], r.anoms[over:]...)
	}
	r.anomMu.Unlock()
}

// RegisterSource allocates a session id for an in-process update source
// (tests, simulation streams), mirroring it into every in-process shard
// so shard-local session ids match the router's.
func (r *Router) RegisterSource(name string, peer bgp.ASN) int {
	rs := r.registerSession(nil, name, "local", peer)
	return rs.id
}

// registerSession allocates the router session id and mirrors the
// source into every shard inside one critical section — concurrent
// handshakes must not interleave their per-shard registrations, or
// shard-local ids would diverge from router ids.
func (r *Router) registerSession(sess *bgpd.Session, remote, source string, peer bgp.ASN) *routerSession {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := &routerSession{
		id: r.nextSess, sess: sess, remote: remote, source: source,
		peerAS: peer, started: time.Now(),
		shardIDs: make([]int, len(r.sinks)),
	}
	r.nextSess++
	r.sessions[rs.id] = rs
	for _, s := range r.sinks {
		s.register(rs, remote, peer)
	}
	r.met.sessionsAccepted.Add(1)
	r.met.sessionsActive.Add(1)
	return rs
}

func (r *Router) closeSession(rs *routerSession) {
	if rs.closed.CompareAndSwap(false, true) {
		r.met.sessionsActive.Add(-1)
	}
	if rs.sess != nil {
		rs.sess.Close()
	}
}

// Ingest feeds one update through the router as if received on the
// given source session: route to the owning shard or reject as
// unwatched. A nil path is a withdrawal.
func (r *Router) Ingest(session int, t time.Time, prefix netip.Prefix, path []bgp.ASN) error {
	r.mu.Lock()
	rs, ok := r.sessions[session]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("fleet: unknown session %d", session)
	}
	r.route(rs, t, prefix, path)
	return nil
}

// route is the per-update hot path: validate, consult the watch table,
// and forward to the owning shard or count the rejection.
func (r *Router) route(rs *routerSession, t time.Time, prefix netip.Prefix, path []bgp.ASN) {
	if !prefix.IsValid() || !prefix.Addr().Is4() {
		r.met.droppedNonIPv4.Inc()
		return
	}
	shard, ok := r.table.route(prefix)
	if !ok {
		r.met.unwatched.Inc()
		return
	}
	rs.updates.Add(1)
	r.met.forwarded[shard].Inc()
	r.sinks[shard].forward(rs, t, prefix, path)
}

// acceptLoop accepts inbound BGP connections until the listener closes.
func (r *Router) acceptLoop() {
	defer r.sessWG.Done()
	for {
		conn, err := r.bgpLn.Accept()
		if err != nil {
			return
		}
		if !r.trackConn(conn) {
			conn.Close()
			return
		}
		r.sessWG.Add(1)
		go r.handleConn(conn)
	}
}

func (r *Router) trackConn(conn net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rawConns == nil {
		return false
	}
	r.rawConns[conn] = struct{}{}
	return true
}

func (r *Router) untrackConn(conn net.Conn) {
	r.mu.Lock()
	if r.rawConns != nil {
		delete(r.rawConns, conn)
	}
	r.mu.Unlock()
}

// handleConn runs the OPEN handshake, registers the session in every
// shard, then routes its updates until the session drops.
func (r *Router) handleConn(conn net.Conn) {
	defer r.sessWG.Done()
	conn.SetDeadline(time.Now().Add(r.cfg.EstablishTimeout))
	sess, err := bgpd.Establish(conn, r.cfg.Speaker)
	r.untrackConn(conn)
	if err != nil {
		conn.Close()
		r.cfg.Logf("fleet: handshake from %v failed: %v", conn.RemoteAddr(), err)
		return
	}
	conn.SetDeadline(time.Time{})
	rs := r.registerSession(sess, conn.RemoteAddr().String(), "bgp", sess.PeerAS())
	r.cfg.Logf("fleet: session %d established with AS%d (%s)", rs.id, uint32(rs.peerAS), rs.remote)
	r.readLoop(sess, rs)
}

// readLoop decodes update batches and routes each prefix-level update.
// The semantic timestamp is the batch receive stamp, like monitord's.
func (r *Router) readLoop(sess *bgpd.Session, rs *routerSession) {
	defer r.closeSession(rs)
	batch := make([]bgp.Update, r.cfg.ReadBatch)
	for {
		n, start, err := sess.RecvUpdateBatchStamped(batch)
		for i := range batch[:n] {
			u := &batch[i]
			for _, p := range u.Withdrawn {
				r.route(rs, start, p, nil)
			}
			if len(u.NLRI) == 0 {
				continue
			}
			if !u.Attrs.HasASPath {
				r.met.droppedNoPath.Add(uint64(len(u.NLRI)))
				continue
			}
			path := flattenPath(u.Attrs.ASPath)
			for _, p := range u.NLRI {
				r.route(rs, start, p, path)
			}
		}
		if err != nil {
			if !errors.Is(err, bgpd.ErrClosed) {
				r.cfg.Logf("fleet: session %d down: %v", rs.id, err)
			}
			return
		}
	}
}

// emptyPath keeps a present-but-empty AS_PATH distinguishable from a
// withdrawal through flattening (see monitord's item contract).
var emptyPath = []bgp.ASN{}

func flattenPath(p bgp.ASPath) []bgp.ASN {
	out := emptyPath
	for _, s := range p.Segments {
		out = append(out, s.ASes...)
	}
	return out
}

// WaitQuiesce blocks until every forwarded update is visible in shard
// state and the merged stream, or the timeout elapses.
func (r *Router) WaitQuiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	ok := true
	for _, s := range r.sinks {
		ok = s.quiesce(deadline) && ok
	}
	// Drain whatever the quiesced shards just appended.
	r.mrg.mu.Lock()
	r.mrg.pollLocked()
	r.mrg.mu.Unlock()
	return ok
}

// Shutdown gracefully stops the router: no new sessions, every live
// session closed, forwarders drained, in-process shards shut down, the
// merger stopped after a final sweep, and the HTTP server stopped. It
// is idempotent; ctx bounds only the HTTP drain.
func (r *Router) Shutdown(ctx context.Context) error {
	r.shutOnce.Do(func() {
		r.dialCancel()
		if r.bgpLn != nil {
			r.bgpLn.Close()
		}
		r.mu.Lock()
		raw := make([]net.Conn, 0, len(r.rawConns))
		for c := range r.rawConns {
			raw = append(raw, c)
		}
		r.rawConns = nil
		sess := make([]*routerSession, 0, len(r.sessions))
		for _, rs := range r.sessions {
			sess = append(sess, rs)
		}
		r.mu.Unlock()
		for _, c := range raw {
			c.Close()
		}
		for _, rs := range sess {
			r.closeSession(rs)
		}
		r.sessWG.Wait()
		// No producers remain: stop the forwarders, then the shards.
		r.fwdWG.Wait()
		for _, d := range r.shards {
			if d != nil {
				if err := d.Shutdown(ctx); err != nil && r.shutErr == nil {
					r.shutErr = err
				}
			}
		}
		// Final merge sweep happens inside mrg.shutdown — but only
		// in-process sources still answer; remote polls may fail (their
		// daemons are not ours to stop) and that is fine.
		r.mrg.shutdown()
		if r.httpSrv != nil {
			if err := r.httpSrv.Shutdown(ctx); err != nil && r.shutErr == nil {
				r.shutErr = err
			}
			if err := <-r.httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) && r.shutErr == nil {
				r.shutErr = err
			}
		}
		r.cfg.Logf("fleet: shutdown complete (%d alerts merged)", r.mrg.ring.total())
	})
	return r.shutErr
}
