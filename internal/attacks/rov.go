package attacks

import (
	"quicksand/internal/bgp"
	"quicksand/internal/topology"
)

// Route-origin validation (RPKI/ROV) is the deployable slice of "BGP
// security improvements" the paper's conclusion calls for: a ROA binds
// the victim's prefix to its legitimate origin AS, and validating ASes
// drop announcements whose origin disagrees. Exact-prefix hijacks (and
// the interceptions built from them) lose exactly the region that
// validates or sits behind validators on the propagation path.

// ROVFilter builds an import filter enforcing a ROA that binds the
// attacked prefix to legitimateOrigin at every validating AS.
func ROVFilter(legitimateOrigin bgp.ASN, validators map[bgp.ASN]bool) topology.ImportFilter {
	return func(at, origin bgp.ASN) bool {
		if !validators[at] {
			return true
		}
		return origin == legitimateOrigin
	}
}

// HijackWithROV is Hijack under partial ROV deployment: validating ASes
// reject the attacker's origination outright.
func HijackWithROV(g *topology.Graph, victim, attacker bgp.ASN, validators map[bgp.ASN]bool) (*HijackResult, error) {
	if victim == attacker {
		return nil, errSameAS(victim)
	}
	rt, err := g.Routes(ROVFilter(victim, validators),
		topology.Origin{ASN: victim}, topology.Origin{ASN: attacker})
	if err != nil {
		return nil, err
	}
	res := &HijackResult{Victim: victim, Attacker: attacker, Routes: rt}
	res.Captured, res.CaptureFraction = capturedBy(rt, victim, attacker)
	return res, nil
}

func errSameAS(asn bgp.ASN) error {
	return &sameASError{asn}
}

type sameASError struct{ asn bgp.ASN }

func (e *sameASError) Error() string {
	return "attacks: attacker and victim are the same AS " + e.asn.String()
}
