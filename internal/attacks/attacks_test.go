package attacks

import (
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/topology"
	"quicksand/internal/torconsensus"
)

func genTopology(t testing.TB) *topology.Graph {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{
		Tier1: 5, Tier2: 40, Tier3: 300,
		Tier2PeerProb: 0.08, MaxT2Providers: 3, MaxT3Providers: 3, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHijackCapturesSubstantialFraction(t *testing.T) {
	g := genTopology(t)
	t3 := g.TierASNs(3)
	victim, attacker := t3[0], t3[len(t3)/2]
	res, err := Hijack(g, victim, attacker)
	if err != nil {
		t.Fatal(err)
	}
	if res.CaptureFraction <= 0.05 || res.CaptureFraction >= 1 {
		t.Fatalf("capture fraction = %v, want a substantial partial split", res.CaptureFraction)
	}
	// The victim always keeps its own route.
	if r, _ := res.Routes.Route(victim); r.Type != topology.RouteOrigin {
		t.Fatalf("victim route = %+v", r)
	}
	// Captured ASes actually route to the attacker.
	for _, a := range res.Captured {
		if r, _ := res.Routes.Route(a); r.Origin != attacker {
			t.Fatalf("captured AS %v routes to %v", a, r.Origin)
		}
	}
}

func TestHijackSameASRejected(t *testing.T) {
	g := genTopology(t)
	v := g.TierASNs(3)[0]
	if _, err := Hijack(g, v, v); err == nil {
		t.Fatal("self-hijack accepted")
	}
}

func TestAnonymitySet(t *testing.T) {
	g := genTopology(t)
	t3 := g.TierASNs(3)
	res, err := Hijack(g, t3[0], t3[7])
	if err != nil {
		t.Fatal(err)
	}
	clients := t3[10:60]
	anon := res.AnonymitySet(clients)
	if len(anon) == 0 || len(anon) >= len(clients) {
		t.Fatalf("anonymity set %d of %d clients; expected a strict subset", len(anon), len(clients))
	}
	cap := res.CapturedSet()
	for _, c := range anon {
		if !cap[c] && c != res.Attacker {
			t.Fatalf("client %v in anonymity set but not captured", c)
		}
	}
}

func TestMoreSpecificHijackCapturesAll(t *testing.T) {
	g := genTopology(t)
	t3 := g.TierASNs(3)
	victim, attacker := t3[0], t3[9]
	res, err := MoreSpecificHijack(g, victim, attacker)
	if err != nil {
		t.Fatal(err)
	}
	// LPM: everyone except the victim (and attacker) is captured.
	if res.CaptureFraction < 0.999 {
		t.Fatalf("more-specific capture fraction = %v, want ~1", res.CaptureFraction)
	}
	same, err := Hijack(g, victim, attacker)
	if err != nil {
		t.Fatal(err)
	}
	if res.CaptureFraction <= same.CaptureFraction {
		t.Fatal("more-specific hijack should capture more than same-prefix hijack")
	}
}

func TestInterceptKeepsReturnPath(t *testing.T) {
	g := genTopology(t)
	t3 := g.TierASNs(3)
	succ := 0
	trials := 0
	for i := 1; i <= 20; i++ {
		victim, attacker := t3[0], t3[i*7%len(t3)]
		if victim == attacker {
			continue
		}
		res, err := Intercept(g, victim, attacker)
		if err != nil {
			t.Fatal(err)
		}
		trials++
		if len(res.PathToVictim) < 2 || res.PathToVictim[0] != attacker {
			t.Fatalf("bad return path %v", res.PathToVictim)
		}
		if res.Success {
			// The return path must be clean: no hop captured.
			cap := res.CapturedSet()
			for _, hop := range res.PathToVictim[1:] {
				if cap[hop] {
					t.Fatalf("successful interception with polluted hop %v", hop)
				}
			}
			// A single-homed attacker that must withhold from its only
			// provider legitimately captures nobody; count effective
			// interceptions (clean path AND someone captured).
			if len(res.Captured) > 0 {
				succ++
			}
		}
	}
	if succ == 0 {
		t.Fatalf("no effective interceptions in %d trials", trials)
	}
}

func TestScopedHijackSmallerFootprint(t *testing.T) {
	g := genTopology(t)
	t3 := g.TierASNs(3)
	victim, attacker := t3[0], t3[11]
	// Announce to a single provider of the attacker.
	provs := g.AS(attacker).Providers()
	if len(provs) == 0 {
		t.Fatal("attacker has no providers")
	}
	scoped, err := ScopedHijack(g, victim, attacker, provs[:1])
	if err != nil {
		t.Fatal(err)
	}
	full, err := Hijack(g, victim, attacker)
	if err != nil {
		t.Fatal(err)
	}
	if len(scoped.Captured) == 0 {
		t.Fatal("scoped hijack captured nobody")
	}
	if len(scoped.Captured) > len(full.Captured) {
		t.Fatal("scoped hijack captured more than full hijack")
	}
	if scoped.Footprint >= g.Len()-1 {
		t.Fatalf("footprint %d is the whole Internet", scoped.Footprint)
	}
	// Footprint at least covers the captured ASes.
	if scoped.Footprint < len(scoped.Captured) {
		t.Fatalf("footprint %d < captured %d", scoped.Footprint, len(scoped.Captured))
	}
}

func TestScopedHijackValidation(t *testing.T) {
	g := genTopology(t)
	t3 := g.TierASNs(3)
	if _, err := ScopedHijack(g, t3[0], t3[1], nil); err == nil {
		t.Fatal("empty announce set accepted")
	}
	if _, err := ScopedHijack(g, t3[0], t3[1], []bgp.ASN{t3[2]}); err == nil {
		t.Fatal("non-neighbor announce target accepted")
	}
}

func TestSurveillance(t *testing.T) {
	va := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
	cons := &torconsensus.Consensus{ValidAfter: va}
	add := func(id string, addr string, flags torconsensus.Flag, bw uint64) {
		cons.Relays = append(cons.Relays, torconsensus.Relay{
			Nickname: id, Identity: id, Published: va,
			Addr:      netip.MustParseAddr(addr),
			Flags:     flags | torconsensus.FlagRunning | torconsensus.FlagValid,
			Bandwidth: bw, ExitPolicy: "accept 1-65535",
		})
	}
	add("g1", "10.1.0.1", torconsensus.FlagGuard, 300)
	add("g2", "10.2.0.1", torconsensus.FlagGuard, 100)
	add("e1", "10.3.0.1", torconsensus.FlagExit, 500)
	add("e2", "10.4.0.1", torconsensus.FlagExit, 500)

	observedPrefix := netip.MustParsePrefix("10.1.0.0/16")
	s := Surveillance(cons, func(r *torconsensus.Relay) bool {
		return observedPrefix.Contains(r.Addr)
	})
	if s.GuardShare != 0.75 {
		t.Fatalf("GuardShare = %v, want 0.75", s.GuardShare)
	}
	if s.ExitShare != 0 {
		t.Fatalf("ExitShare = %v, want 0", s.ExitShare)
	}
	if s.CircuitShare != 0.75 {
		t.Fatalf("CircuitShare = %v", s.CircuitShare)
	}
	// Observing nothing gives zero shares.
	z := Surveillance(cons, func(*torconsensus.Relay) bool { return false })
	if z.GuardShare != 0 || z.ExitShare != 0 || z.CircuitShare != 0 {
		t.Fatalf("zero observation shares: %+v", z)
	}
}

func TestHijackWithROV(t *testing.T) {
	g := genTopology(t)
	t3 := g.TierASNs(3)
	victim, attacker := t3[0], t3[40]
	base, err := Hijack(g, victim, attacker)
	if err != nil {
		t.Fatal(err)
	}
	// No validators: identical outcome to a plain hijack.
	none, err := HijackWithROV(g, victim, attacker, nil)
	if err != nil {
		t.Fatal(err)
	}
	if none.CaptureFraction != base.CaptureFraction {
		t.Fatalf("no-validator ROV capture %.3f != plain %.3f",
			none.CaptureFraction, base.CaptureFraction)
	}
	// Universal deployment: nobody routes to the attacker.
	all := make(map[bgp.ASN]bool)
	for _, asn := range g.ASNs() {
		all[asn] = true
	}
	full, err := HijackWithROV(g, victim, attacker, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Captured) != 0 {
		t.Fatalf("full ROV still captured %d ASes", len(full.Captured))
	}
	// Everyone still reaches the victim.
	for _, asn := range g.ASNs() {
		if asn == attacker {
			continue
		}
		r, ok := full.Routes.Route(asn)
		if !ok || r.Origin != victim {
			t.Fatalf("%v lost its route to the victim under ROV", asn)
		}
	}
	// Partial deployment at the tier-1 clique shrinks capture.
	t1 := make(map[bgp.ASN]bool)
	for _, asn := range g.TierASNs(1) {
		t1[asn] = true
	}
	partial, err := HijackWithROV(g, victim, attacker, t1)
	if err != nil {
		t.Fatal(err)
	}
	if partial.CaptureFraction >= base.CaptureFraction {
		t.Fatalf("tier-1 ROV did not shrink capture: %.3f vs %.3f",
			partial.CaptureFraction, base.CaptureFraction)
	}
	if _, err := HijackWithROV(g, victim, victim, nil); err == nil {
		t.Fatal("self hijack accepted")
	}
}

func TestISPAdversary(t *testing.T) {
	g := genTopology(t)
	t3 := g.TierASNs(3)
	client, guardAS, exitAS, destAS := t3[1], t3[50], t3[100], t3[150]
	res, err := ISPAdversary(g, client, guardAS, exitAS, destAS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EntryASes) == 0 {
		t.Fatal("no entry ASes")
	}
	// The interceptor must be on the entry path and not the endpoints.
	if res.Interceptor == client || res.Interceptor == guardAS {
		t.Fatalf("interceptor = %v", res.Interceptor)
	}
	if res.CaptureFraction < 0 || res.CaptureFraction > 1 {
		t.Fatalf("capture fraction = %v", res.CaptureFraction)
	}
	// Across many circuits, at least one configuration must complete
	// the pair (entry seen passively + exit captured).
	completed := 0
	for i := 0; i < 30; i++ {
		r, err := ISPAdversary(g, t3[(i*3+1)%len(t3)], t3[(i*7+11)%len(t3)],
			t3[(i*13+29)%len(t3)], t3[(i*17+41)%len(t3)])
		if err != nil {
			continue
		}
		if r.ExitCaptured {
			completed++
		}
	}
	if completed == 0 {
		t.Fatal("ISP adversary never completed the correlation pair")
	}
}

func TestAsymmetricDeanonymization(t *testing.T) {
	cfg := DefaultAsymmetricConfig()
	cfg.FileSize = 2 << 20
	cfg.Decoys = 5
	res, err := AsymmetricDeanonymization(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched {
		t.Fatalf("true client not identified: true=%.3f bestDecoy=%.3f",
			res.TrueScore, res.BestDecoyScore)
	}
	if res.TrueScore <= res.BestDecoyScore {
		t.Fatalf("no margin: true=%.3f decoy=%.3f", res.TrueScore, res.BestDecoyScore)
	}
}

func TestAsymmetricValidation(t *testing.T) {
	cfg := DefaultAsymmetricConfig()
	cfg.Decoys = 0
	if _, err := AsymmetricDeanonymization(cfg); err == nil {
		t.Fatal("zero decoys accepted")
	}
	cfg = DefaultAsymmetricConfig()
	cfg.Bin = 0
	if _, err := AsymmetricDeanonymization(cfg); err == nil {
		t.Fatal("zero bin accepted")
	}
}

func BenchmarkHijack(b *testing.B) {
	g := genTopology(b)
	t3 := g.TierASNs(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hijack(g, t3[0], t3[1+i%100]); err != nil {
			b.Fatal(err)
		}
	}
}
