// Package attacks implements the active BGP attacks of paper §3.2 and the
// asymmetric deanonymization experiment of §3.3:
//
//   - prefix hijack: the attacker originates the victim's prefix,
//     blackholing the captured portion of the Internet and learning the
//     anonymity set of clients using the victim guard;
//   - prefix interception: a hijack variant where the attacker keeps a
//     clean path back to the victim, so connections stay alive and full
//     timing analysis becomes possible;
//   - community-scoped stealth hijack: the announcement propagates to
//     only a few chosen neighbors, trading captured ASes for a much
//     smaller detection footprint;
//   - end-to-end asymmetric deanonymization: interception plus TCP-level
//     byte-count correlation identifying the true client among decoys.
package attacks

import (
	"fmt"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/correlation"
	"quicksand/internal/tcpsim"
	"quicksand/internal/topology"
	"quicksand/internal/torconsensus"
)

// HijackResult describes the routing outcome of a prefix hijack.
type HijackResult struct {
	Victim   bgp.ASN
	Attacker bgp.ASN
	// Captured lists the ASes (excluding the attacker) whose best route
	// for the victim prefix now leads to the attacker; their traffic is
	// blackholed and its source addresses are readable by the attacker.
	Captured []bgp.ASN
	// CaptureFraction is |Captured| over all other ASes (victim and
	// attacker excluded).
	CaptureFraction float64
	// Routes is the post-attack routing table, for downstream analyses
	// (array-backed; use Route/At/PathFrom, or Table for the legacy map).
	Routes *topology.CompiledRoutes
}

// CapturedSet returns the captured ASes as a set.
func (h *HijackResult) CapturedSet() map[bgp.ASN]bool {
	s := make(map[bgp.ASN]bool, len(h.Captured))
	for _, a := range h.Captured {
		s[a] = true
	}
	return s
}

// AnonymitySet intersects candidate client ASes with the captured set:
// the clients whose connections to the victim guard the attacker can
// enumerate from IP headers during the hijack (§3.2's reduced anonymity
// set).
func (h *HijackResult) AnonymitySet(clients []bgp.ASN) []bgp.ASN {
	cap := h.CapturedSet()
	var out []bgp.ASN
	for _, c := range clients {
		if cap[c] || c == h.Attacker {
			out = append(out, c)
		}
	}
	return out
}

// capturedBy scans the table id-ascending (== ASN-ascending, so Captured
// comes out sorted) for ASes routing toward the attacker's origination.
func capturedBy(rt *topology.CompiledRoutes, victim, attacker bgp.ASN) (captured []bgp.ASN, fraction float64) {
	others := 0
	for i := 0; i < rt.Len(); i++ {
		asn := rt.ASN(i)
		if asn == victim || asn == attacker {
			continue
		}
		others++
		if r := rt.At(i); r.Type != topology.RouteNone && r.Origin == attacker {
			captured = append(captured, asn)
		}
	}
	if others > 0 {
		fraction = float64(len(captured)) / float64(others)
	}
	return captured, fraction
}

func computeHijack(g *topology.Graph, victim, attacker topology.Origin) (*HijackResult, error) {
	if victim.ASN == attacker.ASN {
		return nil, fmt.Errorf("attacks: attacker and victim are the same AS %v", victim.ASN)
	}
	rt, err := g.Routes(nil, victim, attacker)
	if err != nil {
		return nil, err
	}
	res := &HijackResult{Victim: victim.ASN, Attacker: attacker.ASN, Routes: rt}
	res.Captured, res.CaptureFraction = capturedBy(rt, victim.ASN, attacker.ASN)
	return res, nil
}

// Hijack simulates an ordinary same-prefix hijack: attacker announces the
// victim's exact prefix to all its neighbors. (A more-specific-prefix
// hijack captures everything and is detected by every AS; see
// MoreSpecificHijack.)
func Hijack(g *topology.Graph, victim, attacker bgp.ASN) (*HijackResult, error) {
	return computeHijack(g, topology.Origin{ASN: victim}, topology.Origin{ASN: attacker})
}

// MoreSpecificHijack simulates announcing a more-specific prefix of the
// victim's block: longest-prefix match means every AS with any route to
// the attacker's announcement prefers it, so the attacker captures the
// entire Internet (minus the victim itself) — at the cost of a globally
// visible bogus announcement.
func MoreSpecificHijack(g *topology.Graph, victim, attacker bgp.ASN) (*HijackResult, error) {
	if victim == attacker {
		return nil, fmt.Errorf("attacks: attacker and victim are the same AS %v", victim)
	}
	// Only the attacker originates the more-specific; the victim's
	// covering announcement does not compete under LPM.
	rt, err := g.Routes(nil, topology.Origin{ASN: attacker})
	if err != nil {
		return nil, err
	}
	res := &HijackResult{Victim: victim, Attacker: attacker, Routes: rt}
	res.Captured, res.CaptureFraction = capturedBy(rt, victim, attacker)
	return res, nil
}

// InterceptionResult extends HijackResult with the attacker's forwarding
// path back to the victim.
type InterceptionResult struct {
	HijackResult
	// PathToVictim is the attacker's (pre-attack) path used to forward
	// captured traffic onward to the victim.
	PathToVictim []bgp.ASN
	// Success reports whether the path stayed clean: no AS on it was
	// captured by the attack, so forwarded packets reach the victim and
	// connections stay alive.
	Success bool
}

// Intercept simulates a prefix interception (Ballani et al., as used in
// §3.2): the attacker announces the victim's prefix but withholds the
// announcement from the neighbors it uses to reach the victim, keeping a
// working return path. On success the attacker sees the captured ASes'
// traffic *and* the connections survive, enabling exact deanonymization
// via timing analysis.
func Intercept(g *topology.Graph, victim, attacker bgp.ASN) (*InterceptionResult, error) {
	if victim == attacker {
		return nil, fmt.Errorf("attacks: attacker and victim are the same AS %v", victim)
	}
	// Pre-attack path from attacker to victim.
	pre, err := g.Routes(nil, topology.Origin{ASN: victim})
	if err != nil {
		return nil, err
	}
	path, ok := pre.PathFrom(attacker)
	if !ok {
		return nil, fmt.Errorf("attacks: attacker %v has no route to victim %v", attacker, victim)
	}
	// Withhold the malicious announcement from the first hop of the
	// return path.
	withhold := map[bgp.ASN]bool{}
	if len(path) > 1 {
		withhold[path[1]] = true
	}
	res, err := computeHijack(g,
		topology.Origin{ASN: victim},
		topology.Origin{ASN: attacker, WithholdFrom: withhold})
	if err != nil {
		return nil, err
	}
	out := &InterceptionResult{HijackResult: *res, PathToVictim: path, Success: true}
	captured := res.CapturedSet()
	for _, hop := range path[1:] { // the attacker itself is "captured" by design
		if captured[hop] {
			out.Success = false
			break
		}
	}
	return out, nil
}

// ScopedHijackResult extends HijackResult with the detection footprint of
// a community-scoped announcement.
type ScopedHijackResult struct {
	HijackResult
	// Footprint counts the ASes whose best route changed relative to the
	// pre-attack state — the set of networks that could possibly notice
	// the attack from their own routing tables (the Renesys-style
	// stealth metric of §3.2).
	Footprint int
}

// ScopedHijack simulates a community-scoped stealth hijack: the attacker
// announces the victim's prefix to only the given neighbors (as BGP
// communities limiting propagation would arrange), capturing a small,
// predictable region while keeping the bogus route invisible elsewhere.
func ScopedHijack(g *topology.Graph, victim, attacker bgp.ASN, announceTo []bgp.ASN) (*ScopedHijackResult, error) {
	if len(announceTo) == 0 {
		return nil, fmt.Errorf("attacks: scoped hijack needs at least one target neighbor")
	}
	only := make(map[bgp.ASN]bool, len(announceTo))
	for _, n := range announceTo {
		if _, adjacent := g.RelBetween(attacker, n); !adjacent {
			return nil, fmt.Errorf("attacks: %v is not a neighbor of attacker %v", n, attacker)
		}
		only[n] = true
	}
	pre, err := g.Routes(nil, topology.Origin{ASN: victim})
	if err != nil {
		return nil, err
	}
	res, err := computeHijack(g,
		topology.Origin{ASN: victim},
		topology.Origin{ASN: attacker, AnnounceOnly: only})
	if err != nil {
		return nil, err
	}
	out := &ScopedHijackResult{HijackResult: *res}
	for i := 0; i < pre.Len(); i++ {
		if pre.ASN(i) == attacker {
			continue
		}
		a, b := pre.At(i), res.Routes.At(i)
		aok, bok := a.Type != topology.RouteNone, b.Type != topology.RouteNone
		if aok != bok || (aok && (a.Origin != b.Origin || a.NextHop != b.NextHop)) {
			out.Footprint++
		}
	}
	return out, nil
}

// SurveillanceShare quantifies §3.2's "general surveillance": the
// bandwidth-weighted fraction of Tor entry (guard) and exit traffic an
// adversary observes after capturing the given set of relay addresses.
type SurveillanceShare struct {
	GuardShare float64 // fraction of entry traffic observed
	ExitShare  float64 // fraction of exit traffic observed
	// CircuitShare is the fraction of circuits observable on at least
	// one end, treating guard and exit choices as independent
	// bandwidth-weighted draws.
	CircuitShare float64
}

// Surveillance computes the traffic shares for an adversary observing all
// relays for which observed returns true (e.g. relays inside intercepted
// prefixes).
func Surveillance(cons *torconsensus.Consensus, observed func(r *torconsensus.Relay) bool) SurveillanceShare {
	var gTot, gObs, eTot, eObs float64
	for i := range cons.Relays {
		r := &cons.Relays[i]
		if r.IsGuard() {
			gTot += float64(r.Bandwidth)
			if observed(r) {
				gObs += float64(r.Bandwidth)
			}
		}
		if r.IsExit() {
			eTot += float64(r.Bandwidth)
			if observed(r) {
				eObs += float64(r.Bandwidth)
			}
		}
	}
	var s SurveillanceShare
	if gTot > 0 {
		s.GuardShare = gObs / gTot
	}
	if eTot > 0 {
		s.ExitShare = eObs / eTot
	}
	s.CircuitShare = 1 - (1-s.GuardShare)*(1-s.ExitShare)
	return s
}

// ISPAdversaryResult quantifies §3.2's observation that an AS already
// carrying the client's traffic (its ISP chain) sees the entry segment
// for free and only needs to intercept the exit→destination side.
type ISPAdversaryResult struct {
	// EntryASes are the ASes on the client's paths to its guards — all
	// of them see the entry segment without mounting any attack.
	EntryASes []bgp.ASN
	// ExitCaptured reports, for the strongest entry AS acting as the
	// interceptor of the destination prefix, whether the exit→destination
	// traffic was also captured (completing the correlation pair).
	ExitCaptured bool
	// Interceptor is the entry AS used for the exit-side interception.
	Interceptor bgp.ASN
	// CaptureFraction is the interceptor's capture of the destination
	// prefix announcement.
	CaptureFraction float64
}

// ISPAdversary simulates the ISP-adversary variant: the ASes between
// client and guard observe the entry segment passively; the one nearest
// the client (its direct provider chain) then launches an interception
// against the destination's prefix and we check whether the exit's
// traffic toward the destination now crosses it.
func ISPAdversary(g *topology.Graph, client, guardAS, exitAS, destAS bgp.ASN) (*ISPAdversaryResult, error) {
	toGuard, err := g.Routes(nil, topology.Origin{ASN: guardAS})
	if err != nil {
		return nil, err
	}
	entryPath, ok := toGuard.PathFrom(client)
	if !ok {
		return nil, fmt.Errorf("attacks: client %v has no route to guard AS %v", client, guardAS)
	}
	res := &ISPAdversaryResult{}
	for _, a := range entryPath {
		if a != client && a != guardAS {
			res.EntryASes = append(res.EntryASes, a)
		}
	}
	if len(res.EntryASes) == 0 {
		return nil, fmt.Errorf("attacks: client %v is directly adjacent to guard AS %v", client, guardAS)
	}
	// The client's first upstream acts as the interceptor of the
	// destination prefix.
	res.Interceptor = res.EntryASes[0]
	if res.Interceptor == destAS || res.Interceptor == exitAS {
		// Trivially sees the exit segment already.
		res.ExitCaptured = true
		res.CaptureFraction = 1
		return res, nil
	}
	ir, err := Intercept(g, destAS, res.Interceptor)
	if err != nil {
		return nil, err
	}
	res.CaptureFraction = ir.CaptureFraction
	if ir.Success {
		capSet := ir.CapturedSet()
		res.ExitCaptured = capSet[exitAS]
	}
	return res, nil
}

// AsymmetricConfig parameterises the end-to-end deanonymization
// experiment: the adversary has intercepted the guard's prefix (so it
// sees the client→guard ACK stream of every captured client) and watches
// the target connection near the server; it must pick the true client
// among decoys by correlating byte counts (§3.3, Figure 1c).
type AsymmetricConfig struct {
	Seed     int64
	Decoys   int           // number of decoy clients also using the guard
	FileSize int           // bytes of the target download
	Bin      time.Duration // correlation bin width
}

// DefaultAsymmetricConfig uses a 8 MB transfer against 9 decoys.
func DefaultAsymmetricConfig() AsymmetricConfig {
	return AsymmetricConfig{Seed: 1, Decoys: 9, FileSize: 8 << 20, Bin: 250 * time.Millisecond}
}

// AsymmetricResult reports one deanonymization trial.
type AsymmetricResult struct {
	// Matched is true when the highest-correlating client-side stream
	// belongs to the true client.
	Matched bool
	// TrueScore and BestDecoyScore allow margin analysis.
	TrueScore      float64
	BestDecoyScore float64
}

// AsymmetricDeanonymization runs one trial: the target and each decoy
// run independent downloads through the same guard; the adversary
// correlates the server-side data series of the target connection against
// every client-side ACK series. This is the attack demonstrated feasible
// by Figure 2 (right): only ACKs are observed at the client end.
func AsymmetricDeanonymization(cfg AsymmetricConfig) (*AsymmetricResult, error) {
	if cfg.Decoys < 1 {
		return nil, fmt.Errorf("attacks: need at least one decoy")
	}
	if cfg.Bin <= 0 {
		return nil, fmt.Errorf("attacks: non-positive bin")
	}
	base := tcpsim.DefaultConfig()
	base.FileSize = cfg.FileSize
	base.Seed = cfg.Seed

	target, err := tcpsim.Run(base)
	if err != nil {
		return nil, err
	}
	nbins := int(target.Finished.Sub(base.Start)/cfg.Bin) + 2
	maxLag := int(base.CircuitDelay/cfg.Bin) + 3
	if maxLag >= nbins-1 {
		return nil, fmt.Errorf("attacks: transfer too short for bin %v", cfg.Bin)
	}

	serverSide, err := correlation.DataSeries(target.ServerToExit, base.Start, cfg.Bin, nbins)
	if err != nil {
		return nil, err
	}
	candidates := make([]correlation.Series, 0, cfg.Decoys+1)
	trueSeries, err := correlation.AckSeries(target.ClientToGuard, base.Start, cfg.Bin, nbins)
	if err != nil {
		return nil, err
	}
	candidates = append(candidates, trueSeries)
	for d := 0; d < cfg.Decoys; d++ {
		dc := tcpsim.DefaultConfig()
		dc.FileSize = cfg.FileSize
		dc.Seed = cfg.Seed + int64(d)*7919 + 13
		dc.Start = base.Start.Add(time.Duration(d%5) * 700 * time.Millisecond)
		dc.BottleneckBps = base.BottleneckBps * (80 + (d*13)%40) / 100
		decoy, err := tcpsim.Run(dc)
		if err != nil {
			return nil, err
		}
		ds, err := correlation.AckSeries(decoy.ClientToGuard, base.Start, cfg.Bin, nbins)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, ds)
	}
	match, err := correlation.MatchFlows(serverSide, candidates, maxLag)
	if err != nil {
		return nil, err
	}
	res := &AsymmetricResult{Matched: match.Best == 0, TrueScore: match.Scores[0]}
	for _, s := range match.Scores[1:] {
		if s > res.BestDecoyScore {
			res.BestDecoyScore = s
		}
	}
	return res, nil
}
