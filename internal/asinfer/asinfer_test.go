package asinfer

import (
	"math/rand"
	"testing"

	"quicksand/internal/bgp"
	"quicksand/internal/topology"
)

func TestInferEmptyCorpus(t *testing.T) {
	if _, err := Infer(nil, Options{}); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestInferSimpleChain(t *testing.T) {
	// Paths through a simple hierarchy: 10 -> 1 (provider), 1 -> 20
	// (customer), observed from both directions. AS 1 has the highest
	// degree by construction.
	paths := [][]bgp.ASN{
		{10, 1, 20},
		{20, 1, 10},
		{10, 1, 30},
		{30, 1, 20},
	}
	// Tiny graphs have small degree spreads, so tighten the peering
	// ratio: summit-adjacent edges with a 3:1 degree gap are transit.
	res, err := Infer(paths, Options{PeerDegreeRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rel, ok := res.Rel(10, 1); !ok || rel != RelCustomerProvider {
		t.Fatalf("Rel(10,1) = %v %v", rel, ok)
	}
	if rel, ok := res.Rel(1, 10); !ok || rel != RelProviderCustomer {
		t.Fatalf("Rel(1,10) = %v %v", rel, ok)
	}
	if _, ok := res.Rel(10, 20); ok {
		t.Fatal("non-adjacent pair reported")
	}
	if res.Degree[1] != 3 {
		t.Fatalf("degree[1] = %d", res.Degree[1])
	}
}

func TestInferPrependingIgnored(t *testing.T) {
	paths := [][]bgp.ASN{{10, 10, 1, 20}}
	res, err := Infer(paths, Options{PeerDegreeRatio: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Rel(10, 10); ok {
		t.Fatal("self adjacency recorded")
	}
	if rel, ok := res.Rel(10, 1); !ok || rel != RelCustomerProvider {
		t.Fatalf("Rel(10,1) = %v %v", rel, ok)
	}
}

func TestInferPeerByBalancedVotes(t *testing.T) {
	// Two mid-degree ASes 1 and 2 appear on both sides of each other's
	// summits; their degrees are equal so they classify as peers.
	paths := [][]bgp.ASN{
		{10, 1, 2, 20},
		{20, 2, 1, 10},
		{11, 1, 2, 21},
		{21, 2, 1, 11},
	}
	res, err := Infer(paths, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel, ok := res.Rel(1, 2); !ok || rel != RelPeer {
		t.Fatalf("Rel(1,2) = %v %v", rel, ok)
	}
}

// recoverGroundTruth runs the full fidelity loop: generate a topology,
// compute policy-compliant paths, infer relationships, compare.
func TestInferRecoversGroundTruth(t *testing.T) {
	g, err := topology.Generate(topology.GenConfig{
		Tier1: 5, Tier2: 40, Tier3: 250,
		Tier2PeerProb: 0.08, MaxT2Providers: 3, MaxT3Providers: 3, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Path corpus: routes from every AS toward 60 random destinations.
	rng := rand.New(rand.NewSource(3))
	asns := g.ASNs()
	var paths [][]bgp.ASN
	for d := 0; d < 60; d++ {
		dest := asns[rng.Intn(len(asns))]
		rt, err := g.ComputeRoutes(topology.Origin{ASN: dest})
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range asns {
			if path, ok := rt.PathFrom(src); ok && len(path) >= 2 {
				paths = append(paths, path)
			}
		}
	}
	res, err := Infer(paths, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var cpTotal, cpCorrect, cpWrongOrientation int
	var peerTotal, peerCorrect int
	for _, e := range res.Edges() {
		truth, ok := g.RelBetween(e.A, e.B)
		if !ok {
			t.Fatalf("inferred non-existent link %v-%v", e.A, e.B)
		}
		switch truth {
		case topology.RelProvider: // B... A's relationship to B: B is A's provider
			cpTotal++
			switch e.Rel {
			case RelCustomerProvider:
				cpCorrect++
			case RelProviderCustomer:
				cpWrongOrientation++
			}
		case topology.RelCustomer:
			cpTotal++
			switch e.Rel {
			case RelProviderCustomer:
				cpCorrect++
			case RelCustomerProvider:
				cpWrongOrientation++
			}
		case topology.RelPeer:
			peerTotal++
			if e.Rel == RelPeer {
				peerCorrect++
			}
		}
	}
	if cpTotal == 0 {
		t.Fatal("no customer-provider edges observed")
	}
	orientAcc := float64(cpCorrect) / float64(cpTotal)
	if orientAcc < 0.85 {
		t.Fatalf("customer-provider accuracy %.3f (correct %d, flipped %d, total %d)",
			orientAcc, cpCorrect, cpWrongOrientation, cpTotal)
	}
	// Orientation flips should be rare.
	if float64(cpWrongOrientation)/float64(cpTotal) > 0.05 {
		t.Fatalf("%d/%d edges inferred with inverted orientation", cpWrongOrientation, cpTotal)
	}
	// Peer recall is inherently weaker (Gao's phase 3); require a
	// non-trivial fraction when peering edges were observed at all.
	if peerTotal > 10 && float64(peerCorrect)/float64(peerTotal) < 0.3 {
		t.Fatalf("peer recall %.3f (%d/%d)", float64(peerCorrect)/float64(peerTotal), peerCorrect, peerTotal)
	}
}

func TestRelString(t *testing.T) {
	for rel, want := range map[Rel]string{
		RelUnknown: "unknown", RelPeer: "peer",
		RelCustomerProvider: "customer->provider",
		RelProviderCustomer: "provider->customer",
	} {
		if rel.String() != want {
			t.Fatalf("String(%d) = %q", rel, rel.String())
		}
	}
}
