// Package asinfer implements Gao's AS-relationship inference algorithm
// ("On inferring autonomous system relationships in the Internet",
// IEEE/ACM ToN 2001) — the technique behind the AS-level path simulators
// the paper builds on (its reference [18]).
//
// Given a corpus of observed AS paths, the algorithm exploits the
// valley-free property: every path climbs customer→provider links, may
// cross one peer link at its summit, and then descends provider→customer.
// The summit is approximated by the highest-degree AS on the path; links
// before it vote "uphill" (left AS is the customer), links after it vote
// "downhill". Adjacent ASes with balanced votes and comparable degrees
// are classified as peers.
//
// In this repository the inference closes a fidelity loop: paths computed
// by internal/topology's policy routing are fed back in, and the tests
// check that the inferred relationships recover the generator's ground
// truth.
package asinfer

import (
	"fmt"
	"sort"

	"quicksand/internal/bgp"
)

// Rel is an inferred relationship between an ordered AS pair.
type Rel int

const (
	// RelUnknown means the pair was observed but the evidence is
	// contradictory or insufficient.
	RelUnknown Rel = iota
	// RelCustomerProvider means the first AS is a customer of the second.
	RelCustomerProvider
	// RelProviderCustomer means the first AS is a provider of the second.
	RelProviderCustomer
	// RelPeer means the ASes peer.
	RelPeer
)

// String names the relationship.
func (r Rel) String() string {
	switch r {
	case RelCustomerProvider:
		return "customer->provider"
	case RelProviderCustomer:
		return "provider->customer"
	case RelPeer:
		return "peer"
	}
	return "unknown"
}

// Edge is one inferred adjacency.
type Edge struct {
	A, B bgp.ASN // A < B
	Rel  Rel     // relationship of A relative to B
}

// Result holds the inference output.
type Result struct {
	edges map[[2]bgp.ASN]Rel
	// Degree is the observed adjacency degree of each AS, exported for
	// diagnostics.
	Degree map[bgp.ASN]int
}

// Rel returns the inferred relationship of a relative to b (ok=false when
// the pair never appeared adjacent).
func (r *Result) Rel(a, b bgp.ASN) (Rel, bool) {
	key, flip := orient(a, b)
	rel, ok := r.edges[key]
	if !ok {
		return RelUnknown, false
	}
	if flip {
		rel = invert(rel)
	}
	return rel, true
}

// Edges returns every inferred adjacency, ordered by AS pair.
func (r *Result) Edges() []Edge {
	out := make([]Edge, 0, len(r.edges))
	for k, rel := range r.edges {
		out = append(out, Edge{A: k[0], B: k[1], Rel: rel})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func orient(a, b bgp.ASN) (key [2]bgp.ASN, flipped bool) {
	if a <= b {
		return [2]bgp.ASN{a, b}, false
	}
	return [2]bgp.ASN{b, a}, true
}

func invert(r Rel) Rel {
	switch r {
	case RelCustomerProvider:
		return RelProviderCustomer
	case RelProviderCustomer:
		return RelCustomerProvider
	}
	return r
}

// Options tunes the inference.
type Options struct {
	// PeerDegreeRatio bounds how dissimilar two ASes' degrees may be for
	// a balanced-vote pair to be called a peering (Gao uses R; 60 in the
	// paper's experiments). Default 8.
	PeerDegreeRatio float64
}

// Infer runs the algorithm over the path corpus. Each path lists ASes
// from the vantage point toward the origin (the AS-PATH reading order).
func Infer(paths [][]bgp.ASN, opts Options) (*Result, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("asinfer: empty path corpus")
	}
	if opts.PeerDegreeRatio <= 0 {
		opts.PeerDegreeRatio = 8
	}

	// Pass 1: adjacency degrees.
	adj := make(map[bgp.ASN]map[bgp.ASN]bool)
	link := func(a, b bgp.ASN) {
		if adj[a] == nil {
			adj[a] = make(map[bgp.ASN]bool)
		}
		adj[a][b] = true
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			if p[i] == p[i+1] {
				continue // prepending
			}
			link(p[i], p[i+1])
			link(p[i+1], p[i])
		}
	}
	degree := make(map[bgp.ASN]int, len(adj))
	for a, s := range adj {
		degree[a] = len(s)
	}

	// Pass 2: transit votes. For each path, the highest-degree AS is the
	// summit; hops before it are uphill (left pays right), hops after
	// are downhill (right pays left). Votes on the two summit-adjacent
	// edges are tallied separately: a valley-free peering hop can ONLY
	// occur at the summit, so an edge with exclusively summit-adjacent
	// evidence is a peering candidate (Gao's phase-3 refinement), while
	// interior votes are reliable transit evidence.
	type dirTally struct {
		xyInterior, xySummit int // evidence key[1] provides for key[0]
		yxInterior, yxSummit int // evidence key[0] provides for key[1]
	}
	dir := make(map[[2]bgp.ASN]*dirTally)
	vote := func(customer, provider bgp.ASN, atSummit bool) {
		key, flipped := orient(customer, provider)
		t := dir[key]
		if t == nil {
			t = &dirTally{}
			dir[key] = t
		}
		switch {
		case !flipped && !atSummit:
			t.xyInterior++
		case !flipped && atSummit:
			t.xySummit++
		case flipped && !atSummit:
			t.yxInterior++
		default:
			t.yxSummit++
		}
	}
	for _, p := range paths {
		if len(p) < 2 {
			continue
		}
		top := 0
		for i := range p {
			if degree[p[i]] > degree[p[top]] {
				top = i
			}
		}
		for i := 0; i+1 < len(p); i++ {
			if p[i] == p[i+1] {
				continue
			}
			atSummit := i == top || i+1 == top
			if i+1 <= top {
				vote(p[i], p[i+1], atSummit) // climbing toward the summit
			} else {
				vote(p[i+1], p[i], atSummit) // descending after it
			}
		}
	}

	// Pass 3: classify each adjacency. Interior votes dominate; pairs
	// with only summit-adjacent evidence and comparable degrees are
	// peers.
	res := &Result{edges: make(map[[2]bgp.ASN]Rel), Degree: degree}
	peerish := func(x, y bgp.ASN) bool {
		dx, dy := float64(degree[x]), float64(degree[y])
		if dx == 0 || dy == 0 {
			return false
		}
		return maxf(dx, dy)/minf(dx, dy) <= opts.PeerDegreeRatio
	}
	for a, neighbors := range adj {
		for b := range neighbors {
			key, _ := orient(a, b)
			if _, done := res.edges[key]; done {
				continue
			}
			x, y := key[0], key[1]
			t := dir[key]
			if t == nil {
				t = &dirTally{}
			}
			var rel Rel
			switch {
			case t.xyInterior > 0 && t.yxInterior == 0:
				rel = RelCustomerProvider
			case t.yxInterior > 0 && t.xyInterior == 0:
				rel = RelProviderCustomer
			case t.xyInterior > 0 && t.yxInterior > 0:
				if peerish(x, y) {
					rel = RelPeer
				} else {
					rel = RelUnknown // contradictory transit (siblings)
				}
			default:
				// Summit-only evidence: the hallmark of a peering hop.
				switch {
				case peerish(x, y):
					rel = RelPeer
				case t.xySummit > 0 && t.yxSummit == 0:
					rel = RelCustomerProvider
				case t.yxSummit > 0 && t.xySummit == 0:
					rel = RelProviderCustomer
				default:
					rel = RelUnknown
				}
			}
			res.edges[key] = rel
		}
	}
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
