package defense

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpsim"
	"quicksand/internal/iptrie"
)

// AlertKind classifies a monitor alarm.
type AlertKind int

const (
	// AlertOriginChange fires when a watched prefix is announced with an
	// unexpected origin AS — the signature of a same-prefix hijack or
	// interception.
	AlertOriginChange AlertKind = iota
	// AlertMoreSpecific fires when a strictly more specific prefix of a
	// watched prefix appears — a more-specific hijack, which every AS
	// eventually sees (§5).
	AlertMoreSpecific
	// AlertNewUpstream fires when a watched prefix is reached through a
	// penultimate AS never seen during the learning window — the weaker,
	// aggressive signal that also catches stealthier manipulations at
	// the cost of false positives.
	AlertNewUpstream
)

// String names the alert kind.
func (k AlertKind) String() string {
	switch k {
	case AlertOriginChange:
		return "origin-change"
	case AlertMoreSpecific:
		return "more-specific"
	case AlertNewUpstream:
		return "new-upstream"
	}
	return fmt.Sprintf("AlertKind(%d)", int(k))
}

// Alert is one monitor alarm. Per §5, "false positives are much more
// acceptable than false negatives": consumers broadcast alerts to clients
// which then avoid the implicated relays.
type Alert struct {
	Time    time.Time
	Session int
	Prefix  netip.Prefix
	Kind    AlertKind
	// Observed is the offending AS: the bogus origin, the origin of the
	// more-specific announcement, or the unfamiliar upstream.
	Observed bgp.ASN
}

// Monitor is a control-plane watcher for relay prefixes (§5's real-time
// monitoring framework). It is trained on the expected origin of each
// watched prefix and, optionally, on the set of legitimate upstream
// (penultimate) ASes seen during a learning window.
//
// Monitor is safe for concurrent use: Learn, EnableUpstream and Observe
// may be called from any number of goroutines, so a streaming consumer
// (internal/monitord) can fan updates out over sharded workers. The
// watched-prefix trie is immutable after NewMonitor and read lock-free;
// the mutable learning state is guarded by an RWMutex, which Observe only
// takes on the (cheap, read-side) upstream check.
type Monitor struct {
	watched iptrie.Trie[bgp.ASN] // watched prefix -> expected origin; immutable

	mu             sync.RWMutex
	knownUpstreams map[netip.Prefix]map[bgp.ASN]bool
	upstreamAlarms bool
}

// NewMonitor builds a monitor watching the given prefixes with their
// legitimate origins. Upstream alarms stay disabled until EnableUpstream
// is called after a learning phase.
func NewMonitor(watched map[netip.Prefix]bgp.ASN) (*Monitor, error) {
	if len(watched) == 0 {
		return nil, fmt.Errorf("defense: nothing to watch")
	}
	m := &Monitor{knownUpstreams: make(map[netip.Prefix]map[bgp.ASN]bool)}
	for p, origin := range watched {
		if _, err := m.watched.Insert(p, origin); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Learn records the upstream (penultimate AS) of a benign update for a
// watched prefix; run it over a known-clean window before enabling
// upstream alarms.
func (m *Monitor) Learn(u *bgpsim.UpdateEvent) {
	if u.Withdraw() {
		return
	}
	if _, ok := m.watched.Get(u.Prefix); !ok {
		return
	}
	if up, ok := upstreamOf(u.Path); ok {
		m.mu.Lock()
		set := m.knownUpstreams[u.Prefix]
		if set == nil {
			set = make(map[bgp.ASN]bool)
			m.knownUpstreams[u.Prefix] = set
		}
		set[up] = true
		m.mu.Unlock()
	}
}

// EnableUpstream turns on new-upstream alarms (after learning).
func (m *Monitor) EnableUpstream() {
	m.mu.Lock()
	m.upstreamAlarms = true
	m.mu.Unlock()
}

// upstreamOf returns the penultimate AS of a path (the origin's
// provider-side neighbor), when the path has one.
func upstreamOf(path []bgp.ASN) (bgp.ASN, bool) {
	if len(path) < 2 {
		return 0, false
	}
	return path[len(path)-2], true
}

// Observe inspects one update and returns any alarms it raises. Announced
// paths run src-first, origin-last (the bgpsim convention).
func (m *Monitor) Observe(u *bgpsim.UpdateEvent) []Alert {
	if u.Withdraw() || len(u.Path) == 0 {
		return nil
	}
	origin := u.Path[len(u.Path)-1]
	var alerts []Alert

	if expected, ok := m.watched.Get(u.Prefix); ok {
		// Exact watched prefix: origin and upstream checks.
		if origin != expected {
			alerts = append(alerts, Alert{
				Time: u.Time, Session: u.Session, Prefix: u.Prefix,
				Kind: AlertOriginChange, Observed: origin,
			})
		} else {
			m.mu.RLock()
			alarm := false
			var up bgp.ASN
			if m.upstreamAlarms {
				var ok bool
				if up, ok = upstreamOf(u.Path); ok && !m.knownUpstreams[u.Prefix][up] {
					alarm = true
				}
			}
			m.mu.RUnlock()
			if alarm {
				alerts = append(alerts, Alert{
					Time: u.Time, Session: u.Session, Prefix: u.Prefix,
					Kind: AlertNewUpstream, Observed: up,
				})
			}
		}
		return alerts
	}

	// Not a watched prefix itself: is it strictly more specific than one?
	if cover, _, ok := m.watched.LongestMatch(u.Prefix.Addr()); ok && cover.Bits() < u.Prefix.Bits() {
		alerts = append(alerts, Alert{
			Time: u.Time, Session: u.Session, Prefix: u.Prefix,
			Kind: AlertMoreSpecific, Observed: origin,
		})
	}
	return alerts
}

// MonitorReport aggregates a monitor run over a stream.
type MonitorReport struct {
	Updates int
	Alerts  []Alert
	// ByKind counts alerts per kind.
	ByKind map[AlertKind]int
}

// RunMonitor trains the monitor on the first learnFraction of the
// stream's updates (assumed clean) and observes the rest, returning every
// alarm. It is the evaluation harness for E5's detection rates.
func RunMonitor(m *Monitor, st *bgpsim.Stream, learnFraction float64) (*MonitorReport, error) {
	if learnFraction < 0 || learnFraction >= 1 {
		return nil, fmt.Errorf("defense: learnFraction %v out of [0,1)", learnFraction)
	}
	split := int(float64(len(st.Updates)) * learnFraction)
	for i := 0; i < split; i++ {
		m.Learn(&st.Updates[i])
	}
	m.EnableUpstream()
	rep := &MonitorReport{ByKind: make(map[AlertKind]int)}
	for i := split; i < len(st.Updates); i++ {
		rep.Updates++
		for _, a := range m.Observe(&st.Updates[i]) {
			rep.Alerts = append(rep.Alerts, a)
			rep.ByKind[a.Kind]++
		}
	}
	return rep, nil
}
