package defense

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"quicksand/internal/bgp"
)

// Counter-RAPTOR-style analytics (Sun et al., PAPERS.md): raw monitor
// alerts are necessary but noisy — a single origin-change alert can be a
// legitimate renumbering, while a *burst* of announcements for one
// prefix, or an origin that keeps flapping back and forth, is the
// signature of an active hijack or interception attempt. The
// AnomalyDetector sits on an aggregated alert stream (a single daemon's
// ring or the fleet router's merged stream) and escalates raw alerts to
// scored anomalies using two per-prefix analytics:
//
//   - announcement-frequency analysis: alerts per window scored against
//     an EWMA baseline of that prefix's own history, so a prefix with
//     chronic churn needs a much larger burst to escalate than one that
//     has been quiet for days;
//   - origin-flap time analysis: distinct-origin transitions per window,
//     the back-and-forth a hijacker fighting the legitimate origin (or
//     probing intermittently to stay under detection) produces.
//
// All analytics are driven by the alert timestamps, never the wall
// clock, so a replayed stream escalates identically every run.

// AnomalyKind classifies an escalated anomaly.
type AnomalyKind int

const (
	// AnomalyFrequency fires when a prefix's alert rate in the current
	// window bursts far above its own EWMA baseline.
	AnomalyFrequency AnomalyKind = iota
	// AnomalyOriginFlap fires when the observed offending origin for a
	// prefix flips repeatedly within one window.
	AnomalyOriginFlap

	numAnomalyKinds
)

func (k AnomalyKind) String() string {
	switch k {
	case AnomalyFrequency:
		return "frequency-burst"
	case AnomalyOriginFlap:
		return "origin-flap"
	}
	return fmt.Sprintf("AnomalyKind(%d)", int(k))
}

// Anomaly is one escalated, scored event. Score is calibrated so 1.0 is
// the escalation threshold; larger means further above baseline.
type Anomaly struct {
	Time   time.Time
	Prefix netip.Prefix
	Kind   AnomalyKind
	// Score: for frequency anomalies the deviation ratio against the
	// EWMA baseline (or the bootstrap ratio before a baseline exists);
	// for origin flaps the transition count over the threshold.
	Score float64
	// Alerts is the raw alert count in the window at escalation time.
	Alerts int
	// Origins are the distinct offending ASes seen in the window, sorted.
	Origins []bgp.ASN
}

// AnomalyConfig parameterises the detector. The zero value selects the
// defaults noted on each field.
type AnomalyConfig struct {
	// Window is the analytics bucket width (default 1m). Baselines are
	// folded and flap counters reset at window boundaries.
	Window time.Duration
	// FreqThreshold is the deviation score at which a window's alert
	// count escalates once a baseline exists (default 4.0): the count
	// must exceed mean + FreqThreshold*(dev+1).
	FreqThreshold float64
	// FreqBootstrap is the per-window alert count that escalates before
	// any baseline has been learned (default 8) — a cold-start prefix
	// under sudden bombardment must still fire.
	FreqBootstrap int
	// FlapThreshold is the number of origin transitions within one
	// window that escalates an origin-flap anomaly (default 3).
	FlapThreshold int
	// Decay is the EWMA weight given to each newly completed window when
	// folding it into the baseline (default 0.3).
	Decay float64
}

func (c AnomalyConfig) withDefaults() AnomalyConfig {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.FreqThreshold <= 0 {
		c.FreqThreshold = 4.0
	}
	if c.FreqBootstrap <= 0 {
		c.FreqBootstrap = 8
	}
	if c.FlapThreshold <= 0 {
		c.FlapThreshold = 3
	}
	if c.Decay <= 0 || c.Decay > 1 {
		c.Decay = 0.3
	}
	return c
}

// maxZeroFolds bounds how many empty windows a long quiet gap folds into
// the baseline one by one; beyond it the window start jumps directly to
// the gap's end. 32 folds at the default decay already pull the mean
// within e^-9 of zero, so nothing observable is lost.
const maxZeroFolds = 32

type prefixStats struct {
	windowStart time.Time
	started     bool

	count      int // alerts in the current window
	flips      int // origin transitions in the current window
	lastOrigin bgp.ASN
	haveLast   bool
	origins    map[bgp.ASN]struct{}

	mean, dev float64 // EWMA baseline over completed windows
	windows   int     // completed windows folded into the baseline

	firedFreq, firedFlap bool // one escalation per window per kind
}

// AnomalyDetector escalates a stream of raw alerts to scored anomalies.
// Safe for concurrent use; per-prefix results depend only on the order
// of that prefix's own alerts.
type AnomalyDetector struct {
	cfg AnomalyConfig

	mu        sync.Mutex
	prefixes  map[netip.Prefix]*prefixStats
	observed  uint64
	escalated [numAnomalyKinds]uint64
}

// NewAnomalyDetector returns a detector with cfg (zero fields take the
// documented defaults).
func NewAnomalyDetector(cfg AnomalyConfig) *AnomalyDetector {
	return &AnomalyDetector{
		cfg:      cfg.withDefaults(),
		prefixes: make(map[netip.Prefix]*prefixStats),
	}
}

// Observe feeds one raw alert and returns the anomalies it escalates —
// zero, one, or both kinds. Alerts for one prefix must arrive in
// non-decreasing Time order for the window accounting to be meaningful;
// an out-of-order alert is counted into the current window.
func (det *AnomalyDetector) Observe(a Alert) []Anomaly {
	det.mu.Lock()
	defer det.mu.Unlock()
	det.observed++

	st := det.prefixes[a.Prefix]
	if st == nil {
		st = &prefixStats{origins: make(map[bgp.ASN]struct{})}
		det.prefixes[a.Prefix] = st
	}
	if !st.started {
		st.windowStart = a.Time
		st.started = true
	}
	det.rollWindows(st, a.Time)

	st.count++
	st.origins[a.Observed] = struct{}{}
	if st.haveLast && a.Observed != st.lastOrigin {
		st.flips++
	}
	st.lastOrigin = a.Observed
	st.haveLast = true

	var out []Anomaly
	if !st.firedFreq {
		if score, hot := det.freqScore(st); hot {
			st.firedFreq = true
			det.escalated[AnomalyFrequency]++
			out = append(out, det.anomaly(a, st, AnomalyFrequency, score))
		}
	}
	if !st.firedFlap && st.flips >= det.cfg.FlapThreshold {
		st.firedFlap = true
		det.escalated[AnomalyOriginFlap]++
		score := float64(st.flips) / float64(det.cfg.FlapThreshold)
		out = append(out, det.anomaly(a, st, AnomalyOriginFlap, score))
	}
	return out
}

// rollWindows folds completed windows into the EWMA baseline and resets
// the per-window counters, advancing windowStart until it covers t.
func (det *AnomalyDetector) rollWindows(st *prefixStats, t time.Time) {
	if !t.After(st.windowStart.Add(det.cfg.Window)) {
		return
	}
	folds := 0
	for t.After(st.windowStart.Add(det.cfg.Window)) {
		det.foldWindow(st)
		st.windowStart = st.windowStart.Add(det.cfg.Window)
		if folds++; folds >= maxZeroFolds {
			// Long quiet gap: jump to the window containing t.
			gap := t.Sub(st.windowStart)
			st.windowStart = st.windowStart.Add(gap - gap%det.cfg.Window)
			break
		}
	}
	st.count = 0
	st.flips = 0
	st.haveLast = false
	st.origins = make(map[bgp.ASN]struct{})
	st.firedFreq = false
	st.firedFlap = false
}

func (det *AnomalyDetector) foldWindow(st *prefixStats) {
	c := float64(st.count)
	if st.windows == 0 {
		st.mean = c
		st.dev = 0
	} else {
		d := c - st.mean
		st.mean += det.cfg.Decay * d
		if d < 0 {
			d = -d
		}
		st.dev = (1-det.cfg.Decay)*st.dev + det.cfg.Decay*d
	}
	st.windows++
	// Only the first fold uses count; subsequent folds in the same roll
	// are empty windows.
	st.count = 0
}

// freqScore scores the current window's alert count. With a baseline:
// deviation ratio (count-mean)/(threshold*(dev+1)), ≥1 escalates. Before
// any window has completed: bootstrap ratio count/FreqBootstrap.
func (det *AnomalyDetector) freqScore(st *prefixStats) (float64, bool) {
	if st.windows == 0 {
		score := float64(st.count) / float64(det.cfg.FreqBootstrap)
		return score, st.count >= det.cfg.FreqBootstrap
	}
	score := (float64(st.count) - st.mean) / (det.cfg.FreqThreshold * (st.dev + 1))
	return score, score >= 1
}

func (det *AnomalyDetector) anomaly(a Alert, st *prefixStats, kind AnomalyKind, score float64) Anomaly {
	origins := make([]bgp.ASN, 0, len(st.origins))
	for o := range st.origins {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	return Anomaly{
		Time:    a.Time,
		Prefix:  a.Prefix,
		Kind:    kind,
		Score:   score,
		Alerts:  st.count,
		Origins: origins,
	}
}

// Totals reports how many alerts have been observed and how many
// anomalies escalated per kind.
func (det *AnomalyDetector) Totals() (observed uint64, escalated map[AnomalyKind]uint64) {
	det.mu.Lock()
	defer det.mu.Unlock()
	escalated = make(map[AnomalyKind]uint64, numAnomalyKinds)
	for k := AnomalyKind(0); k < numAnomalyKinds; k++ {
		escalated[k] = det.escalated[k]
	}
	return det.observed, escalated
}
