package defense

import (
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpsim"
	"quicksand/internal/iptrie"
	"quicksand/internal/topology"
	"quicksand/internal/torconsensus"
	"quicksand/internal/torpath"
)

// world bundles a topology, consensus, and relay->AS mapping for defense
// tests.
type world struct {
	g       *topology.Graph
	cons    *torconsensus.Consensus
	hosting *torconsensus.Hosting
	rib     iptrie.Trie[bgp.ASN]
}

func (w *world) relayAS(addr netip.Addr) (bgp.ASN, bool) {
	_, asn, ok := w.rib.LongestMatch(addr)
	return asn, ok
}

func buildWorld(t testing.TB) *world {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{
		Tier1: 4, Tier2: 30, Tier3: 200,
		Tier2PeerProb: 0.08, MaxT2Providers: 2, MaxT3Providers: 2, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	t3 := g.TierASNs(3)
	cfg := torconsensus.GenConfig{
		Total: 300, Guards: 120, Exits: 80, Both: 30,
		GuardExitPrefixes:  100,
		MaxRelaysPerPrefix: 12,
		MiddleOnlyPrefixes: 10,
		HostASes:           t3[:120],
		NumHostASes:        70,
		Seed:               4,
		ValidAfter:         time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC),
	}
	cons, hosting, err := torconsensus.GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{g: g, cons: cons, hosting: hosting}
	for p, asn := range hosting.Prefixes {
		if _, err := w.rib.Insert(p, asn); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

var dNow = time.Date(2014, 7, 2, 0, 0, 0, 0, time.UTC)

func TestStaticOracleBothDirections(t *testing.T) {
	w := buildWorld(t)
	asns := w.g.TierASNs(3)
	a, b := asns[5], asns[50]
	set, err := NewStaticOracle(w.g).SegmentASes(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) < 2 {
		t.Fatalf("segment set too small: %v", set)
	}
	hasA, hasB := false, false
	for _, asn := range set {
		if asn == a {
			hasA = true
		}
		if asn == b {
			hasB = true
		}
	}
	if !hasA || !hasB {
		t.Fatalf("endpoints missing from segment set %v", set)
	}
}

func TestDynamicsOracleAddsExtras(t *testing.T) {
	w := buildWorld(t)
	asns := w.g.TierASNs(3)
	a, b := asns[5], asns[50]
	static := NewStaticOracle(w.g)
	base, err := static.SegmentASes(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dyn := &DynamicsOracle{Base: static, Extra: map[bgp.ASN][]bgp.ASN{
		b: {999991, 999992},
	}}
	got, err := dyn.SegmentASes(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(base)+2 {
		t.Fatalf("dynamics set %d, base %d", len(got), len(base))
	}
}

func TestASAwareSelectorProducesDisjointSegments(t *testing.T) {
	w := buildWorld(t)
	sel := torpath.NewSelector(w.cons, 7)
	gs, err := sel.PickGuards(3, dNow)
	if err != nil {
		t.Fatal(err)
	}
	clientAS := w.g.TierASNs(3)[150] // a stub hosting no relays, typically
	destAS := w.g.TierASNs(3)[199]
	aware := &ASAwareSelector{
		Selector: sel,
		Oracle:   NewStaticOracle(w.g),
		RelayAS:  w.relayAS,
	}
	c, err := aware.BuildCircuit(gs, 443, clientAS, destAS)
	if err != nil {
		t.Skipf("no disjoint circuit for this client/dest: %v", err)
	}
	ok, err := aware.CircuitSafe(c, clientAS, destAS)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("returned circuit is not AS-disjoint")
	}
}

// The evaluation claim of E5: AS-aware selection yields strictly fewer
// unsafe circuits than vanilla bandwidth-weighted selection.
func TestASAwareReducesUnsafeCircuits(t *testing.T) {
	w := buildWorld(t)
	sel := torpath.NewSelector(w.cons, 8)
	gs, err := sel.PickGuards(3, dNow)
	if err != nil {
		t.Fatal(err)
	}
	t3 := w.g.TierASNs(3)
	clientAS, destAS := t3[150], t3[199]
	aware := &ASAwareSelector{Selector: sel, Oracle: NewStaticOracle(w.g), RelayAS: w.relayAS}

	unsafeVanilla := 0
	const trials = 60
	usable := 0
	for i := 0; i < trials; i++ {
		c, err := sel.BuildCircuit(gs, 443)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := aware.CircuitSafe(c, clientAS, destAS)
		if err != nil {
			continue
		}
		usable++
		if !ok {
			unsafeVanilla++
		}
	}
	if usable == 0 {
		t.Skip("no mappable circuits for this seed")
	}
	// AS-aware circuits are always safe (by construction); vanilla should
	// produce at least one unsafe circuit for the defense to matter.
	if unsafeVanilla == 0 {
		t.Skip("vanilla selection produced no unsafe circuits for this seed")
	}
	if _, err := aware.BuildCircuit(gs, 443, clientAS, destAS); err != nil {
		t.Fatalf("AS-aware selection found no safe circuit although vanilla found %d/%d unsafe",
			unsafeVanilla, usable)
	}
}

func TestPickGuardsPreferShort(t *testing.T) {
	w := buildWorld(t)
	sel := torpath.NewSelector(w.cons, 9)
	oracle := NewStaticOracle(w.g)
	clientAS := w.g.TierASNs(3)[150]
	gs, err := PickGuardsPreferShort(sel, oracle, w.relayAS, clientAS, 3, 3, dNow)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Guards) != 3 {
		t.Fatalf("guards = %d", len(gs.Guards))
	}
	// Compare mean path length against vanilla selection.
	pathLen := func(g *torconsensus.Relay) int {
		asn, ok := w.relayAS(g.Addr)
		if !ok {
			t.Fatalf("unmappable guard %v", g.Addr)
		}
		rt, err := oracle.table(asn)
		if err != nil {
			t.Fatal(err)
		}
		r, _ := rt.Route(clientAS)
		return r.PathLen
	}
	shortSum := 0
	for _, g := range gs.Guards {
		shortSum += pathLen(g)
	}
	vanillaSum := 0
	vanillaN := 0
	for i := 0; i < 10; i++ {
		vgs, err := sel.PickGuards(3, dNow)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range vgs.Guards {
			vanillaSum += pathLen(g)
			vanillaN++
		}
	}
	shortMean := float64(shortSum) / float64(len(gs.Guards))
	vanillaMean := float64(vanillaSum) / float64(vanillaN)
	if shortMean > vanillaMean {
		t.Fatalf("short-path selection mean %.2f > vanilla mean %.2f", shortMean, vanillaMean)
	}
	if _, err := PickGuardsPreferShort(sel, oracle, w.relayAS, clientAS, 0, 3, dNow); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// ---- monitor tests ----

var (
	mpfx  = netip.MustParsePrefix("78.46.0.0/15")
	mpfx2 = netip.MustParsePrefix("93.115.0.0/16")
	mt0   = time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC)
)

func newTestMonitor(t *testing.T) *Monitor {
	t.Helper()
	m, err := NewMonitor(map[netip.Prefix]bgp.ASN{mpfx: 24940, mpfx2: 43289})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMonitorOriginChange(t *testing.T) {
	m := newTestMonitor(t)
	benign := bgpsim.UpdateEvent{Time: mt0, Prefix: mpfx, Path: []bgp.ASN{3320, 1299, 24940}}
	if alerts := m.Observe(&benign); len(alerts) != 0 {
		t.Fatalf("benign update alerted: %v", alerts)
	}
	hijack := bgpsim.UpdateEvent{Time: mt0, Prefix: mpfx, Path: []bgp.ASN{3320, 1299, 666}}
	alerts := m.Observe(&hijack)
	if len(alerts) != 1 || alerts[0].Kind != AlertOriginChange || alerts[0].Observed != 666 {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestMonitorMoreSpecific(t *testing.T) {
	m := newTestMonitor(t)
	moreSpecific := bgpsim.UpdateEvent{
		Time: mt0, Prefix: netip.MustParsePrefix("78.46.64.0/20"),
		Path: []bgp.ASN{3320, 666},
	}
	alerts := m.Observe(&moreSpecific)
	if len(alerts) != 1 || alerts[0].Kind != AlertMoreSpecific {
		t.Fatalf("alerts = %v", alerts)
	}
	// An unrelated prefix raises nothing.
	other := bgpsim.UpdateEvent{Time: mt0, Prefix: netip.MustParsePrefix("8.8.8.0/24"),
		Path: []bgp.ASN{3320, 15169}}
	if alerts := m.Observe(&other); len(alerts) != 0 {
		t.Fatalf("unrelated prefix alerted: %v", alerts)
	}
}

func TestMonitorNewUpstream(t *testing.T) {
	m := newTestMonitor(t)
	learn := bgpsim.UpdateEvent{Time: mt0, Prefix: mpfx, Path: []bgp.ASN{3320, 1299, 24940}}
	m.Learn(&learn)
	m.EnableUpstream()
	// Same upstream (1299): quiet.
	if alerts := m.Observe(&learn); len(alerts) != 0 {
		t.Fatalf("known upstream alerted: %v", alerts)
	}
	// New upstream 174 with the right origin: suspicion alarm.
	odd := bgpsim.UpdateEvent{Time: mt0, Prefix: mpfx, Path: []bgp.ASN{3320, 174, 24940}}
	alerts := m.Observe(&odd)
	if len(alerts) != 1 || alerts[0].Kind != AlertNewUpstream || alerts[0].Observed != 174 {
		t.Fatalf("alerts = %v", alerts)
	}
	// Without EnableUpstream the same update is quiet.
	m2 := newTestMonitor(t)
	if alerts := m2.Observe(&odd); len(alerts) != 0 {
		t.Fatalf("upstream alarm fired while disabled: %v", alerts)
	}
}

func TestMonitorIgnoresWithdrawals(t *testing.T) {
	m := newTestMonitor(t)
	w := bgpsim.UpdateEvent{Time: mt0, Prefix: mpfx}
	if alerts := m.Observe(&w); alerts != nil {
		t.Fatalf("withdrawal alerted: %v", alerts)
	}
}

func TestNewMonitorEmpty(t *testing.T) {
	if _, err := NewMonitor(nil); err == nil {
		t.Fatal("empty watch set accepted")
	}
}

func TestRunMonitorNoFalseNegatives(t *testing.T) {
	// Build a stream: clean first half, one injected hijack in the second.
	sess := bgpsim.NewSession("rrc00", 3320, []netip.Prefix{mpfx})
	st := &bgpsim.Stream{
		Start:    mt0,
		End:      mt0.Add(24 * time.Hour),
		Sessions: []bgpsim.Session{sess},
		Initial: map[int]map[netip.Prefix][]bgp.ASN{
			0: {mpfx: {3320, 1299, 24940}},
		},
	}
	for i := 0; i < 10; i++ {
		st.Updates = append(st.Updates, bgpsim.UpdateEvent{
			Time: mt0.Add(time.Duration(i) * time.Hour), Session: 0, Prefix: mpfx,
			Path: []bgp.ASN{3320, 1299, 24940},
		})
	}
	st.Updates = append(st.Updates, bgpsim.UpdateEvent{
		Time: mt0.Add(20 * time.Hour), Session: 0, Prefix: mpfx,
		Path: []bgp.ASN{3320, 1299, 666}, // hijacked origin
	})
	m, err := NewMonitor(map[netip.Prefix]bgp.ASN{mpfx: 24940})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunMonitor(m, st, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind[AlertOriginChange] != 1 {
		t.Fatalf("origin-change alerts = %d, want 1 (report %+v)", rep.ByKind[AlertOriginChange], rep)
	}
	if _, err := RunMonitor(m, st, 1.5); err == nil {
		t.Fatal("bad learnFraction accepted")
	}
}
