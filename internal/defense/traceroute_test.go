package defense

import (
	"testing"
	"time"

	"quicksand/internal/attacks"
	"quicksand/internal/bgp"
	"quicksand/internal/topology"
)

func TestPathProberBaselineAndCheck(t *testing.T) {
	p := NewPathProber()
	dst := bgp.ASN(24940)
	p.Baseline(dst, []bgp.ASN{100, 3320, 24940})
	p.Baseline(dst, []bgp.ASN{100, 1299, 24940}) // churn folds into baseline

	// A known path raises nothing.
	if alerts := p.Check(mt0, dst, []bgp.ASN{100, 3320, 24940}); len(alerts) != 0 {
		t.Fatalf("known path alerted: %v", alerts)
	}
	// A new AS on the path raises PathAlertNewAS.
	alerts := p.Check(mt0, dst, []bgp.ASN{100, 666, 24940})
	if len(alerts) != 1 || alerts[0].Kind != PathAlertNewAS || alerts[0].Observed != 666 {
		t.Fatalf("alerts = %v", alerts)
	}
	// A detour two hops longer also raises the length alarm.
	alerts = p.Check(mt0, dst, []bgp.ASN{100, 3320, 1299, 666, 24940})
	kinds := map[PathAlertKind]bool{}
	for _, a := range alerts {
		kinds[a.Kind] = true
	}
	if !kinds[PathAlertNewAS] || !kinds[PathAlertLengthJump] {
		t.Fatalf("alerts = %v", alerts)
	}
	// No answer at all: blackhole.
	alerts = p.Check(mt0, dst, nil)
	if len(alerts) != 1 || alerts[0].Kind != PathAlertUnreachable {
		t.Fatalf("alerts = %v", alerts)
	}
	// Baseline publication.
	known := p.KnownASes(dst)
	if len(known) != 4 { // 100, 1299, 3320, 24940
		t.Fatalf("known = %v", known)
	}
	for i := 1; i < len(known); i++ {
		if known[i] < known[i-1] {
			t.Fatal("KnownASes not sorted")
		}
	}
}

// End-to-end: an interception detour is caught by the data-plane prober
// even though the client never sees the bogus BGP announcement itself.
func TestProberDetectsInterception(t *testing.T) {
	g, err := topology.Generate(topology.GenConfig{
		Tier1: 4, Tier2: 30, Tier3: 200,
		Tier2PeerProb: 0.08, MaxT2Providers: 2, MaxT3Providers: 3, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	t3 := g.TierASNs(3)
	victim := t3[0] // guard's AS

	pre, err := g.ComputeRoutes(topology.Origin{ASN: victim})
	if err != nil {
		t.Fatal(err)
	}

	// Find an attacker whose interception succeeds and captures at
	// least one stub client; then verify that client's prober alarms.
	for i := 1; i < len(t3); i++ {
		attacker := t3[i]
		ir, err := attacks.Intercept(g, victim, attacker)
		if err != nil {
			t.Fatal(err)
		}
		if !ir.Success || len(ir.Captured) == 0 {
			continue
		}
		var client bgp.ASN
		capSet := ir.CapturedSet()
		for _, c := range t3 {
			if capSet[c] && c != attacker {
				client = c
				break
			}
		}
		if client == 0 {
			continue
		}
		prober := NewPathProber()
		base, ok := ProbePath(pre, client)
		if !ok {
			t.Fatal("no baseline path")
		}
		prober.Baseline(victim, base)

		// Post-attack data-plane path: the client's traffic reaches the
		// attacker, then follows the attacker's clean path onward.
		hijacked, ok := ir.Routes.PathFrom(client)
		if !ok {
			t.Fatal("captured client has no route")
		}
		measured := append(hijacked[:len(hijacked)-1:len(hijacked)-1], ir.PathToVictim...)
		alerts := prober.Check(time.Now(), victim, measured)
		if len(alerts) == 0 {
			t.Fatalf("interception detour not detected: base %v measured %v", base, measured)
		}
		found := false
		for _, a := range alerts {
			if a.Kind == PathAlertNewAS && a.Observed == attacker {
				found = true
			}
		}
		if !found {
			t.Fatalf("attacker %v not flagged: %v", attacker, alerts)
		}
		return
	}
	t.Skip("no effective interception with a captured stub for this seed")
}

// Regression: a probe against a destination with no recorded baseline
// must report the missing baseline once — not flag every hop as a new
// AS. Before the fix, a cold-start prober turned a single clean
// measurement into len(path) false PathAlertNewAS alarms.
func TestPathProberNoBaseline(t *testing.T) {
	p := NewPathProber()
	dst := bgp.ASN(24940)
	path := []bgp.ASN{100, 3320, 1299, 24940}
	alerts := p.Check(mt0, dst, path)
	if len(alerts) != 1 {
		t.Fatalf("cold prober raised %d alerts, want exactly 1: %v", len(alerts), alerts)
	}
	a := alerts[0]
	if a.Kind != PathAlertNoBaseline || a.Dst != dst || !a.Time.Equal(mt0) {
		t.Fatalf("alert = %+v, want no-baseline for %v", a, dst)
	}
	if got := a.Kind.String(); got != "no-baseline" {
		t.Fatalf("Kind.String() = %q", got)
	}
	// The check must not have polluted the baseline: after a real
	// Baseline call the same path is clean and a detour still alarms.
	p.Baseline(dst, path)
	if alerts := p.Check(mt0, dst, path); len(alerts) != 0 {
		t.Fatalf("baselined path alerted: %v", alerts)
	}
	if alerts := p.Check(mt0, dst, []bgp.ASN{100, 666, 24940}); len(alerts) != 1 {
		t.Fatalf("detour after baseline: %v", alerts)
	}
	// A blackhole still wins over the no-baseline report.
	fresh := NewPathProber()
	if alerts := fresh.Check(mt0, dst, nil); len(alerts) != 1 || alerts[0].Kind != PathAlertUnreachable {
		t.Fatalf("blackhole on cold prober: %v", alerts)
	}
}
