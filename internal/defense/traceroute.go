package defense

import (
	"fmt"
	"slices"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/topology"
)

// This file implements §5's data-plane half: clients (or relays) can run
// traceroute-style measurements of the forward path and compare against a
// learned baseline. Control-plane monitoring (monitor.go) sees what BGP
// *says*; data-plane probing sees where packets actually go — which is
// what ultimately betrays an interception even when the bogus
// announcement is scoped out of the victim's control-plane view.

// ProbePath returns the AS-level forward path from src toward the
// destination whose route table is rt — the simulator's stand-in for a
// traceroute run (each AS hop answers).
func ProbePath(rt topology.RouteTable, src bgp.ASN) ([]bgp.ASN, bool) {
	return rt.PathFrom(src)
}

// PathAlertKind classifies a data-plane anomaly.
type PathAlertKind int

const (
	// PathAlertNewAS fires when the measured path crosses an AS never
	// seen on any baseline measurement for that destination.
	PathAlertNewAS PathAlertKind = iota
	// PathAlertLengthJump fires when the measured path is at least two
	// hops longer than the shortest baseline — interception detours
	// typically stretch the path.
	PathAlertLengthJump
	// PathAlertUnreachable fires when probing finds no path at all (a
	// blackholing hijack swallowed the traffic).
	PathAlertUnreachable
	// PathAlertNoBaseline fires when a measurement arrives for a
	// destination that has no recorded baseline: the prober cannot
	// classify the path, so it reports that one fact instead of
	// flagging every hop as a new AS.
	PathAlertNoBaseline
)

// String names the alert kind.
func (k PathAlertKind) String() string {
	switch k {
	case PathAlertNewAS:
		return "new-as-on-path"
	case PathAlertLengthJump:
		return "path-length-jump"
	case PathAlertUnreachable:
		return "unreachable"
	case PathAlertNoBaseline:
		return "no-baseline"
	}
	return fmt.Sprintf("PathAlertKind(%d)", int(k))
}

// PathAlert is one data-plane anomaly report.
type PathAlert struct {
	Time time.Time
	Dst  bgp.ASN
	Kind PathAlertKind
	// Observed is the offending AS for PathAlertNewAS.
	Observed bgp.ASN
}

// PathProber accumulates baseline forward-path measurements per
// destination AS and flags divergence. One prober serves one client
// (src is fixed by the caller's vantage).
type PathProber struct {
	// seen[dst] is the set of ASes ever measured on the path to dst.
	seen map[bgp.ASN]map[bgp.ASN]bool
	// shortest[dst] is the shortest baseline path length.
	shortest map[bgp.ASN]int
}

// NewPathProber returns an empty prober.
func NewPathProber() *PathProber {
	return &PathProber{
		seen:     make(map[bgp.ASN]map[bgp.ASN]bool),
		shortest: make(map[bgp.ASN]int),
	}
}

// Baseline records one trusted measurement of the path to dst (run
// repeatedly over the learning window so ordinary churn is absorbed into
// the baseline).
func (p *PathProber) Baseline(dst bgp.ASN, path []bgp.ASN) {
	set := p.seen[dst]
	if set == nil {
		set = make(map[bgp.ASN]bool)
		p.seen[dst] = set
	}
	for _, a := range path {
		set[a] = true
	}
	if cur, ok := p.shortest[dst]; !ok || len(path) < cur {
		p.shortest[dst] = len(path)
	}
}

// Check compares a fresh measurement against the baseline and returns any
// alerts. A nil/empty path means the probe got no answer (blackhole).
func (p *PathProber) Check(at time.Time, dst bgp.ASN, path []bgp.ASN) []PathAlert {
	if len(path) == 0 {
		return []PathAlert{{Time: at, Dst: dst, Kind: PathAlertUnreachable}}
	}
	set := p.seen[dst]
	if len(set) == 0 {
		// No baseline for dst: every hop would look like a new AS and
		// a single probe would flood len(path) false alarms. Report the
		// missing baseline once instead.
		return []PathAlert{{Time: at, Dst: dst, Kind: PathAlertNoBaseline}}
	}
	var alerts []PathAlert
	for _, a := range path {
		if !set[a] {
			alerts = append(alerts, PathAlert{Time: at, Dst: dst, Kind: PathAlertNewAS, Observed: a})
		}
	}
	if shortest, ok := p.shortest[dst]; ok && len(path) >= shortest+2 {
		alerts = append(alerts, PathAlert{Time: at, Dst: dst, Kind: PathAlertLengthJump})
	}
	return alerts
}

// KnownASes returns the baseline AS set for dst (for publication to
// clients per §5, alongside the control-plane feed).
func (p *PathProber) KnownASes(dst bgp.ASN) []bgp.ASN {
	set := p.seen[dst]
	out := make([]bgp.ASN, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}
