// Package defense implements the countermeasures of paper §5:
//
//   - AS-aware relay selection: pick circuits so that no AS can observe
//     both the client↔guard segment and the exit↔destination segment,
//     accounting for path asymmetry (both directions of each segment)
//     and, optionally, for the path dynamics observed over the past
//     month;
//   - shorter-AS-PATH guard preference, which shrinks the region a
//     stealthy same-prefix hijack can steal the client→guard route from;
//   - a control-plane monitor that watches BGP updates for relay
//     prefixes and raises aggressive alarms (origin change, more-specific
//     announcement, unfamiliar upstream), accepting false positives to
//     avoid false negatives.
package defense

import (
	"fmt"
	"net/netip"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/topology"
	"quicksand/internal/torconsensus"
	"quicksand/internal/torpath"
)

// PathOracle reports the set of ASes able to observe traffic between two
// ASes. Implementations differ in how pessimistic they are: static uses
// today's paths only, dynamics-aware folds in the churn of the past month.
type PathOracle interface {
	// SegmentASes returns every AS on the forward or reverse path
	// between a and b (asymmetric routing means the two differ; an
	// observer on either direction suffices, §3.3).
	SegmentASes(a, b bgp.ASN) ([]bgp.ASN, error)
}

// StaticOracle computes segment ASes from current best paths in a
// topology, both directions included. Route tables come from a shared
// topology.RouteCache, safe for concurrent use, so one oracle can serve
// every worker of a parallel study — and several oracles (or other
// per-destination consumers) can share one cache.
type StaticOracle struct {
	cache *topology.RouteCache
}

// NewStaticOracle returns a StaticOracle over g with a private cache.
func NewStaticOracle(g *topology.Graph) *StaticOracle {
	return &StaticOracle{cache: topology.NewRouteCache(g)}
}

// NewSharedStaticOracle returns a StaticOracle backed by an existing
// route cache, sharing its per-destination tables with other consumers.
func NewSharedStaticOracle(rc *topology.RouteCache) *StaticOracle {
	return &StaticOracle{cache: rc}
}

func (o *StaticOracle) table(dst bgp.ASN) (*topology.CompiledRoutes, error) {
	return o.cache.Routes(dst)
}

// SegmentASes returns the union of ASes on the a→b and b→a best paths.
func (o *StaticOracle) SegmentASes(a, b bgp.ASN) ([]bgp.ASN, error) {
	seen := make(map[bgp.ASN]bool)
	for _, pair := range [2][2]bgp.ASN{{a, b}, {b, a}} {
		rt, err := o.table(pair[1])
		if err != nil {
			return nil, err
		}
		path, ok := rt.PathFrom(pair[0])
		if !ok {
			return nil, fmt.Errorf("defense: no path %v -> %v", pair[0], pair[1])
		}
		for _, asn := range path {
			seen[asn] = true
		}
	}
	out := make([]bgp.ASN, 0, len(seen))
	for asn := range seen {
		out = append(out, asn)
	}
	return out, nil
}

// DynamicsOracle extends a base oracle with the extra ASes observed on
// paths toward each destination AS over the measurement window — the §5
// recommendation that relays publish the ASes they used over the last
// month so clients can account for path dynamics.
type DynamicsOracle struct {
	Base PathOracle
	// Extra maps a destination AS to additional ASes that appeared on
	// paths toward its prefixes during the window (e.g. from
	// analysis.ExtraASes over a bgpsim stream).
	Extra map[bgp.ASN][]bgp.ASN
}

// SegmentASes returns the base segment set plus the recorded dynamics for
// both endpoints.
func (o *DynamicsOracle) SegmentASes(a, b bgp.ASN) ([]bgp.ASN, error) {
	base, err := o.Base.SegmentASes(a, b)
	if err != nil {
		return nil, err
	}
	seen := make(map[bgp.ASN]bool, len(base))
	for _, asn := range base {
		seen[asn] = true
	}
	for _, asn := range o.Extra[a] {
		seen[asn] = true
	}
	for _, asn := range o.Extra[b] {
		seen[asn] = true
	}
	out := make([]bgp.ASN, 0, len(seen))
	for asn := range seen {
		out = append(out, asn)
	}
	return out, nil
}

// ASAwareSelector builds circuits whose two observable segments share no
// AS, per the oracle's (possibly dynamics-aware) view.
type ASAwareSelector struct {
	Selector *torpath.Selector
	Oracle   PathOracle
	// RelayAS maps a relay address to its hosting AS (longest-prefix
	// match against the RIB); relays it cannot map are treated as
	// unusable.
	RelayAS func(addr netip.Addr) (bgp.ASN, bool)
	// MaxAttempts bounds the rejection-sampling loop (default 50).
	MaxAttempts int
}

// BuildCircuit returns a circuit for which the client↔guard AS set and
// the exit↔destination AS set are disjoint. It errors when MaxAttempts
// samples all fail the check.
func (s *ASAwareSelector) BuildCircuit(gs *torpath.GuardSet, port uint16, clientAS, destAS bgp.ASN) (torpath.Circuit, error) {
	attempts := s.MaxAttempts
	if attempts <= 0 {
		attempts = 50
	}
	for i := 0; i < attempts; i++ {
		c, err := s.Selector.BuildCircuit(gs, port)
		if err != nil {
			return torpath.Circuit{}, err
		}
		ok, err := s.CircuitSafe(c, clientAS, destAS)
		if err != nil {
			continue // unroutable relay: resample
		}
		if ok {
			return c, nil
		}
	}
	return torpath.Circuit{}, fmt.Errorf("defense: no AS-disjoint circuit in %d attempts", attempts)
}

// CircuitSafe reports whether the circuit's entry and exit segments share
// no observing AS.
func (s *ASAwareSelector) CircuitSafe(c torpath.Circuit, clientAS, destAS bgp.ASN) (bool, error) {
	guardAS, ok := s.RelayAS(c.Guard.Addr)
	if !ok {
		return false, fmt.Errorf("defense: guard %v not mappable to an AS", c.Guard.Addr)
	}
	exitAS, ok := s.RelayAS(c.Exit.Addr)
	if !ok {
		return false, fmt.Errorf("defense: exit %v not mappable to an AS", c.Exit.Addr)
	}
	entry, err := s.Oracle.SegmentASes(clientAS, guardAS)
	if err != nil {
		return false, err
	}
	exit, err := s.Oracle.SegmentASes(exitAS, destAS)
	if err != nil {
		return false, err
	}
	entrySet := make(map[bgp.ASN]bool, len(entry))
	for _, a := range entry {
		entrySet[a] = true
	}
	for _, a := range exit {
		if entrySet[a] {
			return false, nil
		}
	}
	return true, nil
}

// PickGuardsPreferShort selects n guards bandwidth-weighted among those
// whose client→guard AS path is at most maxLen hops, relaxing the bound
// one hop at a time when too few guards qualify (§5: "favoring relays
// with shorter AS-PATHs" mitigates stealthy same-prefix hijacks, which
// only win over ASes with long paths to the victim). The returned guard
// set is stamped with the given selection time.
func PickGuardsPreferShort(sel *torpath.Selector, oracle *StaticOracle, relayAS func(netip.Addr) (bgp.ASN, bool), clientAS bgp.ASN, n, maxLen int, now time.Time) (*torpath.GuardSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("defense: need at least one guard")
	}
	guards := sel.Consensus().Guards()
	// Compute each guard's AS-path length from the client: the length of
	// the client's route toward the guard's AS.
	lengths := make(map[string]int, len(guards))
	for _, g := range guards {
		asn, ok := relayAS(g.Addr)
		if !ok {
			continue
		}
		rt, err := oracle.table(asn)
		if err != nil {
			return nil, err
		}
		r, ok := rt.Route(clientAS)
		if !ok || r.Type == topology.RouteNone {
			continue
		}
		lengths[g.Identity] = r.PathLen
	}
	for bound := maxLen; ; bound++ {
		var eligible []*torconsensus.Relay
		for _, g := range guards {
			if l, ok := lengths[g.Identity]; ok && l <= bound {
				eligible = append(eligible, g)
			}
		}
		if len(eligible) >= n*3 || bound > maxLen+16 {
			if len(eligible) < n {
				return nil, fmt.Errorf("defense: only %d reachable guards", len(eligible))
			}
			gs := &torpath.GuardSet{Chosen: now, Lifetime: torpath.DefaultGuardLifetime}
			for len(gs.Guards) < n {
				g := sel.WeightedPick(eligible, gs.Guards)
				if g == nil {
					return nil, fmt.Errorf("defense: exclusion rules left fewer than %d guards", n)
				}
				gs.Guards = append(gs.Guards, g)
			}
			return gs, nil
		}
	}
}
