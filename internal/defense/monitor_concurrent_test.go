package defense

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpsim"
)

// TestMonitorConcurrentObserve exercises the streaming contract under
// -race: Learn, EnableUpstream and Observe racing from many goroutines,
// as the monitord shard workers do.
func TestMonitorConcurrentObserve(t *testing.T) {
	watched := map[netip.Prefix]bgp.ASN{
		netip.MustParsePrefix("10.0.0.0/16"): 64500,
		netip.MustParsePrefix("10.1.0.0/16"): 64501,
	}
	m, err := NewMonitor(watched)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
	benign := bgpsim.UpdateEvent{
		Time: base, Prefix: netip.MustParsePrefix("10.0.0.0/16"),
		Path: []bgp.ASN{100, 200, 64500},
	}
	hijacked := bgpsim.UpdateEvent{
		Time: base, Prefix: netip.MustParsePrefix("10.1.0.0/16"),
		Path: []bgp.ASN{100, 666},
	}

	var wg sync.WaitGroup
	var alarms sync.Map
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch i % 3 {
				case 0:
					m.Learn(&benign)
				case 1:
					for _, a := range m.Observe(&hijacked) {
						if a.Kind != AlertOriginChange {
							alarms.Store(a.Kind, true)
						}
					}
				case 2:
					m.Observe(&benign)
				}
				if i == 100 {
					m.EnableUpstream()
				}
			}
		}(w)
	}
	wg.Wait()
	// The hijacked prefix must only ever raise origin-change alarms.
	alarms.Range(func(k, _ any) bool {
		t.Errorf("unexpected alert kind %v on origin-changed update", k)
		return true
	})
	// Post-learning, the benign upstream is known: no upstream alarm.
	for _, a := range m.Observe(&benign) {
		t.Errorf("benign update alarmed after learning: %+v", a)
	}
}
