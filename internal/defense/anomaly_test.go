package defense

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"quicksand/internal/bgp"
)

var anomalyPrefix = netip.MustParsePrefix("10.1.0.0/16")

func alertAt(t0 time.Time, offset time.Duration, origin uint32) Alert {
	return Alert{
		Time:     t0.Add(offset),
		Prefix:   anomalyPrefix,
		Kind:     AlertOriginChange,
		Observed: bgp.ASN(origin),
	}
}

// feed pushes alerts and returns every escalated anomaly.
func feed(det *AnomalyDetector, alerts ...Alert) []Anomaly {
	var out []Anomaly
	for _, a := range alerts {
		out = append(out, det.Observe(a)...)
	}
	return out
}

func TestAnomalyBootstrapBurst(t *testing.T) {
	det := NewAnomalyDetector(AnomalyConfig{Window: time.Minute, FreqBootstrap: 4})
	t0 := time.Unix(1000, 0)

	// Three alerts in the first window: below the bootstrap bar.
	for i := 0; i < 3; i++ {
		if got := feed(det, alertAt(t0, time.Duration(i)*time.Second, 666)); len(got) != 0 {
			t.Fatalf("alert %d escalated prematurely: %+v", i, got)
		}
	}
	// The fourth hits the cold-start threshold, exactly once.
	got := feed(det, alertAt(t0, 3*time.Second, 666))
	if len(got) != 1 || got[0].Kind != AnomalyFrequency {
		t.Fatalf("bootstrap burst = %+v, want one frequency anomaly", got)
	}
	if got[0].Score < 1 || got[0].Alerts != 4 || got[0].Prefix != anomalyPrefix {
		t.Errorf("anomaly = %+v", got[0])
	}
	// Further alerts in the same window do not re-fire.
	if got := feed(det, alertAt(t0, 4*time.Second, 666)); len(got) != 0 {
		t.Errorf("same-window re-escalation: %+v", got)
	}
}

// TestAnomalyBaselineSuppressesChronicChurn pins the Counter-RAPTOR
// insight: a prefix with noisy history needs a much bigger burst to
// escalate than its steady rate, while a genuine surge still fires.
func TestAnomalyBaselineSuppressesChronicChurn(t *testing.T) {
	det := NewAnomalyDetector(AnomalyConfig{
		Window: time.Minute, FreqThreshold: 4, FreqBootstrap: 1000, Decay: 0.3,
	})
	t0 := time.Unix(1000, 0)

	// Ten windows of steady churn: 5 alerts each, no escalation (the
	// bootstrap bar is unreachable and a baseline forms).
	var got []Anomaly
	for w := 0; w < 10; w++ {
		for i := 0; i < 5; i++ {
			off := time.Duration(w)*time.Minute + time.Duration(i)*time.Second
			got = append(got, feed(det, alertAt(t0, off, 666))...)
		}
	}
	if len(got) != 0 {
		t.Fatalf("steady churn escalated: %+v", got)
	}

	// A 40-alert burst in window 10 towers over the baseline (mean ~5,
	// dev ~0) and must escalate exactly once.
	for i := 0; i < 40; i++ {
		off := 10*time.Minute + time.Duration(i)*time.Second
		got = append(got, feed(det, alertAt(t0, off, 666))...)
	}
	if len(got) != 1 || got[0].Kind != AnomalyFrequency || got[0].Score < 1 {
		t.Fatalf("burst over baseline = %+v, want one frequency anomaly", got)
	}

	// Back to the steady rate: the baseline (inflated a little by the
	// burst window) suppresses again.
	got = got[:0]
	for w := 11; w < 14; w++ {
		for i := 0; i < 5; i++ {
			off := time.Duration(w)*time.Minute + time.Duration(i)*time.Second
			got = append(got, feed(det, alertAt(t0, off, 666))...)
		}
	}
	if len(got) != 0 {
		t.Errorf("post-burst steady rate escalated: %+v", got)
	}
}

func TestAnomalyOriginFlap(t *testing.T) {
	det := NewAnomalyDetector(AnomalyConfig{Window: time.Minute, FlapThreshold: 3, FreqBootstrap: 1000})
	t0 := time.Unix(1000, 0)

	// A↔B fighting: transitions at alerts 2, 3, 4 — the third flip fires.
	origins := []uint32{64500, 666, 64500, 666, 64500}
	var got []Anomaly
	for i, o := range origins {
		got = append(got, feed(det, alertAt(t0, time.Duration(i)*time.Second, o))...)
	}
	if len(got) != 1 || got[0].Kind != AnomalyOriginFlap {
		t.Fatalf("flap war = %+v, want one origin-flap anomaly", got)
	}
	if len(got[0].Origins) != 2 || got[0].Origins[0] != 666 || got[0].Origins[1] != 64500 {
		t.Errorf("anomaly origins = %v, want sorted [666 64500]", got[0].Origins)
	}

	// A stable (if bogus) origin never flap-escalates.
	det2 := NewAnomalyDetector(AnomalyConfig{Window: time.Minute, FlapThreshold: 3, FreqBootstrap: 1000})
	for i := 0; i < 20; i++ {
		if got := feed(det2, alertAt(t0, time.Duration(i)*time.Second, 666)); len(got) != 0 {
			t.Fatalf("stable origin escalated: %+v", got)
		}
	}
}

// TestAnomalyWindowReset pins that counters and the per-window
// escalation latches reset at window boundaries, and that a long quiet
// gap decays the baseline instead of looping or wedging.
func TestAnomalyWindowReset(t *testing.T) {
	det := NewAnomalyDetector(AnomalyConfig{Window: time.Minute, FlapThreshold: 2, FreqBootstrap: 1000})
	t0 := time.Unix(1000, 0)

	// Two flips in window 0 escalate...
	feed(det, alertAt(t0, 0, 1), alertAt(t0, time.Second, 2))
	got := feed(det, alertAt(t0, 2*time.Second, 1))
	if len(got) != 1 || got[0].Kind != AnomalyOriginFlap {
		t.Fatalf("window 0 flaps = %+v", got)
	}
	// ...and the same pattern escalates again in a later window (the
	// latch must reset), even after a year-long gap.
	later := 370 * 24 * time.Hour
	feed(det, alertAt(t0, later, 1), alertAt(t0, later+time.Second, 2))
	got = feed(det, alertAt(t0, later+2*time.Second, 1))
	if len(got) != 1 || got[0].Kind != AnomalyOriginFlap {
		t.Fatalf("post-gap flaps = %+v, want a fresh escalation", got)
	}

	observed, escalated := det.Totals()
	if observed != 6 || escalated[AnomalyOriginFlap] != 2 || escalated[AnomalyFrequency] != 0 {
		t.Errorf("Totals = %d, %v", observed, escalated)
	}
}

// TestAnomalyDeterministic pins replay determinism: the same alert
// stream escalates identically, alert-for-alert, on every run — the
// analytics consume alert timestamps, never the wall clock.
func TestAnomalyDeterministic(t *testing.T) {
	t0 := time.Unix(1000, 0)
	run := func() []Anomaly {
		det := NewAnomalyDetector(AnomalyConfig{Window: 30 * time.Second, FreqBootstrap: 3, FlapThreshold: 2})
		var out []Anomaly
		for i := 0; i < 200; i++ {
			out = append(out, det.Observe(alertAt(t0, time.Duration(i*7)*time.Second, uint32(600+i%3)))...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("stream escalated nothing; test is vacuous")
	}
	if len(a) != len(b) {
		t.Fatalf("runs disagree: %d vs %d anomalies", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || !a[i].Time.Equal(b[i].Time) || a[i].Score != b[i].Score {
			t.Errorf("anomaly %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAnomalyConcurrentPrefixes(t *testing.T) {
	det := NewAnomalyDetector(AnomalyConfig{Window: time.Minute, FreqBootstrap: 4})
	t0 := time.Unix(1000, 0)
	var wg sync.WaitGroup
	counts := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := netip.MustParsePrefix(netip.AddrFrom4([4]byte{10, byte(g), 0, 0}).String() + "/16")
			for i := 0; i < 50; i++ {
				a := Alert{Time: t0.Add(time.Duration(i) * time.Second), Prefix: p, Observed: 666}
				counts[g] += len(det.Observe(a))
			}
		}(g)
	}
	wg.Wait()
	for g, n := range counts {
		if n != 1 {
			t.Errorf("prefix %d escalated %d times, want exactly 1", g, n)
		}
	}
	if observed, _ := det.Totals(); observed != 400 {
		t.Errorf("observed = %d, want 400", observed)
	}
}

func TestAnomalyKindString(t *testing.T) {
	if AnomalyFrequency.String() != "frequency-burst" || AnomalyOriginFlap.String() != "origin-flap" {
		t.Errorf("kind strings: %q, %q", AnomalyFrequency, AnomalyOriginFlap)
	}
	if s := AnomalyKind(99).String(); s != "AnomalyKind(99)" {
		t.Errorf("unknown kind = %q", s)
	}
}
