package torpath

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/torconsensus"
)

func genConsensus(t testing.TB) *torconsensus.Consensus {
	t.Helper()
	hosts := make([]bgp.ASN, 120)
	for i := range hosts {
		hosts[i] = bgp.ASN(20000 + i)
	}
	cfg := torconsensus.GenConfig{
		Total: 400, Guards: 150, Exits: 90, Both: 30,
		GuardExitPrefixes:  120,
		MaxRelaysPerPrefix: 15,
		MiddleOnlyPrefixes: 20,
		HostASes:           hosts,
		NumHostASes:        80,
		Seed:               9,
		ValidAfter:         time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC),
	}
	c, _, err := torconsensus.GenerateConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var testNow = time.Date(2014, 7, 2, 0, 0, 0, 0, time.UTC)

func TestPickGuards(t *testing.T) {
	s := NewSelector(genConsensus(t), 1)
	gs, err := s.PickGuards(3, testNow)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Guards) != 3 {
		t.Fatalf("guards = %d", len(gs.Guards))
	}
	seen := make(map[string]bool)
	for _, g := range gs.Guards {
		if !g.IsGuard() {
			t.Fatalf("%s is not a guard", g.Nickname)
		}
		if seen[g.Identity] {
			t.Fatal("duplicate guard")
		}
		seen[g.Identity] = true
	}
	// /16 exclusion between guards.
	for i := 0; i < len(gs.Guards); i++ {
		for j := i + 1; j < len(gs.Guards); j++ {
			if sameSlash16(gs.Guards[i].Addr, gs.Guards[j].Addr) {
				t.Fatalf("guards %v and %v share a /16", gs.Guards[i].Addr, gs.Guards[j].Addr)
			}
		}
	}
}

func TestPickGuardsErrors(t *testing.T) {
	s := NewSelector(genConsensus(t), 1)
	if _, err := s.PickGuards(0, testNow); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := s.PickGuards(100000, testNow); err == nil {
		t.Fatal("impossible guard count accepted")
	}
}

func TestBuildCircuitConstraints(t *testing.T) {
	s := NewSelector(genConsensus(t), 2)
	gs, err := s.PickGuards(3, testNow)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		c, err := s.BuildCircuit(gs, 443)
		if err != nil {
			t.Fatal(err)
		}
		if c.Guard == nil || c.Middle == nil || c.Exit == nil {
			t.Fatal("incomplete circuit")
		}
		inSet := false
		for _, g := range gs.Guards {
			if g.Identity == c.Guard.Identity {
				inSet = true
			}
		}
		if !inSet {
			t.Fatal("circuit guard not from guard set")
		}
		if !c.Exit.IsExit() || !c.Exit.AllowsPort(443) {
			t.Fatalf("bad exit %+v", c.Exit)
		}
		rs := c.Relays()
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				if rs[i].Identity == rs[j].Identity {
					t.Fatal("duplicate relay in circuit")
				}
				if sameSlash16(rs[i].Addr, rs[j].Addr) {
					t.Fatalf("circuit relays share /16: %v %v", rs[i].Addr, rs[j].Addr)
				}
			}
		}
	}
}

func TestBuildCircuitEmptyGuardSet(t *testing.T) {
	s := NewSelector(genConsensus(t), 2)
	if _, err := s.BuildCircuit(nil, 443); err == nil {
		t.Fatal("nil guard set accepted")
	}
	if _, err := s.BuildCircuit(&GuardSet{}, 443); err == nil {
		t.Fatal("empty guard set accepted")
	}
}

func TestBuildCircuitNoExitForPort(t *testing.T) {
	// Build a tiny consensus with exits that only accept 80.
	va := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
	cons := &torconsensus.Consensus{ValidAfter: va}
	add := func(nick string, addr string, flags torconsensus.Flag, bw uint64, policy string) {
		cons.Relays = append(cons.Relays, torconsensus.Relay{
			Nickname: nick, Identity: nick, Digest: nick, Published: va,
			Addr: netip.MustParseAddr(addr), ORPort: 9001,
			Flags:     flags | torconsensus.FlagRunning | torconsensus.FlagValid,
			Bandwidth: bw, ExitPolicy: policy,
		})
	}
	add("g1", "10.1.0.1", torconsensus.FlagGuard, 100, "reject 1-65535")
	add("m1", "10.2.0.1", 0, 100, "reject 1-65535")
	add("e1", "10.3.0.1", torconsensus.FlagExit, 100, "accept 80")
	s := NewSelector(cons, 3)
	gs, err := s.PickGuards(1, testNow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BuildCircuit(gs, 443); err == nil {
		t.Fatal("circuit built with no exit for port 443")
	}
	if _, err := s.BuildCircuit(gs, 80); err != nil {
		t.Fatalf("port 80 circuit failed: %v", err)
	}
}

func TestWeightedPickRespectsWeights(t *testing.T) {
	va := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
	big := &torconsensus.Relay{Nickname: "big", Identity: "big", Published: va,
		Addr: netip.MustParseAddr("10.0.0.1"), Bandwidth: 9000}
	small := &torconsensus.Relay{Nickname: "small", Identity: "small", Published: va,
		Addr: netip.MustParseAddr("10.1.0.1"), Bandwidth: 1000}
	s := NewSelector(&torconsensus.Consensus{}, 4)
	cands := []*torconsensus.Relay{big, small}
	bigCount := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		if s.WeightedPick(cands, nil) == big {
			bigCount++
		}
	}
	frac := float64(bigCount) / trials
	if math.Abs(frac-0.9) > 0.03 {
		t.Fatalf("big picked %.3f of the time, want ~0.9", frac)
	}
}

func TestWeightedPickExclusion(t *testing.T) {
	va := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
	a := &torconsensus.Relay{Identity: "a", Published: va, Addr: netip.MustParseAddr("10.0.0.1"), Bandwidth: 10}
	b := &torconsensus.Relay{Identity: "b", Published: va, Addr: netip.MustParseAddr("10.0.5.1"), Bandwidth: 10}
	s := NewSelector(&torconsensus.Consensus{}, 5)
	// b shares a /16 with a: excluding a must leave nothing.
	if got := s.WeightedPick([]*torconsensus.Relay{b}, []*torconsensus.Relay{a}); got != nil {
		t.Fatalf("picked %v despite /16 conflict", got.Identity)
	}
	if got := s.WeightedPick(nil, nil); got != nil {
		t.Fatal("picked from empty candidates")
	}
}

func TestSelectionProb(t *testing.T) {
	va := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
	a := &torconsensus.Relay{Identity: "a", Published: va, Bandwidth: 300}
	b := &torconsensus.Relay{Identity: "b", Published: va, Bandwidth: 100}
	probs := SelectionProb([]*torconsensus.Relay{a, b})
	if math.Abs(probs["a"]-0.75) > 1e-12 || math.Abs(probs["b"]-0.25) > 1e-12 {
		t.Fatalf("probs = %v", probs)
	}
	if len(SelectionProb(nil)) != 0 {
		t.Fatal("empty candidates should give empty probs")
	}
}

func TestGuardRotation(t *testing.T) {
	s := NewSelector(genConsensus(t), 6)
	gs, err := s.PickGuards(3, testNow)
	if err != nil {
		t.Fatal(err)
	}
	same, err := s.Rotate(gs, testNow.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if same != gs {
		t.Fatal("unexpired guard set was rotated")
	}
	later := testNow.Add(31 * 24 * time.Hour)
	if !gs.Expired(later) {
		t.Fatal("guard set should be expired after 31 days")
	}
	fresh, err := s.Rotate(gs, later)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == gs {
		t.Fatal("expired guard set not rotated")
	}
	if len(fresh.Guards) != len(gs.Guards) {
		t.Fatalf("rotated set size %d != %d", len(fresh.Guards), len(gs.Guards))
	}
	if !fresh.Chosen.Equal(later) {
		t.Fatalf("rotated set Chosen = %v", fresh.Chosen)
	}
	// Rotate with nil set picks a default-sized set.
	def, err := s.Rotate(nil, later)
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Guards) != DefaultNumGuards {
		t.Fatalf("default set size = %d", len(def.Guards))
	}
}

// Guard selection frequency approaches bandwidth share over many clients:
// the core premise of "high-bandwidth relays observe a significant
// fraction of Tor traffic" (§3.2).
func TestGuardSelectionMatchesBandwidthShare(t *testing.T) {
	cons := genConsensus(t)
	s := NewSelector(cons, 7)
	guards := cons.Guards()
	probs := SelectionProb(guards)
	// Find the heaviest guard.
	var top *torconsensus.Relay
	for _, g := range guards {
		if top == nil || g.Bandwidth > top.Bandwidth {
			top = g
		}
	}
	count := 0
	const clients = 3000
	for i := 0; i < clients; i++ {
		gs, err := s.PickGuards(1, testNow)
		if err != nil {
			t.Fatal(err)
		}
		if gs.Guards[0].Identity == top.Identity {
			count++
		}
	}
	got := float64(count) / clients
	want := probs[top.Identity]
	if math.Abs(got-want) > 0.05+want/2 {
		t.Fatalf("top guard frequency %.4f, bandwidth share %.4f", got, want)
	}
}

func BenchmarkBuildCircuit(b *testing.B) {
	s := NewSelector(genConsensus(b), 8)
	gs, err := s.PickGuards(3, testNow)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.BuildCircuit(gs, 443); err != nil {
			b.Fatal(err)
		}
	}
}
