// Package torpath implements Tor's relay selection: bandwidth-weighted
// sampling from the consensus, guard-set management with rotation, and
// three-hop circuit construction under Tor's exclusion constraints
// (distinct relays, no two relays in the same /16).
//
// The selection model matches the behaviour the paper relies on: "clients
// select relays with a probability that is proportional to their network
// capacity", entry positions come from a small fixed guard set (three
// guards kept for about a month), and exits must admit the destination
// port in their exit policy.
package torpath

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"quicksand/internal/torconsensus"
)

// Selector draws relays from a consensus with a deterministic RNG.
type Selector struct {
	cons *torconsensus.Consensus
	rng  *rand.Rand
}

// NewSelector returns a Selector over cons seeded with seed.
func NewSelector(cons *torconsensus.Consensus, seed int64) *Selector {
	return &Selector{cons: cons, rng: rand.New(rand.NewSource(seed))}
}

// Consensus returns the consensus this selector draws from.
func (s *Selector) Consensus() *torconsensus.Consensus { return s.cons }

// sameSlash16 reports whether two addresses share a /16, Tor's subnet
// exclusion rule.
func sameSlash16(a, b netip.Addr) bool {
	if !a.Is4() || !b.Is4() {
		return false
	}
	x, y := a.As4(), b.As4()
	return x[0] == y[0] && x[1] == y[1]
}

// conflicts reports whether candidate violates Tor's exclusion rules
// against the already-chosen relays.
func conflicts(candidate *torconsensus.Relay, chosen []*torconsensus.Relay) bool {
	for _, c := range chosen {
		if c == nil {
			continue
		}
		if c.Identity == candidate.Identity || sameSlash16(c.Addr, candidate.Addr) {
			return true
		}
	}
	return false
}

// WeightedPick draws one relay from candidates with probability
// proportional to consensus bandwidth, excluding any relay conflicting
// with the exclude list. It returns nil when no eligible relay remains.
func (s *Selector) WeightedPick(candidates []*torconsensus.Relay, exclude []*torconsensus.Relay) *torconsensus.Relay {
	var total uint64
	for _, r := range candidates {
		if conflicts(r, exclude) {
			continue
		}
		total += r.Bandwidth
	}
	if total == 0 {
		return nil
	}
	pick := uint64(s.rng.Int63n(int64(total)))
	for _, r := range candidates {
		if conflicts(r, exclude) {
			continue
		}
		if pick < r.Bandwidth {
			return r
		}
		pick -= r.Bandwidth
	}
	return nil
}

// WeightFn maps a candidate relay to a non-negative selection weight.
// A weight of zero (or less) makes the relay unselectable.
type WeightFn func(r *torconsensus.Relay) float64

// WeightedPickFn draws one relay with probability proportional to
// weight(r), under the same exclusion rules as WeightedPick. It returns
// nil when no eligible relay has positive weight. The draw consumes one
// value from the selector's deterministic RNG stream.
func (s *Selector) WeightedPickFn(candidates []*torconsensus.Relay, exclude []*torconsensus.Relay, weight WeightFn) *torconsensus.Relay {
	var total float64
	for _, r := range candidates {
		if conflicts(r, exclude) {
			continue
		}
		if w := weight(r); w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return nil
	}
	pick := s.rng.Float64() * total
	var last *torconsensus.Relay
	for _, r := range candidates {
		if conflicts(r, exclude) {
			continue
		}
		w := weight(r)
		if w <= 0 {
			continue
		}
		if pick < w {
			return r
		}
		pick -= w
		last = r
	}
	// Float accumulation can leave a sliver past the last weight; the
	// draw belongs to the final eligible relay.
	return last
}

// PickGuardsFn selects n entry guards like PickGuards but with draws
// weighted by weight instead of raw bandwidth, preserving the exclusion
// rules (distinct relays, no shared /16).
func (s *Selector) PickGuardsFn(n int, now time.Time, weight WeightFn) (*GuardSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("torpath: need at least one guard, asked for %d", n)
	}
	guards := s.cons.Guards()
	set := &GuardSet{Chosen: now, Lifetime: DefaultGuardLifetime}
	for len(set.Guards) < n {
		g := s.WeightedPickFn(guards, set.Guards, weight)
		if g == nil {
			return nil, fmt.Errorf("torpath: only %d eligible guards, wanted %d", len(set.Guards), n)
		}
		set.Guards = append(set.Guards, g)
	}
	return set, nil
}

// ResilienceWeight builds Counter-RAPTOR's guard weighting
//
//	W(i) = a·R(i) + (1−a)·B(i)
//
// over the candidate set: R(i) ∈ [0,1] is the client's hijack
// resilience toward the relay's AS (from resilience(r)) and B(i) is the
// relay's consensus bandwidth normalised by the maximum over
// candidates, so both terms share the [0,1] scale and a=0 reproduces
// the vanilla bandwidth-proportional distribution exactly. Relays whose
// resilience is unknown (ok=false) get R=0 — the conservative choice:
// an unmapped relay is never boosted above its bandwidth share. The
// weights are resolved once, so the returned WeightFn is cheap per
// draw.
func ResilienceWeight(candidates []*torconsensus.Relay, a float64, resilience func(r *torconsensus.Relay) (float64, bool)) (WeightFn, error) {
	if a < 0 || a > 1 {
		return nil, fmt.Errorf("torpath: resilience weight a=%v outside [0,1]", a)
	}
	var maxBW uint64
	for _, r := range candidates {
		if r.Bandwidth > maxBW {
			maxBW = r.Bandwidth
		}
	}
	weights := make(map[string]float64, len(candidates))
	for _, r := range candidates {
		var b float64
		if maxBW > 0 {
			b = float64(r.Bandwidth) / float64(maxBW)
		}
		var ri float64
		if resilience != nil {
			if v, ok := resilience(r); ok {
				ri = min(max(v, 0), 1)
			}
		}
		weights[r.Identity] = a*ri + (1-a)*b
	}
	return func(r *torconsensus.Relay) float64 { return weights[r.Identity] }, nil
}

// SelectionProb returns each candidate relay's stationary selection
// probability (bandwidth over total bandwidth), keyed by identity. The
// anonymity analyses use this to weight per-guard exposure.
func SelectionProb(candidates []*torconsensus.Relay) map[string]float64 {
	var total float64
	for _, r := range candidates {
		total += float64(r.Bandwidth)
	}
	out := make(map[string]float64, len(candidates))
	if total == 0 {
		return out
	}
	for _, r := range candidates {
		out[r.Identity] = float64(r.Bandwidth) / total
	}
	return out
}

// GuardSet is a client's entry-guard set: NumGuards relays kept until
// rotation, Tor's defence against long-term relay-level compromise. The
// paper's §3.1 observation is that the AS-level paths *to* these fixed
// guards still change underneath them.
type GuardSet struct {
	Guards   []*torconsensus.Relay
	Chosen   time.Time
	Lifetime time.Duration
}

// DefaultNumGuards is Tor's guard-set size at the time of the paper.
const DefaultNumGuards = 3

// DefaultGuardLifetime approximates the guard rotation period ("about a
// month"; the Tor Project was considering 9 months).
const DefaultGuardLifetime = 30 * 24 * time.Hour

// PickGuards selects n entry guards: bandwidth-weighted draws from the
// Guard-flagged relays under the exclusion rules.
func (s *Selector) PickGuards(n int, now time.Time) (*GuardSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("torpath: need at least one guard, asked for %d", n)
	}
	guards := s.cons.Guards()
	set := &GuardSet{Chosen: now, Lifetime: DefaultGuardLifetime}
	for len(set.Guards) < n {
		g := s.WeightedPick(guards, set.Guards)
		if g == nil {
			return nil, fmt.Errorf("torpath: only %d eligible guards, wanted %d", len(set.Guards), n)
		}
		set.Guards = append(set.Guards, g)
	}
	return set, nil
}

// Expired reports whether the guard set should rotate at time now.
func (gs *GuardSet) Expired(now time.Time) bool {
	return now.Sub(gs.Chosen) >= gs.Lifetime
}

// Rotate replaces the guard set if it has expired, returning the set in
// effect at now. Clients call this at every circuit build.
func (s *Selector) Rotate(gs *GuardSet, now time.Time) (*GuardSet, error) {
	if gs != nil && !gs.Expired(now) {
		return gs, nil
	}
	n := DefaultNumGuards
	if gs != nil && len(gs.Guards) > 0 {
		n = len(gs.Guards)
	}
	return s.PickGuards(n, now)
}

// Circuit is a three-hop Tor circuit.
type Circuit struct {
	Guard  *torconsensus.Relay
	Middle *torconsensus.Relay
	Exit   *torconsensus.Relay
}

// Relays returns the circuit's hops in order.
func (c Circuit) Relays() []*torconsensus.Relay {
	return []*torconsensus.Relay{c.Guard, c.Middle, c.Exit}
}

// BuildCircuit constructs a circuit: a uniformly-chosen guard from the
// client's guard set, then a bandwidth-weighted exit admitting port, then
// a bandwidth-weighted middle, all mutually non-conflicting. This mirrors
// Tor's build order (exit first, then guard, then middle); the guard is
// drawn first here because the set is fixed per client, which yields the
// same distribution.
func (s *Selector) BuildCircuit(gs *GuardSet, port uint16) (Circuit, error) {
	if gs == nil || len(gs.Guards) == 0 {
		return Circuit{}, fmt.Errorf("torpath: empty guard set")
	}
	guard := gs.Guards[s.rng.Intn(len(gs.Guards))]

	var exitCands []*torconsensus.Relay
	for _, r := range s.cons.Exits() {
		if r.AllowsPort(port) {
			exitCands = append(exitCands, r)
		}
	}
	exit := s.WeightedPick(exitCands, []*torconsensus.Relay{guard})
	if exit == nil {
		return Circuit{}, fmt.Errorf("torpath: no eligible exit for port %d", port)
	}

	middle := s.WeightedPick(s.cons.Running(), []*torconsensus.Relay{guard, exit})
	if middle == nil {
		return Circuit{}, fmt.Errorf("torpath: no eligible middle relay")
	}
	return Circuit{Guard: guard, Middle: middle, Exit: exit}, nil
}
