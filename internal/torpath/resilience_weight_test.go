package torpath

import (
	"testing"
	"time"

	"quicksand/internal/stats"
	"quicksand/internal/torconsensus"
)

// TestGuardSetExpiryBoundary pins the rotation boundary: a guard set
// expires exactly AT its lifetime, not one tick after. The E7 rotation
// study counts exposure windows per rotation; an off-by-one here would
// silently stretch every window.
func TestGuardSetExpiryBoundary(t *testing.T) {
	gs := &GuardSet{Chosen: testNow, Lifetime: DefaultGuardLifetime}
	if gs.Expired(testNow.Add(DefaultGuardLifetime - time.Nanosecond)) {
		t.Fatal("guard set expired one tick before its lifetime")
	}
	if !gs.Expired(testNow.Add(DefaultGuardLifetime)) {
		t.Fatal("guard set not expired exactly at its lifetime")
	}
	if !gs.Expired(testNow.Add(DefaultGuardLifetime + time.Nanosecond)) {
		t.Fatal("guard set not expired past its lifetime")
	}
}

// synthResilience fabricates per-relay resilience values decorrelated
// from bandwidth (a deterministic hash of the identity), so the
// chi-square test below has power to tell W(i) apart from B(i).
func synthResilience(candidates []*torconsensus.Relay) func(r *torconsensus.Relay) (float64, bool) {
	vals := make(map[string]float64, len(candidates))
	for _, r := range candidates {
		var h uint32 = 2166136261
		for _, c := range []byte(r.Identity) {
			h = (h ^ uint32(c)) * 16777619
		}
		vals[r.Identity] = float64(h%1000) / 999
	}
	return func(r *torconsensus.Relay) (float64, bool) {
		v, ok := vals[r.Identity]
		return v, ok
	}
}

func TestResilienceWeightValidation(t *testing.T) {
	cons := genConsensus(t)
	guards := cons.Guards()
	res := synthResilience(guards)
	for _, a := range []float64{-0.01, 1.01, 2} {
		if _, err := ResilienceWeight(guards, a, res); err == nil {
			t.Errorf("a=%v accepted", a)
		}
	}
	// a=0 must reproduce the bandwidth-proportional distribution: the
	// weight ratio of any two relays equals their bandwidth ratio.
	w, err := ResilienceWeight(guards, 0, res)
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := guards[0], guards[1]
	if w(r0)*float64(r1.Bandwidth) != w(r1)*float64(r0.Bandwidth) {
		t.Fatalf("a=0 weights not proportional to bandwidth: %v/%d vs %v/%d",
			w(r0), r0.Bandwidth, w(r1), r1.Bandwidth)
	}
	// Unknown resilience is conservative: R=0, so at a=1 the relay is
	// unselectable rather than boosted.
	w1, err := ResilienceWeight(guards, 1, func(*torconsensus.Relay) (float64, bool) { return 0.7, false })
	if err != nil {
		t.Fatal(err)
	}
	if w1(guards[0]) != 0 {
		t.Fatalf("unknown resilience at a=1 weighted %v, want 0", w1(guards[0]))
	}
}

// drawHist draws single weighted guards n times and histograms the
// picks over the candidate order.
func drawHist(t *testing.T, cons *torconsensus.Consensus, seed int64, n int, w WeightFn) []float64 {
	t.Helper()
	guards := cons.Guards()
	idx := make(map[string]int, len(guards))
	for i, g := range guards {
		idx[g.Identity] = i
	}
	s := NewSelector(cons, seed)
	obs := make([]float64, len(guards))
	for i := 0; i < n; i++ {
		gs, err := s.PickGuardsFn(1, testNow, w)
		if err != nil {
			t.Fatal(err)
		}
		obs[idx[gs.Guards[0].Identity]]++
	}
	return obs
}

// expectedHist converts weights into expected counts for n draws.
func expectedHist(guards []*torconsensus.Relay, w WeightFn, n int) []float64 {
	exp := make([]float64, len(guards))
	var total float64
	for _, g := range guards {
		total += w(g)
	}
	for i, g := range guards {
		exp[i] = float64(n) * w(g) / total
	}
	return exp
}

// TestResilienceWeightedDrawsMatchW checks the sampler end to end: the
// empirical single-guard pick distribution under W(i) = a·R + (1−a)·B
// must pass a chi-square test against W(i) itself — and, as a negative
// control, must *fail* it against the distribution for the wrong a
// (pure bandwidth), proving the test has the power to see the
// resilience term.
func TestResilienceWeightedDrawsMatchW(t *testing.T) {
	cons := genConsensus(t)
	guards := cons.Guards()
	const a, draws = 0.8, 12000
	w, err := ResilienceWeight(guards, a, synthResilience(guards))
	if err != nil {
		t.Fatal(err)
	}
	obs := drawHist(t, cons, 11, draws, w)

	check := func(exp []float64) float64 {
		t.Helper()
		o, e, err := stats.MergeSmallBins(obs, exp, 5)
		if err != nil {
			t.Fatal(err)
		}
		_, _, p, err := stats.ChiSquare(o, e)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if p := check(expectedHist(guards, w, draws)); p < 0.01 {
		t.Fatalf("draws reject their own W(i): p = %g", p)
	}
	wrong, err := ResilienceWeight(guards, 0, synthResilience(guards))
	if err != nil {
		t.Fatal(err)
	}
	if p := check(expectedHist(guards, wrong, draws)); p > 1e-6 {
		t.Fatalf("negative control: bandwidth-only expectation not rejected (p = %g)", p)
	}
}

// TestPickGuardsFnExclusion checks that the weighted picker preserves
// Tor's exclusion rules and fails cleanly when no positive-weight relay
// remains.
func TestPickGuardsFnExclusion(t *testing.T) {
	cons := genConsensus(t)
	s := NewSelector(cons, 4)
	w, err := ResilienceWeight(cons.Guards(), 0.5, synthResilience(cons.Guards()))
	if err != nil {
		t.Fatal(err)
	}
	gs, err := s.PickGuardsFn(3, testNow, w)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i, g := range gs.Guards {
		if seen[g.Identity] {
			t.Fatal("duplicate guard")
		}
		seen[g.Identity] = true
		for j := i + 1; j < len(gs.Guards); j++ {
			if sameSlash16(g.Addr, gs.Guards[j].Addr) {
				t.Fatalf("guards %v and %v share a /16", g.Addr, gs.Guards[j].Addr)
			}
		}
	}
	if _, err := s.PickGuardsFn(0, testNow, w); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := s.PickGuardsFn(1, testNow, func(*torconsensus.Relay) float64 { return 0 }); err == nil {
		t.Fatal("all-zero weights produced a guard")
	}
}
