package packet

import "testing"

func FuzzParseTCPPacket(f *testing.F) {
	tcp := &TCPHeader{SrcPort: 443, DstPort: 50000, Seq: 7, Ack: 9, Flags: FlagACK}
	raw, err := TCPPacket(srcIP, dstIP, tcp, []byte("payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Strict and loose parsers must never panic; strict acceptance
		// implies loose acceptance.
		_, _, _, strictErr := ParseTCPPacket(data)
		_, _, looseErr := ParseTCPPacketLoose(data)
		if strictErr == nil && looseErr != nil {
			t.Fatalf("strict accepted but loose rejected: %v", looseErr)
		}
	})
}
