// Package packet encodes and decodes IPv4 and TCP headers with real
// Internet checksums.
//
// The asymmetric traffic-analysis experiment (paper §3.3/§4) works by
// inspecting TCP headers on the wire — sequence and acknowledgment
// numbers — to count bytes sent and bytes acknowledged at each end of a
// Tor circuit. The traffic simulator (internal/tcpsim) serialises every
// simulated segment through this package and the analysis parses the raw
// bytes back, exactly as the paper's tcpdump-based pipeline did.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// TCP flag bits.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Errors returned by the parsers.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: not IPv4")
	ErrBadChecksum = errors.New("packet: checksum mismatch")
	ErrBadLength   = errors.New("packet: inconsistent length fields")
)

// IPv4Header is a (option-less) IPv4 header.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16 // filled by Marshal when zero
	ID       uint16
	DontFrag bool
	TTL      uint8
	Protocol uint8
	Src      netip.Addr
	Dst      netip.Addr
}

// ProtoTCP is the IPv4 protocol number for TCP.
const ProtoTCP = 6

// ipv4HeaderLen is the length of an option-less IPv4 header.
const ipv4HeaderLen = 20

// tcpHeaderLen is the length of an option-less TCP header.
const tcpHeaderLen = 20

// checksum computes the Internet checksum (RFC 1071) over data.
func checksum(sum uint32, data []byte) uint32 {
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	return sum
}

func foldChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// Marshal encodes the header followed by payload into a full IPv4 packet,
// computing TotalLen (when zero) and the header checksum.
func (h *IPv4Header) Marshal(payload []byte) ([]byte, error) {
	if !h.Src.Is4() || !h.Dst.Is4() {
		return nil, fmt.Errorf("packet: IPv4 header needs IPv4 addresses, got %v -> %v", h.Src, h.Dst)
	}
	totalLen := h.TotalLen
	if totalLen == 0 {
		if ipv4HeaderLen+len(payload) > 0xFFFF {
			return nil, fmt.Errorf("packet: payload %d bytes too large", len(payload))
		}
		totalLen = uint16(ipv4HeaderLen + len(payload))
	}
	buf := make([]byte, ipv4HeaderLen+len(payload))
	buf[0] = 4<<4 | ipv4HeaderLen/4
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:], totalLen)
	binary.BigEndian.PutUint16(buf[4:], h.ID)
	if h.DontFrag {
		buf[6] = 0x40
	}
	buf[8] = h.TTL
	buf[9] = h.Protocol
	src := h.Src.As4()
	dst := h.Dst.As4()
	copy(buf[12:16], src[:])
	copy(buf[16:20], dst[:])
	binary.BigEndian.PutUint16(buf[10:], foldChecksum(checksum(0, buf[:ipv4HeaderLen])))
	copy(buf[ipv4HeaderLen:], payload)
	return buf, nil
}

// ParseIPv4 decodes an IPv4 packet, verifying the header checksum, and
// returns the header together with the payload slice (aliasing data).
func ParseIPv4(data []byte) (*IPv4Header, []byte, error) {
	if len(data) < ipv4HeaderLen {
		return nil, nil, fmt.Errorf("%w: %d bytes of IPv4 header", ErrTruncated, len(data))
	}
	if data[0]>>4 != 4 {
		return nil, nil, fmt.Errorf("%w: version %d", ErrBadVersion, data[0]>>4)
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl < ipv4HeaderLen || len(data) < ihl {
		return nil, nil, fmt.Errorf("%w: IHL %d", ErrBadLength, ihl)
	}
	totalLen := int(binary.BigEndian.Uint16(data[2:]))
	if totalLen < ihl || totalLen > len(data) {
		return nil, nil, fmt.Errorf("%w: total length %d of %d", ErrBadLength, totalLen, len(data))
	}
	if foldChecksum(checksum(0, data[:ihl])) != 0 {
		return nil, nil, fmt.Errorf("%w: IPv4 header", ErrBadChecksum)
	}
	h := &IPv4Header{
		TOS:      data[1],
		TotalLen: uint16(totalLen),
		ID:       binary.BigEndian.Uint16(data[4:]),
		DontFrag: data[6]&0x40 != 0,
		TTL:      data[8],
		Protocol: data[9],
		Src:      netip.AddrFrom4([4]byte(data[12:16])),
		Dst:      netip.AddrFrom4([4]byte(data[16:20])),
	}
	return h, data[ihl:totalLen], nil
}

// TCPHeader is a (option-less) TCP header.
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Urgent  uint16
}

// HasFlag reports whether flag f is set.
func (h *TCPHeader) HasFlag(f uint8) bool { return h.Flags&f != 0 }

// pseudoHeaderSum folds the TCP pseudo-header into a checksum accumulator.
func pseudoHeaderSum(src, dst netip.Addr, tcpLen int) uint32 {
	s := src.As4()
	d := dst.As4()
	var sum uint32
	sum = checksum(sum, s[:])
	sum = checksum(sum, d[:])
	sum += uint32(ProtoTCP)
	sum += uint32(tcpLen)
	return sum
}

// Marshal encodes the TCP header and payload into a segment, computing the
// checksum over the pseudo-header for src/dst.
func (h *TCPHeader) Marshal(src, dst netip.Addr, payload []byte) ([]byte, error) {
	if !src.Is4() || !dst.Is4() {
		return nil, fmt.Errorf("packet: TCP pseudo-header needs IPv4 addresses")
	}
	seg := make([]byte, tcpHeaderLen+len(payload))
	binary.BigEndian.PutUint16(seg[0:], h.SrcPort)
	binary.BigEndian.PutUint16(seg[2:], h.DstPort)
	binary.BigEndian.PutUint32(seg[4:], h.Seq)
	binary.BigEndian.PutUint32(seg[8:], h.Ack)
	seg[12] = tcpHeaderLen / 4 << 4
	seg[13] = h.Flags
	binary.BigEndian.PutUint16(seg[14:], h.Window)
	binary.BigEndian.PutUint16(seg[18:], h.Urgent)
	copy(seg[tcpHeaderLen:], payload)
	sum := pseudoHeaderSum(src, dst, len(seg))
	binary.BigEndian.PutUint16(seg[16:], foldChecksum(checksum(sum, seg)))
	return seg, nil
}

// ParseTCP decodes a TCP segment, verifying the checksum against the
// pseudo-header for src/dst, and returns the header and payload slice.
func ParseTCP(src, dst netip.Addr, seg []byte) (*TCPHeader, []byte, error) {
	if len(seg) < tcpHeaderLen {
		return nil, nil, fmt.Errorf("%w: %d bytes of TCP header", ErrTruncated, len(seg))
	}
	off := int(seg[12]>>4) * 4
	if off < tcpHeaderLen || off > len(seg) {
		return nil, nil, fmt.Errorf("%w: data offset %d", ErrBadLength, off)
	}
	sum := pseudoHeaderSum(src, dst, len(seg))
	if foldChecksum(checksum(sum, seg)) != 0 {
		return nil, nil, fmt.Errorf("%w: TCP segment", ErrBadChecksum)
	}
	h := &TCPHeader{
		SrcPort: binary.BigEndian.Uint16(seg[0:]),
		DstPort: binary.BigEndian.Uint16(seg[2:]),
		Seq:     binary.BigEndian.Uint32(seg[4:]),
		Ack:     binary.BigEndian.Uint32(seg[8:]),
		Flags:   seg[13],
		Window:  binary.BigEndian.Uint16(seg[14:]),
		Urgent:  binary.BigEndian.Uint16(seg[18:]),
	}
	return h, seg[off:], nil
}

// TCPPacket builds a complete IPv4+TCP packet.
func TCPPacket(src, dst netip.Addr, tcp *TCPHeader, payload []byte) ([]byte, error) {
	seg, err := tcp.Marshal(src, dst, payload)
	if err != nil {
		return nil, err
	}
	ip := &IPv4Header{TTL: 64, Protocol: ProtoTCP, DontFrag: true, Src: src, Dst: dst}
	return ip.Marshal(seg)
}

// ParseTCPPacketLoose decodes the IPv4 and TCP headers of a possibly
// snaplen-truncated capture, the way tcpdump does when only headers were
// captured: length fields may exceed the captured bytes and checksums are
// not verified (they cannot be, without the full payload). The IPv4
// TotalLen field still reports the original wire length, which is how the
// byte-counting analyses recover transfer volume from header-only
// captures.
func ParseTCPPacketLoose(data []byte) (*IPv4Header, *TCPHeader, error) {
	if len(data) < ipv4HeaderLen {
		return nil, nil, fmt.Errorf("%w: %d bytes of IPv4 header", ErrTruncated, len(data))
	}
	if data[0]>>4 != 4 {
		return nil, nil, fmt.Errorf("%w: version %d", ErrBadVersion, data[0]>>4)
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl < ipv4HeaderLen || len(data) < ihl {
		return nil, nil, fmt.Errorf("%w: IHL %d", ErrBadLength, ihl)
	}
	ip := &IPv4Header{
		TOS:      data[1],
		TotalLen: binary.BigEndian.Uint16(data[2:]),
		ID:       binary.BigEndian.Uint16(data[4:]),
		DontFrag: data[6]&0x40 != 0,
		TTL:      data[8],
		Protocol: data[9],
		Src:      netip.AddrFrom4([4]byte(data[12:16])),
		Dst:      netip.AddrFrom4([4]byte(data[16:20])),
	}
	if ip.Protocol != ProtoTCP {
		return nil, nil, fmt.Errorf("packet: protocol %d is not TCP", ip.Protocol)
	}
	seg := data[ihl:]
	if len(seg) < tcpHeaderLen {
		return nil, nil, fmt.Errorf("%w: %d bytes of TCP header", ErrTruncated, len(seg))
	}
	tcp := &TCPHeader{
		SrcPort: binary.BigEndian.Uint16(seg[0:]),
		DstPort: binary.BigEndian.Uint16(seg[2:]),
		Seq:     binary.BigEndian.Uint32(seg[4:]),
		Ack:     binary.BigEndian.Uint32(seg[8:]),
		Flags:   seg[13],
		Window:  binary.BigEndian.Uint16(seg[14:]),
		Urgent:  binary.BigEndian.Uint16(seg[18:]),
	}
	return ip, tcp, nil
}

// TCPPayloadLen returns the TCP payload length implied by a packet's
// length fields (usable on snaplen-truncated captures).
func TCPPayloadLen(ip *IPv4Header) int {
	n := int(ip.TotalLen) - ipv4HeaderLen - tcpHeaderLen
	if n < 0 {
		return 0
	}
	return n
}

// ParseTCPPacket decodes a complete IPv4+TCP packet, verifying both
// checksums.
func ParseTCPPacket(data []byte) (*IPv4Header, *TCPHeader, []byte, error) {
	ip, payload, err := ParseIPv4(data)
	if err != nil {
		return nil, nil, nil, err
	}
	if ip.Protocol != ProtoTCP {
		return nil, nil, nil, fmt.Errorf("packet: protocol %d is not TCP", ip.Protocol)
	}
	tcp, tcpPayload, err := ParseTCP(ip.Src, ip.Dst, payload)
	if err != nil {
		return nil, nil, nil, err
	}
	return ip, tcp, tcpPayload, nil
}
