package packet

import (
	"errors"
	"testing"
)

func TestParseTCPPacketLooseFullPacket(t *testing.T) {
	tcp := &TCPHeader{SrcPort: 443, DstPort: 50000, Seq: 77, Ack: 88, Flags: FlagACK}
	raw, err := TCPPacket(srcIP, dstIP, tcp, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	ip, got, err := ParseTCPPacketLoose(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Src != srcIP || ip.Dst != dstIP {
		t.Fatalf("addresses %v -> %v", ip.Src, ip.Dst)
	}
	if got.Seq != 77 || got.Ack != 88 {
		t.Fatalf("tcp = %+v", got)
	}
	if TCPPayloadLen(ip) != 5 {
		t.Fatalf("payload len = %d", TCPPayloadLen(ip))
	}
}

func TestParseTCPPacketLooseTruncated(t *testing.T) {
	tcp := &TCPHeader{SrcPort: 80, DstPort: 40000, Seq: 1000, Flags: FlagACK}
	raw, err := TCPPacket(srcIP, dstIP, tcp, make([]byte, 1400))
	if err != nil {
		t.Fatal(err)
	}
	snap := raw[:64] // tcpdump-style snaplen truncation
	ip, got, err := ParseTCPPacketLoose(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1000 {
		t.Fatalf("seq = %d", got.Seq)
	}
	// The wire length survives in TotalLen even though the bytes are gone.
	if TCPPayloadLen(ip) != 1400 {
		t.Fatalf("payload len = %d, want 1400", TCPPayloadLen(ip))
	}
}

func TestParseTCPPacketLooseErrors(t *testing.T) {
	if _, _, err := ParseTCPPacketLoose(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short ip: %v", err)
	}
	tcp := &TCPHeader{Flags: FlagACK}
	raw, _ := TCPPacket(srcIP, dstIP, tcp, nil)
	bad := append([]byte(nil), raw...)
	bad[0] = 6 << 4
	if _, _, err := ParseTCPPacketLoose(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}
	bad = append([]byte(nil), raw...)
	bad[0] = 4<<4 | 3 // IHL 12 < 20
	if _, _, err := ParseTCPPacketLoose(bad); !errors.Is(err, ErrBadLength) {
		t.Fatalf("ihl: %v", err)
	}
	bad = append([]byte(nil), raw...)
	bad[9] = 17 // UDP
	if _, _, err := ParseTCPPacketLoose(bad); err == nil {
		t.Fatal("UDP accepted")
	}
	// IPv4 header present but TCP header cut off entirely.
	if _, _, err := ParseTCPPacketLoose(raw[:25]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short tcp: %v", err)
	}
}

func TestTCPPayloadLenClampsNegative(t *testing.T) {
	ip := &IPv4Header{TotalLen: 10}
	if got := TCPPayloadLen(ip); got != 0 {
		t.Fatalf("payload len = %d, want 0", got)
	}
}
