package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcIP = netip.MustParseAddr("192.0.2.10")
	dstIP = netip.MustParseAddr("203.0.113.20")
)

func TestIPv4RoundTrip(t *testing.T) {
	h := &IPv4Header{TOS: 0x10, ID: 42, DontFrag: true, TTL: 61, Protocol: ProtoTCP, Src: srcIP, Dst: dstIP}
	payload := []byte("hello world")
	raw, err := h.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := ParseIPv4(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.TOS != h.TOS || got.ID != h.ID || !got.DontFrag || got.TTL != 61 ||
		got.Protocol != ProtoTCP || got.Src != srcIP || got.Dst != dstIP {
		t.Fatalf("header: %+v", got)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatalf("payload %q", gotPayload)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := &IPv4Header{TTL: 64, Protocol: ProtoTCP, Src: srcIP, Dst: dstIP}
	raw, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	raw[12] ^= 0xFF // corrupt source address
	if _, _, err := ParseIPv4(raw); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestIPv4Errors(t *testing.T) {
	if _, _, err := ParseIPv4(make([]byte, 5)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short: %v", err)
	}
	h := &IPv4Header{TTL: 64, Protocol: ProtoTCP, Src: srcIP, Dst: dstIP}
	raw, _ := h.Marshal(nil)
	bad := append([]byte(nil), raw...)
	bad[0] = 6 << 4
	if _, _, err := ParseIPv4(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}
	bad = append([]byte(nil), raw...)
	bad[2], bad[3] = 0, 10 // total length < header
	if _, _, err := ParseIPv4(bad); !errors.Is(err, ErrBadLength) {
		t.Fatalf("length: %v", err)
	}
	v6 := netip.MustParseAddr("2001:db8::1")
	if _, err := (&IPv4Header{Src: v6, Dst: dstIP}).Marshal(nil); err == nil {
		t.Fatal("IPv6 source accepted")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := &TCPHeader{
		SrcPort: 443, DstPort: 50000,
		Seq: 0xDEADBEEF, Ack: 0x01020304,
		Flags: FlagACK | FlagPSH, Window: 65535,
	}
	payload := bytes.Repeat([]byte{0xAB}, 1400)
	seg, err := h.Marshal(srcIP, dstIP, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := ParseTCP(srcIP, dstIP, seg)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 443 || got.DstPort != 50000 || got.Seq != 0xDEADBEEF ||
		got.Ack != 0x01020304 || got.Flags != FlagACK|FlagPSH || got.Window != 65535 {
		t.Fatalf("header: %+v", got)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatal("payload mismatch")
	}
	if !got.HasFlag(FlagACK) || got.HasFlag(FlagSYN) {
		t.Fatal("flag accessors wrong")
	}
}

func TestTCPChecksumCoversPseudoHeader(t *testing.T) {
	h := &TCPHeader{SrcPort: 1, DstPort: 2, Flags: FlagACK}
	seg, err := h.Marshal(srcIP, dstIP, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	// Valid against the original addresses...
	if _, _, err := ParseTCP(srcIP, dstIP, seg); err != nil {
		t.Fatal(err)
	}
	// ...but not when the pseudo-header changes (spoofed/NATed address).
	other := netip.MustParseAddr("198.51.100.99")
	if _, _, err := ParseTCP(other, dstIP, seg); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestTCPChecksumDetectsPayloadCorruption(t *testing.T) {
	h := &TCPHeader{SrcPort: 1, DstPort: 2, Flags: FlagACK}
	seg, _ := h.Marshal(srcIP, dstIP, []byte("data!"))
	seg[len(seg)-1] ^= 1
	if _, _, err := ParseTCP(srcIP, dstIP, seg); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPErrors(t *testing.T) {
	if _, _, err := ParseTCP(srcIP, dstIP, make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short: %v", err)
	}
	h := &TCPHeader{}
	seg, _ := h.Marshal(srcIP, dstIP, nil)
	seg[12] = 3 << 4 // data offset 12 < 20
	if _, _, err := ParseTCP(srcIP, dstIP, seg); !errors.Is(err, ErrBadLength) {
		t.Fatalf("offset: %v", err)
	}
}

func TestTCPPacketRoundTrip(t *testing.T) {
	tcp := &TCPHeader{SrcPort: 80, DstPort: 40000, Seq: 1000, Ack: 2000, Flags: FlagACK}
	payload := []byte("GET / HTTP/1.1\r\n")
	raw, err := TCPPacket(srcIP, dstIP, tcp, payload)
	if err != nil {
		t.Fatal(err)
	}
	ip, gotTCP, gotPayload, err := ParseTCPPacket(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Src != srcIP || ip.Dst != dstIP || ip.Protocol != ProtoTCP {
		t.Fatalf("ip: %+v", ip)
	}
	if gotTCP.Seq != 1000 || gotTCP.Ack != 2000 {
		t.Fatalf("tcp: %+v", gotTCP)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestParseTCPPacketRejectsNonTCP(t *testing.T) {
	ip := &IPv4Header{TTL: 64, Protocol: 17, Src: srcIP, Dst: dstIP} // UDP
	raw, err := ip.Marshal([]byte{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ParseTCPPacket(raw); err == nil {
		t.Fatal("UDP packet accepted as TCP")
	}
}

// Property: Marshal/Parse round-trips arbitrary header fields and
// payloads, and the checksums always verify.
func TestTCPPacketRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(srcPort, dstPort uint16, seq, ack uint32, flags uint8, n uint16) bool {
		payload := make([]byte, int(n)%1400)
		rng.Read(payload)
		tcp := &TCPHeader{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack,
			Flags: flags & 0x3F, Window: 8192}
		raw, err := TCPPacket(srcIP, dstIP, tcp, payload)
		if err != nil {
			return false
		}
		_, got, gotPayload, err := ParseTCPPacket(raw)
		if err != nil {
			return false
		}
		return got.SrcPort == srcPort && got.DstPort == dstPort &&
			got.Seq == seq && got.Ack == ack && got.Flags == flags&0x3F &&
			bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: single-bit corruption anywhere in the packet is detected by
// one of the two checksums.
func TestBitFlipDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	tcp := &TCPHeader{SrcPort: 443, DstPort: 50000, Seq: 7, Ack: 9, Flags: FlagACK}
	raw, err := TCPPacket(srcIP, dstIP, tcp, []byte("payload bytes here"))
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		mut := append([]byte(nil), raw...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, _, _, err := ParseTCPPacket(mut); err != nil {
			detected++
		}
	}
	// Internet checksums have known undetectable classes under multi-bit
	// flips, but every single-bit flip changes the sum.
	if detected != trials {
		t.Fatalf("only %d/%d single-bit flips detected", detected, trials)
	}
}

func BenchmarkTCPPacketMarshal(b *testing.B) {
	tcp := &TCPHeader{SrcPort: 443, DstPort: 50000, Seq: 7, Ack: 9, Flags: FlagACK}
	payload := bytes.Repeat([]byte{1}, 1400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TCPPacket(srcIP, dstIP, tcp, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPPacketParse(b *testing.B) {
	tcp := &TCPHeader{SrcPort: 443, DstPort: 50000, Seq: 7, Ack: 9, Flags: FlagACK}
	raw, _ := TCPPacket(srcIP, dstIP, tcp, bytes.Repeat([]byte{1}, 1400))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ParseTCPPacket(raw); err != nil {
			b.Fatal(err)
		}
	}
}
