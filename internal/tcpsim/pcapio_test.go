package tcpsim

import (
	"bytes"
	"testing"

	"quicksand/internal/pcap"
)

func TestPcapRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.FileSize = 256 << 10
	tr := mustRun(t, cfg)

	var buf bytes.Buffer
	if err := WritePcap(&buf, tr.ServerToExit, cfg.SnapLen); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr.ServerToExit) {
		t.Fatalf("records = %d, want %d", len(got), len(tr.ServerToExit))
	}
	for i := range got {
		if !bytes.Equal(got[i].Data, tr.ServerToExit[i].Data) {
			t.Fatalf("record %d data mismatch", i)
		}
		// pcap keeps microsecond resolution; our timestamps are at
		// nanosecond granularity, so compare at µs.
		a := got[i].Time.UnixMicro()
		b := tr.ServerToExit[i].Time.UnixMicro()
		if a != b {
			t.Fatalf("record %d time %d != %d", i, a, b)
		}
	}
	// Byte counting from the pcap-loaded records matches the original:
	// the analyses can run from files on disk.
	orig := sumDataBytes(t, tr.ServerToExit)
	loaded := sumDataBytes(t, got)
	if orig != loaded {
		t.Fatalf("byte counts differ: %d vs %d", orig, loaded)
	}
}

func TestReadPcapWrongLinkType(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, pcap.LinkTypeEthernet, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(DefaultConfig().Start, []byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPcap(&buf); err == nil {
		t.Fatal("ethernet pcap accepted as raw IP")
	}
}
