package tcpsim

import (
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/packet"
)

// smallConfig is a fast 2 MB transfer for unit tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.FileSize = 2 << 20
	return cfg
}

func mustRun(t testing.TB, cfg Config) *Traces {
	t.Helper()
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// sumDataBytes adds up TCP payload lengths from header-only captures.
func sumDataBytes(t *testing.T, recs []Record) int {
	t.Helper()
	total := 0
	for _, r := range recs {
		ip, _, err := packet.ParseTCPPacketLoose(r.Data)
		if err != nil {
			t.Fatal(err)
		}
		total += packet.TCPPayloadLen(ip)
	}
	return total
}

// maxAck returns the highest cumulative acknowledgment in a capture.
func maxAck(t *testing.T, recs []Record) uint32 {
	t.Helper()
	var m uint32
	for _, r := range recs {
		_, tcp, err := packet.ParseTCPPacketLoose(r.Data)
		if err != nil {
			t.Fatal(err)
		}
		if tcp.Ack > m {
			m = tcp.Ack
		}
	}
	return m
}

func TestValidation(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.FileSize = 0 },
		func(c *Config) { c.MSS = 50 },
		func(c *Config) { c.BottleneckBps = 0 },
		func(c *Config) { c.RTTServerExit = 0 },
		func(c *Config) { c.LossProb = 1 },
		func(c *Config) { c.SnapLen = 20 },
		func(c *Config) { c.Client = netip.Addr{} },
	} {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestTransferCompletes(t *testing.T) {
	cfg := smallConfig()
	tr := mustRun(t, cfg)
	// All file bytes appear as unique data on the server->exit segment
	// (retransmissions may add more).
	data := sumDataBytes(t, tr.ServerToExit)
	if data < cfg.FileSize {
		t.Fatalf("server sent %d bytes, file is %d", data, cfg.FileSize)
	}
	// The exit acknowledged the whole file.
	if got := maxAck(t, tr.ExitToServer); got != uint32(cfg.FileSize) {
		t.Fatalf("final server-side ack = %d, want %d", got, cfg.FileSize)
	}
	if tr.Finished.Before(cfg.Start) {
		t.Fatal("Finished before Start")
	}
}

func TestCellOverheadOnClientSide(t *testing.T) {
	cfg := smallConfig()
	tr := mustRun(t, cfg)
	clientBytes := sumDataBytes(t, tr.GuardToClient)
	// The cell stream should exceed the raw file size by the cell
	// framing overhead (~2.8%) but not by much more.
	lo := cfg.FileSize
	hi := cfg.FileSize * 108 / 100
	if clientBytes < lo || clientBytes > hi {
		t.Fatalf("guard->client bytes = %d, want within [%d, %d]", clientBytes, lo, hi)
	}
	// And the client acked the full cell stream.
	if got := int(maxAck(t, tr.ClientToGuard)); got < lo || got > hi {
		t.Fatalf("client ack = %d, want within [%d, %d]", got, lo, hi)
	}
}

func TestTimestampsOrderedAndPlausible(t *testing.T) {
	cfg := smallConfig()
	tr := mustRun(t, cfg)
	for name, recs := range map[string][]Record{
		"server_to_exit": tr.ServerToExit, "exit_to_server": tr.ExitToServer,
		"guard_to_client": tr.GuardToClient, "client_to_guard": tr.ClientToGuard,
	} {
		if len(recs) == 0 {
			t.Fatalf("%s: empty capture", name)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Time.Before(recs[i-1].Time.Add(-cfg.Jitter * 4)) {
				t.Fatalf("%s: timestamps regress at %d", name, i)
			}
		}
	}
	// Duration should be near FileSize/Bottleneck.
	expected := time.Duration(float64(cfg.FileSize) / float64(cfg.BottleneckBps) * float64(time.Second))
	got := tr.Finished.Sub(cfg.Start)
	if got < expected/2 || got > expected*3 {
		t.Fatalf("transfer took %v, expected around %v", got, expected)
	}
}

func TestSnapLenApplied(t *testing.T) {
	cfg := smallConfig()
	tr := mustRun(t, cfg)
	for _, r := range tr.ServerToExit {
		if len(r.Data) > cfg.SnapLen {
			t.Fatalf("capture %d bytes exceeds snaplen %d", len(r.Data), cfg.SnapLen)
		}
	}
	// Headers must still parse and carry the wire length.
	ip, tcp, err := packet.ParseTCPPacketLoose(tr.ServerToExit[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Src != cfg.Server || ip.Dst != cfg.Exit {
		t.Fatalf("addresses %v -> %v", ip.Src, ip.Dst)
	}
	if tcp.SrcPort != 80 {
		t.Fatalf("src port %d", tcp.SrcPort)
	}
	if packet.TCPPayloadLen(ip) != cfg.MSS {
		t.Fatalf("first segment payload %d, want MSS %d", packet.TCPPayloadLen(ip), cfg.MSS)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if len(a.ServerToExit) != len(b.ServerToExit) || len(a.ClientToGuard) != len(b.ClientToGuard) {
		t.Fatal("nondeterministic capture sizes")
	}
	for i := range a.ServerToExit {
		if !a.ServerToExit[i].Time.Equal(b.ServerToExit[i].Time) {
			t.Fatalf("timestamp %d differs", i)
		}
	}
}

func TestLossCausesRetransmissions(t *testing.T) {
	cfg := smallConfig()
	cfg.LossProb = 0.02
	tr := mustRun(t, cfg)
	// With 2% loss, total data on the wire must exceed the file size.
	data := sumDataBytes(t, tr.ServerToExit)
	if data <= cfg.FileSize {
		t.Fatalf("no retransmissions despite loss: %d <= %d", data, cfg.FileSize)
	}
	// Transfer still completes.
	if got := maxAck(t, tr.ExitToServer); got != uint32(cfg.FileSize) {
		t.Fatalf("final ack %d != %d", got, cfg.FileSize)
	}
	// Sequence numbers repeat for retransmitted segments.
	seen := make(map[uint32]int)
	dups := 0
	for _, r := range tr.ServerToExit {
		_, tcp, err := packet.ParseTCPPacketLoose(r.Data)
		if err != nil {
			t.Fatal(err)
		}
		seen[tcp.Seq]++
		if seen[tcp.Seq] == 2 {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("no duplicate sequence numbers found")
	}
}

func TestZeroLossNoRetransmissions(t *testing.T) {
	cfg := smallConfig()
	cfg.LossProb = 0
	// Jitter can reorder paced segments (they are ~1 ms apart), which
	// triggers legitimate reordering-induced fast retransmits; disable it
	// to assert the exact byte count.
	cfg.Jitter = 0
	tr := mustRun(t, cfg)
	if data := sumDataBytes(t, tr.ServerToExit); data != cfg.FileSize {
		t.Fatalf("lossless transfer sent %d bytes, want exactly %d", data, cfg.FileSize)
	}
}

func TestAcksAreCumulative(t *testing.T) {
	tr := mustRun(t, smallConfig())
	var prev uint32
	for i, r := range tr.ExitToServer {
		_, tcp, err := packet.ParseTCPPacketLoose(r.Data)
		if err != nil {
			t.Fatal(err)
		}
		if tcp.Ack < prev {
			t.Fatalf("ack regressed at %d: %d < %d", i, tcp.Ack, prev)
		}
		prev = tcp.Ack
	}
	prev = 0
	for i, r := range tr.ClientToGuard {
		_, tcp, err := packet.ParseTCPPacketLoose(r.Data)
		if err != nil {
			t.Fatal(err)
		}
		if tcp.Ack < prev {
			t.Fatalf("client ack regressed at %d", i)
		}
		prev = tcp.Ack
	}
}

func TestClientLagsServer(t *testing.T) {
	// The guard->client stream must lag the server->exit stream by
	// roughly the circuit delay.
	cfg := smallConfig()
	tr := mustRun(t, cfg)
	firstData := tr.ServerToExit[0].Time
	firstClient := tr.GuardToClient[0].Time
	lag := firstClient.Sub(firstData)
	min := cfg.CircuitDelay / 2
	max := cfg.CircuitDelay * 3
	if lag < min || lag > max {
		t.Fatalf("client lag %v, want within [%v, %v]", lag, min, max)
	}
}

func BenchmarkRun2MB(b *testing.B) {
	cfg := smallConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
