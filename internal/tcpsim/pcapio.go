package tcpsim

import (
	"fmt"
	"io"

	"quicksand/internal/packet"
	"quicksand/internal/pcap"
)

// WritePcap saves one capture as a classic pcap file (LINKTYPE_RAW, the
// records' snap length preserved), readable by tcpdump and wireshark. The
// original wire length is recovered from each packet's IPv4 TotalLen so
// the file's per-record OrigLen is faithful even for truncated captures.
func WritePcap(w io.Writer, recs []Record, snapLen int) error {
	if snapLen <= 0 {
		snapLen = 64
	}
	pw, err := pcap.NewWriter(w, pcap.LinkTypeRaw, snapLen)
	if err != nil {
		return err
	}
	for i, r := range recs {
		origLen := len(r.Data)
		if ip, _, err := packet.ParseTCPPacketLoose(r.Data); err == nil {
			origLen = int(ip.TotalLen)
		}
		if err := pw.WritePacket(r.Time, r.Data, origLen); err != nil {
			return fmt.Errorf("tcpsim: pcap record %d: %w", i, err)
		}
	}
	return nil
}

// ReadPcap loads a capture previously written by WritePcap (or any raw-IP
// pcap) back into Records, ready for the correlation analyses.
func ReadPcap(r io.Reader) ([]Record, error) {
	pkts, linkType, err := pcap.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if linkType != pcap.LinkTypeRaw {
		return nil, fmt.Errorf("tcpsim: pcap link type %d, want %d (raw IP)", linkType, pcap.LinkTypeRaw)
	}
	out := make([]Record, len(pkts))
	for i, p := range pkts {
		out[i] = Record{Time: p.Time, Data: p.Data}
	}
	return out, nil
}
