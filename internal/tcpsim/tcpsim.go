// Package tcpsim simulates a TCP file download through a three-hop Tor
// circuit and produces packet captures at the four vantage points of the
// paper's wide-area experiment (§4, Figure 2 right):
//
//   - server → exit: data segments leaving the web server
//   - exit → server: cumulative TCP acknowledgments arriving back
//   - guard → client: the onion-encrypted cell stream reaching the client
//   - client → guard: the client's TCP acknowledgments
//
// The server-side connection runs a compact but real TCP model — slow
// start, congestion avoidance, pacing to a bottleneck rate, delayed
// cumulative ACKs, fast retransmit on triple duplicate ACKs, and RTO
// fallback — while the client-side connection replays the delivered byte
// stream re-chunked into 512-byte Tor cells. Every simulated packet is
// serialised through internal/packet with correct sequence/ack numbers and
// captured with a tcpdump-style snaplen, so downstream analysis must
// recover byte counts from TCP headers alone, exactly like the paper.
package tcpsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"quicksand/internal/packet"
)

// Record is one captured packet: a snaplen-truncated raw IPv4 packet plus
// its capture timestamp. The original wire length is recoverable from the
// IPv4 TotalLen field.
type Record struct {
	Time time.Time
	Data []byte
}

// Traces holds the four packet captures of one simulated download.
type Traces struct {
	ServerToExit  []Record
	ExitToServer  []Record
	GuardToClient []Record
	ClientToGuard []Record
	// Finished is when the last byte reached the client.
	Finished time.Time
}

// Config parameterises a simulated download.
type Config struct {
	Seed     int64
	Start    time.Time
	FileSize int // bytes to transfer from server to client
	MSS      int // TCP payload bytes per segment (default 1448)

	// BottleneckBps is the path bottleneck in bytes/second; the paper's
	// transfer moved ~40 MB in ~30 s (≈1.4 MB/s).
	BottleneckBps int

	RTTServerExit  time.Duration // server <-> exit RTT
	RTTClientGuard time.Duration // client <-> guard RTT
	// CircuitDelay is the one-way latency from exit to client through
	// the circuit (three relay hops).
	CircuitDelay time.Duration

	LossProb float64       // per-data-segment loss probability, server->exit
	Jitter   time.Duration // +/- jitter bound applied to deliveries

	// RateVariation models application and cross-traffic burstiness: the
	// effective sending rate is modulated by a per-period random factor
	// in [1-RateVariation, 1+RateVariation]. This burstiness is the
	// timing signal that makes flow correlation possible — a perfectly
	// constant-rate transfer would be uncorrelatable (and unobservable
	// in Figure 2's sense). Zero disables modulation.
	RateVariation float64
	// RatePeriod is how long each rate factor persists (default 300ms).
	RatePeriod time.Duration

	SnapLen int // capture snap length (default 64)

	Client netip.Addr
	Guard  netip.Addr
	Exit   netip.Addr
	Server netip.Addr
}

// DefaultConfig reproduces the paper's experiment shape: a 40 MB download
// finishing in roughly 30 seconds.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Start:          time.Date(2014, 7, 10, 12, 0, 0, 0, time.UTC),
		FileSize:       40 << 20,
		MSS:            1448,
		BottleneckBps:  1400 * 1000,
		RTTServerExit:  40 * time.Millisecond,
		RTTClientGuard: 30 * time.Millisecond,
		CircuitDelay:   220 * time.Millisecond,
		LossProb:       0.002,
		Jitter:         3 * time.Millisecond,
		RateVariation:  0.6,
		RatePeriod:     300 * time.Millisecond,
		SnapLen:        64,
		Client:         netip.MustParseAddr("198.51.100.10"),
		Guard:          netip.MustParseAddr("78.46.1.1"),
		Exit:           netip.MustParseAddr("93.115.1.1"),
		Server:         netip.MustParseAddr("203.0.113.80"),
	}
}

func (c *Config) validate() error {
	if c.FileSize <= 0 {
		return fmt.Errorf("tcpsim: FileSize must be positive")
	}
	if c.MSS < 100 || c.MSS > 9000 {
		return fmt.Errorf("tcpsim: MSS %d out of range", c.MSS)
	}
	if c.BottleneckBps <= 0 {
		return fmt.Errorf("tcpsim: BottleneckBps must be positive")
	}
	if c.RTTServerExit <= 0 || c.RTTClientGuard <= 0 || c.CircuitDelay <= 0 {
		return fmt.Errorf("tcpsim: latencies must be positive")
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("tcpsim: LossProb %v out of [0,1)", c.LossProb)
	}
	if c.RateVariation < 0 || c.RateVariation >= 1 {
		return fmt.Errorf("tcpsim: RateVariation %v out of [0,1)", c.RateVariation)
	}
	if c.RatePeriod == 0 {
		c.RatePeriod = 300 * time.Millisecond
	}
	if c.RatePeriod < 0 {
		return fmt.Errorf("tcpsim: negative RatePeriod")
	}
	if c.SnapLen == 0 {
		c.SnapLen = 64
	}
	if c.SnapLen < 40 {
		return fmt.Errorf("tcpsim: SnapLen %d too small for IPv4+TCP headers", c.SnapLen)
	}
	for _, a := range []netip.Addr{c.Client, c.Guard, c.Exit, c.Server} {
		if !a.Is4() {
			return fmt.Errorf("tcpsim: all endpoints must have IPv4 addresses")
		}
	}
	return nil
}

// Tor cell geometry: the client-side connection carries the payload
// re-framed into fixed 512-byte cells with 14 bytes of circuit headers,
// which is why the guard→client byte series runs a few percent above the
// server→exit series.
const (
	cellSize    = 512
	cellPayload = 498
)

// event kinds for the discrete-event loop.
const (
	evDataArriveExit = iota // data segment reaches the exit
	evAckArriveServer
	evRTO
)

type simEvent struct {
	at   time.Time
	kind int
	seq  int // starting byte offset
	n    int // payload length
	ack  int // cumulative ack (bytes)
	id   int // RTO epoch for stale-timer detection
}

type eventHeap []simEvent

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Run simulates the download and returns the four captures.
func Run(cfg Config) (*Traces, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Traces{}

	jitter := func() time.Duration {
		if cfg.Jitter == 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(2*cfg.Jitter))) - cfg.Jitter
	}

	snap := func(raw []byte) []byte {
		if len(raw) > cfg.SnapLen {
			raw = raw[:cfg.SnapLen]
		}
		return append([]byte(nil), raw...)
	}

	const (
		serverPort = 80
		exitPort   = 40000
		guardPort  = 9001
		clientPort = 50000
	)

	capture := func(dst *[]Record, at time.Time, src, dstIP netip.Addr, tcp *packet.TCPHeader, payloadLen int) error {
		raw, err := packet.TCPPacket(src, dstIP, tcp, make([]byte, payloadLen))
		if err != nil {
			return err
		}
		*dst = append(*dst, Record{Time: at, Data: snap(raw)})
		return nil
	}

	// ---- Server-side TCP connection (server -> exit). ----
	var (
		events     eventHeap
		sndNext    = 0 // next byte to transmit
		sndUna     = 0 // oldest unacknowledged byte
		cwnd       = 10.0 * float64(cfg.MSS)
		ssthresh   = float64(cfg.FileSize)
		lastSend   = cfg.Start
		dupAcks    = 0
		rtoEpoch   = 0
		rto        = 4 * cfg.RTTServerExit
		recovered  = make(map[int]bool) // retransmitted seqs (avoid loops)
		rcvHave    = make(map[int]int)  // out-of-order intervals at exit: start->end
		rcvNext    = 0                  // next in-order byte expected at exit
		segsSinceA = 0
		delivered  = 0 // bytes handed to the circuit
	)
	heap.Init(&events)

	paceBase := time.Duration(float64(cfg.MSS) / float64(cfg.BottleneckBps) * float64(time.Second))

	// Rate modulation: each RatePeriod gets a persistent random factor,
	// drawn lazily from a dedicated RNG so the factor sequence depends
	// only on the seed, not on the packet schedule.
	rateRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	rateFactors := make([]float64, 0, 256)
	rateFactor := func(at time.Time) float64 {
		if cfg.RateVariation == 0 {
			return 1
		}
		idx := int(at.Sub(cfg.Start) / cfg.RatePeriod)
		if idx < 0 {
			idx = 0
		}
		for len(rateFactors) <= idx {
			rateFactors = append(rateFactors, 1-cfg.RateVariation+2*cfg.RateVariation*rateRng.Float64())
		}
		return rateFactors[idx]
	}

	// sendSegment transmits [seq, seq+n) at the earliest paced slot at or
	// after t, capturing it at the server and scheduling its arrival (or
	// loss) at the exit.
	sendSegment := func(t time.Time, seq, n int, retrans bool) error {
		at := t
		paceInterval := time.Duration(float64(paceBase) / rateFactor(lastSend))
		if paced := lastSend.Add(paceInterval); paced.After(at) {
			at = paced
		}
		lastSend = at
		tcp := &packet.TCPHeader{
			SrcPort: serverPort, DstPort: exitPort,
			Seq: uint32(seq), Ack: 0, Flags: packet.FlagACK, Window: 65535,
		}
		if err := capture(&tr.ServerToExit, at, cfg.Server, cfg.Exit, tcp, n); err != nil {
			return err
		}
		lost := rng.Float64() < cfg.LossProb && !retrans
		if !lost {
			heap.Push(&events, simEvent{
				at: at.Add(cfg.RTTServerExit/2 + jitter()), kind: evDataArriveExit, seq: seq, n: n,
			})
		}
		return nil
	}

	// pump transmits as much new data as the window allows.
	pump := func(t time.Time) error {
		for sndNext < cfg.FileSize && float64(sndNext-sndUna) < cwnd {
			n := cfg.MSS
			if sndNext+n > cfg.FileSize {
				n = cfg.FileSize - sndNext
			}
			if err := sendSegment(t, sndNext, n, false); err != nil {
				return err
			}
			sndNext += n
		}
		return nil
	}

	armRTO := func(t time.Time) {
		rtoEpoch++
		heap.Push(&events, simEvent{at: t.Add(rto), kind: evRTO, id: rtoEpoch})
	}

	// exitAck emits the exit's cumulative ACK and schedules its arrival
	// at the server.
	exitAck := func(t time.Time) error {
		tcp := &packet.TCPHeader{
			SrcPort: exitPort, DstPort: serverPort,
			Seq: 0, Ack: uint32(rcvNext), Flags: packet.FlagACK, Window: 65535,
		}
		at := t.Add(jitter())
		if err := capture(&tr.ExitToServer, at.Add(cfg.RTTServerExit/2), cfg.Exit, cfg.Server, tcp, 0); err != nil {
			return err
		}
		heap.Push(&events, simEvent{at: at.Add(cfg.RTTServerExit / 2), kind: evAckArriveServer, ack: rcvNext})
		return nil
	}

	// ---- Client-side connection (guard -> client, cells). ----
	var (
		cellBacklog  = 0 // payload bytes awaiting cell framing
		cellStream   = 0 // cell-stream bytes generated so far
		cgSeq        = 0 // guard->client TCP sequence
		cgSegsSinceA = 0
		cgRcvd       = 0
	)
	clientDeliver := func(t time.Time, n int) error {
		// Re-frame n payload bytes into cells, then into MSS segments on
		// the client-guard connection, arriving at the client at t.
		cellBacklog += n
		newCells := cellBacklog / cellPayload
		cellBacklog %= cellPayload
		cellStream += newCells * cellSize
		if delivered >= cfg.FileSize && cellBacklog > 0 {
			// Final partial cell is padded to a full cell, like Tor.
			cellStream += cellSize
			cellBacklog = 0
		}
		for cellStream-cgSeq >= cfg.MSS || (delivered >= cfg.FileSize && cellStream > cgSeq) {
			segLen := cfg.MSS
			if cellStream-cgSeq < segLen {
				segLen = cellStream - cgSeq
			}
			tcp := &packet.TCPHeader{
				SrcPort: guardPort, DstPort: clientPort,
				Seq: uint32(cgSeq), Flags: packet.FlagACK, Window: 65535,
			}
			at := t.Add(cfg.RTTClientGuard/2 + jitter())
			if err := capture(&tr.GuardToClient, at, cfg.Guard, cfg.Client, tcp, segLen); err != nil {
				return err
			}
			cgSeq += segLen
			cgRcvd = cgSeq
			cgSegsSinceA++
			if cgSegsSinceA >= 2 || delivered >= cfg.FileSize {
				cgSegsSinceA = 0
				ack := &packet.TCPHeader{
					SrcPort: clientPort, DstPort: guardPort,
					Ack: uint32(cgRcvd), Flags: packet.FlagACK, Window: 65535,
				}
				if err := capture(&tr.ClientToGuard, at.Add(time.Millisecond), cfg.Client, cfg.Guard, ack, 0); err != nil {
					return err
				}
			}
			if at.After(tr.Finished) {
				tr.Finished = at
			}
		}
		return nil
	}

	// Kick off: initial window, first RTO.
	if err := pump(cfg.Start); err != nil {
		return nil, err
	}
	armRTO(cfg.Start)

	for events.Len() > 0 {
		ev := heap.Pop(&events).(simEvent)
		switch ev.kind {
		case evDataArriveExit:
			if ev.seq == rcvNext {
				rcvNext = ev.seq + ev.n
				// Absorb any buffered out-of-order segments.
				for {
					end, ok := rcvHave[rcvNext]
					if !ok {
						break
					}
					delete(rcvHave, rcvNext)
					rcvNext = end
				}
			} else if ev.seq > rcvNext {
				rcvHave[ev.seq] = ev.seq + ev.n
			}
			segsSinceA++
			// Delayed ACK: every 2nd segment, any gap, or end of file.
			if segsSinceA >= 2 || ev.seq != rcvNext-ev.n || rcvNext >= cfg.FileSize {
				segsSinceA = 0
				if err := exitAck(ev.at); err != nil {
					return nil, err
				}
			}
			// In-order progress feeds the circuit.
			if rcvNext > delivered {
				n := rcvNext - delivered
				delivered = rcvNext
				if err := clientDeliver(ev.at.Add(cfg.CircuitDelay+jitter()), n); err != nil {
					return nil, err
				}
			}
		case evAckArriveServer:
			if ev.ack > sndUna {
				acked := ev.ack - sndUna
				sndUna = ev.ack
				dupAcks = 0
				if cwnd < ssthresh {
					cwnd += float64(acked) // slow start
				} else {
					cwnd += float64(cfg.MSS) * float64(acked) / cwnd
				}
				armRTO(ev.at)
				if err := pump(ev.at); err != nil {
					return nil, err
				}
			} else if ev.ack == sndUna && sndUna < sndNext {
				dupAcks++
				if dupAcks == 3 && !recovered[sndUna] {
					// Fast retransmit + multiplicative decrease.
					recovered[sndUna] = true
					ssthresh = cwnd / 2
					if ssthresh < 2*float64(cfg.MSS) {
						ssthresh = 2 * float64(cfg.MSS)
					}
					cwnd = ssthresh
					n := cfg.MSS
					if sndUna+n > cfg.FileSize {
						n = cfg.FileSize - sndUna
					}
					if err := sendSegment(ev.at, sndUna, n, true); err != nil {
						return nil, err
					}
				}
			}
		case evRTO:
			if ev.id != rtoEpoch || sndUna >= cfg.FileSize {
				continue // stale timer or done
			}
			if sndUna < sndNext {
				// Timeout: retransmit the oldest segment, collapse cwnd.
				ssthresh = cwnd / 2
				cwnd = float64(cfg.MSS)
				n := cfg.MSS
				if sndUna+n > cfg.FileSize {
					n = cfg.FileSize - sndUna
				}
				if err := sendSegment(ev.at, sndUna, n, true); err != nil {
					return nil, err
				}
			}
			armRTO(ev.at)
		}
		if sndUna >= cfg.FileSize && delivered >= cfg.FileSize {
			break
		}
	}
	if delivered < cfg.FileSize {
		return nil, fmt.Errorf("tcpsim: transfer stalled at %d/%d bytes", delivered, cfg.FileSize)
	}
	return tr, nil
}
