package par

import (
	"sync/atomic"
	"time"

	"quicksand/internal/obs"
)

// Observer instruments the pool. All fields are optional: nil metric
// handles no-op (see internal/obs), and a nil Progress callback skips
// progress reporting. The observer wraps the user function only — it
// never touches dispatch order or per-trial seed derivation, so the
// bit-for-bit determinism contract of Map is unaffected.
type Observer struct {
	// Wait observes the delay (seconds) between fan-out start and each
	// task starting — scheduling latency under worker contention.
	Wait *obs.Histogram
	// Exec observes each task's execution wall time in seconds.
	Exec *obs.Histogram
	// Tasks counts completed tasks across all fan-outs.
	Tasks *obs.Counter
	// BusyNS accumulates worker busy time in nanoseconds; divide by
	// workers x wall time for pool utilization.
	BusyNS *obs.Counter
	// Progress, when set, is called after every task completion with the
	// number done so far, the fan-out size, and elapsed time since the
	// fan-out began. It runs on worker goroutines and must be safe for
	// concurrent use.
	Progress func(done, total int, elapsed time.Duration)
	// Trace, when set, opens one span per task (named "trial", with the
	// task index as an attribute) so a trace file carries per-trial
	// timings and the span summary reports their distribution.
	Trace *obs.Tracer
}

// NewObserver builds an observer backed by the standard par_* metric
// families on reg. A nil registry yields an observer whose metric
// handles all no-op.
func NewObserver(reg *obs.Registry) *Observer {
	return &Observer{
		Wait:   reg.Histogram("par_task_wait_seconds", "Delay from fan-out start to task start.", nil),
		Exec:   reg.Histogram("par_task_exec_seconds", "Task execution wall time.", nil),
		Tasks:  reg.Counter("par_tasks_completed_total", "Tasks completed across all fan-outs."),
		BusyNS: reg.Counter("par_worker_busy_nanoseconds_total", "Cumulative worker busy time in nanoseconds."),
	}
}

var observer atomic.Pointer[Observer]

// SetObserver installs the process-wide pool observer; nil disables
// instrumentation. The disabled path costs one atomic pointer load per
// Map call — nothing per task.
func SetObserver(o *Observer) { observer.Store(o) }

// instrumented wraps fn with per-task timing and progress reporting.
func instrumented[T any](ob *Observer, n int, fn func(int) (T, error)) func(int) (T, error) {
	start := time.Now()
	done := new(atomic.Int64)
	return func(i int) (T, error) {
		ts := time.Now()
		ob.Wait.Observe(ts.Sub(start).Seconds())
		var sp *obs.Span
		if ob.Trace != nil {
			sp = ob.Trace.Start("trial", obs.Int("trial", i))
		}
		v, err := fn(i)
		sp.End()
		d := time.Since(ts)
		ob.Exec.Observe(d.Seconds())
		ob.BusyNS.Add(uint64(d))
		ob.Tasks.Inc()
		if ob.Progress != nil {
			ob.Progress(int(done.Add(1)), n, time.Since(start))
		}
		return v, err
	}
}
