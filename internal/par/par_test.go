package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		out, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: len=%d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("got %v, %v", out, err)
	}
	out, err = Map(4, -3, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("negative n: got %v, %v", out, err)
	}
}

func TestMapErrorSmallestIndex(t *testing.T) {
	// Indices 7 and 23 both fail; every worker count must report 7.
	for _, workers := range []int{1, 2, 8, 64} {
		_, err := Map(workers, 40, func(i int) (int, error) {
			if i == 7 || i == 23 {
				return 0, fmt.Errorf("boom at %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom at 7" {
			t.Fatalf("workers=%d: err=%v", workers, err)
		}
	}
}

func TestMapErrorStopsDispatch(t *testing.T) {
	// After the failure at index 0, indices well beyond it must not all
	// run: the pool stops dispatching past the smallest failing index.
	var ran atomic.Int64
	_, err := Map(2, 10_000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if n := ran.Load(); n > 1000 {
		t.Fatalf("%d trials ran after an index-0 failure", n)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(8, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum=%d", sum.Load())
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit count ignored")
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0)=%d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5)=%d", got)
	}
}

func TestTrialSeedDistinct(t *testing.T) {
	seen := make(map[int64]int)
	for trial := 0; trial < 10_000; trial++ {
		s := TrialSeed(1, trial)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: trials %d and %d -> %d", prev, trial, s)
		}
		seen[s] = trial
	}
	// Different roots diverge too.
	if TrialSeed(1, 0) == TrialSeed(2, 0) {
		t.Fatal("root seed has no effect")
	}
	// Pure function of (seed, trial).
	if TrialSeed(42, 7) != TrialSeed(42, 7) {
		t.Fatal("TrialSeed not deterministic")
	}
}

func TestForEachChunkCoversAllIndices(t *testing.T) {
	for _, tc := range []struct{ n, chunk int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {17, 4}, {17, 1}, {17, 0}, {3, 100},
	} {
		var hits atomic.Int64
		seen := make([]atomic.Int32, tc.n)
		err := ForEachChunk(3, tc.n, tc.chunk, func(lo, hi int) error {
			if lo >= hi || hi > tc.n {
				return fmt.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, tc.n)
			}
			if eff := tc.chunk; eff >= 1 && hi-lo > eff {
				return fmt.Errorf("chunk [%d, %d) larger than %d", lo, hi, eff)
			}
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
				hits.Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d chunk=%d: %v", tc.n, tc.chunk, err)
		}
		if hits.Load() != int64(tc.n) {
			t.Fatalf("n=%d chunk=%d: visited %d indices", tc.n, tc.chunk, hits.Load())
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("n=%d chunk=%d: index %d visited %d times", tc.n, tc.chunk, i, seen[i].Load())
			}
		}
	}
}

func TestForEachChunkPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEachChunk(4, 100, 10, func(lo, hi int) error {
		if lo == 50 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
