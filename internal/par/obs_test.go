package par

import (
	"sync"
	"testing"
	"time"

	"quicksand/internal/obs"
)

func TestObserverCountsAndProgress(t *testing.T) {
	reg := obs.NewRegistry()
	ob := NewObserver(reg)
	var mu sync.Mutex
	var seenDone []int
	lastTotal := 0
	ob.Progress = func(done, total int, elapsed time.Duration) {
		mu.Lock()
		seenDone = append(seenDone, done)
		lastTotal = total
		mu.Unlock()
	}
	SetObserver(ob)
	defer SetObserver(nil)

	got, err := Map(4, 10, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, instrumentation perturbed results", i, v)
		}
	}
	if ob.Tasks.Value() != 10 {
		t.Errorf("tasks = %d, want 10", ob.Tasks.Value())
	}
	if ob.Exec.Count() != 10 || ob.Wait.Count() != 10 {
		t.Errorf("exec count = %d, wait count = %d, want 10 each", ob.Exec.Count(), ob.Wait.Count())
	}
	if len(seenDone) != 10 || lastTotal != 10 {
		t.Errorf("progress calls = %d (total %d), want 10", len(seenDone), lastTotal)
	}
	// Every done value in 1..10 must appear exactly once.
	seen := make(map[int]bool)
	for _, d := range seenDone {
		if d < 1 || d > 10 || seen[d] {
			t.Fatalf("bad progress sequence %v", seenDone)
		}
		seen[d] = true
	}
}

func TestObserverSequentialPath(t *testing.T) {
	ob := NewObserver(obs.NewRegistry())
	SetObserver(ob)
	defer SetObserver(nil)
	if err := ForEach(1, 3, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if ob.Tasks.Value() != 3 {
		t.Errorf("tasks = %d, want 3", ob.Tasks.Value())
	}
	if ob.BusyNS.Value() == 0 {
		t.Error("busy time not accumulated")
	}
}

func TestObserverDeterminismAcrossWorkers(t *testing.T) {
	SetObserver(NewObserver(obs.NewRegistry()))
	defer SetObserver(nil)
	run := func(workers int) []int64 {
		out, err := Map(workers, 32, func(i int) (int64, error) {
			return TrialSeed(42, i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par8 := run(1), run(8)
	for i := range seq {
		if seq[i] != par8[i] {
			t.Fatalf("trial %d: %d != %d across worker counts", i, seq[i], par8[i])
		}
	}
}

func TestObserverTrialSpans(t *testing.T) {
	ob := NewObserver(obs.NewRegistry())
	tr := obs.NewTracer(nil) // summary-only
	ob.Trace = tr
	SetObserver(ob)
	defer SetObserver(nil)
	if _, err := Map(2, 7, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary()
	if len(sum) != 1 || sum[0].Name != "trial" || sum[0].Count != 7 {
		t.Fatalf("span summary = %+v, want 7 'trial' spans", sum)
	}
}

func TestObserverNilRegistry(t *testing.T) {
	ob := NewObserver(nil)
	SetObserver(ob)
	defer SetObserver(nil)
	if err := ForEach(2, 4, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if ob.Tasks.Value() != 0 {
		t.Error("nil-registry observer recorded values")
	}
}
