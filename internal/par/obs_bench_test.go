package par

import (
	"testing"

	"quicksand/internal/obs"
)

// benchWork is a small deterministic task: enough arithmetic that the
// fan-out cost doesn't dominate, little enough that per-task observer
// overhead would show up.
func benchWork(i int) (uint64, error) {
	h := uint64(i) * 0x9e3779b97f4a7c15
	for j := 0; j < 256; j++ {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
	}
	return h, nil
}

// BenchmarkMapObserver measures Map fan-outs with the process observer
// absent (one atomic load per Map — the disabled path every experiment
// takes by default) and installed (per-task timing, histograms, and
// counters).
func BenchmarkMapObserver(b *testing.B) {
	for _, bm := range []struct {
		name string
		ob   *Observer
	}{
		{"off", nil},
		{"on", NewObserver(obs.NewRegistry())},
	} {
		b.Run(bm.name, func(b *testing.B) {
			SetObserver(bm.ob)
			defer SetObserver(nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Map(4, 1024, benchWork); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
