// Package par is the experiment engine's parallel substrate: a bounded
// worker pool with ordered result collection and deterministic error
// propagation, plus splitmix64-based per-trial seed derivation.
//
// The contract every study in the root package relies on is that a
// fan-out over n independent trials produces bit-for-bit identical
// results for ANY worker count, including 1. Two rules make that hold:
//
//  1. results are collected positionally (trial i writes slot i), so
//     scheduling order never reorders output;
//  2. no trial reads a shared RNG — each derives its own rand.Source
//     from TrialSeed(studySeed, i), so no trial's draws depend on how
//     many trials ran before it on the same goroutine.
//
// Stdlib only.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a worker-count knob: values below 1 mean "one
// worker per available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers < 1 meaning Workers(0)) and returns the results in index
// order. fn must be safe for concurrent invocation.
//
// Error propagation is deterministic: indices are dispatched in
// ascending order, and once a call fails no index beyond the smallest
// failing one is started; after in-flight calls drain, the error with
// the smallest index is returned. A sequential run and an 8-worker run
// therefore report the same error.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ob := observer.Load(); ob != nil {
		fn = instrumented(ob, n, fn)
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		errIdx   = n
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				mu.Lock()
				stop := firstErr != nil && i > errIdx
				mu.Unlock()
				if stop {
					return
				}
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					if firstErr == nil || i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// ForEach is Map for side-effect-only work: fn(i) for every i in
// [0, n), same worker bound and error semantics.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// ForEachChunk partitions [0, n) into contiguous chunks of at most
// chunk indices (chunk < 1 meaning 1) and runs fn(lo, hi) for every
// chunk, with ForEach's worker bound and error semantics. Sharded
// fan-outs use it to amortise per-task setup — a worker grabs one
// scratch buffer per chunk instead of one per index — while keeping the
// contract that results are independent of the worker count.
func ForEachChunk(workers, n, chunk int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = 1
	}
	chunks := (n + chunk - 1) / chunk
	return ForEach(workers, chunks, func(i int) error {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix generator —
// a cheap, high-quality 64-bit mixer.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// TrialSeed derives the RNG seed for trial i of a study rooted at seed.
// Distinct trials of the same study get statistically independent
// streams, and the derivation depends only on (seed, i) — never on
// which worker runs the trial or in what order — which is what makes
// study results identical across worker counts. Nest calls to derive
// sub-streams: TrialSeed(TrialSeed(seed, i), k).
func TrialSeed(seed int64, trial int) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15
	z = splitmix64(z + 0x9e3779b97f4a7c15*uint64(uint(trial)+1))
	return int64(splitmix64(z))
}
