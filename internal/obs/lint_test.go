package obs_test

import (
	"strings"
	"testing"

	"quicksand/internal/obs"
	"quicksand/internal/testkit"
)

// TestExpositionPassesLint renders a registry exercising every feature
// of the exposition writer — all three kinds, labels with escapes,
// collectors — and runs the shared Prometheus linter over it.
func TestExpositionPassesLint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("obs_demo_events_total", "Events.").Add(3)
	reg.CounterVec("obs_demo_msgs_total", "Messages.", "type", "dir").With("open", "in").Inc()
	reg.Gauge("obs_demo_depth", "Depth.").Set(1.5)
	h := reg.Histogram("obs_demo_latency_seconds", "Latency.", nil)
	for _, v := range []float64{0.0001, 0.05, 2, 100} {
		h.Observe(v)
	}
	reg.HistogramVec("obs_demo_exec_seconds", "Exec.", []float64{0.5, 1}, "pool").
		With(`we"ird\pool`).Observe(0.75)
	reg.Collect("obs_demo_sampled", "Sampled.", obs.KindGauge, []string{"shard"},
		func(emit obs.Emit) {
			emit([]string{"0"}, 7)
			emit([]string{"1"}, 9)
		})
	reg.GaugeFunc("obs_demo_uptime_seconds", "Uptime.", func() float64 { return 12.5 })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if errs := testkit.LintProm(b.String()); len(errs) != 0 {
		t.Fatalf("obs exposition fails lint:\n%v\n\n%s", errs, b.String())
	}
	// The linter must see exactly the families registered.
	fams, err := testkit.ParseProm(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 7 {
		t.Fatalf("parsed %d families, want 7", len(fams))
	}
}
