package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler builds the observability mux: GET /metrics renders reg in
// Prometheus text format, and, when withPprof is set, the net/http/pprof
// endpoints are mounted under /debug/pprof/. The pprof handlers are
// wired explicitly so nothing leaks onto http.DefaultServeMux.
func Handler(reg *Registry, withPprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a running observability HTTP endpoint. Create with
// StartServer, stop with Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
	err chan error
}

// StartServer binds addr and serves Handler(reg, withPprof) until Close.
func StartServer(addr string, reg *Registry, withPprof bool) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(reg, withPprof)}, err: make(chan error, 1)}
	go func() { s.err <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listener address.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server, waiting briefly for in-flight requests.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.srv.SetKeepAlivesEnabled(false)
	err := s.srv.Close()
	select {
	case <-s.err:
	case <-time.After(2 * time.Second):
	}
	return err
}
