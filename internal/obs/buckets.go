package obs

import (
	"fmt"
	"math"
)

// ExpBuckets returns count exponentially spaced histogram bucket upper
// bounds: start, start*factor, start*factor², … Use it for latency
// families whose interesting range spans several orders of magnitude,
// where linear buckets would waste resolution at one end.
func ExpBuckets(start, factor float64, count int) []float64 {
	if count < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets count %d < 1", count))
	}
	if start <= 0 {
		panic(fmt.Sprintf("obs: ExpBuckets start %g <= 0", start))
	}
	if factor <= 1 {
		panic(fmt.Sprintf("obs: ExpBuckets factor %g <= 1", factor))
	}
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// ExpBucketsRange returns count log-spaced bucket upper bounds from min
// to max inclusive. The monitord stage histograms use this to cover the
// µs-to-seconds detection-latency range with constant relative
// resolution.
func ExpBucketsRange(min, max float64, count int) []float64 {
	if count < 2 {
		panic(fmt.Sprintf("obs: ExpBucketsRange count %d < 2", count))
	}
	if min <= 0 {
		panic(fmt.Sprintf("obs: ExpBucketsRange min %g <= 0", min))
	}
	if max <= min {
		panic(fmt.Sprintf("obs: ExpBucketsRange max %g <= min %g", max, min))
	}
	b := make([]float64, count)
	ratio := math.Pow(max/min, 1/float64(count-1))
	v := min
	for i := range b {
		b[i] = v
		v *= ratio
	}
	b[count-1] = max // pin the endpoint against accumulated rounding
	return b
}
