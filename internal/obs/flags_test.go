package obs

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegisterFlags(t *testing.T) {
	var o Options
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.RegisterFlags(fs)
	err := fs.Parse([]string{
		"-metrics-addr", "127.0.0.1:9999",
		"-log-level", "debug",
		"-log-json",
		"-trace", "out.jsonl",
		"-pprof",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Options{MetricsAddr: "127.0.0.1:9999", LogLevel: "debug",
		LogJSON: true, TraceFile: "out.jsonl", Pprof: true}
	if o != want {
		t.Fatalf("parsed = %+v, want %+v", o, want)
	}
	if !o.Enabled() {
		t.Fatal("Enabled() = false")
	}
	if (&Options{LogLevel: "info"}).Enabled() {
		t.Fatal("default options report enabled")
	}
}

func TestRuntimeFull(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	o := Options{MetricsAddr: "127.0.0.1:0", LogLevel: "info", LogJSON: true, TraceFile: trace}
	var logs strings.Builder
	rt, err := o.Start("quicksand", &logs)
	if err != nil {
		t.Fatal(err)
	}
	if rt.MetricsAddr() == "" {
		t.Fatal("no metrics address")
	}
	rt.Reg.Counter("rt_total", "x").Inc()
	rt.Trace.Start("phase").End()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(data))), &rec); err != nil {
		t.Fatalf("trace not JSONL: %v\n%s", err, data)
	}
	attrs, _ := rec["attrs"].(map[string]any)
	if rec["name"] != "phase" || attrs["run"] != rt.RunID {
		t.Errorf("trace record = %v (run %s)", rec, rt.RunID)
	}
	if !strings.Contains(logs.String(), `"component":"quicksand"`) ||
		!strings.Contains(logs.String(), `"run":"`+rt.RunID+`"`) {
		t.Errorf("logs missing component/run stamp:\n%s", logs.String())
	}
}

func TestRuntimePprofOnly(t *testing.T) {
	o := Options{LogLevel: "info", Pprof: true}
	rt, err := o.Start("serve", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	addr := rt.MetricsAddr()
	if addr == "" || !strings.HasPrefix(addr, "127.0.0.1:") {
		t.Fatalf("pprof-only addr = %q, want loopback", addr)
	}
}

func TestRuntimeDisabled(t *testing.T) {
	o := Options{LogLevel: "warn"}
	rt, err := o.Start("bgpgen", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rt.MetricsAddr() != "" || rt.Trace != nil {
		t.Fatal("disabled runtime has server or tracer")
	}
	rt.Log.Info("suppressed at warn")
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	o := Options{LogLevel: "nope"}
	if _, err := o.Start("x", io.Discard); err == nil {
		t.Fatal("bad level did not fail")
	}
	o = Options{LogLevel: "info", TraceFile: filepath.Join(t.TempDir(), "missing", "t.jsonl")}
	if _, err := o.Start("x", io.Discard); err == nil {
		t.Fatal("unwritable trace path did not fail")
	}
	o = Options{LogLevel: "info", MetricsAddr: "256.1.1.1:bad"}
	if _, err := o.Start("x", io.Discard); err == nil {
		t.Fatal("bad metrics addr did not fail")
	}
	var rt *Runtime
	if rt.Close() != nil || rt.MetricsAddr() != "" {
		t.Fatal("nil runtime misbehaved")
	}
}
