package obs

import (
	"io"
	"testing"
)

// The primitive costs: live handles are one or two atomic operations,
// nil handles (the disabled state every instrumentation point holds by
// default) are a single branch.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "x", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 100)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 100)
	}
}

// BenchmarkVecWith is the label-resolution cost paid when a call site
// cannot pre-resolve its handle.
func BenchmarkVecWith(b *testing.B) {
	v := NewRegistry().CounterVec("bench_msgs_total", "x", "kind")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("update").Inc()
	}
}

// BenchmarkWritePrometheus renders a registry shaped like the monitord
// exposition: a few scalar families plus a labeled family with many
// series.
func BenchmarkWritePrometheus(b *testing.B) {
	reg := NewRegistry()
	reg.Counter("bench_updates_total", "x").Add(12345)
	reg.Gauge("bench_depth", "x").Set(3)
	h := reg.Histogram("bench_seconds", "x", nil)
	h.Observe(0.01)
	h.Observe(3)
	v := reg.CounterVec("bench_sessions_total", "x", "session", "state")
	for i := 0; i < 64; i++ {
		v.With(string(rune('a'+i%26))+string(rune('a'+i/26)), "up").Add(uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
