package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
)

// Options is the shared observability flag bundle. Every binary in the
// repository registers the same five flags so operators configure the
// CLI, the daemon, and the generators identically.
type Options struct {
	MetricsAddr string
	LogLevel    string
	LogJSON     bool
	TraceFile   string
	Pprof       bool
}

// RegisterFlags installs the shared flags onto fs.
func (o *Options) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&o.MetricsAddr, "metrics-addr", "", "serve /metrics (Prometheus text format) on this address")
	fs.StringVar(&o.LogLevel, "log-level", "info", "log level: debug, info, warn, error")
	fs.BoolVar(&o.LogJSON, "log-json", false, "emit structured logs as JSON lines instead of text")
	fs.StringVar(&o.TraceFile, "trace", "", "write a JSONL span trace to this file")
	fs.BoolVar(&o.Pprof, "pprof", false, "expose net/http/pprof under /debug/pprof on the metrics server")
}

// Enabled reports whether any observability output is switched on.
func (o *Options) Enabled() bool {
	return o.MetricsAddr != "" || o.TraceFile != "" || o.Pprof
}

// Runtime is a built observability stack: one registry, one root
// logger, one tracer, and (when configured) one HTTP server. Close it
// when the process finishes.
type Runtime struct {
	Log   *slog.Logger
	Reg   *Registry
	Trace *Tracer
	RunID string

	srv       *Server
	traceFile *os.File
}

// Start builds the runtime for component, logging to logw. A tracer is
// created only when -trace was given; the HTTP server only when
// -metrics-addr or -pprof was given (-pprof alone binds 127.0.0.1:0 and
// logs the chosen address).
func (o *Options) Start(component string, logw io.Writer) (*Runtime, error) {
	level, err := ParseLevel(o.LogLevel)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{Reg: NewRegistry(), RunID: NewRunID()}
	rt.Log = Component(NewLogger(logw, level, o.LogJSON), component).
		With(slog.String("run", rt.RunID))

	if o.TraceFile != "" {
		f, err := os.Create(o.TraceFile)
		if err != nil {
			return nil, fmt.Errorf("obs: -trace: %w", err)
		}
		rt.traceFile = f
		rt.Trace = NewTracer(f, String("run", rt.RunID))
	}

	addr := o.MetricsAddr
	if addr == "" && o.Pprof {
		addr = "127.0.0.1:0"
	}
	if addr != "" {
		srv, err := StartServer(addr, rt.Reg, o.Pprof)
		if err != nil {
			rt.closeTrace()
			return nil, err
		}
		rt.srv = srv
		rt.Log.Info("observability endpoint up",
			slog.String("addr", srv.Addr()), slog.Bool("pprof", o.Pprof))
	}
	return rt, nil
}

// MetricsAddr returns the bound metrics address ("" when not serving).
func (rt *Runtime) MetricsAddr() string {
	if rt == nil {
		return ""
	}
	return rt.srv.Addr()
}

func (rt *Runtime) closeTrace() error {
	if rt.traceFile == nil {
		return nil
	}
	err := rt.Trace.Err()
	if cerr := rt.traceFile.Close(); err == nil {
		err = cerr
	}
	rt.traceFile = nil
	return err
}

// Close stops the HTTP server and flushes the trace file, surfacing the
// first write error. Safe on nil and idempotent.
func (rt *Runtime) Close() error {
	if rt == nil {
		return nil
	}
	err := rt.closeTrace()
	if rt.srv != nil {
		if serr := rt.srv.Close(); err == nil {
			err = serr
		}
		rt.srv = nil
	}
	return err
}
