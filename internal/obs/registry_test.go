package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("quicksand_widgets_total", "Widgets made.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("quicksand_depth", "Queue depth.")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Re-registration returns the same series.
	if r.Counter("quicksand_widgets_total", "Widgets made.").Value() != 5 {
		t.Fatal("re-registered counter lost its value")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("g", "g")
	g.Set(2)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := r.Histogram("h", "h", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed")
	}
	r.GaugeFunc("f", "f", func() float64 { return 1 })
	r.Collect("c", "c", KindGauge, nil, nil)
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
	var cv *CounterVec
	if cv.With("a") != nil {
		t.Fatal("nil vec returned a counter")
	}
	var gv *GaugeVec
	if gv.With() != nil {
		t.Fatal("nil gauge vec returned a gauge")
	}
	var hv *HistogramVec
	if hv.With() != nil {
		t.Fatal("nil histogram vec returned a histogram")
	}
}

func TestVecCachingAndLabels(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("quicksand_msgs_total", "Messages.", "type", "dir")
	cv.With("open", "in").Add(2)
	cv.With("open", "in").Inc()
	cv.With("update", "out").Inc()
	if got := cv.With("open", "in").Value(); got != 3 {
		t.Fatalf("labeled counter = %d, want 3", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP quicksand_msgs_total Messages.\n",
		"# TYPE quicksand_msgs_total counter\n",
		`quicksand_msgs_total{type="open",dir="in"} 3` + "\n",
		`quicksand_msgs_total{type="update",dir="out"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("quicksand_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP quicksand_latency_seconds Latency.
# TYPE quicksand_latency_seconds histogram
quicksand_latency_seconds_bucket{le="0.1"} 1
quicksand_latency_seconds_bucket{le="1"} 3
quicksand_latency_seconds_bucket{le="10"} 4
quicksand_latency_seconds_bucket{le="+Inf"} 5
quicksand_latency_seconds_sum 56.05
quicksand_latency_seconds_count 5
`
	if b.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("quicksand_exec_seconds", "Exec.", []float64{1}, "pool")
	hv.With("e3").Observe(0.5)
	hv.With("e3").Observe(2)
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, want := range []string{
		`quicksand_exec_seconds_bucket{pool="e3",le="1"} 1`,
		`quicksand_exec_seconds_bucket{pool="e3",le="+Inf"} 2`,
		`quicksand_exec_seconds_sum{pool="e3"} 2.5`,
		`quicksand_exec_seconds_count{pool="e3"} 2`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

func TestCollectAndOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "Last family.").Inc()
	r.Collect("aa_depth", "Sampled depths.", KindGauge, []string{"shard"}, func(emit Emit) {
		emit([]string{"1"}, 7)
		emit([]string{"0"}, 3)
	})
	r.GaugeFunc("mm_uptime_seconds", "Uptime.", func() float64 { return 1.25 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_depth Sampled depths.
# TYPE aa_depth gauge
aa_depth{shard="0"} 3
aa_depth{shard="1"} 7
# HELP mm_uptime_seconds Uptime.
# TYPE mm_uptime_seconds gauge
mm_uptime_seconds 1.25
# HELP zz_total Last family.
# TYPE zz_total counter
zz_total 1
`
	if b.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "Help with \\ and\nnewline.", "path").
		With("a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total Help with \\ and\nnewline.`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("bad metric name", func() { r.Counter("9bad", "x") })
	expectPanic("bad label name", func() { r.CounterVec("ok_total", "x", "9bad") })
	expectPanic("reserved label", func() { r.CounterVec("ok2_total", "x", "__name") })
	r.Counter("dup_total", "x")
	expectPanic("kind mismatch", func() { r.Gauge("dup_total", "x") })
	expectPanic("label mismatch", func() { r.CounterVec("dup_total", "x", "k") })
	expectPanic("bad buckets", func() { r.Histogram("hist", "x", []float64{1, 1}) })
	expectPanic("wrong label count", func() { r.CounterVec("lv_total", "x", "a").With() })
	expectPanic("collector label count", func() {
		r.Collect("col", "x", KindGauge, []string{"a"}, func(emit Emit) { emit(nil, 1) })
		var b strings.Builder
		r.WritePrometheus(&b)
	})
}

func TestConcurrentHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "x")
	g := r.Gauge("conc_gauge", "x")
	h := r.Histogram("conc_hist", "x", []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 1.0)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("hist count = %d", h.Count())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindCounter: "counter", KindGauge: "gauge", KindHistogram: "histogram", Kind(99): "untyped",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), want)
		}
	}
}

func TestFormatValue(t *testing.T) {
	for v, want := range map[float64]string{
		0: "0", 2: "2", -3: "-3", 1.5: "1.5", 1e16: "1e+16",
	} {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}
