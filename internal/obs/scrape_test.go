package obs_test

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"quicksand/internal/obs"
	"quicksand/internal/testkit"
)

// buildRegistry returns a registry with one counter, one labeled gauge,
// and one labeled histogram, populated with the given sample offset so
// two instances have distinct values.
func buildRegistry(offset int) *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("quicksand_scrape_updates_total", "Updates.").Add(uint64(100 + offset))
	reg.GaugeVec("quicksand_scrape_depth", "Depth.", "shard").With("0").Set(float64(3 + offset))
	reg.GaugeVec("quicksand_scrape_depth", "Depth.", "shard").With("1").Set(float64(5 + offset))
	h := reg.HistogramVec("quicksand_scrape_seconds", "Latency.",
		[]float64{0.001, 0.01, 0.1, 1}, "stage")
	for i := 0; i < 50; i++ {
		h.With("apply").Observe(0.0005)  // first bucket
		h.With("apply").Observe(0.05)    // third bucket
		h.With("monitor").Observe(0.005) // second bucket
	}
	return reg
}

func expositionOf(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestParseExpositionRoundTrip(t *testing.T) {
	text := expositionOf(t, buildRegistry(0))
	snap, err := obs.ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if v, n := snap.Sum("quicksand_scrape_updates_total", nil); v != 100 || n != 1 {
		t.Errorf("counter sum = %v over %d samples, want 100 over 1", v, n)
	}
	if v, _ := snap.Sum("quicksand_scrape_depth", map[string]string{"shard": "1"}); v != 5 {
		t.Errorf("gauge{shard=1} = %v, want 5", v)
	}
	// All depth samples regardless of shard.
	if v, n := snap.Sum("quicksand_scrape_depth", nil); v != 8 || n != 2 {
		t.Errorf("gauge sum = %v over %d, want 8 over 2", v, n)
	}
	fam := snap.Family("quicksand_scrape_seconds")
	if fam == nil || fam.Type != "histogram" {
		t.Fatalf("histogram family missing or wrong type: %+v", fam)
	}
	if v, _ := snap.Sum("quicksand_scrape_seconds_count", map[string]string{"stage": "apply"}); v != 100 {
		t.Errorf("apply _count = %v, want 100", v)
	}

	// Rendered snapshot must itself parse and lint cleanly.
	var b strings.Builder
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if errs := testkit.LintProm(b.String()); errs != nil {
		t.Fatalf("round-tripped exposition fails lint: %v", errs)
	}
	again, err := obs.ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := again.Sum("quicksand_scrape_updates_total", nil); v != 100 {
		t.Errorf("second round trip counter = %v, want 100", v)
	}
}

func TestParseExpositionEscapes(t *testing.T) {
	text := "# HELP weird_total A \\\\ help \\n line\n" +
		"# TYPE weird_total counter\n" +
		"weird_total{path=\"a\\\\b\\\"c\\nd\"} 7\n"
	snap, err := obs.ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	fam := snap.Family("weird_total")
	if fam == nil {
		t.Fatal("family missing")
	}
	if len(fam.Samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(fam.Samples))
	}
	if got := fam.Samples[0].Labels["path"]; got != "a\\b\"c\nd" {
		t.Errorf("label = %q", got)
	}
	// Round trip preserves the escaping.
	var b strings.Builder
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	again, err := obs.ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("re-parse: %v (rendered: %q)", err, b.String())
	}
	if got := again.Family("weird_total").Samples[0].Labels["path"]; got != "a\\b\"c\nd" {
		t.Errorf("round-tripped label = %q", got)
	}
}

func TestParseExpositionErrors(t *testing.T) {
	bad := []string{
		"metric{foo} 1\n",        // label without =
		"metric{a=\"b\"} nope\n", // bad value
		"metric{a=\"b\" 1\n",     // unterminated block
		"justaname\n",            // no value
	}
	for _, text := range bad {
		if _, err := obs.ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("no error for %q", text)
		}
	}
}

func TestScrapeAllMergesInstances(t *testing.T) {
	reg1, reg2 := buildRegistry(0), buildRegistry(100)
	srv1 := httptest.NewServer(obs.Handler(reg1, false))
	defer srv1.Close()
	srv2 := httptest.NewServer(obs.Handler(reg2, false))
	defer srv2.Close()

	merged, err := obs.ScrapeAll(srv1.URL+"/metrics", srv2.URL+"/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if v, n := merged.Sum("quicksand_scrape_updates_total", nil); v != 300 || n != 1 {
		t.Errorf("merged counter = %v over %d samples, want 300 over 1", v, n)
	}
	if v, _ := merged.Sum("quicksand_scrape_depth", map[string]string{"shard": "0"}); v != 106 {
		t.Errorf("merged gauge{shard=0} = %v, want 106", v)
	}
	// Histogram buckets add: each instance has 100 apply observations.
	if v, _ := merged.Sum("quicksand_scrape_seconds_count", map[string]string{"stage": "apply"}); v != 200 {
		t.Errorf("merged apply _count = %v, want 200", v)
	}

	// Aggregated exposition stays lint-clean (covers the new scraped-
	// exposition linter path too).
	var b strings.Builder
	if err := merged.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if errs := testkit.LintProm(b.String()); errs != nil {
		t.Fatalf("merged exposition fails lint: %v", errs)
	}

	// Quantiles over the merged buckets: apply has half its mass at
	// 0.0005 and half at 0.05, so p25 interpolates inside the first
	// bucket and p75 inside the third.
	p25, err := merged.Quantile("quicksand_scrape_seconds", 0.25, map[string]string{"stage": "apply"})
	if err != nil {
		t.Fatal(err)
	}
	if p25 <= 0 || p25 > 0.001 {
		t.Errorf("p25 = %g, want in (0, 0.001]", p25)
	}
	p75, err := merged.Quantile("quicksand_scrape_seconds", 0.75, map[string]string{"stage": "apply"})
	if err != nil {
		t.Fatal(err)
	}
	if p75 <= 0.01 || p75 > 0.1 {
		t.Errorf("p75 = %g, want in (0.01, 0.1]", p75)
	}
	// Merged across both label values: still answers.
	if _, err := merged.Quantile("quicksand_scrape_seconds", 0.5, nil); err != nil {
		t.Fatal(err)
	}
	// Unknown family errors.
	if _, err := merged.Quantile("quicksand_missing_seconds", 0.5, nil); err == nil {
		t.Error("no error for unknown family")
	}
}

func TestScrapeTargetErrors(t *testing.T) {
	if _, err := obs.ScrapeTarget("http://127.0.0.1:1/metrics"); err == nil {
		t.Error("no error for unreachable target")
	}
	srv := httptest.NewServer(obs.Handler(obs.NewRegistry(), false))
	srv.Close()
	if _, err := obs.ScrapeTarget(srv.URL + "/metrics"); err == nil {
		t.Error("no error for closed server")
	}
}

func TestMergeSnapshotsTypeMismatch(t *testing.T) {
	a, err := obs.ParseExposition(strings.NewReader(
		"# HELP m_total x\n# TYPE m_total counter\nm_total 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := obs.ParseExposition(strings.NewReader(
		"# HELP m_total x\n# TYPE m_total gauge\nm_total 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.MergeSnapshots(a, b); err == nil {
		t.Error("no error for type mismatch")
	}
	// nil snapshots are skipped.
	m, err := obs.MergeSnapshots(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Sum("m_total", nil); v != 1 {
		t.Errorf("merge with nil = %v, want 1", v)
	}
}

func TestSnapshotQuantileAgainstHistogram(t *testing.T) {
	// The scraped-side quantile must agree with the in-process one.
	reg := obs.NewRegistry()
	h := reg.Histogram("quicksand_agree_seconds", "x", obs.ExpBucketsRange(1e-6, 10, 22))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000) // (0.001, 1]
	}
	snap, err := obs.ParseExposition(strings.NewReader(expositionOf(t, reg)))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		want := h.Quantile(q)
		got, err := snap.Quantile("quicksand_agree_seconds", q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
			t.Errorf("q=%g: scraped %g != in-process %g", q, got, want)
		}
	}
}
