package obs_test

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"quicksand/internal/obs"
	"quicksand/internal/testkit"
)

// TestConcurrentScrapeUnderLoad hammers a HistogramVec from GOMAXPROCS
// (at least 4) writer goroutines while repeatedly scraping /metrics,
// asserting at every scrape that the exposition is internally
// consistent: buckets cumulative and monotone, le="+Inf" present,
// _count equal to the +Inf bucket (the invariant the renderer
// guarantees by deriving _count from the cumulative buckets), and both
// _count and _sum monotone across scrapes. Run under -race in CI.
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	writers := runtime.GOMAXPROCS(0)
	if writers < 4 {
		writers = 4
	}
	const perWriter = 20000
	const obsValue = 0.5

	reg := obs.NewRegistry()
	hv := reg.HistogramVec("quicksand_load_seconds", "Scrape-under-load test.",
		[]float64{0.1, 0.25, 0.5, 1}, "writer")
	srv := httptest.NewServer(obs.Handler(reg, false))
	defer srv.Close()

	var done atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := hv.With(fmt.Sprintf("w%d", w%2)) // shared series: real contention
			for i := 0; i < perWriter; i++ {
				h.Observe(obsValue)
			}
		}(w)
	}
	go func() { wg.Wait(); done.Store(true) }()

	var lastCount, lastSum float64
	scrapes := 0
	for scrapes == 0 || !done.Load() {
		snap, err := obs.ScrapeTarget(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		scrapes++
		// Lint enforces bucket monotonicity, +Inf presence, and
		// _count == +Inf bucket on the scraped exposition.
		var b strings.Builder
		if err := snap.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if errs := testkit.LintProm(b.String()); errs != nil {
			t.Fatalf("scrape %d fails lint: %v", scrapes, errs)
		}
		count, _ := snap.Sum("quicksand_load_seconds_count", nil)
		sum, _ := snap.Sum("quicksand_load_seconds_sum", nil)
		if count < lastCount {
			t.Fatalf("scrape %d: _count went backwards: %v -> %v", scrapes, lastCount, count)
		}
		if sum < lastSum {
			t.Fatalf("scrape %d: _sum went backwards: %v -> %v", scrapes, lastSum, sum)
		}
		total := float64(writers) * perWriter
		if count > total {
			t.Fatalf("scrape %d: _count %v exceeds total observations %v", scrapes, count, total)
		}
		if sum > total*obsValue+1e-6 {
			t.Fatalf("scrape %d: _sum %v exceeds max possible %v", scrapes, sum, total*obsValue)
		}
		lastCount, lastSum = count, sum
	}

	// Quiescent final scrape: exact totals.
	snap, err := obs.ScrapeTarget(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	total := float64(writers) * perWriter
	if count, _ := snap.Sum("quicksand_load_seconds_count", nil); count != total {
		t.Errorf("final _count = %v, want %v", count, total)
	}
	if sum, _ := snap.Sum("quicksand_load_seconds_sum", nil); sum != total*obsValue {
		t.Errorf("final _sum = %v, want %v", sum, total*obsValue)
	}
	t.Logf("%d scrapes overlapped %d writers x %d observations", scrapes, writers, perWriter)
}
