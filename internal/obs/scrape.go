package obs

// Multi-target /metrics scraping and aggregation. The fleet load
// harness scrapes N monitord instances and needs one merged exposition
// to report on; obs may not import any other quicksand package (see the
// package doc), so the text-format parser here is self-contained rather
// than borrowing testkit's.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ScrapedSample is one exposition sample line: the full sample name
// (including any _bucket/_sum/_count suffix), its labels, and the value.
type ScrapedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ScrapedFamily groups the samples of one metric family as scraped.
type ScrapedFamily struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | untyped
	Samples []ScrapedSample

	index map[string]int // sample name + label key -> Samples offset
}

// Snapshot is a parsed exposition: families in first-seen order, with
// name lookup. Snapshots from several instances merge with
// MergeSnapshots.
type Snapshot struct {
	Families []*ScrapedFamily
	byName   map[string]*ScrapedFamily
}

// Family returns the named family, or nil when absent.
func (s *Snapshot) Family(name string) *ScrapedFamily {
	if s == nil {
		return nil
	}
	return s.byName[name]
}

func (s *Snapshot) family(name string) *ScrapedFamily {
	if f, ok := s.byName[name]; ok {
		return f
	}
	f := &ScrapedFamily{Name: name, index: make(map[string]int)}
	s.byName[name] = f
	s.Families = append(s.Families, f)
	return f
}

// Sum adds up every sample with the given full name whose labels
// include all pairs in match (nil matches everything), returning the
// total and how many samples matched.
func (s *Snapshot) Sum(sample string, match map[string]string) (float64, int) {
	if s == nil {
		return 0, 0
	}
	total, n := 0.0, 0
	for _, f := range s.Families {
		for i := range f.Samples {
			sm := &f.Samples[i]
			if sm.Name != sample || !labelsMatch(sm.Labels, match) {
				continue
			}
			total += sm.Value
			n++
		}
	}
	return total, n
}

// Quantile estimates quantile q (in [0, 1]) of the named histogram
// family from its scraped _bucket samples, summing across every series
// whose labels include all pairs in match (le excluded from matching).
// Summing cumulative buckets across series is sound because every
// instance registers the family with identical bounds.
func (s *Snapshot) Quantile(familyName string, q float64, match map[string]string) (float64, error) {
	fam := s.Family(familyName)
	if fam == nil {
		return 0, fmt.Errorf("obs: no scraped family %q", familyName)
	}
	byLe := make(map[float64]uint64)
	for _, sm := range fam.Samples {
		if sm.Name != familyName+"_bucket" {
			continue
		}
		le, ok := sm.Labels["le"]
		if !ok || !labelsMatchExcept(sm.Labels, match, "le") {
			continue
		}
		bound, err := parseLe(le)
		if err != nil {
			return 0, err
		}
		byLe[bound] += uint64(math.Round(sm.Value))
	}
	if len(byLe) == 0 {
		return 0, fmt.Errorf("obs: no %s_bucket samples match %v", familyName, match)
	}
	if _, ok := byLe[math.Inf(1)]; !ok {
		return 0, fmt.Errorf("obs: family %q has no le=\"+Inf\" bucket", familyName)
	}
	bounds := make([]float64, 0, len(byLe)-1)
	for b := range byLe {
		if !math.IsInf(b, 1) {
			bounds = append(bounds, b)
		}
	}
	sort.Float64s(bounds)
	cum := make([]uint64, 0, len(bounds)+1)
	for _, b := range bounds {
		cum = append(cum, byLe[b])
	}
	cum = append(cum, byLe[math.Inf(1)])
	return QuantileFromCumulative(bounds, cum, q), nil
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad le bound %q: %v", s, err)
	}
	return v, nil
}

func labelsMatch(labels, match map[string]string) bool {
	for k, v := range match {
		if labels[k] != v {
			return false
		}
	}
	return true
}

func labelsMatchExcept(labels, match map[string]string, except string) bool {
	for k, v := range match {
		if k == except {
			continue
		}
		if labels[k] != v {
			return false
		}
	}
	return true
}

// ParseExposition parses Prometheus text format 0.0.4. Unknown comment
// lines are skipped; HELP/TYPE lines bind metadata to their family;
// histogram _bucket/_sum/_count samples attach to the declaring family.
func ParseExposition(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{byName: make(map[string]*ScrapedFamily)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			switch fields[1] {
			case "HELP":
				f := s.family(fields[2])
				if len(fields) == 4 {
					f.Help = unescapeHelp(fields[3])
				}
			case "TYPE":
				if len(fields) >= 4 {
					s.family(fields[2]).Type = strings.TrimSpace(fields[3])
				}
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %v", ln, err)
		}
		fam := s.family(familyFor(s, name))
		fam.addSample(ScrapedSample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// familyFor maps a sample name to its family: _bucket/_sum/_count
// suffixes fold into an already-declared histogram family, everything
// else is its own family.
func familyFor(s *Snapshot, sample string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suffix)
		if !ok {
			continue
		}
		if f, ok := s.byName[base]; ok && f.Type == "histogram" {
			return base
		}
	}
	return sample
}

func (f *ScrapedFamily) addSample(sm ScrapedSample) {
	key := sm.Name + labelKeyOf(sm.Labels)
	if i, ok := f.index[key]; ok {
		f.Samples[i].Value += sm.Value
		return
	}
	f.index[key] = len(f.Samples)
	f.Samples = append(f.Samples, sm)
}

// labelKeyOf renders labels as a canonical sorted {a="x",b="y"} key.
func labelKeyOf(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		names = append(names, n)
	}
	sort.Strings(names)
	values := make([]string, len(names))
	for i, n := range names {
		values[i] = labels[n]
	}
	return labelKey(names, values)
}

func parseSampleLine(line string) (name string, labels map[string]string, value float64, err error) {
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		labels = make(map[string]string)
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, ", \t")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label block in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			lname := strings.TrimSpace(rest[:eq])
			lval, remain, lerr := parseQuoted(rest[eq+1:])
			if lerr != nil {
				return "", nil, 0, fmt.Errorf("%v in %q", lerr, line)
			}
			labels[lname] = lval
			rest = remain
		}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", nil, 0, fmt.Errorf("missing value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

// parseQuoted consumes a double-quoted, backslash-escaped label value
// starting at s[0] == '"', returning the decoded value and the rest.
func parseQuoted(s string) (string, string, error) {
	if s == "" || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted value")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i+1])
			default:
				b.WriteByte(s[i+1])
			}
			i += 2
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// ScrapeTarget fetches and parses one /metrics endpoint.
func ScrapeTarget(url string) (*Snapshot, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: scrape %s: status %s", url, resp.Status)
	}
	return ParseExposition(resp.Body)
}

// SnapshotRegistry captures an in-process registry as a Snapshot — the
// zero-network equivalent of ScrapeTarget, so a process hosting several
// registries (the fleet router and its in-process shards) can merge
// them with MergeSnapshots exactly as it would merge remote scrapes.
func SnapshotRegistry(reg *Registry) (*Snapshot, error) {
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	return ParseExposition(&buf)
}

// ScrapeAll scrapes every URL and merges the snapshots into one
// fleet-wide view.
func ScrapeAll(urls ...string) (*Snapshot, error) {
	snaps := make([]*Snapshot, 0, len(urls))
	for _, u := range urls {
		sn, err := ScrapeTarget(u)
		if err != nil {
			return nil, err
		}
		snaps = append(snaps, sn)
	}
	return MergeSnapshots(snaps...)
}

// MergeSnapshots sums same-name same-label samples across snapshots:
// counters and histogram buckets aggregate to fleet totals, gauges sum
// (queue depths and rates add meaningfully across instances). Family
// types must agree; help text is first-seen.
func MergeSnapshots(snaps ...*Snapshot) (*Snapshot, error) {
	out := &Snapshot{byName: make(map[string]*ScrapedFamily)}
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		for _, f := range sn.Families {
			of := out.family(f.Name)
			if of.Type == "" {
				of.Type = f.Type
			} else if f.Type != "" && f.Type != of.Type {
				return nil, fmt.Errorf("obs: merge: family %q is both %s and %s",
					f.Name, of.Type, f.Type)
			}
			if of.Help == "" {
				of.Help = f.Help
			}
			for _, sm := range f.Samples {
				labels := make(map[string]string, len(sm.Labels))
				for k, v := range sm.Labels {
					labels[k] = v
				}
				of.addSample(ScrapedSample{Name: sm.Name, Labels: labels, Value: sm.Value})
			}
		}
	}
	return out, nil
}

// WritePrometheus renders the snapshot back to exposition text:
// families in sorted name order, histogram buckets in bound order with
// sum and count after them, other samples in sorted label order. The
// output round-trips through ParseExposition and passes the testkit
// linter, so aggregated fleet metrics can be linted and re-served.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	fams := make([]*ScrapedFamily, len(s.Families))
	copy(fams, s.Families)
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	for _, f := range fams {
		typ := f.Type
		if typ == "" {
			typ = "untyped"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.Name, escapeHelp(f.Help), f.Name, typ); err != nil {
			return err
		}
		var err error
		if typ == "histogram" {
			err = writeHistogramSamples(w, f)
		} else {
			err = writePlainSamples(w, f.Samples)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePlainSamples(w io.Writer, samples []ScrapedSample) error {
	rows := make([]ScrapedSample, len(samples))
	copy(rows, samples)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Name != rows[j].Name {
			return rows[i].Name < rows[j].Name
		}
		return labelKeyOf(rows[i].Labels) < labelKeyOf(rows[j].Labels)
	})
	for _, sm := range rows {
		if err := writeSample(w, sm); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogramSamples groups a histogram family's samples by series
// (labels minus le) and renders each series' buckets in bound order
// followed by its _sum and _count.
func writeHistogramSamples(w io.Writer, f *ScrapedFamily) error {
	type series struct {
		buckets []ScrapedSample
		other   []ScrapedSample // _sum, _count
	}
	groups := make(map[string]*series)
	var keys []string
	group := func(key string) *series {
		g, ok := groups[key]
		if !ok {
			g = &series{}
			groups[key] = g
			keys = append(keys, key)
		}
		return g
	}
	for _, sm := range f.Samples {
		if sm.Name == f.Name+"_bucket" {
			base := make(map[string]string, len(sm.Labels))
			for k, v := range sm.Labels {
				if k != "le" {
					base[k] = v
				}
			}
			g := group(labelKeyOf(base))
			g.buckets = append(g.buckets, sm)
		} else {
			group(labelKeyOf(sm.Labels)).other = append(group(labelKeyOf(sm.Labels)).other, sm)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		g := groups[key]
		sort.Slice(g.buckets, func(i, j int) bool {
			bi, _ := parseLe(g.buckets[i].Labels["le"])
			bj, _ := parseLe(g.buckets[j].Labels["le"])
			return bi < bj
		})
		sort.Slice(g.other, func(i, j int) bool { return g.other[i].Name < g.other[j].Name })
		for _, sm := range g.buckets {
			if err := writeSample(w, sm); err != nil {
				return err
			}
		}
		for _, sm := range g.other {
			if err := writeSample(w, sm); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, sm ScrapedSample) error {
	labels := sm.Labels
	key := ""
	if len(labels) > 0 {
		// Keep le last within a bucket line for readability, matching
		// the in-process writer's splice order.
		names := make([]string, 0, len(labels))
		for n := range labels {
			if n != "le" {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		if _, ok := labels["le"]; ok {
			names = append(names, "le")
		}
		values := make([]string, len(names))
		for i, n := range names {
			values[i] = labels[n]
		}
		key = labelKey(names, values)
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", sm.Name, key, formatValue(sm.Value))
	return err
}
