package obs

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug,
		"":      slog.LevelInfo,
		"info":  slog.LevelInfo,
		"INFO ": slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("ParseLevel(verbose) did not fail")
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf strings.Builder
	l := Component(NewLogger(&buf, slog.LevelInfo, true), "monitord")
	l.Debug("hidden")
	l.Info("session up", slog.Int("peer_as", 64501))
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "session up" || rec["component"] != "monitord" || rec["peer_as"] != float64(64501) {
		t.Errorf("record = %v", rec)
	}
}

func TestNewLoggerText(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, slog.LevelWarn, false)
	l.Info("hidden")
	l.Warn("queue behind", slog.Int("depth", 9))
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "queue behind") ||
		!strings.Contains(out, "depth=9") {
		t.Errorf("text log:\n%s", out)
	}
}

func TestDiscard(t *testing.T) {
	l := Component(nil, "x")
	l.Info("dropped")
	l = l.With(slog.String("k", "v")).WithGroup("g")
	l.Error("also dropped")
	if l.Enabled(nil, slog.LevelError) {
		t.Fatal("discard logger claims to be enabled")
	}
}

func TestNewRunID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRunID()
		if len(id) != 8 {
			t.Fatalf("run ID %q not 8 hex chars", id)
		}
		for _, r := range id {
			if !strings.ContainsRune("0123456789abcdef", r) {
				t.Fatalf("run ID %q not hex", id)
			}
		}
		if seen[id] {
			t.Fatalf("run ID %q repeated", id)
		}
		seen[id] = true
	}
}
