package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's exposition type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them in Prometheus text
// exposition format (version 0.0.4). All methods are safe for concurrent
// use; handle operations (Counter.Add etc.) are lock-free.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric family: a fixed label-name schema and a set
// of series, or an exposition-time Collect callback.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string // label names, declaration order

	mu      sync.Mutex
	series  map[string]any // labelKey -> *Counter | *Gauge | *Histogram
	buckets []float64      // histogram families only
	collect func(emit Emit)
}

// Emit receives one sampled series during collection: labelValues must
// match the family's label-name count.
type Emit func(labelValues []string, value float64)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family, creating it on first use and enforcing that
// re-registrations agree on help, kind, and label schema.
func (r *Registry) lookup(name, help string, kind Kind, labels []string) *family {
	if err := checkMetricName(name); err != nil {
		panic(err)
	}
	for _, l := range labels {
		if err := checkLabelName(l); err != nil {
			panic(err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with different schema", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...), series: make(map[string]any)}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.CounterVec(name, help).With()
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, KindCounter, labelNames)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, KindGauge, labelNames)}
}

// Histogram registers an unlabeled fixed-bucket histogram. Buckets are
// upper bounds in increasing order; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers a histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not increasing", name))
		}
	}
	f := r.lookup(name, help, KindHistogram, labelNames)
	f.mu.Lock()
	if f.buckets == nil {
		f.buckets = append([]float64(nil), buckets...)
	}
	f.mu.Unlock()
	return &HistogramVec{f: f}
}

// Collect registers an exposition-time sampled family: fn runs on every
// WritePrometheus call and emits the family's current series. Use it for
// values that need structure traversal (queue depths, table sizes,
// uptime) instead of maintaining them inline on hot paths.
func (r *Registry) Collect(name, help string, kind Kind, labelNames []string, fn func(emit Emit)) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, kind, labelNames)
	f.mu.Lock()
	f.collect = fn
	f.mu.Unlock()
}

// GaugeFunc registers an unlabeled exposition-time sampled gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.Collect(name, help, KindGauge, nil, func(emit Emit) { emit(nil, fn()) })
}

// DefBuckets are general-purpose latency buckets in seconds.
var DefBuckets = []float64{0.000001, 0.00001, 0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5, 30}

// --- handles ---

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Returns nil on a nil vec.
func (cv *CounterVec) With(labelValues ...string) *Counter {
	if cv == nil {
		return nil
	}
	v, _ := cv.f.seriesFor(labelValues, func() any { return &Counter{} })
	return v.(*Counter)
}

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop). No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values, creating it on
// first use. Returns nil on a nil vec.
func (gv *GaugeVec) With(labelValues ...string) *Gauge {
	if gv == nil {
		return nil
	}
	v, _ := gv.f.seriesFor(labelValues, func() any { return &Gauge{} })
	return v.(*Gauge)
}

// Histogram is a fixed-bucket histogram: cumulative bucket counts plus
// sum and count, exposed in the standard Prometheus shape.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // per-bucket (non-cumulative); +Inf is the last
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	n      atomic.Uint64
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values, creating it on
// first use. Returns nil on a nil vec.
func (hv *HistogramVec) With(labelValues ...string) *Histogram {
	if hv == nil {
		return nil
	}
	v, _ := hv.f.seriesFor(labelValues, func() any {
		return &Histogram{bounds: hv.f.buckets, counts: make([]atomic.Uint64, len(hv.f.buckets)+1)}
	})
	return v.(*Histogram)
}

// seriesFor returns the series for the label values, creating it with
// mk on first use.
func (f *family) seriesFor(labelValues []string, mk func() any) (any, string) {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := labelKey(f.labels, labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s, key
	}
	s := mk()
	f.series[key] = s
	return s, key
}

// labelKey renders {a="x",b="y"} (or "" when unlabeled) with escaped
// values — the exact exposition form, reused as the series map key.
func labelKey(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i, r := range name {
		if r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9') {
			continue
		}
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	return nil
}

func checkLabelName(name string) error {
	if name == "" || strings.HasPrefix(name, "__") {
		return fmt.Errorf("obs: invalid label name %q", name)
	}
	for i, r := range name {
		if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9') {
			continue
		}
		return fmt.Errorf("obs: invalid label name %q", name)
	}
	return nil
}

// formatValue renders a sample value: integers without a decimal point
// (counters stay %d-shaped), floats in shortest-round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in sorted name order, series in
// sorted label order, with HELP and TYPE headers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// row is one rendered sample: suffixed name + label block + value.
type row struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels string
	value  string
}

func (f *family) write(w io.Writer) error {
	var rows []row
	f.mu.Lock()
	switch {
	case f.collect != nil:
		f.collect(func(labelValues []string, value float64) {
			if len(labelValues) != len(f.labels) {
				panic(fmt.Sprintf("obs: collector for %q emitted %d label values, want %d",
					f.name, len(labelValues), len(f.labels)))
			}
			rows = append(rows, row{labels: labelKey(f.labels, labelValues), value: formatValue(value)})
		})
		sort.Slice(rows, func(i, j int) bool { return rows[i].labels < rows[j].labels })
	default:
		// Sort series by label key, then render each series' rows in
		// generation order — histogram le buckets must stay in bound
		// order, which a lexical sort of the rendered rows would break.
		keys := make([]string, 0, len(f.series))
		for key := range f.series {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			rows = append(rows, seriesRows(key, f.series[key], f.buckets)...)
		}
	}
	f.mu.Unlock()
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s%s%s %s\n", f.name, r.suffix, r.labels, r.value); err != nil {
			return err
		}
	}
	return nil
}

// seriesRows renders one series' samples. Histogram label blocks splice
// the le label after the series labels.
func seriesRows(key string, s any, buckets []float64) []row {
	switch m := s.(type) {
	case *Counter:
		return []row{{labels: key, value: strconv.FormatUint(m.Value(), 10)}}
	case *Gauge:
		return []row{{labels: key, value: formatValue(m.Value())}}
	case *Histogram:
		rows := make([]row, 0, len(buckets)+3)
		cum := uint64(0)
		for i, b := range buckets {
			cum += m.counts[i].Load()
			rows = append(rows, row{suffix: "_bucket",
				labels: spliceLabel(key, "le", strconv.FormatFloat(b, 'g', -1, 64)),
				value:  strconv.FormatUint(cum, 10)})
		}
		cum += m.counts[len(buckets)].Load()
		rows = append(rows, row{suffix: "_bucket", labels: spliceLabel(key, "le", "+Inf"),
			value: strconv.FormatUint(cum, 10)})
		rows = append(rows, row{suffix: "_sum", labels: key, value: formatValue(m.Sum())})
		// _count is rendered from the +Inf cumulative value, not n: under
		// concurrent Observe calls n can run ahead of the bucket loads
		// above, and a scrape must never show _count != the +Inf bucket.
		rows = append(rows, row{suffix: "_count", labels: key, value: strconv.FormatUint(cum, 10)})
		return rows
	}
	return nil
}

// spliceLabel appends name="value" to a rendered label block.
func spliceLabel(key, name, value string) string {
	pair := name + `="` + escapeLabel(value) + `"`
	if key == "" {
		return "{" + pair + "}"
	}
	return key[:len(key)-1] + "," + pair + "}"
}
