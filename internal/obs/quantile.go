package obs

import (
	"fmt"
	"math"
)

// Quantile estimates the q-th quantile (q in [0, 1]) of the observed
// distribution, interpolating linearly within the owning bucket the way
// Prometheus's histogram_quantile does. Samples in the +Inf bucket clamp
// the estimate to the largest finite bound. Returns NaN on a nil
// receiver, an empty histogram, or q outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return QuantileFromCumulative(h.bounds, cum, q)
}

// QuantileFromCumulative estimates quantile q from cumulative bucket
// counts. bounds holds the finite upper bounds in increasing order; cum
// must have len(bounds)+1 entries, the last being the total including
// the implicit +Inf bucket — the shape a scraped histogram series
// already has. Returns NaN when the total is zero or q is outside
// [0, 1].
func QuantileFromCumulative(bounds []float64, cum []uint64, q float64) float64 {
	if len(cum) != len(bounds)+1 {
		panic(fmt.Sprintf("obs: QuantileFromCumulative wants %d cumulative counts, got %d",
			len(bounds)+1, len(cum)))
	}
	total := cum[len(cum)-1]
	if total == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	b := 0
	for b < len(cum) && float64(cum[b]) < rank {
		b++
	}
	if b >= len(bounds) {
		// The quantile lands in the +Inf bucket: the best available
		// estimate is the largest finite bound.
		if len(bounds) == 0 {
			return math.NaN()
		}
		return bounds[len(bounds)-1]
	}
	lower := 0.0
	prev := uint64(0)
	if b > 0 {
		lower = bounds[b-1]
		prev = cum[b-1]
	}
	upper := bounds[b]
	inBucket := cum[b] - prev
	if inBucket == 0 {
		return upper
	}
	return lower + (upper-lower)*(rank-float64(prev))/float64(inBucket)
}
