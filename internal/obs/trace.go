package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records nestable spans. Ended spans are written as one JSON
// line each (when the tracer has a writer) and folded into an in-memory
// per-name summary of wall time, so a run can both ship a full trace
// file and print a compact per-phase breakdown.
//
// A nil *Tracer (and the nil *Span it hands out) is the disabled state:
// every method no-ops, so instrumentation points need no conditionals.
type Tracer struct {
	nextID atomic.Uint64

	mu      sync.Mutex
	w       io.Writer // nil = summary only
	stats   map[string]*SpanStat
	attrs   []Attr // stamped on every record (run ID etc.)
	writeEr error
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{k, v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{k, v} }

// Int64 builds a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{k, v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{k, v} }

// NewTracer returns a tracer writing span records to w as JSONL; w may
// be nil for a summary-only tracer. attrs are stamped on every record.
func NewTracer(w io.Writer, attrs ...Attr) *Tracer {
	return &Tracer{w: w, stats: make(map[string]*SpanStat), attrs: attrs}
}

// Span is one in-flight span. End it exactly once.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	ended  atomic.Bool
}

// Start opens a root span. Returns nil on a nil tracer.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	return t.start(0, name, attrs)
}

func (t *Tracer) start(parent uint64, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, id: t.nextID.Add(1), parent: parent,
		name: name, start: time.Now(), attrs: attrs}
}

// Child opens a nested span. Returns nil on a nil span.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(s.id, name, attrs)
}

// Annotate appends attributes to the span before it ends.
func (s *Span) Annotate(attrs ...Attr) {
	if s != nil {
		s.attrs = append(s.attrs, attrs...)
	}
}

// record is the JSONL wire shape of one ended span.
type record struct {
	Span   uint64         `json:"span"`
	Parent uint64         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Start  time.Time      `json:"start"`
	DurUS  int64          `json:"dur_us"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// End closes the span, emitting its trace record and folding its wall
// time into the tracer summary. Safe on a nil span; repeated Ends no-op.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	dur := time.Since(s.start)
	t := s.t
	t.mu.Lock()
	st, ok := t.stats[s.name]
	if !ok {
		st = &SpanStat{Name: s.name, Min: dur, Max: dur}
		t.stats[s.name] = st
	}
	st.Count++
	st.Total += dur
	if dur < st.Min {
		st.Min = dur
	}
	if dur > st.Max {
		st.Max = dur
	}
	if t.w != nil {
		rec := record{Span: s.id, Parent: s.parent, Name: s.name,
			Start: s.start.UTC(), DurUS: dur.Microseconds()}
		if n := len(t.attrs) + len(s.attrs); n > 0 {
			rec.Attrs = make(map[string]any, n)
			for _, a := range t.attrs {
				rec.Attrs[a.Key] = a.Value
			}
			for _, a := range s.attrs {
				rec.Attrs[a.Key] = a.Value
			}
		}
		b, err := json.Marshal(rec)
		if err == nil {
			b = append(b, '\n')
			_, err = t.w.Write(b)
		}
		if err != nil && t.writeEr == nil {
			t.writeEr = err
		}
	}
	t.mu.Unlock()
}

// Err returns the first trace-write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.writeEr
}

// SpanStat aggregates every ended span of one name.
type SpanStat struct {
	Name  string
	Count int
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Summary returns per-name span statistics, largest total wall time
// first (ties broken by name).
func (t *Tracer) Summary() []SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanStat, 0, len(t.stats))
	for _, st := range t.stats {
		out = append(out, *st)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteSummary renders the per-phase wall-time table.
func (t *Tracer) WriteSummary(w io.Writer) {
	stats := t.Summary()
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(w, "# span summary (%d phases)\n", len(stats))
	fmt.Fprintf(w, "# %-28s %8s %12s %12s %12s %12s\n", "phase", "count", "total", "mean", "min", "max")
	for _, st := range stats {
		mean := st.Total / time.Duration(st.Count)
		fmt.Fprintf(w, "# %-28s %8d %12s %12s %12s %12s\n",
			st.Name, st.Count, round(st.Total), round(mean), round(st.Min), round(st.Max))
	}
}

func round(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	}
	return d.String()
}
