package obs

import (
	"math"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestExpBucketsRange(t *testing.T) {
	got := ExpBucketsRange(1e-6, 10, 22)
	if len(got) != 22 {
		t.Fatalf("len = %d, want 22", len(got))
	}
	if got[0] != 1e-6 {
		t.Errorf("first = %g, want 1e-6", got[0])
	}
	if got[21] != 10 {
		t.Errorf("last = %g, want 10", got[21])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("bounds not increasing at %d: %g after %g", i, got[i], got[i-1])
		}
	}
	// Constant ratio between adjacent bounds (log-spaced).
	r0 := got[1] / got[0]
	for i := 2; i < len(got); i++ {
		r := got[i] / got[i-1]
		if math.Abs(r-r0)/r0 > 1e-9 {
			t.Errorf("ratio drifts at %d: %g vs %g", i, r, r0)
		}
	}
	// The registry must accept them as histogram bounds.
	reg := NewRegistry()
	reg.Histogram("quicksand_exp_seconds", "Exp-bucketed.", ExpBucketsRange(1e-6, 10, 22))
}

func TestExpBucketsPanics(t *testing.T) {
	cases := []func(){
		func() { ExpBuckets(0, 2, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { ExpBuckets(1, 2, 0) },
		func() { ExpBucketsRange(0, 1, 4) },
		func() { ExpBucketsRange(1, 1, 4) },
		func() { ExpBucketsRange(1, 2, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("quicksand_q_seconds", "Quantile test.", []float64{1, 2, 4, 8})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Errorf("empty histogram quantile = %g, want NaN", h.Quantile(0.5))
	}
	// 100 samples uniform in (0,1]: every quantile interpolates inside
	// the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 = %g, want 0.5", got)
	}
	if got := h.Quantile(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("p100 = %g, want 1", got)
	}
	// Push 100 more into (1,2]: p75 lands mid second bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(1 + float64(i)/100)
	}
	if got := h.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p75 = %g, want 1.5", got)
	}
	if math.IsNaN(h.Quantile(0.999)) || h.Quantile(0.999) > 2 {
		t.Errorf("p99.9 = %g, want <= 2", h.Quantile(0.999))
	}
	// Out-of-range q.
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Errorf("out-of-range q did not return NaN")
	}
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Errorf("nil histogram quantile not NaN")
	}
}

func TestQuantileFromCumulativeInfBucket(t *testing.T) {
	bounds := []float64{1, 2}
	// Everything in +Inf: clamp to largest finite bound.
	if got := QuantileFromCumulative(bounds, []uint64{0, 0, 10}, 0.5); got != 2 {
		t.Errorf("all-inf p50 = %g, want 2", got)
	}
	// Empty.
	if got := QuantileFromCumulative(bounds, []uint64{0, 0, 0}, 0.5); !math.IsNaN(got) {
		t.Errorf("empty = %g, want NaN", got)
	}
	// No finite bounds at all.
	if got := QuantileFromCumulative(nil, []uint64{5}, 0.5); !math.IsNaN(got) {
		t.Errorf("no finite bounds = %g, want NaN", got)
	}
	// Tiny totals: rank clamps to 1 so q=0 maps into the first occupied
	// bucket rather than below it.
	if got := QuantileFromCumulative(bounds, []uint64{1, 1, 1}, 0); math.IsNaN(got) || got > 1 {
		t.Errorf("q=0 single sample = %g, want <= 1", got)
	}
}

func TestQuantileFromCumulativeLenMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	QuantileFromCumulative([]float64{1}, []uint64{1}, 0.5)
}
