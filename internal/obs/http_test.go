package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "Demo counter.").Add(7)
	srv, err := StartServer("127.0.0.1:0", reg, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "demo_total 7\n") {
		t.Errorf("/metrics body:\n%s", body)
	}

	// pprof disabled: the mux must 404 it.
	if code, _ := get(t, "http://"+srv.Addr()+"/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("/debug/pprof/ status = %d without -pprof, want 404", code)
	}
}

func TestServerPprof(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", NewRegistry(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index status=%d body:\n%.200s", code, body)
	}
	if code, _ := get(t, "http://"+srv.Addr()+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline status = %d", code)
	}
}

func TestServerContentType(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", NewRegistry(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("Content-Type = %q", ct)
	}
}

func TestServerNilSafety(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Fatal("nil server has an address")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStartServerBadAddr(t *testing.T) {
	if _, err := StartServer("256.0.0.1:bad", NewRegistry(), false); err == nil {
		t.Fatal("bad address did not fail")
	}
}
