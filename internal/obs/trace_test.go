package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTracerJSONLAndSummary(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf, String("run", "abcd1234"))
	root := tr.Start("experiment", String("experiment", "hijack"))
	child := root.Child("trial", Int("trial", 0))
	child.Annotate(Float("p_hijack", 0.25))
	child.End()
	child.End() // double End must no-op
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["name"] != "trial" {
		t.Errorf("first ended span = %v, want trial", first["name"])
	}
	if first["parent"] != float64(1) {
		t.Errorf("trial parent = %v, want 1", first["parent"])
	}
	attrs, _ := first["attrs"].(map[string]any)
	if attrs["run"] != "abcd1234" || attrs["trial"] != float64(0) || attrs["p_hijack"] != 0.25 {
		t.Errorf("trial attrs = %v", attrs)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}

	stats := tr.Summary()
	if len(stats) != 2 {
		t.Fatalf("summary has %d phases, want 2", len(stats))
	}
	// The root span encloses the child, so it sorts first by total.
	if stats[0].Name != "experiment" || stats[1].Name != "trial" {
		t.Errorf("summary order = %s, %s", stats[0].Name, stats[1].Name)
	}
	if stats[0].Count != 1 || stats[0].Total <= 0 || stats[0].Min > stats[0].Max {
		t.Errorf("bad stat: %+v", stats[0])
	}

	var table strings.Builder
	tr.WriteSummary(&table)
	if !strings.Contains(table.String(), "span summary (2 phases)") ||
		!strings.Contains(table.String(), "experiment") {
		t.Errorf("summary table:\n%s", table.String())
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.Annotate(String("k", "v"))
	c := s.Child("y")
	if c != nil {
		t.Fatal("nil span returned a child")
	}
	c.End()
	s.End()
	if tr.Err() != nil || tr.Summary() != nil {
		t.Fatal("nil tracer has state")
	}
	tr.WriteSummary(&strings.Builder{}) // must not panic
}

func TestTracerSummaryOnly(t *testing.T) {
	tr := NewTracer(nil)
	tr.Start("phase").End()
	if got := tr.Summary(); len(got) != 1 || got[0].Name != "phase" {
		t.Fatalf("summary = %+v", got)
	}
	if tr.Err() != nil {
		t.Fatal("summary-only tracer reported a write error")
	}
}

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestTracerWriteError(t *testing.T) {
	sentinel := errors.New("disk full")
	tr := NewTracer(failWriter{sentinel})
	tr.Start("a").End()
	tr.Start("b").End()
	if !errors.Is(tr.Err(), sentinel) {
		t.Fatalf("Err() = %v, want %v", tr.Err(), sentinel)
	}
}

func TestRound(t *testing.T) {
	for d, want := range map[time.Duration]string{
		1500 * time.Millisecond:   "1.5s",
		1234567 * time.Nanosecond: "1.235ms",
		999 * time.Nanosecond:     "999ns",
	} {
		if got := round(d); got != want {
			t.Errorf("round(%v) = %q, want %q", d, got, want)
		}
	}
}
