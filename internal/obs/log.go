package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// Structured-logging convention: every binary builds one root logger via
// NewLogger, stamps it with its component name and a run ID, and derives
// per-subsystem loggers with Component. Attribute names are shared
// across the repository so log streams from the CLI, the daemon, and the
// generators can be merged and filtered uniformly:
//
//	component  subsystem name ("quicksand", "serve", "monitord", "par", ...)
//	run        short hex run ID, shared by logs and trace spans of one run
//	experiment experiment name ("hijack", "defend", ...)
//	trial      trial index within an experiment

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a logger writing to w at the given level, as JSON
// lines when json is true and logfmt-style text otherwise.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// Component derives a logger stamped with the shared component
// attribute. A nil logger yields the discard logger.
func Component(l *slog.Logger, name string) *slog.Logger {
	if l == nil {
		return Discard()
	}
	return l.With(slog.String("component", name))
}

// discardHandler drops every record (slog.DiscardHandler exists only
// from Go 1.24; the module targets 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var discardLogger = slog.New(discardHandler{})

// Discard returns a logger that drops everything.
func Discard() *slog.Logger { return discardLogger }

var runCounter atomic.Uint64

// NewRunID returns a short hex run identifier, unique within and across
// processes with overwhelming probability: splitmix64 over wall clock,
// PID, and an in-process counter.
func NewRunID() string {
	z := uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32 ^ runCounter.Add(1)<<56
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return fmt.Sprintf("%08x", uint32(z))
}
