// Package obs is the repository's observability substrate: a stdlib-only
// metrics registry with Prometheus text-format exposition, structured
// JSON logging on log/slog with a shared component/run-ID convention,
// lightweight nestable span tracing (JSONL trace files plus an in-memory
// per-phase wall-time summary), and opt-in HTTP endpoints (/metrics and
// net/http/pprof) usable from any binary.
//
// The paper's §5 countermeasure is a monitoring system, and the ROADMAP
// north star ("as fast as the hardware allows") needs numbers instead of
// guesses: every hot path — bgpsim propagation, the internal/par
// experiment engine, bgpd sessions, monitord ingest — emits through this
// package so one exposition path serves the daemon and the CLI alike.
//
// Design rules:
//
//   - Near-zero cost when disabled. Every handle (*Counter, *Gauge,
//     *Histogram, *Span) is nil-safe: methods on nil receivers no-op, so
//     instrumentation points need no conditionals and a nil registry or
//     tracer turns the whole layer into a handful of predictable
//     nil-check branches.
//   - Hot-path operations are single atomic ops. Counters and gauges
//     are one atomic add/store; histograms are one atomic add per bucket
//     walk. Anything that needs structure traversal (queue depths, RIB
//     sizes, session tables) is sampled at exposition time through
//     Collect callbacks instead of being maintained inline.
//   - Deterministic exposition. Families are rendered in sorted name
//     order and series in sorted label order, so output is stable across
//     runs and pinnable with golden tests.
//   - No dependencies. The registry, tracer, and logger are plain
//     stdlib; nothing here may import another quicksand package.
package obs
