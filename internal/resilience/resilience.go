// Package resilience computes Counter-RAPTOR's AS-level hijack
// resilience metric (Sun et al., "Counter-RAPTOR: Safeguarding Tor
// Against Active Routing Attacks") over the compiled Gao-Rexford route
// engine.
//
// For a client AS c and a guard-hosting AS g, the resilience R(c, g) is
// the fraction of potential attacker ASes a that fail to capture c's
// traffic when a originates g's prefix at equal specificity: each AS
// then picks one of the two origins under customer > peer > provider
// preference, and c is captured exactly when its best route's origin is
// the attacker. R close to 1 means almost no attacker position can
// steal the client-to-guard path.
//
// The all-pairs structure is what makes this affordable: one two-origin
// route table for the pair (g, a) yields the outcome for every client
// simultaneously, so a full matrix over G guards costs G×|attackers|
// table computations — not clients×G×|attackers|. Compute shards the
// work by guard destination over internal/par with pooled scratch (the
// same ScratchPool/memory-accounting discipline as topology.RouteSet),
// enumerating every attacker exactly at small scale and sampling a
// per-guard attacker budget with a reported confidence bound at
// Internet scale. Engine caches finished matrices keyed by the graph's
// mutation version, mirroring topology.RouteCache.
package resilience

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/par"
	"quicksand/internal/topology"
)

// Config parameterises one resilience matrix.
type Config struct {
	// Guards are the guard-hosting destination ASes, one matrix row
	// group each. They must be distinct and present in the graph.
	Guards []bgp.ASN
	// Attackers is the sampled per-guard attacker budget; 0 (or any
	// value >= the full population) enumerates every other AS exactly.
	Attackers int
	// Seed derives the per-guard attacker samples (ignored when exact).
	// Matrices are bit-identical for any worker count.
	Seed int64
	// Workers bounds the shard parallelism; <1 means one per CPU.
	Workers int
}

// exact reports whether cfg enumerates the full attacker population of
// an n-AS graph (every AS but the guard itself).
func (cfg Config) exact(n int) bool {
	return cfg.Attackers <= 0 || cfg.Attackers >= n-1
}

// key is the cache identity of a config: the guard set, the budget, and
// the sample seed. Workers never changes results, so it is excluded.
func (cfg Config) key(n int) string {
	var b strings.Builder
	if cfg.exact(n) {
		b.WriteString("exact")
	} else {
		fmt.Fprintf(&b, "m%d:s%d", cfg.Attackers, cfg.Seed)
	}
	for _, g := range cfg.Guards {
		fmt.Fprintf(&b, ":%d", uint32(g))
	}
	return b.String()
}

// Matrix is an all-pairs resilience table: R(c, g) for every client AS
// c in the graph and every configured guard AS g. It is immutable and
// safe for concurrent use.
type Matrix struct {
	c       *topology.Compiled
	version uint64
	guards  []bgp.ASN
	gidx    map[bgp.ASN]int
	res     [][]float64 // res[guard index][client id]
	tables  int         // hijack tables computed
	budget  int         // attackers per guard (population size when exact)
	bound   float64     // 95% half-width of the sampling error; 0 when exact
}

// Guards returns the guard ASes, in configuration order. Read-only.
func (m *Matrix) Guards() []bgp.ASN { return m.guards }

// Clients returns the number of client ASes covered (every AS in the
// graph snapshot).
func (m *Matrix) Clients() int { return m.c.Len() }

// Pairs returns the number of (client, guard) resilience values held.
func (m *Matrix) Pairs() int { return len(m.guards) * m.c.Len() }

// Tables returns the number of two-origin route tables computed.
func (m *Matrix) Tables() int { return m.tables }

// Attackers returns the per-guard attacker count: the sampled budget,
// or the full population size minus one when exact.
func (m *Matrix) Attackers() int { return m.budget }

// Exact reports whether every attacker was enumerated.
func (m *Matrix) Exact() bool { return m.bound == 0 }

// ErrorBound95 returns the 95% confidence half-width of each sampled
// R value (0 for an exact matrix): a conservative normal bound for the
// mean of Bernoulli draws, with the finite-population correction for
// sampling attackers without replacement.
func (m *Matrix) ErrorBound95() float64 { return m.bound }

// Version returns the graph mutation version the matrix was built at.
func (m *Matrix) Version() uint64 { return m.version }

// MemoryBytes returns the measured footprint of the resilience values.
func (m *Matrix) MemoryBytes() int {
	n := 0
	for _, r := range m.res {
		n += cap(r) * 8
	}
	return n
}

// R returns the resilience of client toward guard; ok is false when
// client is not in the graph or guard is not a configured destination.
func (m *Matrix) R(client, guard bgp.ASN) (float64, bool) {
	gi, ok := m.gidx[guard]
	if !ok {
		return 0, false
	}
	id, ok := m.c.ID(client)
	if !ok {
		return 0, false
	}
	return m.res[gi][id], true
}

// RAt returns the resilience of the client interned at id toward the
// gi-th configured guard; both indices must be in range.
func (m *Matrix) RAt(id int32, gi int) float64 { return m.res[gi][id] }

// errorBound95 is the conservative 95% half-width for a mean of m
// Bernoulli samples drawn without replacement from a population of
// size pop: 1.96·sqrt(0.25/m)·sqrt((pop-m)/(pop-1)).
func errorBound95(m, pop int) float64 {
	if m >= pop {
		return 0
	}
	fpc := float64(pop-m) / float64(pop-1)
	return 1.96 * math.Sqrt(0.25/float64(m)) * math.Sqrt(fpc)
}

// Compute builds the all-pairs resilience matrix for cfg on g's current
// compiled snapshot. The computation shards by guard destination: each
// shard computes one two-origin hijack table per attacker with pooled
// scratch and accumulates per-client capture counts, so the whole run
// allocates a bounded number of table buffers no matter how many pairs
// it produces. met may be nil.
func Compute(g *topology.Graph, cfg Config, met *Metrics) (*Matrix, error) {
	c := g.Compiled()
	version := g.Version()
	n := c.Len()
	if n < 3 {
		return nil, fmt.Errorf("resilience: need at least 3 ASes, have %d", n)
	}
	if len(cfg.Guards) == 0 {
		return nil, fmt.Errorf("resilience: no guard ASes configured")
	}
	guardIDs := make([]int32, len(cfg.Guards))
	seen := make(map[bgp.ASN]bool, len(cfg.Guards))
	for i, asn := range cfg.Guards {
		id, ok := c.ID(asn)
		if !ok {
			return nil, fmt.Errorf("resilience: guard AS %v not in graph", asn)
		}
		if seen[asn] {
			return nil, fmt.Errorf("resilience: duplicate guard AS %v", asn)
		}
		seen[asn] = true
		guardIDs[i] = id
	}

	exact := cfg.exact(n)
	budget := n - 1
	if !exact {
		budget = cfg.Attackers
	}

	m := &Matrix{
		c:       c,
		version: version,
		guards:  append([]bgp.ASN(nil), cfg.Guards...),
		gidx:    make(map[bgp.ASN]int, len(cfg.Guards)),
		res:     make([][]float64, len(cfg.Guards)),
		budget:  budget,
	}
	for i, asn := range m.guards {
		m.gidx[asn] = i
	}
	if !exact {
		m.bound = errorBound95(budget, n-1)
	}

	workers := par.Workers(cfg.Workers)
	pool := topology.NewScratchPool(workers)
	tableCounts := make([]int, len(cfg.Guards))
	err := par.ForEachChunk(workers, len(cfg.Guards), 1, func(lo, hi int) error {
		s := pool.Get()
		defer pool.Put(s)
		var routes []topology.Route
		counts := make([]int32, n)
		inSample := make([]bool, n)
		var attackers []int32
		for gi := lo; gi < hi; gi++ {
			start := time.Now()
			gID, gASN := guardIDs[gi], m.guards[gi]
			clear(counts)
			clear(inSample)
			attackers = attackers[:0]
			if exact {
				for id := int32(0); id < int32(n); id++ {
					if id != gID {
						attackers = append(attackers, id)
					}
				}
			} else {
				rng := rand.New(rand.NewSource(par.TrialSeed(cfg.Seed, gi)))
				attackers = sampleIDs(attackers, rng, n, gID, budget)
			}
			for _, aid := range attackers {
				inSample[aid] = true
			}
			for _, aid := range attackers {
				aASN := c.ASN(int(aid))
				var err error
				routes, err = c.ComputeRoutesInto(routes, s, nil,
					topology.Origin{ASN: gASN}, topology.Origin{ASN: aASN})
				if err != nil {
					return err
				}
				for id := range routes {
					if routes[id].Origin == aASN {
						counts[id]++
					}
				}
			}
			r := make([]float64, n)
			for id := 0; id < n; id++ {
				den, captured := len(attackers), int(counts[id])
				if inSample[id] {
					// The table where this client itself attacks counted
					// its own origin route as a capture; the client is
					// not its own adversary, so drop that draw.
					den--
					captured--
				}
				if den <= 0 {
					r[id] = 1
				} else {
					r[id] = 1 - float64(captured)/float64(den)
				}
			}
			m.res[gi] = r
			tableCounts[gi] = len(attackers)
			met.observeShard(time.Since(start), len(attackers), n)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, t := range tableCounts {
		m.tables += t
	}
	return m, nil
}

// sampleIDs appends m distinct ids drawn uniformly from [0, n) \ {skip}
// to dst, via a sparse partial Fisher-Yates over the n-1 remaining ids.
// The result is sorted for deterministic iteration order.
func sampleIDs(dst []int32, rng *rand.Rand, n int, skip int32, m int) []int32 {
	pop := n - 1
	swap := make(map[int]int, m)
	for i := 0; i < m; i++ {
		j := i + rng.Intn(pop-i)
		vj, ok := swap[j]
		if !ok {
			vj = j
		}
		vi, ok := swap[i]
		if !ok {
			vi = i
		}
		swap[j] = vi
		id := int32(vj)
		if id >= skip {
			id++
		}
		dst = append(dst, id)
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst
}

// Engine caches resilience matrices behind the graph's mutation
// version, mirroring topology.RouteCache: concurrent callers asking for
// the same configuration share one computation, and any graph mutation
// invalidates every cached matrix. Safe for concurrent use.
type Engine struct {
	g *topology.Graph
	// Met, when set before use, instruments computations and cache
	// traffic. Nil disables all recording.
	Met *Metrics

	mu      sync.Mutex
	version uint64
	entries map[string]*engineEntry
}

type engineEntry struct {
	once sync.Once
	m    *Matrix
	err  error
}

// NewEngine returns an empty engine over g.
func NewEngine(g *topology.Graph) *Engine {
	return &Engine{g: g, entries: make(map[string]*engineEntry)}
}

// Graph returns the graph the engine computes over.
func (e *Engine) Graph() *topology.Graph { return e.g }

// Matrix returns the cached matrix for cfg, computing it on first use
// per graph version. Stale entries from earlier versions are discarded
// wholesale, exactly like RouteCache's per-destination tables.
func (e *Engine) Matrix(cfg Config) (*Matrix, error) {
	key := cfg.key(e.g.Compiled().Len())
	e.mu.Lock()
	if v := e.g.Version(); v != e.version {
		e.entries = make(map[string]*engineEntry)
		e.version = v
	}
	en, hit := e.entries[key]
	if !hit {
		en = &engineEntry{}
		e.entries[key] = en
	}
	e.mu.Unlock()
	if e.Met != nil {
		if hit {
			e.Met.CacheHits.Inc()
		} else {
			e.Met.CacheMisses.Inc()
		}
	}
	en.once.Do(func() {
		en.m, en.err = Compute(e.g, cfg, e.Met)
	})
	return en.m, en.err
}
