package resilience

import (
	"time"

	"quicksand/internal/obs"
)

// Metrics instruments the resilience engine. All handles are nil-safe,
// so a zero Metrics (or a nil registry) makes every record a no-op;
// Compute treats a nil *Metrics the same way.
type Metrics struct {
	// Pairs counts (client-AS, guard-AS) resilience values produced.
	Pairs *obs.Counter
	// Tables counts two-origin hijack route tables computed — the
	// engine's unit of work (one per (guard, attacker) pair).
	Tables *obs.Counter
	// CacheHits / CacheMisses count Engine.Matrix lookups served from
	// the version-tagged cache vs recomputed.
	CacheHits   *obs.Counter
	CacheMisses *obs.Counter
	// ShardSeconds observes the wall time of each per-guard shard (all
	// attacker tables for one guard destination).
	ShardSeconds *obs.Histogram
}

// shardBuckets spans sub-millisecond small-world shards up to
// multi-minute exact shards at Internet scale.
var shardBuckets = []float64{0.001, 0.005, 0.02, 0.1, 0.5, 2, 10, 60, 300}

// NewMetrics registers the resilience_* metric families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Pairs:        reg.Counter("resilience_pairs_total", "Client-guard resilience values computed."),
		Tables:       reg.Counter("resilience_tables_total", "Two-origin hijack route tables computed."),
		CacheHits:    reg.Counter("resilience_cache_hits_total", "Matrix lookups served from the versioned cache."),
		CacheMisses:  reg.Counter("resilience_cache_misses_total", "Matrix lookups that forced a computation."),
		ShardSeconds: reg.Histogram("resilience_shard_seconds", "Wall time of one per-guard destination shard.", shardBuckets),
	}
}

// observeShard records one finished guard shard: its wall time, the
// hijack tables it computed, and the pairs it produced.
func (m *Metrics) observeShard(d time.Duration, tables, pairs int) {
	if m == nil {
		return
	}
	m.ShardSeconds.Observe(d.Seconds())
	m.Tables.Add(uint64(tables))
	m.Pairs.Add(uint64(pairs))
}
