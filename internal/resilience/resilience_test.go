package resilience_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"quicksand/internal/bgp"
	"quicksand/internal/obs"
	"quicksand/internal/resilience"
	"quicksand/internal/testkit"
	"quicksand/internal/topology"
)

// tinyGraph builds a fixed ~30-AS three-tier topology small enough for
// the brute-force oracle over every (client, guard) pair.
func tinyGraph(t *testing.T, seed int64) *topology.Graph {
	t.Helper()
	g, err := topology.Generate(topology.GenConfig{
		Tier1: 2, Tier2: 6, Tier3: 22,
		Tier2PeerProb: 0.2, MaxT2Providers: 2, MaxT3Providers: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// pickGuards deterministically spreads k guard ASes over the graph.
func pickGuards(g *topology.Graph, k int) []bgp.ASN {
	asns := g.ASNs()
	guards := make([]bgp.ASN, 0, k)
	for i := 0; i < k; i++ {
		guards = append(guards, asns[(i*len(asns))/k+len(asns)/(2*k)])
	}
	return guards
}

// TestExactMatchesOracleTiny checks the sharded engine against the
// brute-force oracle on every (client, guard) pair of a tiny graph.
func TestExactMatchesOracleTiny(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := tinyGraph(t, seed)
		if err := testkit.CheckResilienceExact(g, pickGuards(g, 3), nil, 2); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestExactMatchesOracleRandom runs the differential on larger random
// topologies with a bounded client sample (the oracle recomputes every
// attacker table per pair, so full coverage squares the graph size).
func TestExactMatchesOracleRandom(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g, err := testkit.RandomTopology(seed)
		if err != nil {
			t.Fatal(err)
		}
		asns := g.ASNs()
		rng := testkit.Rand(seed, 77)
		clients := make([]bgp.ASN, 0, 8)
		for len(clients) < 8 {
			clients = append(clients, asns[rng.Intn(len(asns))])
		}
		if err := testkit.CheckResilienceExact(g, pickGuards(g, 2), clients, 3); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestSampledWithinBound compares the sampled estimator against the
// exact matrix: the reported 95% bound must hold on (at least) 90% of
// pairs, and the bound itself must match the finite-population formula.
func TestSampledWithinBound(t *testing.T) {
	g, err := testkit.RandomTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	guards := pickGuards(g, 4)
	exact, err := resilience.Compute(g, resilience.Config{Guards: guards}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact() || exact.ErrorBound95() != 0 {
		t.Fatalf("full enumeration not marked exact (bound %v)", exact.ErrorBound95())
	}

	n := g.Compiled().Len()
	budget := 40
	if budget >= n-1 {
		t.Fatalf("graph too small (%d ASes) for a sampled run", n)
	}
	sampled, err := resilience.Compute(g, resilience.Config{Guards: guards, Attackers: budget, Seed: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Exact() {
		t.Fatal("sampled matrix claims exactness")
	}
	pop := n - 1
	wantBound := 1.96 * math.Sqrt(0.25/float64(budget)) *
		math.Sqrt(float64(pop-budget)/float64(pop-1))
	if math.Abs(sampled.ErrorBound95()-wantBound) > 1e-12 {
		t.Fatalf("bound %v, want %v", sampled.ErrorBound95(), wantBound)
	}
	if sampled.Attackers() != budget {
		t.Fatalf("Attackers() = %d, want %d", sampled.Attackers(), budget)
	}

	within, total := 0, 0
	for gi := range guards {
		for id := int32(0); id < int32(n); id++ {
			if math.Abs(sampled.RAt(id, gi)-exact.RAt(id, gi)) <= sampled.ErrorBound95() {
				within++
			}
			total++
		}
	}
	if frac := float64(within) / float64(total); frac < 0.9 {
		t.Fatalf("only %.3f of pairs within the 95%% bound", frac)
	}
}

// TestWorkerInvariance pins the determinism contract: exact and sampled
// matrices are bit-identical for any worker count.
func TestWorkerInvariance(t *testing.T) {
	g, err := testkit.RandomTopology(5)
	if err != nil {
		t.Fatal(err)
	}
	guards := pickGuards(g, 5)
	n := g.Compiled().Len()
	for _, cfg := range []resilience.Config{
		{Guards: guards},
		{Guards: guards, Attackers: 25, Seed: 3},
	} {
		cfg.Workers = 1
		a, err := resilience.Compute(g, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 7
		b, err := resilience.Compute(g, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		for gi := range guards {
			for id := int32(0); id < int32(n); id++ {
				if a.RAt(id, gi) != b.RAt(id, gi) {
					t.Fatalf("exact=%v: R differs at (id %d, guard %d): %v vs %v",
						a.Exact(), id, gi, a.RAt(id, gi), b.RAt(id, gi))
				}
			}
		}
		if a.Tables() != b.Tables() {
			t.Fatalf("table counts differ: %d vs %d", a.Tables(), b.Tables())
		}
	}
}

// TestMatrixAccessors pins the bookkeeping the study and the bench
// report read off the matrix.
func TestMatrixAccessors(t *testing.T) {
	g := tinyGraph(t, 2)
	guards := pickGuards(g, 3)
	mx, err := resilience.Compute(g, resilience.Config{Guards: guards}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Compiled().Len()
	if mx.Clients() != n {
		t.Fatalf("Clients() = %d, want %d", mx.Clients(), n)
	}
	if mx.Pairs() != n*len(guards) {
		t.Fatalf("Pairs() = %d, want %d", mx.Pairs(), n*len(guards))
	}
	if mx.Tables() != len(guards)*(n-1) {
		t.Fatalf("Tables() = %d, want %d", mx.Tables(), len(guards)*(n-1))
	}
	if mx.Version() != g.Version() {
		t.Fatalf("Version() = %d, graph at %d", mx.Version(), g.Version())
	}
	if got := mx.MemoryBytes(); got < n*len(guards)*8 {
		t.Fatalf("MemoryBytes() = %d, want >= %d", got, n*len(guards)*8)
	}
	for _, guard := range guards {
		for _, client := range g.ASNs() {
			r, ok := mx.R(client, guard)
			if !ok || r < 0 || r > 1 {
				t.Fatalf("R(%v, %v) = %v, %v", client, guard, r, ok)
			}
		}
	}
	if _, ok := mx.R(g.ASNs()[0], bgp.ASN(999999)); ok {
		t.Fatal("R reported ok for an unconfigured guard")
	}
	if _, ok := mx.R(bgp.ASN(999999), guards[0]); ok {
		t.Fatal("R reported ok for an unknown client")
	}
}

// TestConfigValidation pins the error cases.
func TestConfigValidation(t *testing.T) {
	g := tinyGraph(t, 3)
	guard := g.ASNs()[0]
	cases := []struct {
		name string
		cfg  resilience.Config
		want string
	}{
		{"no guards", resilience.Config{}, "no guard"},
		{"unknown guard", resilience.Config{Guards: []bgp.ASN{999999}}, "not in graph"},
		{"duplicate guard", resilience.Config{Guards: []bgp.ASN{guard, guard}}, "duplicate"},
	}
	for _, tc := range cases {
		if _, err := resilience.Compute(g, tc.cfg, nil); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	tiny := topology.NewGraph()
	tiny.AddAS(1)
	tiny.AddAS(2)
	if _, err := resilience.Compute(tiny, resilience.Config{Guards: []bgp.ASN{1}}, nil); err == nil {
		t.Error("2-AS graph accepted")
	}
}

// TestEngineCacheVersioning checks the RouteCache-style semantics: the
// same config is computed once per graph version, hits and misses are
// counted, and any mutation flushes every cached matrix.
func TestEngineCacheVersioning(t *testing.T) {
	g := tinyGraph(t, 4)
	guards := pickGuards(g, 2)
	eng := resilience.NewEngine(g)
	eng.Met = resilience.NewMetrics(obs.NewRegistry())
	cfg := resilience.Config{Guards: guards}

	a, err := eng.Matrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Matrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second lookup did not return the cached matrix")
	}
	if hits, misses := eng.Met.CacheHits.Value(), eng.Met.CacheMisses.Value(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}

	// A different config is a different entry, not a hit.
	if _, err := eng.Matrix(resilience.Config{Guards: guards[:1]}); err != nil {
		t.Fatal(err)
	}
	if misses := eng.Met.CacheMisses.Value(); misses != 2 {
		t.Fatalf("misses=%d after new config, want 2", misses)
	}

	// Mutating the graph must invalidate the whole cache.
	asns := g.ASNs()
	if !g.RemoveLink(asns[0], asns[len(asns)-1]) {
		if err := g.AddLink(asns[0], asns[len(asns)-1]); err != nil {
			t.Fatal(err)
		}
	}
	c, err := eng.Matrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("stale matrix served after graph mutation")
	}
	if c.Version() == a.Version() {
		t.Fatal("recomputed matrix kept the old version")
	}
	if misses := eng.Met.CacheMisses.Value(); misses != 3 {
		t.Fatalf("misses=%d after mutation, want 3", misses)
	}
}

// TestMetricsExposition runs an instrumented computation and lints the
// Prometheus exposition; the counters must agree with the matrix's own
// bookkeeping.
func TestMetricsExposition(t *testing.T) {
	g := tinyGraph(t, 5)
	reg := obs.NewRegistry()
	met := resilience.NewMetrics(reg)
	guards := pickGuards(g, 3)
	mx, err := resilience.Compute(g, resilience.Config{Guards: guards}, met)
	if err != nil {
		t.Fatal(err)
	}
	if got := met.Tables.Value(); got != uint64(mx.Tables()) {
		t.Fatalf("resilience_tables_total = %d, matrix says %d", got, mx.Tables())
	}
	if got := met.Pairs.Value(); got != uint64(mx.Pairs()) {
		t.Fatalf("resilience_pairs_total = %d, matrix says %d", got, mx.Pairs())
	}
	if got := met.ShardSeconds.Count(); got != uint64(len(guards)) {
		t.Fatalf("resilience_shard_seconds count = %d, want %d shards", got, len(guards))
	}
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if errs := testkit.LintProm(b.String()); len(errs) != 0 {
		t.Fatalf("exposition lint: %v", errs)
	}
	for _, fam := range []string{
		"resilience_pairs_total", "resilience_tables_total",
		"resilience_cache_hits_total", "resilience_cache_misses_total",
		"resilience_shard_seconds",
	} {
		if !strings.Contains(b.String(), fam) {
			t.Fatalf("exposition missing %s", fam)
		}
	}
}
