package resilience

import (
	"fmt"

	"quicksand/internal/bgp"
	"quicksand/internal/topology"
)

// ExactR computes R(client, guard) by brute force on the legacy
// map-based route engine: one ComputeRoutesFiltered call per candidate
// attacker, reading only the client's row. It shares no code with the
// sharded engine — Compute goes through the compiled CSR snapshot and
// accumulates all clients at once — so the two agreeing on every pair
// is a real differential check, not a tautology.
func ExactR(g *topology.Graph, client, guard bgp.ASN) (float64, error) {
	if g.AS(client) == nil {
		return 0, fmt.Errorf("resilience: client AS %v not in graph", client)
	}
	if g.AS(guard) == nil {
		return 0, fmt.Errorf("resilience: guard AS %v not in graph", guard)
	}
	total, captured := 0, 0
	for _, attacker := range g.ASNs() {
		if attacker == guard || attacker == client {
			continue
		}
		rt, err := g.ComputeRoutesFiltered(nil,
			topology.Origin{ASN: guard}, topology.Origin{ASN: attacker})
		if err != nil {
			return 0, err
		}
		total++
		if r, ok := rt[client]; ok && r.Origin == attacker {
			captured++
		}
	}
	if total == 0 {
		return 1, nil
	}
	return 1 - float64(captured)/float64(total), nil
}
