package correlation

import (
	"testing"
	"time"

	"quicksand/internal/tcpsim"
)

func smallTraces(t testing.TB, seed int64) (*tcpsim.Traces, tcpsim.Config) {
	t.Helper()
	cfg := tcpsim.DefaultConfig()
	cfg.FileSize = 2 << 20
	cfg.Seed = seed
	tr, err := tcpsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, cfg
}

func grid(cfg tcpsim.Config, tr *tcpsim.Traces) (time.Time, time.Duration, int) {
	bin := 100 * time.Millisecond
	n := int(tr.Finished.Sub(cfg.Start)/bin) + 2
	return cfg.Start, bin, n
}

func TestFromTracesAllFourSegments(t *testing.T) {
	tr, cfg := smallTraces(t, 1)
	start, bin, n := grid(cfg, tr)
	ss, err := FromTraces(tr, start, bin, n)
	if err != nil {
		t.Fatal(err)
	}
	// All four totals within a few percent of the file size (the client
	// side carries cell overhead).
	f := float64(cfg.FileSize)
	for name, s := range map[string]Series{
		"server_to_exit": ss.ServerToExit, "exit_to_server": ss.ExitToServer,
		"guard_to_client": ss.GuardToClient, "client_to_guard": ss.ClientToGuard,
	} {
		if s.Total() < f*0.99 || s.Total() > f*1.10 {
			t.Fatalf("%s total = %.0f, file = %.0f", name, s.Total(), f)
		}
		// Cumulative series must be non-decreasing.
		for i := 1; i < len(s.Cum); i++ {
			if s.Cum[i] < s.Cum[i-1] {
				t.Fatalf("%s: cumulative series decreases at bin %d", name, i)
			}
		}
	}
}

// The paper's Figure 2 (right) claim: the four segment series are nearly
// identical across time, so observing any direction at each end suffices.
func TestFourSegmentsNearlyIdentical(t *testing.T) {
	tr, cfg := smallTraces(t, 2)
	start, bin, n := grid(cfg, tr)
	ss, err := FromTraces(tr, start, bin, n)
	if err != nil {
		t.Fatal(err)
	}
	maxLag := int(cfg.CircuitDelay/bin) + 3
	pairs := []struct {
		name string
		a, b Series
		min  float64
	}{
		{"data/data", ss.ServerToExit, ss.GuardToClient, 0.7},
		{"data/ack same end", ss.ServerToExit, ss.ExitToServer, 0.7},
		{"asymmetric: server data vs client acks", ss.ServerToExit, ss.ClientToGuard, 0.6},
		{"extreme: acks only, both ends", ss.ExitToServer, ss.ClientToGuard, 0.6},
	}
	for _, p := range pairs {
		r, _, err := Correlate(p.a, p.b, maxLag)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if r < p.min {
			t.Fatalf("%s: correlation %.4f < %.2f", p.name, r, p.min)
		}
	}
	// The cumulative curves are "nearly identical" in the figure's
	// sense: totals agree within the cell overhead.
	if d := ss.GuardToClient.Total() - ss.ServerToExit.Total(); d < 0 || d > ss.ServerToExit.Total()*0.08 {
		t.Fatalf("cumulative totals diverge: %v vs %v", ss.GuardToClient.Total(), ss.ServerToExit.Total())
	}
	_ = start
	_ = n
}

func TestCorrelateErrors(t *testing.T) {
	a := Series{Bin: time.Second, Cum: []float64{1, 2}}
	b := Series{Bin: 2 * time.Second, Cum: []float64{1, 2}}
	if _, _, err := Correlate(a, b, 0); err == nil {
		t.Fatal("bin mismatch accepted")
	}
	c := Series{Bin: time.Second, Cum: []float64{1, 2, 3}}
	if _, _, err := Correlate(a, c, 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
	flat := Series{Bin: time.Second, Cum: []float64{1, 1}}
	flat2 := Series{Bin: time.Second, Cum: []float64{1, 2}}
	if _, _, err := Correlate(flat, flat2, 0); err == nil {
		t.Fatal("zero-variance series accepted")
	}
	long := Series{Bin: time.Second, Cum: []float64{1, 2, 3, 4}}
	long2 := Series{Bin: time.Second, Cum: []float64{2, 4, 5, 9}}
	if _, _, err := Correlate(long, long2, -1); err == nil {
		t.Fatal("negative maxLag accepted")
	}
	if _, _, err := Correlate(long, long2, 10); err == nil {
		t.Fatal("oversized maxLag accepted")
	}
}

func TestCorrelateFindsLag(t *testing.T) {
	// b is a copied, shifted to the right by 2 bins.
	a := Series{Bin: time.Second, Cum: []float64{5, 5, 30, 31, 80, 80, 92, 140, 141, 150}}
	bInc := []float64{0, 0, 5, 0, 25, 1, 49, 0, 12, 48}
	b := Series{Bin: time.Second, Cum: make([]float64, len(bInc))}
	cum := 0.0
	for i, v := range bInc {
		cum += v
		b.Cum[i] = cum
	}
	r, lag, err := Correlate(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lag != 2 {
		t.Fatalf("lag = %d, want 2 (r=%.3f)", lag, r)
	}
	if r < 0.99 {
		t.Fatalf("r = %.4f, want ~1", r)
	}
	// Symmetric direction: negative lag.
	r2, lag2, err := Correlate(b, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lag2 != -2 || r2 < 0.99 {
		t.Fatalf("reverse lag = %d r=%.3f", lag2, r2)
	}
}

func TestIncrementsAndTotal(t *testing.T) {
	s := Series{Cum: []float64{10, 30, 30, 70}}
	inc := s.Increments()
	want := []float64{10, 20, 0, 40}
	for i := range want {
		if inc[i] != want[i] {
			t.Fatalf("inc = %v", inc)
		}
	}
	if s.Total() != 70 {
		t.Fatalf("Total = %v", s.Total())
	}
	var empty Series
	if empty.Total() != 0 || empty.Increments() != nil {
		t.Fatal("empty series helpers wrong")
	}
}

func TestGridValidation(t *testing.T) {
	tr, cfg := smallTraces(t, 3)
	if _, err := DataSeries(tr.ServerToExit, cfg.Start, 0, 10); err == nil {
		t.Fatal("zero bin accepted")
	}
	if _, err := DataSeries(tr.ServerToExit, cfg.Start, time.Second, 1); err == nil {
		t.Fatal("single bin accepted")
	}
	if _, err := AckSeries(nil, cfg.Start, time.Second, 10); err != ErrNoPackets {
		t.Fatalf("empty capture: %v", err)
	}
	// A capture of pure ACKs has no data packets.
	if _, err := DataSeries(tr.ExitToServer, cfg.Start, time.Second, 10); err != ErrNoPackets {
		t.Fatalf("ack capture as data: %v", err)
	}
}

// MatchFlows must pick the true client among decoys running their own
// transfers — the deanonymization experiment.
func TestMatchFlowsFindsTrueClient(t *testing.T) {
	target, cfgT := smallTraces(t, 10)
	start, bin, n := grid(cfgT, target)
	serverSide, err := DataSeries(target.ServerToExit, start, bin, n)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate 0 is the true client's ack stream; the rest are decoys
	// from independent transfers (different seeds => different loss and
	// timing patterns).
	candidates := make([]Series, 0, 6)
	cs, err := AckSeries(target.ClientToGuard, start, bin, n)
	if err != nil {
		t.Fatal(err)
	}
	candidates = append(candidates, cs)
	for seed := int64(20); seed < 25; seed++ {
		decoyCfg := tcpsim.DefaultConfig()
		decoyCfg.FileSize = 2 << 20
		decoyCfg.Seed = seed
		// Decoys start at staggered offsets with different rates.
		decoyCfg.Start = cfgT.Start.Add(time.Duration(seed%5) * 900 * time.Millisecond)
		decoyCfg.BottleneckBps = 900*1000 + int(seed)*77000
		decoy, err := tcpsim.Run(decoyCfg)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := AckSeries(decoy.ClientToGuard, start, bin, n)
		if err != nil {
			t.Fatal(err)
		}
		candidates = append(candidates, ds)
	}
	maxLag := int(cfgT.CircuitDelay/bin) + 3
	res, err := MatchFlows(serverSide, candidates, maxLag)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != 0 {
		t.Fatalf("matched candidate %d (scores %v), want 0", res.Best, res.Scores)
	}
	if res.Scores[0] < 0.5 {
		t.Fatalf("true client score %.4f < 0.5", res.Scores[0])
	}
	// The true client must beat every decoy by a clear margin.
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i] > res.Scores[0]-0.1 {
			t.Fatalf("decoy %d score %.4f too close to true client %.4f",
				i, res.Scores[i], res.Scores[0])
		}
	}
}

func TestMatchFlowsErrors(t *testing.T) {
	if _, err := MatchFlows(Series{}, nil, 0); err == nil {
		t.Fatal("no candidates accepted")
	}
	// Candidates that all fail to correlate produce an error.
	tgt := Series{Bin: time.Second, Cum: []float64{1, 2, 3}}
	bad := Series{Bin: 2 * time.Second, Cum: []float64{1, 2, 3}}
	if _, err := MatchFlows(tgt, []Series{bad}, 0); err == nil {
		t.Fatal("uncorrelatable candidates accepted")
	}
}

func TestEarlyPacketsDiscarded(t *testing.T) {
	tr, cfg := smallTraces(t, 4)
	// Start the grid after the first second: earlier packets must be
	// dropped, not crash or clamp into bin 0.
	lateStart := cfg.Start.Add(time.Second)
	s, err := DataSeries(tr.ServerToExit, lateStart, 100*time.Millisecond, 50)
	if err != nil {
		t.Fatal(err)
	}
	full, err := DataSeries(tr.ServerToExit, cfg.Start, 100*time.Millisecond, 60)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total() >= full.Total() {
		t.Fatalf("late grid total %v >= full total %v", s.Total(), full.Total())
	}
}

func BenchmarkFromTraces(b *testing.B) {
	tr, cfg := smallTraces(b, 5)
	start, bin, n := grid(cfg, tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromTraces(tr, start, bin, n); err != nil {
			b.Fatal(err)
		}
	}
}
