// Package correlation implements the paper's traffic-analysis arithmetic:
// recovering cumulative byte counts from header-only packet captures and
// correlating them across vantage points.
//
// The key move (paper §3.3) is that an adversary who can only see one
// direction of traffic at an end still learns the transfer's progress:
// data packets reveal bytes sent through TCP sequence/length fields, and
// acknowledgment packets reveal bytes received through the cumulative ACK
// field. Because ACKs are cumulative there is no packet-for-packet
// correspondence between the two ends, so the analysis bins both sides
// into a shared timeline and correlates per-bin byte increments.
package correlation

import (
	"errors"
	"fmt"
	"time"

	"quicksand/internal/packet"
	"quicksand/internal/stats"
	"quicksand/internal/tcpsim"
)

// Series is a cumulative byte count sampled on a regular grid: Cum[i] is
// the total number of bytes sent (or acknowledged) by time
// Start + (i+1)*Bin.
type Series struct {
	Start time.Time
	Bin   time.Duration
	Cum   []float64
}

// ErrNoPackets is returned when a capture holds no parseable packets.
var ErrNoPackets = errors.New("correlation: no packets in capture")

// DataSeries recovers the cumulative bytes *sent* from a capture of data
// packets, by summing TCP payload lengths implied by each packet's IPv4
// TotalLen (snaplen-truncated captures are fine).
func DataSeries(recs []tcpsim.Record, start time.Time, bin time.Duration, nbins int) (Series, error) {
	if err := checkGrid(bin, nbins); err != nil {
		return Series{}, err
	}
	s := Series{Start: start, Bin: bin, Cum: make([]float64, nbins)}
	seen := false
	for _, r := range recs {
		ip, _, err := packet.ParseTCPPacketLoose(r.Data)
		if err != nil {
			return Series{}, fmt.Errorf("correlation: %w", err)
		}
		n := packet.TCPPayloadLen(ip)
		if n == 0 {
			continue
		}
		seen = true
		idx := binIndex(r.Time, start, bin, nbins)
		if idx < 0 {
			continue
		}
		s.Cum[idx] += float64(n)
	}
	if !seen {
		return Series{}, ErrNoPackets
	}
	accumulate(s.Cum)
	return s, nil
}

// AckSeries recovers the cumulative bytes *acknowledged* from a capture of
// TCP acknowledgments: the highest cumulative ACK value observed by the
// end of each bin (carried forward through empty bins).
func AckSeries(recs []tcpsim.Record, start time.Time, bin time.Duration, nbins int) (Series, error) {
	if err := checkGrid(bin, nbins); err != nil {
		return Series{}, err
	}
	s := Series{Start: start, Bin: bin, Cum: make([]float64, nbins)}
	base := -1.0 // first ACK seen becomes the zero point (relative seq)
	seen := false
	for _, r := range recs {
		_, tcp, err := packet.ParseTCPPacketLoose(r.Data)
		if err != nil {
			return Series{}, fmt.Errorf("correlation: %w", err)
		}
		if !tcp.HasFlag(packet.FlagACK) {
			continue
		}
		seen = true
		if base < 0 {
			base = 0 // synthetic traces use absolute byte offsets from 0
		}
		idx := binIndex(r.Time, start, bin, nbins)
		if idx < 0 {
			continue
		}
		v := float64(tcp.Ack)
		if v > s.Cum[idx] {
			s.Cum[idx] = v
		}
	}
	if !seen {
		return Series{}, ErrNoPackets
	}
	// Carry the running maximum forward so empty bins hold the last
	// known cumulative value.
	for i := 1; i < len(s.Cum); i++ {
		if s.Cum[i] < s.Cum[i-1] {
			s.Cum[i] = s.Cum[i-1]
		}
	}
	return s, nil
}

func checkGrid(bin time.Duration, nbins int) error {
	if bin <= 0 {
		return fmt.Errorf("correlation: non-positive bin %v", bin)
	}
	if nbins <= 1 {
		return fmt.Errorf("correlation: need at least 2 bins, got %d", nbins)
	}
	return nil
}

// binIndex maps t onto the grid; times past the last bin clamp into it,
// times before start are discarded (-1).
func binIndex(t time.Time, start time.Time, bin time.Duration, nbins int) int {
	d := t.Sub(start)
	if d < 0 {
		return -1
	}
	idx := int(d / bin)
	if idx >= nbins {
		idx = nbins - 1
	}
	return idx
}

func accumulate(xs []float64) {
	for i := 1; i < len(xs); i++ {
		xs[i] += xs[i-1]
	}
}

// Increments returns the per-bin byte deltas of the series.
func (s Series) Increments() []float64 {
	if len(s.Cum) == 0 {
		return nil
	}
	out := make([]float64, len(s.Cum))
	out[0] = s.Cum[0]
	for i := 1; i < len(s.Cum); i++ {
		out[i] = s.Cum[i] - s.Cum[i-1]
	}
	return out
}

// Total returns the final cumulative byte count.
func (s Series) Total() float64 {
	if len(s.Cum) == 0 {
		return 0
	}
	return s.Cum[len(s.Cum)-1]
}

// Correlate computes the maximum lagged Pearson correlation between the
// per-bin increments of two series, searching lags in [-maxLag, +maxLag]
// bins (a positive returned lag means b trails a). The series must share
// bin width and length.
//
// The lag search matters because the two vantage points sit at opposite
// ends of the circuit: the client-side series trails the server-side one
// by the circuit latency, so the zero-lag correlation of a bursty
// transfer is near zero while the correctly-aligned one is near 1 — this
// alignment is the "correlation over time" of the paper's §3.3 analysis.
// A high score means the two vantage points are watching the same
// transfer, regardless of direction (data vs ACKs).
func Correlate(a, b Series, maxLag int) (r float64, lag int, err error) {
	if a.Bin != b.Bin {
		return 0, 0, fmt.Errorf("correlation: bin mismatch %v vs %v", a.Bin, b.Bin)
	}
	if len(a.Cum) != len(b.Cum) {
		return 0, 0, fmt.Errorf("correlation: length mismatch %d vs %d", len(a.Cum), len(b.Cum))
	}
	if maxLag < 0 || maxLag >= len(a.Cum)-1 {
		return 0, 0, fmt.Errorf("correlation: maxLag %d out of range for %d bins", maxLag, len(a.Cum))
	}
	ai := a.Increments()
	bi := b.Increments()
	best := -2.0
	bestLag := 0
	found := false
	for l := -maxLag; l <= maxLag; l++ {
		var x, y []float64
		if l >= 0 {
			x, y = ai[:len(ai)-l], bi[l:]
		} else {
			x, y = ai[-l:], bi[:len(bi)+l]
		}
		p, perr := stats.Pearson(x, y)
		if perr != nil {
			continue // zero variance at this alignment
		}
		found = true
		if p > best {
			best, bestLag = p, l
		}
	}
	if !found {
		return 0, 0, errors.New("correlation: no lag with defined correlation")
	}
	return best, bestLag, nil
}

// MatchResult reports a flow-matching outcome: the index of the best-
// scoring candidate and every candidate's correlation against the target
// (candidates that fail to correlate score -1).
type MatchResult struct {
	Best   int
	Scores []float64
}

// MatchFlows ranks candidate series by lagged correlation against the
// target and returns the best match — the deanonymization step: the
// adversary holds the series observed near the destination and asks which
// of many client-side series it lines up with.
func MatchFlows(target Series, candidates []Series, maxLag int) (MatchResult, error) {
	if len(candidates) == 0 {
		return MatchResult{}, fmt.Errorf("correlation: no candidates")
	}
	res := MatchResult{Best: -1, Scores: make([]float64, len(candidates))}
	best := -2.0
	for i, c := range candidates {
		r, _, err := Correlate(target, c, maxLag)
		if err != nil {
			res.Scores[i] = -1
			continue
		}
		res.Scores[i] = r
		if r > best {
			best = r
			res.Best = i
		}
	}
	if res.Best < 0 {
		return res, fmt.Errorf("correlation: no candidate correlated with target")
	}
	return res, nil
}

// SegmentSeries computes the four per-segment series of Figure 2 (right)
// from one simulated download: bytes sent server→exit and guard→client,
// bytes acknowledged exit→server and client→guard, on a shared grid
// anchored at start.
type SegmentSeries struct {
	ServerToExit  Series // data bytes sent by the server
	ExitToServer  Series // bytes acked back to the server
	GuardToClient Series // cell-stream bytes sent to the client
	ClientToGuard Series // bytes acked by the client
}

// FromTraces builds the four segment series from traces, binned at bin
// over nbins intervals starting at start.
func FromTraces(tr *tcpsim.Traces, start time.Time, bin time.Duration, nbins int) (*SegmentSeries, error) {
	se, err := DataSeries(tr.ServerToExit, start, bin, nbins)
	if err != nil {
		return nil, fmt.Errorf("server_to_exit: %w", err)
	}
	es, err := AckSeries(tr.ExitToServer, start, bin, nbins)
	if err != nil {
		return nil, fmt.Errorf("exit_to_server: %w", err)
	}
	gc, err := DataSeries(tr.GuardToClient, start, bin, nbins)
	if err != nil {
		return nil, fmt.Errorf("guard_to_client: %w", err)
	}
	cg, err := AckSeries(tr.ClientToGuard, start, bin, nbins)
	if err != nil {
		return nil, fmt.Errorf("client_to_guard: %w", err)
	}
	return &SegmentSeries{ServerToExit: se, ExitToServer: es, GuardToClient: gc, ClientToGuard: cg}, nil
}
