// Package analysis implements the paper's measurement analyses — the core
// contribution of "Anonymity on QuickSand":
//
//   - mapping Tor relays to the most specific BGP prefix containing them
//     ("Tor prefixes", §4 methodology) and the dataset statistics the
//     paper reports;
//   - the AS concentration of guard/exit relays (Figure 2, left);
//   - per-session path-change counting with routing-table-transfer
//     filtering, and the Tor-vs-median change ratio (Figure 3, left);
//   - the extra ASes that transiently appear on paths toward Tor
//     prefixes, with a minimum-dwell threshold (Figure 3, right);
//   - the analytical anonymity-degradation model of §3.1.
package analysis

import (
	"fmt"
	"net/netip"
	"sort"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpsim"
	"quicksand/internal/iptrie"
	"quicksand/internal/stats"
	"quicksand/internal/torconsensus"
)

// RIB is a longest-prefix-match table from announced prefixes to their
// origin AS, the structure the paper consults to find each relay's
// most-specific covering prefix.
type RIB = iptrie.Trie[bgp.ASN]

// BuildRIB loads an origination table into a longest-prefix-match trie.
func BuildRIB(origins map[netip.Prefix]bgp.ASN) (*RIB, error) {
	var t RIB
	for p, asn := range origins {
		if _, err := t.Insert(p, asn); err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
	}
	return &t, nil
}

// TorPrefix summarises one Tor prefix: a most-specific announced prefix
// containing at least one guard or exit relay.
type TorPrefix struct {
	Prefix netip.Prefix
	Origin bgp.ASN
	// Guards/Exits/Middles count relays in the prefix by role (relays
	// flagged Guard+Exit count in both Guards and Exits).
	Guards  int
	Exits   int
	Middles int

	guardExit int // distinct guard-or-exit relays
}

// GuardExitRelays returns the number of distinct guard-or-exit relays in
// the prefix (the paper's "relays per Tor prefix" metric counts these).
func (t *TorPrefix) GuardExitRelays() int { return t.guardExit }

// MapTorPrefixes maps every relay in the consensus to its most-specific
// covering prefix in rib and returns the Tor prefixes — those hosting at
// least one guard or exit — plus the relays that no announced prefix
// covers (unrouted relays are excluded from all per-prefix statistics, as
// in the paper).
func MapTorPrefixes(cons *torconsensus.Consensus, rib *RIB) (map[netip.Prefix]*TorPrefix, []netip.Addr, error) {
	if cons == nil || rib == nil {
		return nil, nil, fmt.Errorf("analysis: nil consensus or RIB")
	}
	out := make(map[netip.Prefix]*TorPrefix)
	var unmapped []netip.Addr
	for i := range cons.Relays {
		r := &cons.Relays[i]
		p, origin, ok := rib.LongestMatch(r.Addr)
		if !ok {
			unmapped = append(unmapped, r.Addr)
			continue
		}
		tp := out[p]
		if tp == nil {
			tp = &TorPrefix{Prefix: p, Origin: origin}
			out[p] = tp
		}
		isGuard := r.HasFlag(torconsensus.FlagGuard)
		isExit := r.HasFlag(torconsensus.FlagExit)
		if isGuard {
			tp.Guards++
		}
		if isExit {
			tp.Exits++
		}
		if isGuard || isExit {
			tp.guardExit++
		} else {
			tp.Middles++
		}
	}
	// Keep only prefixes hosting guards or exits — the paper's "Tor
	// prefixes".
	for p, tp := range out {
		if tp.guardExit == 0 {
			delete(out, p)
		}
	}
	return out, unmapped, nil
}

// DatasetStats reproduces the §4 methodology numbers.
type DatasetStats struct {
	Relays   int // total relays in the consensus
	Guards   int // relays flagged Guard
	Exits    int // relays flagged Exit
	Both     int // relays flagged Guard and Exit
	Unmapped int // relays with no covering announced prefix

	TorPrefixes int // distinct prefixes hosting guard/exit relays
	OriginASes  int // distinct ASes announcing those prefixes

	// RelaysPerPrefix summarises guard/exit relays per Tor prefix
	// (median 1, p75 2, max 33 in the paper).
	RelaysPerPrefix stats.Summary

	// Per-session visibility (zero-valued when no stream given):
	// MeanPrefixVisibility is the mean over Tor prefixes of the fraction
	// of sessions that learned the prefix (the paper's 40% average);
	// MaxPrefixVisibility is its maximum (60%).
	MeanPrefixVisibility float64
	MaxPrefixVisibility  float64
	// PrefixesPerSession summarises how many Tor prefixes each session
	// learned (median 438 = 35%, max 1242 = 99% in the paper).
	PrefixesPerSession stats.Summary
}

// Dataset computes the methodology statistics. stream may be nil, in
// which case the visibility fields stay zero.
func Dataset(cons *torconsensus.Consensus, rib *RIB, stream *bgpsim.Stream) (DatasetStats, error) {
	torPrefixes, unmapped, err := MapTorPrefixes(cons, rib)
	if err != nil {
		return DatasetStats{}, err
	}
	ds := DatasetStats{Relays: len(cons.Relays), Unmapped: len(unmapped), TorPrefixes: len(torPrefixes)}
	for i := range cons.Relays {
		g := cons.Relays[i].HasFlag(torconsensus.FlagGuard)
		e := cons.Relays[i].HasFlag(torconsensus.FlagExit)
		if g {
			ds.Guards++
		}
		if e {
			ds.Exits++
		}
		if g && e {
			ds.Both++
		}
	}
	origins := make(map[bgp.ASN]bool)
	var perPrefix []float64
	for _, tp := range torPrefixes {
		origins[tp.Origin] = true
		perPrefix = append(perPrefix, float64(tp.guardExit))
	}
	ds.OriginASes = len(origins)
	if ds.RelaysPerPrefix, err = stats.Summarize(perPrefix); err != nil {
		return DatasetStats{}, err
	}

	if stream != nil && len(stream.Sessions) > 0 {
		var visFracs []float64
		var perSession []float64
		for si := range stream.Sessions {
			count := 0
			for p := range torPrefixes {
				if stream.Sessions[si].Sees(p) {
					count++
				}
			}
			perSession = append(perSession, float64(count))
		}
		for p := range torPrefixes {
			n := 0
			for si := range stream.Sessions {
				if stream.Sessions[si].Sees(p) {
					n++
				}
			}
			visFracs = append(visFracs, float64(n)/float64(len(stream.Sessions)))
		}
		if len(visFracs) > 0 {
			mean, _ := stats.Mean(visFracs)
			max, _ := stats.Max(visFracs)
			ds.MeanPrefixVisibility = mean
			ds.MaxPrefixVisibility = max
		}
		if ds.PrefixesPerSession, err = stats.Summarize(perSession); err != nil {
			return DatasetStats{}, err
		}
	}
	return ds, nil
}

// ConcentrationPoint is one point of Figure 2 (left): the top NumASes
// ASes host PercentRelays percent of guard/exit relays.
type ConcentrationPoint struct {
	NumASes       int
	PercentRelays float64
}

// ASRelayCount pairs an AS with its guard/exit relay count.
type ASRelayCount struct {
	ASN    bgp.ASN
	Relays int
}

// Concentration computes the cumulative AS-concentration curve of
// guard/exit relays (Figure 2, left) plus the per-AS ranking that backs
// it, ordered by descending relay count.
func Concentration(cons *torconsensus.Consensus, rib *RIB) ([]ConcentrationPoint, []ASRelayCount, error) {
	torPrefixes, _, err := MapTorPrefixes(cons, rib)
	if err != nil {
		return nil, nil, err
	}
	perAS := make(map[bgp.ASN]int)
	total := 0
	for _, tp := range torPrefixes {
		perAS[tp.Origin] += tp.guardExit
		total += tp.guardExit
	}
	if total == 0 {
		return nil, nil, fmt.Errorf("analysis: no guard/exit relays mapped")
	}
	ranking := make([]ASRelayCount, 0, len(perAS))
	for asn, n := range perAS {
		ranking = append(ranking, ASRelayCount{ASN: asn, Relays: n})
	}
	sort.Slice(ranking, func(i, j int) bool {
		if ranking[i].Relays != ranking[j].Relays {
			return ranking[i].Relays > ranking[j].Relays
		}
		return ranking[i].ASN < ranking[j].ASN
	})
	curve := make([]ConcentrationPoint, len(ranking))
	cum := 0
	for i, rc := range ranking {
		cum += rc.Relays
		curve[i] = ConcentrationPoint{NumASes: i + 1, PercentRelays: 100 * float64(cum) / float64(total)}
	}
	return curve, ranking, nil
}

// CompromiseProb is the §3.1 model: the probability that at least one of
// the x distinct ASes on the client-guard paths is malicious, when each
// AS is malicious independently with probability f.
//
//	P = 1 - (1-f)^x
func CompromiseProb(f float64, x int) float64 {
	if x <= 0 || f <= 0 {
		return 0
	}
	if f >= 1 {
		return 1
	}
	p := 1.0
	for i := 0; i < x; i++ {
		p *= 1 - f
	}
	return 1 - p
}

// MultiGuardCompromiseProb extends the model to l guard relays, each
// contributing x distinct ASes: 1-(1-f)^(l*x). Tor's use of three guards
// amplifies the exposure created by path churn.
func MultiGuardCompromiseProb(f float64, x, l int) float64 {
	if l <= 0 {
		return 0
	}
	return CompromiseProb(f, x*l)
}
