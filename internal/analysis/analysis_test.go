package analysis

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpsim"
	"quicksand/internal/torconsensus"
)

func mustRIB(t *testing.T, origins map[string]bgp.ASN) *RIB {
	t.Helper()
	m := make(map[netip.Prefix]bgp.ASN, len(origins))
	for s, a := range origins {
		m[netip.MustParsePrefix(s)] = a
	}
	rib, err := BuildRIB(m)
	if err != nil {
		t.Fatal(err)
	}
	return rib
}

func tinyConsensus() *torconsensus.Consensus {
	va := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
	mk := func(nick, addr string, flags torconsensus.Flag) torconsensus.Relay {
		return torconsensus.Relay{
			Nickname: nick, Identity: nick, Digest: nick, Published: va,
			Addr:  netip.MustParseAddr(addr),
			Flags: flags | torconsensus.FlagRunning | torconsensus.FlagValid,
		}
	}
	return &torconsensus.Consensus{
		ValidAfter: va,
		Relays: []torconsensus.Relay{
			mk("g1", "78.46.1.1", torconsensus.FlagGuard),
			mk("g2", "78.46.1.2", torconsensus.FlagGuard),
			mk("e1", "93.115.0.9", torconsensus.FlagExit),
			mk("b1", "78.47.0.1", torconsensus.FlagGuard|torconsensus.FlagExit),
			mk("m1", "10.10.0.1", 0),                        // middle in its own prefix
			mk("m2", "78.46.1.3", 0),                        // middle sharing a guard prefix
			mk("lost", "192.0.2.1", torconsensus.FlagGuard), // no covering prefix
		},
	}
}

func tinyRIB(t *testing.T) *RIB {
	return mustRIB(t, map[string]bgp.ASN{
		"78.46.0.0/15":  24940, // covers g1, g2, m2, b1 (78.47.0.1)
		"78.46.1.0/24":  24940, // more specific: g1, g2, m2
		"93.115.0.0/16": 43289, // e1
		"10.0.0.0/8":    9999,  // m1 (middle only)
	})
}

func TestMapTorPrefixes(t *testing.T) {
	tor, unmapped, err := MapTorPrefixes(tinyConsensus(), tinyRIB(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(unmapped) != 1 || unmapped[0] != netip.MustParseAddr("192.0.2.1") {
		t.Fatalf("unmapped = %v", unmapped)
	}
	// Middle-only prefix 10/8 must be dropped; the three guard/exit
	// prefixes remain.
	if len(tor) != 3 {
		t.Fatalf("tor prefixes = %d: %v", len(tor), tor)
	}
	p24 := tor[netip.MustParsePrefix("78.46.1.0/24")]
	if p24 == nil || p24.Guards != 2 || p24.GuardExitRelays() != 2 || p24.Middles != 1 {
		t.Fatalf("78.46.1.0/24 = %+v", p24)
	}
	// b1 (78.47.0.1) falls into the /15, not the /24.
	p15 := tor[netip.MustParsePrefix("78.46.0.0/15")]
	if p15 == nil || p15.Guards != 1 || p15.Exits != 1 || p15.GuardExitRelays() != 1 {
		t.Fatalf("78.46.0.0/15 = %+v", p15)
	}
	if tor[netip.MustParsePrefix("93.115.0.0/16")].Exits != 1 {
		t.Fatal("93.115.0.0/16 missing exit")
	}
}

func TestMapTorPrefixesNil(t *testing.T) {
	if _, _, err := MapTorPrefixes(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestDatasetCounts(t *testing.T) {
	ds, err := Dataset(tinyConsensus(), tinyRIB(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Relays != 7 || ds.Guards != 4 || ds.Exits != 2 || ds.Both != 1 {
		t.Fatalf("counts: %+v", ds)
	}
	if ds.TorPrefixes != 3 || ds.OriginASes != 2 || ds.Unmapped != 1 {
		t.Fatalf("prefix stats: %+v", ds)
	}
	if ds.RelaysPerPrefix.Max != 2 || ds.RelaysPerPrefix.Min != 1 {
		t.Fatalf("relays/prefix: %+v", ds.RelaysPerPrefix)
	}
}

func TestConcentration(t *testing.T) {
	curve, ranking, err := Concentration(tinyConsensus(), tinyRIB(t))
	if err != nil {
		t.Fatal(err)
	}
	// AS 24940 hosts 3 guard/exit relays, AS 43289 hosts 1.
	if len(ranking) != 2 || ranking[0].ASN != 24940 || ranking[0].Relays != 3 || ranking[1].Relays != 1 {
		t.Fatalf("ranking = %v", ranking)
	}
	if len(curve) != 2 {
		t.Fatalf("curve = %v", curve)
	}
	if math.Abs(curve[0].PercentRelays-75) > 1e-9 {
		t.Fatalf("top-1 percent = %v", curve[0].PercentRelays)
	}
	if math.Abs(curve[1].PercentRelays-100) > 1e-9 {
		t.Fatalf("final percent = %v", curve[1].PercentRelays)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(curve); i++ {
		if curve[i].PercentRelays < curve[i-1].PercentRelays {
			t.Fatal("curve not monotone")
		}
	}
}

func TestCompromiseProb(t *testing.T) {
	if got := CompromiseProb(0.1, 1); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("P(0.1,1) = %v", got)
	}
	if got := CompromiseProb(0.1, 2); math.Abs(got-0.19) > 1e-12 {
		t.Fatalf("P(0.1,2) = %v", got)
	}
	if CompromiseProb(0, 10) != 0 || CompromiseProb(0.5, 0) != 0 {
		t.Fatal("degenerate cases wrong")
	}
	if CompromiseProb(1, 3) != 1 {
		t.Fatal("f=1 should give 1")
	}
	// Monotone in x.
	prev := 0.0
	for x := 1; x <= 30; x++ {
		p := CompromiseProb(0.05, x)
		if p <= prev || p >= 1 {
			t.Fatalf("not strictly increasing at x=%d: %v", x, p)
		}
		prev = p
	}
	// Multi-guard equals single formula with l*x.
	if MultiGuardCompromiseProb(0.05, 4, 3) != CompromiseProb(0.05, 12) {
		t.Fatal("multi-guard formula mismatch")
	}
	if MultiGuardCompromiseProb(0.05, 4, 0) != 0 {
		t.Fatal("l=0 should give 0")
	}
}

// ---- hand-crafted stream fixtures for churn analyses ----

var (
	torPfx  = netip.MustParsePrefix("78.46.0.0/15")
	bgPfx   = netip.MustParsePrefix("50.0.0.0/16")
	bgPfx2  = netip.MustParsePrefix("51.0.0.0/16")
	t0churn = time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC)
)

// craftStream builds a one-session stream with a known update sequence.
func craftStream(updates []bgpsim.UpdateEvent) *bgpsim.Stream {
	return &bgpsim.Stream{
		Start: t0churn,
		End:   t0churn.Add(30 * 24 * time.Hour),
		Sessions: []bgpsim.Session{
			bgpsim.NewSession("rrc00", 3320, []netip.Prefix{torPfx, bgPfx, bgPfx2}),
		},
		Initial: map[int]map[netip.Prefix][]bgp.ASN{
			0: {
				torPfx: {3320, 1299, 24940},
				bgPfx:  {3320, 174, 100},
				bgPfx2: {3320, 2914, 200},
			},
		},
		Updates: updates,
	}
}

func TestCountPathChangesDefinition(t *testing.T) {
	st := craftStream([]bgpsim.UpdateEvent{
		// Same AS set, different order: NOT a change.
		{Time: t0churn.Add(1 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 24940, 1299}},
		// Different AS set: change 1.
		{Time: t0churn.Add(2 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
		// Withdrawal: not a change by itself.
		{Time: t0churn.Add(3 * time.Hour), Session: 0, Prefix: torPfx},
		// Re-announcement with the same set as last announced: no change.
		{Time: t0churn.Add(4 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
		// Different set again: change 2.
		{Time: t0churn.Add(5 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 1299, 24940}},
	})
	counts := CountPathChanges(st, 0, FilterNone, DefaultTransferHeuristic())
	if counts[torPfx] != 2 {
		t.Fatalf("changes = %d, want 2", counts[torPfx])
	}
	if counts[bgPfx] != 0 || counts[bgPfx2] != 0 {
		t.Fatalf("background counts: %v", counts)
	}
}

func TestCountPathChangesGroundTruthFilter(t *testing.T) {
	st := craftStream([]bgpsim.UpdateEvent{
		{Time: t0churn.Add(1 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
		// A transfer announcement with a different path must be ignored.
		{Time: t0churn.Add(2 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 6939, 24940}, Transfer: true},
	})
	if got := CountPathChanges(st, 0, FilterGroundTruth, DefaultTransferHeuristic())[torPfx]; got != 1 {
		t.Fatalf("ground-truth filtered changes = %d, want 1", got)
	}
	if got := CountPathChanges(st, 0, FilterNone, DefaultTransferHeuristic())[torPfx]; got != 2 {
		t.Fatalf("unfiltered changes = %d, want 2", got)
	}
}

func TestTransferHeuristicDetectsBurst(t *testing.T) {
	base := t0churn.Add(10 * time.Hour)
	// A burst re-announcing all three prefixes within seconds (table
	// transfer), with paths that differ from the last known ones.
	st := craftStream([]bgpsim.UpdateEvent{
		{Time: base, Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 6939, 24940}},
		{Time: base.Add(time.Second), Session: 0, Prefix: bgPfx, Path: []bgp.ASN{3320, 6939, 100}},
		{Time: base.Add(2 * time.Second), Session: 0, Prefix: bgPfx2, Path: []bgp.ASN{3320, 6939, 200}},
		// An isolated genuine change hours later.
		{Time: base.Add(5 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 1299, 24940}},
	})
	counts := CountPathChanges(st, 0, FilterHeuristic, DefaultTransferHeuristic())
	// The burst is filtered; the later isolated update is compared
	// against the *initial* path {3320,1299,24940} — same set, so no
	// change at all.
	if counts[torPfx] != 0 {
		t.Fatalf("heuristic-filtered changes = %d, want 0", counts[torPfx])
	}
	// Without filtering the burst counts as changes.
	unfiltered := CountPathChanges(st, 0, FilterNone, DefaultTransferHeuristic())
	if unfiltered[torPfx] != 2 {
		t.Fatalf("unfiltered = %d, want 2", unfiltered[torPfx])
	}
}

func TestTransferHeuristicIgnoresSmallBursts(t *testing.T) {
	base := t0churn.Add(10 * time.Hour)
	// Only one of three prefixes updates: below MinFraction, so kept.
	st := craftStream([]bgpsim.UpdateEvent{
		{Time: base, Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 6939, 24940}},
	})
	counts := CountPathChanges(st, 0, FilterHeuristic, DefaultTransferHeuristic())
	if counts[torPfx] != 1 {
		t.Fatalf("small burst was filtered: %v", counts)
	}
}

func TestPathChangeRatios(t *testing.T) {
	st := craftStream([]bgpsim.UpdateEvent{
		// torPfx changes 4 times; background prefixes once each.
		{Time: t0churn.Add(1 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
		{Time: t0churn.Add(2 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 1299, 24940}},
		{Time: t0churn.Add(3 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
		{Time: t0churn.Add(4 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 6939, 24940}},
		{Time: t0churn.Add(5 * time.Hour), Session: 0, Prefix: bgPfx, Path: []bgp.ASN{3320, 2914, 100}},
		{Time: t0churn.Add(6 * time.Hour), Session: 0, Prefix: bgPfx2, Path: []bgp.ASN{3320, 174, 200}},
	})
	ratios, err := PathChangeRatios(st, map[netip.Prefix]bool{torPfx: true}, FilterNone, DefaultTransferHeuristic())
	if err != nil {
		t.Fatal(err)
	}
	if len(ratios) != 1 {
		t.Fatalf("ratios = %v", ratios)
	}
	r := ratios[0]
	if r.Changes != 4 || r.Median != 1 || r.Ratio != 4 {
		t.Fatalf("ratio sample = %+v", r)
	}
	ccdf, err := RatioCCDF(ratios)
	if err != nil {
		t.Fatal(err)
	}
	if len(ccdf) != 1 || ccdf[0].Percent != 100 {
		t.Fatalf("ccdf = %v", ccdf)
	}
}

func TestPathChangeRatiosSkipsZeroMedianSessions(t *testing.T) {
	st := craftStream(nil) // no updates at all: median 0
	if _, err := PathChangeRatios(st, map[netip.Prefix]bool{torPfx: true}, FilterNone, DefaultTransferHeuristic()); err == nil {
		t.Fatal("expected error when no session has a defined ratio")
	}
}

func TestPathChangeRatiosNoTorPrefixes(t *testing.T) {
	st := craftStream(nil)
	if _, err := PathChangeRatios(st, nil, FilterNone, DefaultTransferHeuristic()); err == nil {
		t.Fatal("empty Tor prefix set accepted")
	}
}

func TestExtraASesDwell(t *testing.T) {
	// Baseline {3320,1299,24940}. AS 174 appears for 10 hours (counts),
	// AS 6939 for 2 minutes (below the 5-minute threshold).
	st := craftStream([]bgpsim.UpdateEvent{
		{Time: t0churn.Add(1 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
		{Time: t0churn.Add(11 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 6939, 24940}},
		{Time: t0churn.Add(11*time.Hour + 2*time.Minute), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 1299, 24940}},
	})
	extra := ExtraASes(st, 0, torPfx, 5*time.Minute, FilterNone, DefaultTransferHeuristic())
	if len(extra) != 1 || extra[0] != 174 {
		t.Fatalf("extra = %v, want [174]", extra)
	}
	// With a zero threshold, 6939 qualifies too.
	extra = ExtraASes(st, 0, torPfx, 0, FilterNone, DefaultTransferHeuristic())
	if len(extra) != 2 {
		t.Fatalf("extra (no threshold) = %v", extra)
	}
	// Unknown prefix: nil.
	if got := ExtraASes(st, 0, netip.MustParsePrefix("1.0.0.0/8"), 0, FilterNone, DefaultTransferHeuristic()); got != nil {
		t.Fatalf("unknown prefix extra = %v", got)
	}
}

func TestExtraASesDwellAccumulatesAcrossVisits(t *testing.T) {
	// AS 174 appears twice for 3 minutes each: total 6 min >= 5 min.
	st := craftStream([]bgpsim.UpdateEvent{
		{Time: t0churn.Add(1 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
		{Time: t0churn.Add(1*time.Hour + 3*time.Minute), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 1299, 24940}},
		{Time: t0churn.Add(2 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
		{Time: t0churn.Add(2*time.Hour + 3*time.Minute), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 1299, 24940}},
	})
	extra := ExtraASes(st, 0, torPfx, 5*time.Minute, FilterNone, DefaultTransferHeuristic())
	if len(extra) != 1 || extra[0] != 174 {
		t.Fatalf("extra = %v, want [174] (dwell accumulates)", extra)
	}
}

func TestExtraASesWithdrawnTimeDoesNotCount(t *testing.T) {
	// Path withdrawn for 10 hours, then re-announced through 174 briefly.
	st := craftStream([]bgpsim.UpdateEvent{
		{Time: t0churn.Add(1 * time.Hour), Session: 0, Prefix: torPfx}, // withdraw
		{Time: t0churn.Add(11 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
		{Time: t0churn.Add(11*time.Hour + time.Minute), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 1299, 24940}},
	})
	extra := ExtraASes(st, 0, torPfx, 5*time.Minute, FilterNone, DefaultTransferHeuristic())
	if len(extra) != 0 {
		t.Fatalf("extra = %v, want none (1 minute dwell)", extra)
	}
}

func TestExtraASesPerTorPrefix(t *testing.T) {
	st := craftStream([]bgpsim.UpdateEvent{
		{Time: t0churn.Add(1 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
	})
	counts, err := ExtraASesPerTorPrefix(st, map[netip.Prefix]bool{torPfx: true}, 5*time.Minute, FilterNone, DefaultTransferHeuristic())
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 1 || counts[0].Extra != 1 {
		t.Fatalf("counts = %v", counts)
	}
	ccdf, err := ExtraASCCDF(counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ccdf) != 1 {
		t.Fatalf("ccdf = %v", ccdf)
	}
	if _, err := ExtraASesPerTorPrefix(st, nil, 0, FilterNone, DefaultTransferHeuristic()); err == nil {
		t.Fatal("empty Tor prefix set accepted")
	}
}
