package analysis

import (
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpsim"
)

// craftTwoSessionStream builds a two-session stream where AS 174 appears
// as an extra on both sessions and AS 6939 on only one.
func craftTwoSessionStream() *bgpsim.Stream {
	st := &bgpsim.Stream{
		Start: t0churn,
		End:   t0churn.Add(30 * 24 * time.Hour),
		Sessions: []bgpsim.Session{
			bgpsim.NewSession("rrc00", 3320, []netip.Prefix{torPfx}),
			bgpsim.NewSession("rrc01", 174, []netip.Prefix{torPfx}),
		},
		Initial: map[int]map[netip.Prefix][]bgp.ASN{
			0: {torPfx: {3320, 1299, 24940}},
			1: {torPfx: {174, 1299, 24940}},
		},
	}
	st.Updates = []bgpsim.UpdateEvent{
		// Session 0: 174 on path for 10h (extra), 6939 for 10h (extra).
		{Time: t0churn.Add(1 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
		{Time: t0churn.Add(11 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 6939, 24940}},
		{Time: t0churn.Add(21 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 1299, 24940}},
		// Session 1: 3320 on path for 10h (extra on this session).
		{Time: t0churn.Add(1 * time.Hour), Session: 1, Prefix: torPfx, Path: []bgp.ASN{174, 3320, 24940}},
		{Time: t0churn.Add(11 * time.Hour), Session: 1, Prefix: torPfx, Path: []bgp.ASN{174, 1299, 24940}},
	}
	return st
}

func TestExtraASSessionCounts(t *testing.T) {
	st := craftTwoSessionStream()
	counts, err := ExtraASSessionCounts(st, map[netip.Prefix]bool{torPfx: true},
		5*time.Minute, FilterNone, DefaultTransferHeuristic())
	if err != nil {
		t.Fatal(err)
	}
	set := counts[torPfx]
	if set[174] != 1 || set[6939] != 1 || set[3320] != 1 {
		t.Fatalf("counts = %v", set)
	}
	if _, err := ExtraASSessionCounts(st, nil, 0, FilterNone, DefaultTransferHeuristic()); err == nil {
		t.Fatal("empty prefix set accepted")
	}
}

func TestExtraASSetsMinSessions(t *testing.T) {
	st := craftTwoSessionStream()
	tor := map[netip.Prefix]bool{torPfx: true}
	// Union (minSessions=1): three extras total.
	all, err := ExtraASSets(st, tor, 5*time.Minute, 1, FilterNone, DefaultTransferHeuristic())
	if err != nil {
		t.Fatal(err)
	}
	if len(all[torPfx]) != 3 {
		t.Fatalf("union = %v", all[torPfx])
	}
	// minSessions=2: no AS qualified on both sessions.
	common, err := ExtraASSets(st, tor, 5*time.Minute, 2, FilterNone, DefaultTransferHeuristic())
	if err != nil {
		t.Fatal(err)
	}
	if len(common[torPfx]) != 0 {
		t.Fatalf("common = %v", common[torPfx])
	}
}

func TestExtraASesPerTorPrefixPerSession(t *testing.T) {
	st := craftTwoSessionStream()
	counts, err := ExtraASesPerTorPrefix(st, map[netip.Prefix]bool{torPfx: true},
		5*time.Minute, FilterNone, DefaultTransferHeuristic())
	if err != nil {
		t.Fatal(err)
	}
	// One sample per (prefix, session) pair: two samples.
	if len(counts) != 2 {
		t.Fatalf("samples = %v", counts)
	}
	bySession := map[int]int{}
	for _, c := range counts {
		bySession[c.Session] = c.Extra
	}
	if bySession[0] != 2 || bySession[1] != 1 {
		t.Fatalf("per-session extras = %v", bySession)
	}
}

func TestASDwellTimes(t *testing.T) {
	st := craftStream([]bgpsim.UpdateEvent{
		{Time: t0churn.Add(1 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
		{Time: t0churn.Add(3 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 1299, 24940}},
	})
	dwell := ASDwellTimes(st, 0, torPfx, FilterNone, DefaultTransferHeuristic())
	if got := dwell[174]; got != 2*time.Hour {
		t.Fatalf("dwell[174] = %v, want 2h", got)
	}
	// Baseline ASes never accrue dwell.
	if _, ok := dwell[1299]; ok {
		t.Fatal("baseline AS accrued dwell")
	}
	if got := ASDwellTimes(st, 0, netip.MustParsePrefix("9.0.0.0/8"), FilterNone, DefaultTransferHeuristic()); got != nil {
		t.Fatalf("unknown prefix dwell = %v", got)
	}
}

func TestTransientASes(t *testing.T) {
	// AS 174: 2 minutes (transient). AS 6939: 10 hours (not transient).
	st := craftStream([]bgpsim.UpdateEvent{
		{Time: t0churn.Add(1 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 174, 24940}},
		{Time: t0churn.Add(1*time.Hour + 2*time.Minute), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 6939, 24940}},
		{Time: t0churn.Add(11 * time.Hour), Session: 0, Prefix: torPfx, Path: []bgp.ASN{3320, 1299, 24940}},
	})
	tr, err := TransientASes(st, map[netip.Prefix]bool{torPfx: true},
		5*time.Minute, FilterNone, DefaultTransferHeuristic())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 1 {
		t.Fatalf("samples = %v", tr)
	}
	if tr[0].Transient != 1 {
		t.Fatalf("transient = %d, want 1 (only AS 174)", tr[0].Transient)
	}
	if _, err := TransientASes(st, nil, 0, FilterNone, DefaultTransferHeuristic()); err == nil {
		t.Fatal("empty prefix set accepted")
	}
}
