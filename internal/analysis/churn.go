package analysis

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpsim"
	"quicksand/internal/stats"
)

// ResetFilter selects how routing-table-transfer updates (the artificial
// churn following a session reset) are removed before counting path
// changes, following Zhang et al. ("Identifying BGP routing table
// transfer", the technique the paper cites for the same purpose).
type ResetFilter int

const (
	// FilterNone counts every update (biased; for comparison only).
	FilterNone ResetFilter = iota
	// FilterGroundTruth uses the simulator's Transfer flag — available
	// only for in-memory streams, like having perfect reset knowledge.
	FilterGroundTruth
	// FilterHeuristic detects transfers as bursts of announcements
	// covering a large share of a session's table within a short window,
	// which is what must be done on real MRT archives.
	FilterHeuristic
)

// TransferHeuristic tunes FilterHeuristic.
type TransferHeuristic struct {
	// Gap chains updates into a burst while consecutive inter-arrival
	// times stay at or below it.
	Gap time.Duration
	// MinFraction is the share of the session's known prefixes a burst
	// must re-announce to be classified as a table transfer.
	MinFraction float64
}

// DefaultTransferHeuristic matches the simulator's reset behaviour:
// transfers re-announce the whole table within seconds.
func DefaultTransferHeuristic() TransferHeuristic {
	return TransferHeuristic{Gap: 5 * time.Second, MinFraction: 0.5}
}

// detectTransferBursts returns, for session si, the set of update indices
// (into st.Updates) classified as table-transfer announcements by the
// burst heuristic.
func detectTransferBursts(st *bgpsim.Stream, si int, h TransferHeuristic) map[int]bool {
	var idxs []int
	for i := range st.Updates {
		if st.Updates[i].Session == si {
			idxs = append(idxs, i)
		}
	}
	known := len(st.PrefixesOnSession(si))
	out := make(map[int]bool)
	if known == 0 {
		return out
	}
	start := 0
	for start < len(idxs) {
		end := start
		prefixes := map[netip.Prefix]bool{st.Updates[idxs[start]].Prefix: true}
		for end+1 < len(idxs) {
			cur := st.Updates[idxs[end]].Time
			next := st.Updates[idxs[end+1]].Time
			if next.Sub(cur) > h.Gap {
				break
			}
			end++
			prefixes[st.Updates[idxs[end]].Prefix] = true
		}
		if float64(len(prefixes)) >= h.MinFraction*float64(known) {
			for k := start; k <= end; k++ {
				out[idxs[k]] = true
			}
		}
		start = end + 1
	}
	return out
}

// isTransfer builds the per-update transfer predicate for a session under
// the chosen filter.
func isTransfer(st *bgpsim.Stream, si int, filter ResetFilter, h TransferHeuristic) func(i int) bool {
	switch filter {
	case FilterGroundTruth:
		return func(i int) bool { return st.Updates[i].Transfer }
	case FilterHeuristic:
		bursts := detectTransferBursts(st, si, h)
		return func(i int) bool { return bursts[i] }
	default:
		return func(int) bool { return false }
	}
}

func asSet(path []bgp.ASN) map[bgp.ASN]bool {
	s := make(map[bgp.ASN]bool, len(path))
	for _, a := range path {
		s[a] = true
	}
	return s
}

func sameASSet(a, b map[bgp.ASN]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// CountPathChanges counts, for every prefix on session si, the paper's
// path changes: transitions between subsequently announced AS paths whose
// AS *sets* differ. Withdrawals do not count by themselves; the next
// announcement is compared against the last announced path. Transfer
// updates are excluded per the filter.
func CountPathChanges(st *bgpsim.Stream, si int, filter ResetFilter, h TransferHeuristic) map[netip.Prefix]int {
	counts := make(map[netip.Prefix]int)
	last := make(map[netip.Prefix]map[bgp.ASN]bool)
	for p, path := range st.Initial[si] {
		counts[p] = 0
		last[p] = asSet(path)
	}
	transfer := isTransfer(st, si, filter, h)
	for i := range st.Updates {
		u := &st.Updates[i]
		if u.Session != si || u.Withdraw() {
			continue
		}
		if transfer(i) {
			continue
		}
		if _, seen := counts[u.Prefix]; !seen {
			counts[u.Prefix] = 0
		}
		set := asSet(u.Path)
		if prev, ok := last[u.Prefix]; ok && !sameASSet(prev, set) {
			counts[u.Prefix]++
		}
		last[u.Prefix] = set
	}
	return counts
}

// ChangeRatio is one Figure-3-left sample: a Tor prefix on a session,
// with its path-change count divided by the session's median count over
// all prefixes.
type ChangeRatio struct {
	Session int
	Prefix  netip.Prefix
	Changes int
	Median  float64
	Ratio   float64
}

// PathChangeRatios computes the Figure 3 (left) samples: for every
// session, the per-prefix change counts, the session median over ALL
// prefixes (Tor and background alike), and the ratio for each Tor prefix
// the session carries. Sessions whose median is zero are skipped (the
// ratio is undefined there), mirroring how the paper normalises per
// session.
func PathChangeRatios(st *bgpsim.Stream, torPrefixes map[netip.Prefix]bool, filter ResetFilter, h TransferHeuristic) ([]ChangeRatio, error) {
	if len(torPrefixes) == 0 {
		return nil, fmt.Errorf("analysis: no Tor prefixes given")
	}
	var out []ChangeRatio
	for si := range st.Sessions {
		counts := CountPathChanges(st, si, filter, h)
		if len(counts) == 0 {
			continue
		}
		all := make([]float64, 0, len(counts))
		for _, c := range counts {
			all = append(all, float64(c))
		}
		med, err := stats.Median(all)
		if err != nil || med == 0 {
			continue
		}
		for p, c := range counts {
			if !torPrefixes[p] {
				continue
			}
			out = append(out, ChangeRatio{
				Session: si, Prefix: p, Changes: c, Median: med,
				Ratio: float64(c) / med,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: no (Tor prefix, session) samples with defined ratio")
	}
	return out, nil
}

// RatioCCDF renders change ratios as the paper's CCDF.
func RatioCCDF(ratios []ChangeRatio) ([]stats.CCDFPoint, error) {
	xs := make([]float64, len(ratios))
	for i, r := range ratios {
		xs[i] = r.Ratio
	}
	return stats.CCDF(xs)
}

// ExtraASes computes, for prefix p on session si, the set of ASes that
// appeared on the announced path during the stream but (a) are not on the
// baseline first path and (b) were on-path for at least minDwell in
// total. The minimum dwell implements the paper's "we did not consider an
// AS crossed for less than 5 minutes" rule. Transfer updates are excluded
// per the filter.
func ExtraASes(st *bgpsim.Stream, si int, p netip.Prefix, minDwell time.Duration, filter ResetFilter, h TransferHeuristic) []bgp.ASN {
	transfer := isTransfer(st, si, filter, h)
	var idxs []int
	for i := range st.Updates {
		if st.Updates[i].Session == si && st.Updates[i].Prefix == p {
			idxs = append(idxs, i)
		}
	}
	return extraASesIndexed(st, si, p, idxs, transfer, minDwell)
}

// dwellTimesIndexed accumulates, for one (session, prefix), the total
// on-path time of every AS that is NOT on the baseline first path; idxs
// must be ascending indices into st.Updates restricted to that pair.
func dwellTimesIndexed(st *bgpsim.Stream, si int, p netip.Prefix, idxs []int, transfer func(int) bool) map[bgp.ASN]time.Duration {
	baselinePath, ok := st.Initial[si][p]
	if !ok {
		return nil
	}
	baseline := asSet(baselinePath)
	dwell := make(map[bgp.ASN]time.Duration)
	cur := baselinePath
	curStart := st.Start
	account := func(until time.Time) {
		if cur == nil || until.Before(curStart) {
			return
		}
		d := until.Sub(curStart)
		for _, a := range cur {
			if !baseline[a] {
				dwell[a] += d
			}
		}
	}
	for _, i := range idxs {
		u := &st.Updates[i]
		if transfer(i) {
			continue
		}
		account(u.Time)
		cur = u.Path
		curStart = u.Time
	}
	account(st.End)
	return dwell
}

// ASDwellTimes returns the per-AS on-path durations of every non-baseline
// AS for prefix p on session si. It is the raw material of both the
// Figure 3 (right) exposure metric (dwell >= 5 min) and the convergence
// transient analysis (dwell < 5 min).
func ASDwellTimes(st *bgpsim.Stream, si int, p netip.Prefix, filter ResetFilter, h TransferHeuristic) map[bgp.ASN]time.Duration {
	transfer := isTransfer(st, si, filter, h)
	var idxs []int
	for i := range st.Updates {
		if st.Updates[i].Session == si && st.Updates[i].Prefix == p {
			idxs = append(idxs, i)
		}
	}
	return dwellTimesIndexed(st, si, p, idxs, transfer)
}

// extraASesIndexed filters dwellTimesIndexed by the minimum dwell.
func extraASesIndexed(st *bgpsim.Stream, si int, p netip.Prefix, idxs []int, transfer func(int) bool, minDwell time.Duration) []bgp.ASN {
	dwell := dwellTimesIndexed(st, si, p, idxs, transfer)
	var out []bgp.ASN
	for a, d := range dwell {
		if d >= minDwell {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TransientASCount is one convergence-exposure sample: ASes that appeared
// on the path to a Tor prefix for LESS than the threshold — too briefly
// for traffic analysis, but long enough to learn that the client talks to
// the Tor network at all (§3.1's route-convergence observation; the
// Harvard case shows mere Tor usage can be incriminating).
type TransientASCount struct {
	Prefix    netip.Prefix
	Session   int
	Transient int
}

// TransientASes computes, per (Tor prefix, session), the number of
// non-baseline ASes whose total dwell stayed below maxDwell — the
// convergence-only observers.
func TransientASes(st *bgpsim.Stream, torPrefixes map[netip.Prefix]bool, maxDwell time.Duration, filter ResetFilter, h TransferHeuristic) ([]TransientASCount, error) {
	if len(torPrefixes) == 0 {
		return nil, fmt.Errorf("analysis: no Tor prefixes given")
	}
	var out []TransientASCount
	for si := range st.Sessions {
		transfer := isTransfer(st, si, filter, h)
		byPrefix := make(map[netip.Prefix][]int)
		for i := range st.Updates {
			u := &st.Updates[i]
			if u.Session == si && torPrefixes[u.Prefix] {
				byPrefix[u.Prefix] = append(byPrefix[u.Prefix], i)
			}
		}
		for p := range torPrefixes {
			if _, ok := st.Initial[si][p]; !ok {
				continue
			}
			dwell := dwellTimesIndexed(st, si, p, byPrefix[p], transfer)
			n := 0
			for _, d := range dwell {
				if d > 0 && d < maxDwell {
					n++
				}
			}
			out = append(out, TransientASCount{Prefix: p, Session: si, Transient: n})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: no Tor prefix visible on any session")
	}
	return out, nil
}

// ExtraASCount is one Figure-3-right sample: for one Tor prefix on one
// collector session, the number of extra ASes that saw its traffic for at
// least the dwell threshold.
type ExtraASCount struct {
	Prefix  netip.Prefix
	Session int
	Extra   int
}

// ExtraASSessionCounts computes, per Tor prefix, how many sessions each
// qualifying extra AS appeared on. ASes seen across many vantage points
// sit near the destination (on the shared tail of all paths) — the
// dynamics a client should account for regardless of where it connects
// from — while single-session extras are vantage-specific.
func ExtraASSessionCounts(st *bgpsim.Stream, torPrefixes map[netip.Prefix]bool, minDwell time.Duration, filter ResetFilter, h TransferHeuristic) (map[netip.Prefix]map[bgp.ASN]int, error) {
	if len(torPrefixes) == 0 {
		return nil, fmt.Errorf("analysis: no Tor prefixes given")
	}
	counts := make(map[netip.Prefix]map[bgp.ASN]int)
	for si := range st.Sessions {
		// Build the transfer predicate and per-prefix update index once
		// per session; the naive per-prefix rescan is quadratic.
		transfer := isTransfer(st, si, filter, h)
		byPrefix := make(map[netip.Prefix][]int)
		for i := range st.Updates {
			u := &st.Updates[i]
			if u.Session == si && torPrefixes[u.Prefix] {
				byPrefix[u.Prefix] = append(byPrefix[u.Prefix], i)
			}
		}
		for p := range torPrefixes {
			if _, ok := st.Initial[si][p]; !ok {
				continue
			}
			if counts[p] == nil {
				counts[p] = make(map[bgp.ASN]int)
			}
			for _, a := range extraASesIndexed(st, si, p, byPrefix[p], transfer, minDwell) {
				counts[p][a]++
			}
		}
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("analysis: no Tor prefix visible on any session")
	}
	return counts, nil
}

// ExtraASSets returns, per Tor prefix, the extra ASes that qualified on
// at least minSessions sessions (use 1 for the full union — the §5 "list
// of ASes used to reach each destination prefix in the last month").
func ExtraASSets(st *bgpsim.Stream, torPrefixes map[netip.Prefix]bool, minDwell time.Duration, minSessions int, filter ResetFilter, h TransferHeuristic) (map[netip.Prefix][]bgp.ASN, error) {
	counts, err := ExtraASSessionCounts(st, torPrefixes, minDwell, filter, h)
	if err != nil {
		return nil, err
	}
	if minSessions < 1 {
		minSessions = 1
	}
	out := make(map[netip.Prefix][]bgp.ASN, len(counts))
	for p, set := range counts {
		var ases []bgp.ASN
		for a, n := range set {
			if n >= minSessions {
				ases = append(ases, a)
			}
		}
		sort.Slice(ases, func(i, j int) bool { return ases[i] < ases[j] })
		out[p] = ases
	}
	return out, nil
}

// ExtraASesPerTorPrefix computes the Figure 3 (right) samples: one sample
// per (Tor prefix, session) pair, counting the extra ASes that session
// saw on its paths to the prefix over the window. This per-vantage view
// matches the left figure's per-session normalisation and the paper's
// "in 50% of the cases" phrasing.
func ExtraASesPerTorPrefix(st *bgpsim.Stream, torPrefixes map[netip.Prefix]bool, minDwell time.Duration, filter ResetFilter, h TransferHeuristic) ([]ExtraASCount, error) {
	if len(torPrefixes) == 0 {
		return nil, fmt.Errorf("analysis: no Tor prefixes given")
	}
	var out []ExtraASCount
	for si := range st.Sessions {
		transfer := isTransfer(st, si, filter, h)
		byPrefix := make(map[netip.Prefix][]int)
		for i := range st.Updates {
			u := &st.Updates[i]
			if u.Session == si && torPrefixes[u.Prefix] {
				byPrefix[u.Prefix] = append(byPrefix[u.Prefix], i)
			}
		}
		for p := range torPrefixes {
			if _, ok := st.Initial[si][p]; !ok {
				continue
			}
			extra := extraASesIndexed(st, si, p, byPrefix[p], transfer, minDwell)
			out = append(out, ExtraASCount{Prefix: p, Session: si, Extra: len(extra)})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: no Tor prefix visible on any session")
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		if out[i].Prefix.Addr() != out[j].Prefix.Addr() {
			return out[i].Prefix.Addr().Less(out[j].Prefix.Addr())
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out, nil
}

// ExtraASCCDF renders extra-AS counts as the paper's CCDF.
func ExtraASCCDF(counts []ExtraASCount) ([]stats.CCDFPoint, error) {
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c.Extra)
	}
	return stats.CCDF(xs)
}
