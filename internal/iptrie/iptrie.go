// Package iptrie implements a binary radix trie over IPv4 prefixes with
// longest-prefix-match lookup.
//
// The paper maps every Tor relay IP to "the most specific BGP prefix that
// contained it" (its Tor prefix); this trie is the substrate for that
// mapping and for the per-AS routing tables in the BGP simulator. The
// zero value of Trie is ready to use.
package iptrie

import (
	"fmt"
	"net/netip"
)

// node is one bit-level trie node. Prefixes are stored at the node whose
// depth equals the prefix length, following the address bits from the most
// significant bit down.
type node[V any] struct {
	child [2]*node[V]
	has   bool
	val   V
}

// Trie is a binary radix trie mapping IPv4 prefixes to values of type V.
// The zero value is an empty trie. Trie is not safe for concurrent
// mutation; concurrent read-only access is safe.
type Trie[V any] struct {
	root *node[V]
	size int
}

// bitAt returns bit i (0 = most significant) of the IPv4 address a.
func bitAt(a netip.Addr, i int) int {
	b := a.As4()
	return int(b[i/8]>>(7-i%8)) & 1
}

func checkPrefix(p netip.Prefix) error {
	if !p.IsValid() {
		return fmt.Errorf("iptrie: invalid prefix %v", p)
	}
	if !p.Addr().Is4() {
		return fmt.Errorf("iptrie: prefix %v is not IPv4", p)
	}
	return nil
}

// Insert associates val with prefix p, replacing any previous value. The
// prefix is canonicalized (masked) before insertion, so 10.1.2.3/8 and
// 10.0.0.0/8 are the same key. It reports whether the key was newly added.
func (t *Trie[V]) Insert(p netip.Prefix, val V) (added bool, err error) {
	if err := checkPrefix(p); err != nil {
		return false, err
	}
	p = p.Masked()
	if t.root == nil {
		t.root = &node[V]{}
	}
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(p.Addr(), i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	added = !n.has
	n.has = true
	n.val = val
	if added {
		t.size++
	}
	return added, nil
}

// Delete removes prefix p from the trie, reporting whether it was present.
// Interior nodes are left in place (the trie never shrinks structurally);
// this is fine for the workloads here, where deletions are rare relative
// to lookups.
func (t *Trie[V]) Delete(p netip.Prefix) (removed bool, err error) {
	if err := checkPrefix(p); err != nil {
		return false, err
	}
	p = p.Masked()
	n := t.root
	for i := 0; n != nil && i < p.Bits(); i++ {
		n = n.child[bitAt(p.Addr(), i)]
	}
	if n == nil || !n.has {
		return false, nil
	}
	var zero V
	n.has = false
	n.val = zero
	t.size--
	return true, nil
}

// Get returns the value stored at exactly prefix p.
func (t *Trie[V]) Get(p netip.Prefix) (val V, ok bool) {
	var zero V
	if err := checkPrefix(p); err != nil {
		return zero, false
	}
	p = p.Masked()
	n := t.root
	for i := 0; n != nil && i < p.Bits(); i++ {
		n = n.child[bitAt(p.Addr(), i)]
	}
	if n == nil || !n.has {
		return zero, false
	}
	return n.val, true
}

// LongestMatch returns the most specific stored prefix containing addr,
// along with its value. ok is false when no stored prefix covers addr.
func (t *Trie[V]) LongestMatch(addr netip.Addr) (p netip.Prefix, val V, ok bool) {
	var zero V
	if !addr.Is4() {
		return netip.Prefix{}, zero, false
	}
	n := t.root
	bestLen := -1
	var bestVal V
	for i := 0; n != nil; i++ {
		if n.has {
			bestLen = i
			bestVal = n.val
		}
		if i == 32 {
			break
		}
		n = n.child[bitAt(addr, i)]
	}
	if bestLen < 0 {
		return netip.Prefix{}, zero, false
	}
	bp, err := addr.Prefix(bestLen)
	if err != nil {
		return netip.Prefix{}, zero, false
	}
	return bp, bestVal, true
}

// Matches returns every stored (prefix, value) pair that covers addr, from
// least to most specific. The slice is nil when nothing matches.
func (t *Trie[V]) Matches(addr netip.Addr) []Entry[V] {
	if !addr.Is4() {
		return nil
	}
	var out []Entry[V]
	n := t.root
	for i := 0; n != nil; i++ {
		if n.has {
			p, err := addr.Prefix(i)
			if err != nil {
				break
			}
			out = append(out, Entry[V]{Prefix: p, Value: n.val})
		}
		if i == 32 {
			break
		}
		n = n.child[bitAt(addr, i)]
	}
	return out
}

// Entry is a stored (prefix, value) pair, as yielded by Walk and Matches.
type Entry[V any] struct {
	Prefix netip.Prefix
	Value  V
}

// Len returns the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.size }

// Walk visits every stored (prefix, value) pair in lexicographic bit
// order (which sorts by address, then by prefix length at equal address
// bits, shorter first). Walk stops early and returns false if fn returns
// false; otherwise it returns true.
func (t *Trie[V]) Walk(fn func(p netip.Prefix, val V) bool) bool {
	var rec func(n *node[V], bits [4]byte, depth int) bool
	rec = func(n *node[V], bits [4]byte, depth int) bool {
		if n == nil {
			return true
		}
		if n.has {
			addr := netip.AddrFrom4(bits)
			p, err := addr.Prefix(depth)
			if err == nil && !fn(p, n.val) {
				return false
			}
		}
		if depth == 32 {
			return true
		}
		if !rec(n.child[0], bits, depth+1) {
			return false
		}
		b1 := bits
		b1[depth/8] |= 1 << (7 - depth%8)
		return rec(n.child[1], b1, depth+1)
	}
	return rec(t.root, [4]byte{}, 0)
}

// Entries returns all stored pairs in Walk order.
func (t *Trie[V]) Entries() []Entry[V] {
	out := make([]Entry[V], 0, t.size)
	t.Walk(func(p netip.Prefix, v V) bool {
		out = append(out, Entry[V]{Prefix: p, Value: v})
		return true
	})
	return out
}
