package iptrie

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestInsertGet(t *testing.T) {
	var tr Trie[string]
	added, err := tr.Insert(mustPrefix(t, "10.0.0.0/8"), "ten")
	if err != nil || !added {
		t.Fatalf("Insert: added=%v err=%v", added, err)
	}
	v, ok := tr.Get(mustPrefix(t, "10.0.0.0/8"))
	if !ok || v != "ten" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInsertReplaces(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), 1)
	added, err := tr.Insert(mustPrefix(t, "10.0.0.0/8"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Fatal("re-insert reported added=true")
	}
	v, _ := tr.Get(mustPrefix(t, "10.0.0.0/8"))
	if v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestInsertCanonicalizes(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mustPrefix(t, "10.1.2.3/8"), 7)
	v, ok := tr.Get(mustPrefix(t, "10.0.0.0/8"))
	if !ok || v != 7 {
		t.Fatalf("canonicalized Get = %d, %v", v, ok)
	}
}

func TestInsertRejectsIPv6(t *testing.T) {
	var tr Trie[int]
	p, _ := netip.ParsePrefix("2001:db8::/32")
	if _, err := tr.Insert(p, 1); err == nil {
		t.Fatal("expected error for IPv6 prefix")
	}
	if _, err := tr.Insert(netip.Prefix{}, 1); err == nil {
		t.Fatal("expected error for zero prefix")
	}
}

func TestLongestMatchPicksMostSpecific(t *testing.T) {
	var tr Trie[string]
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), "eight")
	tr.Insert(mustPrefix(t, "10.1.0.0/16"), "sixteen")
	tr.Insert(mustPrefix(t, "10.1.2.0/24"), "twentyfour")

	p, v, ok := tr.LongestMatch(mustAddr(t, "10.1.2.3"))
	if !ok || v != "twentyfour" || p != mustPrefix(t, "10.1.2.0/24") {
		t.Fatalf("got %v %q %v", p, v, ok)
	}
	p, v, ok = tr.LongestMatch(mustAddr(t, "10.1.9.9"))
	if !ok || v != "sixteen" || p != mustPrefix(t, "10.1.0.0/16") {
		t.Fatalf("got %v %q %v", p, v, ok)
	}
	p, v, ok = tr.LongestMatch(mustAddr(t, "10.200.0.1"))
	if !ok || v != "eight" || p != mustPrefix(t, "10.0.0.0/8") {
		t.Fatalf("got %v %q %v", p, v, ok)
	}
	_, _, ok = tr.LongestMatch(mustAddr(t, "11.0.0.1"))
	if ok {
		t.Fatal("unexpected match for 11.0.0.1")
	}
}

func TestLongestMatchHostRoute(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mustPrefix(t, "192.0.2.55/32"), 1)
	_, v, ok := tr.LongestMatch(mustAddr(t, "192.0.2.55"))
	if !ok || v != 1 {
		t.Fatalf("host route lookup failed: %v %v", v, ok)
	}
	_, _, ok = tr.LongestMatch(mustAddr(t, "192.0.2.54"))
	if ok {
		t.Fatal("unexpected match for adjacent host")
	}
}

func TestDefaultRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(mustPrefix(t, "0.0.0.0/0"), "default")
	p, v, ok := tr.LongestMatch(mustAddr(t, "203.0.113.9"))
	if !ok || v != "default" || p.Bits() != 0 {
		t.Fatalf("default route: %v %q %v", p, v, ok)
	}
}

func TestLongestMatchIPv6Addr(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mustPrefix(t, "0.0.0.0/0"), 1)
	a, _ := netip.ParseAddr("2001:db8::1")
	if _, _, ok := tr.LongestMatch(a); ok {
		t.Fatal("IPv6 address should not match")
	}
}

func TestDelete(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), 1)
	tr.Insert(mustPrefix(t, "10.1.0.0/16"), 2)
	removed, err := tr.Delete(mustPrefix(t, "10.1.0.0/16"))
	if err != nil || !removed {
		t.Fatalf("Delete: %v %v", removed, err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	_, v, ok := tr.LongestMatch(mustAddr(t, "10.1.2.3"))
	if !ok || v != 1 {
		t.Fatalf("after delete, match = %v %v, want /8", v, ok)
	}
	removed, err = tr.Delete(mustPrefix(t, "10.1.0.0/16"))
	if err != nil || removed {
		t.Fatalf("double delete: %v %v", removed, err)
	}
}

func TestMatches(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mustPrefix(t, "0.0.0.0/0"), 0)
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), 8)
	tr.Insert(mustPrefix(t, "10.1.2.0/24"), 24)
	ms := tr.Matches(mustAddr(t, "10.1.2.3"))
	if len(ms) != 3 {
		t.Fatalf("got %d matches, want 3: %v", len(ms), ms)
	}
	if ms[0].Value != 0 || ms[1].Value != 8 || ms[2].Value != 24 {
		t.Fatalf("matches out of order: %v", ms)
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	var tr Trie[int]
	for i, s := range []string{"10.0.0.0/8", "10.0.0.0/16", "192.168.0.0/16", "0.0.0.0/0"} {
		tr.Insert(mustPrefix(t, s), i)
	}
	var seen []netip.Prefix
	tr.Walk(func(p netip.Prefix, _ int) bool {
		seen = append(seen, p)
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("walked %d, want 4", len(seen))
	}
	if seen[0] != mustPrefix(t, "0.0.0.0/0") || seen[1] != mustPrefix(t, "10.0.0.0/8") {
		t.Fatalf("walk order wrong: %v", seen)
	}
	// Early stop.
	count := 0
	done := tr.Walk(func(netip.Prefix, int) bool {
		count++
		return count < 2
	})
	if done || count != 2 {
		t.Fatalf("early stop: done=%v count=%d", done, count)
	}
}

func TestEntriesRoundTrip(t *testing.T) {
	var tr Trie[int]
	want := map[netip.Prefix]int{
		mustPrefix(t, "10.0.0.0/8"):     1,
		mustPrefix(t, "172.16.0.0/12"):  2,
		mustPrefix(t, "192.168.1.0/24"): 3,
	}
	for p, v := range want {
		tr.Insert(p, v)
	}
	got := tr.Entries()
	if len(got) != len(want) {
		t.Fatalf("Entries len = %d, want %d", len(got), len(want))
	}
	for _, e := range got {
		if want[e.Prefix] != e.Value {
			t.Fatalf("entry %v = %d, want %d", e.Prefix, e.Value, want[e.Prefix])
		}
	}
}

// referenceLPM is a brute-force longest-prefix match used as the oracle for
// the property test.
func referenceLPM(prefixes map[netip.Prefix]int, addr netip.Addr) (netip.Prefix, int, bool) {
	best := netip.Prefix{}
	bestVal := 0
	found := false
	for p, v := range prefixes {
		if p.Contains(addr) && (!found || p.Bits() > best.Bits()) {
			best, bestVal, found = p, v, true
		}
	}
	return best, bestVal, found
}

// Property: trie LPM agrees with brute-force scan on random prefix sets.
func TestLongestMatchAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		var tr Trie[int]
		prefixes := make(map[netip.Prefix]int)
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(8)), byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(256))})
			bits := rng.Intn(33)
			p, err := addr.Prefix(bits)
			if err != nil {
				t.Fatal(err)
			}
			prefixes[p] = i
			tr.Insert(p, i)
		}
		// Re-insert to fix value collisions on canonicalized duplicates:
		// map wins last, so replay map contents.
		for p, v := range prefixes {
			tr.Insert(p, v)
		}
		if tr.Len() != len(prefixes) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(prefixes))
		}
		for q := 0; q < 200; q++ {
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(8)), byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(256))})
			wp, _, wok := referenceLPM(prefixes, addr)
			gp, _, gok := tr.LongestMatch(addr)
			if wok != gok {
				t.Fatalf("addr %v: ok %v vs reference %v", addr, gok, wok)
			}
			if wok && gp.Bits() != wp.Bits() {
				t.Fatalf("addr %v: got /%d, reference /%d", addr, gp.Bits(), wp.Bits())
			}
		}
	}
}

// Property (testing/quick): inserting any valid prefix makes Get find it.
func TestInsertThenGetQuick(t *testing.T) {
	f := func(a, b, c, d byte, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		addr := netip.AddrFrom4([4]byte{a, b, c, d})
		p, err := addr.Prefix(bits)
		if err != nil {
			return false
		}
		var tr Trie[byte]
		if _, err := tr.Insert(p, a); err != nil {
			return false
		}
		v, ok := tr.Get(p)
		return ok && v == a && tr.Len() == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLongestMatch(b *testing.B) {
	var tr Trie[int]
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		addr := netip.AddrFrom4([4]byte{byte(rng.Intn(224)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
		p, _ := addr.Prefix(8 + rng.Intn(17))
		tr.Insert(p, i)
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{byte(rng.Intn(224)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LongestMatch(addrs[i%len(addrs)])
	}
}
