package bgpsim

import (
	"testing"

	"quicksand/internal/obs"
)

// BenchmarkRunObserved measures the churn simulator with instrumentation
// disabled (nil Metrics — the default for every batch experiment) and
// enabled (a live registry, as under -metrics-addr). The off case is the
// overhead proof for the disabled path; the two sub-benchmarks together
// bound the cost of the event-loop counters.
func BenchmarkRunObserved(b *testing.B) {
	g, origins := testWorld(b)
	s, err := New(g, origins)
	if err != nil {
		b.Fatal(err)
	}
	for _, bm := range []struct {
		name string
		met  *Metrics
	}{
		{"off", nil},
		{"on", NewMetrics(obs.NewRegistry())},
	} {
		b.Run(bm.name, func(b *testing.B) {
			cfg := testConfig()
			cfg.Metrics = bm.met
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
