// Package bgpsim is an event-driven interdomain routing simulator. It
// plays a month of BGP churn — link failures and recoveries, targeted
// flapping episodes, rare policy shifts, and collector session resets —
// over a Gao-Rexford topology and records the resulting update streams as
// seen from a set of route-collector sessions, in the same shape (session,
// time, prefix, AS-PATH) the paper extracts from the RIPE RIS archives.
//
// The convergence model is deliberately compact: after a routing event the
// affected vantage points may announce a handful of transient exploration
// paths (alternate policy-compliant routes through non-best neighbors)
// before settling on the new stable best path. This reproduces the two
// phenomena the paper measures — path-change counts per session and extra
// ASes transiently appearing on paths — without per-router message-level
// simulation. Session resets re-announce the session's full table
// (a routing table transfer), producing exactly the artificial updates the
// paper filters out following Zhang et al.
package bgpsim

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/topology"
)

// Session identifies one collector eBGP session: a named collector and the
// vantage AS peering with it. The vantage's best routes are what the
// session observes.
type Session struct {
	Collector string
	PeerAS    bgp.ASN
	// visible is the set of prefixes this session learns at all; RIS
	// sessions see wildly different table subsets, which the paper's
	// methodology section quantifies.
	visible map[netip.Prefix]bool
}

// NewSession constructs a session with an explicit visibility set; the
// simulator builds sessions itself, but stream consumers (tests, MRT
// importers) need to assemble streams by hand.
func NewSession(collector string, peer bgp.ASN, visible []netip.Prefix) Session {
	s := Session{Collector: collector, PeerAS: peer, visible: make(map[netip.Prefix]bool, len(visible))}
	for _, p := range visible {
		s.visible[p] = true
	}
	return s
}

// Sees reports whether the session learns prefix p.
func (s *Session) Sees(p netip.Prefix) bool { return s.visible[p] }

// VisibleCount returns how many prefixes the session learns.
func (s *Session) VisibleCount() int { return len(s.visible) }

// VisiblePrefixes returns the session's learned prefixes in address order.
func (s *Session) VisiblePrefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(s.visible))
	for p := range s.visible {
		out = append(out, p)
	}
	sortPrefixes(out)
	return out
}

func sortPrefixes(ps []netip.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		ai, aj := ps[i].Addr(), ps[j].Addr()
		if ai != aj {
			return ai.Less(aj)
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}

// UpdateEvent is one BGP UPDATE observed on a session: an announcement of
// Path for Prefix, or a withdrawal when Path is empty.
type UpdateEvent struct {
	Time    time.Time
	Session int // index into Stream.Sessions
	Prefix  netip.Prefix
	Path    []bgp.ASN // vantage first, origin last; nil = withdraw
	// Transfer marks updates that are part of a post-reset routing table
	// transfer. The MRT export does not carry this flag (real archives
	// don't either) — it is ground truth for validating the reset filter.
	Transfer bool
}

// Withdraw reports whether the event is a withdrawal.
func (e *UpdateEvent) Withdraw() bool { return len(e.Path) == 0 }

// ResetEvent records a session reset: the session drops at Down and
// re-establishes at Up, after which the peer retransmits its table.
type ResetEvent struct {
	Session int
	Down    time.Time
	Up      time.Time
}

// AttackEvent is the ground truth of one injected hijack: between Start
// and End, Attacker also originates Prefix, and captured vantage points
// see origin-changed announcements embedded in the ordinary churn.
type AttackEvent struct {
	Prefix   netip.Prefix
	Victim   bgp.ASN
	Attacker bgp.ASN
	Start    time.Time
	End      time.Time
}

// Stream is the complete output of a simulation run.
type Stream struct {
	Start    time.Time
	End      time.Time
	Sessions []Session
	// Initial holds the stable best path per (session, prefix) at Start;
	// this is the paper's baseline "first path used at the beginning of
	// the month". Withheld (invisible) prefixes are absent.
	Initial map[int]map[netip.Prefix][]bgp.ASN
	// Updates holds every update event in time order.
	Updates []UpdateEvent
	// Resets holds every session reset in time order.
	Resets []ResetEvent
	// Attacks holds the injected hijacks' ground truth in time order
	// (empty unless Config.InjectHijacks was set).
	Attacks []AttackEvent
}

// PathSample is one step of a (session, prefix) path history.
type PathSample struct {
	Time time.Time
	Path []bgp.ASN // nil while withdrawn
}

// PathHistory reconstructs the full path timeline of prefix p on session
// si: the initial path at Start followed by every subsequent update, table
// transfers included (callers filter with the Transfer flag or a reset
// heuristic as desired).
func (st *Stream) PathHistory(si int, p netip.Prefix, includeTransfers bool) []PathSample {
	var out []PathSample
	if init, ok := st.Initial[si][p]; ok {
		out = append(out, PathSample{Time: st.Start, Path: init})
	}
	for i := range st.Updates {
		u := &st.Updates[i]
		if u.Session != si || u.Prefix != p {
			continue
		}
		if u.Transfer && !includeTransfers {
			continue
		}
		out = append(out, PathSample{Time: u.Time, Path: u.Path})
	}
	return out
}

// PrefixesOnSession returns every prefix for which session si has an
// initial path or at least one update, in address order.
func (st *Stream) PrefixesOnSession(si int) []netip.Prefix {
	seen := make(map[netip.Prefix]bool)
	for p := range st.Initial[si] {
		seen[p] = true
	}
	for i := range st.Updates {
		if st.Updates[i].Session == si {
			seen[st.Updates[i].Prefix] = true
		}
	}
	out := make([]netip.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sortPrefixes(out)
	return out
}

// Sim holds the simulation inputs: the pristine topology and the prefix
// origination table.
type Sim struct {
	graph   *topology.Graph
	origins map[netip.Prefix]bgp.ASN
}

// New builds a simulator over g, where origins maps each announced prefix
// to the AS originating it. Every origin AS must exist in g.
func New(g *topology.Graph, origins map[netip.Prefix]bgp.ASN) (*Sim, error) {
	if len(origins) == 0 {
		return nil, fmt.Errorf("bgpsim: no prefixes to originate")
	}
	for p, asn := range origins {
		if g.AS(asn) == nil {
			return nil, fmt.Errorf("bgpsim: origin %v of %v not in topology", asn, p)
		}
	}
	return &Sim{graph: g, origins: origins}, nil
}

// Graph returns the pristine topology the simulator was built over.
func (s *Sim) Graph() *topology.Graph { return s.graph }

// Origins returns the prefix origination table (shared, do not mutate).
func (s *Sim) Origins() map[netip.Prefix]bgp.ASN { return s.origins }

// originASNs returns the distinct origin ASes, ascending.
func (s *Sim) originASNs() []bgp.ASN {
	seen := make(map[bgp.ASN]bool)
	for _, a := range s.origins {
		seen[a] = true
	}
	out := make([]bgp.ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// prefixesOf returns the prefixes originated by asn, in address order.
func (s *Sim) prefixesOf(asn bgp.ASN) []netip.Prefix {
	var out []netip.Prefix
	for p, a := range s.origins {
		if a == asn {
			out = append(out, p)
		}
	}
	sortPrefixes(out)
	return out
}

func samePath(a, b []bgp.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
