package bgpsim

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/mrt"
)

// Session addressing for MRT export: session i peers from 10.(i/250).(i%250).1
// toward the collector at 10.255.255.254, mirroring how RIS assigns one
// address per peer.
func sessionPeerIP(si int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(si / 250), byte(si % 250), 1})
}

var collectorIP = netip.AddrFrom4([4]byte{10, 255, 255, 254})

// ExportRIB writes a TABLE_DUMP_V2 snapshot of the stream's initial state
// for one collector: a PEER_INDEX_TABLE naming that collector's sessions
// followed by one RIB record per prefix. This is the "first path at the
// beginning of the month" baseline in archive form.
func (st *Stream) ExportRIB(w io.Writer, collector string) error {
	mw := mrt.NewWriter(w)
	var sessIdx []int
	for si := range st.Sessions {
		if st.Sessions[si].Collector == collector {
			sessIdx = append(sessIdx, si)
		}
	}
	if len(sessIdx) == 0 {
		return fmt.Errorf("bgpsim: no sessions for collector %q", collector)
	}
	tbl := &mrt.PeerIndexTable{CollectorBGPID: collectorIP, ViewName: collector}
	for _, si := range sessIdx {
		tbl.Peers = append(tbl.Peers, mrt.Peer{
			BGPID: sessionPeerIP(si),
			IP:    sessionPeerIP(si),
			AS:    st.Sessions[si].PeerAS,
		})
	}
	if err := mw.WritePeerIndexTable(st.Start, tbl); err != nil {
		return err
	}

	// Gather the prefix universe across this collector's sessions.
	prefixSet := make(map[netip.Prefix]bool)
	for _, si := range sessIdx {
		for p := range st.Initial[si] {
			prefixSet[p] = true
		}
	}
	prefixes := make([]netip.Prefix, 0, len(prefixSet))
	for p := range prefixSet {
		prefixes = append(prefixes, p)
	}
	sortPrefixes(prefixes)

	for seq, p := range prefixes {
		rec := &mrt.RIBIPv4Unicast{Sequence: uint32(seq), Prefix: p}
		for local, si := range sessIdx {
			path, ok := st.Initial[si][p]
			if !ok {
				continue
			}
			rec.Entries = append(rec.Entries, mrt.RIBEntry{
				PeerIndex:      local,
				OriginatedTime: st.Start,
				Attrs:          pathAttrs(path, si),
			})
		}
		if len(rec.Entries) == 0 {
			continue
		}
		if err := mw.WriteRIB(st.Start, rec); err != nil {
			return err
		}
	}
	return nil
}

func pathAttrs(path []bgp.ASN, si int) bgp.PathAttributes {
	return bgp.PathAttributes{
		HasOrigin: true, Origin: bgp.OriginIGP,
		HasASPath: true, ASPath: bgp.Sequence(path...),
		NextHop: sessionPeerIP(si),
	}
}

// ExportUpdates writes one collector's update stream as BGP4MP records:
// BGP4MP_MESSAGE_AS4 for announcements and withdrawals, STATE_CHANGE_AS4
// pairs for session resets, all in timestamp order. The ground-truth
// Transfer flag is intentionally not representable — real archives don't
// carry it either, which is what makes reset filtering a heuristic.
func (st *Stream) ExportUpdates(w io.Writer, collector string) error {
	mw := mrt.NewWriter(w)
	type item struct {
		at      time.Time
		update  *UpdateEvent
		reset   *ResetEvent
		resetUp bool
	}
	var items []item
	for i := range st.Updates {
		u := &st.Updates[i]
		if st.Sessions[u.Session].Collector == collector {
			items = append(items, item{at: u.Time, update: u})
		}
	}
	for i := range st.Resets {
		r := &st.Resets[i]
		if st.Sessions[r.Session].Collector == collector {
			items = append(items, item{at: r.Down, reset: r})
			items = append(items, item{at: r.Up, reset: r, resetUp: true})
		}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].at.Before(items[j].at) })

	for _, it := range items {
		if it.reset != nil {
			si := it.reset.Session
			sc := &mrt.BGP4MPStateChange{
				PeerAS: st.Sessions[si].PeerAS, LocalAS: collectorAS,
				PeerIP: sessionPeerIP(si), LocalIP: collectorIP, AS4: true,
				OldState: mrt.StateEstablished, NewState: mrt.StateIdle,
			}
			if it.resetUp {
				sc.OldState, sc.NewState = mrt.StateOpenConfirm, mrt.StateEstablished
			}
			if err := mw.WriteStateChange(it.at, sc); err != nil {
				return err
			}
			continue
		}
		u := it.update
		var msg bgp.Update
		if u.Withdraw() {
			msg.Withdrawn = []netip.Prefix{u.Prefix}
		} else {
			msg.NLRI = []netip.Prefix{u.Prefix}
			msg.Attrs = pathAttrs(u.Path, u.Session)
		}
		raw, err := msg.Marshal(true)
		if err != nil {
			return err
		}
		rec := &mrt.BGP4MPMessage{
			PeerAS: st.Sessions[u.Session].PeerAS, LocalAS: collectorAS,
			PeerIP: sessionPeerIP(u.Session), LocalIP: collectorIP, AS4: true,
			Data: raw,
		}
		if err := mw.WriteMessage(u.Time, rec); err != nil {
			return err
		}
	}
	return nil
}

// collectorAS is the ASN the pseudo-collector speaks BGP from (RIPE NCC's
// real collectors use AS12654).
const collectorAS bgp.ASN = 12654

// ImportMRT reconstructs a single-collector Stream from a RIB snapshot and
// an update archive previously produced by ExportRIB/ExportUpdates (or any
// archive following the same conventions). Visibility sets are inferred
// from the prefixes each session carries. Transfer flags cannot be
// recovered from the archive; the analysis layer's reset heuristic is the
// intended remedy.
func ImportMRT(rib, updates io.Reader, collector string) (*Stream, error) {
	st := &Stream{Initial: make(map[int]map[netip.Prefix][]bgp.ASN)}

	rr := mrt.NewReader(rib)
	var peers []mrt.Peer
	peerToSession := make(map[netip.Addr]int)
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, mrt.ErrUnsupported) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("bgpsim: reading RIB: %w", err)
		}
		switch {
		case rec.PeerIndex != nil:
			peers = rec.PeerIndex.Peers
			for i, p := range peers {
				sess := Session{Collector: collector, PeerAS: p.AS, visible: make(map[netip.Prefix]bool)}
				st.Sessions = append(st.Sessions, sess)
				st.Initial[i] = make(map[netip.Prefix][]bgp.ASN)
				peerToSession[p.IP] = i
			}
			if st.Start.IsZero() || rec.Header.Timestamp.Before(st.Start) {
				st.Start = rec.Header.Timestamp
			}
		case rec.RIB != nil:
			for _, e := range rec.RIB.Entries {
				if e.PeerIndex < 0 || e.PeerIndex >= len(peers) {
					return nil, fmt.Errorf("bgpsim: RIB entry peer index %d out of range", e.PeerIndex)
				}
				if !e.Attrs.HasASPath {
					continue
				}
				path := flattenPath(e.Attrs.ASPath)
				st.Initial[e.PeerIndex][rec.RIB.Prefix] = path
				st.Sessions[e.PeerIndex].visible[rec.RIB.Prefix] = true
			}
		}
	}
	if len(st.Sessions) == 0 {
		return nil, fmt.Errorf("bgpsim: RIB snapshot has no PEER_INDEX_TABLE")
	}

	ur := mrt.NewReader(updates)
	resetDown := make(map[int]time.Time)
	for {
		rec, err := ur.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, mrt.ErrUnsupported) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("bgpsim: reading updates: %w", err)
		}
		switch {
		case rec.Message != nil:
			si, ok := peerToSession[rec.Message.PeerIP]
			if !ok {
				return nil, fmt.Errorf("bgpsim: update from unknown peer %v", rec.Message.PeerIP)
			}
			u, err := rec.Message.Update()
			if err != nil {
				return nil, err
			}
			for _, p := range u.Withdrawn {
				st.Updates = append(st.Updates, UpdateEvent{
					Time: rec.Header.Timestamp, Session: si, Prefix: p,
				})
				st.Sessions[si].visible[p] = true
			}
			if len(u.NLRI) > 0 && u.Attrs.HasASPath {
				path := flattenPath(u.Attrs.ASPath)
				for _, p := range u.NLRI {
					st.Updates = append(st.Updates, UpdateEvent{
						Time: rec.Header.Timestamp, Session: si, Prefix: p, Path: path,
					})
					st.Sessions[si].visible[p] = true
				}
			}
		case rec.StateChange != nil:
			si, ok := peerToSession[rec.StateChange.PeerIP]
			if !ok {
				continue
			}
			if rec.StateChange.NewState != mrt.StateEstablished {
				resetDown[si] = rec.Header.Timestamp
				continue
			}
			down, ok := resetDown[si]
			if !ok {
				down = rec.Header.Timestamp
			}
			st.Resets = append(st.Resets, ResetEvent{Session: si, Down: down, Up: rec.Header.Timestamp})
			delete(resetDown, si)
		}
		if st.End.Before(rec.Header.Timestamp) {
			st.End = rec.Header.Timestamp
		}
	}
	return st, nil
}

func flattenPath(p bgp.ASPath) []bgp.ASN {
	var out []bgp.ASN
	for _, s := range p.Segments {
		out = append(out, s.ASes...)
	}
	return out
}
