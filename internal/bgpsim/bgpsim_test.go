package bgpsim

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/topology"
)

// testWorld builds a small topology and origin table for simulator tests.
func testWorld(t testing.TB) (*topology.Graph, map[netip.Prefix]bgp.ASN) {
	t.Helper()
	cfg := topology.GenConfig{
		Tier1: 4, Tier2: 20, Tier3: 80,
		Tier2PeerProb: 0.08, MaxT2Providers: 2, MaxT3Providers: 2, Seed: 5,
	}
	g, err := topology.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	origins := make(map[netip.Prefix]bgp.ASN)
	t3 := g.TierASNs(3)
	for i := 0; i < 60; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(60 + i), 0, 0, 0}), 16)
		origins[p] = t3[i%len(t3)]
	}
	return g, origins
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Collectors = []CollectorSpec{{Name: "rrc00", Sessions: 4}, {Name: "rrc01", Sessions: 3}}
	cfg.Duration = 3 * 24 * time.Hour
	cfg.LinkFailures = 40
	cfg.OriginChurnEvents = 100
	cfg.FlapEpisodes = 4
	cfg.MaxFlapCycles = 60
	cfg.PolicyEvents = 1
	cfg.ResetsPerSessionMean = 1
	return cfg
}

func TestNewValidation(t *testing.T) {
	g, origins := testWorld(t)
	if _, err := New(g, nil); err == nil {
		t.Fatal("empty origins accepted")
	}
	bad := map[netip.Prefix]bgp.ASN{netip.MustParsePrefix("10.0.0.0/8"): 999999}
	if _, err := New(g, bad); err == nil {
		t.Fatal("unknown origin accepted")
	}
	if _, err := New(g, origins); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	g, origins := testWorld(t)
	s, err := New(g, origins)
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Collectors = nil },
		func(c *Config) { c.Collectors[0].Sessions = 0 },
		func(c *Config) { c.MinVisibility = 0 },
		func(c *Config) { c.MaxVisibility = 1.5 },
		func(c *Config) { c.BiasFraction = -1 },
		func(c *Config) { c.ExplorationProb = 2 },
		func(c *Config) { c.ConvergenceDelay = 0 },
	} {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := s.Run(cfg); err == nil {
			t.Fatalf("invalid config accepted: %+v", cfg)
		}
	}
}

func runStream(t testing.TB) *Stream {
	t.Helper()
	g, origins := testWorld(t)
	s, err := New(g, origins)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRunBasicShape(t *testing.T) {
	st := runStream(t)
	if len(st.Sessions) != 7 {
		t.Fatalf("sessions = %d, want 7", len(st.Sessions))
	}
	if len(st.Updates) == 0 {
		t.Fatal("no updates produced")
	}
	if len(st.Initial) != len(st.Sessions) {
		t.Fatalf("initial tables for %d sessions, want %d", len(st.Initial), len(st.Sessions))
	}
	// Updates sorted by time and within the run window (the convergence
	// delay may push the last updates slightly past End).
	for i := 1; i < len(st.Updates); i++ {
		if st.Updates[i].Time.Before(st.Updates[i-1].Time) {
			t.Fatal("updates not sorted by time")
		}
	}
	slack := st.End.Add(5 * time.Minute)
	for _, u := range st.Updates {
		if u.Time.Before(st.Start) || u.Time.After(slack) {
			t.Fatalf("update at %v outside window [%v, %v]", u.Time, st.Start, slack)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runStream(t)
	b := runStream(t)
	if len(a.Updates) != len(b.Updates) || len(a.Resets) != len(b.Resets) {
		t.Fatalf("runs differ: %d/%d updates, %d/%d resets",
			len(a.Updates), len(b.Updates), len(a.Resets), len(b.Resets))
	}
	for i := range a.Updates {
		ua, ub := a.Updates[i], b.Updates[i]
		if !ua.Time.Equal(ub.Time) || ua.Session != ub.Session || ua.Prefix != ub.Prefix || !samePath(ua.Path, ub.Path) {
			t.Fatalf("update %d differs", i)
		}
	}
}

func TestInitialPathsAreValid(t *testing.T) {
	g, origins := testWorld(t)
	s, err := New(g, origins)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for si, table := range st.Initial {
		v := st.Sessions[si].PeerAS
		for p, path := range table {
			if len(path) == 0 {
				t.Fatalf("session %d: empty initial path for %v", si, p)
			}
			if path[0] != v {
				t.Fatalf("session %d: path starts at %v, vantage is %v", si, path[0], v)
			}
			if path[len(path)-1] != origins[p] {
				t.Fatalf("session %d: path for %v ends at %v, origin is %v",
					si, p, path[len(path)-1], origins[p])
			}
			if !g.ValleyFree(path) {
				t.Fatalf("initial path %v not valley-free", path)
			}
		}
	}
}

func TestVisibilityRespected(t *testing.T) {
	st := runStream(t)
	for _, u := range st.Updates {
		if !st.Sessions[u.Session].Sees(u.Prefix) {
			t.Fatalf("update for invisible prefix %v on session %d", u.Prefix, u.Session)
		}
	}
}

func TestResetsProduceTransfers(t *testing.T) {
	st := runStream(t)
	if len(st.Resets) == 0 {
		t.Skip("seed produced no resets")
	}
	r := st.Resets[0]
	count := 0
	for _, u := range st.Updates {
		if u.Session == r.Session && u.Transfer && u.Time.Equal(r.Up) {
			count++
		}
	}
	if count == 0 {
		t.Fatal("reset produced no table-transfer announcements")
	}
	// The transfer should cover a large share of the session's visible,
	// routed prefixes.
	if count < st.Sessions[r.Session].VisibleCount()/2 {
		t.Fatalf("transfer announced only %d of %d visible prefixes",
			count, st.Sessions[r.Session].VisibleCount())
	}
}

func TestPathHistory(t *testing.T) {
	st := runStream(t)
	// Find a (session, prefix) with at least one non-transfer update.
	for _, u := range st.Updates {
		if u.Transfer || u.Withdraw() {
			continue
		}
		hist := st.PathHistory(u.Session, u.Prefix, false)
		if len(hist) < 2 {
			continue
		}
		if !hist[0].Time.Equal(st.Start) {
			t.Fatalf("history does not start at stream start: %v", hist[0].Time)
		}
		for i := 1; i < len(hist); i++ {
			if hist[i].Time.Before(hist[i-1].Time) {
				t.Fatal("history not time-ordered")
			}
		}
		withT := st.PathHistory(u.Session, u.Prefix, true)
		if len(withT) < len(hist) {
			t.Fatal("includeTransfers returned fewer samples")
		}
		return
	}
	t.Skip("no suitable history found for this seed")
}

func TestPrefixesOnSession(t *testing.T) {
	st := runStream(t)
	ps := st.PrefixesOnSession(0)
	if len(ps) == 0 {
		t.Fatal("session 0 saw no prefixes")
	}
	for i := 1; i < len(ps); i++ {
		if !ps[i-1].Addr().Less(ps[i].Addr()) && ps[i-1].Addr() != ps[i].Addr() {
			t.Fatal("prefixes not sorted")
		}
	}
}

func TestUpdatesChangePaths(t *testing.T) {
	// Non-transfer announcements should (almost) always differ from the
	// previous known path — that is the simulator's contract.
	st := runStream(t)
	type key struct {
		si int
		p  netip.Prefix
	}
	last := make(map[key][]bgp.ASN)
	for si, init := range st.Initial {
		for p, path := range init {
			last[key{si, p}] = path
		}
	}
	dups := 0
	changes := 0
	for _, u := range st.Updates {
		k := key{u.Session, u.Prefix}
		if !u.Transfer {
			changes++
			if samePath(u.Path, last[k]) {
				dups++
			}
		}
		if u.Withdraw() {
			delete(last, k)
		} else {
			last[k] = u.Path
		}
	}
	if changes == 0 {
		t.Fatal("no non-transfer updates")
	}
	// Exploration paths can occasionally coincide with the previous
	// path; allow a small fraction.
	if float64(dups) > 0.2*float64(changes) {
		t.Fatalf("%d/%d non-transfer updates were duplicates", dups, changes)
	}
}

func TestMRTRoundTrip(t *testing.T) {
	st := runStream(t)
	collector := "rrc00"
	var rib, upd bytes.Buffer
	if err := st.ExportRIB(&rib, collector); err != nil {
		t.Fatal(err)
	}
	if err := st.ExportUpdates(&upd, collector); err != nil {
		t.Fatal(err)
	}
	got, err := ImportMRT(&rib, &upd, collector)
	if err != nil {
		t.Fatal(err)
	}
	// Collect the original collector-local view for comparison.
	var origSessions []int
	for si := range st.Sessions {
		if st.Sessions[si].Collector == collector {
			origSessions = append(origSessions, si)
		}
	}
	if len(got.Sessions) != len(origSessions) {
		t.Fatalf("sessions = %d, want %d", len(got.Sessions), len(origSessions))
	}
	for local, si := range origSessions {
		if got.Sessions[local].PeerAS != st.Sessions[si].PeerAS {
			t.Fatalf("session %d peer AS mismatch", local)
		}
		// Initial paths survive.
		for p, path := range st.Initial[si] {
			gp, ok := got.Initial[local][p]
			if !ok || !samePath(gp, path) {
				t.Fatalf("initial path for %v lost: %v vs %v", p, gp, path)
			}
		}
	}
	// Update counts per collector match.
	want := 0
	for _, u := range st.Updates {
		if st.Sessions[u.Session].Collector == collector {
			want++
		}
	}
	if len(got.Updates) != want {
		t.Fatalf("updates = %d, want %d", len(got.Updates), want)
	}
	// Reset count matches.
	wantResets := 0
	for _, r := range st.Resets {
		if st.Sessions[r.Session].Collector == collector {
			wantResets++
		}
	}
	if len(got.Resets) != wantResets {
		t.Fatalf("resets = %d, want %d", len(got.Resets), wantResets)
	}
}

func TestExportRIBUnknownCollector(t *testing.T) {
	st := runStream(t)
	var buf bytes.Buffer
	if err := st.ExportRIB(&buf, "nope"); err == nil {
		t.Fatal("unknown collector accepted")
	}
}

func TestSessionHelpers(t *testing.T) {
	st := runStream(t)
	s := &st.Sessions[0]
	ps := s.VisiblePrefixes()
	if len(ps) != s.VisibleCount() {
		t.Fatalf("VisiblePrefixes len %d != count %d", len(ps), s.VisibleCount())
	}
	for _, p := range ps {
		if !s.Sees(p) {
			t.Fatalf("Sees(%v) = false for visible prefix", p)
		}
	}
}

// TestBiasSkewsChurnTowardTargets verifies the mechanism behind Figure 3
// (left): with BiasOrigins set, the biased origins' prefixes accumulate
// more updates per prefix than the rest of the table.
func TestBiasSkewsChurnTowardTargets(t *testing.T) {
	g, origins := testWorld(t)
	s, err := New(g, origins)
	if err != nil {
		t.Fatal(err)
	}
	// Bias toward the origins of the first 10 prefixes.
	biased := make(map[bgp.ASN]bool)
	var biasList []bgp.ASN
	biasPrefixes := make(map[netip.Prefix]bool)
	i := 0
	for p, o := range origins {
		if i >= 10 {
			break
		}
		i++
		biasPrefixes[p] = true
		if !biased[o] {
			biased[o] = true
			biasList = append(biasList, o)
		}
	}
	cfg := testConfig()
	cfg.BiasOrigins = biasList
	cfg.BiasFraction = 0.8
	cfg.ResetsPerSessionMean = 0 // keep transfers out of the counts
	st, err := s.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perPrefix := make(map[netip.Prefix]int)
	for _, u := range st.Updates {
		perPrefix[u.Prefix]++
	}
	var biasedSum, otherSum, biasedN, otherN float64
	for p := range origins {
		// Only prefixes whose origin is in the biased set count as
		// "biased" — the bias applies per origin AS.
		if biased[origins[p]] {
			biasedSum += float64(perPrefix[p])
			biasedN++
		} else {
			otherSum += float64(perPrefix[p])
			otherN++
		}
	}
	if biasedN == 0 || otherN == 0 {
		t.Skip("degenerate split")
	}
	biasedMean := biasedSum / biasedN
	otherMean := otherSum / otherN
	if biasedMean <= otherMean {
		t.Fatalf("bias ineffective: biased mean %.1f <= other mean %.1f", biasedMean, otherMean)
	}
}

// TestInjectedHijacksAppearInStream verifies attack injection: ground
// truth is recorded, and during each attack window some session announces
// a path originating at the attacker.
func TestInjectedHijacksAppearInStream(t *testing.T) {
	g, origins := testWorld(t)
	s, err := New(g, origins)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.InjectHijacks = 6
	cfg.HijackDuration = 2 * time.Hour
	cfg.ResetsPerSessionMean = 0
	st, err := s.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Attacks) == 0 {
		t.Fatal("no attacks recorded")
	}
	for _, a := range st.Attacks {
		if a.Victim == a.Attacker {
			t.Fatalf("attack %v has victim == attacker", a)
		}
		if origins[a.Prefix] != a.Victim {
			t.Fatalf("attack victim %v is not the origin of %v", a.Victim, a.Prefix)
		}
		if !a.End.After(a.Start) {
			t.Fatalf("attack window inverted: %+v", a)
		}
	}
	// At least one attack must be visible: an update for the victim
	// prefix whose origin is the attacker, within the window (plus
	// convergence delay).
	visible := 0
	for _, a := range st.Attacks {
		for _, u := range st.Updates {
			if u.Prefix != a.Prefix || u.Withdraw() {
				continue
			}
			if u.Time.Before(a.Start) || u.Time.After(a.End.Add(2*cfg.ConvergenceDelay)) {
				continue
			}
			if u.Path[len(u.Path)-1] == a.Attacker {
				visible++
				break
			}
		}
	}
	if visible == 0 {
		t.Fatal("no attack was visible on any session")
	}
	// After each attack ends, the victim's origin is eventually restored
	// on sessions that saw the attacker.
	last := make(map[netip.Prefix]bgp.ASN)
	for _, u := range st.Updates {
		if !u.Withdraw() && len(u.Path) > 0 {
			last[u.Prefix] = u.Path[len(u.Path)-1]
		}
	}
	for _, a := range st.Attacks {
		if o, ok := last[a.Prefix]; ok && o == a.Attacker && a.End.Before(st.End.Add(-time.Hour)) {
			t.Fatalf("prefix %v still announced by attacker after attack end", a.Prefix)
		}
	}
}

// TestExplorationPathsAppear verifies the convergence model: with
// exploration enabled, some updates announce transient non-best paths
// that are replaced within the convergence delay.
func TestExplorationPathsAppear(t *testing.T) {
	g, origins := testWorld(t)
	s, err := New(g, origins)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.ExplorationProb = 1.0
	cfg.ResetsPerSessionMean = 0
	st, err := s.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Exploration updates precede their stable counterpart by less than
	// the convergence delay on the same (session, prefix).
	type key struct {
		si int
		p  netip.Prefix
	}
	lastAt := make(map[key]time.Time)
	quickReplacements := 0
	for _, u := range st.Updates {
		k := key{u.Session, u.Prefix}
		if prev, ok := lastAt[k]; ok {
			if d := u.Time.Sub(prev); d > 0 && d < cfg.ConvergenceDelay {
				quickReplacements++
			}
		}
		lastAt[k] = u.Time
	}
	if quickReplacements == 0 {
		t.Fatal("no transient exploration paths observed despite ExplorationProb=1")
	}
}

func BenchmarkRunSmallWorld(b *testing.B) {
	g, origins := testWorld(b)
	s, err := New(g, origins)
	if err != nil {
		b.Fatal(err)
	}
	cfg := testConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
