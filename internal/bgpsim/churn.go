package bgpsim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/topology"
)

// CollectorSpec names one collector and how many eBGP sessions it has.
type CollectorSpec struct {
	Name     string
	Sessions int
}

// Config parameterises a simulation run. DefaultConfig matches the
// paper's measurement setting (4 collectors, >70 sessions, one month).
type Config struct {
	Seed       int64
	Start      time.Time
	Duration   time.Duration
	Collectors []CollectorSpec

	// MinVisibility/MaxVisibility bound the fraction of prefixes each
	// session learns; one session is forced to MaxVisibility so the
	// stream has a near-full-table vantage like the paper's best session
	// (99% of Tor prefixes).
	MinVisibility float64
	MaxVisibility float64

	// LinkFailures is the number of ordinary link outages over the run.
	LinkFailures int
	// MeanOutage is the mean outage duration (exponentially
	// distributed, truncated to the run).
	MeanOutage time.Duration

	// OriginChurnEvents is the number of access-link outages hitting the
	// origin ASes themselves (a multihomed origin briefly loses one
	// provider). These events provide the baseline churn every real BGP
	// prefix exhibits over a month — the denominator of the paper's
	// Figure 3 (left) median normalisation.
	OriginChurnEvents int
	// OriginOutage is the mean duration of origin access-link outages.
	OriginOutage time.Duration

	// FlapEpisodes is the number of targeted instability episodes: an
	// access link of some origin AS flaps repeatedly, producing the
	// heavy per-prefix churn tail the paper observed on Tor prefixes.
	FlapEpisodes int
	// MaxFlapCycles bounds the number of down/up cycles per episode
	// (drawn log-uniformly from [4, MaxFlapCycles]).
	MaxFlapCycles int
	// FlapInterval is the mean time between cycles within an episode.
	FlapInterval time.Duration

	// BiasOrigins lists origin ASes (e.g. the relay-hosting ASes) that
	// attract a disproportionate share of instability; BiasFraction of
	// failures and flap episodes target their vicinity.
	BiasOrigins  []bgp.ASN
	BiasFraction float64

	// PolicyEvents is the number of rare routing-policy shifts (a
	// peering appears or disappears); each forces a full recompute.
	PolicyEvents int

	// ResetsPerSessionMean is the expected number of session resets per
	// collector session over the run.
	ResetsPerSessionMean float64

	// InjectHijacks injects this many same-prefix hijacks into the run:
	// a random AS additionally originates one of HijackTargets for a
	// while, so captured sessions see origin-changed announcements
	// embedded in the ordinary churn. Ground truth lands in
	// Stream.Attacks for detector evaluation.
	InjectHijacks int
	// HijackTargets are the candidate victim prefixes (defaults to the
	// prefixes originated by BiasOrigins, else any prefix).
	HijackTargets []netip.Prefix
	// HijackDuration is the mean attack duration.
	HijackDuration time.Duration

	// ExplorationProb is the probability that a path change on a session
	// is preceded by transient exploration announcements (BGP
	// convergence visiting alternate paths).
	ExplorationProb float64
	// ConvergenceDelay is how long after a routing event the stable path
	// is announced; exploration paths appear within this window.
	ConvergenceDelay time.Duration

	// Metrics, when non-nil, receives run instrumentation (event, update,
	// and recompute counts). Nil disables it at no per-event cost.
	Metrics *Metrics

	// TransferCheck, when non-nil, is called after each completed reset
	// table transfer with the session index, the re-establishment time,
	// the session's announced table (known), and the live table
	// restricted to the session's visibility. Both maps are read-only. A
	// non-nil return aborts the run. It is a verification hook backing
	// internal/testkit's reset invariant — after a transfer, known must
	// equal live.
	TransferCheck func(si int, up time.Time, known, live map[netip.Prefix][]bgp.ASN) error
}

// DefaultConfig returns the month-scale configuration used by the paper
// reproduction: 4 collectors with 72 sessions total over 31 days.
func DefaultConfig() Config {
	return Config{
		Seed:     1,
		Start:    time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC),
		Duration: 31 * 24 * time.Hour,
		Collectors: []CollectorSpec{
			{Name: "rrc00", Sessions: 18},
			{Name: "rrc01", Sessions: 18},
			{Name: "rrc03", Sessions: 18},
			{Name: "rrc04", Sessions: 18},
		},
		MinVisibility:        0.25,
		MaxVisibility:        0.99,
		LinkFailures:         500,
		MeanOutage:           45 * time.Minute,
		OriginChurnEvents:    3000,
		OriginOutage:         30 * time.Minute,
		FlapEpisodes:         40,
		MaxFlapCycles:        1500,
		FlapInterval:         4 * time.Minute,
		BiasFraction:         0.5,
		PolicyEvents:         3,
		ResetsPerSessionMean: 1.2,
		ExplorationProb:      0.35,
		ConvergenceDelay:     90 * time.Second,
	}
}

func (c *Config) validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("bgpsim: non-positive duration")
	}
	if len(c.Collectors) == 0 {
		return fmt.Errorf("bgpsim: no collectors")
	}
	for _, cs := range c.Collectors {
		if cs.Sessions < 1 {
			return fmt.Errorf("bgpsim: collector %q has no sessions", cs.Name)
		}
	}
	if c.MinVisibility <= 0 || c.MaxVisibility > 1 || c.MinVisibility > c.MaxVisibility {
		return fmt.Errorf("bgpsim: bad visibility range [%v, %v]", c.MinVisibility, c.MaxVisibility)
	}
	if c.BiasFraction < 0 || c.BiasFraction > 1 {
		return fmt.Errorf("bgpsim: BiasFraction %v out of [0,1]", c.BiasFraction)
	}
	if c.ExplorationProb < 0 || c.ExplorationProb > 1 {
		return fmt.Errorf("bgpsim: ExplorationProb %v out of [0,1]", c.ExplorationProb)
	}
	if c.ConvergenceDelay <= 0 {
		return fmt.Errorf("bgpsim: non-positive convergence delay")
	}
	if c.ExplorationProb > 0 && c.ConvergenceDelay < 2 {
		// The exploration jitter is drawn from [0, ConvergenceDelay/2);
		// a sub-2ns delay makes that interval empty.
		return fmt.Errorf("bgpsim: ConvergenceDelay %v too small for exploration jitter", c.ConvergenceDelay)
	}
	return nil
}

// event is one scheduled routing or session event.
type event struct {
	at   time.Time
	kind int
	a, b bgp.ASN // link endpoints for link events; attacker in b for hijacks
	rel  topology.Rel
	si   int           // session index for resets
	up   time.Duration // downtime for resets / hijack duration
	pfx  netip.Prefix  // target prefix for hijack events
	// pairIdx links a recovery to its failure for affected-set reuse.
	pairIdx int
}

const (
	evLinkDown = iota
	evLinkUp
	evPolicy
	evReset
	evHijackStart
	evHijackEnd
	// evTransfer is the internal companion of evReset: the post-reset
	// table transfer, scheduled at the session's re-establishment time so
	// it reads the tables as they are *then*, not at failure time.
	evTransfer
)

// Run executes the simulation and returns the observed stream.
func (s *Sim) Run(cfg Config) (*Stream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	met := cfg.Metrics
	if met == nil {
		met = &Metrics{}
	}
	evCount := met.eventCounters()
	rng := rand.New(rand.NewSource(cfg.Seed))
	end := cfg.Start.Add(cfg.Duration)

	st := &Stream{Start: cfg.Start, End: end, Initial: make(map[int]map[netip.Prefix][]bgp.ASN)}

	// --- Sessions: vantage ASes drawn from the transit core. ---
	vantagePool := append(s.graph.TierASNs(1), s.graph.TierASNs(2)...)
	if len(vantagePool) == 0 {
		vantagePool = s.graph.ASNs()
	}
	allPrefixes := make([]netip.Prefix, 0, len(s.origins))
	for p := range s.origins {
		allPrefixes = append(allPrefixes, p)
	}
	sortPrefixes(allPrefixes)

	for _, cs := range cfg.Collectors {
		for i := 0; i < cs.Sessions; i++ {
			v := vantagePool[rng.Intn(len(vantagePool))]
			cov := cfg.MinVisibility + (cfg.MaxVisibility-cfg.MinVisibility)*rng.Float64()*rng.Float64()
			if len(st.Sessions) == 0 {
				cov = cfg.MaxVisibility // one near-full-table session
			}
			sess := Session{Collector: cs.Name, PeerAS: v, visible: make(map[netip.Prefix]bool)}
			for _, p := range allPrefixes {
				if rng.Float64() < cov {
					sess.visible[p] = true
				}
			}
			st.Sessions = append(st.Sessions, sess)
		}
	}

	// --- Initial stable state on the pristine topology. ---
	// All tables go through the compiled route engine with one shared
	// scratch and per-origin result reuse: the event loop is
	// single-goroutine, so recomputes allocate almost nothing.
	g := s.graph.Clone()
	scratch := &topology.Scratch{}
	tables := make(map[bgp.ASN]*topology.CompiledRoutes)
	for _, o := range s.originASNs() {
		rt, err := g.RoutesInto(nil, scratch, nil, topology.Origin{ASN: o})
		if err != nil {
			return nil, err
		}
		tables[o] = rt
	}
	// known[si][prefix] is the path the session last announced.
	known := make([]map[netip.Prefix][]bgp.ASN, len(st.Sessions))
	for si := range st.Sessions {
		known[si] = make(map[netip.Prefix][]bgp.ASN)
		st.Initial[si] = make(map[netip.Prefix][]bgp.ASN)
		for p := range st.Sessions[si].visible {
			rt := tables[s.origins[p]]
			if path, ok := rt.PathFrom(st.Sessions[si].PeerAS); ok {
				st.Initial[si][p] = path
				known[si][p] = path
			}
		}
	}

	// --- Event schedule. ---
	events := s.schedule(cfg, rng, st)
	met.Scheduled.Add(uint64(len(events)))
	sort.SliceStable(events, func(i, j int) bool { return events[i].at.Before(events[j].at) })

	// failAffected[pairIdx] remembers which origins a failure touched so
	// the matching recovery recomputes the same set (a close
	// approximation that keeps recovery handling O(affected)).
	failAffected := make(map[int][]bgp.ASN)
	sessionUpAt := make([]time.Time, len(st.Sessions)) // zero = up

	originList := s.originASNs()

	// hijacked overrides the per-origin table for prefixes under an
	// active injected hijack (the victim and the attacker both originate
	// the prefix there); hijackAtk remembers each attack's attacker so
	// the table can be recomputed when churn shifts routing mid-attack.
	hijacked := make(map[netip.Prefix]*topology.CompiledRoutes)
	hijackAtk := make(map[netip.Prefix]bgp.ASN)
	tableFor := func(p netip.Prefix) *topology.CompiledRoutes {
		if rt, ok := hijacked[p]; ok {
			return rt
		}
		return tables[s.origins[p]]
	}

	emitPrefixChanges := func(t time.Time, p netip.Prefix) {
		rt := tableFor(p)
		for si := range st.Sessions {
			sess := &st.Sessions[si]
			if !sess.visible[p] {
				continue
			}
			if t.Before(sessionUpAt[si]) {
				continue // session down: the change is invisible
			}
			newPath, _ := rt.PathFrom(sess.PeerAS)
			if samePath(newPath, known[si][p]) {
				continue
			}
			// Transient exploration before settling.
			if newPath != nil && rng.Float64() < cfg.ExplorationProb {
				n := s.explorationPath(g, rt, sess.PeerAS, rng)
				if n != nil && !samePath(n, newPath) {
					// Int63n panics on a zero bound; validate rejects the
					// degenerate delay when exploration is on, and this
					// guard keeps a 1ns delay safe regardless.
					var dt time.Duration
					if half := int64(cfg.ConvergenceDelay) / 2; half > 0 {
						dt = time.Duration(rng.Int63n(half))
					}
					st.Updates = append(st.Updates, UpdateEvent{
						Time: t.Add(dt), Session: si, Prefix: p, Path: n,
					})
					met.Exploration.Inc()
					met.Updates.Inc()
				}
			}
			st.Updates = append(st.Updates, UpdateEvent{
				Time: t.Add(cfg.ConvergenceDelay), Session: si, Prefix: p, Path: newPath,
			})
			met.Updates.Inc()
			if newPath == nil {
				delete(known[si], p)
			} else {
				known[si][p] = newPath
			}
		}
	}

	emitChanges := func(t time.Time, affected []bgp.ASN) {
		for _, o := range affected {
			for _, p := range s.prefixesOf(o) {
				emitPrefixChanges(t, p)
			}
		}
	}

	recompute := func(affected []bgp.ASN) error {
		met.Recomputes.Add(uint64(len(affected)))
		for _, o := range affected {
			rt, err := g.RoutesInto(tables[o], scratch, nil, topology.Origin{ASN: o})
			if err != nil {
				return err
			}
			tables[o] = rt
		}
		return nil
	}

	// refreshHijacks recomputes the two-origin tables of every active
	// hijack after a topology event and emits the resulting path changes.
	// Without this the hijack tables keep pre-failure paths for the whole
	// attack window. Prefixes are walked in address order so the stream
	// stays deterministic, and emitPrefixChanges draws randomness only on
	// actual path changes, so unrelated events leave the stream untouched.
	refreshHijacks := func(t time.Time) error {
		if len(hijacked) == 0 {
			return nil
		}
		ps := make([]netip.Prefix, 0, len(hijacked))
		for p := range hijacked {
			ps = append(ps, p)
		}
		sortPrefixes(ps)
		for _, p := range ps {
			rt, err := g.RoutesInto(hijacked[p], scratch, nil,
				topology.Origin{ASN: s.origins[p]}, topology.Origin{ASN: hijackAtk[p]})
			if err != nil {
				return err
			}
			hijacked[p] = rt
			met.Recomputes.Inc()
			emitPrefixChanges(t, p)
		}
		return nil
	}

	// Vantage set for the observability pruning below.
	isVantage := make(map[bgp.ASN]bool, len(st.Sessions))
	for si := range st.Sessions {
		isVantage[st.Sessions[si].PeerAS] = true
	}
	// observable reports whether recomputing origin o's table for a
	// change of tree link (child→parent) can alter any session's view.
	// The link carries exactly the traffic of child's routing subtree;
	// when child is a customer-less non-vantage AS (a stub), that
	// subtree is {child} and contains no vantage, so the sessions'
	// paths toward o are untouched. The table is left stale for such
	// origins — harmless, because every consumer reads tables through
	// vantage paths only. This pruning is what keeps thousands of
	// origin-access-link flaps cheap.
	observable := func(child bgp.ASN) bool {
		if isVantage[child] {
			return true
		}
		a := g.AS(child)
		return a == nil || len(a.Customers()) > 0
	}

	for _, ev := range events {
		evCount[ev.kind].Inc()
		switch ev.kind {
		case evLinkDown:
			var affected []bgp.ASN
			for _, o := range originList {
				rt := tables[o]
				if ra, ok := rt.Route(ev.a); ok && ra.NextHop == ev.b && ra.Type != topology.RouteOrigin && observable(ev.a) {
					affected = append(affected, o)
					continue
				}
				if rb, ok := rt.Route(ev.b); ok && rb.NextHop == ev.a && rb.Type != topology.RouteOrigin && observable(ev.b) {
					affected = append(affected, o)
				}
			}
			g.RemoveLink(ev.a, ev.b)
			failAffected[ev.pairIdx] = affected
			if err := recompute(affected); err != nil {
				return nil, err
			}
			emitChanges(ev.at, affected)
			if err := refreshHijacks(ev.at); err != nil {
				return nil, err
			}
		case evLinkUp:
			if err := restoreLink(g, ev); err != nil {
				return nil, err
			}
			affected := failAffected[ev.pairIdx]
			if err := recompute(affected); err != nil {
				return nil, err
			}
			emitChanges(ev.at, affected)
			if err := refreshHijacks(ev.at); err != nil {
				return nil, err
			}
		case evPolicy:
			if _, linked := g.RelBetween(ev.a, ev.b); linked {
				g.RemoveLink(ev.a, ev.b)
			} else if err := g.AddPeering(ev.a, ev.b); err != nil {
				return nil, err
			}
			if err := recompute(originList); err != nil {
				return nil, err
			}
			emitChanges(ev.at, originList)
			if err := refreshHijacks(ev.at); err != nil {
				return nil, err
			}
		case evHijackStart:
			victim := s.origins[ev.pfx]
			rt, err := g.RoutesInto(hijacked[ev.pfx], scratch, nil,
				topology.Origin{ASN: victim}, topology.Origin{ASN: ev.b})
			if err != nil {
				return nil, err
			}
			hijacked[ev.pfx] = rt
			hijackAtk[ev.pfx] = ev.b
			st.Attacks = append(st.Attacks, AttackEvent{
				Prefix: ev.pfx, Victim: victim, Attacker: ev.b,
				Start: ev.at, End: ev.at.Add(ev.up),
			})
			emitPrefixChanges(ev.at, ev.pfx)
		case evHijackEnd:
			delete(hijacked, ev.pfx)
			delete(hijackAtk, ev.pfx)
			emitPrefixChanges(ev.at, ev.pfx)
		case evReset:
			up := ev.at.Add(ev.up)
			st.Resets = append(st.Resets, ResetEvent{Session: ev.si, Down: ev.at, Up: up})
			sessionUpAt[ev.si] = up
		case evTransfer:
			// Table transfer on re-establishment: the peer re-announces
			// its full table. The event fires at the up instant, so the
			// tables are read as they are *then* — routing changes during
			// the outage are re-announced, not lost. (They used to be read
			// at down time, silently dropping outage-window changes.)
			if ev.at.Before(sessionUpAt[ev.si]) {
				break // a longer overlapping reset still holds the session down
			}
			sess := &st.Sessions[ev.si]
			for _, p := range sess.VisiblePrefixes() {
				path, ok := tableFor(p).PathFrom(sess.PeerAS)
				if !ok {
					delete(known[ev.si], p)
					continue
				}
				st.Updates = append(st.Updates, UpdateEvent{
					Time: ev.at, Session: ev.si, Prefix: p, Path: path, Transfer: true,
				})
				met.Updates.Inc()
				met.Transfers.Inc()
				known[ev.si][p] = path
			}
			if cfg.TransferCheck != nil {
				live := make(map[netip.Prefix][]bgp.ASN)
				for _, p := range sess.VisiblePrefixes() {
					if path, ok := tableFor(p).PathFrom(sess.PeerAS); ok {
						live[p] = path
					}
				}
				if err := cfg.TransferCheck(ev.si, ev.at, known[ev.si], live); err != nil {
					return nil, err
				}
			}
		}
	}

	sort.SliceStable(st.Updates, func(i, j int) bool { return st.Updates[i].Time.Before(st.Updates[j].Time) })
	sort.SliceStable(st.Resets, func(i, j int) bool { return st.Resets[i].Down.Before(st.Resets[j].Down) })
	return st, nil
}

// restoreLink re-adds a previously removed link with its original
// relationship.
func restoreLink(g *topology.Graph, ev event) error {
	if _, linked := g.RelBetween(ev.a, ev.b); linked {
		return nil // flap schedule overlap; already up
	}
	switch ev.rel {
	case topology.RelCustomer: // b was a's customer
		return g.AddLink(ev.a, ev.b)
	case topology.RelProvider:
		return g.AddLink(ev.b, ev.a)
	default:
		return g.AddPeering(ev.a, ev.b)
	}
}

// explorationPath builds a plausible transient path from vantage v: v
// temporarily routes through a non-best neighbor n, yielding v + n's path.
// Returns nil when no loop-free policy-compliant alternate exists.
func (s *Sim) explorationPath(g *topology.Graph, rt *topology.CompiledRoutes, v bgp.ASN, rng *rand.Rand) []bgp.ASN {
	neighbors := g.Neighbors(v)
	if len(neighbors) == 0 {
		return nil
	}
	start := rng.Intn(len(neighbors))
	for k := 0; k < len(neighbors); k++ {
		n := neighbors[(start+k)%len(neighbors)]
		best, ok := rt.Route(v)
		if ok && best.NextHop == n {
			continue
		}
		// Gao-Rexford export rule at n: customer and self-originated
		// routes go to every neighbor, but routes learned from a peer
		// or provider are only exported to n's customers — v hears
		// those only when n is v's provider. Without this check the
		// transient path can contain a valley no real update would.
		nr, ok := rt.Route(n)
		if !ok {
			continue
		}
		if rel, _ := g.RelBetween(v, n); rel != topology.RelProvider &&
			nr.Type != topology.RouteOrigin && nr.Type != topology.RouteCustomer {
			continue
		}
		sub, ok := rt.PathFrom(n)
		if !ok {
			continue
		}
		loop := false
		for _, a := range sub {
			if a == v {
				loop = true
				break
			}
		}
		if loop {
			continue
		}
		return append([]bgp.ASN{v}, sub...)
	}
	return nil
}

// schedule generates the run's event list (unsorted).
func (s *Sim) schedule(cfg Config, rng *rand.Rand, st *Stream) []event {
	var events []event
	end := cfg.Start.Add(cfg.Duration)
	pair := 0

	// Collect the link universe once.
	type link struct {
		a, b bgp.ASN
		rel  topology.Rel
	}
	var links []link
	var biasedLinks []link
	biasSet := make(map[bgp.ASN]bool, len(cfg.BiasOrigins))
	for _, a := range cfg.BiasOrigins {
		biasSet[a] = true
	}
	for _, asn := range s.graph.ASNs() {
		a := s.graph.AS(asn)
		for _, c := range a.Customers() {
			l := link{a: asn, b: c, rel: topology.RelCustomer}
			links = append(links, l)
			if biasSet[asn] || biasSet[c] {
				biasedLinks = append(biasedLinks, l)
			}
		}
		for _, p := range a.Peers() {
			if asn < p {
				l := link{a: asn, b: p, rel: topology.RelPeer}
				links = append(links, l)
				if biasSet[asn] || biasSet[p] {
					biasedLinks = append(biasedLinks, l)
				}
			}
		}
	}

	pick := func() link {
		if len(biasedLinks) > 0 && rng.Float64() < cfg.BiasFraction {
			return biasedLinks[rng.Intn(len(biasedLinks))]
		}
		return links[rng.Intn(len(links))]
	}

	// Ordinary failures with exponential outage durations.
	for i := 0; i < cfg.LinkFailures && len(links) > 0; i++ {
		l := pick()
		at := cfg.Start.Add(time.Duration(rng.Int63n(int64(cfg.Duration))))
		outage := time.Duration(rng.ExpFloat64() * float64(cfg.MeanOutage))
		if outage < time.Second {
			outage = time.Second
		}
		upAt := at.Add(outage)
		if upAt.After(end) {
			upAt = end
		}
		events = append(events,
			event{at: at, kind: evLinkDown, a: l.a, b: l.b, rel: l.rel, pairIdx: pair},
			event{at: upAt, kind: evLinkUp, a: l.a, b: l.b, rel: l.rel, pairIdx: pair})
		pair++
	}

	// Flap episodes: one link cycles many times. Cycle counts are drawn
	// log-uniformly so a few prefixes see enormous churn (the paper's
	// 2000x tail) while most see little.
	for i := 0; i < cfg.FlapEpisodes && len(links) > 0; i++ {
		l := pick()
		cycles := int(math.Exp(rng.Float64() * math.Log(float64(max(4, cfg.MaxFlapCycles)))))
		if cycles < 2 {
			cycles = 2
		}
		at := cfg.Start.Add(time.Duration(rng.Int63n(int64(cfg.Duration))))
		for c := 0; c < cycles && at.Before(end); c++ {
			gap := time.Duration((0.5 + rng.Float64()) * float64(cfg.FlapInterval))
			downFor := gap / 2
			upAt := at.Add(downFor)
			if upAt.After(end) {
				upAt = end
			}
			events = append(events,
				event{at: at, kind: evLinkDown, a: l.a, b: l.b, rel: l.rel, pairIdx: pair},
				event{at: upAt, kind: evLinkUp, a: l.a, b: l.b, rel: l.rel, pairIdx: pair})
			pair++
			at = upAt.Add(gap)
		}
	}

	// Origin access-link churn: a multihomed origin AS loses one of its
	// provider links for a while. Single-homed origins are skipped — a
	// withdraw/re-announce of the identical path is not a path change.
	var multihomed []bgp.ASN
	for _, o := range s.originASNs() {
		if len(s.graph.AS(o).Providers()) >= 2 {
			multihomed = append(multihomed, o)
		}
	}
	outage := cfg.OriginOutage
	if outage <= 0 {
		outage = 30 * time.Minute
	}
	for i := 0; i < cfg.OriginChurnEvents && len(multihomed) > 0; i++ {
		o := multihomed[rng.Intn(len(multihomed))]
		provs := s.graph.AS(o).Providers()
		p := provs[rng.Intn(len(provs))]
		at := cfg.Start.Add(time.Duration(rng.Int63n(int64(cfg.Duration))))
		d := time.Duration(rng.ExpFloat64() * float64(outage))
		if d < time.Minute {
			d = time.Minute
		}
		upAt := at.Add(d)
		if upAt.After(end) {
			upAt = end
		}
		events = append(events,
			event{at: at, kind: evLinkDown, a: p, b: o, rel: topology.RelCustomer, pairIdx: pair},
			event{at: upAt, kind: evLinkUp, a: p, b: o, rel: topology.RelCustomer, pairIdx: pair})
		pair++
	}

	// Rare policy shifts between random transit ASes.
	t2 := s.graph.TierASNs(2)
	for i := 0; i < cfg.PolicyEvents && len(t2) >= 2; i++ {
		a := t2[rng.Intn(len(t2))]
		b := t2[rng.Intn(len(t2))]
		if a == b {
			continue
		}
		at := cfg.Start.Add(time.Duration(rng.Int63n(int64(cfg.Duration))))
		events = append(events, event{at: at, kind: evPolicy, a: a, b: b})
	}

	// Injected hijacks against the target prefixes.
	if cfg.InjectHijacks > 0 {
		targets := cfg.HijackTargets
		if len(targets) == 0 {
			biasSet := make(map[bgp.ASN]bool, len(cfg.BiasOrigins))
			for _, a := range cfg.BiasOrigins {
				biasSet[a] = true
			}
			for p, o := range s.origins {
				if len(cfg.BiasOrigins) == 0 || biasSet[o] {
					targets = append(targets, p)
				}
			}
			sortPrefixes(targets)
		}
		dur := cfg.HijackDuration
		if dur <= 0 {
			dur = 20 * time.Minute
		}
		all := s.graph.ASNs()
		for i := 0; i < cfg.InjectHijacks && len(targets) > 0; i++ {
			p := targets[rng.Intn(len(targets))]
			attacker := all[rng.Intn(len(all))]
			if attacker == s.origins[p] {
				continue
			}
			at := cfg.Start.Add(time.Duration(rng.Int63n(int64(cfg.Duration))))
			d := time.Duration((0.5 + rng.Float64()) * float64(dur))
			if at.Add(d).After(end) {
				d = end.Sub(at)
			}
			if d <= 0 {
				continue
			}
			events = append(events,
				event{at: at, kind: evHijackStart, b: attacker, pfx: p, up: d},
				event{at: at.Add(d), kind: evHijackEnd, pfx: p})
		}
	}

	// Session resets (roughly Poisson per session). Each reset schedules
	// its table transfer as a separate event at the re-establishment
	// time, so the transfer reads the tables of that instant.
	for si := range st.Sessions {
		n := poisson(rng, cfg.ResetsPerSessionMean)
		for i := 0; i < n; i++ {
			at := cfg.Start.Add(time.Duration(rng.Int63n(int64(cfg.Duration))))
			down := 30*time.Second + time.Duration(rng.Int63n(int64(90*time.Second)))
			events = append(events,
				event{at: at, kind: evReset, si: si, up: down},
				event{at: at.Add(down), kind: evTransfer, si: si})
		}
	}
	return events
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's product method needs exp(-mean) > 0; for mean ≳ 700 it
	// underflows to 0 and the loop only terminates once p itself
	// underflows, returning a garbage count (~700 regardless of mean).
	// Large means use the normal limit N(mean, mean) instead, which is
	// an excellent approximation well before the cutoff.
	if mean > 500 {
		k := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
