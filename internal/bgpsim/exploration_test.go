package bgpsim

import (
	"math/rand"
	"net/netip"
	"testing"

	"quicksand/internal/bgp"
	"quicksand/internal/topology"
)

// Regression: explorationPath used to route v through any neighbor with
// a route, ignoring the Gao-Rexford export rule — a customer n whose
// best route went through a peer or provider would "export" it back up
// to v, producing a transient path with a valley that no real BGP
// update stream could carry.
func TestExplorationPathRespectsExportRules(t *testing.T) {
	// 1 ─ 2 tier-1 peers; both sell transit to 3; 5 is 2's customer
	// and the origin.
	g := topology.NewGraph()
	if err := g.AddPeering(1, 2); err != nil {
		t.Fatal(err)
	}
	for _, link := range [][2]bgp.ASN{{1, 3}, {2, 3}, {2, 5}} {
		if err := g.AddLink(link[0], link[1]); err != nil {
			t.Fatal(err)
		}
	}
	p := netip.MustParsePrefix("10.0.0.0/8")
	sim, err := New(g, map[netip.Prefix]bgp.ASN{p: 5})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := g.Routes(nil, topology.Origin{ASN: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: AS3 holds a provider route via 2, AS1 a peer route via 2.
	if r, _ := rt.Route(3); r.Type != topology.RouteProvider || r.NextHop != 2 {
		t.Fatalf("AS3 route = %+v, want provider via AS2", r)
	}
	if r, _ := rt.Route(1); r.Type != topology.RoutePeer || r.NextHop != 2 {
		t.Fatalf("AS1 route = %+v, want peer via AS2", r)
	}

	// AS1's only alternate neighbor is its customer AS3, whose best
	// route is provider-learned: AS3 would never export it to AS1, so
	// no exploration path exists. The old code returned the valley
	// [1 3 2 5].
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if got := sim.explorationPath(g, rt, 1, rng); got != nil {
			t.Fatalf("explorationPath(AS1) = %v, want nil (customer would not export a provider route)", got)
		}
	}

	// AS3's alternate is its provider AS1, which exports everything to
	// customers: the up-across-down path [3 1 2 5] is legal.
	want := []bgp.ASN{3, 1, 2, 5}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		got := sim.explorationPath(g, rt, 3, rng)
		if len(got) != len(want) {
			t.Fatalf("explorationPath(AS3) = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("explorationPath(AS3) = %v, want %v", got, want)
			}
		}
		if !g.ValleyFree(got) {
			t.Fatalf("explorationPath(AS3) = %v is not valley-free", got)
		}
	}
}
