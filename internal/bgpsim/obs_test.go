package bgpsim

import (
	"testing"

	"quicksand/internal/obs"
)

func TestRunMetrics(t *testing.T) {
	g, origins := testWorld(t)
	sim, err := New(g, origins)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Metrics = NewMetrics(reg)
	st, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := cfg.Metrics
	if got := m.Updates.Value(); got != uint64(len(st.Updates)) {
		t.Errorf("updates counter = %d, stream has %d", got, len(st.Updates))
	}
	if m.Scheduled.Value() == 0 || m.Recomputes.Value() == 0 {
		t.Errorf("scheduled=%d recomputes=%d, want both > 0",
			m.Scheduled.Value(), m.Recomputes.Value())
	}
	var processed uint64
	for _, name := range eventKindNames {
		processed += m.Events.With(name).Value()
	}
	if processed != m.Scheduled.Value() {
		t.Errorf("processed %d events, scheduled %d", processed, m.Scheduled.Value())
	}
	if m.Events.With("link_down").Value() == 0 || m.Events.With("reset").Value() == 0 {
		t.Error("expected link_down and reset events in the test config")
	}
	if m.Transfers.Value() == 0 {
		t.Error("resets produced no table transfers")
	}
}

// TestMetricsDoNotPerturbRun pins the determinism contract: a run with
// metrics attached produces the identical stream as one without.
func TestMetricsDoNotPerturbRun(t *testing.T) {
	g, origins := testWorld(t)
	sim, err := New(g, origins)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sim.Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Metrics = NewMetrics(obs.NewRegistry())
	instr, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Updates) != len(instr.Updates) {
		t.Fatalf("update counts differ: %d vs %d", len(plain.Updates), len(instr.Updates))
	}
	for i := range plain.Updates {
		a, b := plain.Updates[i], instr.Updates[i]
		if !a.Time.Equal(b.Time) || a.Session != b.Session || a.Prefix != b.Prefix ||
			!samePath(a.Path, b.Path) {
			t.Fatalf("update %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestNilMetricsEventCounters(t *testing.T) {
	var m *Metrics
	counters := m.eventCounters()
	for _, c := range counters {
		c.Inc() // must no-op
		if c.Value() != 0 {
			t.Fatal("nil metrics counted")
		}
	}
}
