package bgpsim

import (
	"math"
	"math/rand"
	"testing"
)

// TestPoisson covers the three regimes of the sampler: the zero/negative
// short-circuit, Knuth's product method for ordinary means, and the
// normal-approximation branch that replaces it where exp(-mean)
// underflows (mean ≳ 700 used to spin until p underflowed and return a
// garbage count near 700 for ANY large mean).
func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	for _, mean := range []float64{0, -3} {
		for i := 0; i < 100; i++ {
			if k := poisson(rng, mean); k != 0 {
				t.Fatalf("poisson(%v) = %d, want 0", mean, k)
			}
		}
	}

	for _, mean := range []float64{1.2, 1000} {
		const n = 20_000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			k := poisson(rng, mean)
			if k < 0 {
				t.Fatalf("mean %v: negative sample %d", mean, k)
			}
			if float64(k) > mean+10*math.Sqrt(mean)+10 {
				t.Fatalf("mean %v: absurd sample %d", mean, k)
			}
			sum += float64(k)
			sumSq += float64(k) * float64(k)
		}
		gotMean := sum / n
		gotVar := sumSq/n - gotMean*gotMean
		// Sample mean within 5 standard errors; variance within 10%
		// (both mean and variance of a Poisson equal the rate).
		tol := 5 * math.Sqrt(mean/n)
		if math.Abs(gotMean-mean) > tol {
			t.Fatalf("mean %v: sample mean %.3f (tolerance %.3f)", mean, gotMean, tol)
		}
		if gotVar < 0.9*mean || gotVar > 1.1*mean {
			t.Fatalf("mean %v: sample variance %.3f, want ≈%v", mean, gotVar, mean)
		}
	}
}
