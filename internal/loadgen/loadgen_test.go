package loadgen

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpd"
	"quicksand/internal/monitord"
)

func monitordSpeaker() bgpd.Config {
	return bgpd.Config{ASN: 64500, BGPID: netip.MustParseAddr("198.51.100.1")}
}

var watched = netip.MustParsePrefix("10.99.0.0/16")

// newDaemon starts one in-process monitord instance watching `watched`.
func newDaemon(t *testing.T) *monitord.Daemon {
	t.Helper()
	d, err := monitord.New(monitord.Config{
		Watched:    map[netip.Prefix]bgp.ASN{watched: 64496},
		Speaker:    monitordSpeaker(),
		ListenBGP:  "127.0.0.1:0",
		ListenHTTP: "127.0.0.1:0",
		Shards:     4,
		ReadBatch:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	return d
}

func baseConfig(targets ...Target) Config {
	return Config{
		Targets:        targets,
		Sessions:       2,
		Duration:       300 * time.Millisecond,
		TracerInterval: 20 * time.Millisecond,
		Settle:         5 * time.Second,
		Seed:           1,
		WatchedPrefix:  watched,
		BurstSize:      64,
	}
}

// TestRunFleetInProcess is the end-to-end harness test: two daemons,
// two load sessions each, tracers on both, every tracer detected with a
// positive latency and ordered percentiles.
func TestRunFleetInProcess(t *testing.T) {
	d1, d2 := newDaemon(t), newDaemon(t)
	cfg := baseConfig(
		Target{Name: "a", BGPAddr: d1.BGPAddr(), Alerts: d1},
		Target{Name: "b", BGPAddr: d2.BGPAddr(), Alerts: d2},
	)
	cfg.Rate = 5000 // per session; keep the 1-CPU CI box responsive
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdatesSent == 0 || res.UpdatesPerSec <= 0 {
		t.Errorf("no load delivered: sent=%d rate=%v", res.UpdatesSent, res.UpdatesPerSec)
	}
	if res.TracersInjected < 2 {
		t.Errorf("tracers injected = %d, want >= 2", res.TracersInjected)
	}
	if res.TracersLost != 0 || res.TracersDetected != res.TracersInjected {
		t.Errorf("lost %d of %d tracers at trivial load", res.TracersLost, res.TracersInjected)
	}
	if !(res.P50 > 0 && res.P50 <= res.P95 && res.P95 <= res.P99) {
		t.Errorf("percentiles not ordered/positive: p50=%v p95=%v p99=%v", res.P50, res.P95, res.P99)
	}
	if len(res.Targets) != 2 {
		t.Fatalf("got %d target results, want 2", len(res.Targets))
	}
	for _, tr := range res.Targets {
		if tr.UpdatesSent == 0 || tr.TracersDetected != tr.TracersInjected {
			t.Errorf("target %s: sent=%d detected=%d/%d",
				tr.Name, tr.UpdatesSent, tr.TracersDetected, tr.TracersInjected)
		}
		for _, l := range tr.Latencies {
			if l <= 0 {
				t.Errorf("target %s: non-positive latency %v", tr.Name, l)
			}
		}
	}
}

// TestRunOverHTTPAlerts runs the same harness polling alerts through
// the real /alerts HTTP API instead of the in-process ring.
func TestRunOverHTTPAlerts(t *testing.T) {
	d := newDaemon(t)
	src := &HTTPAlerts{Base: "http://" + d.HTTPAddr()}
	cfg := baseConfig(Target{BGPAddr: d.BGPAddr(), Alerts: src})
	cfg.Sessions = 1
	cfg.Rate = 2000
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TracersDetected == 0 || res.TracersDetected != res.TracersInjected {
		t.Errorf("HTTP alert source: detected %d/%d", res.TracersDetected, res.TracersInjected)
	}
	if n := src.Errs.Load(); n != 0 {
		t.Errorf("HTTP alert source recorded %d poll errors against a healthy daemon", n)
	}
	if res.Targets[0].Name != d.BGPAddr() {
		t.Errorf("unnamed target not defaulted to BGP address: %q", res.Targets[0].Name)
	}
}

func TestHTTPAlertsPollFailures(t *testing.T) {
	t.Run("unreachable", func(t *testing.T) {
		src := &HTTPAlerts{Base: "http://127.0.0.1:1"}
		alerts, next, _ := src.Alerts(7, 10)
		if len(alerts) != 0 || next != 7 || src.Errs.Load() != 1 {
			t.Errorf("got %d alerts, next %d, errs %d; want cursor held at 7 with one error",
				len(alerts), next, src.Errs.Load())
		}
	})
	t.Run("http-error", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "down", http.StatusServiceUnavailable)
		}))
		defer srv.Close()
		src := &HTTPAlerts{Base: srv.URL}
		if _, next, _ := src.Alerts(3, 0); next != 3 || src.Errs.Load() != 1 {
			t.Errorf("next=%d errs=%d after 503, want cursor held with one error", next, src.Errs.Load())
		}
	})
	t.Run("bad-json", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("{not json"))
		}))
		defer srv.Close()
		src := &HTTPAlerts{Base: srv.URL}
		if _, next, _ := src.Alerts(3, 0); next != 3 || src.Errs.Load() != 1 {
			t.Errorf("next=%d errs=%d after bad JSON, want cursor held with one error", next, src.Errs.Load())
		}
	})
	t.Run("bad-prefix-skipped", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"alerts":[
				{"seq":0,"prefix":"not-a-prefix","kind":"origin-change","observed_as":666},
				{"seq":1,"prefix":"10.99.0.0/16","kind":"more-specific","observed_as":667}
			],"next":2,"dropped":0}`))
		}))
		defer srv.Close()
		src := &HTTPAlerts{Base: srv.URL}
		alerts, next, _ := src.Alerts(0, 0)
		if len(alerts) != 1 || next != 2 || src.Errs.Load() != 1 {
			t.Fatalf("got %d alerts, next %d, errs %d; want the malformed alert dropped, cursor advanced",
				len(alerts), next, src.Errs.Load())
		}
		if alerts[0].Prefix != watched || alerts[0].Observed != 667 {
			t.Errorf("surviving alert = %+v", alerts[0])
		}
	})
}

// TestTracerPrefixesRoundRobin spreads tracers across several watched
// prefixes: every injection must still be detected (a tracer sent to a
// prefix the poller ignored would be counted lost), and the alert
// stream must show hijacks on more than one prefix.
func TestTracerPrefixesRoundRobin(t *testing.T) {
	prefixes := []netip.Prefix{
		netip.MustParsePrefix("10.97.0.0/16"),
		netip.MustParsePrefix("10.98.0.0/16"),
		netip.MustParsePrefix("10.99.0.0/16"),
	}
	watchedMap := make(map[netip.Prefix]bgp.ASN, len(prefixes))
	for i, p := range prefixes {
		watchedMap[p] = bgp.ASN(64496 + i)
	}
	d, err := monitord.New(monitord.Config{
		Watched:   watchedMap,
		Speaker:   monitordSpeaker(),
		ListenBGP: "127.0.0.1:0",
		Shards:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())

	cfg := baseConfig(Target{BGPAddr: d.BGPAddr(), Alerts: d})
	cfg.Sessions = 1
	cfg.Rate = 2000
	cfg.TracerInterval = 10 * time.Millisecond
	cfg.WatchedPrefix = netip.Prefix{} // TracerPrefixes replaces it
	cfg.TracerPrefixes = prefixes
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TracersInjected < len(prefixes) {
		t.Fatalf("only %d tracers injected, want >= %d for full rotation", res.TracersInjected, len(prefixes))
	}
	if res.TracersLost != 0 {
		t.Errorf("lost %d of %d tracers across rotated prefixes", res.TracersLost, res.TracersInjected)
	}
	alerts, _, _ := d.Alerts(0, 0)
	seen := map[netip.Prefix]bool{}
	for _, a := range alerts {
		seen[a.Prefix] = true
	}
	if len(seen) < 2 {
		t.Errorf("alerts cover %d prefixes, want >= 2 from round-robin", len(seen))
	}
}

func TestParseAlertKindRoundTrip(t *testing.T) {
	for _, s := range []string{"origin-change", "more-specific", "new-upstream"} {
		if got := parseAlertKind(s).String(); got != s {
			t.Errorf("parseAlertKind(%q).String() = %q", s, got)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	valid := func() Config {
		return Config{
			Targets:       []Target{{BGPAddr: "127.0.0.1:179", Alerts: &HTTPAlerts{}}},
			Duration:      time.Second,
			WatchedPrefix: watched,
		}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"no-targets", func(c *Config) { c.Targets = nil }, "no targets"},
		{"no-bgp-addr", func(c *Config) { c.Targets[0].BGPAddr = "" }, "no BGP address"},
		{"no-alert-source", func(c *Config) { c.Targets[0].Alerts = nil }, "no alert source"},
		{"no-duration", func(c *Config) { c.Duration = 0 }, "Duration"},
		{"no-watched", func(c *Config) { c.WatchedPrefix = netip.Prefix{} }, "WatchedPrefix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mutate(&cfg)
			if _, err := Run(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestRunUnreachableTarget(t *testing.T) {
	cfg := baseConfig(Target{BGPAddr: "127.0.0.1:1", Alerts: &HTTPAlerts{}})
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("run against an unreachable target succeeded")
	}
}

// TestRateLimitBounds checks the pacing actually caps throughput: at
// Rate R for duration D a session may send at most R*D plus one burst
// of slack (the whole burst is committed before the pacer sleeps).
func TestRateLimitBounds(t *testing.T) {
	d := newDaemon(t)
	cfg := baseConfig(Target{BGPAddr: d.BGPAddr(), Alerts: d})
	cfg.Sessions = 1
	cfg.BurstSize = 32
	cfg.Rate = 1000
	cfg.Duration = 400 * time.Millisecond
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxSent := uint64(cfg.Rate*cfg.Duration.Seconds()) + uint64(cfg.BurstSize)
	if res.UpdatesSent == 0 || res.UpdatesSent > maxSent {
		t.Errorf("sent %d updates at rate %v over %v, want (0, %d]",
			res.UpdatesSent, cfg.Rate, cfg.Duration, maxSent)
	}
}

func TestRunCancelled(t *testing.T) {
	d := newDaemon(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := baseConfig(Target{BGPAddr: d.BGPAddr(), Alerts: d})
	if _, err := Run(ctx, cfg); err == nil {
		t.Fatal("cancelled run reported success")
	}
}

func TestEncodeBurstDeterministicAndDisjoint(t *testing.T) {
	a, n, err := encodeBurst(rand.New(rand.NewSource(7)), 128, 64601, true)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := encodeBurst(rand.New(rand.NewSource(7)), 128, 64601, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 128 || !bytes.Equal(a, b) {
		t.Errorf("burst not deterministic: n=%d, equal=%v", n, bytes.Equal(a, b))
	}
	c, _, err := encodeBurst(rand.New(rand.NewSource(8)), 128, 64601, true)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical bursts")
	}
	bench := netip.MustParsePrefix("198.18.0.0/15")
	if bench.Overlaps(watched) {
		t.Fatal("benchmark range overlaps the watched prefix")
	}
}
