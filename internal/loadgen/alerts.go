package loadgen

import (
	"quicksand/internal/defense"
	"quicksand/internal/fleet"
)

// HTTPAlerts is the /alerts polling client, now shared with the fleet
// router (which polls remote shards over the same wire shape); the
// harness keeps the name as an alias so existing callers and tests are
// untouched. See fleet.HTTPAlerts.
type HTTPAlerts = fleet.HTTPAlerts

// parseAlertKind delegates to the shared decoder in internal/fleet.
func parseAlertKind(s string) defense.AlertKind { return fleet.ParseAlertKind(s) }
