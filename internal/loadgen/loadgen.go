// Package loadgen is the fleet load harness: it drives one or more
// monitord instances over real TCP BGP sessions at a controlled update
// rate while injecting timestamped "tracer" hijacks of a watched
// prefix, and measures the injection-to-alert latency distribution the
// fleet delivers under that load.
//
// Each target gets Sessions concurrent load sessions replaying
// pre-encoded background UPDATE bursts (rate-limited per session) plus
// one dedicated tracer session. Every TracerInterval the tracer
// announces the watched prefix with a fresh bogus origin AS, so each
// injection is uniquely identifiable in the alert stream; a poller per
// target consumes alerts (in-process or over the HTTP /alerts API) and
// stamps the tracer detected the moment it surfaces. The measured
// latency is therefore the full client-visible path — socket write,
// pipeline, alert ring, poll — an upper bound on the daemon's internal
// monitord_detection_seconds histogram.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"quicksand/internal/bgp"
	"quicksand/internal/bgpd"
	"quicksand/internal/monitord"
	"quicksand/internal/stats"
)

// AlertSource is where a target's alerts are polled from. It is the
// cursor API of monitord's alert ring: *monitord.Daemon satisfies it
// directly for in-process targets, and HTTPAlerts adapts the /alerts
// endpoint for remote ones.
type AlertSource interface {
	Alerts(cursor uint64, max int) (alerts []monitord.SeqAlert, next uint64, dropped uint64)
}

// Target is one monitord instance under load.
type Target struct {
	Name    string // label in results (defaults to BGPAddr)
	BGPAddr string // host:port of the instance's BGP listener
	Alerts  AlertSource
}

// Config parameterises a load run.
type Config struct {
	Targets []Target
	// Sessions is the number of concurrent load sessions per target
	// (default 1); every target additionally gets one tracer session.
	Sessions int
	// Rate caps each load session at this many updates/sec; 0 means
	// unthrottled (send as fast as the pipe accepts).
	Rate float64
	// Duration is the length of the load phase.
	Duration time.Duration
	// TracerInterval spaces tracer hijack injections (default 50ms).
	TracerInterval time.Duration
	// PollInterval spaces alert polls (default 2ms); it bounds the
	// harness-added latency on every measurement.
	PollInterval time.Duration
	// Settle is how long after the load phase to keep polling for
	// still-in-flight tracers (default 3s).
	Settle time.Duration
	// Seed makes the background workload deterministic.
	Seed int64
	// WatchedPrefix is a prefix every target monitors; tracer hijacks
	// announce it with bogus origins.
	WatchedPrefix netip.Prefix
	// TracerPrefixes, when set, spreads the tracer hijacks round-robin
	// across several watched prefixes instead of just WatchedPrefix —
	// against a fleet router this exercises every shard's dispatch and
	// alert path, not only the shard owning one prefix. Every entry must
	// be watched by the target. Defaults to [WatchedPrefix].
	TracerPrefixes []netip.Prefix
	// TracerBase is the first bogus origin ASN; tracer i uses
	// TracerBase+i, so the range must be disjoint from the background
	// workload's AS numbers. Default 64900.
	TracerBase bgp.ASN
	// LocalAS is the base ASN of the harness's sessions; session k on
	// target t peers as LocalAS+t*(Sessions+1)+k. Default 64601.
	LocalAS bgp.ASN
	// BurstSize is how many updates each pre-encoded burst carries
	// (default 256).
	BurstSize int
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if len(out.Targets) == 0 {
		return out, errors.New("loadgen: no targets")
	}
	for i, t := range out.Targets {
		if t.BGPAddr == "" {
			return out, fmt.Errorf("loadgen: target %d has no BGP address", i)
		}
		if t.Alerts == nil {
			return out, fmt.Errorf("loadgen: target %d has no alert source", i)
		}
		if t.Name == "" {
			out.Targets[i].Name = t.BGPAddr
		}
	}
	if out.Duration <= 0 {
		return out, errors.New("loadgen: Duration must be positive")
	}
	if len(out.TracerPrefixes) == 0 {
		if !out.WatchedPrefix.IsValid() {
			return out, errors.New("loadgen: WatchedPrefix must be set")
		}
		out.TracerPrefixes = []netip.Prefix{out.WatchedPrefix}
	}
	for i, p := range out.TracerPrefixes {
		if !p.IsValid() {
			return out, fmt.Errorf("loadgen: tracer prefix %d is invalid", i)
		}
	}
	if out.Sessions <= 0 {
		out.Sessions = 1
	}
	if out.TracerInterval <= 0 {
		out.TracerInterval = 50 * time.Millisecond
	}
	if out.PollInterval <= 0 {
		out.PollInterval = 2 * time.Millisecond
	}
	if out.Settle <= 0 {
		out.Settle = 3 * time.Second
	}
	if out.TracerBase == 0 {
		out.TracerBase = 64900
	}
	if out.LocalAS == 0 {
		out.LocalAS = 64601
	}
	if out.BurstSize <= 0 {
		out.BurstSize = 256
	}
	return out, nil
}

// TargetResult is one target's share of a run.
type TargetResult struct {
	Name            string
	UpdatesSent     uint64
	TracersInjected int
	TracersDetected int
	// Latencies holds one injection-to-alert measurement in seconds per
	// detected tracer.
	Latencies []float64
}

// Result aggregates a load run across the fleet.
type Result struct {
	Elapsed         time.Duration
	UpdatesSent     uint64
	UpdatesPerSec   float64
	TracersInjected int
	TracersDetected int
	TracersLost     int
	// P50/P95/P99 are injection-to-alert latency percentiles in seconds
	// across all detected tracers (zero when none were detected).
	P50, P95, P99 float64
	Targets       []TargetResult
}

// tracerLog tracks one target's injected tracers and their fates.
type tracerLog struct {
	mu       sync.Mutex
	injected map[bgp.ASN]time.Time
	detected map[bgp.ASN]float64 // seconds
}

func newTracerLog() *tracerLog {
	return &tracerLog{
		injected: make(map[bgp.ASN]time.Time),
		detected: make(map[bgp.ASN]float64),
	}
}

func (l *tracerLog) inject(asn bgp.ASN) {
	l.mu.Lock()
	l.injected[asn] = time.Now()
	l.mu.Unlock()
}

// observe records the first sighting of a tracer's alert; repeats and
// non-tracer alerts are ignored.
func (l *tracerLog) observe(asn bgp.ASN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t0, ok := l.injected[asn]
	if !ok {
		return
	}
	if _, seen := l.detected[asn]; seen {
		return
	}
	l.detected[asn] = time.Since(t0).Seconds()
}

// settled reports whether every injected tracer has been detected.
func (l *tracerLog) settled() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.detected) == len(l.injected)
}

func (l *tracerLog) counts() (injected, detected int, latencies []float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	latencies = make([]float64, 0, len(l.detected))
	for _, s := range l.detected {
		latencies = append(latencies, s)
	}
	return len(l.injected), len(l.detected), latencies
}

// Run executes the load run described by cfg and reports the fleet-wide
// throughput and detection-latency distribution. It returns early with
// an error if a session cannot be established or the context is
// cancelled before the load phase completes.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	runs := make([]*targetRun, len(cfg.Targets))
	for i := range cfg.Targets {
		tr, err := startTarget(&cfg, i)
		if err != nil {
			for _, r := range runs[:i] {
				r.close()
			}
			return nil, err
		}
		runs[i] = tr
	}
	defer func() {
		for _, r := range runs {
			r.close()
		}
	}()

	loadCtx, cancelLoad := context.WithTimeout(ctx, cfg.Duration)
	defer cancelLoad()
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, len(runs)*(cfg.Sessions+2))
	for _, r := range runs {
		r.start(loadCtx, &wg, errc)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: run cancelled: %w", err)
	}
	select {
	case err := <-errc:
		return nil, err
	default:
	}

	// Load phase over: keep polling until every tracer's alert surfaced
	// or the settle window runs out (lost tracers are reported, not an
	// error — losing them under overload is a finding).
	settleCtx, cancelSettle := context.WithTimeout(ctx, cfg.Settle)
	defer cancelSettle()
	var settleWG sync.WaitGroup
	for _, r := range runs {
		settleWG.Add(1)
		go func(r *targetRun) {
			defer settleWG.Done()
			r.pollUntilSettled(settleCtx)
		}(r)
	}
	settleWG.Wait()

	res := &Result{Elapsed: elapsed}
	var latencies []float64
	for _, r := range runs {
		injected, detected, lat := r.tracers.counts()
		res.Targets = append(res.Targets, TargetResult{
			Name:            r.tgt.Name,
			UpdatesSent:     r.sent.Load(),
			TracersInjected: injected,
			TracersDetected: detected,
			Latencies:       lat,
		})
		res.UpdatesSent += r.sent.Load()
		res.TracersInjected += injected
		res.TracersDetected += detected
		latencies = append(latencies, lat...)
	}
	res.TracersLost = res.TracersInjected - res.TracersDetected
	if elapsed > 0 {
		res.UpdatesPerSec = float64(res.UpdatesSent) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		// Percentile only errors on empty input or out-of-range p.
		res.P50, _ = stats.Percentile(latencies, 50)
		res.P95, _ = stats.Percentile(latencies, 95)
		res.P99, _ = stats.Percentile(latencies, 99)
	}
	return res, nil
}

// targetRun is the live state of one target: its established sessions
// and tracer bookkeeping.
type targetRun struct {
	cfg       *Config
	tgt       Target
	index     int
	load      []*bgpd.Session
	tracer    *bgpd.Session
	sent      atomic.Uint64
	tracers   *tracerLog
	tracerSet map[netip.Prefix]bool
	cursor    uint64
}

// startTarget dials and establishes the target's load and tracer
// sessions up front, so a down target fails the run before any load.
func startTarget(cfg *Config, i int) (*targetRun, error) {
	tr := &targetRun{
		cfg: cfg, tgt: cfg.Targets[i], index: i, tracers: newTracerLog(),
		tracerSet: make(map[netip.Prefix]bool, len(cfg.TracerPrefixes)),
	}
	for _, p := range cfg.TracerPrefixes {
		tr.tracerSet[p] = true
	}
	base := cfg.LocalAS + bgp.ASN(i*(cfg.Sessions+1))
	for k := 0; k <= cfg.Sessions; k++ {
		sess, err := dialSession(tr.tgt.BGPAddr, base+bgp.ASN(k))
		if err != nil {
			tr.close()
			return nil, fmt.Errorf("loadgen: target %s session %d: %w", tr.tgt.Name, k, err)
		}
		if k == cfg.Sessions {
			tr.tracer = sess
		} else {
			tr.load = append(tr.load, sess)
		}
	}
	return tr, nil
}

func dialSession(addr string, asn bgp.ASN) (*bgpd.Session, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sess, err := bgpd.Establish(conn, bgpd.Config{
		ASN:   asn,
		BGPID: netip.AddrFrom4([4]byte{203, 0, 113, byte(1 + asn%250)}),
		// HoldTime 0: the harness saturates the write side and must not
		// be torn down for not reading keepalives fast enough.
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	return sess, nil
}

// start launches the target's load writers, tracer injector, and alert
// poller under wg.
func (tr *targetRun) start(ctx context.Context, wg *sync.WaitGroup, errc chan<- error) {
	for k, sess := range tr.load {
		wg.Add(1)
		go func(k int, sess *bgpd.Session) {
			defer wg.Done()
			if err := tr.loadLoop(ctx, k, sess); err != nil {
				errc <- fmt.Errorf("loadgen: target %s load session %d: %w", tr.tgt.Name, k, err)
			}
		}(k, sess)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := tr.tracerLoop(ctx); err != nil {
			errc <- fmt.Errorf("loadgen: target %s tracer: %w", tr.tgt.Name, err)
		}
	}()
	go func() {
		defer wg.Done()
		tr.pollLoop(ctx)
	}()
}

// loadLoop replays pre-encoded background bursts, pacing to cfg.Rate.
func (tr *targetRun) loadLoop(ctx context.Context, k int, sess *bgpd.Session) error {
	// Per-session seed so concurrent sessions announce distinct routes.
	rng := rand.New(rand.NewSource(tr.cfg.Seed + int64(tr.index)*1000 + int64(k)))
	raw, n, err := encodeBurst(rng, tr.cfg.BurstSize, tr.cfg.LocalAS, sess.AS4())
	if err != nil {
		return err
	}
	start := time.Now()
	var total uint64
	for {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		if err := sess.SendRaw(raw, n); err != nil {
			if errors.Is(err, bgpd.ErrClosed) && ctx.Err() != nil {
				return nil
			}
			return err
		}
		total += uint64(n)
		tr.sent.Add(uint64(n))
		if tr.cfg.Rate > 0 {
			// Absolute schedule, not per-burst sleeps: drift does not
			// accumulate, and a stalled send is caught up afterwards.
			due := start.Add(time.Duration(float64(total) / tr.cfg.Rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				select {
				case <-ctx.Done():
					return nil
				case <-time.After(d):
				}
			}
		}
	}
}

// tracerLoop injects one uniquely-identifiable hijack of the watched
// prefix per interval: origin TracerBase+i is bogus by construction, so
// monitord raises origin-change with Observed == that ASN.
func (tr *targetRun) tracerLoop(ctx context.Context) error {
	tick := time.NewTicker(tr.cfg.TracerInterval)
	defer tick.Stop()
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
		asn := tr.cfg.TracerBase + bgp.ASN(i)
		u := &bgp.Update{
			NLRI: []netip.Prefix{tr.cfg.TracerPrefixes[i%len(tr.cfg.TracerPrefixes)]},
			Attrs: bgp.PathAttributes{
				HasOrigin: true, Origin: bgp.OriginIGP,
				HasASPath: true, ASPath: bgp.Sequence(tr.tracer.PeerAS(), asn),
				NextHop: netip.AddrFrom4([4]byte{203, 0, 113, 1}),
			},
		}
		// Stamp before the write: the measurement covers the send path.
		tr.tracers.inject(asn)
		if err := tr.tracer.SendUpdate(u); err != nil {
			if errors.Is(err, bgpd.ErrClosed) && ctx.Err() != nil {
				return nil
			}
			return err
		}
	}
}

// pollLoop drains the target's alert stream, crediting tracer alerts.
func (tr *targetRun) pollLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(tr.cfg.PollInterval):
		}
		tr.pollOnce()
	}
}

func (tr *targetRun) pollOnce() {
	alerts, next, _ := tr.tgt.Alerts.Alerts(tr.cursor, 0)
	tr.cursor = next
	for _, a := range alerts {
		if tr.tracerSet[a.Prefix] {
			tr.tracers.observe(a.Observed)
		}
	}
}

// pollUntilSettled keeps polling through the settle window, returning
// early once every tracer on this target has been seen.
func (tr *targetRun) pollUntilSettled(ctx context.Context) {
	for {
		tr.pollOnce()
		if tr.tracers.settled() {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(tr.cfg.PollInterval):
		}
	}
}

func (tr *targetRun) close() {
	for _, s := range tr.load {
		s.Close()
	}
	if tr.tracer != nil {
		tr.tracer.Close()
	}
}
