package loadgen

import (
	"math/rand"
	"net/netip"

	"quicksand/internal/bgp"
)

// encodeBurst pre-encodes size background announcements into one raw
// buffer for bgpd.Session.SendRaw, returning the buffer and the update
// count. Encoding once and replaying the bytes keeps the load sessions'
// hot loop at a single write syscall per burst — the harness must be
// cheaper than the pipeline it is stressing.
//
// Prefixes are drawn from 198.18.0.0/15 (the RFC 2544 benchmarking
// range), which is disjoint from any realistic watched set, so the
// background load can never raise alerts of its own. Origins stay below
// 64900 so they cannot collide with tracer ASNs.
func encodeBurst(rng *rand.Rand, size int, localAS bgp.ASN, as4 bool) ([]byte, int, error) {
	var raw []byte
	var err error
	for i := 0; i < size; i++ {
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{
			198, byte(18 + rng.Intn(2)), byte(rng.Intn(256)), 0,
		}), 24)
		path := []bgp.ASN{localAS}
		for hops := 1 + rng.Intn(3); hops > 0; hops-- {
			path = append(path, bgp.ASN(64700+rng.Intn(200)))
		}
		u := &bgp.Update{
			NLRI: []netip.Prefix{pfx},
			Attrs: bgp.PathAttributes{
				HasOrigin: true, Origin: bgp.OriginIGP,
				HasASPath: true, ASPath: bgp.Sequence(path...),
				NextHop: netip.AddrFrom4([4]byte{203, 0, 113, 1}),
			},
		}
		if raw, err = u.AppendMessage(raw, as4); err != nil {
			return nil, 0, err
		}
	}
	return raw, size, nil
}
