package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// FuzzReader: ReadAll must never panic or over-allocate on arbitrary
// input, and every packet it accepts must re-write cleanly. The corpus
// is seeded from the package's own writer so the fuzzer starts inside
// the valid format and mutates outward.
func FuzzReader(f *testing.F) {
	ts := time.Date(2014, 5, 1, 12, 0, 0, 123456000, time.UTC)

	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeRaw, 96)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.WritePacket(ts, []byte{0x45, 0, 0, 20, 1, 2, 3, 4}, 0); err != nil {
		f.Fatal(err)
	}
	// Over-snaplen packet: truncated on write, OrigLen preserved.
	if err := w.WritePacket(ts.Add(time.Millisecond), bytes.Repeat([]byte{0xAB}, 200), 0); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	// Byte-swapped header so the big-endian branch is in the corpus.
	swapped := make([]byte, 24)
	binary.BigEndian.PutUint32(swapped[0:], magicNative)
	binary.BigEndian.PutUint16(swapped[4:], versionMajor)
	binary.BigEndian.PutUint16(swapped[6:], versionMinor)
	binary.BigEndian.PutUint32(swapped[16:], 65535)
	binary.BigEndian.PutUint32(swapped[20:], LinkTypeEthernet)
	f.Add(swapped)
	f.Add([]byte{})
	f.Add(buf.Bytes()[:30]) // header plus a record fragment

	f.Fuzz(func(t *testing.T, data []byte) {
		pkts, linkType, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return // malformed input is fine; panics and OOM are not
		}
		// Anything accepted must re-write cleanly.
		var out bytes.Buffer
		snap := 65535
		for _, p := range pkts {
			if len(p.Data) > snap {
				snap = len(p.Data)
			}
		}
		w, err := NewWriter(&out, linkType, snap)
		if err != nil {
			t.Fatalf("re-open writer: %v", err)
		}
		for i, p := range pkts {
			if err := w.WritePacket(p.Time, p.Data, p.OrigLen); err != nil {
				t.Fatalf("accepted packet %d failed to re-write: %v", i, err)
			}
		}
	})
}
