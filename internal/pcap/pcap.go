// Package pcap implements the classic libpcap capture file format
// (pcap-savefile(5)): the fixed 24-byte global header followed by
// per-packet records with microsecond timestamps and snaplen-truncated
// data.
//
// The traffic simulator's captures (internal/tcpsim) serialise to real
// .pcap files with LINKTYPE_RAW payloads — openable by tcpdump/wireshark
// — completing the fidelity loop of the paper's data collection: the
// asymmetric analysis can run from files on disk exactly as the authors
// ran theirs from tcpdump output.
package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Link types (from the tcpdump.org registry).
const (
	// LinkTypeRaw means packets begin directly with an IPv4/IPv6 header.
	LinkTypeRaw = 101
	// LinkTypeEthernet is provided for completeness.
	LinkTypeEthernet = 1
)

const (
	magicNative  = 0xa1b2c3d4 // microsecond timestamps, writer byte order
	magicSwapped = 0xd4c3b2a1
	versionMajor = 2
	versionMinor = 4
)

// Errors returned by the reader.
var (
	ErrBadMagic  = errors.New("pcap: bad magic number")
	ErrTruncated = errors.New("pcap: truncated file")
)

// Packet is one captured packet record.
type Packet struct {
	Time time.Time
	// Data is the captured (possibly snaplen-truncated) bytes.
	Data []byte
	// OrigLen is the packet's original wire length.
	OrigLen int
}

// Writer emits a pcap savefile.
type Writer struct {
	w       io.Writer
	snapLen uint32
}

// NewWriter writes the global header for the given link type and snap
// length and returns a Writer. Little-endian, microsecond resolution.
func NewWriter(w io.Writer, linkType int, snapLen int) (*Writer, error) {
	if snapLen <= 0 {
		return nil, fmt.Errorf("pcap: snaplen must be positive, got %d", snapLen)
	}
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], magicNative)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone (4) and sigfigs (4) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], uint32(snapLen))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(linkType))
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return &Writer{w: w, snapLen: uint32(snapLen)}, nil
}

// WritePacket appends one record. Data longer than the snap length is
// truncated on write; OrigLen (when zero) defaults to len(data).
func (w *Writer) WritePacket(ts time.Time, data []byte, origLen int) error {
	if origLen <= 0 {
		origLen = len(data)
	}
	capLen := uint32(len(data))
	if capLen > w.snapLen {
		capLen = w.snapLen
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:], capLen)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(origLen))
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	_, err := w.w.Write(data[:capLen])
	return err
}

// Reader iterates a pcap savefile, handling both byte orders.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	LinkType int
	SnapLen  int
}

// NewReader parses the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: global header: %v", ErrTruncated, err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[0:4]) {
	case magicNative:
		order = binary.LittleEndian
	case magicSwapped:
		order = binary.BigEndian
	default:
		return nil, fmt.Errorf("%w: %#x", ErrBadMagic, binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if major := order.Uint16(hdr[4:6]); major != versionMajor {
		return nil, fmt.Errorf("pcap: unsupported version %d", major)
	}
	return &Reader{
		r: r, order: order,
		SnapLen:  int(order.Uint32(hdr[16:20])),
		LinkType: int(order.Uint32(hdr[20:24])),
	}, nil
}

// Next reads the next packet record, returning io.EOF at a clean end.
func (r *Reader) Next() (*Packet, error) {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r.r, hdr); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: record header: %v", ErrTruncated, err)
	}
	sec := int64(r.order.Uint32(hdr[0:4]))
	usec := int64(r.order.Uint32(hdr[4:8]))
	capLen := int(r.order.Uint32(hdr[8:12]))
	origLen := int(r.order.Uint32(hdr[12:16]))
	if capLen < 0 || capLen > r.SnapLen+65536 {
		return nil, fmt.Errorf("pcap: implausible capture length %d", capLen)
	}
	// Copy rather than ReadFull into a pre-sized buffer: both capLen and
	// SnapLen come off the wire, so a 40-byte file claiming a huge capture
	// must fail on the missing bytes, not on the allocation.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r.r, int64(capLen)); err != nil {
		return nil, fmt.Errorf("%w: record body: %v", ErrTruncated, err)
	}
	data := buf.Bytes()
	return &Packet{
		Time:    time.Unix(sec, usec*1000).UTC(),
		Data:    data,
		OrigLen: origLen,
	}, nil
}

// ReadAll drains the file into memory.
func ReadAll(r io.Reader) ([]Packet, int, error) {
	pr, err := NewReader(r)
	if err != nil {
		return nil, 0, err
	}
	var out []Packet
	for {
		p, err := pr.Next()
		if err == io.EOF {
			return out, pr.LinkType, nil
		}
		if err != nil {
			return nil, 0, err
		}
		out = append(out, *p)
	}
}
