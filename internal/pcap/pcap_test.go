package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

var ts0 = time.Date(2014, 7, 10, 12, 0, 0, 123456000, time.UTC)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeRaw, 96)
	if err != nil {
		t.Fatal(err)
	}
	pkts := [][]byte{
		{0x45, 0, 0, 40, 1, 2, 3},
		bytes.Repeat([]byte{0xAA}, 60),
	}
	for i, p := range pkts {
		if err := w.WritePacket(ts0.Add(time.Duration(i)*time.Second), p, 0); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeRaw || r.SnapLen != 96 {
		t.Fatalf("header: link=%d snap=%d", r.LinkType, r.SnapLen)
	}
	for i, want := range pkts {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Data, want) {
			t.Fatalf("packet %d data mismatch", i)
		}
		if got.OrigLen != len(want) {
			t.Fatalf("packet %d OrigLen = %d", i, got.OrigLen)
		}
		wantTS := ts0.Add(time.Duration(i) * time.Second)
		if got.Time.Unix() != wantTS.Unix() || got.Time.Nanosecond()/1000 != wantTS.Nanosecond()/1000 {
			t.Fatalf("packet %d time = %v, want %v (µs resolution)", i, got.Time, wantTS)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestSnapLenTruncatesOnWrite(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeRaw, 16)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{1}, 100)
	if err := w.WritePacket(ts0, big, 1500); err != nil {
		t.Fatal(err)
	}
	pkts, _, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || len(pkts[0].Data) != 16 || pkts[0].OrigLen != 1500 {
		t.Fatalf("got %d packets, data %d, orig %d", len(pkts), len(pkts[0].Data), pkts[0].OrigLen)
	}
}

func TestSwappedByteOrder(t *testing.T) {
	// Hand-build a big-endian (swapped magic) file.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:], magicNative) // BE native == LE swapped
	binary.BigEndian.PutUint16(hdr[4:], versionMajor)
	binary.BigEndian.PutUint16(hdr[6:], versionMinor)
	binary.BigEndian.PutUint32(hdr[16:], 64)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:], uint32(ts0.Unix()))
	binary.BigEndian.PutUint32(rec[4:], 42)
	binary.BigEndian.PutUint32(rec[8:], 3)
	binary.BigEndian.PutUint32(rec[12:], 3)
	buf.Write(rec)
	buf.Write([]byte{9, 8, 7})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeEthernet {
		t.Fatalf("link type = %d", r.LinkType)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Time.Unix() != ts0.Unix() || p.Time.Nanosecond() != 42000 {
		t.Fatalf("time = %v", p.Time)
	}
	if !bytes.Equal(p.Data, []byte{9, 8, 7}) {
		t.Fatalf("data = %v", p.Data)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedHeaderAndBody(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeRaw, 64)
	w.WritePacket(ts0, []byte{1, 2, 3, 4}, 0)
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated body: %v", err)
	}
	r, err = NewReader(bytes.NewReader(full[:24+5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated record header: %v", err)
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(io.Discard, LinkTypeRaw, 0); err == nil {
		t.Fatal("zero snaplen accepted")
	}
}
