package testkit

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update is registered once here so every test binary that links testkit
// gains the same -update flag; `go test ./... -run Golden -update`
// refreshes every golden file in the repository.
var update = flag.Bool("update", false, "rewrite golden files with current output")

// Updating reports whether the test run was invoked with -update.
func Updating() bool { return *update }

// Golden compares got against the golden file at path, failing the test
// with a line-oriented diff on mismatch. With -update the file is
// rewritten (directories created as needed) and the test passes.
func Golden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("creating golden dir: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("writing golden %s: %v", path, err)
		}
		t.Logf("updated golden %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (refresh with `go test -run Golden -update`): %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	t.Errorf("output differs from golden %s:\n%s", path, diffLines(want, got))
}

// diffLines renders a compact first-divergence diff: the line number
// where the texts part ways plus a few lines of context from each side.
func diffLines(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	i := 0
	for i < len(wl) && i < len(gl) && bytes.Equal(wl[i], gl[i]) {
		i++
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "first difference at line %d\n", i+1)
	show := func(label string, lines [][]byte) {
		fmt.Fprintf(&b, "%s:\n", label)
		for j := i; j < len(lines) && j < i+3; j++ {
			fmt.Fprintf(&b, "  %4d | %s\n", j+1, lines[j])
		}
		if i >= len(lines) {
			fmt.Fprintf(&b, "  (ends at line %d)\n", len(lines))
		}
	}
	show("golden", wl)
	show("got", gl)
	fmt.Fprintf(&b, "(%d golden lines, %d got lines)", len(wl), len(gl))
	return b.String()
}
