package testkit

import (
	"bytes"
	"testing"

	"quicksand/internal/topology"
	"quicksand/internal/torconsensus"
)

func TestRandomTopologyDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a, err := RandomTopology(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := RandomTopology(seed)
		if err != nil {
			t.Fatalf("seed %d again: %v", seed, err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("seed %d: %d vs %d ASes on re-generation", seed, a.Len(), b.Len())
		}
		for _, asn := range a.ASNs() {
			na, nb := a.AS(asn), b.AS(asn)
			if nb == nil || na.Degree() != nb.Degree() {
				t.Fatalf("seed %d: AS %v differs on re-generation", seed, asn)
			}
		}
	}
}

func TestRandomTopologyConnected(t *testing.T) {
	// Every AS must have a policy route to a tier-1 origin: the
	// generator promises transit connectivity.
	g, err := RandomTopology(7)
	if err != nil {
		t.Fatal(err)
	}
	origin := g.TierASNs(1)[0]
	rt, err := g.ComputeRoutes(topology.Origin{ASN: origin})
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range g.ASNs() {
		if _, ok := rt[asn]; !ok {
			t.Errorf("AS %v has no route to tier-1 origin %v", asn, origin)
		}
	}
}

func TestRandomConsensusValid(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cons, host, err := RandomConsensus(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := RandomConsensusConfig(seed, nil)
		if len(cons.Relays) != cfg.Total {
			t.Errorf("seed %d: %d relays, want %d", seed, len(cons.Relays), cfg.Total)
		}
		if len(host.Prefixes) != cfg.GuardExitPrefixes+cfg.MiddleOnlyPrefixes {
			t.Errorf("seed %d: %d prefixes, want %d", seed,
				len(host.Prefixes), cfg.GuardExitPrefixes+cfg.MiddleOnlyPrefixes)
		}
		// Per-prefix relay cap holds for guard/exit relays.
		perPrefix := make(map[string]int)
		for i := range cons.Relays {
			r := &cons.Relays[i]
			if !r.IsGuard() && !r.IsExit() {
				continue
			}
			perPrefix[host.RelayPrefix[r.Addr].String()]++
		}
		for p, n := range perPrefix {
			if n > cfg.MaxRelaysPerPrefix {
				t.Errorf("seed %d: prefix %s hosts %d guard/exit relays, cap %d",
					seed, p, n, cfg.MaxRelaysPerPrefix)
			}
		}
	}
}

func TestRandomConsensusDeterministic(t *testing.T) {
	a, _, err := RandomConsensus(3)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RandomConsensus(3)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if _, err := a.WriteTo(&ba); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("same seed produced different consensus documents")
	}
}

func TestRandomWorldBuilds(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		w, err := RandomWorld(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(w.TorPrefixes) == 0 {
			t.Errorf("seed %d: world has no Tor prefixes", seed)
		}
		if len(w.Origins) <= len(w.Hosting.Prefixes) {
			t.Errorf("seed %d: no background prefixes landed (origins %d, hosting %d)",
				seed, len(w.Origins), len(w.Hosting.Prefixes))
		}
		// Every origin AS must exist in the topology.
		for p, asn := range w.Origins {
			if w.Topology.AS(asn) == nil {
				t.Fatalf("seed %d: prefix %v originated by unknown AS %v", seed, p, asn)
			}
		}
	}
}

func TestRandomUpdateMarshals(t *testing.T) {
	rng := Rand(11, 0)
	for i := 0; i < 200; i++ {
		as4 := i%2 == 0
		u := RandomUpdate(rng, as4)
		if !u.AnnouncesOrWithdraws() {
			t.Fatalf("update %d carries nothing", i)
		}
		if _, err := u.Marshal(as4); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
}

func TestRandomConsensusConfigHonorsPool(t *testing.T) {
	cfg := RandomConsensusConfig(5, nil)
	if cfg.NumHostASes > len(cfg.HostASes) {
		t.Fatalf("NumHostASes %d exceeds pool %d", cfg.NumHostASes, len(cfg.HostASes))
	}
	if err := torconsensusValidate(cfg); err != nil {
		t.Fatalf("generated config invalid: %v", err)
	}
}

// torconsensusValidate round-trips the config through the generator,
// whose first step is validation.
func torconsensusValidate(cfg torconsensus.GenConfig) error {
	_, _, err := torconsensus.GenerateConsensus(cfg)
	return err
}
